(** The aggregate (marginal) probability space of the bound analysis.

    Where the exact CTMC tracks the full queue-length vector, the paper's
    aggregation keeps only, per station [k], level [n] and joint phase
    vector [h]:

    - [v_k(n, h) = P{n_k = n, phase = h}]
    - [w_{j,k}(n, h) = P{n_j >= 1, n_k = n, phase = h}] for [j <> k]
    - optionally [z_{j,k}(n, h) = E[n_j · 1{n_k = n, phase = h}]]
      (the level-2 extension)

    totalling [O(M² (N+1) H)] quantities — the paper's headline
    computational-tractability result — versus the [C(M+N-1, N) · H]
    states of the exact chain. This module owns the variable indexing
    shared by constraint generation, objectives, and the exact-aggregation
    used in validation. *)

type t

val create : ?level2:bool -> Mapqn_model.Network.t -> t
(** Index space for the given network; [level2] (default false) allocates
    the [z] variables. *)

val network : t -> Mapqn_model.Network.t
val num_stations : t -> int
val population : t -> int
val num_phase_vectors : t -> int
val has_level2 : t -> bool

val num_vars : t -> int
(** Total number of aggregate variables. *)

val v : t -> station:int -> level:int -> phase:int -> int
(** Index of [v_station(level, phase)]. *)

val w : t -> busy:int -> station:int -> level:int -> phase:int -> int
(** Index of [w_{busy,station}(level, phase)]; requires [busy <> station]. *)

val z : t -> counted:int -> station:int -> level:int -> phase:int -> int
(** Index of [z_{counted,station}(level, phase)]; requires level-2 space. *)

val describe : t -> int -> string
(** Human-readable name of a variable index (for LP debugging). *)

(** Structural role of a variable index — the inverse of {!v}/{!w}/{!z}.
    Because the role names stations, levels and phases rather than raw
    indices, it is stable across population changes: the same role can be
    re-instantiated in the space of a different [N] (the basis-mapping
    step of warm-started population sweeps). *)
type role =
  | Role_v of { station : int; level : int; phase : int }
  | Role_w of { busy : int; station : int; level : int; phase : int }
  | Role_z of { counted : int; station : int; level : int; phase : int }

val classify : t -> int -> role

val phase_component : t -> int -> int -> int
(** [phase_component t h k]: station [k]'s phase in joint phase vector
    [h]. *)

val phase_subst : t -> int -> int -> int -> int
(** [phase_subst t h k b]: the joint phase vector equal to [h] with station
    [k]'s component replaced by [b]. *)

val station_order : t -> int -> int
(** MAP order of station [k]. *)

val iter_phases : t -> (int -> unit) -> unit
(** Iterate joint phase indices [0 .. H-1]. *)

val aggregate_exact : t -> Mapqn_ctmc.Solution.t -> float array
(** Project an exact stationary solution onto the aggregate variables —
    the ground-truth point that must satisfy every constraint family (used
    by tests and by the validation harness). The solution must be for the
    same network. *)
