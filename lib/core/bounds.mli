(** Linear-programming performance bounds for MAP queueing networks — the
    paper's contribution.

    [create] assembles the marginal-balance LP for a network (one phase-1
    simplex run); each metric query then solves two phase-2 problems
    (minimize and maximize the metric as a linear function of the
    aggregate probabilities) over the same feasible region. Because every
    constraint is exact, the true value always lies in the returned
    interval; tightness depends on the constraint families enabled
    ({!Constraints.config}).

    {b Batch evaluation.} {!eval} is the primary query entry point: it
    evaluates a whole report of metrics in one sweep. On the default
    {!Revised} backend each optimization warm-starts from the basis left
    by the previous one, so a full report costs little more than its
    hardest single metric; the per-metric functions ({!throughput},
    {!utilization}, ...) are one-element [eval] calls kept for
    convenience. *)

type t

(** {1 Intervals} *)

type interval = { lower : float; upper : float }

val width : interval -> float
(** [upper - lower]; [0.] when the endpoints are equal (including two
    infinite endpoints of the same sign — never NaN). *)

val midpoint : interval -> float
(** Midpoint; an infinite endpoint dominates, and [0.] for
    [(-inf, +inf)] — never NaN. *)

val contains : interval -> float -> bool
(** Within a small numerical tolerance (1e-7 absolute + relative, computed
    from the finite endpoints only, so intervals with infinite endpoints
    behave set-theoretically). *)

(** {1 Errors} *)

type error =
  | Unsupported_network of string
      (** network feature outside the bound analysis (e.g. delay stations) *)
  | Infeasible_phase1
      (** the LP admits no point — a constraint-generation bug, since the
          exact solution is always feasible *)
  | Iteration_limit of int  (** pivot budget exhausted *)
  | Invalid_station of int  (** station index out of range *)
  | Invalid_objective of string
      (** malformed metric (negative moment order, level out of range) *)
  | Certificate_failure of Mapqn_lp.Certificate.failure
      (** an LP solve returned a point whose optimality certificate
          (primal residual, dual feasibility, complementary slackness —
          see {!Mapqn_lp.Certificate}) exceeds tolerance; the reported
          interval would not be trustworthy *)

val error_to_string : error -> string

exception Solver_error of error
(** Raised by {!eval}, the per-metric wrappers and {!create_exn} — the
    exception face of {!error} (registered with [Printexc]). *)

(** {1 Construction} *)

(** LP backend: [Revised] (default) prices out of sparse columns with a
    warm-started eta-file basis ({!Mapqn_lp.Revised}); [Dense] is the
    reference dense-tableau simplex ({!Mapqn_lp.Simplex}), kept as a
    cross-check oracle and for [--solver=dense]. Both produce intervals
    that agree within solver tolerances. *)
type solver = Dense | Revised

val create :
  ?solver:solver ->
  ?config:Constraints.config ->
  ?max_iter:int ->
  Mapqn_model.Network.t ->
  (t, error) result
(** Build the LP and run phase 1. Default config is
    {!Constraints.standard}, default solver {!Revised}. *)

val create_exn :
  ?solver:solver ->
  ?config:Constraints.config ->
  ?max_iter:int ->
  Mapqn_model.Network.t ->
  t
(** Like {!create}; raises {!Solver_error}. *)

val network : t -> Mapqn_model.Network.t
val space : t -> Marginal_space.t
val config : t -> Constraints.config

val solver : t -> solver
(** The backend this instance was created with. *)

val lp_size : t -> int * int
(** [(variables, rows)] of the underlying LP model. *)

(** {1 Metrics} *)

(** A performance metric of the network, bounded through the LP. Station
    arguments are indices into the network; [Queue_length_moment (k, r)]
    is [E\[n_k^r\]]; [Response_time] is derived from the reference
    station's throughput via Little's law. *)
type metric =
  | Throughput of int
  | Utilization of int
  | Mean_queue_length of int
  | Queue_length_moment of int * int
  | Marginal_probability of { station : int; level : int }
  | Response_time of { reference : int }

val metric_to_string : metric -> string

val eval : t -> metric list -> (metric * interval) list
(** Bound every metric in the list, in order, over the shared prepared
    LP — the primary query entry point. On the {!Revised} backend the
    underlying optimizations warm-start from one another. Results pair
    each requested metric with its interval. Raises {!Solver_error} on an
    invalid metric ({!Invalid_station}, {!Invalid_objective}) or when the
    simplex hits its iteration limit. *)

(** {2 Single-metric convenience wrappers}

    Each is exactly a one-element {!eval} call (same validation, same
    code path, same exceptions). *)

val throughput : t -> int -> interval
(** Completion-rate bounds at a station:
    [X_k = Σ_{n>=1,h} λ_k(h_k) v_k(n,h)]. *)

val utilization : t -> int -> interval
(** [U_k = 1 - Σ_h v_k(0,h)], clamped to [\[0,1\]]. *)

val mean_queue_length : t -> int -> interval
val queue_length_moment : t -> int -> int -> interval
val marginal_probability : t -> station:int -> level:int -> interval

val response_time : ?reference:int -> t -> interval
(** Little's-law response time [R = N / X_ref] (default reference station
    0): [R_min = N / X_max], [R_max = N / X_min] — exactly the paper's
    derivation of response-time bounds from throughput bounds. An LP
    throughput lower bound of 0 yields [upper = infinity]; the interval
    helpers above stay NaN-free on such intervals. *)

(** {1 Advanced queries} *)

val sensitivity :
  ?top:int ->
  t ->
  Mapqn_lp.Simplex.direction ->
  (int * float) list ->
  (string * float) list
(** The constraints that drive a bound: names and dual values (shadow
    prices) of the rows with the largest |dual| at the optimum of the
    given objective/direction (default the top 10). A large |dual| means
    the bound is sensitive to that balance equation — useful for
    understanding where tightness comes from (see the ablation bench). *)

val custom : t -> (int * float) list -> interval
(** Bounds on an arbitrary linear function of the marginal-space variables
    (indices from {!Marginal_space}). Raises {!Solver_error} if the
    simplex hits its iteration limit. *)
