(** Linear-programming performance bounds for MAP queueing networks — the
    paper's contribution.

    [create] assembles the marginal-balance LP for a network (one phase-1
    simplex run); each metric query then solves two phase-2 problems
    (minimize and maximize the metric as a linear function of the
    aggregate probabilities) over the same feasible region. Because every
    constraint is exact, the true value always lies in the returned
    interval; tightness depends on the constraint families enabled
    ({!Constraints.config}).

    {b Batch evaluation.} {!eval} is the primary query entry point: it
    evaluates a whole report of metrics in one sweep. On the default
    {!Revised} backend each optimization warm-starts from the basis left
    by the previous one, so a full report costs little more than its
    hardest single metric; the per-metric functions ({!throughput},
    {!utilization}, ...) are one-element [eval] calls kept for
    convenience. *)

type t

(** {1 Intervals} *)

type interval = { lower : float; upper : float }

val width : interval -> float
(** [upper - lower]; [0.] when the endpoints are equal (including two
    infinite endpoints of the same sign — never NaN). *)

val midpoint : interval -> float
(** Midpoint; an infinite endpoint dominates, and [0.] for
    [(-inf, +inf)] — never NaN. *)

val contains : interval -> float -> bool
(** Within a small numerical tolerance (1e-7 absolute + relative, computed
    from the finite endpoints only, so intervals with infinite endpoints
    behave set-theoretically). *)

(** {1 Errors} *)

type error =
  | Unsupported_network of string
      (** network feature outside the bound analysis (e.g. delay stations) *)
  | Infeasible_phase1
      (** the LP admits no point — a constraint-generation bug, since the
          exact solution is always feasible *)
  | Iteration_limit of int  (** pivot budget exhausted *)
  | Invalid_station of int  (** station index out of range *)
  | Invalid_objective of string
      (** malformed metric (negative moment order, level out of range) *)
  | Certificate_failure of Mapqn_lp.Certificate.failure
      (** an LP solve returned a point whose optimality certificate
          (primal residual, dual feasibility, complementary slackness —
          see {!Mapqn_lp.Certificate}) exceeds tolerance; the reported
          interval would not be trustworthy *)

val error_to_string : error -> string

exception Solver_error of error
(** Raised by {!eval}, the per-metric wrappers and {!create_exn} — the
    exception face of {!error} (registered with [Printexc]). *)

(** {1 Construction} *)

(** LP backend: [Revised] (default) prices out of sparse columns with a
    warm-started eta-file basis ({!Mapqn_lp.Revised}); [Dense] is the
    reference dense-tableau simplex ({!Mapqn_lp.Simplex}), kept as a
    cross-check oracle and for [--solver=dense]. Both produce intervals
    that agree within solver tolerances. *)
type solver = Dense | Revised

(** Policy for the certificate {b rescue ladder}. When a solve's
    optimality certificate fails, the evaluation escalates through
    increasingly drastic retries — refine (rebuild the factorization and
    re-optimize), reperturb (fresh prepare at a 100× tighter
    anti-degeneracy perturbation), cold re-solve (fresh perturbation
    draw, warm-start state discarded), dense-tableau oracle — and the
    first rung whose result certifies wins, recorded as a typed
    {!Mapqn_obs.Health.rescue} outcome in the run ledger.

    The same ladder (minus the refine rung — there is no optimal basis
    yet) also rescues a {e failed prepare}: phase 1 reporting the LP
    infeasible or hitting its iteration cap is always numerics on these
    models, since the exact aggregated solution is feasible by
    construction.

    [max_rung] caps the ladder (0 disables it: certificate failures
    raise immediately, the pre-ladder behaviour). [accept_uncertified]
    (default [false]) makes an exhausted ladder return the original
    near-optimal objective and record {!Mapqn_obs.Health.Uncertified}
    instead of raising [Certificate_failure] — for harvest/diagnostic
    runs that must observe failures without dying on them. *)
type rescue_policy = { max_rung : int; accept_uncertified : bool }

val default_rescue : rescue_policy
(** [{ max_rung = 4; accept_uncertified = false }] — the full ladder,
    failures after rung 4 raise. *)

val create :
  ?solver:solver ->
  ?config:Constraints.config ->
  ?max_iter:int ->
  ?rescue:rescue_policy ->
  Mapqn_model.Network.t ->
  (t, error) result
(** Build the LP and run phase 1. Default config is
    {!Constraints.standard}, default solver {!Revised}, default rescue
    policy {!default_rescue}. *)

val create_exn :
  ?solver:solver ->
  ?config:Constraints.config ->
  ?max_iter:int ->
  ?rescue:rescue_policy ->
  Mapqn_model.Network.t ->
  t
(** Like {!create}; raises {!Solver_error}. *)

val network : t -> Mapqn_model.Network.t
val space : t -> Marginal_space.t
val config : t -> Constraints.config

val solver : t -> solver
(** The backend this instance was created with. *)

val lp_size : t -> int * int
(** [(variables, rows)] of the underlying LP model. *)

(** {1 Metrics} *)

(** A performance metric of the network, bounded through the LP. Station
    arguments are indices into the network; [Queue_length_moment (k, r)]
    is [E\[n_k^r\]]; [Response_time] is derived from the reference
    station's throughput via Little's law. *)
type metric =
  | Throughput of int
  | Utilization of int
  | Mean_queue_length of int
  | Queue_length_moment of int * int
  | Marginal_probability of { station : int; level : int }
  | Response_time of { reference : int }

val metric_to_string : metric -> string

val eval : t -> metric list -> (metric * interval) list
(** Bound every metric in the list, in order, over the shared prepared
    LP — the primary query entry point. On the {!Revised} backend the
    underlying optimizations warm-start from one another. Results pair
    each requested metric with its interval. Raises {!Solver_error} on an
    invalid metric ({!Invalid_station}, {!Invalid_objective}) or when the
    simplex hits its iteration limit. *)

(** {2 Single-metric convenience wrappers}

    Each is exactly a one-element {!eval} call (same validation, same
    code path, same exceptions). *)

val throughput : t -> int -> interval
(** Completion-rate bounds at a station:
    [X_k = Σ_{n>=1,h} λ_k(h_k) v_k(n,h)]. *)

val utilization : t -> int -> interval
(** [U_k = 1 - Σ_h v_k(0,h)], clamped to [\[0,1\]]. *)

val mean_queue_length : t -> int -> interval
val queue_length_moment : t -> int -> int -> interval
val marginal_probability : t -> station:int -> level:int -> interval

val response_time : ?reference:int -> t -> interval
(** Little's-law response time [R = N / X_ref] (default reference station
    0): [R_min = N / X_max], [R_max = N / X_min] — exactly the paper's
    derivation of response-time bounds from throughput bounds. An LP
    throughput lower bound of 0 yields [upper = infinity]; the interval
    helpers above stay NaN-free on such intervals. *)

(** {1 Advanced queries} *)

val sensitivity :
  ?top:int ->
  t ->
  Mapqn_lp.Simplex.direction ->
  (int * float) list ->
  (string * float) list
(** The constraints that drive a bound: names and dual values (shadow
    prices) of the rows with the largest |dual| at the optimum of the
    given objective/direction (default the top 10). A large |dual| means
    the bound is sensitive to that balance equation — useful for
    understanding where tightness comes from (see the ablation bench). *)

val custom : t -> (int * float) list -> interval
(** Bounds on an arbitrary linear function of the marginal-space variables
    (indices from {!Marginal_space}). Raises {!Solver_error} if the
    simplex hits its iteration limit. *)

(** {1 Population sweeps}

    The paper's experiments evaluate the same network at many
    populations. A sweep engine makes that super-linear instead of
    one-cold-solve-per-N: the constraint system is extended from the
    previous population instead of re-derived
    ({!Constraints.Incremental}), and on the {!Revised} backend phase 1
    is warm-started from the previous population's final basis —
    structural variables are carried over by role (station, level,
    phase), row slacks by row name, and the new levels are covered by
    their own balance variables — falling back to a cold preparation
    whenever the seed does not take. Results are identical to per-N
    {!create} up to solver tolerances, and every metric query on a
    stepped {!t} still runs under an optimality certificate.

    {b Migration.} Replace a loop of [Bounds.create_exn] over
    populations with one {!Sweep.create} and a {!Sweep.step} (or
    {!Sweep.run}, which also owns the progress reporting) per
    population; everything downstream of the returned {!t} is
    unchanged. *)

module Sweep : sig
  type bounds := t

  type t
  (** A sweep in progress: constraint templates plus the previous
      population's solver state. Mutable; step populations in the order
      you want the warm starts chained (ascending is the effective
      direction). *)

  val create :
    ?solver:solver ->
    ?config:Constraints.config ->
    ?max_iter:int ->
    ?warm_start:bool ->
    ?rescue:rescue_policy ->
    (int -> Mapqn_model.Network.t) ->
    t
  (** [create network_of]: an engine for the family
      [network_of population]. The function must return networks that
      differ only in population (same stations and routing — enforced by
      the constraint builder). [warm_start] (default [true]) is the
      opt-out flag: [false] prepares every population cold, which is the
      reference behaviour warm results are tested against. [rescue]
      (default {!default_rescue}) is installed in every stepped bounds
      instance. *)

  val step : t -> int -> (bounds, error) result
  (** Prepare the LP for one population, seeded from the previous
      {!step}'s final basis (on the revised backend, with warm starts
      enabled). The returned handle answers every query of this module;
      keep it only as long as needed — the engine retains at most the
      latest one. *)

  val step_exn : t -> int -> bounds
  (** Like {!step}; raises {!Solver_error}. *)

  val solver : t -> solver
  val config : t -> Constraints.config

  val warm_start : t -> bool
  (** Whether warm starts are enabled (the [create] flag). *)

  type stats = {
    steps : int;  (** populations prepared *)
    warm : int;  (** steps whose seed took *)
    cold : int;  (** first steps, opt-outs and fallbacks *)
    refactorizations : int;  (** basis refactorizations across the sweep *)
    pivots : int;  (** simplex pivots across the sweep *)
  }

  val stats : t -> stats

  val run :
    ?progress:Mapqn_obs.Progress.t ->
    ?seed:int ->
    ?skip:(string -> bool) ->
    ?label:(int -> string) ->
    t ->
    populations:int list ->
    f:(phase:(string -> unit) -> bounds:(unit -> bounds) -> int -> 'a) ->
    (int * 'a) list
  (** Drive a whole sweep, folding in the progress wiring the
      experiment runners used to duplicate: one progress model per
      population (id [label population], default ["N=<n>"]), [phase]
      forwarding, skip/resume support ([skip id] consults e.g.
      {!Mapqn_obs.Progress.load_completed} ids and skipped populations
      are reported and omitted from the result), and lazy stepping —
      [f]'s [bounds] thunk runs {!step_exn} under a ["bounds"] phase on
      first use, so [f] chooses where in its phase sequence the LP work
      happens. Returns [(population, f result)] in sweep order. *)
end
