module Ms = Marginal_space
module Lp = Mapqn_lp.Lp_model
module Simplex = Mapqn_lp.Simplex
module Revised = Mapqn_lp.Revised
module Certificate = Mapqn_lp.Certificate
module Trace = Mapqn_obs.Trace
module Health = Mapqn_obs.Health
module Ledger = Mapqn_obs.Ledger
module Json = Mapqn_obs.Json

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error =
  | Unsupported_network of string
  | Infeasible_phase1
  | Iteration_limit of int
  | Invalid_station of int
  | Invalid_objective of string
  | Certificate_failure of Certificate.failure

let error_to_string = function
  | Unsupported_network what -> what ^ " is not supported by the bound analysis"
  | Infeasible_phase1 ->
    "marginal-balance LP is infeasible — this indicates a constraint \
     generation bug, since the exact solution is always feasible"
  | Iteration_limit k -> Printf.sprintf "simplex iteration limit (%d pivots)" k
  | Invalid_station k -> Printf.sprintf "station index %d is out of range" k
  | Invalid_objective what -> "invalid objective: " ^ what
  | Certificate_failure f -> Certificate.failure_to_string f

exception Solver_error of error

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Bounds.Solver_error: " ^ error_to_string e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

type interval = { lower : float; upper : float }

(* The interval arithmetic must survive infinite endpoints: response-time
   bounds are [infinity] whenever the LP throughput lower bound is 0
   (which is common — weak constraint configs cannot exclude starvation),
   and naive float arithmetic turns those into NaN ([inf - inf],
   [0.5 * (-inf + inf)], [1e-7 * inf] tolerances). *)

let width i = if i.lower = i.upper then 0. else i.upper -. i.lower

let midpoint i =
  if i.lower = i.upper then i.lower
  else if i.lower = neg_infinity && i.upper = infinity then 0.
  else 0.5 *. (i.lower +. i.upper)

let contains i x =
  let finite_mag v = if Float.is_finite v then Float.abs v else 0. in
  let tol =
    1e-7 *. Float.max 1. (Float.max (finite_mag i.lower) (finite_mag i.upper))
  in
  x >= i.lower -. tol && x <= i.upper +. tol

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type solver = Dense | Revised

type backend = B_dense of Simplex.prepared | B_revised of Revised.t

(* Certificate rescue policy. On a certificate failure the solve
   escalates through a ladder of increasingly drastic retries (refine →
   reperturb tighter → cold re-solve → dense-tableau oracle);
   [max_rung] caps how far it may climb and [accept_uncertified] turns
   an exhausted ladder into a recorded [Health.Uncertified] outcome
   instead of a raised [Certificate_failure]. *)
type rescue_policy = { max_rung : int; accept_uncertified : bool }

let default_rescue = { max_rung = 4; accept_uncertified = false }

type t = {
  network : Mapqn_model.Network.t;
  ms : Ms.t;
  model : Lp.t;
  mutable backend : backend;
      (* the rescue ladder swaps in the re-prepared state that produced
         the accepted result, so later objectives benefit from it *)
  config : Constraints.config;
  max_iter : int option;
  rescue : rescue_policy;
  (* Work counters of backends the rescue ladder retired, so
     [work_snapshot] deltas stay monotone across a swap. *)
  mutable retired_pivots : int;
  mutable retired_refactors : int;
  mutable retired_stability : int;
  mutable retired_growth : int;
  mutable retired_drift : int;
  mutable retired_backstop : int;
}

let default_solver = Revised

let m_rescues =
  Mapqn_obs.Metrics.counter
    ~help:"Certificate or phase-1 failures that entered the rescue ladder."
    "bounds_rescue_attempts_total"

(* The dense oracle materializes an m×n tableau; past ~2e6 cells the
   memory and per-pivot cost stop being a rescue and start being a
   hang, and the big-population LPs it would cover are not where the
   hard models live anyway. *)
let dense_rescue_cells = 2_000_000

(* Phase-1 rescue. [Revised.prepare] reporting the LP infeasible (or
   hitting its phase-1 iteration cap) is always numerics on these
   models — the exact aggregated solution is feasible by construction —
   so a failed prepare climbs the same ladder as a failed certificate,
   minus the refine rung (there is no optimal basis to refine): a 100×
   tighter reperturbation, a cold re-solve at a shifted salt base, then
   the dense tableau as an independent oracle. The winning rung is
   recorded as the solve's {!Health.rescue} cause. *)
let rescue_prepare ~policy ?max_iter model err =
  Mapqn_obs.Metrics.inc m_rescues;
  let attempt depth rung prepare =
    if depth > policy.max_rung then None
    else
      match prepare () with
      | Ok p ->
        Health.observe_rescue rung;
        Some p
      | Error _ -> None
  in
  let reperturbed () =
    attempt 2 Health.Reperturbed (fun () ->
        Result.map
          (fun p -> B_revised p)
          (Revised.prepare ?max_iter ~pert_scale:0.01 ~salt:0 model))
  and cold_resolve () =
    attempt 3 Health.Cold_resolve (fun () ->
        Result.map
          (fun p -> B_revised p)
          (Revised.prepare ?max_iter ~pert_scale:0.1 ~salt:7 model))
  and dense_oracle () =
    if Lp.num_vars model * Lp.num_rows model > dense_rescue_cells then None
    else
      attempt 4 Health.Dense_oracle (fun () ->
          Result.map (fun p -> B_dense p) (Simplex.prepare ?max_iter model))
  in
  let rescued =
    Mapqn_obs.Span.with_ "bounds.rescue" (fun () ->
        match reperturbed () with
        | Some _ as r -> r
        | None -> (
          match cold_resolve () with
          | Some _ as r -> r
          | None -> dense_oracle ()))
  in
  match rescued with Some b -> Ok b | None -> Error err

let create ?(solver = default_solver) ?(config = Constraints.standard) ?max_iter
    ?(rescue = default_rescue) network =
  Mapqn_obs.Span.with_ "bounds.create" @@ fun () ->
  if Mapqn_model.Network.has_delay network then
    Error (Unsupported_network "a delay (infinite-server) station")
  else begin
    let ms, model = Constraints.build config network in
    let lift = function
      | Ok backend ->
        Ok
          {
            network;
            ms;
            model;
            backend;
            config;
            max_iter;
            rescue;
            retired_pivots = 0;
            retired_refactors = 0;
            retired_stability = 0;
            retired_growth = 0;
            retired_drift = 0;
            retired_backstop = 0;
          }
      | Error Simplex.Infeasible_phase1 -> Error Infeasible_phase1
      | Error (Simplex.Iteration_limit_phase1 k) -> Error (Iteration_limit k)
    in
    Mapqn_obs.Span.with_ "bounds.prepare" @@ fun () ->
    match solver with
    | Dense ->
      lift (Result.map (fun p -> B_dense p) (Simplex.prepare ?max_iter model))
    | Revised -> (
      match Revised.prepare ?max_iter model with
      | Ok p -> lift (Ok (B_revised p))
      | Error e -> lift (rescue_prepare ~policy:rescue ?max_iter model e))
  end

let create_exn ?solver ?config ?max_iter ?rescue network =
  match create ?solver ?config ?max_iter ?rescue network with
  | Ok t -> t
  | Error e -> raise (Solver_error e)

let network t = t.network
let space t = t.ms
let config t = t.config
let solver t = match t.backend with B_dense _ -> Dense | B_revised _ -> Revised
let lp_size t = (Lp.num_vars t.model, Lp.num_rows t.model)

(* ------------------------------------------------------------------ *)
(* Optimization over the prepared LP                                   *)
(* ------------------------------------------------------------------ *)

let m_objectives =
  Mapqn_obs.Metrics.counter ~help:"Bound objectives optimized over the prepared LP."
    "bounds_objectives_total"

let m_evals =
  Mapqn_obs.Metrics.counter
    ~help:"Batch metric evaluations (Bounds.eval calls, including the \
           one-metric convenience wrappers)."
    "bounds_evals_total"

let m_eval_seconds =
  Mapqn_obs.Metrics.histogram
    ~help:"Wall time of each Bounds.eval call (all requested metrics)."
    "bounds_eval_seconds"

(* ------------------------------------------------------------------ *)
(* Run-ledger provenance                                               *)
(* ------------------------------------------------------------------ *)

(* Deltas of the revised-solver work counters around one unit of
   ledger-recorded work (an eval or a sweep step). These come from the
   backend instance's own [Revised.stats] — NOT the process-wide
   metric counters — so a record's deltas stay correct when other
   domains are solving concurrently (a fleet run). Prepare-phase work
   (phase 1, seeded feasibility restoration) counts toward the step
   that performs it. *)
type work_snapshot = {
  ws_pivots : float;
  ws_refactors : float;
  ws_stability : float;
  ws_growth : float;
  ws_drift : float;
  ws_backstop : float;
}

let zero_work =
  {
    ws_pivots = 0.;
    ws_refactors = 0.;
    ws_stability = 0.;
    ws_growth = 0.;
    ws_drift = 0.;
    ws_backstop = 0.;
  }

let work_snapshot t =
  let cur =
    match t.backend with
    | B_dense _ -> zero_work
    | B_revised r ->
      let s = Revised.stats r in
      {
        ws_pivots = float_of_int s.Revised.pivots;
        ws_refactors = float_of_int s.Revised.refactorizations;
        ws_stability = float_of_int s.Revised.refactor_stability;
        ws_growth = float_of_int s.Revised.refactor_growth;
        ws_drift = float_of_int s.Revised.refactor_drift;
        ws_backstop = float_of_int s.Revised.refactor_backstop;
      }
  in
  {
    ws_pivots = cur.ws_pivots +. float_of_int t.retired_pivots;
    ws_refactors = cur.ws_refactors +. float_of_int t.retired_refactors;
    ws_stability = cur.ws_stability +. float_of_int t.retired_stability;
    ws_growth = cur.ws_growth +. float_of_int t.retired_growth;
    ws_drift = cur.ws_drift +. float_of_int t.retired_drift;
    ws_backstop = cur.ws_backstop +. float_of_int t.retired_backstop;
  }

(* Retire the current backend's work into the running totals and swap in
   the replacement the rescue ladder prepared. *)
let swap_backend t backend =
  (match t.backend with
  | B_dense _ -> ()
  | B_revised r ->
    let s = Revised.stats r in
    t.retired_pivots <- t.retired_pivots + s.Revised.pivots;
    t.retired_refactors <- t.retired_refactors + s.Revised.refactorizations;
    t.retired_stability <- t.retired_stability + s.Revised.refactor_stability;
    t.retired_growth <- t.retired_growth + s.Revised.refactor_growth;
    t.retired_drift <- t.retired_drift + s.Revised.refactor_drift;
    t.retired_backstop <- t.retired_backstop + s.Revised.refactor_backstop);
  t.backend <- backend

let solver_name t =
  match t.backend with B_dense _ -> "dense" | B_revised _ -> "revised"

(* The common tail of an "eval" / "sweep_step" ledger record: model
   fingerprint, LP size, solver work deltas by refactorization cause,
   the certificate residual triple (with the tolerances it was judged
   against) and the numerical-health snapshot of this unit of work. *)
let ledger_fields t ~duration ~before =
  let after = work_snapshot t in
  let h = Health.current () in
  let nvars, nrows = lp_size t in
  let num v = Json.Number v in
  [
    ("fingerprint", Json.String (Mapqn_model.Network.fingerprint t.network));
    ( "population",
      num (float_of_int (Mapqn_model.Network.population t.network)) );
    ("solver", Json.String (solver_name t));
    ("lp_vars", num (float_of_int nvars));
    ("lp_rows", num (float_of_int nrows));
    ("duration_s", num duration);
    ("pivots", num (after.ws_pivots -. before.ws_pivots));
    ("refactorizations", num (after.ws_refactors -. before.ws_refactors));
    ( "refactor_causes",
      Json.Object
        [
          ("stability", num (after.ws_stability -. before.ws_stability));
          ("growth", num (after.ws_growth -. before.ws_growth));
          ("drift", num (after.ws_drift -. before.ws_drift));
          ("backstop", num (after.ws_backstop -. before.ws_backstop));
        ] );
    ( "certificate",
      Json.Object
        [
          ("primal_residual", num h.Health.cert_primal);
          ("dual_violation", num h.Health.cert_dual);
          ("comp_slack", num h.Health.cert_comp);
          ("failures", num (float_of_int h.Health.cert_failures));
          ("tol_primal", num Certificate.default_tol_primal);
          ("tol_dual", num Certificate.default_tol_dual);
          ("tol_comp", num Certificate.default_tol_comp);
        ] );
    ("health", Health.to_json h);
  ]

let backend_optimize t direction objective =
  match t.backend with
  | B_dense p -> Simplex.optimize ?max_iter:t.max_iter p direction objective
  | B_revised p -> Revised.optimize ?max_iter:t.max_iter p direction objective

(* Optimality certificates for every solved objective. The direction
   label keeps the two endpoints of each interval distinguishable in
   metrics and traces. *)
let m_certificates =
  Mapqn_obs.Metrics.counter
    ~help:"LP optimality certificates computed (one per solved objective)."
    "bounds_certificates_total"

let m_certificate_failures =
  Mapqn_obs.Metrics.counter
    ~help:"LP optimality certificates that exceeded tolerance."
    "bounds_certificate_failures_total"

let m_cert_primal =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst primal residual over the certificates of this run."
    "bounds_certificate_primal_residual"

let m_cert_dual =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst dual-feasibility violation over the certificates of this run."
    "bounds_certificate_dual_violation"

let m_cert_comp =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst complementary-slackness gap over the certificates of this run."
    "bounds_certificate_comp_slack"

(* One certificate check, with metrics and trace but no policy: returns
   the failure instead of raising so the rescue ladder can escalate. *)
let certify_check t direction objective s =
  let label =
    match direction with Simplex.Minimize -> "min" | Simplex.Maximize -> "max"
  in
  Mapqn_obs.Metrics.inc m_certificates;
  let outcome =
    Mapqn_obs.Span.with_ "bounds.certify" (fun () ->
        Certificate.check t.model direction ~objective s)
  in
  let cert =
    match outcome with
    | Ok c -> c
    | Error (f : Certificate.failure) -> f.Certificate.certificate
  in
  Mapqn_obs.Metrics.set_max m_cert_primal cert.Certificate.primal_residual;
  Mapqn_obs.Metrics.set_max m_cert_dual cert.Certificate.dual_violation;
  Mapqn_obs.Metrics.set_max m_cert_comp cert.Certificate.comp_slack;
  if Trace.is_enabled () then
    Trace.record
      (Trace.Certificate
         {
           label;
           primal_residual = cert.Certificate.primal_residual;
           dual_violation = cert.Certificate.dual_violation;
           comp_slack = cert.Certificate.comp_slack;
           accepted = Result.is_ok outcome;
         });
  Result.map (fun _ -> ()) outcome

(* ------------------------------------------------------------------ *)
(* Certificate rescue ladder                                           *)
(* ------------------------------------------------------------------ *)

(* Escalation on a failed certificate. Each rung re-derives the solution
   by a more drastic (and more expensive) route and re-certifies; the
   first passing rung wins and is recorded as a typed
   {!Health.rescue} outcome in the ledger. The ladder:

   1. [Refined]      — rebuild the factorization of the same basis and
                       re-optimize warm: washes out eta-file drift the
                       in-solve refinement could not correct through a
                       stale factorization.
   2. [Reperturbed]  — fresh prepare at a 100× tighter perturbation:
                       the witness tracks the true constraints 100×
                       closer, at some risk of degenerate cycling
                       (phase 1's salt-retry ladder covers that).
   3. [Cold_resolve] — fresh prepare at a different perturbation salt
                       base and a 10× tighter scale: an entirely
                       different degenerate trajectory, discarding all
                       warm-start state.
   4. [Dense_oracle] — the dense-tableau backend as an independent
                       oracle, gated by LP size (its tableau is m×n
                       dense where the revised solver is O(nnz)).

   Rungs 2-4 swap the state that produced the accepted result into
   [t.backend] (retiring the old state's work counters), so subsequent
   objectives on this model start from the healthier state instead of
   re-climbing the ladder. *)

let rescue t direction objective (f0 : Certificate.failure) =
  Mapqn_obs.Metrics.inc m_rescues;
  let reoptimize () = backend_optimize t direction objective in
  (* Run one rung: [solve ()] produces an outcome; a passing certificate
     on an optimal solution records the rung's rescue cause and returns
     the solution. [install] (for rungs that prepared a replacement
     state) runs only once the certificate has passed, so a failing
     rung leaves [t.backend] untouched. *)
  let attempt rung ?install solve =
    match solve () with
    | Simplex.Optimal s -> (
      match certify_check t direction objective s with
      | Ok () ->
        Option.iter (fun f -> f ()) install;
        Health.observe_rescue rung;
        Some s
      | Error _ -> None)
    | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> None
  in
  let rung_refine () =
    match t.backend with
    | B_dense _ -> None
    | B_revised r ->
      attempt Health.Refined (fun () ->
          Revised.force_refactor r;
          reoptimize ())
  in
  let rung_reprepare rung ~pert_scale ~salt () =
    match t.backend with
    | B_dense _ -> None
    | B_revised _ -> (
      match
        Revised.prepare ?max_iter:t.max_iter ~pert_scale ~salt t.model
      with
      | Error _ -> None
      | Ok p ->
        attempt rung
          ~install:(fun () -> swap_backend t (B_revised p))
          (fun () ->
            Revised.optimize ?max_iter:t.max_iter p direction objective))
  in
  let rung_dense () =
    let nvars, nrows = (Lp.num_vars t.model, Lp.num_rows t.model) in
    if nvars * nrows > dense_rescue_cells then None
    else
      match Simplex.prepare ?max_iter:t.max_iter t.model with
      | Error _ -> None
      | Ok p ->
        attempt Health.Dense_oracle
          ~install:(fun () ->
            match t.backend with
            | B_dense _ -> ()
            | B_revised _ -> swap_backend t (B_dense p))
          (fun () -> Simplex.optimize ?max_iter:t.max_iter p direction objective)
  in
  let scale = match t.backend with
    | B_revised r -> Revised.pert_scale r
    | B_dense _ -> 1.
  in
  let rungs =
    [
      (1, rung_refine);
      (2, rung_reprepare Health.Reperturbed ~pert_scale:(scale *. 0.01) ~salt:0);
      (3, rung_reprepare Health.Cold_resolve ~pert_scale:(scale *. 0.1) ~salt:7);
      (4, rung_dense);
    ]
  in
  let rec climb = function
    | [] ->
      if t.rescue.accept_uncertified then begin
        Health.observe_rescue Health.Uncertified;
        None
      end
      else begin
        Mapqn_obs.Metrics.inc m_certificate_failures;
        raise (Solver_error (Certificate_failure f0))
      end
    | (depth, rung) :: rest ->
      if depth > t.rescue.max_rung then climb []
      else (
        match rung () with Some s -> Some s | None -> climb rest)
  in
  Mapqn_obs.Span.with_ "bounds.rescue" (fun () -> climb rungs)

let optimize t direction objective =
  Mapqn_obs.Metrics.inc m_objectives;
  Mapqn_obs.Span.with_ "bounds.optimize" @@ fun () ->
  let objective =
    List.map (fun (i, c) -> (Lp.var_of_int t.model i, c)) objective
  in
  match backend_optimize t direction objective with
  | Simplex.Optimal s -> (
    match certify_check t direction objective s with
    | Ok () -> s.Simplex.objective
    | Error f -> (
      match rescue t direction objective f with
      | Some s' -> s'.Simplex.objective
      | None ->
        (* Ladder exhausted under [accept_uncertified]: the original
           point is still the best available near-optimal solution —
           report it, with the Uncertified outcome in the ledger. *)
        s.Simplex.objective))
  | Simplex.Infeasible -> failwith "Bounds: phase-2 infeasibility (bug)"
  | Simplex.Unbounded ->
    failwith "Bounds: unbounded objective (missing normalization constraint?)"
  | Simplex.Iteration_limit ->
    raise
      (Solver_error
         (Iteration_limit (Option.value t.max_iter ~default:(-1))))

let sensitivity ?(top = 10) t direction objective =
  let objective =
    List.map (fun (i, c) -> (Lp.var_of_int t.model i, c)) objective
  in
  match backend_optimize t direction objective with
  | Simplex.Optimal s ->
    let names =
      Array.of_list (List.map (fun (_, _, _, name) -> name) (Lp.rows t.model))
    in
    let pairs = ref [] in
    Array.iteri
      (fun i d -> if Float.abs d > 1e-9 then pairs := (names.(i), d) :: !pairs)
      s.Simplex.duals;
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) !pairs
    in
    List.filteri (fun i _ -> i < top) sorted
  | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> []

let custom t objective =
  let lower = optimize t Simplex.Minimize objective in
  let upper = optimize t Simplex.Maximize objective in
  (* The simplex solves a slightly perturbed problem (anti-degeneracy) and
     stops at loose reduced-cost tolerances, so each optimum can sit a few
     parts in 1e6 inside the true one. Widen by a conservative margin so
     the returned interval is always a valid bound; the margin is orders
     of magnitude below the accuracy being studied. *)
  let margin v = 1e-5 *. Float.max 1. (Float.abs v) in
  let lower = lower -. margin lower and upper = upper +. margin upper in
  { lower = Float.min lower upper; upper = Float.max lower upper }

let clamp_interval ~lo ~hi i =
  { lower = Mapqn_util.Tol.clamp ~lo ~hi i.lower; upper = Mapqn_util.Tol.clamp ~lo ~hi i.upper }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type metric =
  | Throughput of int
  | Utilization of int
  | Mean_queue_length of int
  | Queue_length_moment of int * int
  | Marginal_probability of { station : int; level : int }
  | Response_time of { reference : int }

let metric_to_string = function
  | Throughput k -> Printf.sprintf "throughput(%d)" k
  | Utilization k -> Printf.sprintf "utilization(%d)" k
  | Mean_queue_length k -> Printf.sprintf "mean_queue_length(%d)" k
  | Queue_length_moment (k, r) -> Printf.sprintf "queue_length_moment(%d, %d)" k r
  | Marginal_probability { station; level } ->
    Printf.sprintf "marginal_probability(%d, n=%d)" station level
  | Response_time { reference } -> Printf.sprintf "response_time(ref=%d)" reference

let check_station t k =
  if k < 0 || k >= Ms.num_stations t.ms then raise (Solver_error (Invalid_station k))

let validate_metric t = function
  | Throughput k | Utilization k | Mean_queue_length k
  | Response_time { reference = k } ->
    check_station t k
  | Queue_length_moment (k, r) ->
    check_station t k;
    if r < 0 then
      raise
        (Solver_error
           (Invalid_objective
              (Printf.sprintf "queue-length moment of negative order %d" r)))
  | Marginal_probability { station; level } ->
    check_station t station;
    if level < 0 || level > Ms.population t.ms then
      raise
        (Solver_error
           (Invalid_objective
              (Printf.sprintf "queue-length level %d outside [0, %d]" level
                 (Ms.population t.ms))))

(* The LP objective of a directly-representable metric, or [None] when the
   metric is identically zero (empty population edge cases). *)
let metric_terms t = function
  | Response_time _ -> assert false (* derived, handled in eval_one *)
  | Throughput k ->
    let rates =
      Mapqn_map.Process.completion_rates
        (Mapqn_model.Station.service_process
           (Mapqn_model.Network.station t.network k))
    in
    let terms = ref [] in
    for n = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          let rate = rates.(Ms.phase_component t.ms h k) in
          if rate <> 0. then
            terms := (Ms.v t.ms ~station:k ~level:n ~phase:h, rate) :: !terms)
    done;
    !terms
  | Utilization k ->
    let terms = ref [] in
    for level = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          terms := (Ms.v t.ms ~station:k ~level ~phase:h, 1.) :: !terms)
    done;
    !terms
  | Mean_queue_length k ->
    let terms = ref [] in
    for level = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          terms := (Ms.v t.ms ~station:k ~level ~phase:h, float_of_int level) :: !terms)
    done;
    !terms
  | Queue_length_moment (k, r) ->
    let terms = ref [] in
    for level = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          terms :=
            (Ms.v t.ms ~station:k ~level ~phase:h,
             float_of_int level ** float_of_int r)
            :: !terms)
    done;
    !terms
  | Marginal_probability { station; level } ->
    let terms = ref [] in
    Ms.iter_phases t.ms (fun h ->
        terms := (Ms.v t.ms ~station ~level ~phase:h, 1.) :: !terms);
    !terms

let metric_clamp t = function
  | Throughput _ | Response_time _ -> None
  | Utilization _ | Marginal_probability _ -> Some (0., 1.)
  | Mean_queue_length _ ->
    Some (0., float_of_int (Ms.population t.ms))
  | Queue_length_moment (_, r) ->
    Some (0., float_of_int (Ms.population t.ms) ** float_of_int r)

(* [recurse] resolves the metrics a derived metric is built from —
   {!eval} passes a memoizing closure so e.g. a report containing both
   [Throughput k] and [Response_time {reference = k}] solves the
   underlying throughput LPs once. *)
let eval_core t recurse metric =
  validate_metric t metric;
  match metric with
  | Response_time { reference } ->
    (* Little's law, exactly the paper's derivation: R = N / X_ref, so
       R_min = N / X_max and R_max = N / X_min; an LP throughput lower
       bound of 0 yields an infinite upper response-time bound. *)
    let n = float_of_int (Ms.population t.ms) in
    if n = 0. then { lower = 0.; upper = 0. }
    else begin
      let x = recurse (Throughput reference) in
      let upper = if x.lower <= 0. then infinity else n /. x.lower in
      let lower = if x.upper <= 0. then infinity else n /. x.upper in
      { lower; upper }
    end
  | m -> (
    match metric_terms t m with
    | [] -> { lower = 0.; upper = 0. }
    | terms -> (
      let i = custom t terms in
      match metric_clamp t m with
      | None -> i
      | Some (lo, hi) -> clamp_interval ~lo ~hi i))

let eval t metrics =
  Mapqn_obs.Metrics.inc m_evals;
  Mapqn_obs.Span.with_ "bounds.eval" @@ fun () ->
  Health.begin_solve ();
  let before = work_snapshot t in
  let t0 = Mapqn_obs.Span.now () in
  let memo = Hashtbl.create 8 in
  let rec cached m =
    match Hashtbl.find_opt memo m with
    | Some i -> i
    | None ->
      let i = eval_core t cached m in
      Hashtbl.replace memo m i;
      i
  in
  let results = List.map (fun m -> (m, cached m)) metrics in
  let duration = Mapqn_obs.Span.now () -. t0 in
  Mapqn_obs.Metrics.observe m_eval_seconds duration;
  if Ledger.is_enabled () then
    Ledger.record ~event:"eval"
      (ledger_fields t ~duration ~before
      @ [
          ( "metrics",
            Json.List
              (List.map
                 (fun (m, i) ->
                   Json.Object
                     [
                       ("name", Json.String (metric_to_string m));
                       ("lower", Json.Number i.lower);
                       ("upper", Json.Number i.upper);
                     ])
                 results) );
        ]);
  results

(* Convenience wrappers: exactly one-element [eval] calls, so per-metric
   and batch queries go through the identical code path (and, on the
   revised backend, the identical warm-started pivot sequence). *)

let interval_of_eval t metric =
  match eval t [ metric ] with [ (_, i) ] -> i | _ -> assert false

let throughput t k = interval_of_eval t (Throughput k)
let utilization t k = interval_of_eval t (Utilization k)
let mean_queue_length t k = interval_of_eval t (Mean_queue_length k)
let queue_length_moment t k r = interval_of_eval t (Queue_length_moment (k, r))

let marginal_probability t ~station ~level =
  interval_of_eval t (Marginal_probability { station; level })

let response_time ?(reference = 0) t =
  interval_of_eval t (Response_time { reference })

(* ------------------------------------------------------------------ *)
(* Population sweeps                                                   *)
(* ------------------------------------------------------------------ *)

(* Translate a basis described in one population's terms into another's:
   variables by structural role (station, level and phase survive the
   move; levels beyond the new population are dropped), row slacks by
   row name (names are population-stable except at the moved
   boundary). *)
let translate_seeds ~from_ms ~from_model ~to_ms ~to_model seeds =
  let row_index = Hashtbl.create 4096 in
  for r = 0 to Lp.num_rows to_model - 1 do
    Hashtbl.replace row_index (Lp.row_name to_model r) r
  done;
  let n' = Ms.population to_ms in
  let reinstate = function
    | Ms.Role_v { station; level; phase } when level <= n' ->
      Some (Ms.v to_ms ~station ~level ~phase)
    | Ms.Role_w { busy; station; level; phase } when level <= n' ->
      Some (Ms.w to_ms ~busy ~station ~level ~phase)
    | Ms.Role_z { counted; station; level; phase }
      when level <= n' && Ms.has_level2 to_ms ->
      Some (Ms.z to_ms ~counted ~station ~level ~phase)
    | Ms.Role_v _ | Ms.Role_w _ | Ms.Role_z _ -> None
  in
  List.filter_map
    (function
      | Revised.Seed_var i ->
        Option.map
          (fun j -> Revised.Seed_var j)
          (reinstate (Ms.classify from_ms i))
      | Revised.Seed_slack r ->
        Option.map
          (fun r' -> Revised.Seed_slack r')
          (Hashtbl.find_opt row_index (Lp.row_name from_model r)))
    seeds

(* Basic columns for the part of the model the previous basis says
   nothing about — the levels above the old population. Each new balance
   row bal[k,n,h] gets its own v_k(n,h) (the row's diagonal-dominant OUT
   term), and the moved boundary rows (w, z fixed to zero at the new top
   level) get the variable those rows constrain. Rows this still leaves
   uncovered fall back to slacks or artificials inside
   [Revised.prepare_seeded]. *)
let extension_seeds ~from_n to_ms =
  let n' = Ms.population to_ms in
  let m = Ms.num_stations to_ms in
  let seeds = ref [] in
  if n' > from_n then begin
    for n = n' downto from_n + 1 do
      for k = m - 1 downto 0 do
        Ms.iter_phases to_ms (fun h ->
            seeds :=
              Revised.Seed_var (Ms.v to_ms ~station:k ~level:n ~phase:h)
              :: !seeds;
            if Ms.has_level2 to_ms && n < n' then
              (* One z per new zsum[k,n,h] row. *)
              let counted = (k + 1) mod m in
              seeds :=
                Revised.Seed_var
                  (Ms.z to_ms ~counted ~station:k ~level:n ~phase:h)
                :: !seeds)
      done
    done;
    for j = 0 to m - 1 do
      for k = 0 to m - 1 do
        if j <> k then
          Ms.iter_phases to_ms (fun h ->
              seeds :=
                Revised.Seed_var (Ms.w to_ms ~busy:j ~station:k ~level:n' ~phase:h)
                :: !seeds;
              if Ms.has_level2 to_ms then
                seeds :=
                  Revised.Seed_var
                    (Ms.z to_ms ~counted:j ~station:k ~level:n' ~phase:h)
                  :: !seeds)
      done
    done
  end;
  !seeds

module Sweep = struct
  type bounds = t

  let m_steps =
    Mapqn_obs.Metrics.counter ~help:"Populations prepared by sweep engines."
      "bounds_sweep_steps_total"

  let m_step_seconds =
    Mapqn_obs.Metrics.histogram
      ~help:"Wall time of each sweep step (constraint extension + phase 1)."
      "bounds_sweep_step_seconds"

  let m_warm_steps =
    Mapqn_obs.Metrics.counter
      ~help:"Sweep steps whose phase 1 was warm-started from the previous \
             population's basis."
      "bounds_sweep_warm_steps_total"

  let m_cold_steps =
    Mapqn_obs.Metrics.counter
      ~help:"Sweep steps prepared cold (first population, warm start \
             disabled or the seed did not take)."
      "bounds_sweep_cold_steps_total"

  type nonrec t = {
    network_of : int -> Mapqn_model.Network.t;
    solver : solver;
    sconfig : Constraints.config;
    max_iter : int option;
    warm_start : bool;
    srescue : rescue_policy;
    mutable inc : Constraints.Incremental.t option;
    mutable prev : (int * bounds) option;
    mutable steps : int;
    mutable warm : int;
    mutable cold : int;
    (* Solver-state totals of populations already retired from [prev]. *)
    mutable done_refactors : int;
    mutable done_pivots : int;
  }

  let create ?(solver = default_solver) ?(config = Constraints.standard)
      ?max_iter ?(warm_start = true) ?(rescue = default_rescue) network_of =
    {
      network_of;
      solver;
      sconfig = config;
      max_iter;
      warm_start;
      srescue = rescue;
      inc = None;
      prev = None;
      steps = 0;
      warm = 0;
      cold = 0;
      done_refactors = 0;
      done_pivots = 0;
    }

  let solver s = s.solver
  let config s = s.sconfig
  let warm_start s = s.warm_start

  (* Counts of one population's bounds state, including any backends its
     rescue ladder retired along the way. *)
  let backend_counts b =
    let w = work_snapshot b in
    (int_of_float w.ws_refactors, int_of_float w.ws_pivots)

  let retire s =
    match s.prev with
    | Some (_, b) ->
      let r, p = backend_counts b in
      s.done_refactors <- s.done_refactors + r;
      s.done_pivots <- s.done_pivots + p
    | None -> ()

  let step s population =
    Mapqn_obs.Span.with_ "bounds.sweep.step" @@ fun () ->
    Health.begin_solve ();
    (* The step's backend does not exist yet (prepare creates it), so
       the "before" work is zero: the record's deltas are the fresh
       backend's whole life up to the end of the step, which is exactly
       the step's own work — prepare, restoration and solves. *)
    let before = zero_work in
    let t0 = Mapqn_obs.Span.now () in
    let network = s.network_of population in
    if Mapqn_model.Network.has_delay network then
      Error (Unsupported_network "a delay (infinite-server) station")
    else begin
      let ms, model =
        match s.inc with
        | Some inc -> Constraints.Incremental.extend inc network
        | None ->
          let inc, ms, model =
            Constraints.Incremental.create s.sconfig network
          in
          s.inc <- Some inc;
          (ms, model)
      in
      let seeds =
        if not s.warm_start then None
        else
          match (s.prev, s.solver) with
          | Some (n_prev, ({ backend = B_revised r; _ } as b_prev)), Revised ->
            let translated =
              translate_seeds ~from_ms:b_prev.ms ~from_model:b_prev.model
                ~to_ms:ms ~to_model:model (Revised.basis_seeds r)
            in
            ignore (extension_seeds ~from_n:n_prev ms);
            Some translated
          | _ -> None
      in
      let warmed = ref false in
      let warm () =
        warmed := true;
        s.warm <- s.warm + 1;
        Mapqn_obs.Metrics.inc m_warm_steps
      and cold () =
        s.cold <- s.cold + 1;
        Mapqn_obs.Metrics.inc m_cold_steps
      in
      let lift = function
        | Ok backend ->
          retire s;
          let b =
            {
              network;
              ms;
              model;
              backend;
              config = s.sconfig;
              max_iter = s.max_iter;
              rescue = s.srescue;
              retired_pivots = 0;
              retired_refactors = 0;
              retired_stability = 0;
              retired_growth = 0;
              retired_drift = 0;
              retired_backstop = 0;
            }
          in
          s.steps <- s.steps + 1;
          Mapqn_obs.Metrics.inc m_steps;
          s.prev <- Some (population, b);
          let duration = Mapqn_obs.Span.now () -. t0 in
          Mapqn_obs.Metrics.observe m_step_seconds duration;
          if Ledger.is_enabled () then
            Ledger.record ~event:"sweep_step"
              (ledger_fields b ~duration ~before
              @ [ ("warm", Json.Bool !warmed) ]);
          Ok b
        | Error Simplex.Infeasible_phase1 -> Error Infeasible_phase1
        | Error (Simplex.Iteration_limit_phase1 k) -> Error (Iteration_limit k)
      in
      Mapqn_obs.Span.with_ "bounds.prepare" @@ fun () ->
      (* A failed prepare (phase-1 infeasibility or iteration cap) is
         numerics, not modeling — climb the prepare rescue ladder before
         reporting it. A rescued backend is a cold start. *)
      let rescue_or e =
        match rescue_prepare ~policy:s.srescue ?max_iter:s.max_iter model e with
        | Ok b ->
          cold ();
          lift (Ok b)
        | Error e -> lift (Error e)
      in
      match (s.solver, seeds) with
      | Revised, Some seeds -> (
        match Revised.prepare_seeded ?max_iter:s.max_iter ~seeds model with
        | Ok (p, seeded) ->
          if seeded then warm () else cold ();
          lift (Ok (B_revised p))
        | Error e -> rescue_or e)
      | Revised, None -> (
        match Revised.prepare ?max_iter:s.max_iter model with
        | Ok p ->
          cold ();
          lift (Ok (B_revised p))
        | Error e -> rescue_or e)
      | Dense, _ ->
        cold ();
        lift
          (Result.map
             (fun p -> B_dense p)
             (Simplex.prepare ?max_iter:s.max_iter model))
    end

  let step_exn s population =
    match step s population with Ok b -> b | Error e -> raise (Solver_error e)

  type stats = {
    steps : int;
    warm : int;
    cold : int;
    refactorizations : int;
    pivots : int;
  }

  let stats s =
    let cur_r, cur_p =
      match s.prev with
      | Some (_, b) -> backend_counts b
      | None -> (0, 0)
    in
    {
      steps = s.steps;
      warm = s.warm;
      cold = s.cold;
      refactorizations = s.done_refactors + cur_r;
      pivots = s.done_pivots + cur_p;
    }

  let run ?progress ?seed ?skip ?(label = Printf.sprintf "N=%d") s ~populations
      ~f =
    List.filter_map
      (fun population ->
        let lbl = label population in
        match skip with
        | Some should_skip when should_skip lbl ->
          Option.iter (fun p -> Mapqn_obs.Progress.skip p ?seed lbl) progress;
          None
        | _ ->
          Option.iter (fun p -> Mapqn_obs.Progress.start p ?seed lbl) progress;
          let phase name =
            Option.iter (fun p -> Mapqn_obs.Progress.phase p name) progress
          in
          let memo = ref None in
          let bounds () =
            match !memo with
            | Some b -> b
            | None ->
              phase "bounds";
              let b = step_exn s population in
              memo := Some b;
              b
          in
          let result = f ~phase ~bounds population in
          Option.iter Mapqn_obs.Progress.finish progress;
          Some (population, result))
      populations
end
