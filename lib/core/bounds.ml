module Ms = Marginal_space
module Lp = Mapqn_lp.Lp_model
module Simplex = Mapqn_lp.Simplex
module Revised = Mapqn_lp.Revised
module Certificate = Mapqn_lp.Certificate
module Trace = Mapqn_obs.Trace

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error =
  | Unsupported_network of string
  | Infeasible_phase1
  | Iteration_limit of int
  | Invalid_station of int
  | Invalid_objective of string
  | Certificate_failure of Certificate.failure

let error_to_string = function
  | Unsupported_network what -> what ^ " is not supported by the bound analysis"
  | Infeasible_phase1 ->
    "marginal-balance LP is infeasible — this indicates a constraint \
     generation bug, since the exact solution is always feasible"
  | Iteration_limit k -> Printf.sprintf "simplex iteration limit (%d pivots)" k
  | Invalid_station k -> Printf.sprintf "station index %d is out of range" k
  | Invalid_objective what -> "invalid objective: " ^ what
  | Certificate_failure f -> Certificate.failure_to_string f

exception Solver_error of error

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Bounds.Solver_error: " ^ error_to_string e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

type interval = { lower : float; upper : float }

(* The interval arithmetic must survive infinite endpoints: response-time
   bounds are [infinity] whenever the LP throughput lower bound is 0
   (which is common — weak constraint configs cannot exclude starvation),
   and naive float arithmetic turns those into NaN ([inf - inf],
   [0.5 * (-inf + inf)], [1e-7 * inf] tolerances). *)

let width i = if i.lower = i.upper then 0. else i.upper -. i.lower

let midpoint i =
  if i.lower = i.upper then i.lower
  else if i.lower = neg_infinity && i.upper = infinity then 0.
  else 0.5 *. (i.lower +. i.upper)

let contains i x =
  let finite_mag v = if Float.is_finite v then Float.abs v else 0. in
  let tol =
    1e-7 *. Float.max 1. (Float.max (finite_mag i.lower) (finite_mag i.upper))
  in
  x >= i.lower -. tol && x <= i.upper +. tol

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type solver = Dense | Revised

type backend = B_dense of Simplex.prepared | B_revised of Revised.t

type t = {
  network : Mapqn_model.Network.t;
  ms : Ms.t;
  model : Lp.t;
  backend : backend;
  config : Constraints.config;
  max_iter : int option;
}

let default_solver = Revised

let create ?(solver = default_solver) ?(config = Constraints.standard) ?max_iter
    network =
  Mapqn_obs.Span.with_ "bounds.create" @@ fun () ->
  if Mapqn_model.Network.has_delay network then
    Error (Unsupported_network "a delay (infinite-server) station")
  else begin
    let ms, model = Constraints.build config network in
    let lift = function
      | Ok backend -> Ok { network; ms; model; backend; config; max_iter }
      | Error Simplex.Infeasible_phase1 -> Error Infeasible_phase1
      | Error (Simplex.Iteration_limit_phase1 k) -> Error (Iteration_limit k)
    in
    Mapqn_obs.Span.with_ "bounds.prepare" @@ fun () ->
    match solver with
    | Dense ->
      lift (Result.map (fun p -> B_dense p) (Simplex.prepare ?max_iter model))
    | Revised ->
      lift (Result.map (fun p -> B_revised p) (Revised.prepare ?max_iter model))
  end

let create_exn ?solver ?config ?max_iter network =
  match create ?solver ?config ?max_iter network with
  | Ok t -> t
  | Error e -> raise (Solver_error e)

let network t = t.network
let space t = t.ms
let config t = t.config
let solver t = match t.backend with B_dense _ -> Dense | B_revised _ -> Revised
let lp_size t = (Lp.num_vars t.model, Lp.num_rows t.model)

(* ------------------------------------------------------------------ *)
(* Optimization over the prepared LP                                   *)
(* ------------------------------------------------------------------ *)

let m_objectives =
  Mapqn_obs.Metrics.counter ~help:"Bound objectives optimized over the prepared LP."
    "bounds_objectives_total"

let m_evals =
  Mapqn_obs.Metrics.counter
    ~help:"Batch metric evaluations (Bounds.eval calls, including the \
           one-metric convenience wrappers)."
    "bounds_evals_total"

let backend_optimize t direction objective =
  match t.backend with
  | B_dense p -> Simplex.optimize ?max_iter:t.max_iter p direction objective
  | B_revised p -> Revised.optimize ?max_iter:t.max_iter p direction objective

(* Optimality certificates for every solved objective. The direction
   label keeps the two endpoints of each interval distinguishable in
   metrics and traces. *)
let m_certificates =
  Mapqn_obs.Metrics.counter
    ~help:"LP optimality certificates computed (one per solved objective)."
    "bounds_certificates_total"

let m_certificate_failures =
  Mapqn_obs.Metrics.counter
    ~help:"LP optimality certificates that exceeded tolerance."
    "bounds_certificate_failures_total"

let m_cert_primal =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst primal residual over the certificates of this run."
    "bounds_certificate_primal_residual"

let m_cert_dual =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst dual-feasibility violation over the certificates of this run."
    "bounds_certificate_dual_violation"

let m_cert_comp =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst complementary-slackness gap over the certificates of this run."
    "bounds_certificate_comp_slack"

let certify t direction objective s =
  let label =
    match direction with Simplex.Minimize -> "min" | Simplex.Maximize -> "max"
  in
  Mapqn_obs.Metrics.inc m_certificates;
  let outcome =
    Mapqn_obs.Span.with_ "bounds.certify" (fun () ->
        Certificate.check t.model direction ~objective s)
  in
  let cert =
    match outcome with
    | Ok c -> c
    | Error (f : Certificate.failure) -> f.Certificate.certificate
  in
  Mapqn_obs.Metrics.set_max m_cert_primal cert.Certificate.primal_residual;
  Mapqn_obs.Metrics.set_max m_cert_dual cert.Certificate.dual_violation;
  Mapqn_obs.Metrics.set_max m_cert_comp cert.Certificate.comp_slack;
  if Trace.is_enabled () then
    Trace.record
      (Trace.Certificate
         {
           label;
           primal_residual = cert.Certificate.primal_residual;
           dual_violation = cert.Certificate.dual_violation;
           comp_slack = cert.Certificate.comp_slack;
           accepted = Result.is_ok outcome;
         });
  match outcome with
  | Ok _ -> ()
  | Error f ->
    Mapqn_obs.Metrics.inc m_certificate_failures;
    raise (Solver_error (Certificate_failure f))

let optimize t direction objective =
  Mapqn_obs.Metrics.inc m_objectives;
  Mapqn_obs.Span.with_ "bounds.optimize" @@ fun () ->
  let objective =
    List.map (fun (i, c) -> (Lp.var_of_int t.model i, c)) objective
  in
  match backend_optimize t direction objective with
  | Simplex.Optimal s ->
    certify t direction objective s;
    s.Simplex.objective
  | Simplex.Infeasible -> failwith "Bounds: phase-2 infeasibility (bug)"
  | Simplex.Unbounded ->
    failwith "Bounds: unbounded objective (missing normalization constraint?)"
  | Simplex.Iteration_limit ->
    raise
      (Solver_error
         (Iteration_limit (Option.value t.max_iter ~default:(-1))))

let sensitivity ?(top = 10) t direction objective =
  let objective =
    List.map (fun (i, c) -> (Lp.var_of_int t.model i, c)) objective
  in
  match backend_optimize t direction objective with
  | Simplex.Optimal s ->
    let names =
      Array.of_list (List.map (fun (_, _, _, name) -> name) (Lp.rows t.model))
    in
    let pairs = ref [] in
    Array.iteri
      (fun i d -> if Float.abs d > 1e-9 then pairs := (names.(i), d) :: !pairs)
      s.Simplex.duals;
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) !pairs
    in
    List.filteri (fun i _ -> i < top) sorted
  | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> []

let custom t objective =
  let lower = optimize t Simplex.Minimize objective in
  let upper = optimize t Simplex.Maximize objective in
  (* The simplex solves a slightly perturbed problem (anti-degeneracy) and
     stops at loose reduced-cost tolerances, so each optimum can sit a few
     parts in 1e6 inside the true one. Widen by a conservative margin so
     the returned interval is always a valid bound; the margin is orders
     of magnitude below the accuracy being studied. *)
  let margin v = 1e-5 *. Float.max 1. (Float.abs v) in
  let lower = lower -. margin lower and upper = upper +. margin upper in
  { lower = Float.min lower upper; upper = Float.max lower upper }

let clamp_interval ~lo ~hi i =
  { lower = Mapqn_util.Tol.clamp ~lo ~hi i.lower; upper = Mapqn_util.Tol.clamp ~lo ~hi i.upper }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type metric =
  | Throughput of int
  | Utilization of int
  | Mean_queue_length of int
  | Queue_length_moment of int * int
  | Marginal_probability of { station : int; level : int }
  | Response_time of { reference : int }

let metric_to_string = function
  | Throughput k -> Printf.sprintf "throughput(%d)" k
  | Utilization k -> Printf.sprintf "utilization(%d)" k
  | Mean_queue_length k -> Printf.sprintf "mean_queue_length(%d)" k
  | Queue_length_moment (k, r) -> Printf.sprintf "queue_length_moment(%d, %d)" k r
  | Marginal_probability { station; level } ->
    Printf.sprintf "marginal_probability(%d, n=%d)" station level
  | Response_time { reference } -> Printf.sprintf "response_time(ref=%d)" reference

let check_station t k =
  if k < 0 || k >= Ms.num_stations t.ms then raise (Solver_error (Invalid_station k))

let validate_metric t = function
  | Throughput k | Utilization k | Mean_queue_length k
  | Response_time { reference = k } ->
    check_station t k
  | Queue_length_moment (k, r) ->
    check_station t k;
    if r < 0 then
      raise
        (Solver_error
           (Invalid_objective
              (Printf.sprintf "queue-length moment of negative order %d" r)))
  | Marginal_probability { station; level } ->
    check_station t station;
    if level < 0 || level > Ms.population t.ms then
      raise
        (Solver_error
           (Invalid_objective
              (Printf.sprintf "queue-length level %d outside [0, %d]" level
                 (Ms.population t.ms))))

(* The LP objective of a directly-representable metric, or [None] when the
   metric is identically zero (empty population edge cases). *)
let metric_terms t = function
  | Response_time _ -> assert false (* derived, handled in eval_one *)
  | Throughput k ->
    let rates =
      Mapqn_map.Process.completion_rates
        (Mapqn_model.Station.service_process
           (Mapqn_model.Network.station t.network k))
    in
    let terms = ref [] in
    for n = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          let rate = rates.(Ms.phase_component t.ms h k) in
          if rate <> 0. then
            terms := (Ms.v t.ms ~station:k ~level:n ~phase:h, rate) :: !terms)
    done;
    !terms
  | Utilization k ->
    let terms = ref [] in
    for level = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          terms := (Ms.v t.ms ~station:k ~level ~phase:h, 1.) :: !terms)
    done;
    !terms
  | Mean_queue_length k ->
    let terms = ref [] in
    for level = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          terms := (Ms.v t.ms ~station:k ~level ~phase:h, float_of_int level) :: !terms)
    done;
    !terms
  | Queue_length_moment (k, r) ->
    let terms = ref [] in
    for level = 1 to Ms.population t.ms do
      Ms.iter_phases t.ms (fun h ->
          terms :=
            (Ms.v t.ms ~station:k ~level ~phase:h,
             float_of_int level ** float_of_int r)
            :: !terms)
    done;
    !terms
  | Marginal_probability { station; level } ->
    let terms = ref [] in
    Ms.iter_phases t.ms (fun h ->
        terms := (Ms.v t.ms ~station ~level ~phase:h, 1.) :: !terms);
    !terms

let metric_clamp t = function
  | Throughput _ | Response_time _ -> None
  | Utilization _ | Marginal_probability _ -> Some (0., 1.)
  | Mean_queue_length _ ->
    Some (0., float_of_int (Ms.population t.ms))
  | Queue_length_moment (_, r) ->
    Some (0., float_of_int (Ms.population t.ms) ** float_of_int r)

let rec eval_one t metric =
  validate_metric t metric;
  match metric with
  | Response_time { reference } ->
    (* Little's law, exactly the paper's derivation: R = N / X_ref, so
       R_min = N / X_max and R_max = N / X_min; an LP throughput lower
       bound of 0 yields an infinite upper response-time bound. *)
    let n = float_of_int (Ms.population t.ms) in
    if n = 0. then { lower = 0.; upper = 0. }
    else begin
      let x = eval_one t (Throughput reference) in
      let upper = if x.lower <= 0. then infinity else n /. x.lower in
      let lower = if x.upper <= 0. then infinity else n /. x.upper in
      { lower; upper }
    end
  | m -> (
    match metric_terms t m with
    | [] -> { lower = 0.; upper = 0. }
    | terms -> (
      let i = custom t terms in
      match metric_clamp t m with
      | None -> i
      | Some (lo, hi) -> clamp_interval ~lo ~hi i))

let eval t metrics =
  Mapqn_obs.Metrics.inc m_evals;
  Mapqn_obs.Span.with_ "bounds.eval" @@ fun () ->
  List.map (fun m -> (m, eval_one t m)) metrics

(* Convenience wrappers: exactly one-element [eval] calls, so per-metric
   and batch queries go through the identical code path (and, on the
   revised backend, the identical warm-started pivot sequence). *)

let interval_of_eval t metric =
  match eval t [ metric ] with [ (_, i) ] -> i | _ -> assert false

let throughput t k = interval_of_eval t (Throughput k)
let utilization t k = interval_of_eval t (Utilization k)
let mean_queue_length t k = interval_of_eval t (Mean_queue_length k)
let queue_length_moment t k r = interval_of_eval t (Queue_length_moment (k, r))

let marginal_probability t ~station ~level =
  interval_of_eval t (Marginal_probability { station; level })

let response_time ?(reference = 0) t =
  interval_of_eval t (Response_time { reference })
