module Ms = Marginal_space
module Lp = Mapqn_lp.Lp_model
module Simplex = Mapqn_lp.Simplex

type t = {
  network : Mapqn_model.Network.t;
  ms : Ms.t;
  model : Lp.t;
  prepared : Simplex.prepared;
  config : Constraints.config;
  max_iter : int option;
}

type interval = { lower : float; upper : float }

let width i = i.upper -. i.lower
let midpoint i = 0.5 *. (i.lower +. i.upper)

let contains i x =
  let tol = 1e-7 *. Float.max 1. (Float.max (Float.abs i.lower) (Float.abs i.upper)) in
  x >= i.lower -. tol && x <= i.upper +. tol

let create ?(config = Constraints.standard) ?max_iter network =
  Mapqn_obs.Span.with_ "bounds.create" @@ fun () ->
  if Mapqn_model.Network.has_delay network then
    Error "delay (infinite-server) stations are not supported by the bound analysis"
  else
  let ms, model = Constraints.build config network in
  match Simplex.prepare ?max_iter model with
  | Ok prepared -> Ok { network; ms; model; prepared; config; max_iter }
  | Error `Infeasible ->
    Error
      "marginal-balance LP is infeasible — this indicates a constraint \
       generation bug, since the exact solution is always feasible"
  | Error `Iteration_limit -> Error "simplex iteration limit in phase 1"

let create_exn ?config ?max_iter network =
  match create ?config ?max_iter network with
  | Ok t -> t
  | Error msg -> failwith ("Bounds.create: " ^ msg)

let network t = t.network
let space t = t.ms
let config t = t.config
let lp_size t = (Lp.num_vars t.model, Lp.num_rows t.model)

let m_objectives =
  Mapqn_obs.Metrics.counter ~help:"Bound objectives optimized over the prepared LP."
    "bounds_objectives_total"

let optimize t direction objective =
  Mapqn_obs.Metrics.inc m_objectives;
  Mapqn_obs.Span.with_ "bounds.optimize" @@ fun () ->
  let objective =
    List.map (fun (i, c) -> (Lp.var_of_int t.model i, c)) objective
  in
  match Simplex.optimize ?max_iter:t.max_iter t.prepared direction objective with
  | Simplex.Optimal s -> s.Simplex.objective
  | Simplex.Infeasible -> failwith "Bounds: phase-2 infeasibility (bug)"
  | Simplex.Unbounded ->
    failwith "Bounds: unbounded objective (missing normalization constraint?)"
  | Simplex.Iteration_limit -> failwith "Bounds: simplex iteration limit"

let sensitivity ?(top = 10) t direction objective =
  let objective =
    List.map (fun (i, c) -> (Lp.var_of_int t.model i, c)) objective
  in
  match Simplex.optimize ?max_iter:t.max_iter t.prepared direction objective with
  | Simplex.Optimal s ->
    let names =
      Array.of_list (List.map (fun (_, _, _, name) -> name) (Lp.rows t.model))
    in
    let pairs = ref [] in
    Array.iteri
      (fun i d -> if Float.abs d > 1e-9 then pairs := (names.(i), d) :: !pairs)
      s.Simplex.duals;
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) !pairs
    in
    List.filteri (fun i _ -> i < top) sorted
  | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> []

let custom t objective =
  let lower = optimize t Simplex.Minimize objective in
  let upper = optimize t Simplex.Maximize objective in
  (* The simplex solves a slightly perturbed problem (anti-degeneracy) and
     stops at loose reduced-cost tolerances, so each optimum can sit a few
     parts in 1e6 inside the true one. Widen by a conservative margin so
     the returned interval is always a valid bound; the margin is orders
     of magnitude below the accuracy being studied. *)
  let margin v = 1e-5 *. Float.max 1. (Float.abs v) in
  let lower = lower -. margin lower and upper = upper +. margin upper in
  { lower = Float.min lower upper; upper = Float.max lower upper }

let clamp_interval ~lo ~hi i =
  { lower = Mapqn_util.Tol.clamp ~lo ~hi i.lower; upper = Mapqn_util.Tol.clamp ~lo ~hi i.upper }

let throughput t k =
  let rates =
    Mapqn_map.Process.completion_rates
      (Mapqn_model.Station.service_process (Mapqn_model.Network.station t.network k))
  in
  let terms = ref [] in
  for n = 1 to Ms.population t.ms do
    Ms.iter_phases t.ms (fun h ->
        let rate = rates.(Ms.phase_component t.ms h k) in
        if rate <> 0. then
          terms := (Ms.v t.ms ~station:k ~level:n ~phase:h, rate) :: !terms)
  done;
  if !terms = [] then { lower = 0.; upper = 0. } else custom t !terms

let utilization t k =
  let n = Ms.population t.ms in
  if n = 0 then { lower = 0.; upper = 0. }
  else begin
    let terms = ref [] in
    for level = 1 to n do
      Ms.iter_phases t.ms (fun h ->
          terms := (Ms.v t.ms ~station:k ~level ~phase:h, 1.) :: !terms)
    done;
    clamp_interval ~lo:0. ~hi:1. (custom t !terms)
  end

let queue_length_moment t k r =
  if r < 0 then invalid_arg "Bounds.queue_length_moment: negative order";
  let n = Ms.population t.ms in
  let terms = ref [] in
  for level = 1 to n do
    Ms.iter_phases t.ms (fun h ->
        terms :=
          (Ms.v t.ms ~station:k ~level ~phase:h, float_of_int level ** float_of_int r)
          :: !terms)
  done;
  if !terms = [] then { lower = 0.; upper = 0. }
  else clamp_interval ~lo:0. ~hi:(float_of_int n ** float_of_int r) (custom t !terms)

let mean_queue_length t k = queue_length_moment t k 1

let marginal_probability t ~station ~level =
  let terms = ref [] in
  Ms.iter_phases t.ms (fun h ->
      terms := (Ms.v t.ms ~station ~level ~phase:h, 1.) :: !terms);
  clamp_interval ~lo:0. ~hi:1. (custom t !terms)

let response_time ?(reference = 0) t =
  let n = float_of_int (Ms.population t.ms) in
  if n = 0. then { lower = 0.; upper = 0. }
  else begin
    let x = throughput t reference in
    let upper = if x.lower <= 0. then infinity else n /. x.lower in
    let lower = if x.upper <= 0. then infinity else n /. x.upper in
    { lower; upper }
  end
