module Mat = Mapqn_linalg.Mat
module Ms = Marginal_space
module Lp = Mapqn_lp.Lp_model

type config = { dominance : bool; busy_count : bool; level2 : bool }

let minimal = { dominance = false; busy_count = false; level2 = false }
let standard = { dominance = true; busy_count = true; level2 = false }
let full = { dominance = true; busy_count = true; level2 = true }

let pp_config fmt c =
  Format.fprintf fmt "{dominance=%b; busy_count=%b; level2=%b}" c.dominance
    c.busy_count c.level2

(* Per-station rate data extracted once. *)
type rates = {
  d0 : Mat.t;
  d1 : Mat.t;
  order : int;
  hidden_out : float array; (* phase a -> Σ_{b≠a} D0[a,b] *)
  completion_out : float array; (* phase a -> Σ_b D1[a,b] *)
  completion_out_phase_change : float array; (* phase a -> Σ_{b≠a} D1[a,b] *)
}

let rates_of_station network k =
  let p =
    Mapqn_model.Station.service_process (Mapqn_model.Network.station network k)
  in
  let d0 = Mapqn_map.Process.d0 p and d1 = Mapqn_map.Process.d1 p in
  let order = Mapqn_map.Process.order p in
  let sum_row ?(skip_diag = false) mat a =
    let acc = ref 0. in
    for b = 0 to order - 1 do
      if not (skip_diag && b = a) then acc := !acc +. Mat.get mat a b
    done;
    !acc
  in
  {
    d0;
    d1;
    order;
    hidden_out = Array.init order (fun a -> sum_row ~skip_diag:true d0 a);
    completion_out = Array.init order (fun a -> sum_row d1 a);
    completion_out_phase_change = Array.init order (fun a -> sum_row ~skip_diag:true d1 a);
  }

type ctx = {
  ms : Ms.t;
  model : Lp.t;
  vars : Lp.var array;
  rates : rates array;
  routing : Mat.t;
  m : int;
  n : int;
}

let make_ctx ms =
  let network = Ms.network ms in
  let model = Lp.create () in
  let vars =
    Array.init (Ms.num_vars ms) (fun i ->
        Lp.add_var ~name:(Ms.describe ms i) model)
  in
  {
    ms;
    model;
    vars;
    rates = Array.init (Ms.num_stations ms) (rates_of_station network);
    routing = Mapqn_model.Network.routing network;
    m = Ms.num_stations ms;
    n = Ms.population ms;
  }

let var ctx i = ctx.vars.(i)
let v ctx ~station ~level ~phase = var ctx (Ms.v ctx.ms ~station ~level ~phase)
let w ctx ~busy ~station ~level ~phase =
  var ctx (Ms.w ctx.ms ~busy ~station ~level ~phase)
let z ctx ~counted ~station ~level ~phase =
  var ctx (Ms.z ctx.ms ~counted ~station ~level ~phase)

(* ------------------------------------------------------------------ *)
(* Family 1: level-phase balance                                       *)
(* ------------------------------------------------------------------ *)

(* Flux balance of S = {n_k = n, phase = h}: OUT - IN = 0, with all
   crossing rates expressed over v and w (see the derivation in
   DESIGN.md §4 and the .mli). *)
let balance_row ctx ~k ~n ~h =
  let ms = ctx.ms in
  let terms = ref [] in
  let add var coef = if coef <> 0. then terms := (var, coef) :: !terms in
  let hk = Ms.phase_component ms h k in
  let rk = ctx.rates.(k) in
  let p_kk = Mat.get ctx.routing k k in
  (* OUT at station k (requires k busy, i.e. n >= 1). *)
  if n >= 1 then begin
    let out_rate =
      rk.hidden_out.(hk)
      +. (rk.completion_out.(hk) *. (1. -. p_kk))
      +. (rk.completion_out_phase_change.(hk) *. p_kk)
    in
    add (v ctx ~station:k ~level:n ~phase:h) out_rate
  end;
  (* IN at station k. *)
  for a = 0 to rk.order - 1 do
    let h_src = Ms.phase_subst ms h k a in
    if a <> hk && n >= 1 then begin
      (* hidden a -> hk, and self-routed completion with phase change *)
      add (v ctx ~station:k ~level:n ~phase:h_src)
        (-.(Mat.get rk.d0 a hk +. (Mat.get rk.d1 a hk *. p_kk)))
    end;
    if n + 1 <= ctx.n then
      (* completion at k routed elsewhere, from level n+1 *)
      add (v ctx ~station:k ~level:(n + 1) ~phase:h_src)
        (-.(Mat.get rk.d1 a hk *. (1. -. p_kk)))
  done;
  (* Stations i <> k. *)
  for i = 0 to ctx.m - 1 do
    if i <> k then begin
      let ri = ctx.rates.(i) in
      let hi = Ms.phase_component ms h i in
      let p_ik = Mat.get ctx.routing i k in
      (* OUT from S while i is busy. *)
      let out_rate =
        ri.hidden_out.(hi)
        +. (ri.completion_out.(hi) *. p_ik)
        +. (ri.completion_out_phase_change.(hi) *. (1. -. p_ik))
      in
      add (w ctx ~busy:i ~station:k ~level:n ~phase:h) out_rate;
      (* IN via station i. *)
      for a = 0 to ri.order - 1 do
        let h_src = Ms.phase_subst ms h i a in
        if a <> hi then
          (* hidden at i, or completion at i routed away from k with a
             phase change *)
          add (w ctx ~busy:i ~station:k ~level:n ~phase:h_src)
            (-.(Mat.get ri.d0 a hi +. (Mat.get ri.d1 a hi *. (1. -. p_ik))));
        if n >= 1 then
          (* completion at i routed to k: k's level was n-1 *)
          add (w ctx ~busy:i ~station:k ~level:(n - 1) ~phase:h_src)
            (-.(Mat.get ri.d1 a hi *. p_ik))
      done
    end
  done;
  !terms

let add_balance ctx =
  (* Under profiling, split the dominant family into emitting the
     Kronecker-structured flux terms ([balance_row]) vs assembling them
     into LP rows — the two candidate targets of the planned
     constraint-assembly optimization. Accumulate locally and record
     two [Span.add]s at the end so the unprofiled path is untouched. *)
  let prof = Mapqn_obs.Prof.is_enabled () in
  let emit_t = ref 0. in
  let asm_t = ref 0. in
  let rows = ref 0 in
  for k = 0 to ctx.m - 1 do
    for n = 0 to ctx.n do
      Ms.iter_phases ctx.ms (fun h ->
          if prof then begin
            let t0 = Mapqn_obs.Prof.now () in
            let terms = balance_row ctx ~k ~n ~h in
            let t1 = Mapqn_obs.Prof.now () in
            emit_t := !emit_t +. (t1 -. t0);
            if terms <> [] then begin
              Lp.add_row ~name:(Printf.sprintf "bal[k=%d,n=%d,h=%d]" k n h)
                ctx.model terms Lp.Eq 0.;
              incr rows;
              asm_t := !asm_t +. (Mapqn_obs.Prof.now () -. t1)
            end
          end
          else
            let terms = balance_row ctx ~k ~n ~h in
            if terms <> [] then
              Lp.add_row ~name:(Printf.sprintf "bal[k=%d,n=%d,h=%d]" k n h)
                ctx.model terms Lp.Eq 0.)
    done
  done;
  if prof then begin
    let n = max 1 !rows in
    Mapqn_obs.Span.add ~count:n "kron-emit" !emit_t;
    Mapqn_obs.Span.add ~count:n "row-assembly" !asm_t
  end

(* ------------------------------------------------------------------ *)
(* Families 2-6: equalities                                            *)
(* ------------------------------------------------------------------ *)

let add_normalization ctx =
  for k = 0 to ctx.m - 1 do
    let terms = ref [] in
    for n = 0 to ctx.n do
      Ms.iter_phases ctx.ms (fun h ->
          terms := (v ctx ~station:k ~level:n ~phase:h, 1.) :: !terms)
    done;
    Lp.add_row ~name:(Printf.sprintf "norm[k=%d]" k) ctx.model !terms Lp.Eq 1.
  done

let add_phase_consistency ctx =
  (* Only useful when there is more than one joint phase. *)
  if Ms.num_phase_vectors ctx.ms > 1 then
    for k = 1 to ctx.m - 1 do
      Ms.iter_phases ctx.ms (fun h ->
          let terms = ref [] in
          for n = 0 to ctx.n do
            terms := (v ctx ~station:k ~level:n ~phase:h, 1.) :: !terms;
            terms := (v ctx ~station:0 ~level:n ~phase:h, -1.) :: !terms
          done;
          Lp.add_row ~name:(Printf.sprintf "phcons[k=%d,h=%d]" k h) ctx.model !terms
            Lp.Eq 0.)
    done

let add_busy_mass ctx =
  for j = 0 to ctx.m - 1 do
    for k = 0 to ctx.m - 1 do
      if j <> k then
        Ms.iter_phases ctx.ms (fun h ->
            let terms = ref [] in
            for n = 0 to ctx.n do
              terms := (w ctx ~busy:j ~station:k ~level:n ~phase:h, 1.) :: !terms
            done;
            for n = 1 to ctx.n do
              terms := (v ctx ~station:j ~level:n ~phase:h, -1.) :: !terms
            done;
            Lp.add_row
              ~name:(Printf.sprintf "busymass[j=%d,k=%d,h=%d]" j k h)
              ctx.model !terms Lp.Eq 0.)
    done
  done

let add_population ctx =
  let terms = ref [] in
  for k = 0 to ctx.m - 1 do
    for n = 1 to ctx.n do
      Ms.iter_phases ctx.ms (fun h ->
          terms := (v ctx ~station:k ~level:n ~phase:h, float_of_int n) :: !terms)
    done
  done;
  Lp.add_row ~name:"population" ctx.model !terms Lp.Eq (float_of_int ctx.n)

(* Both-busy symmetry: summing w_{j,k} over levels n >= 1 gives
   P{n_j >= 1, n_k >= 1, phase = h}, which is symmetric in (j, k). This is
   genuinely new information: the other families only tie each w to its
   own v margins. *)
let add_busy_symmetry ctx =
  for j = 0 to ctx.m - 1 do
    for k = j + 1 to ctx.m - 1 do
      Ms.iter_phases ctx.ms (fun h ->
          let terms = ref [] in
          for n = 1 to ctx.n do
            terms := (w ctx ~busy:j ~station:k ~level:n ~phase:h, 1.) :: !terms;
            terms := (w ctx ~busy:k ~station:j ~level:n ~phase:h, -1.) :: !terms
          done;
          if !terms <> [] then
            Lp.add_row
              ~name:(Printf.sprintf "busysym[%d,%d,h=%d]" j k h)
              ctx.model !terms Lp.Eq 0.)
    done
  done

(* Product-moment symmetry (level 2): Σ_n n·z_{j,k}(n,h) = E[n_j n_k 1{h}]
   is symmetric in (j, k). *)
let add_product_symmetry ctx =
  for j = 0 to ctx.m - 1 do
    for k = j + 1 to ctx.m - 1 do
      Ms.iter_phases ctx.ms (fun h ->
          let terms = ref [] in
          for n = 1 to ctx.n do
            terms :=
              (z ctx ~counted:j ~station:k ~level:n ~phase:h, float_of_int n)
              :: !terms;
            terms :=
              (z ctx ~counted:k ~station:j ~level:n ~phase:h, -.float_of_int n)
              :: !terms
          done;
          if !terms <> [] then
            Lp.add_row
              ~name:(Printf.sprintf "prodsym[%d,%d,h=%d]" j k h)
              ctx.model !terms Lp.Eq 0.)
    done
  done

let add_boundary_zeros ctx =
  if ctx.n >= 1 then
    for j = 0 to ctx.m - 1 do
      for k = 0 to ctx.m - 1 do
        if j <> k then
          Ms.iter_phases ctx.ms (fun h ->
              Lp.add_row
                ~name:(Printf.sprintf "wzero[j=%d,k=%d,h=%d]" j k h)
                ctx.model
                [ (w ctx ~busy:j ~station:k ~level:ctx.n ~phase:h, 1.) ]
                Lp.Eq 0.)
      done
    done

(* ------------------------------------------------------------------ *)
(* Families 7-8: inequalities                                          *)
(* ------------------------------------------------------------------ *)

let add_dominance ctx =
  for j = 0 to ctx.m - 1 do
    for k = 0 to ctx.m - 1 do
      if j <> k then
        for n = 0 to ctx.n - 1 do
          Ms.iter_phases ctx.ms (fun h ->
              Lp.add_row
                ~name:(Printf.sprintf "dom[j=%d,k=%d,n=%d,h=%d]" j k n h)
                ctx.model
                [
                  (w ctx ~busy:j ~station:k ~level:n ~phase:h, 1.);
                  (v ctx ~station:k ~level:n ~phase:h, -1.);
                ]
                Lp.Le 0.)
        done
    done
  done

let add_busy_count ctx =
  if ctx.m >= 2 then
    for k = 0 to ctx.m - 1 do
      for n = 0 to ctx.n - 1 do
        Ms.iter_phases ctx.ms (fun h ->
            let ws =
              List.filter_map
                (fun j ->
                  if j = k then None
                  else Some (w ctx ~busy:j ~station:k ~level:n ~phase:h, 1.))
                (List.init ctx.m (fun j -> j))
            in
            let vk = v ctx ~station:k ~level:n ~phase:h in
            (* At least one other station holds the N - n > 0 other jobs. *)
            Lp.add_row
              ~name:(Printf.sprintf "busylo[k=%d,n=%d,h=%d]" k n h)
              ctx.model
              ((vk, -1.) :: ws)
              Lp.Ge 0.;
            (* At most min(M-1, N-n) other stations can be busy. *)
            let cap = float_of_int (min (ctx.m - 1) (ctx.n - n)) in
            Lp.add_row
              ~name:(Printf.sprintf "busyhi[k=%d,n=%d,h=%d]" k n h)
              ctx.model
              ((vk, -.cap) :: ws)
              Lp.Le 0.)
      done
    done

(* ------------------------------------------------------------------ *)
(* Families 10-12: level-2 (z) identities                              *)
(* ------------------------------------------------------------------ *)

let add_level2 ctx =
  if ctx.m >= 2 then begin
    for k = 0 to ctx.m - 1 do
      for n = 0 to ctx.n do
        Ms.iter_phases ctx.ms (fun h ->
            (* Σ_{j≠k} z_{j,k}(n,h) = (N - n) v_k(n,h): the other stations
               hold exactly the remaining jobs. *)
            let zs =
              List.filter_map
                (fun j ->
                  if j = k then None
                  else Some (z ctx ~counted:j ~station:k ~level:n ~phase:h, 1.))
                (List.init ctx.m (fun j -> j))
            in
            Lp.add_row
              ~name:(Printf.sprintf "zsum[k=%d,n=%d,h=%d]" k n h)
              ctx.model
              ((v ctx ~station:k ~level:n ~phase:h, -.float_of_int (ctx.n - n)) :: zs)
              Lp.Eq 0.)
      done
    done;
    for j = 0 to ctx.m - 1 do
      for k = 0 to ctx.m - 1 do
        if j <> k then begin
          Ms.iter_phases ctx.ms (fun h ->
              (* Mass: Σ_n z_{j,k}(n,h) = Σ_n n v_j(n,h) = E[n_j 1{phase=h}]. *)
              let terms = ref [] in
              for n = 0 to ctx.n do
                terms := (z ctx ~counted:j ~station:k ~level:n ~phase:h, 1.) :: !terms
              done;
              for n = 1 to ctx.n do
                terms :=
                  (v ctx ~station:j ~level:n ~phase:h, -.float_of_int n) :: !terms
              done;
              Lp.add_row
                ~name:(Printf.sprintf "zmass[j=%d,k=%d,h=%d]" j k h)
                ctx.model !terms Lp.Eq 0.);
          for n = 0 to ctx.n do
            Ms.iter_phases ctx.ms (fun h ->
                let zv = z ctx ~counted:j ~station:k ~level:n ~phase:h in
                let wv = w ctx ~busy:j ~station:k ~level:n ~phase:h in
                if n = ctx.n then
                  Lp.add_row
                    ~name:(Printf.sprintf "zzero[j=%d,k=%d,h=%d]" j k h)
                    ctx.model [ (zv, 1.) ] Lp.Eq 0.
                else begin
                  (* n_j >= 1{n_j >= 1} and n_j <= (N - n) 1{n_j >= 1}. *)
                  Lp.add_row
                    ~name:(Printf.sprintf "zlo[j=%d,k=%d,n=%d,h=%d]" j k n h)
                    ctx.model
                    [ (zv, 1.); (wv, -1.) ]
                    Lp.Ge 0.;
                  Lp.add_row
                    ~name:(Printf.sprintf "zhi[j=%d,k=%d,n=%d,h=%d]" j k n h)
                    ctx.model
                    [ (zv, 1.); (wv, -.float_of_int (ctx.n - n)) ]
                    Lp.Le 0.
                end)
          done
        end
      done
    done
  end

(* ------------------------------------------------------------------ *)

let m_family_rows name =
  Mapqn_obs.Metrics.gauge
    ~help:"LP rows emitted per constraint family by the last build."
    ~labels:[ ("family", name) ]
    "lp_constraint_rows"

let m_lp_rows =
  Mapqn_obs.Metrics.gauge ~help:"Total LP rows of the last constraint build."
    "lp_rows"

let m_lp_vars =
  Mapqn_obs.Metrics.gauge ~help:"LP variables (columns) of the last constraint build."
    "lp_vars"

let m_lp_nnz =
  Mapqn_obs.Metrics.gauge
    ~help:"Stored constraint coefficients of the last build — the matrix \
           size as the sparse (revised) solver sees it."
    "lp_nnz"

let check_network network =
  if Mapqn_model.Network.has_delay network then
    invalid_arg
      "Constraints.build: delay (infinite-server) stations are outside the \
       marginal-balance derivation; model think time as a queueing station \
       or use MVA/simulation"

(* Emit every family selected by [config] into [ctx], with [balance]
   supplying the level-phase balance rows (the default emitter or the
   template-instantiating one of {!Incremental}). *)
let assemble ~balance config ctx =
  (* Every family reports the rows it contributed, so telemetry shows
     which families dominate the LP (and bound-quality regressions can be
     correlated with constraint-set changes). *)
  let family name enabled add =
    let before = Lp.num_rows ctx.model in
    if enabled then Mapqn_obs.Span.with_ name (fun () -> add ctx);
    Mapqn_obs.Metrics.set (m_family_rows name)
      (float_of_int (Lp.num_rows ctx.model - before))
  in
  family "balance" true balance;
  family "normalization" true add_normalization;
  family "phase-consistency" true add_phase_consistency;
  family "busy-mass" true add_busy_mass;
  family "busy-symmetry" true add_busy_symmetry;
  family "population" true add_population;
  family "boundary-zeros" true add_boundary_zeros;
  family "dominance" config.dominance add_dominance;
  family "busy-count" config.busy_count add_busy_count;
  family "level2" config.level2 add_level2;
  family "product-symmetry" config.level2 add_product_symmetry;
  Mapqn_obs.Metrics.set m_lp_rows (float_of_int (Lp.num_rows ctx.model));
  Mapqn_obs.Metrics.set m_lp_vars (float_of_int (Lp.num_vars ctx.model));
  Mapqn_obs.Metrics.set m_lp_nnz (float_of_int (Lp.num_nonzeros ctx.model))

let build config network =
  Mapqn_obs.Span.with_ "constraints.build" @@ fun () ->
  check_network network;
  let ms = Ms.create ~level2:config.level2 network in
  let ctx = make_ctx ms in
  assemble ~balance:add_balance config ctx;
  (ms, ctx.model)

(* ------------------------------------------------------------------ *)
(* Incremental (in the population) assembly                            *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* One term of an interior balance row bal[k,n,h] (0 < n < N), with the
     level stored relative to n. The balance coefficients depend only on
     the service rates and the routing — never on the level or the
     population — so a single probe row per (k, h) instantiates every
     interior level of every population: extending a sweep from N to N'
     re-derives the Kronecker flux terms for just the two boundary levels
     instead of all N' + 1. *)
  type tterm =
    | T_v of { station : int; dn : int; phase : int; coef : float }
    | T_w of { busy : int; station : int; dn : int; phase : int; coef : float }

  type t = {
    config : config;
    m : int;
    phase_dims : int array;
    (* Exact rate/routing values the templates were derived from; reused
       across populations only while the network's stations are
       unchanged. *)
    fingerprint : float array;
    mutable templates : tterm list array array option; (* [k].(h) *)
  }

  let fingerprint network =
    let m = Mapqn_model.Network.num_stations network in
    let acc = ref [] in
    let push_mat mat order =
      for a = order - 1 downto 0 do
        for b = order - 1 downto 0 do
          acc := Mat.get mat a b :: !acc
        done
      done
    in
    let routing = Mapqn_model.Network.routing network in
    push_mat routing m;
    for k = m - 1 downto 0 do
      let p =
        Mapqn_model.Station.service_process
          (Mapqn_model.Network.station network k)
      in
      let order = Mapqn_map.Process.order p in
      push_mat (Mapqn_map.Process.d1 p) order;
      push_mat (Mapqn_map.Process.d0 p) order
    done;
    Array.of_list !acc

  let classify_term ms n ((var : Lp.var), coef) =
    match Ms.classify ms (var :> int) with
    | Ms.Role_v { station; level; phase } ->
      T_v { station; dn = level - n; phase; coef }
    | Ms.Role_w { busy; station; level; phase } ->
      T_w { busy; station; dn = level - n; phase; coef }
    | Ms.Role_z _ -> assert false (* balance rows never touch z *)

  (* Probe at n = 1, interior whenever N >= 2. *)
  let templates inc (ctx : ctx) =
    match inc.templates with
    | Some tpl -> tpl
    | None ->
      let tpl =
        Array.init ctx.m (fun k ->
            Array.init (Ms.num_phase_vectors ctx.ms) (fun h ->
                List.map (classify_term ctx.ms 1) (balance_row ctx ~k ~n:1 ~h)))
      in
      inc.templates <- Some tpl;
      tpl

  let instantiate (ctx : ctx) tpl ~n =
    List.map
      (function
        | T_v { station; dn; phase; coef } ->
          (v ctx ~station ~level:(n + dn) ~phase, coef)
        | T_w { busy; station; dn; phase; coef } ->
          (w ctx ~busy ~station ~level:(n + dn) ~phase, coef))
      tpl

  (* Same rows, names and term order as [add_balance]: the interior rows
     share the probe row's (level-independent) control flow, so shifting
     its levels reproduces them exactly — asserted by the equality test
     in test/core. *)
  let add_balance_templated inc (ctx : ctx) =
    if ctx.n < 2 then add_balance ctx
    else begin
      let tpl = templates inc ctx in
      for k = 0 to ctx.m - 1 do
        for n = 0 to ctx.n do
          Ms.iter_phases ctx.ms (fun h ->
              let terms =
                if n >= 1 && n < ctx.n then instantiate ctx tpl.(k).(h) ~n
                else balance_row ctx ~k ~n ~h
              in
              if terms <> [] then
                Lp.add_row ~name:(Printf.sprintf "bal[k=%d,n=%d,h=%d]" k n h)
                  ctx.model terms Lp.Eq 0.)
        done
      done
    end

  let extend inc network =
    Mapqn_obs.Span.with_ "constraints.extend" @@ fun () ->
    check_network network;
    if
      Mapqn_model.Network.num_stations network <> inc.m
      || Mapqn_model.Network.phase_dims network <> inc.phase_dims
      || fingerprint network <> inc.fingerprint
    then
      invalid_arg
        "Constraints.Incremental.extend: the network's stations or routing \
         differ from the one the builder was created for (only the \
         population may change)";
    let ms = Ms.create ~level2:inc.config.level2 network in
    let ctx = make_ctx ms in
    assemble ~balance:(add_balance_templated inc) inc.config ctx;
    (ms, ctx.model)

  let create config network =
    check_network network;
    let inc =
      {
        config;
        m = Mapqn_model.Network.num_stations network;
        phase_dims = Mapqn_model.Network.phase_dims network;
        fingerprint = fingerprint network;
        templates = None;
      }
    in
    let ms, model = extend inc network in
    (inc, ms, model)
end

let cut_balance_residual ms point =
  let network = Ms.network ms in
  let m = Ms.num_stations ms and n_max = Ms.population ms in
  let routing = Mapqn_model.Network.routing network in
  let rates = Array.init m (rates_of_station network) in
  let worst = ref 0. in
  for k = 0 to m - 1 do
    let p_kk = Mat.get routing k k in
    for n = 1 to n_max do
      let inflow = ref 0. and outflow = ref 0. in
      Ms.iter_phases ms (fun h ->
          let hk = Ms.phase_component ms h k in
          outflow :=
            !outflow
            +. rates.(k).completion_out.(hk)
               *. (1. -. p_kk)
               *. point.(Ms.v ms ~station:k ~level:n ~phase:h);
          for i = 0 to m - 1 do
            if i <> k then begin
              let hi = Ms.phase_component ms h i in
              let p_ik = Mat.get routing i k in
              if p_ik > 0. then
                inflow :=
                  !inflow
                  +. rates.(i).completion_out.(hi)
                     *. p_ik
                     *. point.(Ms.w ms ~busy:i ~station:k ~level:(n - 1) ~phase:h)
            end
          done);
      worst := Float.max !worst (Float.abs (!inflow -. !outflow))
    done
  done;
  !worst
