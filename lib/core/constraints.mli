(** Generation of the marginal balance constraint families.

    Every row produced here is an {e exact} consequence of the global
    balance equations of the underlying CTMC together with elementary
    probability identities — this is what makes the LP optima true bounds.
    The families (numbering follows DESIGN.md §4):

    + level–phase balance: flux balance of the aggregate set
      [{n_k = n, phase = h}] — the paper's marginal-balance aggregation,
      one equality per (station, level, phase vector);
    + normalization of each station's marginal;
    + phase-marginal consistency across stations;
    + busy-mass consistency tying [w] to [v];
    + population mean [Σ_k E[n_k] = N];
    + boundary zeros [w_{j,k}(N, h) = 0];
    + dominance [w_{j,k}(n,h) <= v_k(n,h)] (optional);
    + busy-count bounds
      [v_k(n,h) <= Σ_j w_{j,k}(n,h) <= min(M-1, N-n) v_k(n,h)] for [n < N]
      (optional);
    + level-2 population identities on the [z] variables (optional).

    The paper's marginal cut balance (its equation (1)) is implied by
    family 1 summed over levels; {!cut_balance_residual} exposes it for
    validation. *)

type config = {
  dominance : bool;
  busy_count : bool;
  level2 : bool;
}

val minimal : config
(** Families 1–6 only. *)

val standard : config
(** [minimal] + dominance + busy-count. The default of the bound solver. *)

val full : config
(** [standard] + level-2 [z] variables and their families. *)

val pp_config : Format.formatter -> config -> unit

val build : config -> Mapqn_model.Network.t -> Marginal_space.t * Mapqn_lp.Lp_model.t
(** Allocate one LP variable per marginal-space slot (same indices) and add
    every constraint row selected by [config]. *)

(** Incremental (in the population) assembly for sweeps.

    The balance coefficients depend only on the service rates and the
    routing, never on the level or the population, so a builder caches
    one template row per (station, phase vector) and each subsequent
    population re-derives the Kronecker flux terms for only the two
    boundary levels. {!Incremental.extend} produces a model {e
    identical} (rows, names, term order) to a fresh {!build} at the same
    population — callers cannot observe the difference except through
    timing. *)
module Incremental : sig
  type t
  (** A reusable builder: the constraint templates of one network family
      (fixed stations and routing, varying population). *)

  val create :
    config ->
    Mapqn_model.Network.t ->
    t * Marginal_space.t * Mapqn_lp.Lp_model.t
  (** Build the model for the first population and return the builder
      for the rest of the sweep. *)

  val extend :
    t -> Mapqn_model.Network.t -> Marginal_space.t * Mapqn_lp.Lp_model.t
  (** Assemble the model of another population of the same network
      family. Raises [Invalid_argument] when the network's stations or
      routing differ from the ones the builder was created for. *)
end

val cut_balance_residual : Marginal_space.t -> float array -> float
(** Maximum absolute residual of the paper's equation-(1) cut balances
    [Σ_{i≠k} Σ_h λ_i(h_i) p_{i,k} w_{i,k}(n-1, h)
     = Σ_h λ_k(h_k) (1 - p_{k,k}) v_k(n, h)]
    evaluated at an aggregate point — zero (numerically) at the exact
    aggregated solution. *)
