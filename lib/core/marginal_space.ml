module Comb = Mapqn_util.Comb

type t = {
  network : Mapqn_model.Network.t;
  m : int;
  n : int;
  phase_dims : int array;
  h : int; (* joint phase count *)
  strides : int array; (* phase rank strides per station *)
  tuples : int array array; (* joint phase rank -> tuple *)
  level2 : bool;
  (* Ordered pairs (j, k), j <> k, in row-major order; pair_index.(j).(k)
     gives the pair slot, -1 on the diagonal. *)
  pair_index : int array array;
  v_base : int;
  w_base : int;
  z_base : int;
  total : int;
}

let create ?(level2 = false) network =
  let m = Mapqn_model.Network.num_stations network in
  let n = Mapqn_model.Network.population network in
  let phase_dims = Mapqn_model.Network.phase_dims network in
  let h = Comb.ranges_count phase_dims in
  let strides = Array.make m 1 in
  for k = m - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * phase_dims.(k + 1)
  done;
  let tuples = Array.init h (Comb.unrank_range phase_dims) in
  let pair_index = Array.init m (fun _ -> Array.make m (-1)) in
  let next = ref 0 in
  for j = 0 to m - 1 do
    for k = 0 to m - 1 do
      if j <> k then begin
        pair_index.(j).(k) <- !next;
        incr next
      end
    done
  done;
  let npairs = !next in
  let v_count = m * (n + 1) * h in
  let w_count = npairs * (n + 1) * h in
  let z_count = if level2 then w_count else 0 in
  {
    network;
    m;
    n;
    phase_dims;
    h;
    strides;
    tuples;
    level2;
    pair_index;
    v_base = 0;
    w_base = v_count;
    z_base = v_count + w_count;
    total = v_count + w_count + z_count;
  }

let network t = t.network
let num_stations t = t.m
let population t = t.n
let num_phase_vectors t = t.h
let has_level2 t = t.level2
let num_vars t = t.total

let check_slot t ~station ~level ~phase =
  if station < 0 || station >= t.m then invalid_arg "Marginal_space: bad station";
  if level < 0 || level > t.n then invalid_arg "Marginal_space: bad level";
  if phase < 0 || phase >= t.h then invalid_arg "Marginal_space: bad phase"

let v t ~station ~level ~phase =
  check_slot t ~station ~level ~phase;
  t.v_base + ((((station * (t.n + 1)) + level) * t.h) + phase)

let pair t j k =
  let p = t.pair_index.(j).(k) in
  if p < 0 then invalid_arg "Marginal_space: diagonal pair";
  p

let w t ~busy ~station ~level ~phase =
  check_slot t ~station ~level ~phase;
  if busy < 0 || busy >= t.m then invalid_arg "Marginal_space: bad busy station";
  t.w_base + ((((pair t busy station * (t.n + 1)) + level) * t.h) + phase)

let z t ~counted ~station ~level ~phase =
  if not t.level2 then invalid_arg "Marginal_space.z: level-2 space not allocated";
  check_slot t ~station ~level ~phase;
  t.z_base + ((((pair t counted station * (t.n + 1)) + level) * t.h) + phase)

let describe t idx =
  if idx < 0 || idx >= t.total then invalid_arg "Marginal_space.describe";
  let block, name =
    if idx < t.w_base then (idx - t.v_base, "v")
    else if idx < t.z_base then (idx - t.w_base, "w")
    else (idx - t.z_base, "z")
  in
  if name = "v" then begin
    let phase = block mod t.h in
    let rest = block / t.h in
    let level = rest mod (t.n + 1) in
    let station = rest / (t.n + 1) in
    Printf.sprintf "v[%d](n=%d,h=%d)" station level phase
  end
  else begin
    let phase = block mod t.h in
    let rest = block / t.h in
    let level = rest mod (t.n + 1) in
    let p = rest / (t.n + 1) in
    (* Invert the pair index. *)
    let j = ref (-1) and k = ref (-1) in
    for a = 0 to t.m - 1 do
      for b = 0 to t.m - 1 do
        if t.pair_index.(a).(b) = p then begin
          j := a;
          k := b
        end
      done
    done;
    Printf.sprintf "%s[%d,%d](n=%d,h=%d)" name !j !k level phase
  end

type role =
  | Role_v of { station : int; level : int; phase : int }
  | Role_w of { busy : int; station : int; level : int; phase : int }
  | Role_z of { counted : int; station : int; level : int; phase : int }

(* The pair index is row-major over ordered pairs skipping the diagonal,
   so it inverts in closed form. *)
let unpair t p =
  let j = p / (t.m - 1) in
  let r = p mod (t.m - 1) in
  let k = if r >= j then r + 1 else r in
  (j, k)

let classify t idx =
  if idx < 0 || idx >= t.total then invalid_arg "Marginal_space.classify";
  let split base block =
    let phase = block mod t.h in
    let rest = block / t.h in
    let level = rest mod (t.n + 1) in
    (base + (rest / (t.n + 1)), level, phase)
  in
  if idx < t.w_base then begin
    let station, level, phase = split 0 (idx - t.v_base) in
    Role_v { station; level; phase }
  end
  else if idx < t.z_base then begin
    let p, level, phase = split 0 (idx - t.w_base) in
    let busy, station = unpair t p in
    Role_w { busy; station; level; phase }
  end
  else begin
    let p, level, phase = split 0 (idx - t.z_base) in
    let counted, station = unpair t p in
    Role_z { counted; station; level; phase }
  end

let phase_component t h k = t.tuples.(h).(k)

let phase_subst t h k b =
  if b < 0 || b >= t.phase_dims.(k) then invalid_arg "Marginal_space.phase_subst";
  h + ((b - t.tuples.(h).(k)) * t.strides.(k))

let station_order t k = t.phase_dims.(k)

let iter_phases t f =
  for h = 0 to t.h - 1 do
    f h
  done

let aggregate_exact t solution =
  let space = Mapqn_ctmc.Solution.space solution in
  let net_sol = Mapqn_ctmc.Solution.network solution in
  if
    Mapqn_model.Network.num_stations net_sol <> t.m
    || Mapqn_model.Network.population net_sol <> t.n
  then invalid_arg "Marginal_space.aggregate_exact: network mismatch";
  let out = Array.make t.total 0. in
  Mapqn_ctmc.State_space.iter space (fun idx qlen phases ->
      let p = Mapqn_ctmc.Solution.probability solution idx in
      if p <> 0. then begin
        let hrank = Comb.rank_range t.phase_dims phases in
        for k = 0 to t.m - 1 do
          let vi = v t ~station:k ~level:qlen.(k) ~phase:hrank in
          out.(vi) <- out.(vi) +. p;
          for j = 0 to t.m - 1 do
            if j <> k then begin
              if qlen.(j) >= 1 then begin
                let wi = w t ~busy:j ~station:k ~level:qlen.(k) ~phase:hrank in
                out.(wi) <- out.(wi) +. p
              end;
              if t.level2 && qlen.(j) >= 1 then begin
                let zi = z t ~counted:j ~station:k ~level:qlen.(k) ~phase:hrank in
                out.(zi) <- out.(zi) +. (p *. float_of_int qlen.(j))
              end
            end
          done
        done
      end);
  out
