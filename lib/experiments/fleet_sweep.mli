(** Fleet-scale random-model sweeps ([mapqn fleet]).

    The paper's full Table 1 (10,000 random models) and beyond-paper
    configurations (4-5 queues, populations to 1000) at fleet speed:
    per-model {!Mapqn_core.Bounds.Sweep}s sharded across a
    {!Mapqn_fleet} domain pool, with the exact-CTMC comparison an
    opt-in for small populations ([exact_upto]) since exact solves —
    not the LP bounds — are what make paper-scale grids infeasible.

    Determinism, checkpointing and per-model seeds follow
    {!Table1.run}: models are generated sequentially from [seed], each
    model evaluates under a run context seeded with
    [Fleet.task_seed ~seed index], and a progress reporter's heartbeat
    file doubles as the resume checkpoint. *)

type options = {
  spec : Mapqn_workloads.Random_models.spec;
  models : int;  (** paper scale: 10_000 *)
  populations : int list;  (** paper: 1..100; beyond-paper: up to 1000 *)
  config : Mapqn_core.Constraints.config;
  seed : int;
  jobs : int;  (** worker domains (1 = sequential, same results) *)
  exact_upto : int;
      (** also solve the exact CTMC and track bound errors for
          populations [<= exact_upto]; [0] disables (bounds only) *)
  accept_uncertified : bool;
      (** let a model whose rescue ladder is exhausted keep its best
          uncertified bounds instead of failing — its row is flagged
          ([uncertified]) and its checkpoint entry is stamped so a
          resumed run retries it. Default [false]: an exhausted ladder
          fails the model. *)
}

val default_options : options
(** 100 models, populations [1;2;4;8;16;32;64;100], [full] constraints,
    seed 2008, 1 job, no exact comparison, uncertified results fail. *)

type model_row = {
  index : int;
  id : string;  (** ["model-NNNNN"] *)
  model_seed : int;  (** the task's derived seed *)
  fingerprint : string;
  bounds : (int * Mapqn_core.Bounds.interval) list;
      (** response-time bounds per population, grid order *)
  rescues : (int * Mapqn_obs.Health.rescue) list;
      (** populations whose evaluation engaged the certificate rescue
          ladder (or whose post-solve refinement corrected a
          certificate-threatening residual), with the deepest rung
          engaged; grid order *)
  uncertified : int;
      (** populations whose result was accepted without a passing
          certificate (only with [accept_uncertified]) *)
  max_err_lower : float;  (** vs exact over [N <= exact_upto]; NaN if none *)
  max_err_upper : float;
  bracket_violations : int;
  duration_s : float;
}

type t = {
  options : options;
  rows : model_row list;  (** evaluated models, index order *)
  skipped : int;
  failed : (string * exn) list;
      (** (model id, error) per failed model, index order. A failure —
          typically an LP certificate beyond tolerance on a numerically
          hard random model — does not abort the fleet; the model emits
          no checkpoint entry, so a resumed run retries exactly it. *)
  wall_s : float;
  width_stats : float * float * float * float;
      (** (mean, std, median, max) of the relative response-time bound
          width at the largest population *)
  rmax_stats : float * float * float * float;
  rmin_stats : float * float * float * float;
}

val model_id : int -> string

val run :
  ?options:options ->
  ?progress:Mapqn_obs.Progress.t ->
  ?skip:(string -> bool) ->
  ?sink:(model_row -> unit) ->
  unit ->
  t
(** Evaluate the fleet. [sink] receives each row on the worker domain
    that produced it, as soon as it completes — stream large runs to
    disk instead of accumulating; the callback must be thread-safe.
    [skip]/[progress] as in {!Table1.run}. Per-model failures land in
    [failed] rather than aborting the run (unlike {!Table1.run}, which
    raises: its statistics are meaningless on a partial model set). *)

val row_to_json : model_row -> Mapqn_obs.Json.t
(** The row as one self-describing JSONL object (the CLI's [--out]
    format). *)

val print : t -> unit
