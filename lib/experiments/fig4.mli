(** Figure 4: failure of classic approximations on an autocorrelated
    two-queue closed tandem.

    Plots (as a table of series) the utilization of queue 1 versus the
    population N: the exact global-balance value, the decomposition–
    aggregation approximation, the ABA upper/lower bounds, and the
    paper's LP bounds (via a warm-started population sweep). Shape to
    reproduce: decomposition overshoots the exact curve badly once N grows
    past a few tens of jobs, the ABA bounds are only informative at
    very low or very high utilization, and the LP interval stays tight
    throughout. *)

type options = {
  params : Mapqn_workloads.Tandem.params;
  populations : int list;
}

val default_options : options
(** Paper range: N up to 500 (grid of 26 points). *)

val bench_options : options
(** Scaled-down grid (N <= 120) for the benchmark harness. *)

type row = {
  population : int;
  exact : float;
  decomposition : float;
  aba_lower : float;
  aba_upper : float;
  lp : Mapqn_core.Bounds.interval;
      (** the paper's LP bounds on the same utilization, computed by a
          warm-started {!Mapqn_core.Bounds.Sweep} over the grid *)
}

type t = { options : options; rows : row list }

val run : ?options:options -> ?progress:Mapqn_obs.Progress.t -> unit -> t
(** [progress], when given, receives one model per population (id
    ["N=<n>"], phases [exact]/[decomposition]/[aba]/[bounds]); the
    caller closes the reporter. *)

val print : t -> unit

val decomposition_max_error : t -> float
(** Max absolute utilization error of decomposition over the sweep — the
    figure's headline ("unacceptable inaccuracies beyond a few tens of
    requests"). *)
