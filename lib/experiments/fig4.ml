module Tandem = Mapqn_workloads.Tandem

type options = { params : Tandem.params; populations : int list }

let grid ~max_n ~points =
  let step = max 1 (max_n / points) in
  let rec go n acc = if n > max_n then List.rev acc else go (n + step) (n :: acc) in
  go step [ 1 ]
  |> List.sort_uniq compare

let default_options = { params = Tandem.default_params; populations = grid ~max_n:500 ~points:25 }
let bench_options = { params = Tandem.default_params; populations = grid ~max_n:120 ~points:12 }

type row = {
  population : int;
  exact : float;
  decomposition : float;
  aba_lower : float;
  aba_upper : float;
}

type t = { options : options; rows : row list }

let run ?(options = default_options) ?progress () =
  let q = Tandem.observed_queue in
  let report f = Option.iter f progress in
  let rows =
    List.map
      (fun population ->
        report (fun p ->
            Mapqn_obs.Progress.start p (Printf.sprintf "N=%d" population));
        let net = Tandem.network ~params:options.params ~population () in
        report (fun p -> Mapqn_obs.Progress.phase p "exact");
        let sol = Mapqn_ctmc.Solution.solve net in
        report (fun p -> Mapqn_obs.Progress.phase p "decomposition");
        let dec = Mapqn_baselines.Decomposition.solve net in
        report (fun p -> Mapqn_obs.Progress.phase p "aba");
        let lo, hi = Mapqn_baselines.Aba.utilization_bounds net q in
        let row =
          {
            population;
            exact = Mapqn_ctmc.Solution.utilization sol q;
            decomposition = dec.Mapqn_baselines.Decomposition.utilization.(q);
            aba_lower = lo;
            aba_upper = hi;
          }
        in
        report Mapqn_obs.Progress.finish;
        row)
      options.populations
  in
  { options; rows }

let print t =
  print_endline
    "Figure 4: queue-1 utilization of the autocorrelated two-queue tandem \
     (exact vs decomposition vs ABA bounds)";
  Mapqn_util.Table.print
    ~header:[ "N"; "exact"; "decomp"; "ABA lower"; "ABA upper" ]
    (List.map
       (fun r ->
         [
           string_of_int r.population;
           Mapqn_util.Table.float_cell r.exact;
           Mapqn_util.Table.float_cell r.decomposition;
           Mapqn_util.Table.float_cell r.aba_lower;
           Mapqn_util.Table.float_cell r.aba_upper;
         ])
       t.rows)

let decomposition_max_error t =
  List.fold_left
    (fun acc r -> Float.max acc (Float.abs (r.decomposition -. r.exact)))
    0. t.rows
