module Tandem = Mapqn_workloads.Tandem
module Bounds = Mapqn_core.Bounds

type options = { params : Tandem.params; populations : int list }

let grid ~max_n ~points =
  let step = max 1 (max_n / points) in
  let rec go n acc = if n > max_n then List.rev acc else go (n + step) (n :: acc) in
  go step [ 1 ]
  |> List.sort_uniq compare

let default_options = { params = Tandem.default_params; populations = grid ~max_n:500 ~points:25 }
let bench_options = { params = Tandem.default_params; populations = grid ~max_n:120 ~points:12 }

type row = {
  population : int;
  exact : float;
  decomposition : float;
  aba_lower : float;
  aba_upper : float;
  lp : Bounds.interval;
}

type t = { options : options; rows : row list }

let run ?(options = default_options) ?progress () =
  Mapqn_obs.Ledger.set_context "experiment" (Mapqn_obs.Json.String "fig4");
  let q = Tandem.observed_queue in
  let sweep =
    Bounds.Sweep.create (fun population ->
        Tandem.network ~params:options.params ~population ())
  in
  let rows =
    Bounds.Sweep.run ?progress sweep ~populations:options.populations
      ~f:(fun ~phase ~bounds population ->
        let net = Tandem.network ~params:options.params ~population () in
        phase "exact";
        let sol = Mapqn_ctmc.Solution.solve net in
        phase "decomposition";
        let dec = Mapqn_baselines.Decomposition.solve net in
        phase "aba";
        let lo, hi = Mapqn_baselines.Aba.utilization_bounds net q in
        let lp = Bounds.utilization (bounds ()) q in
        {
          population;
          exact = Mapqn_ctmc.Solution.utilization sol q;
          decomposition = dec.Mapqn_baselines.Decomposition.utilization.(q);
          aba_lower = lo;
          aba_upper = hi;
          lp;
        })
    |> List.map snd
  in
  { options; rows }

let print t =
  print_endline
    "Figure 4: queue-1 utilization of the autocorrelated two-queue tandem \
     (exact vs decomposition vs ABA vs LP bounds)";
  Mapqn_util.Table.print
    ~header:
      [ "N"; "exact"; "decomp"; "ABA lower"; "ABA upper"; "LP lower"; "LP upper" ]
    (List.map
       (fun r ->
         [
           string_of_int r.population;
           Mapqn_util.Table.float_cell r.exact;
           Mapqn_util.Table.float_cell r.decomposition;
           Mapqn_util.Table.float_cell r.aba_lower;
           Mapqn_util.Table.float_cell r.aba_upper;
           Mapqn_util.Table.float_cell r.lp.Bounds.lower;
           Mapqn_util.Table.float_cell r.lp.Bounds.upper;
         ])
       t.rows)

let decomposition_max_error t =
  List.fold_left
    (fun acc r -> Float.max acc (Float.abs (r.decomposition -. r.exact)))
    0. t.rows
