(* Fleet-scale random-model sweeps (mapqn fleet).

   Table 1 at its paper scale — 10,000 models — and beyond-paper
   configurations (4-5 queues, populations to 1000) are bounds-only
   territory: the exact CTMC that Table 1 compares against is what
   limits that experiment to small grids, while the LP bounds themselves
   scale. This experiment shards per-model [Bounds.Sweep]s across a
   {!Mapqn_fleet} domain pool, streams one row per model to an optional
   sink (the CLI writes JSONL), and keeps the exact comparison as an
   opt-in for populations below a threshold.

   Model generation stays sequential on the calling domain (see
   {!Table1.run} — it is microseconds per model and keeps the model set
   bit-identical across [jobs] values). *)

module Random_models = Mapqn_workloads.Random_models
module Bounds = Mapqn_core.Bounds
module Solution = Mapqn_ctmc.Solution
module Fleet = Mapqn_fleet.Fleet
module Health = Mapqn_obs.Health

type options = {
  spec : Random_models.spec;
  models : int;
  populations : int list;
  config : Mapqn_core.Constraints.config;
  seed : int;
  jobs : int;
  exact_upto : int;
  accept_uncertified : bool;
}

let default_options =
  {
    spec = Random_models.default_spec;
    models = 100;
    populations = [ 1; 2; 4; 8; 16; 32; 64; 100 ];
    config = Mapqn_core.Constraints.full;
    seed = 2008;
    jobs = 1;
    exact_upto = 0;
    accept_uncertified = false;
  }

type model_row = {
  index : int;
  id : string;
  model_seed : int;
  fingerprint : string;
  bounds : (int * Bounds.interval) list;  (* (population, R bounds) *)
  rescues : (int * Health.rescue) list;
      (* populations whose eval engaged the rescue ladder, grid order *)
  uncertified : int;  (* populations accepted without a certificate *)
  max_err_lower : float;  (* NaN when no population had an exact solve *)
  max_err_upper : float;
  bracket_violations : int;
  duration_s : float;
}

type t = {
  options : options;
  rows : model_row list;  (* index order, evaluated models only *)
  skipped : int;
  failed : (string * exn) list;  (* (model id, error), index order *)
  wall_s : float;
  (* Relative width (upper-lower)/midpoint of the response-time bounds
     at the largest population, across models: (mean, std, median, max).
     NaN components when undefined (no rows, or singleton std). *)
  width_stats : float * float * float * float;
  (* Error stats vs exact, as Table 1, over models that had at least one
     exact population (empty when [exact_upto] excludes them all). *)
  rmax_stats : float * float * float * float;
  rmin_stats : float * float * float * float;
}

let model_id index = Printf.sprintf "model-%05d" index

let evaluate_model ?progress options index (model : Random_models.model) =
  let id = model_id index in
  let report f = Option.iter f progress in
  let t0 = Mapqn_obs.Span.now () in
  let rescue =
    { Bounds.default_rescue with
      accept_uncertified = options.accept_uncertified
    }
  in
  let sweep =
    Bounds.Sweep.create ~config:options.config ~rescue (fun population ->
        Mapqn_model.Network.with_population model.Random_models.network
          population)
  in
  let max_lower = ref Float.nan and max_upper = ref Float.nan in
  let violations = ref 0 in
  let rescues = ref [] in
  let bounds =
    List.map
      (fun population ->
        report (fun p ->
            Mapqn_obs.Progress.task_phase p ~id
              (Printf.sprintf "N=%d" population));
        let b = Bounds.Sweep.step_exn sweep population in
        (* [Sweep.step] and each [Bounds.eval] begin a fresh health
           snapshot, so a prepare-time rescue (phase-1 ladder inside the
           step) must be read before the evals wipe it; the eval-time
           certificate rescue is read after. The deeper rung — the more
           drastic escalation — attributes to [population]. *)
        let step_rescue = (Health.current ()).Health.rescue in
        let r = Bounds.response_time b in
        let eval_rescue = (Health.current ()).Health.rescue in
        (match (step_rescue, eval_rescue) with
        | None, None -> ()
        | (Some _ as one), None | None, (Some _ as one) ->
          rescues := (population, Option.get one) :: !rescues
        | Some a, Some b ->
          let deeper =
            if Health.rescue_depth_of a >= Health.rescue_depth_of b then a
            else b
          in
          rescues := (population, deeper) :: !rescues);
        if population <= options.exact_upto then begin
          let net =
            Mapqn_model.Network.with_population model.Random_models.network
              population
          in
          let exact = Solution.system_response_time (Solution.solve net) in
          let max_nan cur v = if Float.is_nan cur then v else Float.max cur v in
          max_lower :=
            max_nan !max_lower
              (Mapqn_util.Tol.relative_error ~exact r.Bounds.lower);
          max_upper :=
            max_nan !max_upper
              (Mapqn_util.Tol.relative_error ~exact r.Bounds.upper);
          if not (Bounds.contains r exact) then incr violations
        end;
        (population, r))
      options.populations
  in
  let rescues = List.rev !rescues in
  {
    index;
    id;
    model_seed = Fleet.task_seed ~seed:options.seed index;
    fingerprint =
      Mapqn_model.Network.fingerprint model.Random_models.network;
    bounds;
    rescues;
    uncertified =
      List.length
        (List.filter (fun (_, r) -> r = Health.Uncertified) rescues);
    max_err_lower = !max_lower;
    max_err_upper = !max_upper;
    bracket_violations = !violations;
    duration_s = Mapqn_obs.Span.now () -. t0;
  }

let summary a =
  match Array.length a with
  | 0 -> (Float.nan, Float.nan, Float.nan, Float.nan)
  | 1 -> (a.(0), Float.nan, a.(0), a.(0))
  | _ -> Mapqn_util.Stats.summary a

let run ?(options = default_options) ?progress ?(skip = fun _ -> false) ?sink
    () =
  if options.populations = [] then invalid_arg "Fleet_sweep.run: no populations";
  Mapqn_obs.Ledger.set_context "experiment" (Mapqn_obs.Json.String "fleet");
  Mapqn_obs.Ledger.set_context "seed"
    (Mapqn_obs.Json.Number (float_of_int options.seed));
  let t0 = Mapqn_obs.Span.now () in
  let models =
    Array.of_list
      (Random_models.generate_many ~spec:options.spec ~seed:options.seed
         options.models)
  in
  let outcomes =
    Fleet.run_tasks ~jobs:(max 1 options.jobs) ?progress ~skip
      ~certified:(fun row -> row.uncertified = 0)
      ~seed:options.seed ~ids:model_id ~total:(Array.length models)
      ~f:(fun index ->
        let row = evaluate_model ?progress options index models.(index) in
        (* The sink runs on the worker domain, as soon as the row exists:
           a 10,000-model run streams results instead of holding them
           hostage to the slowest worker. Sink callbacks must be
           thread-safe (the CLI serializes writes with a mutex). *)
        Option.iter (fun f -> f row) sink;
        row)
      ()
  in
  let rows =
    Array.to_list outcomes
    |> List.filter_map (function
         | Fleet.Done r -> Some r
         | Fleet.Skipped | Fleet.Failed _ -> None)
  in
  let skipped =
    Array.fold_left
      (fun acc -> function Fleet.Skipped -> acc + 1 | _ -> acc)
      0 outcomes
  in
  (* Unlike {!Table1.run} this does not raise on a failed model: at
     fleet scale a handful of numerically hard random models (an LP
     certificate beyond tolerance at a large population) must not cost
     the summary of the other ten thousand. Failures are reported — and,
     emitting no "done" heartbeat, retried by a resumed run. *)
  let failed =
    Array.to_list outcomes
    |> List.mapi (fun index o -> (index, o))
    |> List.filter_map (function
         | index, Fleet.Failed e -> Some (model_id index, e)
         | _ -> None)
  in
  let top_n = List.fold_left max 0 options.populations in
  let widths =
    List.filter_map
      (fun row ->
        match List.assoc_opt top_n row.bounds with
        | Some { Bounds.lower; upper }
          when Float.is_finite lower && Float.is_finite upper
               && lower +. upper > 0. ->
          Some ((upper -. lower) /. ((upper +. lower) /. 2.))
        | _ -> None)
      rows
  in
  let with_exact = List.filter (fun r -> not (Float.is_nan r.max_err_upper)) rows in
  {
    options;
    rows;
    skipped;
    failed;
    wall_s = Mapqn_obs.Span.now () -. t0;
    width_stats = summary (Array.of_list widths);
    rmax_stats = summary (Array.of_list (List.map (fun r -> r.max_err_upper) with_exact));
    rmin_stats = summary (Array.of_list (List.map (fun r -> r.max_err_lower) with_exact));
  }

(* One JSONL object per model row — what the CLI's --out sink writes.
   Bounds are a list of per-population objects so the file is
   self-describing independent of the populations grid. *)
let row_to_json row =
  let num v = Mapqn_obs.Json.Number v in
  Mapqn_obs.Json.Object
    [
      ("index", num (float_of_int row.index));
      ("model", Mapqn_obs.Json.String row.id);
      ("seed", num (float_of_int row.model_seed));
      ("fingerprint", Mapqn_obs.Json.String row.fingerprint);
      ( "bounds",
        Mapqn_obs.Json.List
          (List.map
             (fun (n, { Bounds.lower; upper }) ->
               Mapqn_obs.Json.Object
                 [
                   ("population", num (float_of_int n));
                   ("r_lower", num lower);
                   ("r_upper", num upper);
                 ])
             row.bounds) );
      ( "rescues",
        Mapqn_obs.Json.List
          (List.map
             (fun (n, rung) ->
               Mapqn_obs.Json.Object
                 [
                   ("population", num (float_of_int n));
                   ( "rescue",
                     Mapqn_obs.Json.String (Health.rescue_to_string rung) );
                   ( "rescue_depth",
                     num (float_of_int (Health.rescue_depth_of rung)) );
                 ])
             row.rescues) );
      ("uncertified", num (float_of_int row.uncertified));
      ("max_err_lower", num row.max_err_lower);
      ("max_err_upper", num row.max_err_upper);
      ("bracket_violations", num (float_of_int row.bracket_violations));
      ("duration_s", num row.duration_s);
    ]

let print t =
  let n_rows = List.length t.rows in
  Printf.printf
    "Fleet sweep: %d model(s) evaluated, %d failed (%d skipped) on %d job(s) \
     in %.1f s (%.2f models/s)\n"
    n_rows
    (List.length t.failed)
    t.skipped t.options.jobs t.wall_s
    (if t.wall_s > 0. then float_of_int n_rows /. t.wall_s else 0.);
  (match t.failed with
  | [] -> ()
  | (id, e) :: rest ->
    Printf.printf
      "first failure: %s: %s%s\n(failed models emit no checkpoint entry; \
       rerun with --resume-from to retry exactly them)\n"
      id (Printexc.to_string e)
      (match rest with
      | [] -> ""
      | _ -> Printf.sprintf " (+%d more)" (List.length rest)));
  (* Per-rung hit counts over all (model, population) evals: how often
     each rescue-ladder rung produced the accepted result. *)
  let rung_hits =
    List.fold_left
      (fun acc row ->
        List.fold_left
          (fun acc (_, rung) ->
            let d = Health.rescue_depth_of rung in
            acc.(d - 1) <- acc.(d - 1) + 1;
            acc)
          acc row.rescues)
      (Array.make 5 0) t.rows
  in
  let rescued_models =
    List.length (List.filter (fun r -> r.rescues <> []) t.rows)
  in
  if rescued_models > 0 then begin
    let cells =
      List.filteri (fun i _ -> rung_hits.(i) > 0)
        [ Health.Refined; Health.Reperturbed; Health.Cold_resolve;
          Health.Dense_oracle; Health.Uncertified ]
      |> List.map (fun rung ->
             Printf.sprintf "%s %d"
               (Health.rescue_to_string rung)
               rung_hits.(Health.rescue_depth_of rung - 1))
    in
    Printf.printf "rescue ladder: %s (%d model(s), per-population evals)\n"
      (String.concat ", " cells)
      rescued_models
  end;
  let uncertified =
    List.fold_left (fun acc r -> acc + r.uncertified) 0 t.rows
  in
  if uncertified > 0 then
    Printf.printf
      "uncertified evals accepted: %d (rerun with --resume-from to retry \
       those models)\n"
      uncertified;
  let top_n = List.fold_left max 0 t.options.populations in
  let row label (mean, std, median, maximum) =
    [
      label;
      Mapqn_util.Table.float_cell ~decimals:3 mean;
      Mapqn_util.Table.float_cell ~decimals:3 std;
      Mapqn_util.Table.float_cell ~decimals:3 median;
      Mapqn_util.Table.float_cell ~decimals:3 maximum;
    ]
  in
  if n_rows > 0 then begin
    Mapqn_util.Table.print
      ~header:[ Printf.sprintf "rel. width @ N=%d" top_n; "mean"; "std dev"; "median"; "max" ]
      [ row "R bounds" t.width_stats ];
    let with_exact =
      List.length (List.filter (fun r -> not (Float.is_nan r.max_err_upper)) t.rows)
    in
    if with_exact > 0 then begin
      Printf.printf "vs exact (N <= %d, %d model(s)):\n" t.options.exact_upto
        with_exact;
      Mapqn_util.Table.print
        ~header:[ ""; "mean"; "std dev"; "median"; "max" ]
        [ row "Rmax" t.rmax_stats; row "Rmin" t.rmin_stats ];
      let violations =
        List.fold_left (fun acc r -> acc + r.bracket_violations) 0 t.rows
      in
      Printf.printf "bracket violations (must be 0): %d\n%!" violations
    end
  end;
  Printf.printf "%!"
