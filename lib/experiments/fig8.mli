(** Figure 8: LP bounds versus the exact solution on the case-study
    network (Figure 5 topology, MAP queue with CV = 4, γ₂ = 0.5).

    (a) bottleneck (queue 3) utilization and (b) system response time as
    functions of the population, each with the LP lower/upper bounds.
    Properties to reproduce: the bounds stay close to the exact value at
    every population and both converge to the exact asymptote as N grows
    (the paper highlights that asymptotic exactness). *)

type options = {
  params : Mapqn_workloads.Case_study.params;
  populations : int list;
  config : Mapqn_core.Constraints.config;
}

val default_options : options
(** N <= 100 on a coarse grid with the [standard] constraint set (the
    paper plots to N = 200; the LP at that size takes hours with this
    repository's dense simplex — see EXPERIMENTS.md for runtimes). *)

val bench_options : options
(** N <= 32 with the [full] (level-2) constraint set — the configuration
    that reproduces the paper's ~2% accuracy. *)

type row = {
  population : int;
  exact_utilization : float;
  utilization : Mapqn_core.Bounds.interval;
  exact_response : float;
  response : Mapqn_core.Bounds.interval;
}

type t = { options : options; rows : row list }

val run : ?options:options -> ?progress:Mapqn_obs.Progress.t -> unit -> t
(** [progress], when given, receives one model per population (id
    ["N=<n>"], phases [exact]/[bounds]); the caller closes the
    reporter. *)

val print : t -> unit

val max_response_error : t -> float * float
(** Max relative error of (lower, upper) response-time bounds over the
    sweep. *)
