(** Table 1: accuracy of the response-time bounds on random models.

    For each random 3-queue MAP(2) network, compute the maximal relative
    error of the response-time bounds against the exact solution over a
    population grid, then report the distribution of those maxima across
    models — exactly the paper's four statistics (mean, std dev, median,
    max) for the upper bound [R_max] (from [X_min]) and the lower bound
    [R_min] (from [X_max]).

    The paper runs 10_000 models over every population 1..100; that is
    CPU-months with this repository's from-scratch LP solver, so the count
    and grid are parameters (defaults documented in EXPERIMENTS.md) — the
    reported statistics estimate the same population quantities. *)

type options = {
  spec : Mapqn_workloads.Random_models.spec;
  models : int;
  populations : int list;  (** paper: 1..100 *)
  config : Mapqn_core.Constraints.config;
  seed : int;
  jobs : int;
      (** worker domains for the per-model fleet (1 = sequential; the
          results are bit-identical either way) *)
}

val default_options : options
(** 50 models, populations [1;2;4;8;16;32], [full] constraints, 1 job. *)

val bench_options : options
(** 12 models, populations [1;2;4;8], [full] constraints, 1 job. *)

type model_result = {
  index : int;
  max_err_lower : float;  (** max over N of rel. error of R_min *)
  max_err_upper : float;  (** max over N of rel. error of R_max *)
  bracket_violations : int;  (** populations where exact fell outside *)
}

type t = {
  options : options;
  per_model : model_result list;
  (* Summary rows in the paper's format: (mean, std, median, max). *)
  rmax_stats : float * float * float * float;
  rmin_stats : float * float * float * float;
}

val run :
  ?options:options ->
  ?progress:Mapqn_obs.Progress.t ->
  ?skip:(string -> bool) ->
  unit ->
  t
(** [progress], when given, receives one model per random network (id
    ["model-NNNN"], one phase per population). [skip id] (default
    never) excludes a model from evaluation — model generation is
    deterministic in [seed], so ids from a previous run's heartbeat file
    ({!Mapqn_obs.Progress.load_completed}) resume a partial sweep; the
    summary statistics then cover only the evaluated models.

    With [options.jobs > 1] the models are evaluated by a
    {!Mapqn_fleet} domain pool. Models are always {e generated}
    sequentially on the calling domain (generation is microseconds per
    model; evaluation is the expensive part), so the model set — and,
    each model's evaluation being independent, every per-model result
    and ledger record body — is bit-identical for every [jobs] value. *)

val print : t -> unit
