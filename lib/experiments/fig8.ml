module Case_study = Mapqn_workloads.Case_study
module Bounds = Mapqn_core.Bounds
module Solution = Mapqn_ctmc.Solution

type options = {
  params : Case_study.params;
  populations : int list;
  config : Mapqn_core.Constraints.config;
}

let default_options =
  {
    params = Case_study.default_params;
    populations = [ 1; 5; 10; 20; 40; 60; 80; 100 ];
    config = Mapqn_core.Constraints.standard;
  }

let bench_options =
  {
    params = Case_study.default_params;
    populations = [ 2; 4; 8; 16; 32 ];
    config = Mapqn_core.Constraints.full;
  }

type row = {
  population : int;
  exact_utilization : float;
  utilization : Bounds.interval;
  exact_response : float;
  response : Bounds.interval;
}

type t = { options : options; rows : row list }

let run ?(options = default_options) ?progress () =
  Mapqn_obs.Ledger.set_context "experiment" (Mapqn_obs.Json.String "fig8");
  let q = Case_study.bottleneck in
  let sweep =
    Bounds.Sweep.create ~config:options.config (fun population ->
        Case_study.network ~params:options.params ~population ())
  in
  let rows =
    Bounds.Sweep.run ?progress sweep ~populations:options.populations
      ~f:(fun ~phase ~bounds population ->
        phase "exact";
        let net = Case_study.network ~params:options.params ~population () in
        let sol = Solution.solve net in
        let b = bounds () in
        {
          population;
          exact_utilization = Solution.utilization sol q;
          utilization = Bounds.utilization b q;
          exact_response = Solution.system_response_time sol;
          response = Bounds.response_time b;
        })
    |> List.map snd
  in
  { options; rows }

let print t =
  print_endline
    "Figure 8: case-study bounds vs exact (queue-3 utilization and system \
     response time)";
  Mapqn_util.Table.print
    ~header:
      [ "N"; "U3 lower"; "U3 exact"; "U3 upper"; "R lower"; "R exact"; "R upper" ]
    (List.map
       (fun r ->
         [
           string_of_int r.population;
           Mapqn_util.Table.float_cell r.utilization.Bounds.lower;
           Mapqn_util.Table.float_cell r.exact_utilization;
           Mapqn_util.Table.float_cell r.utilization.Bounds.upper;
           Mapqn_util.Table.float_cell ~decimals:2 r.response.Bounds.lower;
           Mapqn_util.Table.float_cell ~decimals:2 r.exact_response;
           Mapqn_util.Table.float_cell ~decimals:2 r.response.Bounds.upper;
         ])
       t.rows)

let max_response_error t =
  List.fold_left
    (fun (lo, hi) r ->
      ( Float.max lo (Mapqn_util.Tol.relative_error ~exact:r.exact_response r.response.Bounds.lower),
        Float.max hi (Mapqn_util.Tol.relative_error ~exact:r.exact_response r.response.Bounds.upper) ))
    (0., 0.) t.rows
