module Random_models = Mapqn_workloads.Random_models
module Bounds = Mapqn_core.Bounds
module Solution = Mapqn_ctmc.Solution

type options = {
  spec : Random_models.spec;
  models : int;
  populations : int list;
  config : Mapqn_core.Constraints.config;
  seed : int;
  jobs : int;
}

let default_options =
  {
    spec = Random_models.default_spec;
    models = 50;
    populations = [ 1; 2; 4; 8; 16; 32 ];
    config = Mapqn_core.Constraints.full;
    seed = 2008;
    jobs = 1;
  }

let bench_options =
  { default_options with models = 12; populations = [ 1; 2; 4; 8 ] }

type model_result = {
  index : int;
  max_err_lower : float;
  max_err_upper : float;
  bracket_violations : int;
}

type t = {
  options : options;
  per_model : model_result list;
  rmax_stats : float * float * float * float;
  rmin_stats : float * float * float * float;
}

let model_id index = Printf.sprintf "model-%04d" index

(* Progress start/done events are the fleet runner's job (it knows the
   per-task seed and wall time); the model body only reports phases,
   with its id explicit so concurrent workers' phase heartbeats cannot
   be attributed to each other's models. *)
let evaluate_model ?progress options index (model : Random_models.model) =
  let report f = Option.iter f progress in
  let id = model_id index in
  let max_lower = ref 0. and max_upper = ref 0. and violations = ref 0 in
  (* One sweep per model: each population's LP extends the previous one
     instead of being rebuilt, and the revised backend carries its basis
     across populations. *)
  let sweep =
    Bounds.Sweep.create ~config:options.config (fun population ->
        Mapqn_model.Network.with_population model.Random_models.network
          population)
  in
  List.iter
    (fun population ->
      report (fun p ->
          Mapqn_obs.Progress.task_phase p ~id
            (Printf.sprintf "N=%d" population));
      let net = Mapqn_model.Network.with_population model.Random_models.network population in
      let sol = Solution.solve net in
      let exact = Solution.system_response_time sol in
      let b = Bounds.Sweep.step_exn sweep population in
      let r = b |> Bounds.response_time in
      max_lower :=
        Float.max !max_lower (Mapqn_util.Tol.relative_error ~exact r.Bounds.lower);
      max_upper :=
        Float.max !max_upper (Mapqn_util.Tol.relative_error ~exact r.Bounds.upper);
      if not (Bounds.contains r exact) then incr violations)
    options.populations;
  {
    index;
    max_err_lower = !max_lower;
    max_err_upper = !max_upper;
    bracket_violations = !violations;
  }

let run ?(options = default_options) ?progress ?(skip = fun _ -> false) () =
  (* Ledger provenance: the sink-wide context names the experiment and
     its master seed; each model's fleet task overlays its own id and
     derived per-model seed on top (no-op when no ledger is enabled). *)
  Mapqn_obs.Ledger.set_context "experiment" (Mapqn_obs.Json.String "table1");
  Mapqn_obs.Ledger.set_context "seed"
    (Mapqn_obs.Json.Number (float_of_int options.seed));
  (* Models are generated sequentially on this domain even when the
     evaluation fans out: generation is microseconds per model against
     seconds of LP work, and one sequential PRNG stream keeps the model
     set — hence every per-model result — bit-identical across [jobs]
     values AND to the historical sequential runs. Skipping a model by
     id (e.g. one a previous run's heartbeat file marks done) likewise
     leaves the remaining models identical to a full run. *)
  let models =
    Array.of_list
      (Random_models.generate_many ~spec:options.spec ~seed:options.seed
         options.models)
  in
  let outcomes =
    Mapqn_fleet.Fleet.run_tasks ~jobs:(max 1 options.jobs) ?progress ~skip
      ~seed:options.seed ~ids:model_id ~total:(Array.length models)
      ~f:(fun index -> evaluate_model ?progress options index models.(index))
      ()
  in
  (match Mapqn_fleet.Fleet.first_failure outcomes with
  | Some e -> raise e
  | None -> ());
  let per_model =
    Array.to_list outcomes
    |> List.filter_map (function
         | Mapqn_fleet.Fleet.Done r -> Some r
         | Mapqn_fleet.Fleet.Skipped | Mapqn_fleet.Fleet.Failed _ -> None)
  in
  let upper = Array.of_list (List.map (fun r -> r.max_err_upper) per_model) in
  let lower = Array.of_list (List.map (fun r -> r.max_err_lower) per_model) in
  (* A resume may leave zero or one model to evaluate; summary
     statistics that are undefined on such samples (all of them for an
     empty sample, the standard deviation for a singleton) are NaN, not
     an error. *)
  let summary a =
    match Array.length a with
    | 0 -> (Float.nan, Float.nan, Float.nan, Float.nan)
    | 1 -> (a.(0), Float.nan, a.(0), a.(0))
    | _ -> Mapqn_util.Stats.summary a
  in
  {
    options;
    per_model;
    rmax_stats = summary upper;
    rmin_stats = summary lower;
  }

let print t =
  if t.per_model = [] then
    Printf.printf
      "Table 1: no models evaluated (all %d skipped by resume)\n%!"
      t.options.models
  else begin
  Printf.printf
    "Table 1: maximal relative error of response-time bounds on %d random \
     models (populations %s)\n"
    (List.length t.per_model)
    (String.concat "," (List.map string_of_int t.options.populations));
  let row label (mean, std, median, maximum) =
    [
      label;
      Mapqn_util.Table.float_cell ~decimals:3 mean;
      Mapqn_util.Table.float_cell ~decimals:3 std;
      Mapqn_util.Table.float_cell ~decimals:3 median;
      Mapqn_util.Table.float_cell ~decimals:3 maximum;
    ]
  in
  Mapqn_util.Table.print
    ~header:[ ""; "mean"; "std dev"; "median"; "max" ]
    [ row "Rmax" t.rmax_stats; row "Rmin" t.rmin_stats ];
  let violations =
    List.fold_left (fun acc r -> acc + r.bracket_violations) 0 t.per_model
  in
  Printf.printf "bracket violations (must be 0): %d\n%!" violations
  end
