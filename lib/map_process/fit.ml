type h2 = { p1 : float; rate1 : float; rate2 : float }

let h2_balanced ~mean ~scv =
  if mean <= 0. then Error "mean must be positive"
  else if scv < 1. -. 1e-9 then Error "H2 requires scv >= 1"
  else if scv <= 1. +. 1e-9 then
    (* Degenerate: exponential. *)
    Ok { p1 = 1.; rate1 = 1. /. mean; rate2 = 1. /. mean }
  else begin
    (* Balanced means: p1/rate1 = p2/rate2 = mean/2. Standard closed form
       (Allen / Lazowska): p1 = (1 + sqrt((c²-1)/(c²+1))) / 2. *)
    let p1 = 0.5 *. (1. +. sqrt ((scv -. 1.) /. (scv +. 1.))) in
    let rate1 = 2. *. p1 /. mean in
    let rate2 = 2. *. (1. -. p1) /. mean in
    Ok { p1; rate1; rate2 }
  end

let h2_three_moments ~m1 ~m2 ~m3 =
  if m1 <= 0. || m2 <= 0. || m3 <= 0. then Error "moments must be positive"
  else begin
    (* Normalized power sums of the branch means v_i = 1/rate_i:
       u1 = E[v] = m1, u2 = E[v²] = m2/2, u3 = E[v³] = m3/6.
       Both atoms satisfy v² = A v - B where A, B solve the moment
       recurrence; then p1 follows from the first moment. *)
    let u1 = m1 and u2 = m2 /. 2. and u3 = m3 /. 6. in
    let denom = u2 -. (u1 *. u1) in
    if denom <= 1e-15 then Error "scv <= 1: not an H2"
    else begin
      let a = (u3 -. (u1 *. u2)) /. denom in
      let b = (a *. u1) -. u2 in
      let disc = (a *. a) -. (4. *. b) in
      if disc <= 0. then Error "complex branch means: m3 infeasible for H2"
      else begin
        let s = sqrt disc in
        let v1 = (a +. s) /. 2. and v2 = (a -. s) /. 2. in
        if v2 <= 0. then Error "negative branch mean: m3 infeasible for H2"
        else begin
          let p1 = (u1 -. v2) /. (v1 -. v2) in
          if p1 < 0. || p1 > 1. then Error "branch probability outside [0,1]"
          else Ok { p1; rate1 = 1. /. v1; rate2 = 1. /. v2 }
        end
      end
    end
  end

let m3_feasible_range ~m1 ~m2 =
  let u1 = m1 and u2 = m2 /. 2. in
  if u2 -. (u1 *. u1) <= 1e-15 then None
  else begin
    (* The infimum of u3 over valid H2s with fixed (u1, u2) is attained in
       the limit v2 → 0 (exponential branch collapsing): u3 → u2²/u1.
       There is no finite supremum. The m3 scale restores the 6 factor. *)
    let u3_min = u2 *. u2 /. u1 in
    Some (6. *. u3_min, infinity)
  end

let skewness_to_m3 ~m1 ~m2 ~skewness =
  let var = m2 -. (m1 *. m1) in
  let sigma = sqrt var in
  (skewness *. sigma *. sigma *. sigma) +. (3. *. m1 *. var) +. (m1 *. m1 *. m1)

let m_fits =
  Mapqn_obs.Metrics.counter ~help:"MAP(2) fits attempted." "map_fit_total"

let m_fit_failures =
  Mapqn_obs.Metrics.counter ~help:"MAP(2) fits rejected as infeasible."
    "map_fit_failures_total"

let m_fit_error =
  Mapqn_obs.Metrics.gauge
    ~help:"Worst relative error of the last fit's achieved (mean, scv, gamma2) \
           against the targets."
    "map_fit_error"

(* Worst relative discrepancy between the moments of the fitted process
   and the requested targets — the closed forms are exact in theory, so
   this gauges the numerical quality of the construction. *)
let record_fit_error p ~mean ~scv ~gamma2 =
  let rel a target =
    if target = 0. then Float.abs (a -. target)
    else Float.abs ((a -. target) /. target)
  in
  let err = Float.max (rel (Process.mean p) mean) (rel (Process.scv p) scv) in
  let err =
    match Process.acf_decay p with
    | Some g -> Float.max err (rel g gamma2)
    | None -> err
  in
  Mapqn_obs.Metrics.set m_fit_error err

let map2 ~mean ~scv ~gamma2 ?skewness () =
  Mapqn_obs.Span.with_ "map.fit" @@ fun () ->
  Mapqn_obs.Metrics.inc m_fits;
  let result =
    if gamma2 < 0. || gamma2 >= 1. then Error "gamma2 must be in [0,1)"
    else begin
      let h2_result =
        match skewness with
        | None -> h2_balanced ~mean ~scv
        | Some sk ->
          let m2 = (scv +. 1.) *. mean *. mean in
          let m3 = skewness_to_m3 ~m1:mean ~m2 ~skewness:sk in
          h2_three_moments ~m1:mean ~m2 ~m3
      in
      match h2_result with
      | Error _ as e -> e
      | Ok { p1; rate1; rate2 } ->
        if p1 >= 1. -. 1e-12 || p1 <= 1e-12 || Float.abs (rate1 -. rate2) < 1e-12 then
          (* Degenerate marginal: a single exponential branch. Correlation
             cannot be expressed; require gamma2 = 0. *)
          if gamma2 = 0. then Ok (Builders.exponential ~rate:(1. /. mean))
          else Error "scv = 1 admits no MAP(2) autocorrelation in this family"
        else Ok (Builders.switched_exponential ~pi1:p1 ~rate1 ~rate2 ~gamma2)
    end
  in
  (match result with
  | Ok p -> record_fit_error p ~mean ~scv ~gamma2
  | Error _ -> Mapqn_obs.Metrics.inc m_fit_failures);
  result

let map2_exn ~mean ~scv ~gamma2 ?skewness () =
  match map2 ~mean ~scv ~gamma2 ?skewness () with
  | Ok t -> t
  | Error msg -> invalid_arg ("Fit.map2: " ^ msg)
