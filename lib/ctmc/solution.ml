module Ksum = Mapqn_util.Ksum

type t = {
  network : Mapqn_model.Network.t;
  space : State_space.t;
  pi : float array;
  completion_rates : float array array; (* station -> phase -> per-job rate *)
  is_delay : bool array;
}

let solve ?max_states ?options network =
  Mapqn_obs.Span.with_ "ctmc.solve" @@ fun () ->
  let space = State_space.create ?max_states network in
  let pi =
    if Mapqn_model.Network.population network = 0 then
      (* No transitions exist; every metric is 0 regardless of the phase
         distribution, so any fixed distribution will do. *)
      Array.make (State_space.num_states space)
        (1. /. float_of_int (State_space.num_states space))
    else Mapqn_sparse.Stationary.solve ?options (Generator.build space)
  in
  let m = Mapqn_model.Network.num_stations network in
  let completion_rates =
    Array.init m (fun k ->
        Mapqn_map.Process.completion_rates
          (Mapqn_model.Station.service_process (Mapqn_model.Network.station network k)))
  in
  let is_delay =
    Array.init m (fun k ->
        Mapqn_model.Station.is_delay (Mapqn_model.Network.station network k))
  in
  { network; space; pi; completion_rates; is_delay }

let network t = t.network
let space t = t.space
let probability t i = t.pi.(i)
let distribution t = t.pi

let queue_length_marginal t k =
  let n = Mapqn_model.Network.population t.network in
  let accs = Array.init (n + 1) (fun _ -> Ksum.create ()) in
  State_space.iter t.space (fun idx qlen _ -> Ksum.add accs.(qlen.(k)) t.pi.(idx));
  Array.map Ksum.total accs

let utilization t k =
  let marginal = queue_length_marginal t k in
  Mapqn_util.Tol.clamp_probability (1. -. marginal.(0))

let throughput t k =
  let acc = Ksum.create () in
  State_space.iter t.space (fun idx qlen h ->
      if qlen.(k) > 0 then begin
        let multiplier = if t.is_delay.(k) then float_of_int qlen.(k) else 1. in
        Ksum.add acc (t.pi.(idx) *. t.completion_rates.(k).(h.(k)) *. multiplier)
      end);
  Ksum.total acc

let queue_length_moment t k r =
  if r < 0 then invalid_arg "Solution.queue_length_moment: negative order";
  let marginal = queue_length_marginal t k in
  let acc = Ksum.create () in
  Array.iteri
    (fun n p -> Ksum.add acc (p *. (float_of_int n ** float_of_int r)))
    marginal;
  Ksum.total acc

let mean_queue_length t k = queue_length_moment t k 1

let queue_length_variance t k =
  let m1 = queue_length_moment t k 1 in
  queue_length_moment t k 2 -. (m1 *. m1)

let system_response_time ?(reference = 0) t =
  let n = Mapqn_model.Network.population t.network in
  if n = 0 then 0.
  else begin
    let x = throughput t reference in
    if x <= 0. then infinity else float_of_int n /. x
  end

let phase_marginal t k =
  let dims = Mapqn_model.Network.phase_dims t.network in
  let accs = Array.init dims.(k) (fun _ -> Ksum.create ()) in
  State_space.iter t.space (fun idx _ h -> Ksum.add accs.(h.(k)) t.pi.(idx));
  Array.map Ksum.total accs

let joint_queue_length t j k =
  if j = k then invalid_arg "Solution.joint_queue_length: j = k";
  let n = Mapqn_model.Network.population t.network in
  let out = Mapqn_linalg.Mat.create ~rows:(n + 1) ~cols:(n + 1) in
  State_space.iter t.space (fun idx qlen _ ->
      Mapqn_linalg.Mat.update out qlen.(j) qlen.(k) (fun x -> x +. t.pi.(idx)));
  out

let queue_length_correlation t j k =
  let joint = joint_queue_length t j k in
  let n = Mapqn_model.Network.population t.network in
  let ej = mean_queue_length t j and ek = mean_queue_length t k in
  let cov = Ksum.create () in
  for a = 0 to n do
    for b = 0 to n do
      Ksum.add cov
        ((float_of_int a -. ej) *. (float_of_int b -. ek)
        *. Mapqn_linalg.Mat.get joint a b)
    done
  done;
  let sj = sqrt (queue_length_variance t j) and sk = sqrt (queue_length_variance t k) in
  if sj <= 0. || sk <= 0. then 0. else Ksum.total cov /. (sj *. sk)

let metrics_table t =
  let m = Mapqn_model.Network.num_stations t.network in
  [
    ("utilization", Array.init m (utilization t));
    ("throughput", Array.init m (throughput t));
    ("mean queue length", Array.init m (mean_queue_length t));
  ]
