module Mat = Mapqn_linalg.Mat

type station_data = {
  hidden : (int * int * float) list array; (* phase a -> (a, b, rate) with b <> a *)
  completions : (int * float) list array; (* phase a -> (b, rate) *)
  routes : (int * float) list; (* (j, prob) with prob > 0 *)
  is_delay : bool; (* infinite server: completion rate scales with n_k *)
}

let station_data network k =
  let st = Mapqn_model.Network.station network k in
  let p = Mapqn_model.Station.service_process st in
  let d0 = Mapqn_map.Process.d0 p and d1 = Mapqn_map.Process.d1 p in
  let order = Mapqn_map.Process.order p in
  let hidden =
    Array.init order (fun a ->
        List.filter_map
          (fun b ->
            let r = Mat.get d0 a b in
            if b <> a && r > 0. then Some (a, b, r) else None)
          (List.init order (fun b -> b)))
  in
  let completions =
    Array.init order (fun a ->
        List.filter_map
          (fun b ->
            let r = Mat.get d1 a b in
            if r > 0. then Some (b, r) else None)
          (List.init order (fun b -> b)))
  in
  let m = Mapqn_model.Network.num_stations network in
  let routes =
    List.filter_map
      (fun j ->
        let p = Mapqn_model.Network.routing_prob network k j in
        if p > 0. then Some (j, p) else None)
      (List.init m (fun j -> j))
  in
  { hidden; completions; routes; is_delay = Mapqn_model.Station.is_delay st }

let m_nnz =
  Mapqn_obs.Metrics.gauge ~help:"Nonzeros of the last CTMC generator built."
    "ctmc_generator_nnz"

let build space =
  Mapqn_obs.Span.with_ "ctmc.generator" @@ fun () ->
  let network = State_space.network space in
  let m = Mapqn_model.Network.num_stations network in
  let per_station = Array.init m (station_data network) in
  let n_states = State_space.num_states space in
  let triplets = ref [] in
  let count = ref 0 in
  let push i j v =
    triplets := (i, j, v) :: !triplets;
    incr count
  in
  State_space.iter space (fun idx n h ->
      let diag = ref 0. in
      let emit target rate =
        if target <> idx then begin
          push idx target rate;
          diag := !diag +. rate
        end
      in
      for k = 0 to m - 1 do
        if n.(k) > 0 then begin
          let data = per_station.(k) in
          let a = h.(k) in
          (* Hidden phase transitions. *)
          List.iter
            (fun (_, b, rate) ->
              h.(k) <- b;
              let target =
                State_space.index_of_ranks space
                  ~comp:(State_space.comp_rank space n)
                  ~phase:(State_space.phase_rank space h)
              in
              h.(k) <- a;
              emit target rate)
            data.hidden.(a);
          (* Service completions: phase a -> b, job routed k -> j. Infinite
             servers complete at n_k times the per-job rate. *)
          let multiplier = if data.is_delay then float_of_int n.(k) else 1. in
          List.iter
            (fun (b, rate) ->
              let rate = rate *. multiplier in
              List.iter
                (fun (j, prob) ->
                  h.(k) <- b;
                  n.(k) <- n.(k) - 1;
                  n.(j) <- n.(j) + 1;
                  let target =
                    State_space.index_of_ranks space
                      ~comp:(State_space.comp_rank space n)
                      ~phase:(State_space.phase_rank space h)
                  in
                  n.(j) <- n.(j) - 1;
                  n.(k) <- n.(k) + 1;
                  h.(k) <- a;
                  emit target (rate *. prob))
                data.routes)
            data.completions.(a)
        end
      done;
      if !diag > 0. then push idx idx (-. !diag));
  Mapqn_obs.Metrics.set m_nnz (float_of_int !count);
  Mapqn_sparse.Csr.of_coo_array ~rows:n_states ~cols:n_states
    (Array.of_list !triplets)
