module Comb = Mapqn_util.Comb

type t = {
  network : Mapqn_model.Network.t;
  phase_dims : int array;
  num_comps : int;
  num_phases : int;
  comps : int array array; (* rank -> composition *)
  comp_table : (int array, int) Hashtbl.t;
}

let m_states =
  Mapqn_obs.Metrics.gauge
    ~help:"CTMC states (compositions x phase vectors) of the last state space."
    "ctmc_states"

let m_compositions =
  Mapqn_obs.Metrics.gauge ~help:"Queue-length compositions of the last state space."
    "ctmc_compositions"

let m_phase_vectors =
  Mapqn_obs.Metrics.gauge ~help:"Joint phase vectors of the last state space."
    "ctmc_phase_vectors"

let create ?(max_states = 2_000_000) network =
  Mapqn_obs.Span.with_ "ctmc.state-space" @@ fun () ->
  let m = Mapqn_model.Network.num_stations network in
  let n = Mapqn_model.Network.population network in
  let phase_dims = Mapqn_model.Network.phase_dims network in
  let num_comps = Comb.compositions_count ~total:n ~parts:m in
  let num_phases = Comb.ranges_count phase_dims in
  if num_comps > max_states / num_phases then
    invalid_arg
      (Printf.sprintf "State_space.create: %d x %d states exceeds limit %d"
         num_comps num_phases max_states);
  let comps = Array.make num_comps [||] in
  let comp_table = Hashtbl.create (2 * num_comps) in
  let rank = ref 0 in
  Comb.iter_compositions ~total:n ~parts:m (fun c ->
      let c = Array.copy c in
      comps.(!rank) <- c;
      Hashtbl.add comp_table c !rank;
      incr rank);
  Mapqn_obs.Metrics.set m_compositions (float_of_int num_comps);
  Mapqn_obs.Metrics.set m_phase_vectors (float_of_int num_phases);
  Mapqn_obs.Metrics.set m_states (float_of_int (num_comps * num_phases));
  { network; phase_dims; num_comps; num_phases; comps; comp_table }

let network t = t.network
let num_states t = t.num_comps * t.num_phases
let num_compositions t = t.num_comps
let num_phase_vectors t = t.num_phases

let comp_rank t c =
  match Hashtbl.find_opt t.comp_table c with
  | Some r -> r
  | None -> invalid_arg "State_space.comp_rank: not a valid composition"

let phase_rank t h = Comb.rank_range t.phase_dims h

let index_of_ranks t ~comp ~phase =
  if comp < 0 || comp >= t.num_comps || phase < 0 || phase >= t.num_phases then
    invalid_arg "State_space.index_of_ranks: out of range";
  (comp * t.num_phases) + phase

let index t ~queue_lengths ~phases =
  index_of_ranks t ~comp:(comp_rank t queue_lengths) ~phase:(phase_rank t phases)

let decode t idx =
  if idx < 0 || idx >= num_states t then invalid_arg "State_space.decode";
  let comp = idx / t.num_phases and phase = idx mod t.num_phases in
  (Array.copy t.comps.(comp), Comb.unrank_range t.phase_dims phase)

let iter t f =
  let h = Array.make (Array.length t.phase_dims) 0 in
  (* The callback receives a scratch copy of the composition so that callers
     (e.g. the generator) may mutate-and-restore it without touching the
     arrays that serve as hash-table keys. *)
  let c = Array.make (Array.length t.phase_dims) 0 in
  for comp = 0 to t.num_comps - 1 do
    Array.blit t.comps.(comp) 0 c 0 (Array.length c);
    let base = comp * t.num_phases in
    if t.num_phases = 1 then begin
      Array.fill h 0 (Array.length h) 0;
      f base c h
    end
    else begin
      (* Enumerate phase vectors in rank order. *)
      Array.fill h 0 (Array.length h) 0;
      let rec next_phase rank =
        f (base + rank) c h;
        (* Increment h as a mixed-radix counter (last index fastest, to
           match Comb.rank_range). *)
        let rec bump i =
          if i < 0 then false
          else if h.(i) + 1 < t.phase_dims.(i) then begin
            h.(i) <- h.(i) + 1;
            true
          end
          else begin
            h.(i) <- 0;
            bump (i - 1)
          end
        in
        if bump (Array.length h - 1) then next_phase (rank + 1)
      in
      next_phase 0
    end
  done
