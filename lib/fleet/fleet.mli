(** Multicore fleet runner for embarrassingly parallel model sweeps.

    A work-stealing pool over OCaml 5 domains — hand-rolled
    [Domain] + [Mutex]/[Condition] chunk queue, no external
    dependency — that shards independent model evaluations: Table-1
    style experiments where each of thousands of models runs its own
    {!Mapqn_core.Bounds.Sweep} and the models share nothing but the
    (mutex-guarded) telemetry sinks.

    Every task runs under its own {!Mapqn_obs.Run_ctx} carrying a seed
    derived deterministically from the experiment seed and the task
    index ({!task_seed}), so results, per-task seeds and ledger-record
    contents are bit-identical for every [jobs] value; only file-level
    record order varies. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

(** {1 Chunk queue} *)

module Chunk_queue : sig
  type t
  (** A closable FIFO of [(first, last)] index ranges guarded by a
      mutex and condition variable. *)

  val create : unit -> t

  val push : t -> int * int -> unit
  (** Enqueue a range. Raises [Invalid_argument] after {!close}. *)

  val close : t -> unit
  (** No more ranges; blocked and future {!pop}s drain then return
      [None]. *)

  val pop : t -> (int * int) option
  (** Dequeue the oldest range, blocking while the queue is empty and
      not closed. [None] once closed and drained. *)

  val of_range : chunk:int -> total:int -> t
  (** A closed queue covering [0, total) in ranges of at most [chunk]
      (at least 1) indices. *)
end

(** {1 Parallel map} *)

val map :
  ?jobs:int ->
  ?chunk:int ->
  (int -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** [map f arr] applies [f i arr.(i)] to every element, on up to [jobs]
    domains (default {!default_jobs}, clamped to the array length; the
    calling domain is one of the workers). Workers self-schedule
    [chunk]-sized index ranges (default 1 — right for tasks that take
    milliseconds or more), so slow tasks do not serialize the rest.
    Per-element exceptions become [Error]; result order is array
    order. *)

(** {1 Task runner} *)

type 'a outcome =
  | Done of 'a
  | Skipped  (** excluded by the [skip] predicate (e.g. resume) *)
  | Failed of exn

val task_seed : seed:int -> int -> int
(** The deterministic per-task seed: [Rng.derive ~seed index]. *)

val run_tasks :
  ?jobs:int ->
  ?chunk:int ->
  ?progress:Mapqn_obs.Progress.t ->
  ?skip:(string -> bool) ->
  ?certified:('a -> bool) ->
  seed:int ->
  ids:(int -> string) ->
  total:int ->
  f:(int -> 'a) ->
  unit ->
  'a outcome array
(** [run_tasks ~seed ~ids ~total ~f ()] evaluates [f index] for every
    [index] in [0, total) as a fleet. Each non-skipped task runs under a
    fresh {!Mapqn_obs.Run_ctx} whose seed is [task_seed ~seed index] and
    whose ledger overlay carries [("model", ids index)] — concurrent
    workers' ledger records each name their own model and derived seed.

    [skip id] excludes a task (reported to [progress] as skipped, like a
    resume). Progress uses the explicit-id
    {!Mapqn_obs.Progress.task_start}/[task_done] events; a failed task
    emits no ["done"] heartbeat, so a resumed run retries it.
    [certified v] (default always [true]) classifies a completed task's
    result: when [false], the ["done"] heartbeat is stamped
    ["certified": false], so a resume that loads the checkpoint with
    [Progress.load_completed ~require_certified:true] retries the task
    just like a failure. The result array is in task order regardless of
    scheduling. *)

val first_failure : 'a outcome array -> exn option
(** The lowest-index [Failed] exception, if any. *)
