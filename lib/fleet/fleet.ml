(* Multicore fleet runner for embarrassingly parallel model sweeps.

   Hand-rolled on OCaml 5 [Domain]s plus a [Mutex]/[Condition] chunk
   queue — no external dependency. Workers pull index chunks off a
   shared queue (self-scheduling, so a model whose LP stalls does not
   leave other workers idle behind a static partition), write results
   into distinct cells of a preallocated array, and run every task under
   its own {!Mapqn_obs.Run_ctx} with a seed derived deterministically
   from (experiment seed, task index) via {!Mapqn_prng.Rng.derive}.

   Determinism contract: with a deterministic task function, the result
   array, each task's run-context seed, and each task's ledger record
   contents are identical for every [jobs] value — only the order in
   which ledger/heartbeat lines hit the file varies (both are
   record-atomic behind their own locks). *)

module Rng = Mapqn_prng.Rng
module Run_ctx = Mapqn_obs.Run_ctx
module Progress = Mapqn_obs.Progress
module Json = Mapqn_obs.Json
module Span = Mapqn_obs.Span

let default_jobs () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Chunk queue                                                         *)
(* ------------------------------------------------------------------ *)

module Chunk_queue = struct
  (* FIFO of [first, last] index ranges. [pop] blocks until a chunk is
     available or the queue is closed — the producer side is trivial
     for a fixed task count (push everything, close), but the blocking
     contract is what lets a future streaming producer feed workers
     incrementally. *)
  type t = {
    lock : Mutex.t;
    nonempty : Condition.t;
    mutable chunks : (int * int) list;  (* reversed: newest first *)
    mutable tail : (int * int) list;  (* pop side, oldest first *)
    mutable closed : bool;
  }

  let create () =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      chunks = [];
      tail = [];
      closed = false;
    }

  let push t range =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Fleet.Chunk_queue.push: closed"
    end;
    t.chunks <- range :: t.chunks;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock

  let close t =
    Mutex.lock t.lock;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock

  let pop t =
    Mutex.lock t.lock;
    let rec next () =
      match t.tail with
      | r :: rest ->
        t.tail <- rest;
        Some r
      | [] -> (
        match t.chunks with
        | _ :: _ ->
          t.tail <- List.rev t.chunks;
          t.chunks <- [];
          next ()
        | [] ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.lock;
            next ()
          end)
    in
    let r = next () in
    Mutex.unlock t.lock;
    r

  let of_range ~chunk ~total =
    let t = create () in
    let chunk = max 1 chunk in
    let i = ref 0 in
    while !i < total do
      let last = min (total - 1) (!i + chunk - 1) in
      push t (!i, last);
      i := last + 1
    done;
    close t;
    t
end

(* ------------------------------------------------------------------ *)
(* Parallel map                                                        *)
(* ------------------------------------------------------------------ *)

let map ?jobs ?(chunk = 1) f arr =
  let total = Array.length arr in
  let jobs =
    max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) total)
  in
  let out = Array.make total None in
  let run_one i = out.(i) <- Some (try Ok (f i arr.(i)) with e -> Error e) in
  if jobs <= 1 || total <= 1 then
    for i = 0 to total - 1 do
      run_one i
    done
  else begin
    let q = Chunk_queue.of_range ~chunk ~total in
    let worker () =
      let rec loop () =
        match Chunk_queue.pop q with
        | None -> ()
        | Some (first, last) ->
          for i = first to last do
            run_one i
          done;
          loop ()
      in
      loop ()
    in
    (* The spawning domain is worker number [jobs]: [jobs] ways of
       parallelism need only [jobs - 1] extra domains. *)
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map (function Some r -> r | None -> assert false) out

(* ------------------------------------------------------------------ *)
(* Task runner with context, checkpoint and progress                   *)
(* ------------------------------------------------------------------ *)

type 'a outcome = Done of 'a | Skipped | Failed of exn

let task_seed ~seed index = Rng.derive ~seed index

let run_tasks ?jobs ?(chunk = 1) ?progress ?(skip = fun _ -> false)
    ?(certified = fun _ -> true) ~seed ~ids ~total ~f () =
  let report g = Option.iter g progress in
  let task index () =
    let id = ids index in
    if skip id then begin
      report (fun p -> Progress.skip p ~seed id);
      Skipped
    end
    else begin
      let task_seed = task_seed ~seed index in
      let ctx =
        Run_ctx.create ~seed:task_seed
          ~context:[ ("model", Json.String id) ]
          ()
      in
      report (fun p -> Progress.task_start p ~seed:task_seed id);
      let t0 = Span.now () in
      match Run_ctx.with_ ctx (fun () -> f index) with
      | v ->
        (* A result the classifier deems uncertified still completes the
           run, but its "done" heartbeat is stamped so a resumed run
           retries the task (Progress.load_completed
           ~require_certified). *)
        report (fun p ->
            Progress.task_done p ~seed:task_seed
              ~elapsed:(Span.now () -. t0)
              ~certified:(certified v) id);
        Done v
      | exception e ->
        (* No "done" heartbeat: a resumed run must retry this task. *)
        Failed e
    end
  in
  map ?jobs ~chunk (fun _ t -> t ()) (Array.init total task)
  |> Array.map (function Ok o -> o | Error e -> Failed e)

let first_failure outcomes =
  Array.fold_left
    (fun acc o -> match (acc, o) with None, Failed e -> Some e | _ -> acc)
    None outcomes
