(** Deterministic pseudo-random number generation.

    Own implementation (no dependency on [Stdlib.Random]) so that simulation
    and random-model experiments are reproducible bit-for-bit across OCaml
    versions: a SplitMix64 seeder feeding a Xoshiro256++ core, the standard
    pairing recommended by the xoshiro authors. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** Generator seeded deterministically from [seed] via SplitMix64. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's future
    output (seeded from the parent's next outputs through SplitMix64).
    Used to give each simulation replica its own stream. *)

val copy : t -> t
(** Snapshot of the current state. *)

val derive : seed:int -> int -> int
(** [derive ~seed index] is a deterministic child seed for task [index]
    of an experiment seeded with [seed] (SplitMix64 over the pair).
    Unlike {!split} it consumes no generator state, so a fleet can hand
    task [i] the same seed regardless of worker assignment or completion
    order. Non-negative and at most 52 bits, so the seed survives a
    JSON round-trip (ledger records, heartbeat checkpoints) exactly. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)], 53-bit resolution. *)

val float_pos : t -> float
(** Uniform float in [(0, 1)]; never returns [0.] (safe for [log]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Unbiased (rejection sampling). *)

val bool : t -> bool
