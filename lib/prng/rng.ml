type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step: used only for seeding, per the xoshiro authors'
   recommendation, so that nearby integer seeds yield unrelated states. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Xoshiro256++ *)
let uint64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (uint64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Deterministic per-task seed derivation: hash (seed, index) through
   SplitMix64 so that nearby experiment seeds and consecutive task
   indices yield unrelated child seeds. Order-free — unlike [split], the
   result depends only on the two integers, which is what lets a fleet
   give task [i] the same seed no matter which worker or in which order
   it runs. *)
let derive ~seed index =
  let state = ref (Int64.of_int seed) in
  let a = splitmix64 state in
  state := Int64.logxor a (Int64.mul (Int64.of_int index) 0x9E3779B97F4A7C15L);
  let b = splitmix64 state in
  (* Top 52 bits: non-negative, within OCaml's native int range, and
     exactly representable as an IEEE double — derived seeds are
     recorded in JSON (ledger, heartbeats, fleet rows) whose only
     number type is a double, and a seed that rounds on the way to disk
     cannot reproduce the run it labels. *)
  Int64.to_int (Int64.shift_right_logical b 12)

let float t =
  (* Top 53 bits scaled by 2^-53: uniform on [0,1) with full double
     resolution. *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let rec float_pos t =
  let x = float t in
  if x > 0. then x else float_pos t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec go () =
    let raw = Int64.to_int (Int64.shift_right_logical (uint64 t) 2) in
    let v = raw mod bound in
    if raw - v > (max_int - bound + 1) then go () else v
  in
  go ()

let bool t = Int64.compare (Int64.logand (uint64 t) 1L) 0L <> 0
