module Network = Mapqn_model.Network
module Station = Mapqn_model.Station
module Process = Mapqn_map.Process
module Mat = Mapqn_linalg.Mat
module Rng = Mapqn_prng.Rng
module Dist = Mapqn_prng.Dist

type probe = Arrivals of int | Departures of int

type options = {
  seed : int;
  warmup : float;
  horizon : float;
  probes : probe list;
  batches : int;
  sojourn_sample_cap : int;
}

let default_options =
  {
    seed = 1;
    warmup = 1_000.;
    horizon = 100_000.;
    probes = [];
    batches = 20;
    sojourn_sample_cap = 50_000;
  }

type station_stats = {
  utilization : float;
  throughput : float;
  mean_queue_length : float;
  mean_sojourn : float;
  completions : int;
}

type result = {
  stations : station_stats array;
  system_response_time : float;
  probe_series : (probe * float array) list;
  total_events : int;
  batch_throughput : float array array;
      (* per station: completions/time in each of options.batches windows *)
  sojourn_samples : float array array;
      (* per station: uniform reservoir sample of measured sojourn times *)
}

(* Growable float buffer for probe recording. *)
module Buf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 1024 0.; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
end

(* Per-station mutable simulation state. *)
type station_state = {
  d0 : Mat.t;
  d1 : Mat.t;
  order : int;
  exit_rate : float array; (* phase -> total event rate -D0[a,a] *)
  delay : bool;
  route_sampler : Mapqn_prng.Dist.Alias.t;
  mutable queue : int;
  mutable phase : int;
  (* FIFO of arrival timestamps of resident jobs (head = in service). *)
  arrivals_fifo : float Queue.t;
  (* accumulators (measurement window only) *)
  mutable busy_time : float;
  mutable qlen_integral : float;
  mutable completions : int;
  mutable sojourn_sum : float;
  mutable sojourn_count : int;
  arrival_probe : Buf.t option;
  departure_probe : Buf.t option;
  batch_counts : int array;
  sojourns : Mapqn_prng.Reservoir.t;
}

type event = Service of int (* station id: one service-process event *)

module Metrics = Mapqn_obs.Metrics

let m_events =
  Metrics.counter ~help:"Service-process events processed by the simulator."
    "sim_events_total"

let m_heap_high_water =
  Metrics.gauge ~help:"Peak event-heap size across simulator runs."
    "sim_heap_high_water"

let m_busy_transitions k =
  Metrics.counter ~help:"Idle-to-busy transitions per station."
    ~labels:[ ("station", string_of_int k) ]
    "sim_busy_transitions_total"

let m_idle_transitions k =
  Metrics.counter ~help:"Busy-to-idle transitions per station."
    ~labels:[ ("station", string_of_int k) ]
    "sim_idle_transitions_total"

let run ?(options = default_options) network =
  (* Each simulation is one unit of run-context work: its PRNG state
     rides in the context (created from the run's seed, so the stream is
     unchanged), and health/ledger provenance written during the run is
     isolated from concurrent runs on other domains. *)
  let ctx = Mapqn_obs.Run_ctx.create ~seed:options.seed () in
  Mapqn_obs.Run_ctx.with_ ctx @@ fun () ->
  Mapqn_obs.Span.with_ "sim.run" @@ fun () ->
  let m = Network.num_stations network in
  let n = Network.population network in
  let rng =
    match Mapqn_obs.Run_ctx.rng ctx with
    | Some r -> r
    | None -> Rng.create ~seed:options.seed
  in
  let heap : event Event_heap.t = Event_heap.create () in
  let wants tag =
    List.exists (fun p -> p = tag) options.probes
  in
  let stations =
    Array.init m (fun k ->
        let st = Network.station network k in
        let p = Station.service_process st in
        let d0 = Process.d0 p and d1 = Process.d1 p in
        let order = Process.order p in
        let exit_rate = Array.init order (fun a -> -.Mat.get d0 a a) in
        let routing_row =
          Array.init m (fun j -> Network.routing_prob network k j)
        in
        {
          d0;
          d1;
          order;
          exit_rate;
          delay = Station.is_delay st;
          route_sampler = Dist.Alias.create routing_row;
          queue = 0;
          phase = 0;
          arrivals_fifo = Queue.create ();
          busy_time = 0.;
          qlen_integral = 0.;
          completions = 0;
          sojourn_sum = 0.;
          sojourn_count = 0;
          arrival_probe = (if wants (Arrivals k) then Some (Buf.create ()) else None);
          departure_probe =
            (if wants (Departures k) then Some (Buf.create ()) else None);
          batch_counts = Array.make (max 1 options.batches) 0;
          sojourns =
            Mapqn_prng.Reservoir.create
              ~capacity:(max 1 options.sojourn_sample_cap)
              (Rng.split rng);
        })
  in
  let now = ref 0. in
  let measuring = ref false in
  let events = ref 0 in
  (* Telemetry accumulators: kept as plain locals in the hot loop and
     published to the registry once at the end of the run. *)
  let heap_high_water = ref 0 in
  let busy_transitions = Array.make m 0 in
  let idle_transitions = Array.make m 0 in
  (* Time-integral bookkeeping: call before any state change at time [t]. *)
  let last_update = ref 0. in
  let advance_integrals t =
    if !measuring then begin
      let dt = t -. !last_update in
      Array.iter
        (fun s ->
          s.qlen_integral <- s.qlen_integral +. (dt *. float_of_int s.queue);
          if s.queue > 0 then s.busy_time <- s.busy_time +. dt)
        stations
    end;
    last_update := t
  in
  (* Schedule the next service-process event of station k. For FCFS
     stations: one event at the phase exit rate. For delay stations: each
     arriving job schedules its own completion, so this is called once per
     arrival with rate = per-job rate. *)
  let note_heap_size () =
    let size = Event_heap.size heap in
    if size > !heap_high_water then heap_high_water := size
  in
  let schedule k =
    let s = stations.(k) in
    let rate = s.exit_rate.(s.phase) in
    Event_heap.push heap ~time:(!now +. Dist.exponential rng ~rate) (Service k);
    note_heap_size ()
  in
  let schedule_delay_job k =
    let s = stations.(k) in
    (* Delay stations have exponential (order-1) service. *)
    let rate = s.exit_rate.(0) in
    Event_heap.push heap ~time:(!now +. Dist.exponential rng ~rate) (Service k);
    note_heap_size ()
  in
  let record_probe buf =
    match buf with
    | Some b when !measuring -> Buf.push b !now
    | Some _ | None -> ()
  in
  let nbatches = max 1 options.batches in
  let batch_width = options.horizon /. float_of_int nbatches in
  let record_batch s t =
    let idx = int_of_float ((t -. options.warmup) /. batch_width) in
    let idx = min (nbatches - 1) (max 0 idx) in
    s.batch_counts.(idx) <- s.batch_counts.(idx) + 1
  in
  let arrive k =
    let s = stations.(k) in
    record_probe s.arrival_probe;
    if s.queue = 0 then busy_transitions.(k) <- busy_transitions.(k) + 1;
    s.queue <- s.queue + 1;
    Queue.push !now s.arrivals_fifo;
    if s.delay then schedule_delay_job k
    else if s.queue = 1 then schedule k
  in
  (* Initial placement: all jobs at station 0 (the stationary measurement
     window forgets the start state; warmup handles the transient). *)
  for _ = 1 to n do
    let s = stations.(0) in
    s.queue <- s.queue + 1;
    Queue.push 0. s.arrivals_fifo;
    if s.delay then schedule_delay_job 0
  done;
  if n > 0 && not stations.(0).delay then schedule 0;
  let stop_time = options.warmup +. options.horizon in
  let running = ref true in
  (* The event loop gets its own span so profiling attributes the run's
     self-time to event processing rather than setup/stats assembly. *)
  Mapqn_obs.Span.with_ "events" (fun () ->
      while !running do
    match Event_heap.pop heap with
    | None -> running := false (* empty network *)
    | Some (t, Service k) ->
      if t >= stop_time then begin
        advance_integrals stop_time;
        running := false
      end
      else begin
        if (not !measuring) && t >= options.warmup then begin
          advance_integrals options.warmup;
          (* Reset per-station accumulators at the measurement boundary. *)
          Array.iter
            (fun s ->
              s.busy_time <- 0.;
              s.qlen_integral <- 0.;
              s.completions <- 0;
              s.sojourn_sum <- 0.;
              s.sojourn_count <- 0)
            stations;
          measuring := true
        end;
        advance_integrals t;
        now := t;
        incr events;
        if Mapqn_obs.Trace.is_enabled () && !events land 8191 = 0 then
          Mapqn_obs.Trace.record
            (Mapqn_obs.Trace.Batch
               {
                 events = !events;
                 sim_time = t;
                 heap_size = Event_heap.size heap;
               });
        let s = stations.(k) in
        if s.delay then begin
          (* One delay job completes. *)
          s.phase <- 0;
          s.queue <- s.queue - 1;
          if s.queue = 0 then idle_transitions.(k) <- idle_transitions.(k) + 1;
          let arrived = Queue.pop s.arrivals_fifo in
          if !measuring then begin
            s.completions <- s.completions + 1;
            record_batch s t;
            if arrived >= options.warmup then begin
              s.sojourn_sum <- s.sojourn_sum +. (t -. arrived);
              s.sojourn_count <- s.sojourn_count + 1;
              Mapqn_prng.Reservoir.add s.sojourns (t -. arrived)
            end
          end;
          record_probe s.departure_probe;
          let j = Dist.Alias.sample s.route_sampler rng in
          arrive j
        end
        else begin
          (* MAP event: hidden transition or completion, chosen by rate. *)
          let a = s.phase in
          let weights = Array.make (2 * s.order) 0. in
          for b = 0 to s.order - 1 do
            if b <> a then weights.(b) <- Mat.get s.d0 a b;
            weights.(s.order + b) <- Mat.get s.d1 a b
          done;
          let choice = Dist.categorical rng weights in
          if choice < s.order then begin
            (* Hidden phase change. *)
            s.phase <- choice;
            schedule k
          end
          else begin
            let b = choice - s.order in
            s.phase <- b;
            s.queue <- s.queue - 1;
            if s.queue = 0 then idle_transitions.(k) <- idle_transitions.(k) + 1;
            let arrived = Queue.pop s.arrivals_fifo in
            if !measuring then begin
              s.completions <- s.completions + 1;
              record_batch s t;
              if arrived >= options.warmup then begin
                s.sojourn_sum <- s.sojourn_sum +. (t -. arrived);
                s.sojourn_count <- s.sojourn_count + 1;
                Mapqn_prng.Reservoir.add s.sojourns (t -. arrived)
              end
            end;
            record_probe s.departure_probe;
            if s.queue > 0 then schedule k;
            let j = Dist.Alias.sample s.route_sampler rng in
            arrive j
          end
        end
      end
  done);
  Metrics.inc ~by:(float_of_int !events) m_events;
  Metrics.set_max m_heap_high_water (float_of_int !heap_high_water);
  Array.iteri
    (fun k c -> Metrics.inc ~by:(float_of_int c) (m_busy_transitions k))
    busy_transitions;
  Array.iteri
    (fun k c -> Metrics.inc ~by:(float_of_int c) (m_idle_transitions k))
    idle_transitions;
  let horizon = options.horizon in
  let station_stats =
    Array.map
      (fun s ->
        {
          utilization = s.busy_time /. horizon;
          throughput = float_of_int s.completions /. horizon;
          mean_queue_length = s.qlen_integral /. horizon;
          mean_sojourn =
            (if s.sojourn_count = 0 then 0.
             else s.sojourn_sum /. float_of_int s.sojourn_count);
          completions = s.completions;
        })
      stations
  in
  let x0 = station_stats.(0).throughput in
  let probe_series =
    List.filter_map
      (fun p ->
        let buf =
          match p with
          | Arrivals k -> stations.(k).arrival_probe
          | Departures k -> stations.(k).departure_probe
        in
        match buf with Some b -> Some (p, Buf.contents b) | None -> None)
      options.probes
  in
  if Mapqn_obs.Ledger.is_enabled () then
    Mapqn_obs.Ledger.record ~event:"sim"
      [
        ("fingerprint", Mapqn_obs.Json.String (Network.fingerprint network));
        ("population", Mapqn_obs.Json.Number (float_of_int n));
        ("seed", Mapqn_obs.Json.Number (float_of_int options.seed));
        ("horizon", Mapqn_obs.Json.Number options.horizon);
        ("events", Mapqn_obs.Json.Number (float_of_int !events));
        ("throughput_ref", Mapqn_obs.Json.Number x0);
      ];
  {
    stations = station_stats;
    system_response_time =
      (if x0 > 0. then float_of_int n /. x0 else if n = 0 then 0. else infinity);
    probe_series;
    total_events = !events;
    batch_throughput =
      Array.map
        (fun s ->
          Array.map (fun c -> float_of_int c /. batch_width) s.batch_counts)
        stations;
    sojourn_samples =
      Array.map (fun s -> Mapqn_prng.Reservoir.sample s.sojourns) stations;
  }

let run_replicas ?(options = default_options) ~replicas network =
  if replicas < 1 then invalid_arg "Simulator.run_replicas: replicas < 1";
  let master = Rng.create ~seed:options.seed in
  Array.init replicas (fun _ ->
      let seed = Int64.to_int (Rng.uint64 master) land 0x3FFFFFFF in
      run ~options:{ options with seed } network)

let inter_event_times ts =
  if Array.length ts < 2 then [||]
  else Array.init (Array.length ts - 1) (fun i -> ts.(i + 1) -. ts.(i))

module Summary = struct
  type t = { mean : float; half_width : float }

  let of_samples xs =
    let mean = Mapqn_util.Stats.mean xs in
    if Array.length xs < 2 then { mean; half_width = infinity }
    else begin
      let sd = Mapqn_util.Stats.std_dev xs in
      let half_width = 1.96 *. sd /. sqrt (float_of_int (Array.length xs)) in
      { mean; half_width }
    end

  let contains t x = Float.abs (x -. t.mean) <= t.half_width
end
