(** Two-phase primal simplex over a dense tableau.

    Implemented from scratch (no external LP dependency): Dantzig pricing
    with a rotating partial-pricing window for speed, lexicographic and
    perturbation-based anti-cycling (the marginal-balance LPs are highly
    degenerate), and tolerance of redundant rows discovered in phase 1
    (the balance-equation families are rank-deficient by construction).

    This is the reference backend: asymptotically the tableau costs
    O(m·n) memory and O(m·n) work per pivot, so it only scales to small
    populations. {!Revised} is the production backend; the two are
    cross-checked against each other in the test suite, and this one
    remains selectable as [--solver=dense].

    The bound layer solves min and max of many objectives over one
    feasible region, so the expensive phase 1 is exposed separately:
    {!prepare} once, then {!optimize} per objective. *)

type direction = Minimize | Maximize

type solution = {
  objective : float;
  values : float array;  (** optimal point, indexed by {!Lp_model.var} *)
  witness : float array;
      (** feasibility witness, indexed by {!Lp_model.var}: the final
          basis's primal point under the solver's anti-degeneracy
          perturbation. Unlike [values] — which is the exact basic
          solution for the unperturbed right-hand side and, on
          ill-conditioned degenerate bases, can violate non-binding
          constraints by [conditioning × perturbation] — the witness
          satisfies every model row and bound up to the perturbation
          magnitude itself (a few 1e-9), independent of conditioning.
          This is the point optimality certificates
          ({!Certificate.compute}) are checked at. *)
  duals : float array;
      (** dual values (shadow prices) of the model rows, in insertion
          order, oriented for the requested direction: the objective's
          sensitivity to the row's right-hand side. Strong duality
          ([objective = Σ duals·rhs + contribution of active variable
          bounds]) holds up to the solver's numerical margin. *)
  iterations : int;  (** phase-2 simplex pivots *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

type prepare_error =
  | Infeasible_phase1  (** the constraint system admits no point *)
  | Iteration_limit_phase1 of int
      (** phase 1 exhausted its pivot budget (the payload) *)

val prepare_error_to_string : prepare_error -> string

type prepared
(** A feasible basis for a model (output of phase 1). *)

val prepare : ?max_iter:int -> Lp_model.t -> (prepared, prepare_error) result
(** Run phase 1. Default [max_iter] is [50_000 + 50 * (rows + vars)]. *)

val optimize :
  ?max_iter:int -> prepared -> direction -> (Lp_model.var * float) list -> outcome
(** Run phase 2 for one objective from the prepared basis. The prepared
    value is not consumed: repeated calls are independent. *)

val solve :
  ?max_iter:int -> Lp_model.t -> direction -> (Lp_model.var * float) list -> outcome
(** One-shot [prepare] + [optimize]. *)
