let log_src = Logs.Src.create "mapqn.simplex" ~doc:"simplex pivoting"

module Log = (val Logs.src_log log_src)
module Metrics = Mapqn_obs.Metrics
module Span = Mapqn_obs.Span
module Trace = Mapqn_obs.Trace
module Csr = Mapqn_sparse.Csr

(* Solver telemetry (recorded into the process-global registry; see
   Mapqn_obs). Counters are bumped once per phase run — only the objective
   trajectory histogram is touched per (improving) pivot, which is noise
   next to the O(mn) row work of the pivot itself. *)
let m_pivots =
  Metrics.counter ~help:"Simplex pivots performed." "simplex_pivots_total"

let m_degenerate =
  Metrics.counter ~help:"Pivots that did not improve the objective."
    "simplex_degenerate_pivots_total"

let m_retries =
  Metrics.counter
    ~help:"Anti-cycling restarts with a fresh RHS perturbation (phase 1 and 2)."
    "simplex_anticycling_retries_total"

let m_solves =
  Metrics.counter ~help:"Phase-2 optimizations performed." "simplex_solves_total"

let m_driveouts =
  Metrics.counter
    ~help:
      "Zero-level basic artificials pivoted out after phase 1 (each one was \
       silently relaxing a non-dependent row)."
    "simplex_artificial_driveouts_total"

let m_phase_iterations =
  Metrics.histogram
    ~help:"Pivots per simplex phase run."
    ~buckets:[| 10.; 30.; 100.; 300.; 1_000.; 3_000.; 10_000.; 30_000.; 100_000. |]
    "simplex_phase_iterations"

let m_objective = Metrics.gauge ~help:"Objective of the last optimal phase-2 solve."
    "simplex_last_objective"

let m_improvement =
  Metrics.histogram
    ~help:"Per-pivot objective improvements (the objective trajectory)."
    "simplex_objective_improvement"

type direction = Minimize | Maximize

type solution = {
  objective : float;
  values : float array;
  witness : float array;
  duals : float array;
  iterations : int;
}
type outcome = Optimal of solution | Infeasible | Unbounded | Iteration_limit

type prepare_error = Infeasible_phase1 | Iteration_limit_phase1 of int

let prepare_error_to_string = function
  | Infeasible_phase1 ->
    "marginal LP infeasible in phase 1 (the constraint system admits no \
     point)"
  | Iteration_limit_phase1 k ->
    Printf.sprintf "simplex iteration limit (%d pivots) in phase 1" k

let eps_pivot = 1e-9

(* Entering threshold for reduced costs. Deliberately loose: after many
   pivots on a dense tableau the reduced costs carry O(1e-8) noise, and a
   tighter threshold makes the method chase that noise forever around a
   degenerate optimum. The resulting objective error is of the same
   magnitude and far below the tolerances used by the bound analysis. *)
let eps_cost = 3e-8

(* ------------------------------------------------------------------ *)
(* Tableau                                                             *)
(* ------------------------------------------------------------------ *)

type tableau = {
  m : int; (* constraint rows *)
  n : int; (* columns excluding RHS *)
  a : float array array; (* m rows of length n+1; slot n is the RHS *)
  basis : int array; (* basic column of each row *)
  allowed : bool array; (* columns permitted to enter (artificials barred) *)
  lex_cols : int array;
      (* The columns of the basis at phase start, in row order: they formed
         an identity block then, which makes every row lexicographically
         positive over [rhs; lex_cols] — the invariant behind the
         lexicographic anti-cycling ratio test. *)
  binv_cols : int array;
      (* The initial identity columns (slack or artificial) of each row:
         at any later point, tableau column binv_cols.(i) is the i-th
         column of B⁻¹, used to recompute exact right-hand sides and to
         extract dual values. *)
}

type prepared = {
  tab : tableau;
  std : Std_form.t;
}

let copy_tableau t =
  {
    t with
    a = Array.map Array.copy t.a;
    basis = Array.copy t.basis;
    lex_cols = Array.copy t.lex_cols;
  }

let pivot t obj r c =
  let arow = t.a.(r) in
  let p = arow.(c) in
  let inv = 1. /. p in
  for j = 0 to t.n do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(c) <- 1.;
  let eliminate row =
    let f = row.(c) in
    if f <> 0. then begin
      for j = 0 to t.n do
        row.(j) <- row.(j) -. (f *. arow.(j))
      done;
      row.(c) <- 0.
    end
  in
  for i = 0 to t.m - 1 do
    if i <> r then begin
      eliminate t.a.(i);
      (* Feasibility guard: cancellation can leave a tiny negative RHS;
         clamp it before it can seed drift in later ratio tests. *)
      let b = t.a.(i).(t.n) in
      if b < 0. && b > -1e-7 then t.a.(i).(t.n) <- 0.
    end
  done;
  eliminate obj;
  t.basis.(r) <- c

(* Lexicographic comparison of two candidate leaving rows for entering
   column [c]: compare the vectors (row_i / a_ic) over the column sequence
   [rhs; lex_cols.(0); lex_cols.(1); ...]. Because the lex_cols formed an
   identity at phase start, every row is lexicographically positive and the
   lexicographic minimum is unique — the classic anti-cycling rule
   (Dantzig–Orden–Wolfe), which massively degenerate marginal-balance LPs
   require (plain Bland stalls for millions of pivots on them). *)
let lex_less t c i1 i2 =
  let a1 = t.a.(i1).(c) and a2 = t.a.(i2).(c) in
  let rec go idx =
    if idx > t.m then false
    else begin
      let col = if idx = 0 then t.n else t.lex_cols.(idx - 1) in
      let v1 = t.a.(i1).(col) /. a1 and v2 = t.a.(i2).(col) /. a2 in
      let tol = 1e-11 *. Float.max 1. (Float.max (Float.abs v1) (Float.abs v2)) in
      if v1 < v2 -. tol then true else if v1 > v2 +. tol then false else go (idx + 1)
    end
  in
  go 0

(* Ratio test: the lexicographic minimum among rows with a positive pivot
   entry. Returns -1 when the column is unbounded.

   The tie window must be essentially exact: a loose window lets the
   lexicographic tie-break pick a row whose true ratio is slightly
   larger, which pushes other basic variables slightly negative — the
   drift compounds over thousands of pivots until the iterate leaves the
   polytope entirely. Genuine degenerate ties are exact zeros, which
   this window still catches.

   Within the tie window, rows whose pivot entry is more than four orders
   of magnitude below the largest tied entry are excluded before the
   lexicographic comparison. Rows of nearly dependent constraints (the
   ones phase 1 drives artificials out of) carry cancellation noise at
   the 1e-8 scale; a degenerate tie can offer such an entry as pivot, and
   dividing the row by noise manufactures a numerically meaningless basis
   whose duals are garbage even when the primal point survives. Skipping
   a tied row technically steps outside the Dantzig–Orden–Wolfe
   anti-cycling rule, but only fires when magnitudes differ by 1e4 —
   where the alternative is certain numerical corruption, and the stall
   detector plus perturbation-salt retries still guard termination. *)
let tie_tol ratio = 1e-13 *. Float.max 1. (Float.abs ratio)

let ratio_test t c =
  (* Pass 1: the minimum ratio. *)
  let min_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let aic = t.a.(i).(c) in
    if aic > eps_pivot then begin
      let ratio = Float.max 0. (t.a.(i).(t.n) /. aic) in
      if ratio < !min_ratio then min_ratio := ratio
    end
  done;
  if !min_ratio = infinity then -1
  else begin
    let hi = !min_ratio +. tie_tol !min_ratio in
    (* Pass 2: the largest pivot magnitude inside the tie window. *)
    let max_aic = ref 0. in
    for i = 0 to t.m - 1 do
      let aic = t.a.(i).(c) in
      if aic > eps_pivot && Float.max 0. (t.a.(i).(t.n) /. aic) <= hi then
        if aic > !max_aic then max_aic := aic
    done;
    (* Pass 3: lexicographic minimum among the numerically sound ties. *)
    let floor_aic = 1e-4 *. !max_aic in
    let best = ref (-1) in
    for i = 0 to t.m - 1 do
      let aic = t.a.(i).(c) in
      if
        aic > eps_pivot && aic >= floor_aic
        && Float.max 0. (t.a.(i).(t.n) /. aic) <= hi
        && (!best < 0 || lex_less t c i !best)
      then best := i
    done;
    !best
  end

(* Entering column: most negative reduced cost within a rotating window,
   falling back to a full scan when the window is clean. *)
let price t obj ~cursor =
  let window = max 256 (t.n / 8) in
  let best = ref (-1) in
  let best_cost = ref (-.eps_cost) in
  let scan j =
    if t.allowed.(j) && obj.(j) < !best_cost then begin
      best := j;
      best_cost := obj.(j)
    end
  in
  let start = !cursor mod t.n in
  let scanned = ref 0 in
  let j = ref start in
  while !scanned < window && !j < t.n do
    scan !j;
    incr j;
    incr scanned
  done;
  if !best < 0 then begin
    (* Window clean: full scan to be sure. *)
    for j = 0 to t.n - 1 do
      scan j
    done;
    cursor := 0
  end
  else cursor := !j;
  !best

type phase_result = P_optimal | P_unbounded | P_iteration_limit

let run_phase ?stop_below ?(stall_limit = max_int) t obj ~max_iter =
  let cursor = ref 0 in
  let iter = ref 0 in
  let result = ref None in
  (* Degenerate-cycle detector: pivots that fail to improve the objective
     for [stall_limit] consecutive iterations indicate that the
     anti-degeneracy perturbation did not break some symmetry; give up
     early so the caller can retry with a fresh perturbation instead of
     burning the whole iteration budget. *)
  let best_obj = ref obj.(t.n) in
  let stalled = ref 0 in
  let degenerate = ref 0 in
  let seen_bases = Hashtbl.create 1024 in
  let cycle_check_enabled = Logs.Src.level log_src = Some Logs.Debug in
  while !result = None do
    (* Early exit for phase 1: once the artificial mass is (numerically)
       zero the basis is feasible, no need to polish reduced costs. *)
    (match stop_below with
    | Some threshold when -.obj.(t.n) <= threshold -> result := Some (P_optimal, !iter)
    | Some _ | None -> ());
    if !result <> None then ()
    else if !iter >= max_iter then result := Some (P_iteration_limit, !iter)
    else begin
      let c = price t obj ~cursor in
      if c < 0 then result := Some (P_optimal, !iter)
      else begin
        let r = ratio_test t c in
        if r < 0 then result := Some (P_unbounded, !iter)
        else begin
          let leaving = t.basis.(r) in
          let step = t.a.(r).(t.n) /. t.a.(r).(c) in
          pivot t obj r c;
          incr iter;
          let improved =
            obj.(t.n) > !best_obj +. (1e-12 *. (1. +. Float.abs !best_obj))
          in
          if improved then begin
            Metrics.observe m_improvement (obj.(t.n) -. !best_obj);
            best_obj := obj.(t.n);
            stalled := 0
          end
          else begin
            incr stalled;
            incr degenerate;
            if !stalled >= stall_limit then result := Some (P_iteration_limit, !iter)
          end;
          if Trace.is_enabled () then
            Trace.record
              (Trace.Pivot
                 {
                   solver = "dense";
                   iteration = !iter;
                   entering = c;
                   leaving;
                   step;
                   objective = -.obj.(t.n);
                   degenerate = not improved;
                 });
          if cycle_check_enabled then begin
            (* The full sorted array is the key: structural equality makes
               collisions harmless (Hashtbl.hash alone samples only a few
               elements and would report false revisits). *)
            let key =
              let b = Array.copy t.basis in
              Array.sort compare b;
              Array.to_seq b |> Seq.map string_of_int |> List.of_seq
              |> String.concat ","
            in
            (match Hashtbl.find_opt seen_bases key with
            | Some prev ->
              Log.debug (fun m -> m "BASIS REVISIT iter=%d (first at %d)" !iter prev)
            | None -> ());
            Hashtbl.replace seen_bases key !iter
          end;
          if !iter mod 1000 = 0 then
            Log.debug (fun m ->
                m "iter=%d obj=%.12g entering=%d leaving_row=%d" !iter
                  (-.obj.(t.n)) c r)
        end
      end
    end
  done;
  Metrics.inc ~by:(float_of_int !iter) m_pivots;
  Metrics.inc ~by:(float_of_int !degenerate) m_degenerate;
  Metrics.observe m_phase_iterations (float_of_int !iter);
  match !result with
  | Some (st, it) -> (st, it)
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Phase 1                                                             *)
(* ------------------------------------------------------------------ *)

let prepare_unspanned ?max_iter model =
  let std = Std_form.build model in
  let m = Std_form.num_rows std in
  let max_iter =
    match max_iter with Some k -> k | None -> 50_000 + (50 * (m + std.Std_form.ncols))
  in
  (* Artificial columns are allocated only for rows whose initial basic
     variable cannot be a +1 slack. They are kept in the tableau forever:
     together with those slack columns they form the initial identity
     block, i.e. the columns [binv_cols] always hold B⁻¹ — which lets us
     recompute the exact right-hand side after solving a perturbed
     problem. *)
  let n_artificial = ref 0 in
  let art_col = Array.make m (-1) in
  for i = 0 to m - 1 do
    if Std_form.slack_basic_of_row std i = None then begin
      art_col.(i) <- std.Std_form.ncols + !n_artificial;
      incr n_artificial
    end
  done;
  let n_total = std.Std_form.ncols + !n_artificial in
  (* One phase-1 attempt with a given anti-degeneracy perturbation seed.
     The marginal-balance LPs have hundreds of zero right-hand sides, and
     on such problems every tie-breaking rule we tried (Bland,
     floating-point lexicographic) eventually cycles; a tiny deterministic
     random perturbation of the right-hand side makes the polytope simple
     with probability ~1, so plain Dantzig pivoting terminates. Exact
     quantities are recovered afterwards through B⁻¹ and validated against
     the true right-hand side. Highly symmetric models (e.g. exactly equal
     routing branches) can still produce coincidental ties under one
     perturbation draw, so a stall triggers retries with fresh draws. *)
  let attempt salt =
    let a = Array.init m (fun _ -> Array.make (n_total + 1) 0.) in
    let basis = Array.make m (-1) in
    let allowed = Array.make n_total true in
    let artificial = Array.make n_total false in
    for i = 0 to m - 1 do
      Csr.iter_row std.Std_form.rows i (fun j v -> a.(i).(j) <- v);
      a.(i).(n_total) <- std.Std_form.rhs.(i);
      match Std_form.slack_basic_of_row std i with
      | Some j -> basis.(i) <- j
      | None ->
        let art = art_col.(i) in
        a.(i).(art) <- 1.;
        basis.(i) <- art;
        artificial.(art) <- true
    done;
    let perturbation i =
      (* Cheap deterministic hash of (row index, salt) into (0.5, 1.5). *)
      let h = (((i + (salt * 7919)) * 2654435761) lxor (salt * 40503)) land 0xFFFFFF in
      let u = float_of_int h /. float_of_int 0x1000000 in
      1e-8 *. (1. +. Float.abs std.Std_form.rhs.(i)) *. (0.5 +. u)
    in
    for i = 0 to m - 1 do
      a.(i).(n_total) <- a.(i).(n_total) +. perturbation i
    done;
    let t =
      {
        m;
        n = n_total;
        a;
        basis;
        allowed;
        lex_cols = Array.copy basis;
        binv_cols = Array.copy basis;
      }
    in
    (* Phase-1 reduced costs: cost 1 on artificials, priced out against the
       initial basis. *)
    let obj = Array.make (n_total + 1) 0. in
    Array.iteri (fun j is_art -> if is_art then obj.(j) <- 1.) artificial;
    for i = 0 to m - 1 do
      if artificial.(basis.(i)) then
        for j = 0 to n_total do
          obj.(j) <- obj.(j) -. t.a.(i).(j)
        done
    done;
    let stall_limit = max 5_000 (20 * m) in
    let status, _ = run_phase ~stall_limit t obj ~max_iter in
    (status, t, artificial)
  in
  let rec try_attempts salt =
    match attempt salt with
    | P_iteration_limit, _, _ ->
      if salt < 3 then begin
        Metrics.inc m_retries;
        Log.debug (fun f ->
            f "phase-1 stall with perturbation salt %d; retrying" salt);
        try_attempts (salt + 1)
      end
      else Error (Iteration_limit_phase1 max_iter)
    | P_unbounded, _, _ ->
      (* Phase 1 minimizes a sum of nonnegative variables: never unbounded. *)
      assert false
    | P_optimal, t, artificial ->
      (* The exact artificial mass, judged against the true (unperturbed)
         right-hand side: rhs_true = B⁻¹ b with B⁻¹ read off [binv_cols]. *)
      let rhs_true i =
        let acc = Mapqn_util.Ksum.create () in
        for j = 0 to m - 1 do
          Mapqn_util.Ksum.add acc (t.a.(i).(t.binv_cols.(j)) *. std.Std_form.rhs.(j))
        done;
        Mapqn_util.Ksum.total acc
      in
      let mass = ref 0. in
      for i = 0 to m - 1 do
        if artificial.(t.basis.(i)) then mass := !mass +. Float.abs (rhs_true i)
      done;
      if !mass > 1e-6 then Error Infeasible_phase1
      else begin
        (* Artificials must never re-enter in phase 2. *)
        Array.iteri (fun j is_art -> if is_art then t.allowed.(j) <- false) artificial;
        (* Drive zero-level basic artificials out of the basis. A basic
           artificial absorbs any imbalance of its row, silently deleting
           that constraint from every later phase-2 solve — on a row that
           is NOT linearly dependent this relaxes the feasible region and
           lets phase 2 report optima outside the true polytope. Pivot in
           the structural column with the largest entry; the pivot is
           (near-)degenerate, so the primal point barely moves. Rows with
           no usable entry are genuinely dependent (B⁻¹-transformed row
           vanished): implied by the other rows, so their artificial —
           which only absorbs the perturbation's inconsistency — is
           harmless and stays. *)
        let scratch = Array.make (n_total + 1) 0. in
        for i = 0 to m - 1 do
          if artificial.(t.basis.(i)) then begin
            let best = ref (-1) and best_mag = ref 1e-6 in
            for j = 0 to std.Std_form.ncols - 1 do
              let mag = Float.abs t.a.(i).(j) in
              if mag > !best_mag then begin
                best := j;
                best_mag := mag
              end
            done;
            if
              !best >= 0
              && Float.abs t.a.(i).(n_total) /. !best_mag <= 1e-6
            then begin
              (* Zero the row's right-hand side first: the artificial sits
                 at zero level in the true problem, and its residual
                 tableau value is perturbation noise. Zeroing it makes the
                 pivot exactly degenerate — no other basic value moves —
                 where pivoting on the noisy value would shift every row by
                 up to (noise / pivot) × column entry, pushing degenerate
                 basic variables negative and seeding instability that
                 phase 2 then amplifies. (Formally this re-perturbs b by
                 −B·(noise·eᵢ), the same class of perturbation phase 2's
                 salt retries already apply.) *)
              t.a.(i).(n_total) <- 0.;
              pivot t scratch i !best;
              (* Re-seed the anti-degeneracy margin on the row with a
                 fresh deterministic perturbation at the usual 1e-8 scale
                 — leaving it at exactly zero stacks hundreds of
                 exactly-tied zero-level basics, and phase 2 pays for
                 every tie in ratio-test passes. *)
              let h = ((i * 2654435761) lxor 0x9E3779B9) land 0xFFFFFF in
              t.a.(i).(n_total) <-
                1e-8 *. (0.5 +. (float_of_int h /. float_of_int 0x1000000));
              Metrics.inc m_driveouts
            end
          end
        done;
        Ok { tab = t; std }
      end
  in
  try_attempts 0

let prepare ?max_iter model =
  Span.with_ "simplex.phase1" (fun () -> prepare_unspanned ?max_iter model)

(* ------------------------------------------------------------------ *)
(* Phase 2                                                             *)
(* ------------------------------------------------------------------ *)

let extract_solution std tab =
  let x_std = Array.make std.Std_form.ncols 0. in
  let w_std = Array.make std.Std_form.ncols 0. in
  for i = 0 to tab.m - 1 do
    (* Basic artificials (linearly dependent rows) carry no structural
       value. For the rest, recompute the exact basic value x_B = B⁻¹ b
       from the TRUE right-hand side through the initial-identity columns
       instead of reading the perturbed tableau RHS — keeps the reported
       point (and hence the objective) free of the anti-degeneracy
       perturbation, and in lockstep with the revised backend's
       FTRAN-based extraction. *)
    if tab.basis.(i) < std.Std_form.ncols then begin
      let acc = Mapqn_util.Ksum.create () in
      for j = 0 to tab.m - 1 do
        Mapqn_util.Ksum.add acc (tab.a.(i).(tab.binv_cols.(j)) *. std.Std_form.rhs.(j))
      done;
      x_std.(tab.basis.(i)) <- Mapqn_util.Ksum.total acc;
      (* The perturbed tableau RHS is the basic solution of the perturbed
         problem — primal-feasible by the simplex invariant, so it misses
         the true constraints by at most the perturbation itself, however
         ill-conditioned the basis. That makes it the feasibility witness
         backing the certificate. *)
      w_std.(tab.basis.(i)) <- Float.max 0. tab.a.(i).(tab.n)
    end
  done;
  (Std_form.extract std x_std, Std_form.extract std w_std)

let optimize_unspanned ?max_iter prepared direction objective =
  Metrics.inc m_solves;
  let std = prepared.std in
  let max_iter =
    match max_iter with
    | Some k -> k
    | None -> 50_000 + (50 * (prepared.tab.m + prepared.tab.n))
  in
  let sign = match direction with Minimize -> 1. | Maximize -> -1. in
  let c = Std_form.costs std ~sign objective in
  let cost_of col = if col < std.Std_form.ncols then c.(col) else 0. in
  (* One phase-2 attempt; [salt > 0] re-perturbs the right-hand side in the
     current basis frame (equivalent to perturbing b by B·δ, so primal
     feasibility is preserved) to break symmetric degeneracy — same story
     as phase 1. *)
  let attempt salt =
    let tab = copy_tableau prepared.tab in
    (* The current basis columns form an identity block: re-anchor the
       lexicographic ordering to them for this phase. *)
    Array.blit tab.basis 0 tab.lex_cols 0 tab.m;
    if salt > 0 then
      for i = 0 to tab.m - 1 do
        let h = (((i + (salt * 104729)) * 2654435761) lxor (salt * 92821)) land 0xFFFFFF in
        let u = float_of_int h /. float_of_int 0x1000000 in
        tab.a.(i).(tab.n) <-
          tab.a.(i).(tab.n) +. (1e-9 *. (1. +. tab.a.(i).(tab.n)) *. (0.5 +. u))
      done;
    (* Reduced costs priced out against the prepared basis; slot n
       accumulates -(objective of the current basic solution). *)
    let obj = Array.make (tab.n + 1) 0. in
    Array.blit c 0 obj 0 std.Std_form.ncols;
    for i = 0 to tab.m - 1 do
      let cb = cost_of tab.basis.(i) in
      if cb <> 0. then
        for j = 0 to tab.n do
          obj.(j) <- obj.(j) -. (cb *. tab.a.(i).(j))
        done
    done;
    let stall_limit = max 5_000 (20 * tab.m) in
    let status, iterations = run_phase ~stall_limit tab obj ~max_iter in
    (status, iterations, tab)
  in
  let rec try_attempts salt =
    match attempt salt with
    | P_iteration_limit, _, _ when salt < 3 ->
      Metrics.inc m_retries;
      Log.debug (fun f -> f "phase-2 stall with salt %d; retrying" salt);
      try_attempts (salt + 1)
    | result -> result
  in
  let status, iterations, tab = try_attempts 0 in
  match status with
  | P_iteration_limit -> Iteration_limit
  | P_unbounded -> Unbounded
  | P_optimal ->
    (* Report the objective evaluated at the extracted point rather than
       the tableau accumulator: the right-hand side was perturbed, and the
       direct evaluation keeps objective and reported point consistent. *)
    let values, witness = extract_solution std tab in
    let objective_value = Std_form.objective_value objective values in
    (* Dual values y = c_B B⁻¹ for the model rows, read through the
       initial-identity columns; signs restore the original row
       orientation and the original optimization direction. *)
    let duals =
      Array.init std.Std_form.nrows_model (fun i ->
          let acc = Mapqn_util.Ksum.create () in
          for r = 0 to tab.m - 1 do
            let cb = cost_of tab.basis.(r) in
            if cb <> 0. then
              Mapqn_util.Ksum.add acc (cb *. tab.a.(r).(tab.binv_cols.(i)))
          done;
          sign *. std.Std_form.row_signs.(i) *. Mapqn_util.Ksum.total acc)
    in
    Metrics.set m_objective objective_value;
    Optimal { objective = objective_value; values; witness; duals; iterations }

let optimize ?max_iter prepared direction objective =
  Span.with_ "simplex.phase2" (fun () ->
      optimize_unspanned ?max_iter prepared direction objective)

let solve ?max_iter model direction objective =
  match prepare ?max_iter model with
  | Error Infeasible_phase1 -> Infeasible
  | Error (Iteration_limit_phase1 _) -> Iteration_limit
  | Ok prepared -> optimize ?max_iter prepared direction objective
