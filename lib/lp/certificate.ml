type t = {
  primal_residual : float;
  dual_violation : float;
  comp_slack : float;
}

(* Kahan-compensated dot-product accumulator: the balance rows mix
   coefficients across many orders of magnitude, and the certificate
   should measure the solver's error, not the checker's. *)
let row_value model r x =
  let sum = ref 0. and comp = ref 0. in
  Lp_model.iter_row_terms model r (fun v a ->
      let term = a *. x.((v :> int)) in
      let y = term -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t);
  !sum

let compute_at model direction ~(objective : (Lp_model.var * float) list)
    ~(point : float array) (s : Simplex.solution) =
  let n = Lp_model.num_vars model in
  let m = Lp_model.num_rows model in
  let x = point in
  (* Orient everything as minimization: for a maximization
     [max c'x = -min (-c)'x], both the costs and the reported
     rhs-sensitivities flip sign. *)
  let sign =
    match direction with Simplex.Minimize -> 1. | Simplex.Maximize -> -1.
  in
  let c = Array.make n 0. in
  List.iter
    (fun ((v : Lp_model.var), coeff) ->
      c.((v :> int)) <- c.((v :> int)) +. (sign *. coeff))
    objective;
  let y = Array.init m (fun r -> sign *. s.Simplex.duals.(r)) in
  (* Reduced costs d = c − A'y, accumulated row-wise over the sparse
     terms. *)
  let d = Array.copy c in
  for r = 0 to m - 1 do
    let yr = y.(r) in
    if yr <> 0. then
      Lp_model.iter_row_terms model r (fun v a ->
          d.((v :> int)) <- d.((v :> int)) -. (yr *. a))
  done;
  let max_abs arr = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. arr in
  (* Normalizations: dual quantities scale with ‖c‖ and ‖y‖, slack
     products additionally with ‖x‖. *)
  let scale_d = 1. +. max_abs c +. max_abs y in
  let scale_cs = scale_d *. (1. +. max_abs x) in
  let primal = ref 0. and dual = ref 0. and comp = ref 0. in
  let bump cell v = if v > !cell then cell := v in
  (* Rows: primal feasibility by sense; dual sign condition (for a
     minimization, relaxing a [<=] row cannot raise the optimum, so its
     multiplier must be <= 0, and symmetrically for [>=]); slack
     complementarity. *)
  for r = 0 to m - 1 do
    let v = row_value model r x in
    let b = Lp_model.row_rhs model r in
    let slack = v -. b in
    (match Lp_model.row_sense model r with
    | Lp_model.Eq -> bump primal (Float.abs slack)
    | Lp_model.Le ->
      bump primal (Float.max 0. slack);
      bump dual (Float.max 0. y.(r) /. scale_d)
    | Lp_model.Ge ->
      bump primal (Float.max 0. (-.slack));
      bump dual (Float.max 0. (-.y.(r)) /. scale_d));
    bump comp (Float.abs (y.(r) *. slack) /. scale_cs)
  done;
  (* Columns: bound feasibility; a positive reduced cost must be
     absorbed by a finite lower bound (the variable pressed against it),
     a negative one by a finite upper bound — otherwise the dual is
     infeasible. When the bound exists, complementarity measures how far
     the variable actually sits from it. *)
  for j = 0 to n - 1 do
    let lb, ub = Lp_model.var_bounds model (Lp_model.var_of_int model j) in
    let xj = x.(j) in
    if Float.is_finite lb then bump primal (Float.max 0. (lb -. xj));
    if Float.is_finite ub then bump primal (Float.max 0. (xj -. ub));
    let dj = d.(j) in
    if dj > 0. then
      if Float.is_finite lb then
        bump comp (dj *. Float.max 0. (xj -. lb) /. scale_cs)
      else bump dual (dj /. scale_d)
    else if dj < 0. then
      if Float.is_finite ub then
        bump comp (-.dj *. Float.max 0. (ub -. xj) /. scale_cs)
      else bump dual (-.dj /. scale_d)
  done;
  { primal_residual = !primal; dual_violation = !dual; comp_slack = !comp }

let compute model direction ~objective (s : Simplex.solution) =
  compute_at model direction ~objective ~point:s.Simplex.values s

type failure = {
  certificate : t;
  quantity : string;
  value : float;
  tolerance : float;
}

let failure_to_string f =
  Printf.sprintf
    "LP certificate failed: %s = %.3e exceeds tolerance %.1e (primal %.3e, \
     dual %.3e, comp-slack %.3e)"
    f.quantity f.value f.tolerance f.certificate.primal_residual
    f.certificate.dual_violation f.certificate.comp_slack

let default_tol_primal = 1e-5
let default_tol_dual = 1e-6
let default_tol_comp = 1e-6

let check ?(tol_primal = default_tol_primal) ?(tol_dual = default_tol_dual)
    ?(tol_comp = default_tol_comp) model direction ~objective s =
  let judge cert =
    let fail quantity value tolerance =
      Error { certificate = cert; quantity; value; tolerance }
    in
    if not (cert.primal_residual <= tol_primal) then
      fail "primal_residual" cert.primal_residual tol_primal
    else if not (cert.dual_violation <= tol_dual) then
      fail "dual_violation" cert.dual_violation tol_dual
    else if not (cert.comp_slack <= tol_comp) then
      fail "comp_slack" cert.comp_slack tol_comp
    else Ok cert
  in
  (* The exact point first: on well-conditioned bases it certifies to
     near machine precision. When the basis is ill-conditioned the exact
     point can sit off degenerate rows by conditioning × perturbation,
     so fall back to the feasibility witness, whose error is bounded by
     the solver's perturbation and accepted-infeasibility budget
     independent of conditioning (see {!Simplex.solution}). *)
  let verdict =
    match
      judge (compute_at model direction ~objective ~point:s.Simplex.values s)
    with
    | Ok cert -> Ok cert
    | Error _ ->
      judge (compute_at model direction ~objective ~point:s.Simplex.witness s)
  in
  (* The judged certificate (exact point, or the witness it fell back
     to) is what callers act on — that is the one health telemetry and
     the run ledger must carry. *)
  let cert, accepted =
    match verdict with
    | Ok cert -> (cert, true)
    | Error f -> (f.certificate, false)
  in
  Mapqn_obs.Health.observe_certificate ~primal:cert.primal_residual
    ~dual:cert.dual_violation ~comp:cert.comp_slack ~accepted;
  verdict
