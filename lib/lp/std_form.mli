(** Standard-form conversion shared by the LP solvers.

    Converts an {!Lp_model.t} ([optimize c'x, a_r x {<=,=,>=} b_r,
    l <= x <= u]) into equality standard form over nonnegative columns:
    lower bounds are folded into the right-hand side, free variables are
    split into positive/negative parts, finite upper bounds become extra
    [<=] rows, inequality rows get slack/surplus columns, and every row is
    sign-normalized so the right-hand side is nonnegative.

    The resulting constraint matrix is kept sparse: {!rows} is the CSR
    (row-major) view the dense tableau is expanded from, {!cols} the
    transposed column-major view the revised simplex prices out of. *)

type col_origin =
  | Shifted of { var : int; lb : float }  (** [x = lb + y] *)
  | Negative_part of { var : int }
      (** free vars: [x = y⁺ - y⁻]; this column is [y⁻] *)
  | Slack

type t = {
  ncols : int;  (** structural standard-form columns (no artificials) *)
  origins : col_origin array;
  rows : Mapqn_sparse.Csr.t;  (** [num_rows × ncols], sign-normalized *)
  rhs : float array;  (** after sign normalization, all [>= 0] *)
  row_signs : float array;
      (** [-1.] where the row was negated to make rhs [>= 0] *)
  nvars_model : int;
  nrows_model : int;
      (** the first [nrows_model] std rows map 1:1 to model rows *)
  plus : int array;  (** model var [v] -> its main std column *)
  minus : int array;  (** model var [v] -> negative-part column or [-1] *)
  shift : float array;  (** lower bound folded into column [plus.(v)] *)
  slack_cols : int array;
      (** std row -> its slack/surplus column, [-1] on equality rows *)
  slack_rows : int array;
      (** std column -> the row whose slack it is, [-1] on non-slacks *)
  mutable cols_cache : Mapqn_sparse.Csr.t option;
}

val build : Lp_model.t -> t

val num_rows : t -> int
val rows : t -> Mapqn_sparse.Csr.t

val cols : t -> Mapqn_sparse.Csr.t
(** The [ncols × num_rows] transpose of {!rows} — row [j] of this matrix
    is standard-form column [j], the access pattern of revised-simplex
    pricing and FTRAN. Computed on first use and cached. *)

val costs : t -> sign:float -> (Lp_model.var * float) list -> float array
(** Standard-form cost vector of a model objective, scaled by [sign]
    ([1.] to minimize, [-1.] to maximize an internal minimization). *)

val extract : t -> float array -> float array
(** Map a standard-form point (indexed by std column) back to model
    variables, undoing shifts and free-variable splits. *)

val slack_basic_of_row : t -> int -> int option
(** The column of a [+1.] slack in row [i], if any — rows without one
    need an artificial variable to seed phase 1. *)

val slack_col_of_row : t -> int -> int option
(** The slack/surplus column attached to row [i] (any sign), if any —
    the inverse of {!row_of_slack}. Used to translate a basis between
    the standard forms of two related models. *)

val row_of_slack : t -> int -> int option
(** The row whose slack/surplus column [j] is, if it is one. *)

val slack_sign_of_row : t -> int -> float
(** The coefficient (±1.) of the slack column of row [i], or [0.] for an
    equality row.  Adding [sign ·ε] to the right-hand side relaxes an
    inequality row while every previously feasible point stays feasible —
    the property anti-degeneracy perturbations rely on. *)

val objective_value : (Lp_model.var * float) list -> float array -> float
(** Compensated evaluation of a model objective at a model point. *)
