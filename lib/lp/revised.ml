let log_src = Logs.Src.create "mapqn.revised" ~doc:"revised simplex"

module Log = (val Logs.src_log log_src)
module Metrics = Mapqn_obs.Metrics
module Span = Mapqn_obs.Span
module Prof = Mapqn_obs.Prof
module Trace = Mapqn_obs.Trace
module Health = Mapqn_obs.Health
module Csr = Mapqn_sparse.Csr

let m_pivots =
  Metrics.counter ~help:"Revised-simplex pivots performed." "revised_pivots_total"

let m_degenerate =
  Metrics.counter
    ~help:"Revised-simplex pivots that did not improve the objective."
    "revised_degenerate_pivots_total"

let m_refactor =
  Metrics.counter ~help:"Basis refactorizations (eta-file rebuilds)."
    "revised_refactorizations_total"

let m_solves =
  Metrics.counter ~help:"Phase-2 optimizations performed by the revised solver."
    "revised_solves_total"

let m_warm =
  Metrics.counter
    ~help:"Phase-2 solves that reoptimized from the basis of a previous objective."
    "revised_warm_starts_total"

let m_warm_pivots =
  Metrics.histogram
    ~help:"Pivots needed by a warm-started reoptimization."
    ~buckets:[| 0.; 3.; 10.; 30.; 100.; 300.; 1_000.; 3_000. |]
    "revised_warm_start_pivots"

let m_retries =
  Metrics.counter
    ~help:"Phase-1 restarts with a fresh RHS perturbation (revised solver)."
    "revised_anticycling_retries_total"

let m_eta_nnz =
  Metrics.gauge ~help:"Nonzeros in the eta file after the last solve."
    "revised_eta_nnz"

let m_driveouts =
  Metrics.counter
    ~help:
      "Zero-level basic artificials pivoted out after phase 1 (each one was \
       silently relaxing a non-dependent row)."
    "revised_artificial_driveouts_total"

let m_repairs =
  Metrics.counter
    ~help:
      "Numerically dependent basis columns replaced by unit columns during \
       refactorization."
    "revised_basis_repairs_total"

(* Refactorization cause attribution: which reinversion trigger fired.
   The sum can be below revised_refactorizations_total — prepare-time
   and certificate-witness rebuilds are counted only in the total. *)
let m_refactor_stability =
  Metrics.counter
    ~help:"Refactorizations forced by the small-pivot stability trigger."
    "revised_refactor_stability_total"

let m_refactor_growth =
  Metrics.counter
    ~help:"Refactorizations triggered by eta-file growth past growth_limit."
    "revised_refactor_growth_total"

let m_refactor_drift =
  Metrics.counter
    ~help:
      "Refactorizations triggered by incremental basic values drifting from \
       a fresh B⁻¹·rhs beyond drift_tol."
    "revised_refactor_drift_total"

let m_refactor_backstop =
  Metrics.counter
    ~help:"Refactorizations triggered by the pivot-count backstop."
    "revised_refactor_backstop_total"

let eps_pivot = 1e-9
let eps_cost = 1e-8

(* Forrest–Tomlin-style reinversion policy defaults: rather than
   refactorizing every fixed number of pivots, the eta file is kept until
   its growth or its numerical health says otherwise (see [run_phase]).
   The growth limit balances two measured costs on the large Figure-4
   instances (m ≈ 8000, ~0.2s per Markowitz refactorization): looser
   limits trade fewer rebuilds for longer eta chains, which both slow
   every FTRAN/BTRAN and degrade pricing enough to multiply the pivot
   count (12× roughly doubled bound-report time, 64× walked phase 1
   into stuck near-feasible vertices). 4× sits at the measured
   optimum. *)
let default_growth_limit = 4.0
let default_drift_tol = 1e-6
let default_check_interval = 128
let default_pivot_backstop = 5_000

(* ------------------------------------------------------------------ *)
(* Basis representation: product-form inverse (eta file)               *)
(* ------------------------------------------------------------------ *)

(* One eta matrix E: identity except column [row], which holds the pivoted
   entering column w ([pivot] = w_row on the diagonal, [idx]/[vals] the
   off-diagonal nonzeros). The basis inverse is the product
   B⁻¹ = Eₖ⁻¹ ⋯ E₁⁻¹ — FTRAN applies the inverses oldest-first, BTRAN the
   transposed inverses newest-first. Refactorization rebuilds the file
   from identity by re-pivoting the basic columns, so the same mechanism
   serves both pivot updates and reinversion. *)
type eta = { row : int; pivot : float; idx : int array; vals : float array }

type t = {
  std : Std_form.t;
  m : int;
  n_struct : int;  (* structural standard-form columns *)
  n_total : int;  (* + phase-1 artificials *)
  cols : Csr.t;  (* column-major matrix: row j = standard-form column j *)
  a_nnz : int;
  art_row : int array;  (* artificial k (column n_struct + k) -> its row *)
  art_sign : float array;  (* the artificial of row i is art_sign.(i)·e_i *)
  basis : int array;  (* basic column of each row *)
  in_basis : bool array;
  allowed : bool array;  (* artificials are barred after phase 1 *)
  mutable etas : eta array;
  mutable n_etas : int;
  mutable eta_nnz : int;
  mutable base_eta_nnz : int;  (* eta nnz right after the last refactor *)
  mutable pivots_since_refactor : int;
  mutable worst_infeas : float;
      (* most negative exact basic value found (and clamped) by the last
         refactorization — the divergence signal of [run_phase] *)
  xb : float array;  (* basic values under the perturbed right-hand side *)
  rhs_pert : float array;
  pert_scale : float;
      (* global multiplier on the anti-degeneracy perturbation this state
         was built with — the rescue ladder re-prepares at tighter scales *)
  phase1_basis : int array;
  mutable solves : int;
  work : float array;  (* FTRAN scratch, length m *)
  (* Reinversion policy (Forrest–Tomlin-style adaptive triggers) and
     per-instance counters. *)
  mutable growth_limit : float;
      (* refactor when eta_nnz exceeds growth_limit × (base_eta_nnz + m):
         past that point the per-pivot FTRAN/BTRAN work saved by a fresh,
         near-minimal LU outweighs the cost of building it *)
  mutable drift_tol : float;
      (* refactor when the incrementally updated basic values drift this
         far from a fresh B⁻¹·rhs through the same eta file *)
  mutable check_interval : int;  (* pivots between drift checks *)
  mutable pivot_backstop : int;  (* hard cap on pivots between refactors *)
  mutable refactor_forced : bool;
      (* stability trigger: set when a pivot was accepted on an entry
         small relative to its column, whose eta multipliers would poison
         later FTRANs *)
  mutable n_refactors : int;
  mutable n_pivots : int;
  (* Per-cause reinversion counters, mirroring the process-wide
     [revised_refactor_*_total] metrics: ledger records diff THESE (the
     instance's own work) so concurrent solvers on other domains cannot
     bleed into a record's deltas. *)
  mutable n_refactor_stability : int;
  mutable n_refactor_growth : int;
  mutable n_refactor_drift : int;
  mutable n_refactor_backstop : int;
}

let dummy_eta = { row = -1; pivot = 1.; idx = [||]; vals = [||] }

let push_eta t e =
  if t.n_etas = Array.length t.etas then begin
    let bigger = Array.make (max 64 (2 * t.n_etas)) dummy_eta in
    Array.blit t.etas 0 bigger 0 t.n_etas;
    t.etas <- bigger
  end;
  t.etas.(t.n_etas) <- e;
  t.n_etas <- t.n_etas + 1;
  t.eta_nnz <- t.eta_nnz + Array.length e.idx + 1

(* x <- B⁻¹ x *)
let ftran_apply t x =
  for k = 0 to t.n_etas - 1 do
    let e = t.etas.(k) in
    let xr = x.(e.row) in
    if xr <> 0. then begin
      let xr = xr /. e.pivot in
      x.(e.row) <- xr;
      let idx = e.idx and vals = e.vals in
      for p = 0 to Array.length idx - 1 do
        x.(idx.(p)) <- x.(idx.(p)) -. (vals.(p) *. xr)
      done
    end
  done

(* y <- B⁻ᵀ y *)
let btran_apply t y =
  for k = t.n_etas - 1 downto 0 do
    let e = t.etas.(k) in
    let acc = ref y.(e.row) in
    let idx = e.idx and vals = e.vals in
    for p = 0 to Array.length idx - 1 do
      acc := !acc -. (vals.(p) *. y.(idx.(p)))
    done;
    y.(e.row) <- !acc /. e.pivot
  done

(* w <- B⁻¹ A_j (dense scratch; artificials are identity columns) *)
let ftran_col t j w =
  Array.fill w 0 t.m 0.;
  if j < t.n_struct then Csr.scatter_row t.cols j w
  else begin
    let i = t.art_row.(j - t.n_struct) in
    w.(i) <- t.art_sign.(i)
  end;
  ftran_apply t w

(* The eta of pivoting column w on row r; [None] when E would be the
   identity (a column that is already e_r needs no eta). *)
let eta_of_pivot w r m =
  let cnt = ref 0 in
  for i = 0 to m - 1 do
    if i <> r && w.(i) <> 0. then incr cnt
  done;
  if !cnt = 0 && Float.abs (w.(r) -. 1.) < 1e-15 then None
  else begin
    let idx = Array.make !cnt 0 and vals = Array.make !cnt 0. in
    let p = ref 0 in
    for i = 0 to m - 1 do
      if i <> r && w.(i) <> 0. then begin
        idx.(!p) <- i;
        vals.(!p) <- w.(i);
        incr p
      end
    done;
    Some { row = r; pivot = w.(r); idx; vals }
  end

(* Rebuild the eta file from identity by re-pivoting the basic columns —
   a sparse right-looking Gaussian elimination in product form.  The
   pivot order follows a Markowitz-style heuristic (sparsest column
   first, then the candidate row of least incidence, subject to a
   relative stability threshold), which keeps the fill-in of the
   refactored eta file near nnz(B) on the banded marginal-balance
   matrices instead of the O(m²) a naive order produces.  Each pivot
   emits the eta of the partially eliminated column and eagerly applies
   it to the remaining columns that intersect the pivot row — the
   product form this builds is identical to FTRAN-ing every column
   through the preceding etas, just computed sparsely.  Rows may end up
   assigned to different basic columns; the represented basis (as a set)
   is unchanged.  Also recomputes the basic values from the perturbed
   right-hand side, washing out the roundoff accumulated by incremental
   updates. *)
let refactor t =
  Metrics.inc m_refactor;
  t.n_refactors <- t.n_refactors + 1;
  t.refactor_forced <- false;
  t.n_etas <- 0;
  t.eta_nnz <- 0;
  t.pivots_since_refactor <- 0;
  let m = t.m in
  let assigned = Array.make m false in
  let new_basis = Array.make m (-1) in
  (* Working copy of the basis columns, by basis position.  [colv.(k)]
     maps row -> current value of the partially eliminated column;
     [rowocc.(i)] over-approximates the set of remaining columns with a
     nonzero at row [i] (entries go stale when a value cancels). *)
  let colv = Array.init m (fun _ -> Hashtbl.create 8) in
  let rowocc = Array.init m (fun _ -> Hashtbl.create 8) in
  let col_cnt = Array.make m 0 in
  let row_cnt = Array.make m 0 in
  (* Health gauges: largest |basis entry| (the growth denominator),
     largest |entry| produced during elimination, and the range of
     accepted pivot magnitudes. *)
  let h_bmax = ref 0. and h_fmax = ref 0. in
  let h_pmin = ref infinity and h_pmax = ref 0. in
  let grow v =
    let a = Float.abs v in
    if a > !h_fmax then h_fmax := a
  in
  let pivot_mag p =
    let a = Float.abs p in
    if a < !h_pmin then h_pmin := a;
    if a > !h_pmax then h_pmax := a;
    if a > !h_fmax then h_fmax := a
  in
  Array.iteri
    (fun k c ->
      if c < t.n_struct then
        Csr.iter_row t.cols c (fun i v ->
            if v <> 0. then begin
              if Float.abs v > !h_bmax then h_bmax := Float.abs v;
              Hashtbl.replace colv.(k) i v;
              Hashtbl.replace rowocc.(i) k ();
              col_cnt.(k) <- col_cnt.(k) + 1;
              row_cnt.(i) <- row_cnt.(i) + 1
            end)
      else begin
        if 1. > !h_bmax then h_bmax := 1.;
        let i = t.art_row.(c - t.n_struct) in
        Hashtbl.replace colv.(k) i t.art_sign.(i);
        Hashtbl.replace rowocc.(i) k ();
        col_cnt.(k) <- col_cnt.(k) + 1;
        row_cnt.(i) <- row_cnt.(i) + 1
      end)
    t.basis;
  let remaining = Array.make m true in
  let deferred = ref [] in
  let u_etas = ref [] in
  let n_left = ref m in
  (* Take column [k] out of the active submatrix counts. *)
  let retire k =
    remaining.(k) <- false;
    decr n_left;
    Hashtbl.iter (fun i _ -> row_cnt.(i) <- row_cnt.(i) - 1) colv.(k)
  in
  while !n_left > 0 do
    (* Markowitz pivot choice: among a short list of the sparsest
       remaining columns, the entry minimizing
       (row_cnt − 1)·(col_cnt − 1) over candidates no smaller than a
       tenth of their column max — the classic fill-in estimate, with a
       relative stability threshold. *)
    let cmin = ref max_int in
    for k = 0 to m - 1 do
      if remaining.(k) && col_cnt.(k) < !cmin then cmin := col_cnt.(k)
    done;
    if !cmin = max_int then n_left := 0
    else begin
      let cands = ref [] and n_cands = ref 0 in
      (let k = ref 0 in
       while !n_cands < 8 && !k < m do
         if remaining.(!k) && col_cnt.(!k) <= !cmin + 1 then begin
           cands := !k :: !cands;
           incr n_cands
         end;
         incr k
       done);
      let k_best = ref (-1)
      and r_best = ref (-1)
      and p_best = ref 0.
      and score_best = ref max_int in
      List.iter
        (fun k ->
          let colmax = ref 0. in
          Hashtbl.iter
            (fun i v ->
              if (not assigned.(i)) && Float.abs v > !colmax then
                colmax := Float.abs v)
            colv.(k);
          if !colmax <= 1e-11 then begin
            retire k;
            deferred := k :: !deferred
          end
          else
            Hashtbl.iter
              (fun i v ->
                if (not assigned.(i)) && Float.abs v >= 0.1 *. !colmax then begin
                  let score = (row_cnt.(i) - 1) * (col_cnt.(k) - 1) in
                  if
                    score < !score_best
                    || (score = !score_best && Float.abs v > Float.abs !p_best)
                  then begin
                    k_best := k;
                    r_best := i;
                    p_best := v;
                    score_best := score
                  end
                end)
              colv.(k))
        !cands;
      if !k_best >= 0 then begin
        let k = !k_best in
        let r = !r_best in
        let p = !p_best in
        pivot_mag p;
        retire k;
        (* Split the pivot column: entries at unassigned rows are the
           multipliers (the L eta emitted now); entries at assigned rows
           are frozen U values (buffered, appended in reverse order after
           the elimination so that FTRAN performs back substitution). *)
        let lidx = ref [] and lvals = ref [] and ln = ref 0 in
        let uidx = ref [] and uvals = ref [] and un = ref 0 in
        Hashtbl.iter
          (fun i v ->
            if i <> r then begin
              grow v;
              if assigned.(i) then begin
                uidx := i :: !uidx;
                uvals := v :: !uvals;
                incr un
              end
              else begin
                lidx := i :: !lidx;
                lvals := v :: !lvals;
                incr ln
              end
            end)
          colv.(k);
        let lidx = Array.of_list !lidx and lvals = Array.of_list !lvals in
        if !ln > 0 || Float.abs (p -. 1.) >= 1e-15 then
          push_eta t { row = r; pivot = p; idx = lidx; vals = lvals };
        if !un > 0 then
          u_etas :=
            {
              row = r;
              pivot = 1.;
              idx = Array.of_list !uidx;
              vals = Array.of_list !uvals;
            }
            :: !u_etas;
        assigned.(r) <- true;
        new_basis.(r) <- t.basis.(k);
        (* Eagerly eliminate the pivot row from the remaining columns:
           their entry at [r] becomes the frozen multiplier f = v_r / p
           (a future U value), and only active-submatrix rows are
           updated — this is what keeps LU fill-in small where a full
           product-form column transform would smear into the assigned
           rows. *)
        let touched = Hashtbl.fold (fun k' () acc -> k' :: acc) rowocc.(r) [] in
        List.iter
          (fun k' ->
            if k' <> k && remaining.(k') then begin
              match Hashtbl.find_opt colv.(k') r with
              | None -> ()
              | Some vr ->
                col_cnt.(k') <- col_cnt.(k') - 1;
                let f = vr /. p in
                Hashtbl.replace colv.(k') r f;
                Array.iteri
                  (fun q i ->
                    let old =
                      match Hashtbl.find_opt colv.(k') i with
                      | Some v -> v
                      | None -> 0.
                    in
                    let nv = old -. (lvals.(q) *. f) in
                    if Float.abs nv < 1e-13 then begin
                      if old <> 0. then begin
                        Hashtbl.remove colv.(k') i;
                        row_cnt.(i) <- row_cnt.(i) - 1;
                        col_cnt.(k') <- col_cnt.(k') - 1
                      end
                    end
                    else begin
                      grow nv;
                      Hashtbl.replace colv.(k') i nv;
                      if old = 0. then begin
                        Hashtbl.replace rowocc.(i) k' ();
                        row_cnt.(i) <- row_cnt.(i) + 1;
                        col_cnt.(k') <- col_cnt.(k') + 1
                      end
                    end)
                  lidx
            end)
          touched;
        (* Retire column [k] from the row occupancy. *)
        Hashtbl.iter (fun i _ -> Hashtbl.remove rowocc.(i) k) colv.(k);
        Hashtbl.reset colv.(k)
      end
    end
  done;
  (* Back-substitution etas: U_m, …, U_1 (reverse pivot order). *)
  List.iter (fun e -> push_eta t e) !u_etas;
  (* Numerically deferred columns: pivot them through the eta file built
     so far, on the largest unassigned entry of B⁻¹a — the dense
     fallback of last resort.  A column whose transform has no usable
     entry left is (numerically) dependent on the rest of the basis and
     is dropped here. *)
  let w = t.work in
  List.iter
    (fun k ->
      let c = t.basis.(k) in
      ftran_col t c w;
      let r = ref (-1) and best = ref 1e-11 in
      for i = 0 to m - 1 do
        if (not assigned.(i)) && Float.abs w.(i) > !best then begin
          r := i;
          best := Float.abs w.(i)
        end
      done;
      if !r < 0 then t.in_basis.(c) <- false
      else begin
        pivot_mag w.(!r);
        (match eta_of_pivot w !r m with Some e -> push_eta t e | None -> ());
        assigned.(!r) <- true;
        new_basis.(!r) <- c
      end)
    (List.rev !deferred);
  (* Basis repair: cover each still-unassigned row with its artificial
     unit column ±e_r.  At an unassigned row, ±e_r is untouched by every
     eta built above (they all pivot on assigned rows), so the repair
     needs no eta beyond a sign flip when the artificial is −e_r — and
     the repaired basis is nonsingular by construction. *)
  for i = 0 to m - 1 do
    if new_basis.(i) < 0 then begin
      let a = t.n_struct + i in
      new_basis.(i) <- a;
      t.in_basis.(a) <- true;
      t.allowed.(a) <- false;
      if t.art_sign.(i) <> 1. then
        push_eta t { row = i; pivot = t.art_sign.(i); idx = [||]; vals = [||] };
      Metrics.inc m_repairs;
      Log.debug (fun f ->
          f "refactor: dependent basis column replaced by unit column of row %d"
            i)
    end
  done;
  Array.blit new_basis 0 t.basis 0 t.m;
  Array.blit t.rhs_pert 0 t.xb 0 t.m;
  ftran_apply t t.xb;
  (* The primal simplex needs xb ≥ 0; clamping restores the invariant.
     Violations beyond roundoff scale mean the basis degraded (a repair,
     or an ill-conditioned stretch of the trajectory) — the path
     continues from the clamped point, phase 1 prices the infeasibility
     away again, and optimality is certified by pricing, not by xb. *)
  t.worst_infeas <- 0.;
  for i = 0 to t.m - 1 do
    if t.xb.(i) < 0. then begin
      if t.xb.(i) < t.worst_infeas then t.worst_infeas <- t.xb.(i);
      t.xb.(i) <- 0.
    end
  done;
  if t.worst_infeas < -1e-7 then
    Log.debug (fun f ->
        f "refactor: clamped infeasible basic values (worst %g)"
          t.worst_infeas);
  t.base_eta_nnz <- t.eta_nnz;
  Metrics.set m_eta_nnz (float_of_int t.eta_nnz);
  Health.observe_refactor
    ~growth:(if !h_bmax > 0. then !h_fmax /. !h_bmax else 0.)
    ~min_pivot:(if !h_pmin = infinity then 0. else !h_pmin)
    ~max_pivot:!h_pmax;
  if Trace.is_enabled () then
    Trace.record (Trace.Refactor { solver = "revised"; eta_nnz = t.eta_nnz })

(* ------------------------------------------------------------------ *)
(* Pricing and ratio test                                              *)
(* ------------------------------------------------------------------ *)

(* Entering column by reduced cost d_j = c_j − y·A_j, priced out of the
   sparse columns. Dantzig rule (most negative) normally; under [bland],
   the first eligible column — the termination backstop after a stall. *)
let price t y ~cost_of ~bland =
  let best = ref (-1) and best_d = ref (-.eps_cost) in
  (try
     for j = 0 to t.n_total - 1 do
       if t.allowed.(j) && not t.in_basis.(j) then begin
         let ya =
           if j < t.n_struct then Csr.dot_row t.cols j y
           else begin
             let i = t.art_row.(j - t.n_struct) in
             t.art_sign.(i) *. y.(i)
           end
         in
         let d = cost_of j -. ya in
         if d < !best_d then begin
           best := j;
           best_d := d;
           if bland then raise Exit
         end
       end
     done
   with Exit -> ());
  !best

(* Leaving row by a Harris-style two-pass ratio test.  Pass 1 finds the
   loosest step θ that keeps every basic value above [-tol_feas]; pass 2
   picks, among the rows whose exact ratio fits under θ, the one with the
   LARGEST pivot magnitude.  Trading a bounded (tol_feas) transient
   infeasibility for large pivots is what keeps the eta file
   well-conditioned on these heavily degenerate LPs — a plain min-ratio
   rule is regularly forced onto 1e-9-scale pivots whose eta
   multipliers then poison every later FTRAN.  The tolerance is kept an
   order below the anti-degeneracy perturbation so the perturbation's
   tie-breaking survives.  Under [bland], the plain smallest-basic-column
   rule — the termination backstop.  Returns -1 when the column is
   unbounded. *)
let tol_feas = 1e-9

let ratio_test t w ~bland =
  if bland then begin
    let best = ref (-1) and best_ratio = ref infinity in
    for i = 0 to t.m - 1 do
      let wi = w.(i) in
      if wi > eps_pivot then begin
        let ratio = Float.max 0. (t.xb.(i) /. wi) in
        let tol = 1e-12 *. Float.max 1. !best_ratio in
        if !best < 0 || ratio < !best_ratio -. tol then begin
          best := i;
          best_ratio := ratio
        end
        else if ratio <= !best_ratio +. tol && t.basis.(i) < t.basis.(!best)
        then begin
          best := i;
          best_ratio := Float.min ratio !best_ratio
        end
      end
    done;
    !best
  end
  else begin
    let theta = ref infinity in
    for i = 0 to t.m - 1 do
      let wi = w.(i) in
      if wi > eps_pivot then begin
        let r = (Float.max 0. t.xb.(i) +. tol_feas) /. wi in
        if r < !theta then theta := r
      end
    done;
    if !theta = infinity then -1
    else begin
      let best = ref (-1) and best_w = ref 0. in
      for i = 0 to t.m - 1 do
        let wi = w.(i) in
        if wi > !best_w && Float.max 0. t.xb.(i) /. wi <= !theta then begin
          best := i;
          best_w := wi
        end
      done;
      !best
    end
  end

type status = R_optimal | R_unbounded | R_limit

let run_phase t ~cost_of ~max_iter ~stall_limit =
  let y = Array.make t.m 0. in
  let xchk = Array.make t.m 0. in
  let w = t.work in
  let bland = ref false in
  let iter = ref 0 in
  let stalled = ref 0 in
  let streak_peak = ref 0 in
  let degenerate = ref 0 in
  let best_obj = ref infinity in
  let result = ref None in
  (* Per-phase attribution accumulates in locals and is recorded with
     one [Span.add] per phase after the loop; the clock reads (which
     box floats) are skipped entirely when profiling is off, keeping
     the disabled pivot path allocation-free. *)
  let prof = Prof.is_enabled () in
  let price_t = ref 0. in
  let ratio_t = ref 0. in
  let update_t = ref 0. in
  let factor_t = ref 0. in
  let factor_n = ref 0 in
  while !result = None do
    if !iter >= max_iter then result := Some R_limit
    else begin
      let t0 = if prof then Prof.now () else 0. in
      (* Duals of the current basis: y = B⁻ᵀ c_B. *)
      for i = 0 to t.m - 1 do
        y.(i) <- cost_of t.basis.(i)
      done;
      btran_apply t y;
      let q = price t y ~cost_of ~bland:!bland in
      let t1 = if prof then Prof.now () else 0. in
      if prof then price_t := !price_t +. (t1 -. t0);
      if q < 0 then result := Some R_optimal
      else begin
        ftran_col t q w;
        let t2 = if prof then Prof.now () else 0. in
        if prof then update_t := !update_t +. (t2 -. t1);
        let r = ratio_test t w ~bland:!bland in
        if prof then ratio_t := !ratio_t +. (Prof.now () -. t2);
        if r < 0 then result := Some R_unbounded
        else begin
          let t3 = if prof then Prof.now () else 0. in
          (* Stability trigger: accepting a pivot much smaller than its
             column's largest entry writes multipliers of magnitude
             colmax/|w_r| into the eta file; schedule a reinversion right
             after this pivot rather than letting them poison every later
             FTRAN. *)
          (let wr = Float.abs w.(r) in
           let colmax = ref wr in
           for i = 0 to t.m - 1 do
             let a = Float.abs w.(i) in
             if a > !colmax then colmax := a
           done;
           if wr < 1e-7 *. !colmax then t.refactor_forced <- true);
          let step = Float.max 0. (t.xb.(r) /. w.(r)) in
          for i = 0 to t.m - 1 do
            if i <> r && w.(i) <> 0. then begin
              let v = t.xb.(i) -. (w.(i) *. step) in
              t.xb.(i) <- (if v < 0. && v > -1e-7 then 0. else v)
            end
          done;
          t.xb.(r) <- step;
          let leaving = t.basis.(r) in
          t.in_basis.(leaving) <- false;
          (* An artificial that leaves the basis must never come back. *)
          if leaving >= t.n_struct then t.allowed.(leaving) <- false;
          t.in_basis.(q) <- true;
          t.basis.(r) <- q;
          (match eta_of_pivot w r t.m with Some e -> push_eta t e | None -> ());
          if prof then update_t := !update_t +. (Prof.now () -. t3);
          t.pivots_since_refactor <- t.pivots_since_refactor + 1;
          incr iter;
          let obj = ref 0. in
          for i = 0 to t.m - 1 do
            obj := !obj +. (cost_of t.basis.(i) *. t.xb.(i))
          done;
          let improved =
            !obj < !best_obj -. (1e-12 *. (1. +. Float.abs !best_obj))
          in
          if improved then begin
            best_obj := !obj;
            stalled := 0
          end
          else begin
            incr stalled;
            incr degenerate;
            if !stalled > !streak_peak then streak_peak := !stalled;
            if !stalled >= stall_limit && not !bland then begin
              Log.debug (fun f ->
                  f "stall after %d pivots: switching to Bland's rule" !iter);
              Health.observe_stall ();
              bland := true;
              stalled := 0
            end
          end;
          if Trace.is_enabled () then
            Trace.record
              (Trace.Pivot
                 {
                   solver = "revised";
                   iteration = !iter;
                   entering = q;
                   leaving;
                   step;
                   objective = !obj;
                   degenerate = not improved;
                 });
          (* Forrest–Tomlin-style reinversion policy: the eta file is kept
             across pivots and rebuilt only when (a) a stability trigger
             fired, (b) its size outgrew the last factorization enough
             that per-pivot FTRAN/BTRAN work dominates the cost of a fresh
             near-minimal LU, (c) the incrementally updated basic values
             drifted from a fresh B⁻¹·rhs (checked every
             [check_interval] pivots), or (d) a large pivot-count
             backstop. *)
          let need_refactor =
            if t.refactor_forced then begin
              Metrics.inc m_refactor_stability;
              t.n_refactor_stability <- t.n_refactor_stability + 1;
              true
            end
            else if t.pivots_since_refactor >= t.pivot_backstop then begin
              Metrics.inc m_refactor_backstop;
              t.n_refactor_backstop <- t.n_refactor_backstop + 1;
              true
            end
            else if
              float_of_int t.eta_nnz
              > t.growth_limit *. float_of_int (t.base_eta_nnz + t.m)
            then begin
              Metrics.inc m_refactor_growth;
              t.n_refactor_growth <- t.n_refactor_growth + 1;
              true
            end
            else if
              t.check_interval > 0
              && t.pivots_since_refactor mod t.check_interval = 0
              &&
              begin
                Array.blit t.rhs_pert 0 xchk 0 t.m;
                ftran_apply t xchk;
                let drift = ref 0. in
                for i = 0 to t.m - 1 do
                  let d = Float.abs (Float.max 0. xchk.(i) -. t.xb.(i)) in
                  if d > !drift then drift := d
                done;
                Health.observe_drift !drift;
                !drift > t.drift_tol
              end
            then begin
              Metrics.inc m_refactor_drift;
              t.n_refactor_drift <- t.n_refactor_drift + 1;
              true
            end
            else false
          in
          if need_refactor then
            if prof then begin
              let tf = Prof.now () in
              refactor t;
              factor_t := !factor_t +. (Prof.now () -. tf);
              incr factor_n
            end
            else refactor t;
          if !iter mod 1000 = 0 then
            Log.debug (fun f ->
                f "iter=%d obj=%.12g entering=%d leaving_row=%d" !iter !obj q r)
        end
      end
    end
  done;
  if prof then begin
    let n = max 1 !iter in
    Span.add ~count:n "price" !price_t;
    Span.add ~count:n "ratio" !ratio_t;
    Span.add ~count:n "update" !update_t;
    if !factor_n > 0 then Span.add ~count:!factor_n "factorize" !factor_t
  end;
  Metrics.inc ~by:(float_of_int !iter) m_pivots;
  Metrics.inc ~by:(float_of_int !degenerate) m_degenerate;
  if !streak_peak > 0 then Health.observe_degeneracy_streak !streak_peak;
  t.n_pivots <- t.n_pivots + !iter;
  ((match !result with Some s -> s | None -> assert false), !iter)

(* ------------------------------------------------------------------ *)
(* Phase 1                                                             *)
(* ------------------------------------------------------------------ *)

(* Anti-degeneracy perturbation, fixed at prepare time.  Same story as
   the dense backend (the marginal-balance LPs have hundreds of zero
   right-hand sides and cycle under every deterministic tie-breaking
   rule), with one additional constraint: the perturbation is
   chosen ONCE and kept for the lifetime of the prepared state, so that
   every basis ever reached stays primal-feasible for every later
   objective — the invariant warm-started reoptimization rests on. Exact
   quantities are recovered through B⁻¹ applied to the true right-hand
   side. *)
let perturbation j salt =
  let h = (((j + (salt * 7919)) * 2654435761) lxor (salt * 40503)) land 0xFFFFFF in
  let u = float_of_int h /. float_of_int 0x1000000 in
  (* Large enough that degenerate steps dominate the FTRAN roundoff that
     accumulates on big instances (m ~ 10⁴), small enough not to disturb
     which vertex is optimal in practice; the reported solution is exact
     either way because extraction applies B⁻¹ to the true rhs, and the
     feasibility witness (B⁻¹ applied to the perturbed rhs) misses the
     true constraints by at most this amount. *)
  1e-8 *. (0.5 +. u)

(* Per-row perturbation scaling. The 1e-8 base above was tuned on the
   m ~ 10³–10⁴ sweep instances; applied as a flat absolute constant it
   is proportionally huge on the small-population LPs (tens to hundreds
   of rows, where FTRAN roundoff is orders of magnitude lower) and
   blind to row scaling — the regime where the fleet's hard random
   models fail their certificates. In that small regime each row's
   perturbation is therefore proportional to the row's own coefficient
   magnitude (clamped so weakly-scaled rows still dominate roundoff and
   heavy rows don't get their vertex disturbed), the row's RHS
   magnitude, and sqrt(m/4096) with a floor of 1/8 — the perturbation
   shrinks with the problem as the roundoff it must dominate does.
   From m = 1024 up the flat constant stands: the trajectories there
   are already well-conditioned, and reshaping the perturbation steers
   phase 2 through measurably worse bases (the bench tandem's N ≥ 120
   sweep steps and N = 250/500 solves regress in pivots, time and — at
   the largest sizes — certificate residual). *)
let pert_row_scales std =
  let m = Std_form.num_rows std in
  if m >= 1024 then Array.make m 1.
  else
    let size = Float.max 0.125 (sqrt (float_of_int m /. 4096.)) in
    Array.init m (fun i ->
        let norm = ref 0. in
        Csr.iter_row std.Std_form.rows i (fun _ v ->
            let a = Float.abs v in
            if a > !norm then norm := a);
        let row =
          if !norm > 0. then Float.min 4. (Float.max 0.25 !norm) else 1.
        in
        size *. row *. (1. +. Float.abs std.Std_form.rhs.(i)))

let build_state ?(pert_scale = 1.) std salt =
  let m = Std_form.num_rows std in
  let n_struct = std.Std_form.ncols in
  let cols = Std_form.cols std in
  (* Independent positive noise on every row (the standard-form rhs is
     sign-normalized to be >= 0, so the perturbed rhs stays >= 0 too).
     Equality rows make the perturbed system slightly inconsistent, so
     phase 1 may park an artificial at an O(1e-8) value — harmless,
     because feasibility and the reported quantities are judged against
     the TRUE right-hand side (B⁻¹b), not the perturbed one. *)
  let pert_rows = pert_row_scales std in
  let rhs_pert =
    Array.init m (fun i ->
        std.Std_form.rhs.(i) +. (pert_scale *. pert_rows.(i) *. perturbation i salt))
  in
  (* One artificial per row: column n_struct + i ≡ ±e_i, signed so its
     basic value |rhs_pert i| is nonnegative.  Only the ones seeding the
     initial basis take part in phase 1; the rest exist solely for basis
     repair in [refactor] and stay barred from pricing for good. *)
  let art_row = Array.init m (fun i -> i) in
  let art_sign =
    Array.init m (fun i -> if rhs_pert.(i) >= 0. then 1. else -1.)
  in
  let n_total = n_struct + m in
  let allowed = Array.make n_total true in
  let basis = Array.make m (-1) in
  for i = m - 1 downto 0 do
    match Std_form.slack_basic_of_row std i with
    | Some j when rhs_pert.(i) >= 0. ->
      basis.(i) <- j;
      allowed.(n_struct + i) <- false
    | Some _ | None -> basis.(i) <- n_struct + i
  done;
  let in_basis = Array.make n_total false in
  Array.iter (fun c -> in_basis.(c) <- true) basis;
  let a_nnz = Csr.nnz cols in
  let t =
    {
      std;
      m;
      n_struct;
      n_total;
      cols;
      a_nnz;
      art_row;
      art_sign;
      basis;
      in_basis;
      allowed;
      etas = Array.make 64 dummy_eta;
      n_etas = 0;
      eta_nnz = 0;
      base_eta_nnz = 0;
      pivots_since_refactor = 0;
      worst_infeas = 0.;
      xb = Array.map Float.abs rhs_pert;
      rhs_pert;
      pert_scale;
      phase1_basis = Array.copy basis;
      solves = 0;
      work = Array.make m 0.;
      growth_limit = default_growth_limit;
      drift_tol = default_drift_tol;
      check_interval = default_check_interval;
      pivot_backstop = default_pivot_backstop;
      refactor_forced = false;
      n_refactors = 0;
      n_pivots = 0;
      n_refactor_stability = 0;
      n_refactor_growth = 0;
      n_refactor_drift = 0;
      n_refactor_backstop = 0;
    }
  in
  (* Seed etas so the (empty-file) identity represents B⁻¹ exactly: a
     −e_i artificial in the initial basis contributes a diagonal −1. *)
  for i = 0 to m - 1 do
    if basis.(i) = n_struct + i && art_sign.(i) <> 1. then
      push_eta t { row = i; pivot = art_sign.(i); idx = [||]; vals = [||] }
  done;
  t

(* Artificial mass of the current basis judged against the TRUE
   (unperturbed) right-hand side: x = B⁻¹ b. *)
let artificial_mass t =
  let x_true = Array.copy t.std.Std_form.rhs in
  ftran_apply t x_true;
  let mass = ref 0. in
  for i = 0 to t.m - 1 do
    if t.basis.(i) >= t.n_struct then mass := !mass +. Float.abs x_true.(i)
  done;
  !mass

(* Phase-1 epilogue shared by the cold and the population-warm-started
   paths: bar the artificials from pricing, drive zero-level basic
   artificials out of the basis, and record the resulting basis as the
   warm-start anchor of {!reset}. *)
let finalize_phase1 t =
  let m = t.m in
  for j = t.n_struct to t.n_total - 1 do
    t.allowed.(j) <- false
  done;
  (* Drive zero-level basic artificials out of the basis. A basic
     artificial absorbs any imbalance of its row, silently deleting
     that constraint from every later phase-2 solve — on a row that
     is NOT linearly dependent this relaxes the feasible region and
     lets phase 2 report optima outside the true polytope. For each
     such row, BTRAN the unit vector to get the transformed row
     ρ = B⁻ᵀe_i, enter the structural column with the largest
     |ρ·A_j| via a (near-)degenerate pivot. Rows whose transformed
     row vanishes over the structural columns are genuinely
     dependent: implied by the others, their artificial — which
     only absorbs the perturbation's inconsistency — is harmless
     and stays. *)
  let rho = Array.make m 0. in
  for i = 0 to m - 1 do
    if t.basis.(i) >= t.n_struct then begin
      Array.fill rho 0 m 0.;
      rho.(i) <- 1.;
      btran_apply t rho;
      let best = ref (-1) and best_mag = ref 1e-6 in
      for j = 0 to t.n_struct - 1 do
        if not t.in_basis.(j) then begin
          let mag = Float.abs (Csr.dot_row t.cols j rho) in
          if mag > !best_mag then begin
            best := j;
            best_mag := mag
          end
        end
      done;
      if !best >= 0 && Float.abs t.xb.(i) /. !best_mag <= 1e-6 then begin
        let w = t.work in
        ftran_col t !best w;
        if Float.abs w.(i) > 1e-7 then begin
          (* Treat the pivot as exactly degenerate: the artificial
             sits at zero level in the true problem, and its
             residual basic value is perturbation noise. Entering
             the structural at exactly zero leaves every other
             basic value untouched, where stepping by the noisy
             value would shift each by (noise / pivot) × wₖ —
             pushing degenerate basic variables negative and
             seeding instability downstream. (Formally a
             re-perturbation of b by −B·(noise·eᵢ), the same class
             phase 2's salt retries already apply.) A fresh
             deterministic perturbation at the usual 1e-8 scale
             then re-seeds the anti-degeneracy margin on the row —
             entering at exactly zero would stack hundreds of
             exactly-tied zero-level basics, and phase 2 pays for
             every tie in Harris ratio-test passes. *)
          let h = ((i * 2654435761) lxor 0x9E3779B9) land 0xFFFFFF in
          t.xb.(i) <-
            1e-8 *. (0.5 +. (float_of_int h /. float_of_int 0x1000000));
          let art = t.basis.(i) in
          t.in_basis.(art) <- false;
          t.in_basis.(!best) <- true;
          t.basis.(i) <- !best;
          (match eta_of_pivot t.work i m with
          | Some e -> push_eta t e
          | None -> ());
          Metrics.inc m_driveouts
        end
      end
    end
  done;
  Array.blit t.basis 0 t.phase1_basis 0 m

let default_max_iter ~m ~ncols = 50_000 + (50 * (m + ncols))

let prepare_unspanned ?max_iter ?(pert_scale = 1.) ?(salt = 0) model =
  let std = Std_form.build model in
  let m = Std_form.num_rows std in
  let max_iter =
    match max_iter with
    | Some k -> k
    | None -> default_max_iter ~m ~ncols:std.Std_form.ncols
  in
  let salt0 = salt in
  let rec attempt salt =
    Health.observe_salt salt;
    let t = build_state ~pert_scale std salt in
    let cost_of j = if j >= t.n_struct then 1. else 0. in
    let stall_limit = max 5_000 (20 * m) in
    let status, _ = run_phase t ~cost_of ~max_iter ~stall_limit in
    match status with
    | R_limit ->
      if salt < salt0 + 3 then begin
        Metrics.inc m_retries;
        Log.debug (fun f ->
            f "phase-1 stall with perturbation salt %d; retrying" salt);
        attempt (salt + 1)
      end
      else Error (Simplex.Iteration_limit_phase1 max_iter)
    | R_unbounded ->
      (* Phase 1 minimizes a sum of nonnegative variables — unbounded is
         impossible in exact arithmetic, so reaching it means the basis
         degraded numerically.  Retry like a stall. *)
      if salt < salt0 + 3 then begin
        Metrics.inc m_retries;
        Log.debug (fun f ->
            f "phase-1 numerically degraded with perturbation salt %d; retrying"
              salt);
        attempt (salt + 1)
      end
      else Error Simplex.Infeasible_phase1
    | R_optimal ->
      let mass = ref (artificial_mass t) in
      (* Pricing off a long eta file can declare optimality with
         artificial mass still basic (stale duals).  A fresh
         factorization recomputes the duals exactly; resuming phase 1
         from it is far cheaper than a whole new salt and usually
         finishes the job. *)
      let resumes = ref 0 in
      while !mass > 1e-6 && !resumes < 3 do
        incr resumes;
        Log.debug (fun f ->
            f
              "phase-1 artificial mass %g at a stale optimum; refactorizing \
               and resuming (round %d)"
              !mass !resumes);
        refactor t;
        (match run_phase t ~cost_of ~max_iter ~stall_limit with
        | R_optimal, 0 ->
          (* No pivot even with exact duals: deterministic, so further
             rounds would replay the same state. *)
          resumes := 3
        | R_optimal, _ -> mass := artificial_mass t
        | (R_limit | R_unbounded), _ -> resumes := 3)
      done;
      if !mass > 1e-6 then
        if salt < salt0 + 3 then begin
          (* Residual artificial mass on these LPs means the trajectory
             degraded numerically (the exact aggregated solution is always
             feasible) — a fresh perturbation reshuffles the degenerate
             ties and usually avoids the bad path. *)
          Metrics.inc m_retries;
          Log.debug (fun f ->
              f
                "phase-1 artificial mass %g with perturbation salt %d; \
                 retrying"
                !mass salt);
          attempt (salt + 1)
        end
        else Error Simplex.Infeasible_phase1
      else begin
        finalize_phase1 t;
        Ok t
      end
  in
  attempt 0

let prepare ?max_iter ?pert_scale ?salt model =
  Span.with_ "revised.phase1" (fun () ->
      prepare_unspanned ?max_iter ?pert_scale ?salt model)

let pert_scale t = t.pert_scale

let reset t =
  Array.blit t.phase1_basis 0 t.basis 0 t.m;
  Array.fill t.in_basis 0 t.n_total false;
  Array.iter (fun c -> t.in_basis.(c) <- true) t.basis;
  t.solves <- 0;
  refactor t

(* ------------------------------------------------------------------ *)
(* Cross-model warm starts (population sweeps)                         *)
(* ------------------------------------------------------------------ *)

let m_seeded =
  Metrics.counter
    ~help:"Phase-1 preparations seeded from a related model's basis."
    "revised_seeded_prepares_total"

let m_seeded_fallback =
  Metrics.counter
    ~help:"Seeded preparations that fell back to a cold phase 1."
    "revised_seeded_prepare_fallbacks_total"

let m_restore_pivots =
  Metrics.histogram
    ~help:"Feasibility-restoration pivots needed by a seeded preparation."
    ~buckets:[| 0.; 10.; 30.; 100.; 300.; 1_000.; 3_000.; 10_000. |]
    "revised_restoration_pivots"

type seed = Seed_var of int | Seed_slack of int

let basis_seeds ?(phase1 = false) t =
  let basis = if phase1 then t.phase1_basis else t.basis in
  let out = ref [] in
  for i = t.m - 1 downto 0 do
    let c = basis.(i) in
    if c < t.n_struct then
      match t.std.Std_form.origins.(c) with
      | Std_form.Shifted { var; _ } | Std_form.Negative_part { var } ->
        out := Seed_var var :: !out
      | Std_form.Slack -> (
        match Std_form.row_of_slack t.std c with
        | Some r when r < t.std.Std_form.nrows_model ->
          out := Seed_slack r :: !out
        | Some _ | None -> ())
  done;
  !out

(* Restore primal feasibility of a seeded basis. The mapped basis is
   typically feasible on the rows it came from and infeasible on the rows
   the new model added or moved, so this is a dual-simplex-flavoured
   repair: take the most negative basic value as the leaving row, enter
   the allowed column with the most negative transformed-row entry
   (phase-1 reduced costs over structurals are all zero, so any such
   column is price-neutral and the ratio xb_r / α_r > 0 lifts the row to
   feasibility), and repeat. Bounded by [max_pivots]: the loop has no
   termination proof on degenerate LPs, the caller falls back to a cold
   phase 1 when it trips. *)
let restore_feasibility t ~max_pivots =
  let rho = Array.make t.m 0. in
  let w = t.work in
  let pivots = ref 0 in
  let ok = ref true in
  let finished = ref false in
  (* Whether xb was recomputed from rhs_pert since the last pivot — the
     incremental updates drift, so a stalled row gets one fresh look
     before we give up on it. *)
  let fresh = ref true in
  while not !finished do
    let r = ref (-1) and worst = ref (-1e-9) in
    for i = 0 to t.m - 1 do
      if t.xb.(i) < !worst then begin
        r := i;
        worst := t.xb.(i)
      end
    done;
    if !r < 0 then finished := true
    else if !pivots >= max_pivots then begin
      ok := false;
      finished := true
    end
    else begin
      let r = !r in
      Array.fill rho 0 t.m 0.;
      rho.(r) <- 1.;
      btran_apply t rho;
      let best = ref (-1) and best_a = ref (-.eps_pivot) in
      for j = 0 to t.n_struct - 1 do
        if t.allowed.(j) && not t.in_basis.(j) then begin
          let a = Csr.dot_row t.cols j rho in
          if a < !best_a then begin
            best := j;
            best_a := a
          end
        end
      done;
      if !best < 0 then
        (* No structural can lift the row; an artificial of another row
           can (the closing phase 1 drives it back out). *)
        for k = 0 to t.m - 1 do
          let j = t.n_struct + k in
          if t.allowed.(j) && not t.in_basis.(j) then begin
            let i = t.art_row.(k) in
            let a = t.art_sign.(i) *. rho.(i) in
            if a < !best_a then begin
              best := j;
              best_a := a
            end
          end
        done;
      if !best < 0 then
        if t.xb.(r) >= -1e-5 then
          (* Noise-level infeasibility on a row no column can lift —
             treat it as degenerate (exactly what phase 2 does with such
             values after every refactorization) and move on. *)
          t.xb.(r) <- 0.
        else if not !fresh then begin
          (* The incremental xb updates drift over hundreds of pivots;
             the row may not be that infeasible at all. Recompute before
             giving up on it. *)
          refactor t;
          Array.blit t.rhs_pert 0 t.xb 0 t.m;
          ftran_apply t t.xb;
          fresh := true
        end
        else begin
          (* No column can lift this row: numerically dependent or the
             basis is too far gone — let the cold path handle it. *)
          Log.debug (fun f ->
              f "restore: no entering column for row %d (xb %g) after %d pivots"
                r t.xb.(r) !pivots);
          ok := false;
          finished := true
        end
      else begin
        ftran_col t !best w;
        if Float.abs w.(r) < eps_pivot then begin
          ok := false;
          finished := true
        end
        else begin
          let step = t.xb.(r) /. w.(r) in
          for i = 0 to t.m - 1 do
            if i <> r && w.(i) <> 0. then t.xb.(i) <- t.xb.(i) -. (w.(i) *. step)
          done;
          t.xb.(r) <- step;
          let leaving = t.basis.(r) in
          t.in_basis.(leaving) <- false;
          if leaving >= t.n_struct then t.allowed.(leaving) <- false;
          t.in_basis.(!best) <- true;
          t.basis.(r) <- !best;
          (match eta_of_pivot w r t.m with Some e -> push_eta t e | None -> ());
          t.pivots_since_refactor <- t.pivots_since_refactor + 1;
          incr pivots;
          fresh := false;
          (* Long restorations (hundreds to thousands of pivots on large
             population steps) keep the same eta-growth cadence as the
             phases — measured on the Figure-4 N=500 seeded step this
             rebuilds about once per 80 dense restoration etas, which
             sits at the same FTRAN-cost-vs-rebuild-cost balance as
             [default_growth_limit]; both looser nnz caps and flat pivot
             cadences measured worse. *)
          let need_refactor =
            if t.refactor_forced then begin
              Metrics.inc m_refactor_stability;
              t.n_refactor_stability <- t.n_refactor_stability + 1;
              true
            end
            else if
              float_of_int t.eta_nnz
              > t.growth_limit *. float_of_int (t.base_eta_nnz + t.m)
            then begin
              Metrics.inc m_refactor_growth;
              t.n_refactor_growth <- t.n_refactor_growth + 1;
              true
            end
            else false
          in
          if need_refactor then begin
            refactor t;
            (* Restoration needs the UNclamped basic values. *)
            Array.blit t.rhs_pert 0 t.xb 0 t.m;
            ftran_apply t t.xb;
            fresh := true
          end
        end
      end
    end
  done;
  Metrics.observe m_restore_pivots (float_of_int !pivots);
  t.n_pivots <- t.n_pivots + !pivots;
  !ok

let prepare_seeded_unspanned ?max_iter ?pert_scale ~seeds model =
  let cold ~fallback () =
    if fallback then Metrics.inc m_seeded_fallback;
    Result.map
      (fun t -> (t, false))
      (prepare_unspanned ?max_iter ?pert_scale model)
  in
  if seeds = [] then cold ~fallback:false ()
  else begin
    Metrics.inc m_seeded;
    let std = Std_form.build model in
    let m = Std_form.num_rows std in
    let max_iter_v =
      match max_iter with
      | Some k -> k
      | None -> default_max_iter ~m ~ncols:std.Std_form.ncols
    in
    let t = build_state ?pert_scale std 0 in
    (* Resolve the seeds to standard-form columns: slacks to the slack of
       the named row, variables to their main column. *)
    let used = Array.make t.n_struct false in
    let hint = Array.make m (-1) in
    let var_cols = ref [] in
    List.iter
      (fun s ->
        match s with
        | Seed_slack r ->
          if r >= 0 && r < m then (
            match Std_form.slack_col_of_row std r with
            | Some j when not used.(j) ->
              used.(j) <- true;
              hint.(r) <- j
            | Some _ | None -> ())
        | Seed_var v ->
          if v >= 0 && v < std.Std_form.nvars_model then begin
            let j = std.Std_form.plus.(v) in
            if not used.(j) then begin
              used.(j) <- true;
              var_cols := j :: !var_cols
            end
          end)
      seeds;
    (* Place the variable columns on rows without a hint — the row/column
       pairing is irrelevant (refactorization reassigns rows), only the
       SET of basic columns matters. Remaining rows take their own slack
       when it starts feasible, their artificial otherwise — both keep
       the starting point feasible on rows the seed said nothing about. *)
    let rest = ref !var_cols in
    for i = 0 to m - 1 do
      if hint.(i) < 0 then (
        match !rest with
        | j :: tl ->
          hint.(i) <- j;
          rest := tl
        | [] -> ())
    done;
    for i = 0 to m - 1 do
      if hint.(i) < 0 then
        hint.(i) <-
          (match Std_form.slack_basic_of_row std i with
          | Some j when (not used.(j)) && t.rhs_pert.(i) >= 0. ->
            used.(j) <- true;
            j
          | Some _ | None -> t.n_struct + i)
    done;
    Array.blit hint 0 t.basis 0 m;
    Array.fill t.in_basis 0 t.n_total false;
    Array.iter (fun c -> t.in_basis.(c) <- true) t.basis;
    refactor t;
    (* Unclamped basic values: restoration must see the infeasibilities
       the seeded basis has at the new right-hand side. *)
    Array.blit t.rhs_pert 0 t.xb 0 m;
    ftran_apply t t.xb;
    let infeasible = ref 0 in
    for i = 0 to m - 1 do
      if t.xb.(i) < -1e-9 then incr infeasible
    done;
    let cap = 200 + (8 * !infeasible) in
    if not (restore_feasibility t ~max_pivots:cap) then begin
      Log.debug (fun f ->
          f "seeded prepare: feasibility restoration failed (%d infeasible \
             rows); falling back to cold phase 1"
            !infeasible);
      cold ~fallback:true ()
    end
    else begin
      for i = 0 to m - 1 do
        if t.xb.(i) < 0. then t.xb.(i) <- 0.
      done;
      (* A short phase 1 clears the artificial mass of rows the seed left
         to their artificials; with none basic it terminates on the first
         pricing pass. *)
      let cost_of j = if j >= t.n_struct then 1. else 0. in
      let stall_limit = max 5_000 (20 * m) in
      match run_phase t ~cost_of ~max_iter:max_iter_v ~stall_limit with
      | R_optimal, _ ->
        if artificial_mass t > 1e-6 then cold ~fallback:true ()
        else begin
          finalize_phase1 t;
          Ok (t, true)
        end
      | (R_limit | R_unbounded), _ -> cold ~fallback:true ()
    end
  end

let prepare_seeded ?max_iter ?pert_scale ~seeds model =
  Span.with_ "revised.phase1" (fun () ->
      prepare_seeded_unspanned ?max_iter ?pert_scale ~seeds model)

(* ------------------------------------------------------------------ *)
(* Phase 2                                                             *)
(* ------------------------------------------------------------------ *)

(* Post-solve iterative refinement. The reported basic values are
   x = B⁻¹b computed through the eta file; on an ill-conditioned final
   basis the FTRAN alone can miss the true system B·x = b by far more
   than the certificate tolerance (the fleet's hard models reach ~1e-2).
   The exact residual r = b − B·x is one sparse pass over the basic
   columns, and the correction δ = B⁻¹r one more FTRAN through the
   already-built factorization — one or two rounds recover the digits
   conditioning took away, at a cost that is noise next to the solve. *)

(* r <- rhs − B·x, where column i of B is A_{basis(i)}. *)
let primal_residual_into t ~rhs x r =
  Array.blit rhs 0 r 0 t.m;
  for i = 0 to t.m - 1 do
    let xi = x.(i) in
    if xi <> 0. then begin
      let c = t.basis.(i) in
      if c < t.n_struct then
        Csr.iter_row t.cols c (fun row v -> r.(row) <- r.(row) -. (v *. xi))
      else begin
        let row = t.art_row.(c - t.n_struct) in
        r.(row) <- r.(row) -. (t.art_sign.(row) *. xi)
      end
    end
  done

(* Residuals already at roundoff are left alone — correcting them just
   stirs noise. *)
let refine_floor = 1e-12

(* Refine x (≈ B⁻¹ rhs) in place; returns the residual ‖b − B·x‖∞ found
   at the reported point before any correction. *)
let refine_basic ?(rounds = 2) t ~rhs x =
  let r = Array.make t.m 0. in
  let first = ref 0. in
  (try
     for round = 1 to rounds do
       primal_residual_into t ~rhs x r;
       let worst = ref 0. in
       for i = 0 to t.m - 1 do
         let a = Float.abs r.(i) in
         if a > !worst then worst := a
       done;
       if round = 1 then first := !worst;
       if !worst <= refine_floor then raise Exit;
       ftran_apply t r;
       for i = 0 to t.m - 1 do
         x.(i) <- x.(i) +. r.(i)
       done
     done
   with Exit -> ());
  !first

(* Same story for the duals: r = c_B − Bᵀy (one sparse pass), correction
   δ = B⁻ᵀr (one BTRAN). *)
let refine_duals ?(rounds = 2) t ~cost_of y =
  let r = Array.make t.m 0. in
  try
    for _ = 1 to rounds do
      let worst = ref 0. in
      for i = 0 to t.m - 1 do
        let c = t.basis.(i) in
        let dot = ref 0. in
        if c < t.n_struct then
          Csr.iter_row t.cols c (fun row v -> dot := !dot +. (v *. y.(row)))
        else begin
          let row = t.art_row.(c - t.n_struct) in
          dot := t.art_sign.(row) *. y.(row)
        end;
        let ri = cost_of c -. !dot in
        r.(i) <- ri;
        let a = Float.abs ri in
        if a > !worst then worst := a
      done;
      if !worst <= refine_floor then raise Exit;
      btran_apply t r;
      for i = 0 to t.m - 1 do
        y.(i) <- y.(i) +. r.(i)
      done
    done
  with Exit -> ()

(* A pre-refinement residual above this would have put the certificate
   (primal tolerance 1e-5) at risk — record it as a [Refined] rescue so
   the ledger shows which solves refinement actually saved. *)
let refine_rescue_threshold = 1e-6

let optimize_unspanned ?max_iter t direction objective =
  Metrics.inc m_solves;
  let warm = t.solves > 0 in
  if warm then Metrics.inc m_warm;
  let max_iter =
    match max_iter with
    | Some k -> k
    | None -> 50_000 + (50 * (t.m + t.n_struct))
  in
  let sign = match direction with Simplex.Minimize -> 1. | Simplex.Maximize -> -1. in
  let c = Std_form.costs t.std ~sign objective in
  let cost_of j = if j < t.n_struct then c.(j) else 0. in
  let stall_limit = max 5_000 (20 * t.m) in
  let status, iterations = run_phase t ~cost_of ~max_iter ~stall_limit in
  t.solves <- t.solves + 1;
  if warm then Metrics.observe m_warm_pivots (float_of_int iterations);
  Metrics.set m_eta_nnz (float_of_int t.eta_nnz);
  match status with
  | R_limit -> Simplex.Iteration_limit
  | R_unbounded -> Simplex.Unbounded
  | R_optimal ->
    (* Feasibility witness: the final basis applied to the PERTURBED
       right-hand side.  Primal-feasible by the simplex invariant, so it
       satisfies the true constraints up to the perturbation magnitude
       itself — immune to the conditioning amplification that can push
       the exact point [x_true] off non-binding degenerate rows.  A fresh
       FTRAN (rather than the incrementally-updated [t.xb]) avoids the
       clamping noise accumulated along the pivot trajectory. *)
    let x_wit = Array.copy t.rhs_pert in
    ftran_apply t x_wit;
    (* The simplex invariant puts every basic value above -tol_feas; a
       witness entry meaningfully below zero means the eta file itself
       has drifted (an ill-conditioned stretch of the trajectory), and
       BOTH reported points would inherit the error through their FTRANs.
       Rebuilding the factorization of the same basis — the basis is
       optimal regardless of how B⁻¹ is represented — washes the drift
       out before anything is extracted or certified. *)
    let wit_min = ref 0. in
    for i = 0 to t.m - 1 do
      if x_wit.(i) < !wit_min then wit_min := x_wit.(i)
    done;
    if !wit_min < -1e-7 then begin
      Log.debug (fun f ->
          f "optimize: witness drift %g at the final basis; refactorizing"
            !wit_min);
      refactor t;
      Array.blit t.rhs_pert 0 x_wit 0 t.m;
      ftran_apply t x_wit
    end;
    (* Cheap one-sided condition estimate of the final basis:
       ‖B‖₁ · ‖B⁻¹·1‖∞ ≤ ‖B‖₁‖B⁻¹‖∞ = cond(B) up to the norm mismatch.
       One pass over the basic columns plus one FTRAN of the ones
       vector — O(nnz(B) + eta nnz) per solve, never per pivot. *)
    (let norm1 = ref 0. in
     for i = 0 to t.m - 1 do
       let c = t.basis.(i) in
       let s = ref 0. in
       if c < t.n_struct then
         Csr.iter_row t.cols c (fun _ v -> s := !s +. Float.abs v)
       else s := 1.;
       if !s > !norm1 then norm1 := !s
     done;
     let z = Array.make t.m 1. in
     ftran_apply t z;
     let ninf = ref 0. in
     for i = 0 to t.m - 1 do
       let a = Float.abs z.(i) in
       if a > !ninf then ninf := a
     done;
     Health.observe_condition (!norm1 *. !ninf));
    (* Exact basic values at the final basis: x = B⁻¹ b with the true
       right-hand side, keeping reported point and objective free of the
       anti-degeneracy perturbation. *)
    let x_true = Array.copy t.std.Std_form.rhs in
    ftran_apply t x_true;
    (* Iterative refinement of both reported points (exact and witness)
       through the final factorization, before anything is extracted or
       certified. *)
    let pre_true = refine_basic t ~rhs:t.std.Std_form.rhs x_true in
    let pre_wit = refine_basic t ~rhs:t.rhs_pert x_wit in
    let pre = Float.max pre_true pre_wit in
    Health.observe_refinement ~residual:pre;
    if pre > refine_rescue_threshold then Health.observe_rescue Health.Refined;
    let x_std = Array.make t.n_struct 0. in
    let w_std = Array.make t.n_struct 0. in
    for i = 0 to t.m - 1 do
      if t.basis.(i) < t.n_struct then begin
        x_std.(t.basis.(i)) <- x_true.(i);
        w_std.(t.basis.(i)) <- Float.max 0. x_wit.(i)
      end
    done;
    let values = Std_form.extract t.std x_std in
    let witness = Std_form.extract t.std w_std in
    let objective_value = Std_form.objective_value objective values in
    (* Duals y = B⁻ᵀ c_B, restored to the original row orientation and
       optimization direction. *)
    let y = Array.make t.m 0. in
    for i = 0 to t.m - 1 do
      y.(i) <- cost_of t.basis.(i)
    done;
    btran_apply t y;
    refine_duals t ~cost_of y;
    let duals =
      Array.init t.std.Std_form.nrows_model (fun i ->
          sign *. t.std.Std_form.row_signs.(i) *. y.(i))
    in
    Simplex.Optimal
      { objective = objective_value; values; witness; duals; iterations }

let optimize ?max_iter t direction objective =
  Span.with_ "revised.phase2" (fun () ->
      optimize_unspanned ?max_iter t direction objective)

let solve ?max_iter model direction objective =
  match prepare ?max_iter model with
  | Error Simplex.Infeasible_phase1 -> Simplex.Infeasible
  | Error (Simplex.Iteration_limit_phase1 _) -> Simplex.Iteration_limit
  | Ok t -> optimize ?max_iter t direction objective

(* ------------------------------------------------------------------ *)
(* Introspection and reinversion tuning                                *)
(* ------------------------------------------------------------------ *)

type stats = {
  refactorizations : int;
  pivots : int;
  eta_nnz : int;
  solves : int;
  refactor_stability : int;
  refactor_growth : int;
  refactor_drift : int;
  refactor_backstop : int;
}

let stats t =
  {
    refactorizations = t.n_refactors;
    pivots = t.n_pivots;
    eta_nnz = t.eta_nnz;
    solves = t.solves;
    refactor_stability = t.n_refactor_stability;
    refactor_growth = t.n_refactor_growth;
    refactor_drift = t.n_refactor_drift;
    refactor_backstop = t.n_refactor_backstop;
  }

let force_refactor t = refactor t

let set_reinversion ?growth_limit ?drift_tol ?check_interval ?pivot_backstop t =
  Option.iter (fun v -> t.growth_limit <- v) growth_limit;
  Option.iter (fun v -> t.drift_tol <- v) drift_tol;
  Option.iter (fun v -> t.check_interval <- v) check_interval;
  Option.iter (fun v -> t.pivot_backstop <- v) pivot_backstop
