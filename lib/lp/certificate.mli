(** Machine-checked optimality certificates for LP solutions.

    The bound analysis promises that every reported interval brackets
    the exact value. That promise rests on each underlying LP solve
    returning a genuinely optimal point — which the simplex backends
    assert only implicitly, through their own termination tests. This
    module re-derives the evidence from the final primal/dual iterates,
    independently of either backend:

    - {b primal residual} — worst absolute constraint violation
      [‖Ax − b‖∞] over rows (by sense) and variable bounds;
    - {b dual violation} — worst violation of dual feasibility: row
      multipliers with the wrong sign for their sense, and reduced
      costs that no finite variable bound can absorb (normalized by
      the magnitude of the cost and dual vectors);
    - {b complementary-slackness gap} — worst product of a multiplier
      with its constraint slack, and of a reduced cost with the
      distance from its variable to the justifying bound (normalized
      as above, and by the magnitude of the point).

    All three vanish at an exact optimum; together they certify
    optimality up to the stated magnitudes. The checks are pure
    arithmetic over the {!Lp_model} — no solver internals — so they
    validate the dense and revised backends alike.

    Primal quantities (residual, complementarity) depend on where they
    are measured. {!compute} evaluates them at the reported optimal
    point [values] — exact for the unperturbed right-hand side, and
    certifying to near machine precision on well-conditioned bases.
    {!check} falls back to the solution's feasibility {e witness}
    ({!Simplex.solution.witness}) when the exact point fails: on an
    ill-conditioned basis the exact point can sit off non-binding
    degenerate rows by conditioning × perturbation, while the witness's
    error is bounded by the solver's own perturbation and
    accepted-infeasibility budget regardless of conditioning. Dual
    feasibility depends only on the multipliers, never on the point. *)

type t = {
  primal_residual : float;
  dual_violation : float;
  comp_slack : float;
}

val compute :
  Lp_model.t ->
  Simplex.direction ->
  objective:(Lp_model.var * float) list ->
  Simplex.solution ->
  t
(** Derive the certificate for a claimed-optimal solution of
    [direction objective] over the model, with primal quantities
    evaluated at the reported point [values]. Duplicate objective terms
    are summed, matching {!Lp_model.add_row} semantics. *)

type failure = {
  certificate : t;  (** the full certificate that failed *)
  quantity : string;
      (** which component exceeded tolerance:
          ["primal_residual"], ["dual_violation"] or ["comp_slack"] *)
  value : float;
  tolerance : float;
}

val failure_to_string : failure -> string

val default_tol_primal : float
(** [1e-5] — default primal tolerance of {!check}, exposed so ledger
    records and diagnostics quote the same number the gate uses. *)

val default_tol_dual : float
(** [1e-6] *)

val default_tol_comp : float
(** [1e-6] *)

val check :
  ?tol_primal:float ->
  ?tol_dual:float ->
  ?tol_comp:float ->
  Lp_model.t ->
  Simplex.direction ->
  objective:(Lp_model.var * float) list ->
  Simplex.solution ->
  (t, failure) result
(** {!compute}, then compare each component against its tolerance.
    Primal is absolute (default [1e-5] — the solvers' accepted
    transient-infeasibility budget: Harris ratio-test slack and
    per-pivot clamps accumulated between refactorizations, all at or
    below 1e-7, plus the 1e-8-scale anti-degeneracy perturbation); dual
    and complementarity are relative to problem magnitude as described
    above (default [1e-6]). If the certificate at the exact point
    fails, the solution's feasibility witness is judged instead; the
    returned certificate (or failure) is the witness's in that case.
    Failures report the first component exceeding tolerance, in the
    order primal, dual, complementarity. *)
