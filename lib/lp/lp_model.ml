module Csr = Mapqn_sparse.Csr

type var = int
type sense = Le | Ge | Eq

(* Rows are stored CSR-style as they are emitted: one flat (col, coef)
   buffer plus per-row offsets, with the per-row metadata (sense, rhs,
   name) in parallel growable arrays. The constraint generators emit
   hundreds of thousands of terms for large (M, N, H); storing them
   directly in flat buffers keeps the build allocation-free per term and
   hands the revised simplex its matrix without a list traversal. *)
type t = {
  mutable nvars : int;
  mutable names : string array;
  mutable lbs : float array;
  mutable ubs : float array;
  (* term buffer *)
  mutable term_col : int array;
  mutable term_val : float array;
  mutable nterms : int;
  (* row buffer; row i owns terms [row_ptr.(i), row_ptr.(i+1)) *)
  mutable row_ptr : int array; (* length >= nrows + 1 *)
  mutable row_sense : sense array;
  mutable row_rhs : float array;
  mutable row_name : string array;
  mutable nrows : int;
  mutable frozen_csr : Csr.t option;
}

let create () =
  {
    nvars = 0;
    names = [||];
    lbs = [||];
    ubs = [||];
    term_col = [||];
    term_val = [||];
    nterms = 0;
    row_ptr = [| 0 |];
    row_sense = [||];
    row_rhs = [||];
    row_name = [||];
    nrows = 0;
    frozen_csr = None;
  }

let grow_to arr used needed fill =
  let cap = Array.length arr in
  if needed <= cap then arr
  else begin
    let arr' = Array.make (max needed (max 16 (2 * cap))) fill in
    Array.blit arr 0 arr' 0 used;
    arr'
  end

let add_var ?name ?(lb = 0.) ?(ub = infinity) t =
  if lb > ub then invalid_arg "Lp_model.add_var: lb > ub";
  let id = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  t.names <- grow_to t.names id (id + 1) "";
  t.lbs <- grow_to t.lbs id (id + 1) 0.;
  t.ubs <- grow_to t.ubs id (id + 1) 0.;
  t.names.(id) <- name;
  t.lbs.(id) <- lb;
  t.ubs.(id) <- ub;
  t.nvars <- id + 1;
  id

let add_row ?name t terms sense rhs =
  let k = List.length terms in
  t.term_col <- grow_to t.term_col t.nterms (t.nterms + k) 0;
  t.term_val <- grow_to t.term_val t.nterms (t.nterms + k) 0.;
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= t.nvars then invalid_arg "Lp_model.add_row: unknown var";
      t.term_col.(t.nterms) <- v;
      t.term_val.(t.nterms) <- c;
      t.nterms <- t.nterms + 1)
    terms;
  let i = t.nrows in
  let rname = match name with Some n -> n | None -> Printf.sprintf "r%d" i in
  t.row_ptr <- grow_to t.row_ptr (i + 1) (i + 2) 0;
  t.row_sense <- grow_to t.row_sense i (i + 1) Eq;
  t.row_rhs <- grow_to t.row_rhs i (i + 1) 0.;
  t.row_name <- grow_to t.row_name i (i + 1) "";
  t.row_ptr.(i + 1) <- t.nterms;
  t.row_sense.(i) <- sense;
  t.row_rhs.(i) <- rhs;
  t.row_name.(i) <- rname;
  t.nrows <- i + 1;
  t.frozen_csr <- None

let num_vars t = t.nvars
let num_rows t = t.nrows
let num_nonzeros t = t.nterms

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Lp_model.var_name";
  t.names.(v)

let var_bounds t v =
  if v < 0 || v >= t.nvars then invalid_arg "Lp_model.var_bounds";
  (t.lbs.(v), t.ubs.(v))

let var_of_int t i =
  if i < 0 || i >= t.nvars then invalid_arg "Lp_model.var_of_int";
  i

let row_terms t i =
  if i < 0 || i >= t.nrows then invalid_arg "Lp_model.row_terms";
  let rec go k acc =
    if k < t.row_ptr.(i) then acc
    else go (k - 1) ((t.term_col.(k), t.term_val.(k)) :: acc)
  in
  go (t.row_ptr.(i + 1) - 1) []

let iter_row_terms t i f =
  if i < 0 || i >= t.nrows then invalid_arg "Lp_model.iter_row_terms";
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.term_col.(k) t.term_val.(k)
  done

let row_sense t i =
  if i < 0 || i >= t.nrows then invalid_arg "Lp_model.row_sense";
  t.row_sense.(i)

let row_rhs t i =
  if i < 0 || i >= t.nrows then invalid_arg "Lp_model.row_rhs";
  t.row_rhs.(i)

let row_name t i =
  if i < 0 || i >= t.nrows then invalid_arg "Lp_model.row_name";
  t.row_name.(i)

let rows_csr t =
  match t.frozen_csr with
  | Some c -> c
  | None ->
    if t.nrows = 0 || t.nvars = 0 then
      invalid_arg "Lp_model.rows_csr: empty model";
    let triplets = Array.make t.nterms (0, 0, 0.) in
    for i = 0 to t.nrows - 1 do
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        triplets.(k) <- (i, t.term_col.(k), t.term_val.(k))
      done
    done;
    let c = Csr.of_coo_array ~rows:t.nrows ~cols:t.nvars triplets in
    t.frozen_csr <- Some c;
    c

let rows t =
  List.init t.nrows (fun i ->
      (row_terms t i, t.row_sense.(i), t.row_rhs.(i), t.row_name.(i)))

let eval_row terms x =
  let acc = Mapqn_util.Ksum.create () in
  List.iter (fun (v, c) -> Mapqn_util.Ksum.add acc (c *. x.(v))) terms;
  Mapqn_util.Ksum.total acc

let pp fmt t =
  Format.fprintf fmt "@[<v>lp model: %d variables, %d rows@," t.nvars t.nrows;
  for v = 0 to t.nvars - 1 do
    if t.lbs.(v) <> 0. || t.ubs.(v) <> infinity then
      Format.fprintf fmt "  %g <= %s <= %g@," t.lbs.(v) (var_name t v) t.ubs.(v)
  done;
  for i = 0 to t.nrows - 1 do
    Format.fprintf fmt "  %s: " t.row_name.(i);
    List.iteri
      (fun j (v, c) ->
        if j > 0 then Format.fprintf fmt " + ";
        Format.fprintf fmt "%g %s" c (var_name t v))
      (row_terms t i);
    let op = match t.row_sense.(i) with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
    Format.fprintf fmt " %s %g@," op t.row_rhs.(i)
  done;
  Format.fprintf fmt "@]"

let check_feasible ?(tol = 1e-7) t x =
  if Array.length x <> t.nvars then Error "point dimension mismatch"
  else begin
    let violation = ref None in
    Array.iteri
      (fun i xi ->
        if !violation = None && (xi < t.lbs.(i) -. tol || xi > t.ubs.(i) +. tol)
        then
          violation :=
            Some
              (Printf.sprintf "variable %s = %g outside [%g, %g]" (var_name t i)
                 xi t.lbs.(i) t.ubs.(i)))
      x;
    for i = 0 to t.nrows - 1 do
      if !violation = None then begin
        let acc = Mapqn_util.Ksum.create () in
        let scale = ref 1. in
        iter_row_terms t i (fun v c ->
            Mapqn_util.Ksum.add acc (c *. x.(v));
            scale := Float.max !scale (Float.abs c));
        let lhs = Mapqn_util.Ksum.total acc in
        (* Scale the tolerance with the row magnitude so that rows with
           large coefficients (e.g. population constraints at big N) are
           not spuriously flagged. *)
        let tol = tol *. !scale in
        let rhs = t.row_rhs.(i) in
        let bad =
          match t.row_sense.(i) with
          | Le -> lhs > rhs +. tol
          | Ge -> lhs < rhs -. tol
          | Eq -> Float.abs (lhs -. rhs) > tol
        in
        if bad then
          violation :=
            Some
              (Printf.sprintf "row %s: lhs = %.12g, rhs = %.12g" t.row_name.(i)
                 lhs rhs)
      end
    done;
    match !violation with None -> Ok () | Some msg -> Error msg
  end
