(** Linear-program builder.

    A thin mutable builder for problems of the form

    {v  optimize  c'x   subject to   a_r x {<=,=,>=} b_r,   l <= x <= u  v}

    The bound-analysis layer builds one model per (network, population) and
    then optimizes many objectives over it, so the builder is separate from
    the solvers ({!Simplex}, {!Revised}).

    Rows are stored sparsely in flat compressed buffers as they are
    emitted; {!rows_csr} exposes the constraint matrix directly as a
    {!Mapqn_sparse.Csr.t} without an intermediate list representation,
    which is what the revised simplex consumes. *)

type t

type var = private int
(** Variable handle; also the index into solution arrays. *)

type sense = Le | Ge | Eq

val create : unit -> t

val add_var : ?name:string -> ?lb:float -> ?ub:float -> t -> var
(** New variable with bounds [lb <= x <= ub]; defaults [lb = 0.],
    [ub = infinity]. [lb = neg_infinity] makes the variable free.
    Raises [Invalid_argument] when [lb > ub]. *)

val add_row : ?name:string -> t -> (var * float) list -> sense -> float -> unit
(** Add the constraint [sum coeff_i * x_i  sense  rhs]. Terms on the same
    variable are summed. *)

val num_vars : t -> int
val num_rows : t -> int

val num_nonzeros : t -> int
(** Stored coefficient count across all rows (before duplicate-term
    merging) — the size handed to the sparse solver. *)

val var_name : t -> var -> string
val var_bounds : t -> var -> float * float
val var_of_int : t -> int -> var
(** Recover a handle from an index (bounds-checked). *)

(** {1 Row access}

    Rows are indexed [0 .. num_rows - 1] in insertion order. *)

val row_terms : t -> int -> (var * float) list
val iter_row_terms : t -> int -> (var -> float -> unit) -> unit
val row_sense : t -> int -> sense
val row_rhs : t -> int -> float
val row_name : t -> int -> string

val rows_csr : t -> Mapqn_sparse.Csr.t
(** The [num_rows × num_vars] coefficient matrix in CSR form (duplicate
    terms summed, explicit zeros dropped). Cached until the next
    {!add_row}. Raises [Invalid_argument] on an empty model. *)

val rows : t -> ((var * float) list * sense * float * string) list
(** All rows, in insertion order (list view of the row accessors). *)

val eval_row : (var * float) list -> float array -> float
(** Evaluate a linear form at a point (indexed by variable). *)

val pp : Format.formatter -> t -> unit
(** Render the model in a human-readable LP-like format (variables with
    non-default bounds, then one line per row) — a debugging aid for
    inspecting generated constraint systems. *)

val check_feasible : ?tol:float -> t -> float array -> (unit, string) result
(** Verify a candidate point satisfies all rows and bounds within [tol]
    (default 1e-7). Returns a description of the first violated
    constraint. Used by tests to validate that exact aggregated
    distributions are feasible for the bound LPs. *)
