(** Revised simplex with a sparse constraint matrix and an eta-file basis.

    The production LP backend. Where {!Simplex} expands the constraints
    into a dense [m × n] tableau and touches all of it on every pivot,
    this solver stores the standard-form matrix once in CSR (column-major
    through {!Std_form.cols}) and maintains only the basis inverse as a
    product of eta matrices:

    - pricing computes reduced costs [d_j = c_j − y·A_j] against the
      sparse columns ({!Mapqn_sparse.Csr.dot_row});
    - FTRAN/BTRAN apply the eta file in O(eta nonzeros);
    - the file is periodically rebuilt from identity (refactorization) to
      bound its growth and wash out roundoff.

    Per-pivot work is O(nnz(A) + eta nonzeros) instead of O(m·n), and
    memory O(nnz) instead of O(m·n) — the difference between solving the
    marginal-balance LPs at population 500 in milliseconds and not fitting
    their tableau in memory at all.

    The prepared state is mutable and supports {b warm starts}: each
    {!optimize} reoptimizes from the basis left by the previous call,
    which for the closely-related objectives of a bound sweep typically
    needs a handful of pivots instead of a full phase 2. The
    anti-degeneracy perturbation is fixed at {!prepare} time so every
    basis reached remains primal-feasible for every later objective.

    Directions, outcomes and preparation errors are shared with
    {!Simplex}, so callers can switch backends without translation. *)

type t
(** A prepared (phase-1 feasible) solver state for one model. Mutable:
    {!optimize} moves the basis. *)

val prepare :
  ?max_iter:int ->
  ?pert_scale:float ->
  ?salt:int ->
  Lp_model.t ->
  (t, Simplex.prepare_error) result
(** Run phase 1. Default [max_iter] is [50_000 + 50 * (rows + vars)].

    [pert_scale] (default [1.]) multiplies the anti-degeneracy
    perturbation globally, on top of the built-in per-row scaling (row
    coefficient norm × a sqrt(rows) size factor) — the certificate
    rescue ladder re-prepares at tighter scales. [salt] (default [0])
    is the base of the perturbation-retry ladder: a nonzero base draws
    an entirely different perturbation, so a cold re-solve explores a
    genuinely different degenerate trajectory. *)

val pert_scale : t -> float
(** The [pert_scale] this state was prepared with. *)

val optimize :
  ?max_iter:int ->
  t ->
  Simplex.direction ->
  (Lp_model.var * float) list ->
  Simplex.outcome
(** Run phase 2 for one objective, warm-starting from the basis of the
    previous call (or the phase-1 basis on the first call). The final
    basis is kept for the next objective. *)

val reset : t -> unit
(** Forget warm-start state: restore the phase-1 basis. The next
    {!optimize} prices from scratch. *)

(** {1 Cross-model warm starts}

    A population sweep solves a chain of closely related models: the
    constraint matrix at population [N+1] extends the one at [N]. The
    final basis of one model, described in model terms (variables and row
    names rather than raw column indices), seeds phase 1 of the next:
    {!prepare_seeded} maps the seed onto the new standard form, restores
    primal feasibility with a bounded dual-simplex-style repair, and
    falls back to a cold {!prepare} whenever the seed does not take. *)

(** One basic column, in model terms: a model variable (by index into the
    NEW model — the caller translates structural roles between models) or
    the slack of a model row (by row index in the new model). *)
type seed = Seed_var of int | Seed_slack of int

val basis_seeds : ?phase1:bool -> t -> seed list
(** The current basis as seeds in this model's own terms (variable
    indices and row indices of the model [t] was prepared for).
    Artificial columns are omitted. [~phase1:true] reads the feasible
    basis recorded at the end of phase 1 instead of the current one.
    (Measured on the Figure-4 sweep: the default — the optimum of the
    last-priced objective — seeds the next population reliably, while
    the phase-1 vertex tends not to take and falls back cold; it is
    kept for experimentation.) *)

val prepare_seeded :
  ?max_iter:int ->
  ?pert_scale:float ->
  seeds:seed list ->
  Lp_model.t ->
  (t * bool, Simplex.prepare_error) result
(** Phase 1 warm-started from a seed basis (already translated into the
    new model's terms). The returned flag is [true] when the seed was
    used and [false] when the preparation fell back to a cold phase 1
    (empty seed, failed feasibility restoration, residual artificial
    mass). Either way the result satisfies exactly the invariants of
    {!prepare} — callers cannot observe the difference except through
    timing and {!stats}. *)

(** {1 Introspection and reinversion tuning} *)

type stats = {
  refactorizations : int;  (** basis refactorizations over this state's life *)
  pivots : int;  (** simplex pivots over this state's life *)
  eta_nnz : int;  (** current eta-file nonzeros *)
  solves : int;  (** phase-2 optimizations since the last {!reset} *)
  refactor_stability : int;
      (** reinversions forced by the small-pivot stability trigger *)
  refactor_growth : int;  (** reinversions from eta-file growth *)
  refactor_drift : int;  (** reinversions from sampled eta-chain drift *)
  refactor_backstop : int;  (** reinversions from the pivot-count backstop *)
}

val stats : t -> stats

val force_refactor : t -> unit
(** Rebuild the eta file of the current basis immediately. The
    represented basis (and therefore every subsequent solution) is
    unchanged — exposed so tests can check that incremental eta updates
    and a fresh factorization agree. *)

val set_reinversion :
  ?growth_limit:float ->
  ?drift_tol:float ->
  ?check_interval:int ->
  ?pivot_backstop:int ->
  t ->
  unit
(** Tune the adaptive reinversion policy. [growth_limit] (default 4.0)
    refactorizes when the eta file exceeds that multiple of the last
    factorization's size; [drift_tol] (default 1e-6) bounds the
    divergence between incrementally updated basic values and a fresh
    FTRAN of the right-hand side, checked every [check_interval]
    (default 128) pivots; [pivot_backstop] (default 5000) is a hard cap
    on pivots between refactorizations. Lowering [drift_tol] to [0.]
    forces a refactorization at every check — the stability-trigger
    test hook. *)

val solve :
  ?max_iter:int ->
  Lp_model.t ->
  Simplex.direction ->
  (Lp_model.var * float) list ->
  Simplex.outcome
(** One-shot [prepare] + [optimize]. *)
