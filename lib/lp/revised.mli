(** Revised simplex with a sparse constraint matrix and an eta-file basis.

    The production LP backend. Where {!Simplex} expands the constraints
    into a dense [m × n] tableau and touches all of it on every pivot,
    this solver stores the standard-form matrix once in CSR (column-major
    through {!Std_form.cols}) and maintains only the basis inverse as a
    product of eta matrices:

    - pricing computes reduced costs [d_j = c_j − y·A_j] against the
      sparse columns ({!Mapqn_sparse.Csr.dot_row});
    - FTRAN/BTRAN apply the eta file in O(eta nonzeros);
    - the file is periodically rebuilt from identity (refactorization) to
      bound its growth and wash out roundoff.

    Per-pivot work is O(nnz(A) + eta nonzeros) instead of O(m·n), and
    memory O(nnz) instead of O(m·n) — the difference between solving the
    marginal-balance LPs at population 500 in milliseconds and not fitting
    their tableau in memory at all.

    The prepared state is mutable and supports {b warm starts}: each
    {!optimize} reoptimizes from the basis left by the previous call,
    which for the closely-related objectives of a bound sweep typically
    needs a handful of pivots instead of a full phase 2. The
    anti-degeneracy perturbation is fixed at {!prepare} time so every
    basis reached remains primal-feasible for every later objective.

    Directions, outcomes and preparation errors are shared with
    {!Simplex}, so callers can switch backends without translation. *)

type t
(** A prepared (phase-1 feasible) solver state for one model. Mutable:
    {!optimize} moves the basis. *)

val prepare : ?max_iter:int -> Lp_model.t -> (t, Simplex.prepare_error) result
(** Run phase 1. Default [max_iter] is [50_000 + 50 * (rows + vars)]. *)

val optimize :
  ?max_iter:int ->
  t ->
  Simplex.direction ->
  (Lp_model.var * float) list ->
  Simplex.outcome
(** Run phase 2 for one objective, warm-starting from the basis of the
    previous call (or the phase-1 basis on the first call). The final
    basis is kept for the next objective. *)

val reset : t -> unit
(** Forget warm-start state: restore the phase-1 basis. The next
    {!optimize} prices from scratch. *)

val solve :
  ?max_iter:int ->
  Lp_model.t ->
  Simplex.direction ->
  (Lp_model.var * float) list ->
  Simplex.outcome
(** One-shot [prepare] + [optimize]. *)
