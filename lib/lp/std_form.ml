module Csr = Mapqn_sparse.Csr

type col_origin =
  | Shifted of { var : int; lb : float } (* x = lb + y *)
  | Negative_part of { var : int } (* free vars: x = y⁺ - y⁻; this is y⁻ *)
  | Slack

type t = {
  ncols : int;
  origins : col_origin array;
  rows : Csr.t;
  rhs : float array;
  row_signs : float array;
  nvars_model : int;
  nrows_model : int;
  plus : int array;
  minus : int array;
  shift : float array;
  slack_cols : int array;  (* std row -> its slack column, -1 on equalities *)
  slack_rows : int array;  (* std column -> the row its slack serves, -1 *)
  mutable cols_cache : Csr.t option;
}

let num_rows t = Csr.nrows t.rows
let rows t = t.rows

let cols t =
  match t.cols_cache with
  | Some c -> c
  | None ->
    let c = Csr.transpose t.rows in
    t.cols_cache <- Some c;
    c

let build model =
  let nvars = Lp_model.num_vars model in
  let origins = ref [] in
  let ncols = ref 0 in
  let add_col origin =
    origins := origin :: !origins;
    incr ncols;
    !ncols - 1
  in
  (* plus.(v) is the main column of model var v; minus.(v) the negative part
     for free variables (-1 otherwise). shift.(v) is the lower bound folded
     into the column. *)
  let plus = Array.make nvars (-1) in
  let minus = Array.make nvars (-1) in
  let shift = Array.make nvars 0. in
  let extra_rows = ref [] in
  for v = 0 to nvars - 1 do
    let lb, ub = Lp_model.var_bounds model (Lp_model.var_of_int model v) in
    if lb = neg_infinity then begin
      plus.(v) <- add_col (Shifted { var = v; lb = 0. });
      minus.(v) <- add_col (Negative_part { var = v });
      if ub < infinity then
        extra_rows :=
          ([ (plus.(v), 1.); (minus.(v), -1.) ], Lp_model.Le, ub) :: !extra_rows
    end
    else begin
      plus.(v) <- add_col (Shifted { var = v; lb });
      shift.(v) <- lb;
      if ub < infinity then
        extra_rows := ([ (plus.(v), 1.) ], Lp_model.Le, ub -. lb) :: !extra_rows
    end
  done;
  let nrows_model = Lp_model.num_rows model in
  let nrows = nrows_model + List.length !extra_rows in
  (* Translate the model rows into standard-form triplets, folding
     lower-bound shifts into the right-hand side, attaching slack/surplus
     columns and normalizing signs so rhs >= 0. Duplicate model terms on
     one variable are merged by the Csr constructor. *)
  let triplets = ref [] in
  let rhs = Array.make nrows 0. in
  let row_signs = Array.make nrows 1. in
  let slack_cols = Array.make nrows (-1) in
  let emit_row i terms sense rhs_val =
    let terms =
      match sense with
      | Lp_model.Eq -> terms
      | Lp_model.Le | Lp_model.Ge ->
        let j = add_col Slack in
        slack_cols.(i) <- j;
        (j, (match sense with Lp_model.Le -> 1. | _ -> -1.)) :: terms
    in
    let terms, rhs_val, sign =
      if rhs_val < 0. then
        (List.map (fun (c, v) -> (c, -.v)) terms, -.rhs_val, -1.)
      else (terms, rhs_val, 1.)
    in
    List.iter (fun (j, v) -> if v <> 0. then triplets := (i, j, v) :: !triplets) terms;
    rhs.(i) <- rhs_val;
    row_signs.(i) <- sign
  in
  for i = 0 to nrows_model - 1 do
    let rhs_val = ref (Lp_model.row_rhs model i) in
    let terms = ref [] in
    Lp_model.iter_row_terms model i (fun v c ->
        let v = (v : Lp_model.var :> int) in
        rhs_val := !rhs_val -. (c *. shift.(v));
        terms := (plus.(v), c) :: !terms;
        if minus.(v) >= 0 then terms := (minus.(v), -.c) :: !terms);
    emit_row i !terms (Lp_model.row_sense model i) !rhs_val
  done;
  List.iteri
    (fun j (terms, sense, rhs_val) ->
      emit_row (nrows_model + j) terms sense rhs_val)
    (List.rev !extra_rows);
  let slack_rows = Array.make !ncols (-1) in
  Array.iteri (fun i j -> if j >= 0 then slack_rows.(j) <- i) slack_cols;
  {
    ncols = !ncols;
    origins = Array.of_list (List.rev !origins);
    rows = Csr.of_coo ~rows:nrows ~cols:!ncols !triplets;
    rhs;
    row_signs;
    nvars_model = nvars;
    nrows_model;
    plus;
    minus;
    shift;
    slack_cols;
    slack_rows;
    cols_cache = None;
  }

let costs t ~sign objective =
  let c = Array.make t.ncols 0. in
  List.iter
    (fun (v, coef) ->
      let v = (v : Lp_model.var :> int) in
      let coef = sign *. coef in
      c.(t.plus.(v)) <- c.(t.plus.(v)) +. coef;
      if t.minus.(v) >= 0 then c.(t.minus.(v)) <- c.(t.minus.(v)) -. coef)
    objective;
  c

let extract t x_std =
  let x = Array.make t.nvars_model 0. in
  Array.iteri
    (fun j origin ->
      match origin with
      | Shifted { var; lb } -> x.(var) <- x.(var) +. lb +. x_std.(j)
      | Negative_part { var } -> x.(var) <- x.(var) -. x_std.(j)
      | Slack -> ())
    t.origins;
  x

let slack_sign_of_row t i =
  let s = ref 0. in
  Csr.iter_row t.rows i (fun j v ->
      match t.origins.(j) with
      | Slack -> s := v
      | Shifted _ | Negative_part _ -> ());
  !s

let slack_basic_of_row t i =
  let found = ref None in
  Csr.iter_row t.rows i (fun j v ->
      if
        !found = None
        && (match t.origins.(j) with
           | Slack -> true
           | Shifted _ | Negative_part _ -> false)
        && Float.abs (v -. 1.) < 1e-12
      then found := Some j);
  !found

let slack_col_of_row t i = if t.slack_cols.(i) < 0 then None else Some t.slack_cols.(i)

let row_of_slack t j =
  if j < 0 || j >= t.ncols || t.slack_rows.(j) < 0 then None
  else Some t.slack_rows.(j)

let objective_value objective x =
  let acc = Mapqn_util.Ksum.create () in
  List.iter
    (fun (v, coef) ->
      Mapqn_util.Ksum.add acc (coef *. x.((v : Lp_model.var :> int))))
    objective;
  Mapqn_util.Ksum.total acc
