(** Append-only JSONL run ledger.

    One record per unit of solver work — a [Bounds.eval], a sweep step,
    a simulator run — carrying provenance (git SHA, model fingerprint,
    PRNG seed, solver configuration, warm/cold status) and outcome
    (bound values, pivot and refactorization deltas, phase timings, the
    certificate residual triple, and the {!Health} snapshot).

    The stream is crash-safe: the file is opened in append mode and
    flushed after every record, so the ledger of a killed sweep is
    intact up to the last completed unit and doubles as its checkpoint.
    {!load} skips a torn final line, mirroring
    [Progress.load_completed].

    Like {!Trace}, the writer is a process-global switch: the
    instrumented layers call {!record} unconditionally and it is a
    no-op until {!enable} opens a sink. The sink itself is
    mutex-guarded, so concurrent domains append whole records, never
    torn ones; per-domain provenance (model id, derived seed) rides in
    on the writer's current {!Run_ctx} overlay rather than the shared
    sink context. *)

(** {1 Writing} *)

type enable_error = [ `Already_enabled of string ]

val enable_error_to_string : enable_error -> string

val enable :
  ?context:(string * Json.t) list ->
  path:string ->
  unit ->
  (unit, enable_error) result
(** Open (append, create) [path] as the process ledger sink. [context]
    pairs are merged into every subsequent record (e.g. a model
    fingerprint or experiment name); a ["seed"] entry is surfaced as the
    record's top-level [seed] field. Replaces a previous sink on a
    {e different} path; enabling the path that is already the live sink
    is rejected with [`Already_enabled] (it would silently drop the
    sink's accumulated context and double-open the file) — {!disable}
    first to reopen deliberately. *)

val enable_exn : ?context:(string * Json.t) list -> path:string -> unit -> unit
(** {!enable}, raising [Invalid_argument] on [`Already_enabled]. *)

val disable : unit -> unit
(** Flush and close the sink; subsequent {!record}s are no-ops. *)

val is_enabled : unit -> bool

val path : unit -> string option
(** The sink path, when enabled. *)

val set_context : string -> Json.t -> unit
(** Set (or replace) one context pair on the live sink. No-op when
    disabled. *)

val record : event:string -> (string * Json.t) list -> unit
(** Append one record and flush. Every record carries [event], a wall
    clock [ts], the process [git_sha] (resolved once, [null] outside a
    checkout), [seed], then the body. The body merges, in increasing
    precedence: the sink context, the calling domain's
    {!Run_ctx.context} overlay, and [fields]. [seed] resolves as
    [fields] > overlay > the run context's own seed > sink context >
    [null]. No-op when disabled. *)

(** {1 Reading} *)

val load : string -> Json.t list
(** Parse a ledger file, skipping unparsable lines (notably the torn
    final line of a crashed run). A missing file is an empty ledger. *)

val event : Json.t -> string
(** The record's event name, [""] when absent. *)

val population : Json.t -> int
(** The record's population, [-1] when absent. *)

val summarize : Json.t list -> string
(** One table row per record: event, population, solver, duration,
    pivots, worst primal residual, commit. *)

(** {1 Diff} *)

type drift = {
  key : string;  (** "event N=pop #occurrence" *)
  bound_drift : float;  (** max |bound_a - bound_b| over shared metrics *)
  worst_metric : string;  (** metric attaining [bound_drift] *)
  duration_a : float;
  duration_b : float;
  pivots_a : float;
  pivots_b : float;
  fingerprint_changed : bool;
}

type diff_report = { matched : drift list; only_a : int; only_b : int }

val diff : Json.t list -> Json.t list -> diff_report
(** Match records of two runs by (event, population, occurrence index)
    and report bound-value and performance drift per matched pair. *)

val render_diff : diff_report -> string

(** {1 Doctor} *)

type severity = Info | Warn | Fail

type finding = {
  severity : severity;
  code : string;  (** stable machine-readable finding class *)
  where : string;  (** which record(s) *)
  detail : string;
}

val severity_to_string : severity -> string

val doctor :
  ?tol_primal:float ->
  ?tol_dual:float ->
  ?tol_comp:float ->
  Json.t list ->
  finding list
(** Scan solver records for numerical-trust hazards: certificate
    failures and near-misses (residual at ≥25% of tolerance), rescue
    outcomes (a record whose certificate initially failed but whose
    rescue-ladder rung repassed it is a Warn [cert-rescued], a rescue
    recorded with no failed check an Info, and an exhausted ladder a
    Fail [cert-uncertified]), drift-triggered reinversions, degeneracy
    stalls, perturbation-ladder retries, and the historical Fig-8
    signature — the worst certificate residual of the run sitting at
    the largest population. Tolerances default to the {!Certificate}
    defaults and are overridden per record when the record carries its
    own. *)

val render_findings : finding list -> string
