(** Phase-level profiling attribution on top of {!Span}.

    Enabling [Prof] does two things: hot-path instrumentation guarded by
    {!is_enabled} starts accumulating fine-grained phase timings
    (simplex price/ratio/update, constraint-row emission vs assembly,
    ...), and every span additionally records [Gc.quick_stat] deltas.
    When disabled (the default) neither costs anything on the pivot
    path — the guard is a single flag read with no clock call and no
    allocation.

    Attribution turns a span snapshot into per-path rows with self-time
    (self = total − Σ direct-children totals); the self column over all
    rows telescopes to the summed root totals, i.e. the measured wall
    time of the instrumented region. *)

val enable : unit -> unit
(** Turn on profiling: hot-path phase accumulation and per-span GC
    deltas (via [Span.set_gc_profiling]). *)

val disable : unit -> unit

val is_enabled : unit -> bool
(** Cheap global check for hot paths, mirroring [Trace.is_enabled]. *)

val now : unit -> float
(** Monotonic seconds — alias of [Span.now], for accumulating phase
    intervals by hand when [is_enabled ()]. *)

type row = {
  path : string list;  (** outermost span first *)
  count : int;
  total : float;  (** cumulative seconds, including children *)
  self : float;  (** seconds not attributed to any child span *)
  max_ : float;
  minor_words : float;  (** cumulative minor-heap words *)
  self_minor_words : float;  (** minor words not attributed to children *)
  major_words : float;
  promoted_words : float;
  compactions : int;
}

val attribution : ?entries:Span.entry list -> unit -> row list
(** Self-time attribution rows, sorted by self-time descending.
    [entries] defaults to [Span.snapshot ()] of the default collector. *)

val self_total : row list -> float
(** Σ self over the rows — equals Σ root totals for a full snapshot. *)

val diff : baseline:Span.entry list -> Span.entry list -> Span.entry list
(** [diff ~baseline current] subtracts [baseline] aggregates path by
    path and drops rows with no activity since, so one section of a
    longer run can be attributed without resetting the collector. *)

val render_table : ?limit:int -> row list -> string
(** Human-readable attribution table (phase / count / total / self / max
    / minor words). [limit] truncates to the first rows with a
    "(+ n more phases)" footer. *)

val folded : ?entries:Span.entry list -> unit -> string
(** Folded-stack export: one line per path, ["a;b;c <self-µs>"],
    consumable by flamegraph.pl / inferno / speedscope. *)

val parse_folded : string -> (string list * int) list
(** Parse {!folded} output back into (path, self-µs) pairs. Lines that
    do not parse are skipped. *)

val row_json : row -> Json.t
val to_json : ?limit:int -> row list -> Json.t
