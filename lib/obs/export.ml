type format = Table | Json | Json_lines | Prometheus

let format_names =
  [ ("table", Table); ("json", Json); ("jsonl", Json_lines); ("prometheus", Prometheus) ]

let format_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) format_names with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown metrics format %S (expected %s)" s
         (String.concat ", " (List.map fst format_names)))

let span_path path = String.concat "/" path

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

(* Minimal column alignment; Mapqn_util.Table is not used because this
   library sits below util in the dependency order (util itself may one
   day be instrumented). *)
let aligned rows =
  let widths =
    List.fold_left
      (fun ws row ->
        List.mapi
          (fun i cell ->
            let prev = try List.nth ws i with _ -> 0 in
            max prev (String.length cell))
          row)
      [] rows
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf cell;
          (* pad all but the last column *)
          if i < List.length row - 1 then
            Buffer.add_string buf
              (String.make (List.nth widths i - String.length cell) ' '))
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let num v =
  if Float.is_nan v then "nan"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Estimate a quantile from cumulative le-buckets by linear
   interpolation inside the bucket containing the target rank — the
   standard Prometheus histogram_quantile estimate. The +Inf bucket has
   no upper bound to interpolate toward, so it reports the last finite
   bound (the estimate saturates rather than invents a value). *)
let percentile (h : Metrics.histogram_data) q =
  if h.Metrics.count = 0 then Float.nan
  else begin
    let rank = q *. float_of_int h.Metrics.count in
    let buckets = h.Metrics.buckets in
    let n = Array.length buckets in
    let rec find i = if i >= n - 1 then i else
        let _, c = buckets.(i) in
        if float_of_int c >= rank then i else find (i + 1)
    in
    let i = find 0 in
    let le, c = buckets.(i) in
    if not (Float.is_finite le) then
      (* saturate at the last finite bound; with only the +Inf bucket
         nothing finite is known. *)
      if i = 0 then Float.nan else fst buckets.(i - 1)
    else begin
      let lower, prev_c = if i = 0 then (0., 0) else buckets.(i - 1) in
      let span = float_of_int (c - prev_c) in
      if span <= 0. then le
      else lower +. ((le -. lower) *. ((rank -. float_of_int prev_c) /. span))
    end
  end

let labels_cell labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)

let table ~metrics ~spans =
  let buf = Buffer.create 2048 in
  if metrics <> [] then begin
    let rows =
      [ "metric"; "labels"; "type"; "value" ]
      :: List.map
           (fun (s : Metrics.sample) ->
             let kind, v =
               match s.Metrics.value with
               | Metrics.Counter c -> ("counter", num c)
               | Metrics.Gauge g -> ("gauge", num g)
               | Metrics.Histogram h ->
                 let quantiles =
                   if h.Metrics.count = 0 then ""
                   else
                     Printf.sprintf " p50=%s p90=%s p99=%s"
                       (num (percentile h 0.50))
                       (num (percentile h 0.90))
                       (num (percentile h 0.99))
                 in
                 ( "histogram",
                   Printf.sprintf "count=%d sum=%s mean=%s%s" h.Metrics.count
                     (num h.Metrics.sum)
                     (num
                        (if h.Metrics.count = 0 then 0.
                         else h.Metrics.sum /. float_of_int h.Metrics.count))
                     quantiles )
             in
             [ s.Metrics.name; labels_cell s.Metrics.labels; kind; v ])
           metrics
    in
    Buffer.add_string buf (aligned rows)
  end;
  if spans <> [] then begin
    if metrics <> [] then Buffer.add_char buf '\n';
    (* The allocation column only appears when GC profiling recorded
       something, so unprofiled output is unchanged. *)
    let with_gc = List.exists (fun (e : Span.entry) -> e.Span.minor_words > 0.) spans in
    let rows =
      ([ "span"; "count"; "total"; "max" ] @ (if with_gc then [ "minor words" ] else []))
      :: List.map
           (fun (e : Span.entry) ->
             [
               span_path e.Span.path;
               string_of_int e.Span.count;
               Printf.sprintf "%.4fs" e.Span.total;
               Printf.sprintf "%.4fs" e.Span.max_;
             ]
             @ (if with_gc then [ num e.Span.minor_words ] else []))
           spans
    in
    Buffer.add_string buf (aligned rows)
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_num v =
  if Float.is_finite v then
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.12g" v
  else "null"

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_str k ^ ":" ^ json_str v) labels)
  ^ "}"

let json_metric (s : Metrics.sample) =
  let base =
    [
      ("name", json_str s.Metrics.name);
      ("labels", json_labels s.Metrics.labels);
    ]
  in
  let rest =
    match s.Metrics.value with
    | Metrics.Counter c -> [ ("type", json_str "counter"); ("value", json_num c) ]
    | Metrics.Gauge g -> [ ("type", json_str "gauge"); ("value", json_num g) ]
    | Metrics.Histogram h ->
      [
        ("type", json_str "histogram");
        ("count", string_of_int h.Metrics.count);
        ("sum", json_num h.Metrics.sum);
        ( "buckets",
          "["
          ^ String.concat ","
              (List.map
                 (fun (le, n) ->
                   Printf.sprintf "{\"le\":%s,\"count\":%d}"
                     (if Float.is_finite le then json_num le else "\"+Inf\"")
                     n)
                 (Array.to_list h.Metrics.buckets))
          ^ "]" )
      ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) (base @ rest))
  ^ "}"

let json_span (e : Span.entry) =
  (* GC fields are emitted only when profiling recorded them, keeping
     unprofiled output byte-identical to before. *)
  let gc =
    if
      e.Span.minor_words = 0. && e.Span.major_words = 0.
      && e.Span.promoted_words = 0.
      && e.Span.compactions = 0
    then ""
    else
      Printf.sprintf
        ",\"minor_words\":%s,\"major_words\":%s,\"promoted_words\":%s,\"compactions\":%d"
        (json_num e.Span.minor_words)
        (json_num e.Span.major_words)
        (json_num e.Span.promoted_words)
        e.Span.compactions
  in
  Printf.sprintf "{\"path\":%s,\"count\":%d,\"total_seconds\":%s,\"max_seconds\":%s%s}"
    (json_str (span_path e.Span.path))
    e.Span.count
    (json_num e.Span.total)
    (json_num e.Span.max_)
    gc

let json ~metrics ~spans =
  Printf.sprintf "{\"metrics\":[%s],\"spans\":[%s]}\n"
    (String.concat "," (List.map json_metric metrics))
    (String.concat "," (List.map json_span spans))

let json_lines ~metrics ~spans =
  let buf = Buffer.create 2048 in
  List.iter
    (fun m ->
      Buffer.add_string buf ("{\"kind\":\"metric\",\"metric\":" ^ json_metric m ^ "}\n"))
    metrics;
  List.iter
    (fun s ->
      Buffer.add_string buf ("{\"kind\":\"span\",\"span\":" ^ json_span s ^ "}\n"))
    spans;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus                                                          *)
(* ------------------------------------------------------------------ *)

let prom_sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_name name = "mapqn_" ^ prom_sanitize name

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (prom_sanitize k) (json_escape v)) labels)
    ^ "}"

let prom_num v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let prometheus ~metrics ~spans =
  let buf = Buffer.create 2048 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = prom_name s.Metrics.name in
      let labels = s.Metrics.labels in
      match s.Metrics.value with
      | Metrics.Counter c ->
        header name "counter" s.Metrics.help;
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_num c))
      | Metrics.Gauge g ->
        header name "gauge" s.Metrics.help;
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_num g))
      | Metrics.Histogram h ->
        header name "histogram" s.Metrics.help;
        (* Snapshot buckets are already cumulative with +Inf = count. *)
        Array.iter
          (fun (le, n) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (prom_labels (labels @ [ ("le", prom_num le) ]))
                 n))
          h.Metrics.buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
             (prom_num h.Metrics.sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels)
             h.Metrics.count))
    metrics;
  if spans <> [] then begin
    let name = "mapqn_span_duration_seconds" in
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s Wall time spent inside each span path.\n" name);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s_total counter\n" name);
    List.iter
      (fun (e : Span.entry) ->
        let l = prom_labels [ ("path", span_path e.Span.path) ] in
        Buffer.add_string buf
          (Printf.sprintf "%s_total%s %s\n" name l (prom_num e.Span.total));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name l e.Span.count))
      spans
  end;
  Buffer.contents buf

let render format ~metrics ~spans =
  match format with
  | Table -> table ~metrics ~spans
  | Json -> json ~metrics ~spans
  | Json_lines -> json_lines ~metrics ~spans
  | Prometheus -> prometheus ~metrics ~spans

let write_file path contents =
  if path = "-" then (print_string contents; flush stdout)
  else begin
    let oc = open_out path in
    Fun.protect
      (fun () -> output_string oc contents)
      ~finally:(fun () -> close_out oc)
  end
