(** Render metric and span snapshots for humans and machines. *)

type format = Table | Json | Json_lines | Prometheus

val format_of_string : string -> (format, string) result
(** Accepts ["table"], ["json"], ["jsonl"], ["prometheus"]. *)

val format_names : (string * format) list
(** Name/format association in the order accepted by
    {!format_of_string} — for building CLI enums. *)

val render :
  format -> metrics:Metrics.sample list -> spans:Span.entry list -> string
(** Dispatch to the matching renderer below. *)

val table : metrics:Metrics.sample list -> spans:Span.entry list -> string
(** Aligned human-readable tables: one for metrics, one for the span
    tree. Histograms additionally show estimated p50/p90/p99. *)

val percentile : Metrics.histogram_data -> float -> float
(** [percentile h q] estimates the [q]-quantile (0 ≤ q ≤ 1) of a
    histogram snapshot by linear interpolation over its cumulative
    buckets. Ranks falling in the +Inf bucket saturate at the last
    finite bound; an empty histogram yields [nan]. *)

val json : metrics:Metrics.sample list -> spans:Span.entry list -> string
(** One JSON document: [{"metrics": [...], "spans": [...]}]. Histogram
    buckets appear as [{"le": bound, "count": n}] with cumulative
    counts (the ["+Inf"] bucket equals the total count) and the
    overflow bound rendered as the string ["+Inf"]. Non-finite values
    render as [null]. *)

val json_lines : metrics:Metrics.sample list -> spans:Span.entry list -> string
(** One JSON object per line: metrics as
    [{"kind":"metric", ...}] then spans as [{"kind":"span", ...}] —
    stream-appendable across runs. *)

val prometheus : metrics:Metrics.sample list -> spans:Span.entry list -> string
(** Prometheus text exposition format (v0.0.4). Metric names are
    prefixed with [mapqn_] and sanitized; spans are exposed as
    [mapqn_span_duration_seconds_{total,count}{path="..."}] . *)

val write_file : string -> string -> unit
(** [write_file path contents] — ["-"] writes to stdout. *)
