(** Hierarchical wall-clock timing spans.

    [with_ "lp.phase2" f] times [f] and records the duration under the
    path of currently open spans, so a run produces an aggregated call
    tree like

    {v
      stats.solve                1  1.8200s
      stats.solve/bounds.create  1  1.1000s
      stats.solve/bounds.create/lp.phase1  1  0.9000s
    v}

    Aggregation is by full path: re-entering the same path accumulates
    count/total/max rather than recording one entry per call. The
    collector is guarded by a mutex; note however that the open-span
    stack is collector-global, so spans opened concurrently from several
    domains will interleave their paths — give each domain its own
    collector if that matters. *)

type collector

val create : ?clock:(unit -> float) -> unit -> collector
(** A fresh collector. [clock] (default [Unix.gettimeofday]) exists so
    tests can drive deterministic durations. *)

val default : collector
(** The process-global collector all built-in instrumentation records
    to. *)

val with_ : ?collector:collector -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span called [name], nested under
    the innermost span currently open on [collector]. The span is closed
    (and its duration recorded) whether [f] returns or raises. Span
    names must not contain ['/'] — it is the path separator. *)

type entry = {
  path : string list;  (** outermost span first *)
  count : int;  (** completed spans at this path *)
  total : float;  (** summed duration, seconds *)
  max_ : float;  (** longest single duration, seconds *)
}

val snapshot : ?collector:collector -> unit -> entry list
(** Completed spans, aggregated by path, sorted by path. Spans still
    open are not included. *)

val total : ?collector:collector -> string list -> float option
(** Total recorded seconds at exactly the given path, if any. *)

val reset : ?collector:collector -> unit -> unit
