(** Hierarchical wall-clock timing spans.

    [with_ "lp.phase2" f] times [f] and records the duration under the
    path of currently open spans, so a run produces an aggregated call
    tree like

    {v
      stats.solve                1  1.8200s
      stats.solve/bounds.create  1  1.1000s
      stats.solve/bounds.create/lp.phase1  1  0.9000s
    v}

    Aggregation is by full path: re-entering the same path accumulates
    count/total/max rather than recording one entry per call. The
    aggregate table is guarded by a mutex and the open-span stack is
    domain-local, so spans opened concurrently from several domains keep
    their own nesting while still merging into the shared table. *)

type collector

val create : ?clock:(unit -> float) -> unit -> collector
(** A fresh collector. [clock] (default a monotonic clock, see {!now})
    exists so tests can drive deterministic durations. Durations are
    clamped at zero even if the injected clock steps backwards. *)

val default : collector
(** The process-global collector all built-in instrumentation records
    to. *)

val now : unit -> float
(** The default clock: monotonic seconds (CLOCK_MONOTONIC) from an
    arbitrary epoch. Useful for manual interval timing fed back through
    {!add}. *)

val set_gc_profiling : bool -> unit
(** When on, every span additionally records [Gc.quick_stat] deltas
    (minor/major/promoted words and compactions). Off by default; the
    switch lives here rather than in [Prof] so [with_] can consult it
    without a dependency cycle — use [Prof.enable]/[Prof.disable] rather
    than calling this directly. *)

val gc_profiling : unit -> bool

val with_ : ?collector:collector -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span called [name], nested under
    the innermost span currently open on [collector] in the calling
    domain. The span is closed (and its duration recorded) whether [f]
    returns or raises. Span names must not contain ['/'] — it is the
    path separator. *)

val add :
  ?collector:collector ->
  ?count:int ->
  ?max_:float ->
  ?minor_words:float ->
  string ->
  float ->
  unit
(** [add name seconds] records an externally-measured duration as a span
    called [name] nested under the innermost span currently open in the
    calling domain, without opening/closing a span. This is how hot
    loops (e.g. the simplex pivot loop) report per-phase time they
    accumulated in local variables: one [add] per phase at the end of
    the loop instead of two clock reads per pivot. [count] (default 1)
    is the number of occurrences the duration aggregates; [max_]
    defaults to [seconds] when [count <= 1] and to [0.] otherwise
    (unknown per-occurrence maximum). *)

type entry = {
  path : string list;  (** outermost span first *)
  count : int;  (** completed spans at this path *)
  total : float;  (** summed duration, seconds *)
  max_ : float;  (** longest single duration, seconds *)
  minor_words : float;  (** summed minor-heap allocation, words *)
  major_words : float;  (** summed major-heap allocation, words *)
  promoted_words : float;  (** summed minor->major promotion, words *)
  compactions : int;  (** heap compactions while the span was open *)
}
(** GC fields are zero unless {!set_gc_profiling} was on while the span
    ran. *)

val snapshot : ?collector:collector -> unit -> entry list
(** Completed spans, aggregated by path, sorted by path. Spans still
    open are not included. *)

val total : ?collector:collector -> string list -> float option
(** Total recorded seconds at exactly the given path, if any. *)

val reset : ?collector:collector -> unit -> unit
(** Clear the aggregate table. Open-span stacks are domain-local; only
    the calling domain's stack is cleared. *)
