(* Phase-level profiling attribution on top of the span tree.

   [Prof] owns the global profiling switch (consulted by hot-path
   instrumentation via [is_enabled], mirroring [Trace]) and turns span
   snapshots into self-time attribution: for every path, self = total −
   Σ direct children totals, so summing self over all paths telescopes
   to the summed root totals ≈ measured wall time. *)

(* Atomic, not a bare ref: worker domains consult the flag on their
   solver hot paths while the main domain may flip it. *)
let enabled = Atomic.make false

let enable () =
  Atomic.set enabled true;
  Span.set_gc_profiling true

let disable () =
  Atomic.set enabled false;
  Span.set_gc_profiling false

let is_enabled () = Atomic.get enabled
let now = Span.now

type row = {
  path : string list;
  count : int;
  total : float;
  self : float;
  max_ : float;
  minor_words : float;
  self_minor_words : float;
  major_words : float;
  promoted_words : float;
  compactions : int;
}

let is_direct_child ~parent path =
  let rec strip p c =
    match (p, c) with
    | [], [ _ ] -> true
    | x :: p, y :: c when String.equal x y -> strip p c
    | _ -> false
  in
  strip parent path

let attribution ?entries () =
  let entries =
    match entries with Some e -> e | None -> Span.snapshot ()
  in
  let rows =
    List.map
      (fun (e : Span.entry) ->
        let kids =
          List.filter
            (fun (k : Span.entry) -> is_direct_child ~parent:e.path k.path)
            entries
        in
        let child_total =
          List.fold_left (fun acc (k : Span.entry) -> acc +. k.total) 0. kids
        in
        let child_minor =
          List.fold_left
            (fun acc (k : Span.entry) -> acc +. k.minor_words)
            0. kids
        in
        {
          path = e.path;
          count = e.count;
          total = e.total;
          self = Float.max 0. (e.total -. child_total);
          max_ = e.max_;
          minor_words = e.minor_words;
          self_minor_words = Float.max 0. (e.minor_words -. child_minor);
          major_words = e.major_words;
          promoted_words = e.promoted_words;
          compactions = e.compactions;
        })
      entries
  in
  List.sort (fun a b -> compare b.self a.self) rows

let self_total rows = List.fold_left (fun acc r -> acc +. r.self) 0. rows

(* Subtract [baseline] aggregates from [current], path by path; rows
   that saw no activity since the baseline are dropped. Lets callers
   (e.g. the bench harness) attribute one section of a longer run
   without resetting the global collector. *)
let diff ~baseline current =
  let base = Hashtbl.create 32 in
  List.iter
    (fun (e : Span.entry) -> Hashtbl.replace base e.Span.path e)
    baseline;
  List.filter_map
    (fun (e : Span.entry) ->
      let e =
        match Hashtbl.find_opt base e.Span.path with
        | None -> e
        | Some b ->
          {
            e with
            Span.count = e.Span.count - b.Span.count;
            total = e.Span.total -. b.Span.total;
            minor_words = e.Span.minor_words -. b.Span.minor_words;
            major_words = e.Span.major_words -. b.Span.major_words;
            promoted_words = e.Span.promoted_words -. b.Span.promoted_words;
            compactions = e.Span.compactions - b.Span.compactions;
          }
      in
      if e.Span.count <= 0 && e.Span.total <= 0. then None else Some e)
    current

(* ------------------------------------------------------------------ *)
(* Attribution table                                                    *)
(* ------------------------------------------------------------------ *)

let words w =
  if w = 0. then "0"
  else if Float.abs w >= 1e9 then Printf.sprintf "%.2fG" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fM" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fk" (w /. 1e3)
  else Printf.sprintf "%.0f" w

let aligned rows =
  let widths =
    List.fold_left
      (fun ws row ->
        List.mapi
          (fun i cell ->
            let prev = try List.nth ws i with _ -> 0 in
            max prev (String.length cell))
          row)
      [] rows
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf cell;
          if i < List.length row - 1 then
            Buffer.add_string buf
              (String.make (List.nth widths i - String.length cell) ' '))
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_table ?limit rows =
  let shown, hidden =
    match limit with
    | Some n when n >= 0 && List.length rows > n ->
      (List.filteri (fun i _ -> i < n) rows, List.length rows - n)
    | _ -> (rows, 0)
  in
  let cells =
    [ "phase"; "count"; "total"; "self"; "max"; "minor words" ]
    :: List.map
         (fun r ->
           [
             String.concat "/" r.path;
             string_of_int r.count;
             Printf.sprintf "%.4fs" r.total;
             Printf.sprintf "%.4fs" r.self;
             Printf.sprintf "%.4fs" r.max_;
             words r.minor_words;
           ])
         shown
  in
  let table = aligned cells in
  if hidden = 0 then table
  else Printf.sprintf "%s(+ %d more phases)\n" table hidden

(* ------------------------------------------------------------------ *)
(* Folded stacks (flamegraph)                                           *)
(* ------------------------------------------------------------------ *)

(* One line per path: "a;b;c <self-microseconds>". Standard flamegraph
   tooling (flamegraph.pl, inferno, speedscope) consumes this directly;
   self-time is the correct per-frame value because the tools re-derive
   cumulative time by summing descendants. *)
let folded ?entries () =
  let rows = attribution ?entries () in
  let rows = List.sort (fun a b -> compare a.path b.path) rows in
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf (String.concat ";" r.path);
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (string_of_int (int_of_float ((r.self *. 1e6) +. 0.5)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let parse_folded s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i ->
             let stack = String.sub line 0 i in
             let value = String.sub line (i + 1) (String.length line - i - 1) in
             (match int_of_string_opt value with
             | None -> None
             | Some v -> Some (String.split_on_char ';' stack, v)))

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

let row_json r =
  Json.Object
    [
      ("path", Json.String (String.concat "/" r.path));
      ("count", Json.Number (float_of_int r.count));
      ("total_s", Json.Number r.total);
      ("self_s", Json.Number r.self);
      ("max_s", Json.Number r.max_);
      ("minor_words", Json.Number r.minor_words);
      ("major_words", Json.Number r.major_words);
      ("promoted_words", Json.Number r.promoted_words);
    ]

let to_json ?limit rows =
  let rows =
    match limit with
    | Some n when n >= 0 -> List.filteri (fun i _ -> i < n) rows
    | _ -> rows
  in
  Json.List (List.map row_json rows)
