type event =
  | Pivot of {
      solver : string;
      iteration : int;
      entering : int;
      leaving : int;
      step : float;
      objective : float;
      degenerate : bool;
    }
  | Refactor of { solver : string; eta_nnz : int }
  | Sweep of { solver : string; iteration : int; delta : float }
  | Batch of { events : int; sim_time : float; heap_size : int }
  | Certificate of {
      label : string;
      primal_residual : float;
      dual_violation : float;
      comp_slack : float;
      accepted : bool;
    }
  | Mark of { name : string; detail : string }

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  lock : Mutex.t;
  cap : int;
  buf : (float * event) option array;
  mutable next : int; (* ring write index, [0, cap) *)
  mutable total : int; (* events ever emitted *)
  clock : unit -> float;
  mutable last_ts : float; (* monotonicity clamp *)
}

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
    Mutex.unlock t.lock;
    x
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let create ?(capacity = 65536) ?(clock = Span.now) () =
  let cap = max 1 capacity in
  {
    lock = Mutex.create ();
    cap;
    buf = Array.make cap None;
    next = 0;
    total = 0;
    clock;
    last_ts = neg_infinity;
  }

let emit t ev =
  locked t (fun () ->
      let ts = Float.max (t.clock ()) t.last_ts in
      t.last_ts <- ts;
      t.buf.(t.next) <- Some (ts, ev);
      t.next <- (t.next + 1) mod t.cap;
      t.total <- t.total + 1)

let capacity t = t.cap
let emitted t = locked t (fun () -> t.total)
let retained t = locked t (fun () -> min t.total t.cap)
let dropped t = locked t (fun () -> t.total - min t.total t.cap)

let events t =
  locked t (fun () ->
      let n = min t.total t.cap in
      (* Oldest retained event sits at [next] once the ring has wrapped,
         at 0 before. *)
      let start = if t.total > t.cap then t.next else 0 in
      List.init n (fun i ->
          match t.buf.((start + i) mod t.cap) with
          | Some e -> e
          | None -> assert false))

let clear t =
  locked t (fun () ->
      Array.fill t.buf 0 t.cap None;
      t.next <- 0;
      t.total <- 0;
      t.last_ts <- neg_infinity)

(* ------------------------------------------------------------------ *)
(* Global trace                                                        *)
(* ------------------------------------------------------------------ *)

(* Atomics, not bare refs: worker domains consult [enabled] on their
   per-pivot hot paths and the ring itself is mutex-guarded, so a trace
   enabled around a fleet run collects from all workers. *)
let enabled = Atomic.make false
let global : t option Atomic.t = Atomic.make None

let enable ?capacity () =
  Atomic.set global (Some (create ?capacity ()));
  Atomic.set enabled true

let disable () =
  Atomic.set enabled false;
  Atomic.set global None

let is_enabled () = Atomic.get enabled
let current () = Atomic.get global
let record ev = match Atomic.get global with Some t -> emit t ev | None -> ()

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type format = Jsonl | Chrome

let format_names = [ "jsonl"; "chrome" ]

let format_of_string = function
  | "jsonl" -> Ok Jsonl
  | "chrome" -> Ok Chrome
  | other ->
    Error
      (Printf.sprintf "unknown trace format %S (expected %s)" other
         (String.concat "|" format_names))

let event_name = function
  | Pivot _ -> "pivot"
  | Refactor _ -> "refactor"
  | Sweep _ -> "sweep"
  | Batch _ -> "batch"
  | Certificate _ -> "certificate"
  | Mark m -> m.name

(* Category groups events into Perfetto-filterable families. *)
let event_cat = function
  | Pivot p -> "lp." ^ p.solver
  | Refactor r -> "lp." ^ r.solver
  | Sweep s -> s.solver
  | Batch _ -> "sim"
  | Certificate _ -> "lp.certificate"
  | Mark _ -> "mark"

let event_args ev : (string * Json.t) list =
  match ev with
  | Pivot p ->
    [
      ("solver", Json.String p.solver);
      ("iteration", Json.Number (float_of_int p.iteration));
      ("entering", Json.Number (float_of_int p.entering));
      ("leaving", Json.Number (float_of_int p.leaving));
      ("step", Json.Number p.step);
      ("objective", Json.Number p.objective);
      ("degenerate", Json.Bool p.degenerate);
    ]
  | Refactor r ->
    [
      ("solver", Json.String r.solver);
      ("eta_nnz", Json.Number (float_of_int r.eta_nnz));
    ]
  | Sweep s ->
    [
      ("solver", Json.String s.solver);
      ("iteration", Json.Number (float_of_int s.iteration));
      ("delta", Json.Number s.delta);
    ]
  | Batch b ->
    [
      ("events", Json.Number (float_of_int b.events));
      ("sim_time", Json.Number b.sim_time);
      ("heap_size", Json.Number (float_of_int b.heap_size));
    ]
  | Certificate c ->
    [
      ("label", Json.String c.label);
      ("primal_residual", Json.Number c.primal_residual);
      ("dual_violation", Json.Number c.dual_violation);
      ("comp_slack", Json.Number c.comp_slack);
      ("accepted", Json.Bool c.accepted);
    ]
  | Mark m -> [ ("detail", Json.String m.detail) ]

let jsonl_line (ts, ev) =
  Json.to_string
    (Json.Object
       (("ts", Json.Number ts)
       :: ("event", Json.String (event_name ev))
       :: event_args ev))

let render_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (jsonl_line e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* Chrome trace-event format: instant events carry the full payload;
   scalar series (objective per pivot, residual per sweep) additionally
   become "C" counter events so Perfetto draws them as tracks. *)
let chrome_events t =
  let evs = events t in
  let t0 = match evs with (ts, _) :: _ -> ts | [] -> 0. in
  let us ts = (ts -. t0) *. 1e6 in
  let base ~ph ~name ~cat ~ts args =
    Json.Object
      [
        ("name", Json.String name);
        ("cat", Json.String cat);
        ("ph", Json.String ph);
        ("ts", Json.Number (us ts));
        ("pid", Json.Number 1.);
        ("tid", Json.Number 1.);
        ("args", Json.Object args);
      ]
  in
  let instant ~name ~cat ~ts args =
    (* "s":"t" scopes the instant marker to its thread track. *)
    match base ~ph:"i" ~name ~cat ~ts args with
    | Json.Object fields -> Json.Object (fields @ [ ("s", Json.String "t") ])
    | _ -> assert false
  in
  List.concat_map
    (fun (ts, ev) ->
      let inst = instant ~name:(event_name ev) ~cat:(event_cat ev) ~ts (event_args ev) in
      let counters =
        match ev with
        | Pivot p ->
          [
            base ~ph:"C" ~name:(p.solver ^ " objective") ~cat:(event_cat ev)
              ~ts
              [ ("objective", Json.Number p.objective) ];
          ]
        | Sweep s ->
          [
            base ~ph:"C" ~name:(s.solver ^ " residual") ~cat:(event_cat ev)
              ~ts
              [ ("delta", Json.Number s.delta) ];
          ]
        | Batch b ->
          [
            base ~ph:"C" ~name:"sim heap" ~cat:"sim" ~ts
              [ ("heap_size", Json.Number (float_of_int b.heap_size)) ];
          ]
        | _ -> []
      in
      inst :: counters)
    evs

let render_chrome t =
  Json.to_string
    (Json.Object
       [
         ("displayTimeUnit", Json.String "ms");
         ("traceEvents", Json.List (chrome_events t));
         ( "metadata",
           Json.Object
             [
               ("emitted", Json.Number (float_of_int (emitted t)));
               ("dropped", Json.Number (float_of_int (dropped t)));
             ] );
       ])

let render fmt t =
  match fmt with Jsonl -> render_jsonl t | Chrome -> render_chrome t

let write fmt ~path t =
  let contents = render fmt t in
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  end
