(** Minimal JSON values: a parser and a compact printer.

    The observability layer emits JSON ({!Export}) and several tools need
    to read it back — the exporter round-trip tests, and the bench
    regression gate that diffs two [BENCH_lp.json] files. This module is
    deliberately small (no streaming, no precise integer type: numbers
    are [float], like the exporters produce) and, like the rest of
    [Mapqn_obs], depends on nothing beyond the standard library. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list  (** insertion order preserved *)

val parse : string -> (t, string) result
(** Parse one JSON document. The error string carries a character
    offset. Trailing whitespace is allowed, trailing content is not. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure]. *)

val to_string : t -> string
(** Compact (single-line) rendering. Floats print in shortest form that
    round-trips; non-finite floats render as [null] (JSON has no
    representation for them). *)

(** {1 Accessors}

    All partial accessors return [None] on a kind mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Object]. *)

val get_float : t -> float option

val get_int : t -> int option
(** [Number] with an integral value *)

val get_string : t -> string option
val get_list : t -> t list option
val get_bool : t -> bool option

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes) — shared with the
    other renderers of this library. *)
