(* Append-only JSONL run ledger.

   One record per unit of solver work (a [Bounds.eval], a sweep
   preparation step, a simulator run) carrying provenance — git SHA,
   model fingerprint, PRNG seed, solver configuration — and outcome:
   bound values, pivot/refactorization deltas, the certificate residual
   triple and the numerical-health snapshot ({!Health}).

   Records are written crash-safely: the file is opened in append mode
   and flushed after every record, so the ledger of a killed sweep is
   intact up to the last completed unit and doubles as a checkpoint
   (the reader skips a torn final line, mirroring
   {!Progress.load_completed}).

   On top of the stream sit two pure analyses the CLI surfaces:
   [diff] (bound-value and performance drift between two ledgers) and
   [doctor] (certificate near-misses, drift-triggered reinversions,
   degeneracy stalls, and the residual-peak-at-the-largest-population
   pattern of the historical Fig-8 failure). *)

type sink = { oc : out_channel; lpath : string; mutable context : (string * Json.t) list }

let lock = Mutex.create ()
let current : sink option ref = ref None

let locked f =
  Mutex.lock lock;
  match f () with
  | x ->
    Mutex.unlock lock;
    x
  | exception e ->
    Mutex.unlock lock;
    raise e

(* Provenance: the commit of the running binary's working tree, resolved
   once per process (a subprocess spawn is far too slow per record).
   [None] outside a git checkout. The memo has its own mutex — it is
   read inside the sink lock but must also be safe for any stray direct
   caller on another domain. *)
let sha_lock = Mutex.create ()
let sha_memo : string option option ref = ref None

let git_sha () =
  Mutex.lock sha_lock;
  let memo = !sha_memo in
  Mutex.unlock sha_lock;
  match memo with
  | Some v -> v
  | None ->
    let v =
      try
        let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
        let sha = try String.trim (input_line ic) with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when sha <> "" -> Some sha
        | _ -> None
      with _ -> None
    in
    Mutex.lock sha_lock;
    (* A racing resolver computed the same value; last write wins. *)
    sha_memo := Some v;
    Mutex.unlock sha_lock;
    v

let disable () =
  locked (fun () ->
      match !current with
      | None -> ()
      | Some s ->
        (try
           flush s.oc;
           close_out s.oc
         with _ -> ());
        current := None)

type enable_error = [ `Already_enabled of string ]

let enable_error_to_string = function
  | `Already_enabled path ->
    Printf.sprintf
      "ledger already enabled on %s (disable it before re-enabling)" path

let enable ?(context = []) ~path () =
  locked (fun () ->
      match !current with
      | Some s when String.equal s.lpath path ->
        (* Silently reopening the live sink would drop its accumulated
           context and interleave two append channels on one file. *)
        Error (`Already_enabled path)
      | prev ->
        (match prev with
        | Some s -> (
          try
            flush s.oc;
            close_out s.oc
          with _ -> ())
        | None -> ());
        current := None;
        (* A killed writer may have torn the final line without its
           newline; appending straight after would garble the first new
           record into the torn one. Resume on a fresh line instead. *)
        let torn_tail =
          Sys.file_exists path
          && (try
                let ic = open_in_bin path in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () ->
                    let len = in_channel_length ic in
                    len > 0
                    &&
                    (seek_in ic (len - 1);
                     input_char ic <> '\n'))
              with _ -> false)
        in
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
        in
        if torn_tail then output_char oc '\n';
        current := Some { oc; lpath = path; context };
        Ok ())

let enable_exn ?context ~path () =
  match enable ?context ~path () with
  | Ok () -> ()
  | Error e -> invalid_arg ("Ledger.enable: " ^ enable_error_to_string e)

let is_enabled () = !current <> None
let path () = locked (fun () -> Option.map (fun s -> s.lpath) !current)

let set_context key value =
  locked (fun () ->
      match !current with
      | None -> ()
      | Some s -> s.context <- (key, value) :: List.remove_assoc key s.context)

let record ~event fields =
  (* Resolve the writer's run context before taking the sink lock: the
     overlay belongs to the calling domain, the sink to the process. *)
  let ctx = Run_ctx.current () in
  let overlay = Run_ctx.context ctx in
  let ctx_seed = Run_ctx.seed ctx in
  locked (fun () ->
      match !current with
      | None -> ()
      | Some s ->
        let sha =
          match git_sha () with Some v -> Json.String v | None -> Json.Null
        in
        (* Exactly one top-level "seed" per record, by precedence: an
           explicit seed in [fields] (e.g. a simulator run's own seed)
           beats the run context's (overlay pair, then the context's own
           seed — how a fleet worker stamps its derived per-model seed),
           which beats the sink-wide context seed. *)
        let seed =
          match
            ( List.assoc_opt "seed" fields,
              List.assoc_opt "seed" overlay,
              ctx_seed,
              List.assoc_opt "seed" s.context )
          with
          | Some v, _, _, _ | None, Some v, _, _ -> v
          | None, None, Some seed, _ -> Json.Number (float_of_int seed)
          | None, None, None, Some v -> v
          | None, None, None, None -> Json.Null
        in
        let fields = List.remove_assoc "seed" fields in
        let overlay = List.remove_assoc "seed" overlay in
        let context = List.remove_assoc "seed" s.context in
        (* Merge, later layers overriding earlier ones:
           sink context < run-context overlay < record fields. *)
        let merge base extra =
          List.filter (fun (k, _) -> not (List.mem_assoc k extra)) base @ extra
        in
        let body = merge (merge context overlay) fields in
        let line =
          Json.Object
            (("event", Json.String event)
            :: ("ts", Json.Number (Unix.gettimeofday ()))
            :: ("git_sha", sha)
            :: ("seed", seed)
            :: body)
        in
        output_string s.oc (Json.to_string line);
        output_char s.oc '\n';
        (* The flush is the crash-safety contract: every returned record
           call is durable up to OS buffering. *)
        flush s.oc)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

(* Unparsable lines — a torn final line from a killed run, or stray
   output interleaved by mistake — are skipped, not errors: a ledger is
   best-effort by design, exactly like the progress heartbeat file. *)
let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let records = ref [] in
    (try
       while true do
         let line = input_line ic in
         match Json.parse line with
         | Ok (Json.Object _ as r) -> records := r :: !records
         | Ok _ | Error _ -> ()
       done
     with End_of_file -> ());
    close_in_noerr ic;
    List.rev !records
  end

(* Field accessors over a record; all total. *)
let str name r =
  match Option.bind (Json.member name r) Json.get_string with
  | Some s -> s
  | None -> ""

let num ?(default = 0.) name r =
  match Option.bind (Json.member name r) Json.get_float with
  | Some v -> v
  | None -> default

let obj_num ?(default = 0.) outer name r =
  match Json.member outer r with
  | Some o -> num ~default name o
  | None -> default

let obj_str outer name r =
  match Json.member outer r with Some o -> str name o | None -> ""

let population r =
  match Option.bind (Json.member "population" r) Json.get_int with
  | Some n -> n
  | None -> -1

let event r = str "event" r

(* ------------------------------------------------------------------ *)
(* Summaries (mapqn ledger FILE)                                       *)
(* ------------------------------------------------------------------ *)

let aligned rows =
  let widths =
    List.fold_left
      (fun ws row ->
        List.mapi
          (fun i cell ->
            let prev = try List.nth ws i with _ -> 0 in
            max prev (String.length cell))
          row)
      [] rows
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf cell;
          if i < List.length row - 1 then
            Buffer.add_string buf
              (String.make (List.nth widths i - String.length cell) ' '))
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let summarize records =
  let row i r =
    let n = population r in
    let cert = obj_num "certificate" "primal_residual" r in
    [
      string_of_int i;
      event r;
      (if n >= 0 then string_of_int n else "-");
      (match str "solver" r with "" -> "-" | s -> s);
      (match num ~default:Float.nan "duration_s" r with
      | d when Float.is_nan d -> "-"
      | d -> Printf.sprintf "%.3fs" d);
      (match num ~default:Float.nan "pivots" r with
      | p when Float.is_nan p -> "-"
      | p -> Printf.sprintf "%.0f" p);
      (if Json.member "certificate" r = None then "-"
       else Printf.sprintf "%.2e" cert);
      (match str "git_sha" r with
      | "" -> "-"
      | sha -> String.sub sha 0 (min 8 (String.length sha)));
    ]
  in
  aligned
    ([ "#"; "event"; "N"; "solver"; "duration"; "pivots"; "primal res"; "commit" ]
    :: List.mapi row records)

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

type drift = {
  key : string;
  bound_drift : float;
  worst_metric : string;
  duration_a : float;
  duration_b : float;
  pivots_a : float;
  pivots_b : float;
  fingerprint_changed : bool;
}

type diff_report = { matched : drift list; only_a : int; only_b : int }

(* Records pair up by (event, population, occurrence index): ledgers of
   two runs of the same experiment line up positionally within each
   (event, population) class, which survives reordering of unrelated
   populations and resumed prefixes. *)
let keyed records =
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun r ->
      match event r with
      | "" -> None
      | ev ->
        let cls = (ev, population r) in
        let idx = try Hashtbl.find seen cls with Not_found -> 0 in
        Hashtbl.replace seen cls (idx + 1);
        Some ((cls, idx), r))
    records

let metric_bounds r =
  match Json.member "metrics" r with
  | Some (Json.List l) ->
    List.filter_map
      (fun m ->
        match Json.member "name" m with
        | Some (Json.String name) ->
          Some (name, (num ~default:Float.nan "lower" m, num ~default:Float.nan "upper" m))
        | _ -> None)
      l
  | _ -> []

let diff a b =
  let ka = keyed a and kb = keyed b in
  let matched =
    List.filter_map
      (fun (key, ra) ->
        match List.assoc_opt key kb with
        | None -> None
        | Some rb ->
          let (ev, n), idx = key in
          let bounds_b = metric_bounds rb in
          let worst = ref 0. and worst_at = ref "-" in
          List.iter
            (fun (name, (lo_a, hi_a)) ->
              match List.assoc_opt name bounds_b with
              | None -> ()
              | Some (lo_b, hi_b) ->
                let d v w =
                  if Float.is_nan v || Float.is_nan w then 0.
                  else if v = w then 0. (* infinities agree *)
                  else Float.abs (v -. w)
                in
                let delta = Float.max (d lo_a lo_b) (d hi_a hi_b) in
                if delta > !worst then begin
                  worst := delta;
                  worst_at := name
                end)
            (metric_bounds ra);
          Some
            {
              key =
                (if n >= 0 then Printf.sprintf "%s N=%d #%d" ev n idx
                 else Printf.sprintf "%s #%d" ev idx);
              bound_drift = !worst;
              worst_metric = !worst_at;
              duration_a = num "duration_s" ra;
              duration_b = num "duration_s" rb;
              pivots_a = num "pivots" ra;
              pivots_b = num "pivots" rb;
              fingerprint_changed = str "fingerprint" ra <> str "fingerprint" rb;
            })
      ka
  in
  let unmatched x y =
    List.length (List.filter (fun (k, _) -> not (List.mem_assoc k y)) x)
  in
  { matched; only_a = unmatched ka kb; only_b = unmatched kb ka }

let render_diff report =
  let buf = Buffer.create 1024 in
  let pct a b =
    if a > 0. then Printf.sprintf "%+.1f%%" (100. *. ((b /. a) -. 1.)) else "-"
  in
  let rows =
    [ "record"; "bound drift"; "at"; "duration"; "pivots"; "model" ]
    :: List.map
         (fun d ->
           [
             d.key;
             (if d.bound_drift > 0. then Printf.sprintf "%.3e" d.bound_drift
              else "0");
             d.worst_metric;
             pct d.duration_a d.duration_b;
             pct d.pivots_a d.pivots_b;
             (if d.fingerprint_changed then "CHANGED" else "same");
           ])
         report.matched
  in
  Buffer.add_string buf (aligned rows);
  if report.only_a > 0 || report.only_b > 0 then
    Buffer.add_string buf
      (Printf.sprintf "unmatched records: %d only in A, %d only in B\n"
         report.only_a report.only_b);
  let worst =
    List.fold_left (fun acc d -> Float.max acc d.bound_drift) 0. report.matched
  in
  Buffer.add_string buf
    (Printf.sprintf "%d matched record(s), worst bound drift %.3e\n"
       (List.length report.matched) worst);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Doctor                                                              *)
(* ------------------------------------------------------------------ *)

type severity = Info | Warn | Fail

type finding = {
  severity : severity;
  code : string;
  where : string;
  detail : string;
}

let severity_to_string = function
  | Info -> "info"
  | Warn -> "WARN"
  | Fail -> "FAIL"

(* A residual at or above this fraction of its tolerance is a
   near-miss: still passing, but one conditioning wobble away from the
   failure the pre-drift-trigger Fig-8 sweep actually hit. *)
let near_miss_fraction = 0.25

let where_of i r =
  let n = population r in
  if n >= 0 then Printf.sprintf "%s N=%d (record %d)" (event r) n i
  else Printf.sprintf "%s (record %d)" (event r) i

let doctor ?(tol_primal = 1e-5) ?(tol_dual = 1e-6) ?(tol_comp = 1e-6) records =
  let findings = ref [] in
  let add severity code where detail =
    findings := { severity; code; where; detail } :: !findings
  in
  let solver_records =
    List.filteri
      (fun _ r -> match event r with "eval" | "sweep_step" -> true | _ -> false)
      records
  in
  (* Residual ratio (value / recorded-or-default tolerance) of the worst
     certificate quantity of one record. *)
  let cert_ratio r =
    match Json.member "certificate" r with
    | None -> None
    | Some cert ->
      let quantity name default_tol tol_field =
        let v = num name cert in
        let tol = num ~default:default_tol tol_field cert in
        (v /. Float.max tol 1e-300, name, v, tol)
      in
      let candidates =
        [
          quantity "primal_residual" tol_primal "tol_primal";
          quantity "dual_violation" tol_dual "tol_dual";
          quantity "comp_slack" tol_comp "tol_comp";
        ]
      in
      Some
        (List.fold_left
           (fun (br, bn, bv, bt) (r', n', v', t') ->
             if r' > br then (r', n', v', t') else (br, bn, bv, bt))
           (List.hd candidates) (List.tl candidates))
  in
  List.iteri
    (fun i r ->
      let where = where_of i r in
      let rescue_cause = obj_str "health" "rescue" r in
      let rescue_depth = obj_num "health" "rescue_depth" r in
      (match cert_ratio r with
      | None -> ()
      | Some (ratio, quantity, value, tol) ->
        let failures = obj_num "certificate" "failures" r in
        if rescue_cause = "uncertified" then
          add Fail "cert-uncertified" where
            (Printf.sprintf
               "rescue ladder exhausted without a passing certificate (worst \
                %s = %.3e vs tolerance %.1e)"
               quantity value tol)
        else if failures > 0. || ratio > 1. then
          if rescue_depth > 0. then
            (* The recorded residual triple keeps the WORST values seen,
               including the failed pre-rescue attempts — a rescued
               record is a recovery, not a failure. *)
            add Warn "cert-rescued" where
              (Printf.sprintf
                 "certificate initially failed (%s = %.3e vs tolerance %.1e); \
                  rescued via %s (rung %.0f)"
                 quantity value tol rescue_cause rescue_depth)
          else
            add Fail "cert-failure" where
              (Printf.sprintf "certificate %s = %.3e exceeds tolerance %.1e"
                 quantity value tol)
        else if ratio >= near_miss_fraction then
          add Warn "cert-near-miss" where
            (Printf.sprintf
               "certificate %s = %.3e is %.0f%% of tolerance %.1e" quantity
               value (100. *. ratio) tol)
        else if rescue_depth > 0. then
          (* In-solve refinement recorded a [refined] outcome without any
             certificate check failing: the solve was saved before the
             certificate ever saw the bad point. *)
          add Info "cert-rescued" where
            (Printf.sprintf
               "solve recorded a %s rescue (rung %.0f); certificate passed"
               rescue_cause rescue_depth));
      let drift_reinv = obj_num "refactor_causes" "drift" r in
      if drift_reinv > 0. then
        add Warn "drift-reinversion" where
          (Printf.sprintf
             "%.0f reinversion(s) triggered by eta-chain drift (worst sampled \
              drift %.2e)"
             drift_reinv
             (obj_num "health" "eta_drift" r));
      let streak = obj_num "health" "degeneracy_streak" r in
      let blands = obj_num "health" "bland_switches" r in
      if blands > 0. then
        add Warn "degeneracy-stall" where
          (Printf.sprintf
             "degenerate streak of %.0f pivots forced Bland's rule %.0f time(s)"
             streak blands)
      else if streak >= 1000. then
        add Info "degeneracy-streak" where
          (Printf.sprintf "degenerate streak of %.0f pivots (no stall)" streak);
      let salt = obj_num "health" "perturbation_salt" r in
      if salt > 0. then
        add Warn "perturbation-retry" where
          (Printf.sprintf
             "phase 1 needed the perturbation ladder at depth %.0f" salt))
    solver_records;
  (* The historical Fig-8 signature: the certificate residual peaks at
     the LARGEST population of the sweep — eta-chain roundoff compounds
     with LP size until, pre drift-trigger, the last population failed
     at 3e-05. Flag the pattern whenever the worst residual ratio of the
     run sits at the maximum population, at a severity matching how
     close it came. *)
  (* Rescued records keep their worst PRE-rescue residual, which would
     read as a spurious last-population failure here — the per-record
     cert-rescued finding already covers them. *)
  let with_pop =
    List.filter
      (fun r ->
        population r >= 0 && obj_num "health" "rescue_depth" r = 0.)
      solver_records
  in
  (match with_pop with
  | [] -> ()
  | _ ->
    let max_pop =
      List.fold_left (fun acc r -> max acc (population r)) (-1) with_pop
    in
    let worst =
      List.fold_left
        (fun acc r ->
          match cert_ratio r with
          | None -> acc
          | Some (ratio, quantity, value, tol) -> (
            match acc with
            | Some (br, _, _, _, _) when br >= ratio -> acc
            | _ -> Some (ratio, quantity, value, tol, population r)))
        None with_pop
    in
    match worst with
    | Some (ratio, quantity, value, tol, n) when n = max_pop && ratio > 0. ->
      let severity =
        if ratio > 1. then Fail
        else if ratio >= near_miss_fraction then Warn
        else Info
      in
      add severity "residual-peak-at-max-population"
        (Printf.sprintf "sweep top N=%d" max_pop)
        (Printf.sprintf
           "worst certificate residual (%s = %.3e, %.0f%% of tolerance %.1e) \
            sits at the largest population — the signature of the historical \
            fig8 last-population failure (3e-05 primal residual, pre \
            drift-trigger)"
           quantity value (100. *. ratio) tol)
    | _ -> ());
  List.rev !findings

let render_findings findings =
  if findings = [] then "doctor: no findings — ledger looks healthy\n"
  else
    aligned
      ([ "severity"; "code"; "where"; "detail" ]
      :: List.map
           (fun f ->
             [ severity_to_string f.severity; f.code; f.where; f.detail ])
           findings)
