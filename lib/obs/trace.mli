(** Low-overhead structured event journal for the solver hot paths.

    A trace is a fixed-capacity ring buffer of typed events, each stamped
    with a monotonic wall-clock time. The buffer is lossy by design: once
    full, new events overwrite the oldest and a dropped counter records
    how many were lost, so instrumentation never grows memory without
    bound on a million-pivot solve. Two sinks render a trace for
    inspection: JSONL (one event per line, greppable) and the Chrome
    trace-event format, which Perfetto ({:https://ui.perfetto.dev}) and
    [chrome://tracing] load directly.

    Tracing is disabled by default. The hot paths guard every emission
    with {!is_enabled} — a single mutable boolean read — so a disabled
    trace costs no allocation and no lock on the pivot path. *)

(** {1 Events} *)

type event =
  | Pivot of {
      solver : string;  (** ["revised"] or ["dense"] *)
      iteration : int;
      entering : int;  (** standard-form column entering the basis *)
      leaving : int;  (** standard-form column leaving the basis *)
      step : float;  (** primal step length (ratio-test minimum) *)
      objective : float;  (** phase objective after the pivot *)
      degenerate : bool;  (** the pivot did not improve the objective *)
    }
      (** One simplex basis exchange
          ({!Mapqn_lp.Revised}/{!Mapqn_lp.Simplex}). *)
  | Refactor of { solver : string; eta_nnz : int }
      (** Basis refactorization; [eta_nnz] is the size of the rebuilt
          eta file. *)
  | Sweep of { solver : string; iteration : int; delta : float }
      (** One iteration of a fixed-point loop (stationary-distribution
          power/Gauss–Seidel, eigenvalue power iteration); [delta] is
          the convergence residual after the sweep. *)
  | Batch of { events : int; sim_time : float; heap_size : int }
      (** Progress marker from the discrete-event simulator, emitted
          every few thousand events. *)
  | Certificate of {
      label : string;  (** objective label, e.g. ["min"]/["max"] *)
      primal_residual : float;
      dual_violation : float;
      comp_slack : float;
      accepted : bool;
    }  (** Result of an LP solution certificate check ({!Mapqn_core.Bounds}). *)
  | Mark of { name : string; detail : string }
      (** Free-form annotation (phase boundaries, CLI milestones). *)

(** {1 Ring buffer} *)

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** A fresh trace. [capacity] (default 65536, min 1) bounds retained
    events. [clock] (default the monotonic [Span.now]) is read at each
    emission; readings are clamped to be non-decreasing so timestamps
    are monotonic even if the wall clock steps backwards. *)

val emit : t -> event -> unit
(** Append an event, overwriting the oldest if the ring is full.
    Thread-safe. *)

val capacity : t -> int

val emitted : t -> int
(** Total events ever emitted (including overwritten ones). *)

val retained : t -> int
(** Events currently held: [min (emitted t) (capacity t)]. *)

val dropped : t -> int
(** Events lost to overwriting: [emitted t - retained t]. *)

val events : t -> (float * event) list
(** Retained [(timestamp, event)] pairs, oldest first. *)

val clear : t -> unit
(** Drop all retained events and reset the counters. *)

(** {1 Global trace}

    The hot paths record into a single process-wide trace so that
    instrumentation does not have to thread a handle through every
    solver signature. *)

val enable : ?capacity:int -> unit -> unit
(** Install a fresh global trace and turn recording on. *)

val disable : unit -> unit
(** Turn recording off and drop the global trace. *)

val is_enabled : unit -> bool
(** Cheap guard for emission sites: a single boolean read, no lock, no
    allocation. Idiom: [if Trace.is_enabled () then Trace.record (...)]
    — the event constructor then only allocates when tracing is on. *)

val record : event -> unit
(** Emit into the global trace; no-op when disabled. *)

val current : unit -> t option
(** The global trace, when enabled. *)

(** {1 Sinks} *)

type format =
  | Jsonl  (** one JSON object per event, one per line *)
  | Chrome
      (** Chrome trace-event format (JSON object with a [traceEvents]
          array); loadable in Perfetto or [chrome://tracing].
          Timestamps are microseconds relative to the first retained
          event. Scalar series (simplex objective, sweep residuals)
          additionally render as counter tracks. *)

val format_names : string list
val format_of_string : string -> (format, string) result

val render : format -> t -> string

val write : format -> path:string -> t -> unit
(** Render to a file; [path = "-"] writes to stdout. *)
