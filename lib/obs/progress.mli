(** Sweep progress reporting for long experiment runs.

    A reporter tracks [completed]/[total] models, derives an ETA from
    elapsed wall time, draws a TTY-aware live status line (single
    rewritten line on a terminal, one scrolling line per completed model
    otherwise), and optionally appends JSONL heartbeat records — model
    id, seed, phase, elapsed — to a channel. The heartbeat file doubles
    as a checkpoint: {!load_completed} returns the model ids a previous
    run finished so a rerun can skip them.

    All state and rendering sit behind one mutex, so a single reporter
    can be shared by worker domains: heartbeat records never interleave
    mid-line and the TTY status line never tears. Sequential sweeps use
    the implicit-current {!start}/{!phase}/{!finish} lifecycle;
    concurrent workers must use {!task_start}/{!task_phase}/{!task_done}
    instead, which carry the model id explicitly (with several models in
    flight, "the current model" no longer identifies whose event is
    being reported). *)

type t

val create :
  ?clock:(unit -> float) ->
  ?out:out_channel ->
  ?tty:bool ->
  ?quiet:bool ->
  ?heartbeat:out_channel ->
  total:int ->
  string ->
  t
(** [create ~total label]. [clock] (default monotonic [Span.now]) makes
    ETA math deterministic in tests. [out] (default [stderr]) receives
    console output unless [quiet]; [tty] overrides terminal detection on
    [out]. [heartbeat] receives one JSONL record per event; the caller
    owns the channel. *)

val start : t -> ?seed:int -> string -> unit
(** [start t id] marks model [id] as running. *)

val phase : t -> string -> unit
(** Name the phase the current model is in ("exact", "N=500", ...). *)

val finish : t -> unit
(** Mark the current model done; bumps [completed]. *)

val skip : t -> ?seed:int -> string -> unit
(** Record model [id] as skipped (e.g. found in a resume file). Counts
    toward [completed] so ETA reflects remaining work only. *)

(** {1 Concurrent lifecycle}

    Explicit-id events for fleet workers sharing one reporter across
    domains. Safe to mix with {!skip} (which already names its model);
    do not mix with {!start}/{!finish} on the same reporter. *)

val task_start : t -> ?seed:int -> string -> unit
(** Emit a ["start"] heartbeat for model [id]; the live line shows the
    most recently started task. *)

val task_phase : t -> id:string -> string -> unit
(** Emit a ["phase"] heartbeat for model [id]. *)

val task_done :
  t -> ?seed:int -> ?elapsed:float -> ?certified:bool -> string -> unit
(** Emit a ["done"] heartbeat for model [id] and bump [completed].
    [elapsed] is the task's own wall time as measured by the caller
    (the reporter cannot attribute shared wall time to one of several
    in-flight tasks); defaults to [0.]. [certified] (default [true])
    marks whether every solve of the task passed its optimality
    certificate; [false] stamps ["certified": false] on the record so
    {!load_completed} [~require_certified:true] will not count it. *)

val close : t -> unit
(** Clear the live line, print a final summary, flush the heartbeat
    channel (without closing it). *)

val completed : t -> int
val elapsed : t -> float

val eta_seconds : t -> float option
(** [elapsed / completed * remaining]; [None] until the first model
    completes or once everything is done. *)

val load_completed : ?require_certified:bool -> string -> string list
(** Model ids recorded as done (or skipped) in a heartbeat JSONL file,
    deduplicated, in file order. A missing file or unparsable lines
    yield no ids rather than an error. [~require_certified:true]
    (default [false]) additionally drops ["done"] records stamped
    ["certified": false] — a resumed fleet run then re-runs
    rescued-but-uncertified models exactly like failed ones. *)
