type histo = {
  bounds : float array; (* strictly increasing; last is infinity *)
  counts : int array; (* same length as bounds; not cumulative *)
  mutable h_count : int;
  mutable h_sum : float;
}

type cell =
  | C_counter of { mutable c : float }
  | C_gauge of { mutable g : float }
  | C_histogram of histo

type metric = { m_help : string; cell : cell }

(* Identity of a metric inside a registry: name plus sorted labels. *)
type key = { k_name : string; k_labels : (string * string) list }

type registry = { lock : Mutex.t; table : (key, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 64 }
let default = create ()

let locked r f =
  Mutex.lock r.lock;
  match f () with
  | x ->
    Mutex.unlock r.lock;
    x
  | exception e ->
    Mutex.unlock r.lock;
    raise e

(* Handles carry the registry lock so mutation never races a snapshot. *)
type counter = { cr : registry; ccell : cell }
type gauge = { gr : registry; gcell : cell }
type histogram = { hr : registry; hcell : cell }

let kind_name = function
  | C_counter _ -> "counter"
  | C_gauge _ -> "gauge"
  | C_histogram _ -> "histogram"

let register registry ~help ~labels name fresh =
  let key = { k_name = name; k_labels = List.sort compare labels } in
  locked registry (fun () ->
      match Hashtbl.find_opt registry.table key with
      | Some m ->
        let want = fresh () in
        if kind_name m.cell <> kind_name want then
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name m.cell));
        m.cell
      | None ->
        let cell = fresh () in
        Hashtbl.add registry.table key { m_help = help; cell };
        cell)

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  { cr = registry; ccell = register registry ~help ~labels name (fun () -> C_counter { c = 0. }) }

let inc ?(by = 1.) t =
  if by < 0. then invalid_arg "Metrics.inc: negative increment";
  locked t.cr (fun () ->
      match t.ccell with C_counter c -> c.c <- c.c +. by | _ -> assert false)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  { gr = registry; gcell = register registry ~help ~labels name (fun () -> C_gauge { g = 0. }) }

let set t v =
  locked t.gr (fun () ->
      match t.gcell with C_gauge g -> g.g <- v | _ -> assert false)

let add t v =
  locked t.gr (fun () ->
      match t.gcell with C_gauge g -> g.g <- g.g +. v | _ -> assert false)

let set_max t v =
  locked t.gr (fun () ->
      match t.gcell with C_gauge g -> g.g <- Float.max g.g v | _ -> assert false)

let default_buckets =
  let decades = [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 1e1; 1e2 ] in
  Array.of_list
    (List.concat_map (fun d -> [ d; 2.5 *. d; 5. *. d ]) decades @ [ 1e3 ])

let make_histo buckets =
  let cleaned =
    List.sort_uniq compare (List.filter Float.is_finite (Array.to_list buckets))
  in
  let bounds = Array.of_list (cleaned @ [ infinity ]) in
  {
    bounds;
    counts = Array.make (Array.length bounds) 0;
    h_count = 0;
    h_sum = 0.;
  }

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(buckets = default_buckets) name =
  {
    hr = registry;
    hcell = register registry ~help ~labels name (fun () -> C_histogram (make_histo buckets));
  }

let observe t v =
  locked t.hr (fun () ->
      match t.hcell with
      | C_histogram h ->
        (* First bucket with v <= bound; the last bound is infinity, so the
           scan always terminates. *)
        let i = ref 0 in
        while v > h.bounds.(!i) do
          incr i
        done;
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v
      | _ -> assert false)

type histogram_data = {
  buckets : (float * int) array;
  count : int;
  sum : float;
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of histogram_data

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

let sample_of key m =
  let value =
    match m.cell with
    | C_counter c -> Counter c.c
    | C_gauge g -> Gauge g.g
    | C_histogram h ->
      (* Buckets are exposed cumulatively (Prometheus [le] semantics):
         each count includes every lower bucket, and the final +Inf
         bucket equals the total observation count. *)
      let cum = ref 0 in
      Histogram
        {
          buckets =
            Array.mapi
              (fun i b ->
                cum := !cum + h.counts.(i);
                (b, !cum))
              h.bounds;
          count = h.h_count;
          sum = h.h_sum;
        }
  in
  { name = key.k_name; labels = key.k_labels; help = m.m_help; value }

let snapshot ?(registry = default) () =
  let all =
    locked registry (fun () ->
        Hashtbl.fold (fun k m acc -> sample_of k m :: acc) registry.table [])
  in
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) all

let find ?registry name =
  List.filter (fun s -> s.name = name) (snapshot ?registry ())

let reset ?(registry = default) () =
  locked registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m.cell with
          | C_counter c -> c.c <- 0.
          | C_gauge g -> g.g <- 0.
          | C_histogram h ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            h.h_count <- 0;
            h.h_sum <- 0.)
        registry.table)
