type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number v -> Buffer.add_string buf (number_to_string v)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Object fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a cursor                      *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse_exn_internal s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %c, found %c" c got)
    | None -> error (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error "invalid \\u escape"
            in
            (* Encode the code point as UTF-8 (BMP only; surrogate pairs
               of the exporters never appear — metric names are ASCII). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> error (Printf.sprintf "invalid escape \\%c" e));
          go ()
        end
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let body = String.sub s start (!pos - start) in
    match float_of_string_opt body with
    | Some v -> Number v
    | None -> error (Printf.sprintf "invalid number %S" body)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Object [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string_body () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> error "expected , or } in object"
        in
        members ();
        Object (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> error "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing content after document";
  v

let parse s =
  try Ok (parse_exn_internal s)
  with Parse_error (pos, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let get_float = function Number v -> Some v | _ -> None

let get_int = function
  | Number v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_list = function List items -> Some items | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
