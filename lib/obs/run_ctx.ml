(* Explicit, domain-safe run context.

   Historically the observability stack kept run state in process
   globals — [Health.cur], the ledger's sink-wide context, [Prof]'s
   flag — which pinned everything to one domain: two domains evaluating
   models concurrently would interleave their health snapshots and
   ledger provenance. A [Run_ctx.t] carries that per-unit-of-work state
   explicitly instead. Every domain has a current context (stored in
   [Domain.DLS], exactly like [Span]'s open-span stacks), so existing
   call sites keep their signatures: [Health.begin_solve] & co. resolve
   the current context instead of a global ref, and [Ledger.record]
   overlays the current context's provenance fields on the sink-wide
   ones.

   Modules above this one attach their state through typed {!slot}s
   (compare [Domain.DLS.new_key]): [Run_ctx] needs no knowledge of
   [Health]'s snapshot type, and future per-run state (e.g. per-model
   solver scratch) costs one [slot] declaration. Slot lookup is a
   handful of list cells under the context's mutex — contexts hold a
   few slots and observers run at solve granularity, never per pivot. *)

type 'a slot = { tid : 'a Type.Id.t; init : unit -> 'a; slot_name : string }
type binding = B : 'a slot * 'a -> binding

type t = {
  id : int;
  seed : int option;
  rng : Mapqn_prng.Rng.t option;
  lock : Mutex.t;
  mutable context : (string * Json.t) list;
  mutable bindings : binding list;
}

let next_id = Atomic.make 0

let create ?seed ?rng ?(context = []) () =
  let rng =
    match (rng, seed) with
    | Some r, _ -> Some r
    | None, Some seed -> Some (Mapqn_prng.Rng.create ~seed)
    | None, None -> None
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    seed;
    rng;
    lock = Mutex.create ();
    context;
    bindings = [];
  }

(* Each domain starts in its own anonymous root context, so telemetry
   written outside any explicit [with_] still lands somewhere coherent
   (and two domains' root contexts never share mutable state). *)
let key = Domain.DLS.new_key (fun () -> create ())
let current () = Domain.DLS.get key

let with_ ctx f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let id t = t.id
let seed t = t.seed
let rng t = t.rng

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
    Mutex.unlock t.lock;
    x
  | exception e ->
    Mutex.unlock t.lock;
    raise e

(* ------------------------------------------------------------------ *)
(* Ledger context overlay                                              *)
(* ------------------------------------------------------------------ *)

let set_context t key value =
  locked t (fun () ->
      t.context <- (key, value) :: List.remove_assoc key t.context)

let context t = locked t (fun () -> t.context)

(* ------------------------------------------------------------------ *)
(* Typed state slots                                                   *)
(* ------------------------------------------------------------------ *)

let slot ~name init = { tid = Type.Id.make (); init; slot_name = name }
let slot_name s = s.slot_name

let get : type a. t -> a slot -> a =
 fun ctx s ->
  locked ctx (fun () ->
      let rec find : binding list -> a option = function
        | [] -> None
        | B (s', v) :: rest -> (
          match Type.Id.provably_equal s'.tid s.tid with
          | Some Type.Equal -> Some v
          | None -> find rest)
      in
      match find ctx.bindings with
      | Some v -> v
      | None ->
        let v = s.init () in
        ctx.bindings <- B (s, v) :: ctx.bindings;
        v)
