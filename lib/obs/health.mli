(** Numerical-stability telemetry for the LP layers.

    The revised simplex and the certificate checker report their
    numerical health here: LU growth factor and pivot magnitudes per
    refactorization, eta-chain residual drift sampled on the reinversion
    triggers, degeneracy streaks and Bland switches, the depth of the
    anti-degeneracy perturbation ladder, a per-solve condition estimate
    and the certificate residual triple.

    Every observation is mirrored twice: into the {!Metrics} registry
    (gauges carry the last observation, [*_peak]/[*_depth] gauges the
    high-water mark, counters accumulate), and into a per-solve
    {!snapshot} that {!begin_solve} resets — the run ledger
    ({!Ledger}) embeds the snapshot in each record so every solve
    carries its own worst-case numerics.

    The snapshot lives in the current {!Run_ctx} (not a process
    global): concurrent domains each accumulate the numerics of their
    own solves, provided each unit of work runs under its own context
    ({!Run_ctx.with_}, as the fleet runner arranges). The Metrics
    mirrors remain process-wide last-writer-wins gauges.

    Thread-safe; observers are called once per refactorization, drift
    check or solve — never on the per-pivot path. *)

type rescue = Refined | Reperturbed | Cold_resolve | Dense_oracle | Uncertified
(** The rung of the certificate rescue ladder that produced (or failed
    to produce) a passing certificate for a solve. [Refined] also covers
    the always-on post-solve iterative refinement when it had to correct
    a residual large enough to have threatened the certificate. Ordered:
    each constructor is a strictly deeper escalation than the previous,
    and [Uncertified] means the whole ladder was exhausted. *)

val rescue_depth_of : rescue -> int
(** Ladder depth, 1 ([Refined]) to 5 ([Uncertified]). *)

val rescue_to_string : rescue -> string
val rescue_of_string : string -> rescue option

type snapshot = {
  lu_growth : float;
      (** worst LU element growth factor over the refactorizations of
          this solve (max |factor entry| / max |basis entry|) *)
  lu_min_pivot : float;  (** smallest |pivot| accepted by any of them *)
  lu_max_pivot : float;  (** largest |pivot| accepted by any of them *)
  refactorizations : int;  (** refactorizations observed this solve *)
  eta_drift : float;
      (** worst sampled divergence of incrementally updated basic values
          from a fresh FTRAN of the right-hand side *)
  drift_samples : int;  (** drift checks performed this solve *)
  degeneracy_streak : int;  (** longest degenerate-pivot streak *)
  bland_switches : int;  (** stalls that forced Bland's rule *)
  perturbation_salt : int;  (** deepest perturbation-ladder salt *)
  condition_estimate : float;
      (** worst per-solve condition estimate of a final basis *)
  cert_primal : float;  (** worst certificate primal residual *)
  cert_dual : float;  (** worst certificate dual violation *)
  cert_comp : float;  (** worst certificate complementary-slackness gap *)
  cert_failures : int;  (** certificates that exceeded tolerance *)
  rescue : rescue option;
      (** deepest rescue rung engaged this solve, [None] when no rescue
          was needed *)
  refine_residual : float;
      (** worst primal residual found (and corrected) by post-solve
          iterative refinement this solve *)
}

val empty : snapshot

val begin_solve : unit -> unit
(** Reset the per-solve snapshot of the current {!Run_ctx}. Called by
    the solve-level entry points (e.g. [Bounds.eval],
    [Bounds.Sweep.step]) so {!current} describes exactly one unit of
    ledger-recorded work. *)

val current : unit -> snapshot
(** The current context's snapshot. *)

(** {1 Observers} — called by the instrumented layers. *)

val observe_refactor : growth:float -> min_pivot:float -> max_pivot:float -> unit
val observe_drift : float -> unit
val observe_degeneracy_streak : int -> unit
val observe_stall : unit -> unit
val observe_salt : int -> unit
val observe_condition : float -> unit

val observe_certificate :
  primal:float -> dual:float -> comp:float -> accepted:bool -> unit

val observe_rescue : rescue -> unit
(** Record that a rescue rung produced this solve's accepted result (or,
    for [Uncertified], that the ladder was exhausted). The snapshot
    keeps the deepest rung; the per-rung [health_rescue_*_total]
    counters accumulate process-wide. *)

val observe_refinement : residual:float -> unit
(** Record the primal residual that post-solve iterative refinement
    found at the reported point (before correcting it). *)

val to_json : snapshot -> Json.t
(** The snapshot as the ledger's ["health"] object (certificate fields
    are omitted — the ledger records them under ["certificate"]). *)
