type agg = { mutable count : int; mutable total : float; mutable max_ : float }

type collector = {
  lock : Mutex.t;
  clock : unit -> float;
  mutable stack : string list; (* innermost first *)
  table : (string list, agg) Hashtbl.t; (* key: path, outermost first *)
}

let create ?(clock = Unix.gettimeofday) () =
  { lock = Mutex.create (); clock; stack = []; table = Hashtbl.create 32 }

let default = create ()

let locked c f =
  Mutex.lock c.lock;
  match f () with
  | x ->
    Mutex.unlock c.lock;
    x
  | exception e ->
    Mutex.unlock c.lock;
    raise e

let with_ ?(collector = default) name f =
  if String.contains name '/' then invalid_arg "Span.with_: '/' in span name";
  let path =
    locked collector (fun () ->
        collector.stack <- name :: collector.stack;
        List.rev collector.stack)
  in
  let t0 = collector.clock () in
  Fun.protect f ~finally:(fun () ->
      let dt = collector.clock () -. t0 in
      locked collector (fun () ->
          (* Pop back to this span even if nested spans leaked (e.g. an
             exception skipped their finalizers' order). *)
          (match collector.stack with
          | top :: rest when top = name -> collector.stack <- rest
          | stack ->
            let rec drop = function
              | top :: rest when top = name -> rest
              | _ :: rest -> drop rest
              | [] -> []
            in
            collector.stack <- drop stack);
          let a =
            match Hashtbl.find_opt collector.table path with
            | Some a -> a
            | None ->
              let a = { count = 0; total = 0.; max_ = 0. } in
              Hashtbl.add collector.table path a;
              a
          in
          a.count <- a.count + 1;
          a.total <- a.total +. dt;
          a.max_ <- Float.max a.max_ dt))

type entry = { path : string list; count : int; total : float; max_ : float }

let snapshot ?(collector = default) () =
  let all =
    locked collector (fun () ->
        Hashtbl.fold
          (fun path (a : agg) acc ->
            { path; count = a.count; total = a.total; max_ = a.max_ } :: acc)
          collector.table [])
  in
  List.sort (fun a b -> compare a.path b.path) all

let total ?collector path =
  List.find_map
    (fun e -> if e.path = path then Some e.total else None)
    (snapshot ?collector ())

let reset ?(collector = default) () =
  locked collector (fun () ->
      Hashtbl.reset collector.table;
      collector.stack <- [])
