(* Monotonic clock in seconds. [Monotonic_clock.now] is a noalloc
   clock_gettime(CLOCK_MONOTONIC) returning nanoseconds; converting to a
   float keeps the rest of the span arithmetic unchanged. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* GC/allocation profiling is owned here (rather than in [Prof]) so that
   [with_] can read it without a dependency cycle; [Prof.enable] flips
   it. *)
let gc_profiling_flag = Atomic.make false
let set_gc_profiling b = Atomic.set gc_profiling_flag b
let gc_profiling () = Atomic.get gc_profiling_flag

type agg = {
  mutable count : int;
  mutable total : float;
  mutable max_ : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
  mutable compactions : int;
}

type collector = {
  id : int;
  lock : Mutex.t;
  clock : unit -> float;
  table : (string list, agg) Hashtbl.t; (* key: path, outermost first *)
}

let next_id = Atomic.make 0

(* Each domain keeps its own open-span stacks (one per collector, keyed
   by collector id), so concurrent domains recording into the same
   collector cannot interleave their paths. Only the aggregate table is
   shared, and it stays mutex-guarded. *)
let stacks_key : (int, string list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let stack_of c =
  let stacks = Domain.DLS.get stacks_key in
  match Hashtbl.find_opt stacks c.id with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add stacks c.id s;
    s

let create ?(clock = now) () =
  {
    id = Atomic.fetch_and_add next_id 1;
    lock = Mutex.create ();
    clock;
    table = Hashtbl.create 32;
  }

let default = create ()

let locked c f =
  Mutex.lock c.lock;
  match f () with
  | x ->
    Mutex.unlock c.lock;
    x
  | exception e ->
    Mutex.unlock c.lock;
    raise e

let find_agg c path =
  match Hashtbl.find_opt c.table path with
  | Some a -> a
  | None ->
    let a =
      {
        count = 0;
        total = 0.;
        max_ = 0.;
        minor_words = 0.;
        major_words = 0.;
        promoted_words = 0.;
        compactions = 0;
      }
    in
    Hashtbl.add c.table path a;
    a

let with_ ?(collector = default) name f =
  if String.contains name '/' then invalid_arg "Span.with_: '/' in span name";
  let stack = stack_of collector in
  stack := name :: !stack;
  let path = List.rev !stack in
  (* [quick_stat].minor_words only advances at minor collections in
     native code; [Gc.minor_words ()] reads the young pointer and is
     exact, so splice it in for the one field where small deltas
     matter. *)
  let gc_snapshot () =
    { (Gc.quick_stat ()) with Gc.minor_words = Gc.minor_words () }
  in
  let g0 = if Atomic.get gc_profiling_flag then Some (gc_snapshot ()) else None in
  let t0 = collector.clock () in
  Fun.protect f ~finally:(fun () ->
      (* Clamp: a stepped wall clock injected via [?clock] (or plain
         noise) must never record a negative duration. *)
      let dt = Float.max 0. (collector.clock () -. t0) in
      let g1 = match g0 with Some _ -> Some (gc_snapshot ()) | None -> None in
      (* Pop back to this span even if nested spans leaked (e.g. an
         exception skipped their finalizers' order). *)
      (match !stack with
      | top :: rest when top == name || top = name -> stack := rest
      | st ->
        let rec drop = function
          | top :: rest when top = name -> rest
          | _ :: rest -> drop rest
          | [] -> []
        in
        stack := drop st);
      locked collector (fun () ->
          let a = find_agg collector path in
          a.count <- a.count + 1;
          a.total <- a.total +. dt;
          a.max_ <- Float.max a.max_ dt;
          match (g0, g1) with
          | Some g0, Some g1 ->
            a.minor_words <- a.minor_words +. (g1.Gc.minor_words -. g0.Gc.minor_words);
            a.major_words <- a.major_words +. (g1.Gc.major_words -. g0.Gc.major_words);
            a.promoted_words <-
              a.promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
            a.compactions <- a.compactions + (g1.Gc.compactions - g0.Gc.compactions)
          | _ -> ()))

let add ?(collector = default) ?(count = 1) ?max_ ?(minor_words = 0.) name
    seconds =
  if String.contains name '/' then invalid_arg "Span.add: '/' in span name";
  let stack = stack_of collector in
  let path = List.rev (name :: !stack) in
  let seconds = Float.max 0. seconds in
  let max_ =
    match max_ with Some m -> m | None -> if count <= 1 then seconds else 0.
  in
  locked collector (fun () ->
      let a = find_agg collector path in
      a.count <- a.count + count;
      a.total <- a.total +. seconds;
      a.max_ <- Float.max a.max_ max_;
      a.minor_words <- a.minor_words +. minor_words)

type entry = {
  path : string list;
  count : int;
  total : float;
  max_ : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  compactions : int;
}

let snapshot ?(collector = default) () =
  let all =
    locked collector (fun () ->
        Hashtbl.fold
          (fun path (a : agg) acc ->
            {
              path;
              count = a.count;
              total = a.total;
              max_ = a.max_;
              minor_words = a.minor_words;
              major_words = a.major_words;
              promoted_words = a.promoted_words;
              compactions = a.compactions;
            }
            :: acc)
          collector.table [])
  in
  List.sort (fun a b -> compare a.path b.path) all

let total ?collector path =
  List.find_map
    (fun e -> if e.path = path then Some e.total else None)
    (snapshot ?collector ())

let reset ?(collector = default) () =
  locked collector (fun () -> Hashtbl.reset collector.table);
  (* Open-span stacks are domain-local; only the calling domain's stack
     can be cleared here. *)
  stack_of collector := []
