(** Explicit, domain-safe run context.

    A context carries the state that used to live in process globals —
    the numerical-health snapshot ({!Health}), the ledger provenance
    overlay, a deterministic per-model seed/PRNG — so independent units
    of work (one model evaluation in a fleet run) can execute on
    different domains without corrupting each other's telemetry.

    Every domain has a {e current} context, stored in [Domain.DLS]: a
    fresh anonymous root per domain by default, or whatever {!with_}
    installed. The observability modules resolve the current context
    internally, so single-threaded callers see exactly the old global
    behavior without touching a signature.

    Modules attach their own per-run state through typed {!slot}s
    (mirroring [Domain.DLS.new_key]): state is created lazily per
    context on first access, and [Run_ctx] needs no compile-time
    knowledge of the state's type. *)

type t

val create :
  ?seed:int -> ?rng:Mapqn_prng.Rng.t -> ?context:(string * Json.t) list -> unit -> t
(** A fresh context. [seed] is the deterministic per-model seed the
    fleet derives from the experiment seed; when [rng] is omitted but
    [seed] given, the context carries [Rng.create ~seed]. [context] is
    the initial ledger overlay (see {!set_context}). *)

val current : unit -> t
(** The calling domain's current context (a per-domain root context when
    no {!with_} is active). *)

val with_ : t -> (unit -> 'a) -> 'a
(** [with_ ctx f] runs [f] with [ctx] as the current context of the
    calling domain, restoring the previous context afterwards (also on
    exceptions). Nesting is fine; contexts may be reused across calls
    but must not be current on two domains at once. *)

val id : t -> int
(** Unique per-process context id (creation order). *)

val seed : t -> int option
val rng : t -> Mapqn_prng.Rng.t option

(** {1 Ledger context overlay}

    Key/value provenance pairs that {!Ledger.record} merges over the
    sink-wide context for records written while this context is
    current — e.g. the fleet sets ["model"] and the per-model seed, so
    concurrent workers' records carry their own provenance instead of
    the last writer's. *)

val set_context : t -> string -> Json.t -> unit
val context : t -> (string * Json.t) list

(** {1 Typed state slots} *)

type 'a slot

val slot : name:string -> (unit -> 'a) -> 'a slot
(** Declare a state slot (typically at module initialization, compare
    [Domain.DLS.new_key]). [init] creates the state lazily, once per
    context, on first {!get}. *)

val get : t -> 'a slot -> 'a
(** The context's state for [slot], created by the slot's [init] on
    first access. Thread-safe. *)

val slot_name : 'a slot -> string
