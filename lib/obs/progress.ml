(* Sweep progress reporting for long experiment runs (Fig 4/8, Table 1):
   per-model status with an ETA, a TTY-aware live status line, and JSONL
   heartbeat records that double as a checkpoint/resume substrate — a
   rerun can load the heartbeat file and skip models already marked
   done.

   One mutex guards all mutable state AND the console/heartbeat
   rendering: fleet workers on different domains report through the same
   reporter, and without the lock their heartbeats would interleave
   mid-record and the TTY line would tear. The classic
   [start]/[phase]/[finish] lifecycle keys on an implicit "current"
   model and only suits one reporter per worker; concurrent workers use
   the [task_*] entry points, which carry the model id explicitly so a
   "done" heartbeat can never be attributed to whichever model another
   worker started last. *)

type t = {
  clock : unit -> float;
  label : string;
  total : int;
  out : out_channel option;
  tty : bool;
  heartbeat : out_channel option;
  t0 : float;
  lock : Mutex.t;
  mutable completed : int;
  mutable skipped : int;
  mutable current : string option;
  mutable seed : int option;
  mutable phase : string option;
  mutable model_t0 : float;
  mutable live_len : int;
}

let create ?(clock = Span.now) ?(out = stderr) ?tty ?(quiet = false) ?heartbeat
    ~total label =
  let out = if quiet then None else Some out in
  let tty =
    match (tty, out) with
    | Some t, _ -> t
    | None, None -> false
    | None, Some oc -> (
      try Unix.isatty (Unix.descr_of_out_channel oc) with _ -> false)
  in
  let t0 = clock () in
  (* A sweep killed mid-run (Ctrl-C, OOM, timeout) must keep its last
     completed heartbeat records — --resume-from depends on them. Each
     heartbeat already flushes, but an at_exit flush also covers records
     buffered by any writer sharing the channel, and costs nothing. *)
  (match heartbeat with
  | Some oc -> at_exit (fun () -> try flush oc with _ -> ())
  | None -> ());
  {
    clock;
    label;
    total = max 0 total;
    out;
    tty;
    heartbeat;
    t0;
    lock = Mutex.create ();
    completed = 0;
    skipped = 0;
    current = None;
    seed = None;
    phase = None;
    model_t0 = t0;
    live_len = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
    Mutex.unlock t.lock;
    x
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let elapsed_u t = Float.max 0. (t.clock () -. t.t0)
let completed t = locked t (fun () -> t.completed)
let elapsed t = elapsed_u t

(* elapsed / completed * remaining: deterministic given an injected
   clock, and skipped models count as completed work so a resumed run
   does not project the skipped prefix onto the remainder. *)
let eta_seconds_u t =
  if t.completed <= 0 || t.completed >= t.total then None
  else Some (elapsed_u t /. float_of_int t.completed *. float_of_int (t.total - t.completed))

let eta_seconds t = locked t (fun () -> eta_seconds_u t)

let duration s =
  if s < 60. then Printf.sprintf "%.0fs" s
  else if s < 3600. then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

let eta_cell_u t =
  match eta_seconds_u t with None -> "" | Some s -> " eta " ^ duration s

(* ------------------------------------------------------------------ *)
(* Heartbeats (caller holds the lock)                                  *)
(* ------------------------------------------------------------------ *)

let heartbeat_u ?(extra = []) t ~event ~model ~seed ~phase ~elapsed:dt =
  match t.heartbeat with
  | None -> ()
  | Some oc ->
    let opt name f v = match v with None -> [] | Some v -> [ (name, f v) ] in
    let record =
      Json.Object
        (("ts", Json.Number (elapsed_u t))
        :: ("label", Json.String t.label)
        :: ("event", Json.String event)
        :: (opt "model" (fun m -> Json.String m) model
           @ opt "seed" (fun s -> Json.Number (float_of_int s)) seed
           @ opt "phase" (fun p -> Json.String p) phase
           @ extra
           @ [
               ("elapsed", Json.Number (Float.max 0. dt));
               ("completed", Json.Number (float_of_int t.completed));
               ("total", Json.Number (float_of_int t.total));
             ]))
    in
    output_string oc (Json.to_string record);
    output_char oc '\n';
    flush oc

(* The implicit-current variant used by the sequential lifecycle. *)
let heartbeat_cur_u t ~event =
  heartbeat_u t ~event ~model:t.current ~seed:t.seed ~phase:t.phase
    ~elapsed:(t.clock () -. t.model_t0)

(* ------------------------------------------------------------------ *)
(* Console output (caller holds the lock)                              *)
(* ------------------------------------------------------------------ *)

let live_line_u t =
  let pct =
    if t.total = 0 then 100.
    else 100. *. float_of_int t.completed /. float_of_int t.total
  in
  let where =
    match t.current with
    | None -> ""
    | Some id -> (
      match t.phase with
      | None -> "  " ^ id
      | Some p -> Printf.sprintf "  %s:%s" id p)
  in
  Printf.sprintf "%s %d/%d (%.0f%%)%s%s" t.label t.completed t.total pct
    (eta_cell_u t) where

let redraw_u t =
  match t.out with
  | Some oc when t.tty ->
    let line = live_line_u t in
    let pad = max 0 (t.live_len - String.length line) in
    output_string oc ("\r" ^ line ^ String.make pad ' ');
    t.live_len <- String.length line;
    flush oc
  | _ -> ()

let println_u t msg =
  match t.out with
  | None -> ()
  | Some oc ->
    if t.tty then begin
      (* Clear the live line before emitting a scrolling record. *)
      output_string oc ("\r" ^ String.make t.live_len ' ' ^ "\r");
      t.live_len <- 0
    end;
    output_string oc msg;
    output_char oc '\n';
    flush oc

(* ------------------------------------------------------------------ *)
(* Sequential lifecycle (implicit current model)                       *)
(* ------------------------------------------------------------------ *)

let start t ?seed id =
  locked t (fun () ->
      t.current <- Some id;
      t.seed <- seed;
      t.phase <- None;
      t.model_t0 <- t.clock ();
      heartbeat_cur_u t ~event:"start";
      redraw_u t)

let phase t name =
  locked t (fun () ->
      t.phase <- Some name;
      heartbeat_cur_u t ~event:"phase";
      redraw_u t)

let finish t =
  locked t (fun () ->
      let dt = Float.max 0. (t.clock () -. t.model_t0) in
      t.completed <- t.completed + 1;
      heartbeat_cur_u t ~event:"done";
      (match t.current with
      | Some id when not t.tty ->
        println_u t
          (Printf.sprintf "%s [%d/%d] %s done in %s%s" t.label t.completed
             t.total id (duration dt) (eta_cell_u t))
      | _ -> ());
      t.current <- None;
      t.phase <- None;
      redraw_u t)

let skip t ?seed id =
  locked t (fun () ->
      t.completed <- t.completed + 1;
      t.skipped <- t.skipped + 1;
      heartbeat_u t ~event:"skip" ~model:(Some id) ~seed ~phase:None ~elapsed:0.;
      redraw_u t)

(* ------------------------------------------------------------------ *)
(* Concurrent lifecycle (explicit model ids, for fleet workers)        *)
(* ------------------------------------------------------------------ *)

let task_start t ?seed id =
  locked t (fun () ->
      (* The live line shows the most recently started task — with
         several in flight there is no single "current" model, only a
         representative one. *)
      t.current <- Some id;
      t.seed <- seed;
      t.phase <- None;
      heartbeat_u t ~event:"start" ~model:(Some id) ~seed ~phase:None
        ~elapsed:0.;
      redraw_u t)

let task_phase t ~id name =
  locked t (fun () ->
      (if t.current = Some id then t.phase <- Some name);
      heartbeat_u t ~event:"phase" ~model:(Some id) ~seed:t.seed
        ~phase:(Some name) ~elapsed:0.;
      redraw_u t)

let task_done t ?seed ?(elapsed = 0.) ?(certified = true) id =
  locked t (fun () ->
      t.completed <- t.completed + 1;
      (* The flag is only written when false: "done" records stay
         byte-compatible with pre-rescue heartbeat files, and a missing
         flag reads as certified. *)
      let extra = if certified then [] else [ ("certified", Json.Bool false) ] in
      heartbeat_u ~extra t ~event:"done" ~model:(Some id) ~seed ~phase:None
        ~elapsed;
      if not t.tty && t.out <> None then
        println_u t
          (Printf.sprintf "%s [%d/%d] %s done in %s%s" t.label t.completed
             t.total id (duration elapsed) (eta_cell_u t));
      if t.current = Some id then begin
        t.current <- None;
        t.phase <- None
      end;
      redraw_u t)

let close t =
  locked t (fun () ->
      (match t.out with
      | Some oc when t.tty ->
        output_string oc ("\r" ^ String.make t.live_len ' ' ^ "\r");
        t.live_len <- 0;
        flush oc
      | _ -> ());
      println_u t
        (Printf.sprintf "%s: %d/%d done%s in %s" t.label t.completed t.total
           (if t.skipped > 0 then Printf.sprintf " (%d skipped)" t.skipped
            else "")
           (duration (elapsed_u t)));
      match t.heartbeat with Some oc -> flush oc | None -> ())

(* ------------------------------------------------------------------ *)
(* Resume                                                               *)
(* ------------------------------------------------------------------ *)

(* Model ids recorded as completed ("done" — or "skip", which a resumed
   run emits for models it found already done) in a heartbeat JSONL
   file. Missing files and unparsable lines yield no ids rather than
   errors: a heartbeat file is best-effort by design.

   [require_certified] drops "done" records carrying
   ["certified": false] — models whose run ended on a
   rescued-but-uncertified rung. A resumed run then retries them just
   like outright failures (which emit no "done" at all), so harvesting
   with an accept-uncertified policy cannot silently pin partial
   rescues. Records without the flag (all pre-rescue heartbeat files)
   read as certified. *)
let load_completed ?(require_certified = false) path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let ids = ref [] in
    let seen = Hashtbl.create 16 in
    (try
       while true do
         let line = input_line ic in
         match Json.parse line with
         | Error _ -> ()
         | Ok j -> (
           match (Json.member "event" j, Json.member "model" j) with
           | Some (Json.String (("done" | "skip") as ev)), Some (Json.String id)
             ->
             let uncertified =
               require_certified && ev = "done"
               && Json.member "certified" j = Some (Json.Bool false)
             in
             if (not uncertified) && not (Hashtbl.mem seen id) then begin
               Hashtbl.add seen id ();
               ids := id :: !ids
             end
           | _ -> ())
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !ids
  end
