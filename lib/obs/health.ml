(* Numerical-stability telemetry for the LP layers.

   The revised simplex and the certificate checker report what their
   numerics looked like — LU growth factor and pivot magnitudes per
   refactorization, eta-chain drift sampled on the reinversion triggers,
   degeneracy streaks, perturbation-ladder depth, a per-solve condition
   estimate and the certificate residual triple — into one module that
   (a) mirrors everything into the {!Metrics} registry and (b) keeps a
   per-solve snapshot the run ledger embeds in each record.

   The snapshot lives in the current {!Run_ctx} (one typed slot per
   context) rather than a process global, so two domains evaluating
   models concurrently each accumulate their own solve's numerics; the
   Metrics mirrors stay process-wide (the registry is itself
   mutex-guarded and gauges are last-writer-wins by design).

   Observers are called from hot-adjacent code (once per
   refactorization / drift check / solve, never per pivot), so plain
   mutation under one mutex is cheap enough. *)

type rescue = Refined | Reperturbed | Cold_resolve | Dense_oracle | Uncertified

let rescue_depth_of = function
  | Refined -> 1
  | Reperturbed -> 2
  | Cold_resolve -> 3
  | Dense_oracle -> 4
  | Uncertified -> 5

let rescue_to_string = function
  | Refined -> "refined"
  | Reperturbed -> "reperturbed"
  | Cold_resolve -> "cold_resolve"
  | Dense_oracle -> "dense_oracle"
  | Uncertified -> "uncertified"

let rescue_of_string = function
  | "refined" -> Some Refined
  | "reperturbed" -> Some Reperturbed
  | "cold_resolve" -> Some Cold_resolve
  | "dense_oracle" -> Some Dense_oracle
  | "uncertified" -> Some Uncertified
  | _ -> None

type snapshot = {
  lu_growth : float;
  lu_min_pivot : float;
  lu_max_pivot : float;
  refactorizations : int;
  eta_drift : float;
  drift_samples : int;
  degeneracy_streak : int;
  bland_switches : int;
  perturbation_salt : int;
  condition_estimate : float;
  cert_primal : float;
  cert_dual : float;
  cert_comp : float;
  cert_failures : int;
  rescue : rescue option;
  refine_residual : float;
}

let empty =
  {
    lu_growth = 0.;
    lu_min_pivot = 0.;
    lu_max_pivot = 0.;
    refactorizations = 0;
    eta_drift = 0.;
    drift_samples = 0;
    degeneracy_streak = 0;
    bland_switches = 0;
    perturbation_salt = 0;
    condition_estimate = 0.;
    cert_primal = 0.;
    cert_dual = 0.;
    cert_comp = 0.;
    cert_failures = 0;
    rescue = None;
    refine_residual = 0.;
  }

(* Per-context state. The slot init runs once per context; the mutex
   covers observers racing a [current] read on the same context (the
   common case — a worker's own solve — is uncontended). *)
type state = { lock : Mutex.t; mutable cur : snapshot }

let slot =
  Run_ctx.slot ~name:"health" (fun () ->
      { lock = Mutex.create (); cur = empty })

let state () = Run_ctx.get (Run_ctx.current ()) slot

let locked st f =
  Mutex.lock st.lock;
  match f () with
  | x ->
    Mutex.unlock st.lock;
    x
  | exception e ->
    Mutex.unlock st.lock;
    raise e

(* Registry mirrors. Gauges carry the LAST observation (what the solver
   numerics look like right now); the snapshot keeps worst-since-reset
   so a ledger record summarizes its whole solve. *)

let g_growth =
  Metrics.gauge
    ~help:"LU element growth factor of the last basis refactorization."
    "health_lu_growth_factor"

let g_min_pivot =
  Metrics.gauge
    ~help:"Smallest |pivot| accepted by the last basis refactorization."
    "health_lu_min_pivot"

let g_max_pivot =
  Metrics.gauge
    ~help:"Largest |pivot| accepted by the last basis refactorization."
    "health_lu_max_pivot"

let g_drift =
  Metrics.gauge
    ~help:
      "Last sampled eta-chain residual drift (incremental basic values vs a \
       fresh FTRAN of the right-hand side)."
    "health_eta_drift"

let g_streak =
  Metrics.gauge
    ~help:"Longest degenerate-pivot streak seen (high-water mark)."
    "health_degeneracy_streak_peak"

let c_stalls =
  Metrics.counter
    ~help:"Degeneracy stalls that forced a switch to Bland's rule."
    "health_degeneracy_stalls_total"

let g_salt =
  Metrics.gauge
    ~help:"Deepest anti-degeneracy perturbation salt reached (high-water mark)."
    "health_perturbation_salt_depth"

let g_cond =
  Metrics.gauge
    ~help:
      "Condition estimate of the final basis of the last solve (a cheap \
       one-sided bound)."
    "health_condition_estimate"

let begin_solve () =
  let st = state () in
  locked st (fun () -> st.cur <- empty)

let current () =
  let st = state () in
  locked st (fun () -> st.cur)

let update f =
  let st = state () in
  locked st (fun () -> st.cur <- f st.cur)

let observe_refactor ~growth ~min_pivot ~max_pivot =
  Metrics.set g_growth growth;
  Metrics.set g_min_pivot min_pivot;
  Metrics.set g_max_pivot max_pivot;
  update (fun c ->
      {
        c with
        lu_growth = Float.max c.lu_growth growth;
        lu_min_pivot =
          (if c.refactorizations = 0 then min_pivot
           else Float.min c.lu_min_pivot min_pivot);
        lu_max_pivot = Float.max c.lu_max_pivot max_pivot;
        refactorizations = c.refactorizations + 1;
      })

let observe_drift drift =
  Metrics.set g_drift drift;
  update (fun c ->
      {
        c with
        eta_drift = Float.max c.eta_drift drift;
        drift_samples = c.drift_samples + 1;
      })

let observe_degeneracy_streak streak =
  Metrics.set_max g_streak (float_of_int streak);
  update (fun c ->
      if streak > c.degeneracy_streak then { c with degeneracy_streak = streak }
      else c)

let observe_stall () =
  Metrics.inc c_stalls;
  update (fun c -> { c with bland_switches = c.bland_switches + 1 })

let observe_salt salt =
  Metrics.set_max g_salt (float_of_int salt);
  update (fun c ->
      if salt > c.perturbation_salt then { c with perturbation_salt = salt }
      else c)

let observe_condition estimate =
  Metrics.set g_cond estimate;
  update (fun c ->
      { c with condition_estimate = Float.max c.condition_estimate estimate })

let c_rescue_refined =
  Metrics.counter
    ~help:"Certificate rescues resolved by iterative refinement (rung 1)."
    "health_rescue_refined_total"

let c_rescue_reperturbed =
  Metrics.counter
    ~help:
      "Certificate rescues resolved by re-solving at a tighter perturbation \
       scale (rung 2)."
    "health_rescue_reperturbed_total"

let c_rescue_cold =
  Metrics.counter
    ~help:"Certificate rescues resolved by a cold re-solve (rung 3)."
    "health_rescue_cold_resolve_total"

let c_rescue_dense =
  Metrics.counter
    ~help:"Certificate rescues resolved by the dense-tableau oracle (rung 4)."
    "health_rescue_dense_oracle_total"

let c_rescue_uncertified =
  Metrics.counter
    ~help:
      "Solves whose rescue ladder was exhausted without a passing \
       certificate."
    "health_rescue_uncertified_total"

let g_refine_residual =
  Metrics.gauge
    ~help:
      "Worst primal residual found (and corrected) by post-solve iterative \
       refinement in the last solve."
    "health_refine_residual"

let observe_rescue r =
  Metrics.inc
    (match r with
    | Refined -> c_rescue_refined
    | Reperturbed -> c_rescue_reperturbed
    | Cold_resolve -> c_rescue_cold
    | Dense_oracle -> c_rescue_dense
    | Uncertified -> c_rescue_uncertified);
  update (fun c ->
      match c.rescue with
      | Some prev when rescue_depth_of prev >= rescue_depth_of r -> c
      | _ -> { c with rescue = Some r })

let observe_refinement ~residual =
  Metrics.set g_refine_residual residual;
  update (fun c ->
      { c with refine_residual = Float.max c.refine_residual residual })

let observe_certificate ~primal ~dual ~comp ~accepted =
  update (fun c ->
      {
        c with
        cert_primal = Float.max c.cert_primal primal;
        cert_dual = Float.max c.cert_dual dual;
        cert_comp = Float.max c.cert_comp comp;
        cert_failures = (c.cert_failures + if accepted then 0 else 1);
      })

let to_json s =
  let num v = Json.Number v in
  let int v = Json.Number (float_of_int v) in
  Json.Object
    [
      ("lu_growth", num s.lu_growth);
      ("lu_min_pivot", num s.lu_min_pivot);
      ("lu_max_pivot", num s.lu_max_pivot);
      ("refactorizations", int s.refactorizations);
      ("eta_drift", num s.eta_drift);
      ("drift_samples", int s.drift_samples);
      ("degeneracy_streak", int s.degeneracy_streak);
      ("bland_switches", int s.bland_switches);
      ("perturbation_salt", int s.perturbation_salt);
      ("condition_estimate", num s.condition_estimate);
      ( "rescue",
        match s.rescue with
        | None -> Json.Null
        | Some r -> Json.String (rescue_to_string r) );
      ( "rescue_depth",
        int (match s.rescue with None -> 0 | Some r -> rescue_depth_of r) );
      ("refine_residual", num s.refine_residual);
    ]
