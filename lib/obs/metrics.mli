(** In-memory metrics registry: counters, gauges and histograms.

    The solver layers record what they did (pivot counts, residuals,
    state-space sizes, event throughput) into a process-global registry
    which front-ends snapshot and export ({!Export}) after a run. The
    registry has no dependencies beyond the standard library, and all
    operations are guarded by a per-registry mutex so concurrent domains
    can share one registry.

    Metrics are identified by [(name, labels)]; registering the same
    identity twice returns the same underlying metric, so call sites may
    re-register freely (e.g. per-station counters created inside a loop).
    Names should follow Prometheus conventions ([snake_case], counters
    ending in [_total]) so the Prometheus exporter needs no renaming. *)

type registry

val create : unit -> registry
(** A fresh, empty registry (used by tests; solver instrumentation uses
    {!default}). *)

val default : registry
(** The process-global registry all built-in instrumentation records to. *)

type counter
type gauge
type histogram

val counter :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  counter
(** Get or create a monotonically increasing counter. Raises
    [Invalid_argument] if the [(name, labels)] identity is already
    registered with a different metric kind. *)

val inc : ?by:float -> counter -> unit
(** Increment (default [by = 1.]). Raises [Invalid_argument] on a negative
    increment — counters only go up; use a gauge otherwise. *)

val gauge :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  gauge
(** Get or create a gauge (a value that can go up and down). *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** [set_max g v] sets [g] to [max v (current value)] — high-water marks
    (e.g. the simulator's event-heap peak size). *)

val default_buckets : float array
(** Decade buckets 1e-6 .. 1e3 with 1-2.5-5 subdivision — a reasonable
    default for durations in seconds and iteration deltas. *)

val histogram :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** Get or create a histogram with the given bucket upper bounds
    (default {!default_buckets}). Bounds are sorted and deduplicated; an
    implicit [+infinity] overflow bucket is always present. If the
    identity is already registered, the existing histogram is returned
    and [buckets] is ignored. *)

val observe : histogram -> float -> unit
(** Record a value: it lands in the first bucket whose upper bound is
    [>= v] (Prometheus [le] semantics). *)

(** {1 Snapshots} *)

type histogram_data = {
  buckets : (float * int) array;
      (** (upper bound, cumulative count of observations [<=] bound) —
          Prometheus [le] semantics. The last entry's bound is
          [infinity] and its count equals [count]. *)
  count : int;  (** total observations *)
  sum : float;  (** sum of observed values *)
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of histogram_data

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
  help : string;
  value : value;
}

val snapshot : ?registry:registry -> unit -> sample list
(** A consistent copy of every registered metric, sorted by name then
    labels. *)

val find : ?registry:registry -> string -> sample list
(** All samples with the given name (one per label set). *)

val reset : ?registry:registry -> unit -> unit
(** Zero every metric in place. Registrations (and outstanding handles)
    stay valid — this resets values, it does not unregister. *)
