(** Stationary distributions of large sparse CTMCs.

    The exact solver for MAP queueing networks needs [π Q = 0, π 1 = 1] on
    generators with 10³–10⁵ states. GTH is O(n³) and dense, so beyond a
    threshold we switch to iterative methods that only touch nonzeros. *)

type method_ = Gth | Power | Gauss_seidel | Auto
(** [Auto] picks GTH below {!val:gth_threshold} states, Gauss–Seidel above. *)

val gth_threshold : int
(** State-count threshold (500) below which [Auto] uses dense GTH. *)

type options = {
  method_ : method_;
  tol : float;  (** convergence tolerance on successive iterates (L∞) *)
  max_iter : int;
  check_residual : bool;
      (** verify [‖π Q‖∞ <= 100·tol] after convergence and fail otherwise *)
}

val default_options : options
(** [Auto], tol [1e-12], max_iter [1_000_000], residual check on. *)

exception
  Convergence_failure of { method_name : string; iterations : int; residual : float }
(** Raised when an iterative method exhausts its iteration budget or the
    post-solve residual check fails. The failure is also recorded in the
    {!Mapqn_obs.Metrics} registry
    ([stationary_convergence_failures_total], [stationary_residual]) so
    telemetry shows failed solves even when the exception is caught. *)

exception
  No_convergence of { method_name : string; iterations : int; residual : float }
(** @deprecated Old name of {!Convergence_failure}; the two constructors
    are equal, so matching on either catches both. *)

val solve : ?options:options -> Csr.t -> float array
(** Stationary row vector of an irreducible CTMC generator given as a
    sparse matrix (rows must sum to ~0). Raises [Invalid_argument] on a
    non-square matrix or bad row sums, {!Convergence_failure} if the
    chosen iterative method stalls or leaves a residual above
    [100·tol]. *)

val residual : Csr.t -> float array -> float
(** [‖π Q‖∞] — how far [π] is from stationarity. *)
