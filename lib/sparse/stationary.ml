type method_ = Gth | Power | Gauss_seidel | Auto

let gth_threshold = 500

type options = {
  method_ : method_;
  tol : float;
  max_iter : int;
  check_residual : bool;
}

let default_options =
  { method_ = Auto; tol = 1e-12; max_iter = 1_000_000; check_residual = true }

exception
  Convergence_failure of { method_name : string; iterations : int; residual : float }

exception No_convergence = Convergence_failure

module Metrics = Mapqn_obs.Metrics
module Span = Mapqn_obs.Span
module Trace = Mapqn_obs.Trace

let m_iterations method_name =
  Metrics.counter ~help:"Iterations spent by the stationary solvers."
    ~labels:[ ("method", method_name) ]
    "stationary_iterations_total"

let m_residual method_name =
  Metrics.gauge ~help:"Residual of the last stationary solve."
    ~labels:[ ("method", method_name) ]
    "stationary_residual"

let m_delta method_name =
  Metrics.histogram
    ~help:"Successive-iterate deltas of the iterative stationary solvers."
    ~labels:[ ("method", method_name) ]
    "stationary_delta"

let m_failures =
  Metrics.counter ~help:"Stationary solves that failed to converge."
    "stationary_convergence_failures_total"

let fail ~method_name ~iterations ~residual =
  Metrics.inc m_failures;
  Metrics.set (m_residual method_name) residual;
  raise (Convergence_failure { method_name; iterations; residual })

let residual q pi = Mapqn_linalg.Vec.norm_inf (Csr.vec_mat pi q)

let check_generator q =
  if Csr.nrows q <> Csr.ncols q then invalid_arg "Stationary.solve: not square";
  Array.iteri
    (fun i s ->
      if not (Mapqn_util.Tol.close ~rel:1e-6 ~abs:1e-7 s 0.) then
        invalid_arg (Printf.sprintf "Stationary.solve: row %d sums to %g" i s))
    (Csr.row_sums q)

let uniformization_rate q =
  let worst = ref 0. in
  for i = 0 to Csr.nrows q - 1 do
    let d = Csr.get q i i in
    worst := Float.max !worst (Float.abs d)
  done;
  (* Strictly larger than every exit rate so the DTMC is aperiodic. *)
  !worst *. 1.05 +. 1e-12

let normalize_inplace pi =
  let s = Mapqn_util.Ksum.sum pi in
  if s <= 0. then failwith "Stationary: iterate collapsed to zero";
  for i = 0 to Array.length pi - 1 do
    pi.(i) <- pi.(i) /. s
  done

(* Power method on the uniformized chain P = I + Q/Λ. *)
let solve_power ~tol ~max_iter q =
  let n = Csr.nrows q in
  let lambda = uniformization_rate q in
  let p = Csr.scale (1. /. lambda) q in
  let pi = ref (Array.make n (1. /. float_of_int n)) in
  let iter = ref 0 in
  let delta = ref infinity in
  let h_delta = m_delta "power" in
  while !delta > tol && !iter < max_iter do
    incr iter;
    let qpart = Csr.vec_mat !pi p in
    let next = Array.mapi (fun i v -> !pi.(i) +. v) qpart in
    normalize_inplace next;
    delta := Mapqn_linalg.Vec.max_abs_diff next !pi;
    Metrics.observe h_delta !delta;
    if Trace.is_enabled () then
      Trace.record
        (Trace.Sweep
           { solver = "stationary.power"; iteration = !iter; delta = !delta });
    pi := next
  done;
  Metrics.inc ~by:(float_of_int !iter) (m_iterations "power");
  (!pi, !iter, !delta <= tol)

(* Gauss–Seidel on π Q = 0: using columns of Q (rows of Qᵀ),
   π_i = (Σ_{j≠i} π_j q_{j,i}) / (-q_{i,i}), swept in place. *)
let solve_gauss_seidel ~tol ~max_iter q =
  let n = Csr.nrows q in
  let qt = Csr.transpose q in
  let diag = Array.init n (fun i -> Csr.get q i i) in
  Array.iteri
    (fun i d ->
      if d >= 0. then
        invalid_arg (Printf.sprintf "Stationary: state %d has no outflow" i))
    diag;
  let pi = Array.make n (1. /. float_of_int n) in
  let iter = ref 0 in
  let delta = ref infinity in
  let h_delta = m_delta "gauss-seidel" in
  while !delta > tol && !iter < max_iter do
    incr iter;
    let worst = ref 0. in
    for i = 0 to n - 1 do
      let acc = ref 0. in
      Csr.iter_row qt i (fun j v -> if j <> i then acc := !acc +. (pi.(j) *. v));
      let next = !acc /. -.diag.(i) in
      worst := Float.max !worst (Float.abs (next -. pi.(i)));
      pi.(i) <- next
    done;
    normalize_inplace pi;
    delta := !worst;
    Metrics.observe h_delta !delta;
    if Trace.is_enabled () then
      Trace.record
        (Trace.Sweep
           {
             solver = "stationary.gauss-seidel";
             iteration = !iter;
             delta = !delta;
           })
  done;
  Metrics.inc ~by:(float_of_int !iter) (m_iterations "gauss-seidel");
  (pi, !iter, !delta <= tol)

let solve ?(options = default_options) q =
  check_generator q;
  let n = Csr.nrows q in
  let method_ =
    match options.method_ with
    | Auto -> if n <= gth_threshold then Gth else Gauss_seidel
    | m -> m
  in
  let pi, name =
    match method_ with
    | Gth | Auto ->
      (Span.with_ "stationary.gth" (fun () -> Mapqn_linalg.Gth.ctmc (Csr.to_dense q)), "gth")
    | Power ->
      let pi, iters, converged =
        Span.with_ "stationary.power" (fun () ->
            solve_power ~tol:options.tol ~max_iter:options.max_iter q)
      in
      if not converged then
        fail ~method_name:"power" ~iterations:iters ~residual:(residual q pi);
      (pi, "power")
    | Gauss_seidel ->
      let pi, iters, converged =
        Span.with_ "stationary.gauss-seidel" (fun () ->
            solve_gauss_seidel ~tol:options.tol ~max_iter:options.max_iter q)
      in
      if not converged then
        fail ~method_name:"gauss-seidel" ~iterations:iters ~residual:(residual q pi);
      (pi, "gauss-seidel")
  in
  if options.check_residual then begin
    let r = residual q pi in
    Metrics.set (m_residual name) r;
    (* The residual scales with the rates in Q; normalize by the largest
       diagonal rate. *)
    let scale = Float.max 1. (uniformization_rate q) in
    if r /. scale > 100. *. Float.max options.tol 1e-12 then
      fail ~method_name:name ~iterations:0 ~residual:r
  end;
  pi
