module Mat = Mapqn_linalg.Mat

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows + 1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let nrows t = t.nrows
let ncols t = t.ncols
let nnz t = Array.length t.values

let of_coo_array ~rows ~cols triplets =
  if rows <= 0 || cols <= 0 then invalid_arg "Csr.of_coo_array: bad dims";
  Array.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Csr.of_coo_array: (%d,%d) out of %dx%d" i j rows cols))
    triplets;
  let sorted = Array.copy triplets in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
    sorted;
  (* Merge duplicates and drop zeros in one pass. *)
  let n = Array.length sorted in
  let keep_col = Array.make n 0 and keep_val = Array.make n 0. in
  let keep_row = Array.make n 0 in
  let count = ref 0 in
  let flush i j v =
    if v <> 0. then begin
      keep_row.(!count) <- i;
      keep_col.(!count) <- j;
      keep_val.(!count) <- v;
      incr count
    end
  in
  let pending = ref None in
  Array.iter
    (fun (i, j, v) ->
      match !pending with
      | Some (pi, pj, pv) when pi = i && pj = j -> pending := Some (i, j, pv +. v)
      | Some (pi, pj, pv) ->
        flush pi pj pv;
        pending := Some (i, j, v)
      | None -> pending := Some (i, j, v))
    sorted;
  (match !pending with Some (pi, pj, pv) -> flush pi pj pv | None -> ());
  let m = !count in
  let row_ptr = Array.make (rows + 1) 0 in
  for k = 0 to m - 1 do
    row_ptr.(keep_row.(k) + 1) <- row_ptr.(keep_row.(k) + 1) + 1
  done;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  {
    nrows = rows;
    ncols = cols;
    row_ptr;
    col_idx = Array.sub keep_col 0 m;
    values = Array.sub keep_val 0 m;
  }

let of_coo ~rows ~cols triplets = of_coo_array ~rows ~cols (Array.of_list triplets)

let of_dense m =
  let triplets = ref [] in
  for i = Mat.rows m - 1 downto 0 do
    for j = Mat.cols m - 1 downto 0 do
      let v = Mat.get m i j in
      if v <> 0. then triplets := (i, j, v) :: !triplets
    done
  done;
  of_coo ~rows:(Mat.rows m) ~cols:(Mat.cols m) !triplets

let to_dense t =
  let m = Mat.create ~rows:t.nrows ~cols:t.ncols in
  for i = 0 to t.nrows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let get t i j =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg "Csr.get: out of range";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      found := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let nnz_row t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let dot_row t i x =
  let acc = ref 0. in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
  done;
  !acc

let scatter_row t i x =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    x.(t.col_idx.(k)) <- x.(t.col_idx.(k)) +. t.values.(k)
  done

let iter t f =
  for i = 0 to t.nrows - 1 do
    iter_row t i (fun j v -> f i j v)
  done

let mat_vec t x =
  if Array.length x <> t.ncols then invalid_arg "Csr.mat_vec: dim mismatch";
  let y = Array.make t.nrows 0. in
  for i = 0 to t.nrows - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let vec_mat x t =
  if Array.length x <> t.nrows then invalid_arg "Csr.vec_mat: dim mismatch";
  let y = Array.make t.ncols 0. in
  for i = 0 to t.nrows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (xi *. t.values.(k))
      done
  done;
  y

let transpose t =
  let triplets = Array.make (nnz t) (0, 0, 0.) in
  let pos = ref 0 in
  iter t (fun i j v ->
      triplets.(!pos) <- (j, i, v);
      incr pos);
  of_coo_array ~rows:t.ncols ~cols:t.nrows triplets

let row_sums t =
  Array.init t.nrows (fun i ->
      let acc = ref 0. in
      iter_row t i (fun _ v -> acc := !acc +. v);
      !acc)

let scale alpha t = { t with values = Array.map (fun v -> alpha *. v) t.values }
let map_values f t = { t with values = Array.map f t.values }
