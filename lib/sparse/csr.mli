(** Compressed sparse row matrices.

    The exact CTMC generators of MAP networks have O(M·H) nonzeros per row
    but up to tens of thousands of rows; CSR keeps assembly and
    matrix-vector products linear in the nonzero count. *)

type t

val nrows : t -> int
val ncols : t -> int
val nnz : t -> int

val of_coo : rows:int -> cols:int -> (int * int * float) list -> t
(** Build from coordinate triplets [(i, j, v)]. Duplicate coordinates are
    summed; explicit zeros are dropped. *)

val of_coo_array : rows:int -> cols:int -> (int * int * float) array -> t
(** Same as {!of_coo} from an array (avoids list overhead for large
    assemblies). The array is not modified. *)

val of_dense : Mapqn_linalg.Mat.t -> t
val to_dense : t -> Mapqn_linalg.Mat.t

val get : t -> int -> int -> float
(** O(log nnz-per-row) lookup; absent entries read as [0.]. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate the nonzeros [(col, value)] of one row. *)

val nnz_row : t -> int -> int
(** Stored entries in one row — O(1). *)

val dot_row : t -> int -> float array -> float
(** [dot_row t i x] is row [i] of [t] dotted with the dense vector [x] —
    the kernel of revised-simplex pricing when [t] stores a constraint
    matrix column-major (each "row" of the transpose is one column, and
    pricing dots every column against the dual vector). *)

val scatter_row : t -> int -> float array -> unit
(** [scatter_row t i x] adds row [i] of [t] into the dense vector [x]
    ([x.(j) <- x.(j) +. a_ij]) — used to expand one sparse column into a
    dense work vector before a basis solve (FTRAN). *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterate all nonzeros in row-major order. *)

val mat_vec : t -> float array -> float array
(** [A x]. *)

val vec_mat : float array -> t -> float array
(** [xᵀ A] — the row-vector product used by stationary iterations. *)

val transpose : t -> t
val row_sums : t -> float array
val scale : float -> t -> t
val map_values : (float -> float) -> t -> t
(** Pointwise transform of stored values (structure unchanged; resulting
    zeros are kept as explicit entries). *)
