module Mat = Mapqn_linalg.Mat
module Vec = Mapqn_linalg.Vec
module Tol = Mapqn_util.Tol

type t = {
  stations : Station.t array;
  routing : Mat.t;
  population : int;
}

let irreducible p =
  let n = Mat.rows p in
  let reaches_all start =
    let seen = Array.make n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        for j = 0 to n - 1 do
          if Mat.get p i j > 0. && j <> i then visit j
        done
      end
    in
    visit start;
    Array.for_all (fun b -> b) seen
  in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (reaches_all i) then ok := false
  done;
  !ok

let make ~stations ~routing ~population =
  let m = Array.length stations in
  if m = 0 then Error "need at least one station"
  else if population < 0 then Error "negative population"
  else if Array.length routing <> m then Error "routing row count mismatch"
  else if Array.exists (fun r -> Array.length r <> m) routing then
    Error "routing is not square"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j p ->
            if p < 0. || p > 1. then
              bad := Some (Printf.sprintf "routing[%d][%d] = %g not a probability" i j p))
          row;
        let s = Mapqn_util.Ksum.sum row in
        if not (Tol.close ~rel:1e-9 ~abs:1e-9 s 1.) then
          bad := Some (Printf.sprintf "routing row %d sums to %g" i s))
      routing;
    match !bad with
    | Some msg -> Error msg
    | None ->
      let p = Mat.of_arrays routing in
      if m > 1 && not (irreducible p) then Error "routing chain is reducible"
      else Ok { stations = Array.copy stations; routing = p; population }
  end

let make_exn ~stations ~routing ~population =
  match make ~stations ~routing ~population with
  | Ok t -> t
  | Error msg -> invalid_arg ("Network.make: " ^ msg)

let num_stations t = Array.length t.stations
let population t = t.population
let station t k = t.stations.(k)
let stations t = Array.copy t.stations
let routing t = Mat.copy t.routing
let routing_prob t i j = Mat.get t.routing i j

let phase_dims t = Array.map Station.phases t.stations
let total_phases t = Array.fold_left (fun acc d -> acc * d) 1 (phase_dims t)

let visit_ratios t =
  let m = num_stations t in
  if m = 1 then [| 1. |]
  else begin
    (* v = v P with v.(0) = 1: the stationary vector of the routing chain,
       rescaled. GTH is exact and cancellation-free. *)
    let pi = Mapqn_linalg.Gth.dtmc t.routing in
    (* Divide (rather than multiply by the reciprocal) so that the
       reference entry is exactly 1. *)
    Array.map (fun x -> x /. pi.(0)) pi
  end

let demands t =
  let v = visit_ratios t in
  Array.mapi (fun k vk -> vk *. Station.mean_service_time t.stations.(k)) v

let with_population t population =
  if population < 0 then invalid_arg "Network.with_population: negative";
  { t with population }

let exponentialize t =
  { t with stations = Array.map Station.exponentialize t.stations }

let is_product_form t =
  Array.for_all (fun s -> Station.is_exponential s || Station.is_delay s) t.stations

let has_delay t = Array.exists Station.is_delay t.stations

let tandem stations ~population =
  let m = Array.length stations in
  let routing =
    Array.init m (fun i -> Array.init m (fun j -> if j = (i + 1) mod m then 1. else 0.))
  in
  (* A single station routes to itself: valid (self-loop). *)
  make_exn ~stations ~routing ~population

(* Structural hash for run-ledger provenance: FNV-1a 64-bit over the
   population, every station's service parameters (full D0/D1 for MAP
   stations) and the routing matrix. Floats are mixed via their exact
   hex representation so the fingerprint changes iff a parameter's bit
   pattern does — no rounding ambiguity, stable across processes (no
   dependence on [Hashtbl.hash]'s float treatment). *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) prime
  in
  let str s = String.iter (fun c -> byte (Char.code c)) s in
  let float f = str (Printf.sprintf "%h;" f) in
  let int i = str (Printf.sprintf "%d;" i) in
  let mat m =
    let a = Mat.to_arrays m in
    int (Array.length a);
    Array.iter (fun row -> Array.iter float row) a
  in
  int t.population;
  int (Array.length t.stations);
  Array.iter
    (fun (s : Station.t) ->
      match s.Station.service with
      | Station.Exp rate ->
        str "exp;";
        float rate
      | Station.Delay rate ->
        str "delay;";
        float rate
      | Station.Map p ->
        str "map;";
        mat (Mapqn_map.Process.d0 p);
        mat (Mapqn_map.Process.d1 p))
    t.stations;
  mat t.routing;
  Printf.sprintf "%016Lx" !h

let pp fmt t =
  Format.fprintf fmt "@[<v>closed network: %d stations, population %d@,"
    (num_stations t) t.population;
  Array.iteri (fun k s -> Format.fprintf fmt "  [%d] %a@," k Station.pp s) t.stations;
  Format.fprintf fmt "routing:@,%a@]" Mat.pp t.routing
