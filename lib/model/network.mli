(** Closed, single-class MAP queueing networks.

    A network is a set of single-server FCFS stations, a stochastic routing
    matrix (entry [(i, j)] is the probability a job completing service at
    station [i] moves to station [j]) and a fixed population [n] of
    circulating jobs — the model class of the paper (Figure 5 and
    generalizations). *)

type t

val make :
  stations:Station.t array ->
  routing:float array array ->
  population:int ->
  (t, string) result
(** Validate and build: at least one station, routing square of matching
    size with stochastic rows, routing chain irreducible, population
    nonnegative. *)

val make_exn :
  stations:Station.t array ->
  routing:float array array ->
  population:int ->
  t

val num_stations : t -> int
val population : t -> int
val station : t -> int -> Station.t
val stations : t -> Station.t array
val routing : t -> Mapqn_linalg.Mat.t
val routing_prob : t -> int -> int -> float

val phase_dims : t -> int array
(** Per-station MAP order (1 for exponential stations). *)

val total_phases : t -> int
(** Product of {!phase_dims}: size of the joint phase space. *)

val visit_ratios : t -> Mapqn_linalg.Vec.t
(** Solution of the traffic equations [v = v P] normalized so that
    [v.(0) = 1] (station 0 is the reference). *)

val demands : t -> Mapqn_linalg.Vec.t
(** Per-station service demand [D_k = v_k * mean service time at k]. *)

val with_population : t -> int -> t
(** Same network, different population. *)

val exponentialize : t -> t
(** Every station replaced by an exponential one with the same mean — the
    product-form "no burstiness" approximation of the paper's Figure 3
    second row. *)

val is_product_form : t -> bool
(** True when every station is exponential FCFS or a delay station. *)

val has_delay : t -> bool
(** True when the network contains an infinite-server station. *)

val tandem : Station.t array -> population:int -> t
(** Convenience: cyclic routing 0 → 1 → ... → M-1 → 0. *)

val fingerprint : t -> string
(** Structural hash (16 hex digits) of the model: population, per-station
    service parameters (full D0/D1 for MAP stations) and routing matrix.
    Two networks share a fingerprint iff they are bit-identical as
    models — used as run-ledger provenance. Station names are excluded:
    renaming does not change what is solved. *)

val pp : Format.formatter -> t -> unit
