(** Eigenvalue helpers for the small matrices of the MAP layer. *)

val eigenvalues_2x2 : Mat.t -> (float * float, float) result
(** Both eigenvalues of a 2×2 matrix, larger magnitude first, when they are
    real; [Error discriminant] when they are complex (negative
    discriminant). *)

type convergence_failure = {
  iterations : int;  (** iterations spent before giving up *)
  residual : float;  (** [‖M x - λ x‖∞] at the last iterate *)
}
(** Typed certificate of a failed power iteration. Failures are also
    recorded in the {!Mapqn_obs.Metrics} registry
    ([eig_power_failures_total], [eig_power_residual]). *)

exception Convergence_failure of convergence_failure

val power_iteration :
  ?max_iter:int ->
  ?tol:float ->
  Mat.t ->
  (float * Vec.t, convergence_failure) result
(** Dominant eigenvalue (by magnitude, assumed real and simple) and
    eigenvector of a square matrix, or [Error failure] if the iteration
    does not converge within [max_iter] (default 10_000). *)

val power_iteration_exn : ?max_iter:int -> ?tol:float -> Mat.t -> float * Vec.t
(** Like {!power_iteration} but raises {!Convergence_failure}. *)

val subdominant_stochastic : Mat.t -> float option
(** Second-largest-modulus eigenvalue of an irreducible stochastic matrix,
    assumed real (true for reversible chains and all 2×2 chains): deflates
    the known Perron eigenpair [(1, e)] against the stationary vector and
    runs power iteration on the remainder. [None] when the iteration fails
    to converge (e.g. genuinely complex subdominant pair). *)
