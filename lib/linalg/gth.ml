(* GTH elimination works directly on the off-diagonal transition rates
   (or probabilities); the diagonal is never used, which is what removes the
   cancellation. We therefore share one core over DTMCs and CTMCs. *)

let m_eliminations =
  Mapqn_obs.Metrics.counter ~help:"States censored by GTH elimination."
    "gth_eliminations_total"

let m_fill_ins =
  Mapqn_obs.Metrics.counter
    ~help:"Matrix entries that became nonzero during GTH elimination."
    "gth_fill_ins_total"

let m_dimension =
  Mapqn_obs.Metrics.gauge ~help:"Dimension of the last GTH solve."
    "gth_last_dimension"

let gth_core rates =
  let n = Mat.rows rates in
  let a = Mat.copy rates in
  let fill_ins = ref 0 in
  (* Censor states n-1, n-2, ..., 1 in turn. *)
  for k = n - 1 downto 1 do
    let out = ref 0. in
    for j = 0 to k - 1 do
      out := !out +. Mat.get a k j
    done;
    if !out <= 0. then failwith "Gth: reducible chain (zero outflow)";
    for i = 0 to k - 1 do
      let aik = Mat.get a i k /. !out in
      if aik <> 0. then
        for j = 0 to k - 1 do
          if j <> i then begin
            let old = Mat.get a i j in
            let contribution = aik *. Mat.get a k j in
            if old = 0. && contribution <> 0. then incr fill_ins;
            Mat.set a i j (old +. contribution)
          end
        done
    done
  done;
  Mapqn_obs.Metrics.inc ~by:(float_of_int (max 0 (n - 1))) m_eliminations;
  Mapqn_obs.Metrics.inc ~by:(float_of_int !fill_ins) m_fill_ins;
  Mapqn_obs.Metrics.set m_dimension (float_of_int n);
  (* Back-substitution: unnormalized stationary weights. *)
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let out = ref 0. in
    for j = 0 to k - 1 do
      out := !out +. Mat.get a k j
    done;
    let acc = Mapqn_util.Ksum.create () in
    for i = 0 to k - 1 do
      Mapqn_util.Ksum.add acc (pi.(i) *. Mat.get a i k)
    done;
    pi.(k) <- Mapqn_util.Ksum.total acc /. !out
  done;
  Vec.normalize1 pi

let off_diagonal m =
  let n = Mat.rows m in
  Mat.init ~rows:n ~cols:n (fun i j -> if i = j then 0. else Mat.get m i j)

let dtmc p =
  let n = Mat.rows p in
  if Mat.cols p <> n then invalid_arg "Gth.dtmc: not square";
  Array.iteri
    (fun i s ->
      if not (Mapqn_util.Tol.close ~rel:1e-8 ~abs:1e-8 s 1.) then
        invalid_arg (Printf.sprintf "Gth.dtmc: row %d sums to %g, not 1" i s))
    (Mat.row_sums p);
  if n = 1 then [| 1. |]
  else Mapqn_obs.Span.with_ "gth" (fun () -> gth_core (off_diagonal p))

let ctmc q =
  let n = Mat.rows q in
  if Mat.cols q <> n then invalid_arg "Gth.ctmc: not square";
  Array.iteri
    (fun i s ->
      if not (Mapqn_util.Tol.close ~rel:1e-6 ~abs:1e-8 s 0.) then
        invalid_arg (Printf.sprintf "Gth.ctmc: row %d sums to %g, not 0" i s))
    (Mat.row_sums q);
  if n = 1 then [| 1. |]
  else Mapqn_obs.Span.with_ "gth" (fun () -> gth_core (off_diagonal q))
