let eigenvalues_2x2 m =
  if Mat.rows m <> 2 || Mat.cols m <> 2 then invalid_arg "Eig.eigenvalues_2x2";
  let a = Mat.get m 0 0 and b = Mat.get m 0 1 in
  let c = Mat.get m 1 0 and d = Mat.get m 1 1 in
  let tr = a +. d and det = (a *. d) -. (b *. c) in
  let disc = (tr *. tr /. 4.) -. det in
  if disc < 0. then Error disc
  else begin
    let s = sqrt disc in
    let l1 = (tr /. 2.) +. s and l2 = (tr /. 2.) -. s in
    if Float.abs l1 >= Float.abs l2 then Ok (l1, l2) else Ok (l2, l1)
  end

type convergence_failure = { iterations : int; residual : float }

exception Convergence_failure of convergence_failure

let m_iterations =
  Mapqn_obs.Metrics.counter ~help:"Power-iteration steps performed."
    "eig_power_iterations_total"

let m_failures =
  Mapqn_obs.Metrics.counter ~help:"Power iterations that failed to converge."
    "eig_power_failures_total"

let m_residual =
  Mapqn_obs.Metrics.gauge
    ~help:"Eigen-residual of the last (possibly failed) power iteration."
    "eig_power_residual"

(* ‖M x - λ x‖∞ for a normalized iterate — the certificate attached to a
   convergence failure. *)
let eigen_residual m lambda x =
  let y = Mat.mat_vec m x in
  let worst = ref 0. in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. (lambda *. x.(i))))) y;
  !worst

let power_iteration ?(max_iter = 10_000) ?(tol = 1e-12) m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Eig.power_iteration: not square";
  (* A deterministic, dense starting vector avoids accidental orthogonality
     with high probability for the matrices we care about. *)
  let x = ref (Vec.normalize1 (Array.init n (fun i -> 1. +. (0.1 *. float_of_int (i + 1))))) in
  let lambda = ref 0. in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let y = Mat.mat_vec m !x in
    let norm = Vec.norm_inf y in
    if norm < 1e-300 then begin
      (* The image collapsed: dominant eigenvalue is 0. *)
      lambda := 0.;
      converged := true
    end
    else begin
      let y = Vec.scale (1. /. norm) y in
      (* Rayleigh-style estimate from the largest component keeps the sign. *)
      let idx = ref 0 in
      Array.iteri
        (fun i v -> if Float.abs v > Float.abs y.(!idx) then idx := i)
        y;
      let est =
        let num = (Mat.mat_vec m y).(!idx) and den = y.(!idx) in
        num /. den
      in
      let delta = Float.abs (est -. !lambda) in
      if
        delta <= tol *. Float.max 1. (Float.abs est)
        && Vec.max_abs_diff y !x < sqrt tol
      then converged := true;
      if Mapqn_obs.Trace.is_enabled () then
        Mapqn_obs.Trace.record
          (Mapqn_obs.Trace.Sweep
             { solver = "eig.power"; iteration = !iter; delta });
      lambda := est;
      x := y
    end
  done;
  Mapqn_obs.Metrics.inc ~by:(float_of_int !iter) m_iterations;
  let residual = eigen_residual m !lambda !x in
  Mapqn_obs.Metrics.set m_residual residual;
  if !converged then Ok (!lambda, !x)
  else begin
    Mapqn_obs.Metrics.inc m_failures;
    Error { iterations = !iter; residual }
  end

let power_iteration_exn ?max_iter ?tol m =
  match power_iteration ?max_iter ?tol m with
  | Ok pair -> pair
  | Error failure -> raise (Convergence_failure failure)

let subdominant_stochastic p =
  let n = Mat.rows p in
  if n <= 1 then Some 0.
  else if n = 2 then
    match eigenvalues_2x2 p with
    | Ok (l1, l2) ->
      (* For a stochastic matrix the Perron eigenvalue is 1. *)
      Some (if Mapqn_util.Tol.close l1 1. then l2 else l1)
    | Error _ -> None
  else begin
    let pi = Gth.dtmc p in
    (* Deflation B = P - e·π removes the (1, e) eigenpair and leaves every
       other eigenpair intact (π is the left Perron vector, π·e = 1). *)
    let b = Mat.init ~rows:n ~cols:n (fun i j -> Mat.get p i j -. pi.(j)) in
    match power_iteration b with
    | Ok (l, _) -> Some l
    | Error _ -> None
  end
