(* Command-line interface to the MAP queueing network toolkit: per-model
   solvers (exact / bounds / mva / simulate / fit) and the paper's
   experiments (fig1, fig3, fig4, fig8, table1). *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Enable debug logging (including simplex pivot traces)." in
  Arg.(value & flag & info [ "verbose" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Telemetry (Mapqn_obs): --metrics-out / --metrics-format and the      *)
(* event journal: --trace-out / --trace-format / --trace-capacity       *)
(* ------------------------------------------------------------------ *)

let metrics_format_conv = Arg.enum Mapqn_obs.Export.format_names

let metrics_out_arg =
  let doc =
    "Write solver telemetry (metrics and timing spans) to $(docv) after the \
     run; $(b,-) writes to standard output."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_format_arg =
  let doc =
    "Telemetry format: $(b,table) (human-readable), $(b,json) (one document), \
     $(b,jsonl) (one object per line) or $(b,prometheus) (text exposition)."
  in
  Arg.(
    value
    & opt metrics_format_conv Mapqn_obs.Export.Table
    & info [ "metrics-format" ] ~doc)

let trace_format_conv =
  Arg.enum
    (List.map
       (fun name ->
         (name, Result.get_ok (Mapqn_obs.Trace.format_of_string name)))
       Mapqn_obs.Trace.format_names)

let trace_out_arg =
  let doc =
    "Enable iteration-level solver tracing (simplex pivots, fixed-point \
     sweeps, simulator batches, bound certificates) and write the event \
     journal to $(docv) after the run; $(b,-) writes to standard output."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace format: $(b,jsonl) (one event per line) or $(b,chrome) \
     (Chrome trace-event JSON, loadable in Perfetto / chrome://tracing)."
  in
  Arg.(
    value
    & opt trace_format_conv Mapqn_obs.Trace.Chrome
    & info [ "trace-format" ] ~doc)

let trace_capacity_arg =
  let doc =
    "Ring-buffer capacity of the trace: the newest $(docv) events are \
     retained, older ones are dropped (the journal records how many)."
  in
  Arg.(value & opt int 65_536 & info [ "trace-capacity" ] ~docv:"EVENTS" ~doc)

let ledger_out_arg =
  let doc =
    "Append one JSONL run-ledger record per bound evaluation, sweep step and \
     simulator run to $(docv): provenance (git SHA, model fingerprint, seed), \
     solver work, certificate residuals and numerical-health gauges. The file \
     is flushed per record, so a killed run's ledger is intact; inspect it \
     with $(b,mapqn ledger) and $(b,mapqn doctor)."
  in
  Arg.(value & opt (some string) None & info [ "ledger-out" ] ~docv:"FILE" ~doc)

type obs_options = {
  metrics_out : string option;
  metrics_format : Mapqn_obs.Export.format;
  trace_out : string option;
  trace_format : Mapqn_obs.Trace.format;
  trace_capacity : int;
  ledger_out : string option;
}

let obs_args =
  Term.(
    const (fun metrics_out metrics_format trace_out trace_format trace_capacity
               ledger_out ->
        {
          metrics_out;
          metrics_format;
          trace_out;
          trace_format;
          trace_capacity;
          ledger_out;
        })
    $ metrics_out_arg $ metrics_format_arg $ trace_out_arg $ trace_format_arg
    $ trace_capacity_arg $ ledger_out_arg)

let render_telemetry fmt =
  Mapqn_obs.Export.render fmt
    ~metrics:(Mapqn_obs.Metrics.snapshot ())
    ~spans:(Mapqn_obs.Span.snapshot ())

let write_metrics path contents =
  try Mapqn_obs.Export.write_file path contents
  with Sys_error msg ->
    Printf.eprintf "mapqn: cannot write metrics: %s\n" msg;
    exit 1

let start_trace obs =
  if obs.trace_out <> None then
    Mapqn_obs.Trace.enable ~capacity:obs.trace_capacity ()

let start_ledger obs =
  match obs.ledger_out with
  | None -> ()
  | Some path -> (
    match Mapqn_obs.Ledger.enable ~path () with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "mapqn: %s\n" (Mapqn_obs.Ledger.enable_error_to_string e);
      exit 1
    | exception Sys_error msg ->
      Printf.eprintf "mapqn: cannot open ledger file: %s\n" msg;
      exit 1)

let finish_ledger () = Mapqn_obs.Ledger.disable ()

let finish_trace obs =
  match obs.trace_out with
  | None -> ()
  | Some path ->
    (match Mapqn_obs.Trace.current () with
    | None -> ()
    | Some trace -> (
      try Mapqn_obs.Trace.write obs.trace_format ~path trace
      with Sys_error msg ->
        Printf.eprintf "mapqn: cannot write trace: %s\n" msg));
    Mapqn_obs.Trace.disable ()

(* Every subcommand runs inside [with_telemetry]: the whole run is timed
   under a root span named after the subcommand, tracing is live for
   exactly the span of the run, and the registry and event journal are
   dumped to --metrics-out / --trace-out (if given) even when the
   command fails. *)
let with_telemetry name obs f =
  start_trace obs;
  start_ledger obs;
  Fun.protect
    (fun () -> Mapqn_obs.Span.with_ name f)
    ~finally:(fun () ->
      finish_trace obs;
      finish_ledger ();
      match obs.metrics_out with
      | None -> ()
      | Some path -> write_metrics path (render_telemetry obs.metrics_format))

(* ------------------------------------------------------------------ *)
(* Shared model arguments                                               *)
(* ------------------------------------------------------------------ *)

let population_arg =
  let doc = "Closed population (number of circulating jobs)." in
  Arg.(value & opt int 20 & info [ "n"; "population" ] ~docv:"N" ~doc)

let scv_arg =
  let doc = "Squared coefficient of variation of the MAP service." in
  Arg.(value & opt float 16. & info [ "scv" ] ~doc)

let gamma2_arg =
  let doc = "Geometric ACF decay rate of the MAP service (0 <= g < 1)." in
  Arg.(value & opt float 0.5 & info [ "gamma2" ] ~doc)

let model_arg =
  let doc =
    "Built-in model: $(b,case-study) (paper Fig. 5/8), $(b,tandem) (Fig. 4), \
     $(b,tpcw) (Fig. 2/3)."
  in
  Arg.(
    value
    & opt (enum [ ("case-study", `Case_study); ("tandem", `Tandem); ("tpcw", `Tpcw) ])
        `Case_study
    & info [ "model" ] ~doc)

let build_model model ~population ~scv ~gamma2 =
  match model with
  | `Case_study ->
    Mapqn_workloads.Case_study.network
      ~params:{ Mapqn_workloads.Case_study.default_params with scv; gamma2 }
      ~population ()
  | `Tandem ->
    Mapqn_workloads.Tandem.network
      ~params:{ Mapqn_workloads.Tandem.default_params with scv2 = scv; gamma2 }
      ~population ()
  | `Tpcw ->
    Mapqn_workloads.Tpcw.network
      ~params:
        { Mapqn_workloads.Tpcw.default_params with front_scv = scv; front_gamma2 = gamma2 }
      ~browsers:population ()

let config_arg =
  let doc = "Constraint families: $(b,minimal), $(b,standard) or $(b,full)." in
  Arg.(
    value
    & opt
        (enum
           [
             ("minimal", Mapqn_core.Constraints.minimal);
             ("standard", Mapqn_core.Constraints.standard);
             ("full", Mapqn_core.Constraints.full);
           ])
        Mapqn_core.Constraints.standard
    & info [ "config" ] ~doc)

let solver_arg =
  let doc =
    "LP backend: $(b,revised) (sparse columns, warm-started basis; the \
     default) or $(b,dense) (reference dense-tableau simplex)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("revised", Mapqn_core.Bounds.Revised);
             ("dense", Mapqn_core.Bounds.Dense);
           ])
        Mapqn_core.Bounds.Revised
    & info [ "solver" ] ~doc)

(* ------------------------------------------------------------------ *)
(* exact                                                               *)
(* ------------------------------------------------------------------ *)

let print_metrics_table rows =
  Mapqn_util.Table.print
    ~header:[ "metric"; "station"; "value" ]
    (List.concat_map
       (fun (name, values) ->
         List.mapi
           (fun k v -> [ name; string_of_int k; Mapqn_util.Table.float_cell v ])
           (Array.to_list values))
       rows)

let exact_cmd =
  let run verbose model population scv gamma2 obs =
    setup_logs verbose;
    with_telemetry "exact" obs @@ fun () ->
    let net = build_model model ~population ~scv ~gamma2 in
    let sol = Mapqn_ctmc.Solution.solve ~max_states:3_000_000 net in
    print_metrics_table (Mapqn_ctmc.Solution.metrics_table sol);
    Printf.printf "system response time (ref station 0): %.6f\n"
      (Mapqn_ctmc.Solution.system_response_time sol)
  in
  let term =
    Term.(
      const run $ verbose_arg $ model_arg $ population_arg $ scv_arg $ gamma2_arg
      $ obs_args)
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact CTMC solution of a built-in MAP network")
    term

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)
(* ------------------------------------------------------------------ *)

let bounds_cmd =
  let sensitivity_arg =
    let doc = "Also print the binding constraints (largest |dual|) of the upper response-time bound." in
    Arg.(value & flag & info [ "sensitivity" ] ~doc)
  in
  let run verbose model population scv gamma2 config solver sensitivity obs =
    setup_logs verbose;
    with_telemetry "bounds" obs @@ fun () ->
    let net = build_model model ~population ~scv ~gamma2 in
    match Mapqn_core.Bounds.create ~solver ~config net with
    | Error e -> prerr_endline ("bounds: " ^ Mapqn_core.Bounds.error_to_string e)
    | Ok b ->
      let vars, rows = Mapqn_core.Bounds.lp_size b in
      Printf.printf "LP: %d variables, %d rows\n" vars rows;
      let m = Mapqn_model.Network.num_stations net in
      (* The whole report is one warm-started batch evaluation. *)
      let metrics =
        List.concat
          (List.init m (fun k ->
               [
                 Mapqn_core.Bounds.Utilization k;
                 Mapqn_core.Bounds.Throughput k;
                 Mapqn_core.Bounds.Mean_queue_length k;
               ]))
        @ [ Mapqn_core.Bounds.Response_time { reference = 0 } ]
      in
      let name : Mapqn_core.Bounds.metric -> string = function
        | Utilization k -> Printf.sprintf "utilization[%d]" k
        | Throughput k -> Printf.sprintf "throughput[%d]" k
        | Mean_queue_length k -> Printf.sprintf "queue length[%d]" k
        | Response_time _ -> "response time"
        | m -> Mapqn_core.Bounds.metric_to_string m
      in
      let rows =
        List.map
          (fun (metric, (i : Mapqn_core.Bounds.interval)) ->
            [
              name metric;
              Mapqn_util.Table.float_cell i.Mapqn_core.Bounds.lower;
              Mapqn_util.Table.float_cell i.Mapqn_core.Bounds.upper;
            ])
          (Mapqn_core.Bounds.eval b metrics)
      in
      Mapqn_util.Table.print ~header:[ "metric"; "lower"; "upper" ] rows;
      if sensitivity then begin
        print_endline "binding constraints of the response-time upper bound (X min):";
        let ms = Mapqn_core.Bounds.space b in
        let terms = ref [] in
        let r0 =
          Mapqn_map.Process.completion_rates
            (Mapqn_model.Station.service_process (Mapqn_model.Network.station net 0))
        in
        for n = 1 to Mapqn_model.Network.population net do
          Mapqn_core.Marginal_space.iter_phases ms (fun h ->
              terms :=
                ( Mapqn_core.Marginal_space.v ms ~station:0 ~level:n ~phase:h,
                  r0.(Mapqn_core.Marginal_space.phase_component ms h 0) )
                :: !terms)
        done;
        List.iter
          (fun (name, dual) -> Printf.printf "  %-28s %+.6f\n" name dual)
          (Mapqn_core.Bounds.sensitivity b Mapqn_lp.Simplex.Minimize !terms)
      end
  in
  let term =
    Term.(
      const run $ verbose_arg $ model_arg $ population_arg $ scv_arg $ gamma2_arg
      $ config_arg $ solver_arg $ sensitivity_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:"Marginal-balance LP bounds (the paper's method) for a built-in model")
    term

(* ------------------------------------------------------------------ *)
(* mva                                                                 *)
(* ------------------------------------------------------------------ *)

let mva_cmd =
  let run verbose model population scv gamma2 obs =
    setup_logs verbose;
    with_telemetry "mva" obs @@ fun () ->
    let net =
      Mapqn_model.Network.exponentialize (build_model model ~population ~scv ~gamma2)
    in
    let mva = Mapqn_baselines.Mva.solve net in
    print_metrics_table
      [
        ("utilization", mva.Mapqn_baselines.Mva.utilization);
        ("throughput", mva.Mapqn_baselines.Mva.throughput);
        ("queue length", mva.Mapqn_baselines.Mva.mean_queue_length);
      ];
    Printf.printf "system response time: %.6f\n"
      mva.Mapqn_baselines.Mva.system_response_time
  in
  let term =
    Term.(
      const run $ verbose_arg $ model_arg $ population_arg $ scv_arg $ gamma2_arg
      $ obs_args)
  in
  Cmd.v
    (Cmd.info "mva"
       ~doc:"Exact MVA on the exponentialized (no-burstiness) model")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let horizon_arg =
    Arg.(value & opt float 100_000. & info [ "horizon" ] ~doc:"Measured simulated time.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let run verbose model population scv gamma2 horizon seed obs =
    setup_logs verbose;
    with_telemetry "simulate" obs @@ fun () ->
    let net = build_model model ~population ~scv ~gamma2 in
    let options = { Mapqn_sim.Simulator.default_options with horizon; seed } in
    let r = Mapqn_sim.Simulator.run ~options net in
    print_metrics_table
      [
        ("utilization", Array.map (fun s -> s.Mapqn_sim.Simulator.utilization) r.Mapqn_sim.Simulator.stations);
        ("throughput", Array.map (fun s -> s.Mapqn_sim.Simulator.throughput) r.Mapqn_sim.Simulator.stations);
        ( "queue length",
          Array.map (fun s -> s.Mapqn_sim.Simulator.mean_queue_length) r.Mapqn_sim.Simulator.stations );
      ];
    Printf.printf "events: %d\nsystem response time: %.6f\n"
      r.Mapqn_sim.Simulator.total_events r.Mapqn_sim.Simulator.system_response_time
  in
  let term =
    Term.(
      const run $ verbose_arg $ model_arg $ population_arg $ scv_arg $ gamma2_arg
      $ horizon_arg $ seed_arg $ obs_args)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Discrete-event simulation of a built-in model") term

(* ------------------------------------------------------------------ *)
(* fit                                                                 *)
(* ------------------------------------------------------------------ *)

let fit_cmd =
  let mean_arg = Arg.(value & opt float 1. & info [ "mean" ] ~doc:"Target mean.") in
  let skewness_arg =
    Arg.(value & opt (some float) None & info [ "skewness" ] ~doc:"Target skewness.")
  in
  let run verbose mean scv gamma2 skewness obs =
    setup_logs verbose;
    with_telemetry "fit" obs @@ fun () ->
    match Mapqn_map.Fit.map2 ~mean ~scv ~gamma2 ?skewness () with
    | Error msg -> prerr_endline ("fit: " ^ msg)
    | Ok p ->
      Format.printf "%a@." Mapqn_map.Process.pp p;
      Printf.printf "mean=%.6f scv=%.6f skewness=%.6f\n" (Mapqn_map.Process.mean p)
        (Mapqn_map.Process.scv p) (Mapqn_map.Process.skewness p);
      (match Mapqn_map.Process.acf_decay p with
      | Some g -> Printf.printf "acf decay gamma2=%.6f\n" g
      | None -> print_endline "acf decay: (complex)");
      List.iter
        (fun k -> Printf.printf "acf[%d]=%.6f\n" k (Mapqn_map.Process.acf p k))
        [ 1; 2; 5; 10 ];
      Printf.printf "IDC limit: %.4f (Poisson = 1)\n" (Mapqn_map.Counting.idc_limit p)
  in
  let term =
    Term.(
      const run $ verbose_arg $ mean_arg $ scv_arg $ gamma2_arg $ skewness_arg
      $ obs_args)
  in
  Cmd.v
    (Cmd.info "fit" ~doc:"Fit a MAP(2) to mean/SCV/gamma2 (and optional skewness)")
    term

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let scale_arg =
  let doc = "Run the full paper-scale experiment (slow) instead of the scaled default." in
  Arg.(value & flag & info [ "paper-scale" ] ~doc)

(* Sweep progress reporting (Mapqn_obs.Progress): --progress draws a
   status line with an ETA, --heartbeat-out appends one JSONL record per
   model/phase event; the heartbeat file doubles as the resume
   checkpoint for table1's --resume-from. *)

let progress_arg =
  let doc =
    "Report sweep progress (per-model status and ETA) on standard error: a \
     live line on a terminal, one line per completed model otherwise."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let heartbeat_out_arg =
  let doc =
    "Append JSONL heartbeat records (model id, seed, phase, elapsed) to \
     $(docv) as the sweep runs; the file doubles as a checkpoint for \
     $(b,--resume-from)."
  in
  Arg.(value & opt (some string) None & info [ "heartbeat-out" ] ~docv:"FILE" ~doc)

let with_progress ~label ~total ~progress ~heartbeat_out f =
  if (not progress) && heartbeat_out = None then f None
  else begin
    let hb =
      match heartbeat_out with
      | None -> None
      | Some path -> (
        try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
        with Sys_error msg ->
          Printf.eprintf "mapqn: cannot open heartbeat file: %s\n" msg;
          exit 1)
    in
    let p =
      Mapqn_obs.Progress.create ?heartbeat:hb ~quiet:(not progress) ~total label
    in
    Fun.protect
      (fun () -> f (Some p))
      ~finally:(fun () ->
        Mapqn_obs.Progress.close p;
        Option.iter close_out hb)
  end

let fig1_cmd =
  let run verbose paper_scale obs =
    setup_logs verbose;
    with_telemetry "fig1" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Fig1.default_options
      else
        { Mapqn_experiments.Fig1.default_options with browsers = 128; horizon = 60_000. }
    in
    Mapqn_experiments.Fig1.print (Mapqn_experiments.Fig1.run ~options ())
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Figure 1: ACF of the six TPC-W flows")
    Term.(const run $ verbose_arg $ scale_arg $ obs_args)

let fig3_cmd =
  let run verbose paper_scale obs =
    setup_logs verbose;
    with_telemetry "fig3" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Fig3.default_options
      else Mapqn_experiments.Fig3.bench_options
    in
    Mapqn_experiments.Fig3.print (Mapqn_experiments.Fig3.run ~options ())
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Figure 3: TPC-W model vs measurement bars")
    Term.(const run $ verbose_arg $ scale_arg $ obs_args)

let fig4_cmd =
  let run verbose paper_scale progress heartbeat_out obs =
    setup_logs verbose;
    with_telemetry "fig4" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Fig4.default_options
      else Mapqn_experiments.Fig4.bench_options
    in
    with_progress ~label:"fig4"
      ~total:(List.length options.Mapqn_experiments.Fig4.populations)
      ~progress ~heartbeat_out
    @@ fun p ->
    Mapqn_experiments.Fig4.print (Mapqn_experiments.Fig4.run ~options ?progress:p ())
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Figure 4: decomposition and ABA failure on the tandem")
    Term.(
      const run $ verbose_arg $ scale_arg $ progress_arg $ heartbeat_out_arg
      $ obs_args)

let fig8_cmd =
  let run verbose paper_scale progress heartbeat_out obs =
    setup_logs verbose;
    with_telemetry "fig8" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Fig8.default_options
      else Mapqn_experiments.Fig8.bench_options
    in
    with_progress ~label:"fig8"
      ~total:(List.length options.Mapqn_experiments.Fig8.populations)
      ~progress ~heartbeat_out
    @@ fun p ->
    let t = Mapqn_experiments.Fig8.run ~options ?progress:p () in
    Mapqn_experiments.Fig8.print t;
    let lo, hi = Mapqn_experiments.Fig8.max_response_error t in
    Printf.printf "max relative response-time error: lower %.4f upper %.4f\n" lo hi
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Figure 8: case-study bounds vs exact")
    Term.(
      const run $ verbose_arg $ scale_arg $ progress_arg $ heartbeat_out_arg
      $ obs_args)

let resume_from_arg =
  let doc =
    "Skip models recorded as done in the heartbeat JSONL file $(docv) (from \
     an earlier run's $(b,--heartbeat-out)); the summary statistics then \
     cover only the models evaluated this run."
  in
  Arg.(value & opt (some string) None & info [ "resume-from" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-model fleet (default: the machine's \
     recommended domain count). Per-model results, seeds and ledger record \
     bodies are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | Some j when j >= 1 -> j
  | Some j ->
    Printf.eprintf "mapqn: --jobs must be >= 1 (got %d)\n" j;
    exit 1
  | None -> Mapqn_fleet.Fleet.default_jobs ()

let resume_skip ?(require_certified = false) ~label resume_from =
  match resume_from with
  | None -> fun _ -> false
  | Some path ->
    let done_ = Mapqn_obs.Progress.load_completed ~require_certified path in
    if done_ = [] then
      Printf.eprintf "%s: no completed models in %s, running all\n%!" label path
    else
      Printf.eprintf "%s: resuming, %d model(s) already done in %s\n%!" label
        (List.length done_) path;
    let tbl = Hashtbl.create (List.length done_) in
    List.iter (fun id -> Hashtbl.replace tbl id ()) done_;
    fun id -> Hashtbl.mem tbl id

let table1_cmd =
  let models_arg =
    Arg.(value & opt (some int) None & info [ "models" ] ~doc:"Number of random models.")
  in
  let run verbose paper_scale models jobs progress heartbeat_out resume_from obs =
    setup_logs verbose;
    with_telemetry "table1" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Table1.default_options
      else Mapqn_experiments.Table1.bench_options
    in
    let options =
      match models with
      | Some m -> { options with Mapqn_experiments.Table1.models = m }
      | None -> options
    in
    let options =
      { options with Mapqn_experiments.Table1.jobs = resolve_jobs jobs }
    in
    let skip = resume_skip ~label:"table1" resume_from in
    with_progress ~label:"table1" ~total:options.Mapqn_experiments.Table1.models
      ~progress ~heartbeat_out
    @@ fun p ->
    Mapqn_experiments.Table1.print
      (Mapqn_experiments.Table1.run ~options ?progress:p ~skip ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Table 1: bound accuracy on random models")
    Term.(
      const run $ verbose_arg $ scale_arg $ models_arg $ jobs_arg $ progress_arg
      $ heartbeat_out_arg $ resume_from_arg $ obs_args)

(* Population grids for mapqn fleet: comma-separated items, each an
   integer or an inclusive "lo..hi" range ("1..100", "1,2,4,8",
   "1..8,16,32"). *)
let parse_populations s =
  try
    String.split_on_char ',' s
    |> List.concat_map (fun item ->
           let item = String.trim item in
           match String.index_opt item '.' with
           | Some i
             when i + 1 < String.length item && item.[i + 1] = '.' ->
             let lo = int_of_string (String.trim (String.sub item 0 i)) in
             let hi =
               int_of_string
                 (String.trim
                    (String.sub item (i + 2) (String.length item - i - 2)))
             in
             if lo > hi || lo < 0 then failwith "bad range";
             List.init (hi - lo + 1) (fun k -> lo + k)
           | _ ->
             let n = int_of_string item in
             if n < 0 then failwith "negative";
             [ n ])
    |> fun l -> if l = [] then Error "empty population list" else Ok l
  with _ ->
    Error
      (Printf.sprintf
         "cannot parse populations %S (expected e.g. \"1..100\" or \"1,2,4,8\")"
         s)

let fleet_cmd =
  let models_arg =
    let doc = "Number of random models (paper scale: 10000)." in
    Arg.(value & opt int 100 & info [ "models" ] ~doc)
  in
  let stations_arg =
    let doc = "Queues per model (paper: 3; beyond-paper: 4-5)." in
    Arg.(value & opt int 3 & info [ "stations" ] ~doc)
  in
  let map_stations_arg =
    let doc = "How many queues get MAP(2) service (the rest exponential)." in
    Arg.(value & opt int 1 & info [ "map-stations" ] ~doc)
  in
  let populations_arg =
    let doc =
      "Population grid: comma-separated integers and/or inclusive ranges \
       ($(b,1..100), $(b,1,2,4,8), $(b,1..8,16,32))."
    in
    Arg.(value & opt string "1,2,4,8,16,32,64,100" & info [ "populations" ] ~doc)
  in
  let seed_arg =
    let doc = "Model-generation master seed (per-model seeds derive from it)." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~doc)
  in
  let exact_upto_arg =
    let doc =
      "Also solve the exact CTMC and report bound errors for populations <= \
       $(docv) (0 disables; exact solves are what make paper-scale grids \
       infeasible, so keep this small)."
    in
    Arg.(value & opt int 0 & info [ "exact-upto" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc =
      "Append one JSONL row per evaluated model (bounds per population, \
       derived seed, fingerprint, timings) to $(docv), streamed as workers \
       finish."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let accept_uncertified_arg =
    let doc =
      "Keep a model whose certificate rescue ladder is exhausted, reporting \
       its best uncertified bounds, instead of failing it. Its checkpoint \
       entry is stamped $(b,\"certified\": false), so a later \
       $(b,--resume-from) of the heartbeat file still retries it."
    in
    Arg.(value & flag & info [ "accept-uncertified" ] ~doc)
  in
  let run verbose models stations map_stations populations jobs seed config
      exact_upto accept_uncertified out progress heartbeat_out resume_from obs =
    setup_logs verbose;
    with_telemetry "fleet" obs @@ fun () ->
    let populations =
      match parse_populations populations with
      | Ok l -> l
      | Error msg ->
        Printf.eprintf "mapqn: %s\n" msg;
        exit 1
    in
    if stations < 1 || map_stations < 1 || map_stations > stations then begin
      Printf.eprintf
        "mapqn: need 1 <= --map-stations <= --stations (got %d of %d)\n"
        map_stations stations;
      exit 1
    end;
    let options =
      {
        Mapqn_experiments.Fleet_sweep.models;
        populations;
        seed;
        config;
        exact_upto;
        accept_uncertified;
        jobs = resolve_jobs jobs;
        spec =
          {
            Mapqn_workloads.Random_models.default_spec with
            Mapqn_workloads.Random_models.stations;
            map_stations;
          };
      }
    in
    (* Uncertified "done" records don't count as completed: a resumed
       fleet retries rescued-but-uncertified models exactly like failed
       ones (which emit no "done" record at all). *)
    let skip = resume_skip ~require_certified:true ~label:"fleet" resume_from in
    (* Row writes come from worker domains; one mutex keeps the JSONL
       stream record-atomic (same contract as the ledger sink). *)
    let sink_mutex = Mutex.create () in
    let sink_oc =
      match out with
      | None -> None
      | Some path -> (
        try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
        with Sys_error msg ->
          Printf.eprintf "mapqn: cannot open output file: %s\n" msg;
          exit 1)
    in
    let sink =
      Option.map
        (fun oc row ->
          Mutex.lock sink_mutex;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock sink_mutex)
            (fun () ->
              output_string oc
                (Mapqn_obs.Json.to_string
                   (Mapqn_experiments.Fleet_sweep.row_to_json row));
              output_char oc '\n';
              flush oc))
        sink_oc
    in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out sink_oc)
      (fun () ->
        with_progress ~label:"fleet" ~total:models ~progress ~heartbeat_out
        @@ fun p ->
        let t =
          Mapqn_experiments.Fleet_sweep.run ~options ?progress:p ~skip ?sink ()
        in
        Mapqn_experiments.Fleet_sweep.print t;
        if t.Mapqn_experiments.Fleet_sweep.failed <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Fleet-scale random-model bound sweeps (full Table 1 and beyond) on \
          a multicore domain pool")
    Term.(
      const run $ verbose_arg $ models_arg $ stations_arg $ map_stations_arg
      $ populations_arg $ jobs_arg $ seed_arg $ config_arg $ exact_upto_arg
      $ accept_uncertified_arg $ out_arg $ progress_arg $ heartbeat_out_arg
      $ resume_from_arg $ obs_args)

let pipeline_cmd =
  let run verbose paper_scale obs =
    setup_logs verbose;
    with_telemetry "pipeline" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Trace_pipeline.default_options
      else
        {
          Mapqn_experiments.Trace_pipeline.default_options with
          browsers = [ 64; 128 ];
          trace_length = 100_000;
        }
    in
    Mapqn_experiments.Trace_pipeline.print
      (Mapqn_experiments.Trace_pipeline.run ~options ())
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Measurement pipeline: fit the front server from a service trace and predict")
    Term.(const run $ verbose_arg $ scale_arg $ obs_args)

let moment_order_cmd =
  let run verbose paper_scale obs =
    setup_logs verbose;
    with_telemetry "moment-order" obs @@ fun () ->
    let options =
      if paper_scale then Mapqn_experiments.Moment_order.default_options
      else Mapqn_experiments.Moment_order.bench_options
    in
    Mapqn_experiments.Moment_order.print
      (Mapqn_experiments.Moment_order.run ~options ())
  in
  Cmd.v
    (Cmd.info "moment-order"
       ~doc:"Extension: second- vs third-order MAP parameterization accuracy")
    Term.(const run $ verbose_arg $ scale_arg $ obs_args)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let experiment_arg =
    let doc =
      "Workload to profile: $(b,fig4) (autocorrelated tandem) and $(b,fig8) \
       (case-study network) profile an LP bound evaluation; $(b,tpcw) \
       ($(b,--population) browsers) profiles the discrete-event simulation \
       (its stations include delay servers the bound analysis does not \
       support)."
    in
    Arg.(
      value
      & pos 0 (enum [ ("fig4", `Fig4); ("fig8", `Fig8); ("tpcw", `Tpcw) ]) `Fig4
      & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let folded_out_arg =
    let doc =
      "Write folded stacks ($(b,path;to;span self-µs) per line, consumable by \
       flamegraph.pl / inferno / speedscope) to $(docv); $(b,-) writes to \
       standard output."
    in
    Arg.(value & opt (some string) None & info [ "folded-out" ] ~docv:"FILE" ~doc)
  in
  let table_out_arg =
    let doc = "Also write the full (untruncated) attribution table to $(docv)." in
    Arg.(value & opt (some string) None & info [ "table-out" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Attribution rows printed (sorted by self-time)." in
    Arg.(value & opt int 30 & info [ "top" ] ~docv:"ROWS" ~doc)
  in
  let check_arg =
    let doc =
      "Exit non-zero unless the phase self-times cover at least 95% of the \
       measured wall time (the attribution's internal consistency check)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run verbose experiment population config solver top folded_out table_out
      metrics_out metrics_format check =
    setup_logs verbose;
    let name, net =
      match experiment with
      | `Fig4 -> ("fig4", Mapqn_workloads.Tandem.network ~population ())
      | `Fig8 -> ("fig8", Mapqn_workloads.Case_study.network ~population ())
      | `Tpcw -> ("tpcw", Mapqn_workloads.Tpcw.network ~browsers:population ())
    in
    Mapqn_obs.Metrics.reset ();
    Mapqn_obs.Span.reset ();
    Mapqn_obs.Prof.enable ();
    let wall0 = Mapqn_obs.Span.now () in
    (* Everything measurable happens inside the root span, so Σ self over
       all paths telescopes to (approximately) the measured wall time. *)
    (Mapqn_obs.Span.with_ "profile" @@ fun () ->
     match experiment with
     | `Tpcw ->
       (* TPC-W has delay stations the bound analysis rejects; the
          paper's experiment on it is the simulation, so that is what
          gets profiled (the event loop runs under the "events" span). *)
       ignore (Mapqn_sim.Simulator.run net)
     | `Fig4 | `Fig8 -> (
       match Mapqn_core.Bounds.create ~solver ~config net with
       | Error e ->
         Printf.eprintf "profile: %s\n" (Mapqn_core.Bounds.error_to_string e);
         exit 1
       | Ok b ->
         let m = Mapqn_model.Network.num_stations net in
         let metrics =
           List.concat
             (List.init m (fun k ->
                  [
                    Mapqn_core.Bounds.Utilization k;
                    Mapqn_core.Bounds.Throughput k;
                    Mapqn_core.Bounds.Mean_queue_length k;
                  ]))
           @ [ Mapqn_core.Bounds.Response_time { reference = 0 } ]
         in
         ignore (Mapqn_core.Bounds.eval b metrics)));
    let wall = Mapqn_obs.Span.now () -. wall0 in
    Mapqn_obs.Prof.disable ();
    let rows = Mapqn_obs.Prof.attribution () in
    let self = Mapqn_obs.Prof.self_total rows in
    let coverage = if wall > 0. then self /. wall else 1. in
    Printf.printf "profile %s: population %d, %d phases\n" name population
      (List.length rows);
    print_string (Mapqn_obs.Prof.render_table ~limit:top rows);
    Printf.printf "phase self-times sum to %.4fs of %.4fs wall (%.1f%% coverage)\n"
      self wall (100. *. coverage);
    Option.iter
      (fun path ->
        Mapqn_obs.Export.write_file path (Mapqn_obs.Prof.render_table rows))
      table_out;
    Option.iter
      (fun path -> Mapqn_obs.Export.write_file path (Mapqn_obs.Prof.folded ()))
      folded_out;
    (* Same --metrics-out/--metrics-format contract as every other
       subcommand: the registry and span snapshot of the profiled run. *)
    Option.iter
      (fun path -> write_metrics path (render_telemetry metrics_format))
      metrics_out;
    if check && coverage < 0.95 then begin
      Printf.eprintf
        "profile: self-time coverage %.1f%% below the 95%% consistency bar\n"
        (100. *. coverage);
      exit 1
    end
  in
  let term =
    Term.(
      const run $ verbose_arg $ experiment_arg $ population_arg $ config_arg
      $ solver_arg $ top_arg $ folded_out_arg $ table_out_arg $ metrics_out_arg
      $ metrics_format_arg $ check_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one LP bound evaluation with phase-level profiling on and print \
          the self-time attribution table (count / total / self / max / minor \
          words per phase); optionally export folded stacks for flamegraph \
          tooling")
    term

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let run verbose model population scv gamma2 config solver obs =
    setup_logs verbose;
    (* Solve the model through both pipelines (LP bounds and exact CTMC)
       so the telemetry covers the simplex, the constraint generator and
       the state-space layers in a single report. *)
    Mapqn_obs.Metrics.reset ();
    Mapqn_obs.Span.reset ();
    start_trace obs;
    start_ledger obs;
    let net = build_model model ~population ~scv ~gamma2 in
    let summary =
      Fun.protect ~finally:(fun () ->
          finish_trace obs;
          finish_ledger ())
      @@ fun () ->
      Mapqn_obs.Span.with_ "stats.solve" @@ fun () ->
      let bound =
        match Mapqn_core.Bounds.create ~solver ~config net with
        | Error e ->
          Printf.sprintf "bounds: %s" (Mapqn_core.Bounds.error_to_string e)
        | Ok b ->
          let r = Mapqn_core.Bounds.response_time b in
          let vars, rows = Mapqn_core.Bounds.lp_size b in
          Printf.sprintf "bounds: LP %d vars x %d rows, response time in [%.6f, %.6f]"
            vars rows r.Mapqn_core.Bounds.lower r.Mapqn_core.Bounds.upper
      in
      let sol = Mapqn_ctmc.Solution.solve ~max_states:3_000_000 net in
      Printf.sprintf "%s\nexact: response time %.6f" bound
        (Mapqn_ctmc.Solution.system_response_time sol)
    in
    let telemetry = render_telemetry obs.metrics_format in
    match obs.metrics_out with
    | Some path ->
      (* Telemetry goes to the file; the human summary to stdout. *)
      write_metrics path telemetry;
      print_endline summary
    | None ->
      (* No file: telemetry is the stdout payload. Keep machine-readable
         formats clean — only the table format gets the summary header. *)
      if obs.metrics_format = Mapqn_obs.Export.Table then begin
        print_endline summary;
        print_newline ()
      end;
      print_string telemetry
  in
  let term =
    Term.(
      const run $ verbose_arg $ model_arg $ population_arg $ scv_arg $ gamma2_arg
      $ config_arg $ solver_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Solve a built-in model (LP bounds + exact CTMC) and print the full \
          solver telemetry: simplex pivots, constraint rows, CTMC size, \
          timing spans")
    term

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let out_arg =
    let doc =
      "Write the event journal to $(docv); $(b,-) (the default) writes to \
       standard output."
    in
    Arg.(value & opt string "-" & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run verbose model population scv gamma2 config solver out fmt capacity =
    setup_logs verbose;
    Mapqn_obs.Trace.enable ~capacity ();
    Fun.protect ~finally:Mapqn_obs.Trace.disable @@ fun () ->
    let net = build_model model ~population ~scv ~gamma2 in
    Mapqn_obs.Trace.record
      (Mapqn_obs.Trace.Mark { name = "trace.start"; detail = "bounds eval" });
    (match Mapqn_core.Bounds.create ~solver ~config net with
    | Error e ->
      Printf.eprintf "trace: %s\n" (Mapqn_core.Bounds.error_to_string e);
      exit 1
    | Ok b ->
      let m = Mapqn_model.Network.num_stations net in
      let metrics =
        List.concat
          (List.init m (fun k ->
               [
                 Mapqn_core.Bounds.Utilization k;
                 Mapqn_core.Bounds.Throughput k;
                 Mapqn_core.Bounds.Mean_queue_length k;
               ]))
        @ [ Mapqn_core.Bounds.Response_time { reference = 0 } ]
      in
      ignore (Mapqn_core.Bounds.eval b metrics));
    Mapqn_obs.Trace.record
      (Mapqn_obs.Trace.Mark { name = "trace.stop"; detail = "bounds eval" });
    match Mapqn_obs.Trace.current () with
    | None -> ()
    | Some t ->
      (try Mapqn_obs.Trace.write fmt ~path:out t
       with Sys_error msg ->
         Printf.eprintf "trace: cannot write trace: %s\n" msg;
         exit 1);
      Printf.eprintf "trace: %d events emitted, %d retained, %d dropped\n"
        (Mapqn_obs.Trace.emitted t) (Mapqn_obs.Trace.retained t)
        (Mapqn_obs.Trace.dropped t)
  in
  let term =
    Term.(
      const run $ verbose_arg $ model_arg $ population_arg $ scv_arg $ gamma2_arg
      $ config_arg $ solver_arg $ out_arg $ trace_format_arg $ trace_capacity_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a full LP bound evaluation with iteration-level tracing on and \
          dump the event journal (per-pivot simplex events, bound \
          certificates) as JSONL or a Perfetto-loadable Chrome trace")
    term

(* ------------------------------------------------------------------ *)
(* ledger / doctor                                                     *)
(* ------------------------------------------------------------------ *)

let load_ledger path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "mapqn: no such ledger file: %s\n" path;
    exit 2
  end;
  match Mapqn_obs.Ledger.load path with
  | [] ->
    Printf.eprintf "mapqn: %s contains no parsable ledger records\n" path;
    exit 2
  | records -> records

let event_filter_arg =
  let doc =
    "Only consider records of this event type ($(b,eval), $(b,sweep_step), \
     $(b,sim))."
  in
  Arg.(value & opt (some string) None & info [ "event" ] ~docv:"EVENT" ~doc)

let filter_events event records =
  match event with
  | None -> records
  | Some ev ->
    let kept =
      List.filter (fun r -> Mapqn_obs.Ledger.event r = ev) records
    in
    if kept = [] then begin
      Printf.eprintf "mapqn: no records with event %S\n" ev;
      exit 2
    end;
    kept

let ledger_cmd =
  let file_a_arg =
    let doc = "Ledger file to list (run with $(b,--ledger-out) to produce one)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEDGER" ~doc)
  in
  let file_b_arg =
    let doc =
      "Optional second ledger: compare run $(i,LEDGER) (A) against $(docv) \
       (B) and report bound-value and performance drift per matched record."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"LEDGER_B" ~doc)
  in
  let run verbose file_a file_b event =
    setup_logs verbose;
    let a = filter_events event (load_ledger file_a) in
    match file_b with
    | None -> print_string (Mapqn_obs.Ledger.summarize a)
    | Some file_b ->
      let b = filter_events event (load_ledger file_b) in
      print_string (Mapqn_obs.Ledger.render_diff (Mapqn_obs.Ledger.diff a b))
  in
  Cmd.v
    (Cmd.info "ledger"
       ~doc:
         "List a run ledger (one row per recorded solve), or diff two ledgers \
          of the same experiment and report bound-value and performance drift")
    Term.(const run $ verbose_arg $ file_a_arg $ file_b_arg $ event_filter_arg)

let doctor_cmd =
  let file_arg =
    let doc = "Ledger file to diagnose." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEDGER" ~doc)
  in
  let tol_arg name default doc =
    Arg.(value & opt float default & info [ name ] ~docv:"TOL" ~doc)
  in
  let run verbose file tol_primal tol_dual tol_comp =
    setup_logs verbose;
    let records = load_ledger file in
    let findings =
      Mapqn_obs.Ledger.doctor ~tol_primal ~tol_dual ~tol_comp records
    in
    Printf.printf "doctor: %d record(s) in %s\n" (List.length records) file;
    print_string (Mapqn_obs.Ledger.render_findings findings);
    if List.exists (fun f -> f.Mapqn_obs.Ledger.severity = Mapqn_obs.Ledger.Fail)
         findings
    then exit 1
  in
  let term =
    Term.(
      const run $ verbose_arg $ file_arg
      $ tol_arg "tol-primal" Mapqn_lp.Certificate.default_tol_primal
          "Primal-residual tolerance used to judge certificate records that \
           carry none."
      $ tol_arg "tol-dual" Mapqn_lp.Certificate.default_tol_dual
          "Dual-violation tolerance."
      $ tol_arg "tol-comp" Mapqn_lp.Certificate.default_tol_comp
          "Complementary-slackness tolerance.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Scan a run ledger for numerical-trust hazards: certificate failures \
          and near-misses, drift-triggered reinversions, degeneracy stalls, \
          and the residual-peak-at-the-largest-population signature; exits \
          non-zero when any finding is a failure")
    term

let () =
  let doc = "MAP queueing networks: exact solution, LP bounds, baselines, simulation" in
  let info = Cmd.info "mapqn" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            exact_cmd;
            bounds_cmd;
            mva_cmd;
            simulate_cmd;
            fit_cmd;
            fig1_cmd;
            fig3_cmd;
            fig4_cmd;
            fig8_cmd;
            table1_cmd;
            fleet_cmd;
            pipeline_cmd;
            moment_order_cmd;
            profile_cmd;
            stats_cmd;
            trace_cmd;
            ledger_cmd;
            doctor_cmd;
          ]))
