(* Regenerate test/corpus/hard_models.jsonl from a failing-model list.

   Reads "index population" pairs on stdin — one per model that failed
   its LP optimality certificate, [population] being the first
   population of the sweep grid at which the certificate failed — and
   writes one self-describing corpus record per pair to stdout:

     {"index": 15, "model": "model-00015", "master_seed": 2008,
      "seed": <derived task seed>, "fingerprint": "...",
      "fail_population": 8}

   Models are regenerated exactly as `mapqn fleet` generates them: the
   default random-model spec, sequentially from --seed, so the
   fingerprint pins the generator output and the corpus test can detect
   generator drift. Usage:

     dune exec tools/harvest_corpus.exe -- [--seed 2008] [--models 10000] \
       < failing_pairs.txt > test/corpus/hard_models.jsonl *)

module Random_models = Mapqn_workloads.Random_models
module Network = Mapqn_model.Network
module Fleet = Mapqn_fleet.Fleet
module Json = Mapqn_obs.Json

let () =
  let seed = ref 2008 and models = ref 10_000 in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--models" :: v :: rest ->
      models := int_of_string v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "harvest_corpus: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let pairs = ref [] in
  (try
     while true do
       let line = String.trim (input_line stdin) in
       if line <> "" then
         Scanf.sscanf line "%d %d" (fun index pop ->
             pairs := (index, pop) :: !pairs)
     done
   with End_of_file -> ());
  let pairs = List.sort compare !pairs in
  let generated =
    Array.of_list (Random_models.generate_many ~seed:!seed !models)
  in
  List.iter
    (fun (index, fail_population) ->
      if index < 0 || index >= Array.length generated then begin
        Printf.eprintf "harvest_corpus: index %d out of range\n" index;
        exit 2
      end;
      let model = generated.(index) in
      let num v = Json.Number (float_of_int v) in
      let record =
        Json.Object
          [
            ("index", num index);
            ("model", Json.String (Printf.sprintf "model-%05d" index));
            ("master_seed", num !seed);
            ("seed", num (Fleet.task_seed ~seed:!seed index));
            ( "fingerprint",
              Json.String (Network.fingerprint model.Random_models.network) );
            ("fail_population", num fail_population);
          ]
      in
      print_string (Json.to_string record);
      print_newline ())
    pairs
