lib/core/bounds.mli: Constraints Mapqn_lp Mapqn_model Marginal_space
