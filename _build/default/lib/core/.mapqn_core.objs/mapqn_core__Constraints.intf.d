lib/core/constraints.mli: Format Mapqn_lp Mapqn_model Marginal_space
