lib/core/bounds.ml: Array Constraints Float List Mapqn_lp Mapqn_map Mapqn_model Mapqn_util Marginal_space
