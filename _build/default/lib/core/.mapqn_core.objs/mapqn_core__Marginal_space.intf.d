lib/core/marginal_space.mli: Mapqn_ctmc Mapqn_model
