lib/core/marginal_space.ml: Array Mapqn_ctmc Mapqn_model Mapqn_util Printf
