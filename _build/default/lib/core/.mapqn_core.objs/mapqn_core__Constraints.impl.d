lib/core/constraints.ml: Array Float Format List Mapqn_linalg Mapqn_lp Mapqn_map Mapqn_model Marginal_space Printf
