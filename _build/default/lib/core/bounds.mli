(** Linear-programming performance bounds for MAP queueing networks — the
    paper's contribution.

    [create] assembles the marginal-balance LP for a network (one phase-1
    simplex run); each metric query then solves two phase-2 problems
    (minimize and maximize the metric as a linear function of the
    aggregate probabilities) over the same feasible region. Because every
    constraint is exact, the true value always lies in the returned
    interval; tightness depends on the constraint families enabled
    ({!Constraints.config}). *)

type t

type interval = { lower : float; upper : float }

val width : interval -> float
val midpoint : interval -> float
val contains : interval -> float -> bool
(** Within a small numerical tolerance (1e-7 absolute + relative). *)

val create :
  ?config:Constraints.config ->
  ?max_iter:int ->
  Mapqn_model.Network.t ->
  (t, string) result
(** Build the LP and run phase 1. Default config is
    {!Constraints.standard}. Errors on phase-1 failure (which would
    indicate a bug: the exact solution is always feasible) or iteration
    limit. *)

val create_exn :
  ?config:Constraints.config -> ?max_iter:int -> Mapqn_model.Network.t -> t

val network : t -> Mapqn_model.Network.t
val space : t -> Marginal_space.t
val config : t -> Constraints.config

val lp_size : t -> int * int
(** [(variables, rows)] of the underlying LP model. *)

val sensitivity :
  ?top:int ->
  t ->
  Mapqn_lp.Simplex.direction ->
  (int * float) list ->
  (string * float) list
(** The constraints that drive a bound: names and dual values (shadow
    prices) of the rows with the largest |dual| at the optimum of the
    given objective/direction (default the top 10). A large |dual| means
    the bound is sensitive to that balance equation — useful for
    understanding where tightness comes from (see the ablation bench). *)

val custom : t -> (int * float) list -> interval
(** Bounds on an arbitrary linear function of the marginal-space variables
    (indices from {!Marginal_space}). Raises [Failure] if the simplex hits
    its iteration limit. *)

val throughput : t -> int -> interval
(** Completion-rate bounds at a station:
    [X_k = Σ_{n>=1,h} λ_k(h_k) v_k(n,h)]. *)

val utilization : t -> int -> interval
(** [U_k = 1 - Σ_h v_k(0,h)], clamped to [\[0,1\]]. *)

val mean_queue_length : t -> int -> interval
val queue_length_moment : t -> int -> int -> interval
val marginal_probability : t -> station:int -> level:int -> interval

val response_time : ?reference:int -> t -> interval
(** Little's-law response time [R = N / X_ref] (default reference station
    0): [R_min = N / X_max], [R_max = N / X_min] — exactly the paper's
    derivation of response-time bounds from throughput bounds. An LP
    throughput lower bound of 0 yields [upper = infinity]. *)
