let binomial n k =
  if n < 0 then invalid_arg "Comb.binomial: negative n";
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      (* acc * (n - k + i) may overflow before the division; detect it. *)
      let num = n - k + i in
      if !acc > max_int / num then invalid_arg "Comb.binomial: overflow";
      acc := !acc * num / i
    done;
    !acc
  end

let compositions_count ~total ~parts =
  if parts <= 0 then invalid_arg "Comb.compositions_count: parts <= 0";
  binomial (total + parts - 1) (parts - 1)

let iter_compositions ~total ~parts f =
  if parts <= 0 then invalid_arg "Comb.iter_compositions: parts <= 0";
  if total < 0 then invalid_arg "Comb.iter_compositions: negative total";
  let t = Array.make parts 0 in
  (* Fill positions [i..] with [rest] jobs, recursing lexicographically. *)
  let rec fill i rest =
    if i = parts - 1 then begin
      t.(i) <- rest;
      f t
    end
    else
      for v = 0 to rest do
        t.(i) <- v;
        fill (i + 1) (rest - v)
      done
  in
  fill 0 total

let compositions ~total ~parts =
  let acc = ref [] in
  iter_compositions ~total ~parts (fun t -> acc := Array.copy t :: !acc);
  List.rev !acc

let rank_composition ~total t =
  let parts = Array.length t in
  if parts = 0 then invalid_arg "Comb.rank_composition: empty";
  (* Count compositions that precede [t] lexicographically: for each prefix
     position i and each value v < t.(i), the remaining positions hold the
     leftover jobs freely. *)
  let rank = ref 0 in
  let rest = ref total in
  for i = 0 to parts - 2 do
    for v = 0 to t.(i) - 1 do
      rank := !rank + compositions_count ~total:(!rest - v) ~parts:(parts - 1 - i)
    done;
    rest := !rest - t.(i)
  done;
  !rank

let ranges_count dims = Array.fold_left (fun acc d -> acc * d) 1 dims

let iter_ranges dims f =
  let n = Array.length dims in
  Array.iter (fun d -> if d <= 0 then invalid_arg "Comb.iter_ranges: dim <= 0") dims;
  let t = Array.make n 0 in
  let rec go i =
    if i = n then f t
    else
      for v = 0 to dims.(i) - 1 do
        t.(i) <- v;
        go (i + 1)
      done
  in
  if n = 0 then f t else go 0

let rank_range dims t =
  let n = Array.length dims in
  if Array.length t <> n then invalid_arg "Comb.rank_range: length mismatch";
  let rank = ref 0 in
  for i = 0 to n - 1 do
    if t.(i) < 0 || t.(i) >= dims.(i) then invalid_arg "Comb.rank_range: out of range";
    rank := (!rank * dims.(i)) + t.(i)
  done;
  !rank

let unrank_range dims rank =
  let n = Array.length dims in
  let t = Array.make n 0 in
  let r = ref rank in
  for i = n - 1 downto 0 do
    t.(i) <- !r mod dims.(i);
    r := !r / dims.(i)
  done;
  if !r <> 0 then invalid_arg "Comb.unrank_range: rank out of range";
  t
