(** Compensated (Kahan–Babuška–Neumaier) summation.

    Long probability sums (normalization over tens of thousands of states,
    LP residuals) accumulate cancellation error with naive summation; the
    compensated accumulator keeps the error independent of the number of
    terms. *)

type t
(** Mutable compensated accumulator. *)

val create : unit -> t
(** Fresh accumulator holding [0.]. *)

val add : t -> float -> unit
(** Accumulate one term. *)

val total : t -> float
(** Current compensated total. *)

val sum : float array -> float
(** Compensated sum of a whole array. *)

val sum_seq : float Seq.t -> float
(** Compensated sum of a sequence. *)

val dot : float array -> float array -> float
(** Compensated dot product. Raises [Invalid_argument] on length mismatch. *)
