(** Combinatorics helpers for state-space enumeration.

    The CTMC underlying a closed network with [m] stations and population
    [n] has one queue-length coordinate per station; the queue-length part
    of the state space is the set of weak compositions of [n] into [m]
    parts. *)

val binomial : int -> int -> int
(** [binomial n k] is the exact binomial coefficient [C(n, k)]; [0] when
    [k < 0 || k > n]. Raises [Invalid_argument] on [n < 0] and on overflow
    beyond [max_int]. *)

val compositions_count : total:int -> parts:int -> int
(** Number of weak compositions of [total] into [parts] nonnegative parts,
    i.e. [C(total + parts - 1, parts - 1)]. *)

val iter_compositions : total:int -> parts:int -> (int array -> unit) -> unit
(** Enumerate all weak compositions in lexicographic order. The same array
    is reused across calls; callers must copy if they retain it. *)

val compositions : total:int -> parts:int -> int array list
(** Materialized list of weak compositions in lexicographic order. *)

val rank_composition : total:int -> int array -> int
(** Rank (0-based, lexicographic) of a composition among all weak
    compositions of [total] with the same number of parts. Inverse of the
    enumeration order of [iter_compositions]. *)

val iter_ranges : int array -> (int array -> unit) -> unit
(** [iter_ranges dims f] enumerates all tuples [t] with
    [0 <= t.(i) < dims.(i)] in row-major (last index fastest) order. The
    tuple array is reused. Used to enumerate phase vectors. *)

val ranges_count : int array -> int
(** Product of the dimensions (number of tuples [iter_ranges] yields). *)

val rank_range : int array -> int array -> int
(** [rank_range dims t] is the row-major rank of tuple [t]. *)

val unrank_range : int array -> int -> int array
(** Inverse of [rank_range]. *)
