let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Ksum.sum xs /. float_of_int (Array.length xs)

let variance xs =
  if Array.length xs < 2 then invalid_arg "Stats.variance: need >= 2 samples";
  let m = mean xs in
  let acc = Ksum.create () in
  Array.iter (fun x -> Ksum.add acc ((x -. m) *. (x -. m))) xs;
  Ksum.total acc /. float_of_int (Array.length xs - 1)

let std_dev xs = sqrt (variance xs)

let quantile xs q =
  require_nonempty "Stats.quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q not in [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let autocorrelation xs k =
  let n = Array.length xs in
  if k < 0 || k >= n then invalid_arg "Stats.autocorrelation: bad lag";
  let m = mean xs in
  let num = Ksum.create () and den = Ksum.create () in
  for i = 0 to n - 1 - k do
    Ksum.add num ((xs.(i) -. m) *. (xs.(i + k) -. m))
  done;
  for i = 0 to n - 1 do
    Ksum.add den ((xs.(i) -. m) *. (xs.(i) -. m))
  done;
  let d = Ksum.total den in
  if d = 0. then 0. else Ksum.total num /. d

let autocorrelation_function xs ~max_lag =
  Array.init max_lag (fun i -> autocorrelation xs (i + 1))

let summary xs = (mean xs, std_dev xs, median xs, maximum xs)
