(** Descriptive statistics over float samples.

    Used by the random-model experiment (Table 1 reports mean / std dev /
    median / max of error samples) and by the simulator's output analysis. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty array. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; raises on fewer than two samples. *)

val std_dev : float array -> float
(** Square root of [variance]. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0,1\]]: linear interpolation between order
    statistics (type-7, the common default). Does not mutate its input. *)

val median : float array -> float
(** [quantile xs 0.5]. *)

val minimum : float array -> float
val maximum : float array -> float

val autocorrelation : float array -> int -> float
(** [autocorrelation xs k] is the lag-[k] sample autocorrelation
    (covariance normalized by sample variance, biased estimator as standard
    in time-series practice). Requires [0 <= k < length xs]. *)

val autocorrelation_function : float array -> max_lag:int -> float array
(** ACF at lags [1..max_lag] (index 0 of the result is lag 1). *)

val summary : float array -> float * float * float * float
(** [(mean, std_dev, median, max)] — the four columns of the paper's
    Table 1. *)
