type t = { mutable s : float; mutable c : float }

let create () = { s = 0.; c = 0. }

(* Neumaier's variant: the compensation also captures the case where the
   incoming term is larger in magnitude than the running sum. *)
let add acc x =
  let t = acc.s +. x in
  if Float.abs acc.s >= Float.abs x then acc.c <- acc.c +. ((acc.s -. t) +. x)
  else acc.c <- acc.c +. ((x -. t) +. acc.s);
  acc.s <- t

let total acc = acc.s +. acc.c

let sum a =
  let acc = create () in
  Array.iter (add acc) a;
  total acc

let sum_seq xs =
  let acc = create () in
  Seq.iter (add acc) xs;
  total acc

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Ksum.dot: length mismatch";
  let acc = create () in
  Array.iteri (fun i x -> add acc (x *. b.(i))) a;
  total acc
