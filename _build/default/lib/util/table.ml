type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Table.render: ragged row")
    rows;
  let aligns =
    match align with
    | None -> List.init arity (fun _ -> Right)
    | Some a ->
      if List.length a <> arity then invalid_arg "Table.render: align arity";
      a
  in
  let widths = Array.make arity 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iter
    (fun w -> Buffer.add_string buf (String.make w '-'); Buffer.add_string buf "  ")
    widths;
  (* Trim the trailing spacer after the last dash group. *)
  let sep_len = Buffer.length buf in
  Buffer.truncate buf (sep_len - 2);
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  flush stdout

let float_cell ?(decimals = 4) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x
