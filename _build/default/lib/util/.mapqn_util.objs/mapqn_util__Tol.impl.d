lib/util/tol.ml: Array Float Printf
