lib/util/comb.mli:
