lib/util/table.mli:
