lib/util/stats.mli:
