lib/util/ksum.mli: Seq
