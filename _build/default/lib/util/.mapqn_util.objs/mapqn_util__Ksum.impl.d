lib/util/ksum.ml: Array Float Seq
