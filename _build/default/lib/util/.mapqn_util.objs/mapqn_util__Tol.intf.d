lib/util/tol.mli:
