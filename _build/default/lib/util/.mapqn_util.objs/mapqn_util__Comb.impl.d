lib/util/comb.ml: Array List
