(** Plain-text table rendering for experiment output.

    Experiments print the same rows/series the paper reports; this module
    renders them with aligned columns so the harness output is readable in
    a terminal and diffable in [bench_output.txt]. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with a separator line under the
    header. Every row must have the same arity as the header. Default
    alignment is [Right] for every column. *)

val print :
  ?align:align list ->
  header:string list ->
  string list list ->
  unit
(** [render] followed by [print_string] and a flush. *)

val float_cell : ?decimals:int -> float -> string
(** Format a float for a table cell, default 4 decimals; NaN renders as
    ["-"]. *)
