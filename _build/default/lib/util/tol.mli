(** Floating-point tolerances and approximate comparisons.

    All numerical code in [mapqn] funnels its float comparisons through this
    module so that tolerance policy lives in one place. *)

val default_rel : float
(** Default relative tolerance, [1e-9]. *)

val default_abs : float
(** Default absolute tolerance, [1e-12]. *)

val close : ?rel:float -> ?abs:float -> float -> float -> bool
(** [close a b] is [true] when [|a - b| <= abs + rel * max |a| |b|]. *)

val close_arrays : ?rel:float -> ?abs:float -> float array -> float array -> bool
(** Pointwise [close] on arrays of equal length; [false] if lengths differ. *)

val is_zero : ?abs:float -> float -> bool
(** [is_zero x] is [close x 0.] with relative part disabled. *)

val is_finite : float -> bool
(** True for normal, subnormal and zero values; false for nan/inf. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] bounds [x] into [\[lo, hi\]]. Requires [lo <= hi]. *)

val clamp_probability : float -> float
(** Clamp into [\[0, 1\]]; raises [Invalid_argument] if the value is further
    than [1e-6] outside the interval (a genuine numerical bug). *)

val relative_error : exact:float -> float -> float
(** [relative_error ~exact x] is [|x - exact| / max |exact| eps]; the
    denominator guard avoids division by zero for exact values near 0. *)
