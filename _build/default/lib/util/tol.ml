let default_rel = 1e-9
let default_abs = 1e-12

let close ?(rel = default_rel) ?(abs = default_abs) a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Float.abs (a -. b) <= abs +. (rel *. scale)

let close_arrays ?rel ?abs a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> close ?rel ?abs x y) a b

let is_zero ?(abs = default_abs) x = Float.abs x <= abs
let is_finite x = Float.is_finite x

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Tol.clamp: lo > hi";
  Float.min hi (Float.max lo x)

let clamp_probability x =
  if x < -1e-6 || x > 1. +. 1e-6 then
    invalid_arg (Printf.sprintf "Tol.clamp_probability: %g not in [0,1]" x);
  clamp ~lo:0. ~hi:1. x

let relative_error ~exact x =
  Float.abs (x -. exact) /. Float.max (Float.abs exact) epsilon_float
