module Tpcw = Mapqn_workloads.Tpcw
module Sim = Mapqn_sim.Simulator

type options = {
  browsers : int;
  params : Tpcw.params;
  horizon : float;
  max_lag : int;
  seed : int;
}

let default_options =
  {
    browsers = 384;
    params = Tpcw.default_params;
    horizon = 200_000.;
    max_lag = 500;
    seed = 7;
  }

type t = {
  options : options;
  flow_names : string array;
  acf : float array array;
  sample_sizes : int array;
}

(* The paper's flow numbering (Figure 1): (1) client arrivals, (2) client
   departures, (3) front arrivals, (4) front departures, (5) DB arrivals,
   (6) DB departures. *)
let probes =
  [
    ("(1) Client Arrival", Sim.Arrivals Tpcw.client);
    ("(2) Client Departure", Sim.Departures Tpcw.client);
    ("(3) Front Arrival", Sim.Arrivals Tpcw.front);
    ("(4) Front Departure", Sim.Departures Tpcw.front);
    ("(5) DB Arrival", Sim.Arrivals Tpcw.db);
    ("(6) DB Departure", Sim.Departures Tpcw.db);
  ]

let run ?(options = default_options) () =
  let network = Tpcw.network ~params:options.params ~browsers:options.browsers () in
  let sim_options =
    {
      Sim.default_options with
      seed = options.seed;
      warmup = 5_000.;
      horizon = options.horizon;
      probes = List.map snd probes;
    }
  in
  let result = Sim.run ~options:sim_options network in
  let series probe =
    match List.assoc_opt probe result.Sim.probe_series with
    | Some ts -> Sim.inter_event_times ts
    | None -> [||]
  in
  let flows = Array.of_list probes in
  let acf =
    Array.map
      (fun (_, probe) ->
        let xs = series probe in
        if Array.length xs <= options.max_lag + 1 then
          Array.make options.max_lag Float.nan
        else Mapqn_util.Stats.autocorrelation_function xs ~max_lag:options.max_lag)
      flows
  in
  {
    options;
    flow_names = Array.map fst flows;
    acf;
    sample_sizes = Array.map (fun (_, p) -> Array.length (series p)) flows;
  }

let print ?(lags = [ 1; 2; 5; 10; 20; 50; 100; 200; 350; 500 ]) t =
  let lags = List.filter (fun l -> l >= 1 && l <= t.options.max_lag) lags in
  print_endline
    (Printf.sprintf
       "Figure 1 (right): ACF of TPC-W flows, %d browsers (DES substitute for \
        the testbed; %d..%d inter-event samples per flow)"
       t.options.browsers
       (Array.fold_left min max_int t.sample_sizes)
       (Array.fold_left max 0 t.sample_sizes));
  let header = "lag" :: List.map (fun (n : string) -> n) (Array.to_list t.flow_names) in
  let rows =
    List.map
      (fun lag ->
        string_of_int lag
        :: List.map
             (fun flow -> Mapqn_util.Table.float_cell ~decimals:4 flow.(lag - 1))
             (Array.to_list t.acf))
      lags
  in
  Mapqn_util.Table.print ~header rows
