(** Extension experiment: the full measurement → fit → predict pipeline
    (the paper's closing future-work item, "parameterization of MAP
    service processes from measurements").

    A ground-truth bursty front-server service process is treated as
    unknown; a finite trace of its service times is "measured" (sampled),
    summary statistics are estimated from the trace, a MAP(2) is fitted,
    and the whole TPC-W model is rebuilt around the fitted process. The
    experiment compares, per browser population, the user response time of
    (a) the ground-truth model, (b) the trace-fitted model, and (c) the
    mean-only (exponential) fit a classic tool would use. The headline:
    (b) tracks (a) to a few percent from a modest trace, while (c) is off
    by the usual burstiness-blind factor. *)

type options = {
  params : Mapqn_workloads.Tpcw.params;  (** ground truth *)
  trace_length : int;
  browsers : int list;
  seed : int;
}

val default_options : options
(** trace of 200_000 service times, browsers [64; 128; 192]. *)

type row = {
  browsers : int;
  truth : float;  (** user response time, ground-truth model (exact CTMC) *)
  fitted : float;  (** trace-fitted MAP model *)
  mean_only : float;  (** exponential (mean-only) fit, exact MVA *)
}

type t = {
  options : options;
  estimated : Mapqn_map.Trace.statistics;
  rows : row list;
  max_err_fitted : float;
  max_err_mean_only : float;
}

val run : ?options:options -> unit -> t
val print : t -> unit
