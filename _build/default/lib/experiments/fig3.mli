(** Figure 3: model-vs-measurement comparison on the TPC-W system.

    For each browser population the paper shows bars of user response time
    and of front/DB utilization for (I) a model that captures the front
    server's autocorrelated service and (II) the same model with
    uncorrelated service, next to testbed measurements. The qualitative
    result: (I) matches; (II) severely underestimates response times and
    queue lengths and overestimates utilizations at all tiers.

    Substitutions here: "measurement" is the discrete-event simulation of
    the MAP network (the testbed substitute); model (I) is the exact CTMC
    solution of the same MAP network; model (II) is exact MVA on the
    exponentialized network. Because model (I) and the simulator share the
    MAP network, their agreement validates both; the interesting column is
    how far model (II) falls from them. *)

type options = {
  params : Mapqn_workloads.Tpcw.params;
  browsers : int list;  (** paper: 128, 256, 384, 512 *)
  sim_horizon : float;
  exact_model : bool;
      (** solve model (I) exactly via the CTMC (hundreds of thousands of
          states at 512 browsers); when false, (I) is reported from an
          independent simulation replica *)
  seed : int;
}

val default_options : options
(** browsers [128;256;384;512], exact model (I), horizon 200_000 s. *)

val bench_options : options
(** browsers [64;128;192], exact model (I), horizon 50_000 s. *)

type cell = {
  response_time : float;  (** user-perceived response time (think excluded) *)
  front_utilization : float;
  db_utilization : float;
}

type row = {
  browsers : int;
  measured : cell;  (** DES "testbed" *)
  acf_model : cell;  (** model (I) *)
  no_acf_model : cell;  (** model (II) *)
}

type t = { options : options; rows : row list }

val run : ?options:options -> unit -> t
val print : t -> unit

val no_acf_response_underestimation : t -> float
(** Mean factor by which model (II) underestimates the measured response
    time — the headline mismatch of the paper's second row of bars. *)
