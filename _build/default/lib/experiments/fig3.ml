module Tpcw = Mapqn_workloads.Tpcw
module Sim = Mapqn_sim.Simulator
module Solution = Mapqn_ctmc.Solution

type options = {
  params : Tpcw.params;
  browsers : int list;
  sim_horizon : float;
  exact_model : bool;
  seed : int;
}

let default_options =
  {
    params = Tpcw.default_params;
    browsers = [ 128; 256; 384; 512 ];
    sim_horizon = 200_000.;
    exact_model = true;
    seed = 11;
  }

let bench_options =
  { default_options with browsers = [ 64; 128; 192 ]; sim_horizon = 50_000. }

type cell = {
  response_time : float;
  front_utilization : float;
  db_utilization : float;
}

type row = { browsers : int; measured : cell; acf_model : cell; no_acf_model : cell }

type t = { options : options; rows : row list }

let cell_of_sim options (r : Sim.result) =
  {
    response_time =
      Tpcw.user_response_time ~network_response:r.Sim.system_response_time
        ~params:options.params;
    front_utilization = r.Sim.stations.(Tpcw.front).Sim.utilization;
    db_utilization = r.Sim.stations.(Tpcw.db).Sim.utilization;
  }

let cell_of_exact options sol =
  {
    response_time =
      Tpcw.user_response_time
        ~network_response:(Solution.system_response_time sol)
        ~params:options.params;
    front_utilization = Solution.utilization sol Tpcw.front;
    db_utilization = Solution.utilization sol Tpcw.db;
  }

let cell_of_mva options (mva : Mapqn_baselines.Mva.t) =
  {
    response_time =
      Tpcw.user_response_time ~network_response:mva.Mapqn_baselines.Mva.system_response_time
        ~params:options.params;
    front_utilization = mva.Mapqn_baselines.Mva.utilization.(Tpcw.front);
    db_utilization = mva.Mapqn_baselines.Mva.utilization.(Tpcw.db);
  }

let run ?(options = default_options) () =
  let rows =
    List.map
      (fun browsers ->
        let net = Tpcw.network ~params:options.params ~browsers () in
        let sim_options =
          {
            Sim.default_options with
            seed = options.seed;
            warmup = 10_000.;
            horizon = options.sim_horizon;
          }
        in
        let measured = cell_of_sim options (Sim.run ~options:sim_options net) in
        let acf_model =
          if options.exact_model then
            let sol =
              Solution.solve ~max_states:3_000_000
                ~options:
                  {
                    Mapqn_sparse.Stationary.default_options with
                    method_ = Mapqn_sparse.Stationary.Gauss_seidel;
                    tol = 1e-10;
                  }
                net
            in
            cell_of_exact options sol
          else
            cell_of_sim options
              (Sim.run ~options:{ sim_options with seed = options.seed + 1 } net)
        in
        let no_acf_model =
          cell_of_mva options
            (Mapqn_baselines.Mva.solve (Tpcw.network_no_acf ~params:options.params ~browsers ()))
        in
        { browsers; measured; acf_model; no_acf_model })
      options.browsers
  in
  { options; rows }

let print t =
  print_endline
    "Figure 3: TPC-W response time and utilizations — measured (DES testbed \
     substitute) vs ACF model (I) vs no-ACF model (II)";
  Mapqn_util.Table.print
    ~header:
      [
        "browsers";
        "R meas";
        "R acf";
        "R noacf";
        "Ufront meas";
        "Ufront acf";
        "Ufront noacf";
        "Udb meas";
        "Udb acf";
        "Udb noacf";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.browsers;
           Mapqn_util.Table.float_cell ~decimals:2 r.measured.response_time;
           Mapqn_util.Table.float_cell ~decimals:2 r.acf_model.response_time;
           Mapqn_util.Table.float_cell ~decimals:2 r.no_acf_model.response_time;
           Mapqn_util.Table.float_cell ~decimals:3 r.measured.front_utilization;
           Mapqn_util.Table.float_cell ~decimals:3 r.acf_model.front_utilization;
           Mapqn_util.Table.float_cell ~decimals:3 r.no_acf_model.front_utilization;
           Mapqn_util.Table.float_cell ~decimals:3 r.measured.db_utilization;
           Mapqn_util.Table.float_cell ~decimals:3 r.acf_model.db_utilization;
           Mapqn_util.Table.float_cell ~decimals:3 r.no_acf_model.db_utilization;
         ])
       t.rows)

let no_acf_response_underestimation t =
  let ratios =
    List.filter_map
      (fun r ->
        if r.no_acf_model.response_time > 0. then
          Some (r.measured.response_time /. r.no_acf_model.response_time)
        else None)
      t.rows
  in
  if ratios = [] then Float.nan else Mapqn_util.Stats.mean (Array.of_list ratios)
