module Process = Mapqn_map.Process
module Fit = Mapqn_map.Fit
module Rng = Mapqn_prng.Rng
module Dist = Mapqn_prng.Dist
module Mat = Mapqn_linalg.Mat

type options = { instances : int; population : int; seed : int }

let default_options = { instances = 40; population = 16; seed = 77 }
let bench_options = { instances = 12; population = 12; seed = 77 }

type row = { index : int; exact : float; second_order : float; third_order : float }

type t = {
  options : options;
  rows : row list;
  mean_err2 : float;
  max_err2 : float;
  mean_err3 : float;
  max_err3 : float;
}

(* A random general MAP(2) — including hidden transitions, so it lies
   outside the Markov-switched-H2 fitting family — retried until it is
   valid, genuinely variable (scv > 1.2) and positively autocorrelated
   with a real ACF decay (so that both fits are well posed). *)
let rec random_truth rng =
  let u lo hi = Dist.uniform rng ~lo ~hi in
  let h01 = u 0.01 0.5 and h10 = u 0.01 0.5 in
  let fast = u 2. 8. and slow = u 0.05 0.8 in
  let candidate =
    Process.make
      ~d0:(Mat.of_arrays [| [| -.(h01 +. fast); h01 |]; [| h10; -.(h10 +. slow) |] |])
      ~d1:(Mat.of_arrays [| [| fast; 0. |]; [| 0.; slow |] |])
  in
  match candidate with
  | Error _ -> random_truth rng
  | Ok p -> (
    let scv = Process.scv p in
    match Process.acf_decay p with
    | Some g when scv > 1.2 && g > 0.05 && g < 0.98 && Process.acf p 1 > 0.01 ->
      p
    | Some _ | None -> random_truth rng)

(* The MAP queue must be the clear bottleneck (demand ratio ~3x) or the
   response time barely depends on its higher-order statistics and both
   fits trivially succeed. Visit ratios here are (1, 0.7, 0.1). *)
let network ~population service =
  let mean = Process.mean service in
  Mapqn_model.Network.make_exn
    ~stations:
      [|
        Mapqn_model.Station.exp ~rate:(1. /. (0.03 *. mean)) ();
        Mapqn_model.Station.exp ~rate:(1. /. (0.06 *. mean)) ();
        Mapqn_model.Station.map service;
      |]
    ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population

let response ~population service =
  Mapqn_ctmc.Solution.system_response_time
    (Mapqn_ctmc.Solution.solve (network ~population service))

let run ?(options = default_options) () =
  let rng = Rng.create ~seed:options.seed in
  let rows = ref [] in
  let index = ref 0 in
  while List.length !rows < options.instances do
    incr index;
    let truth = random_truth rng in
    let mean = Process.mean truth and scv = Process.scv truth in
    let skewness = Process.skewness truth in
    let gamma2 =
      match Process.acf_decay truth with Some g -> g | None -> assert false
    in
    let second = Fit.map2 ~mean ~scv ~gamma2 () in
    let third = Fit.map2 ~mean ~scv ~gamma2 ~skewness () in
    match (second, third) with
    | Ok p2, Ok p3 ->
      let exact = response ~population:options.population truth in
      let r2 = response ~population:options.population p2 in
      let r3 = response ~population:options.population p3 in
      rows :=
        { index = !index; exact; second_order = r2; third_order = r3 } :: !rows
    | Error _, _ | _, Error _ ->
      (* Skewness outside the H2-feasible range for this (mean, scv):
         skip the instance (counted neither way). *)
      ()
  done;
  let rows = List.rev !rows in
  let errs f =
    Array.of_list
      (List.map (fun r -> Mapqn_util.Tol.relative_error ~exact:r.exact (f r)) rows)
  in
  let e2 = errs (fun r -> r.second_order) and e3 = errs (fun r -> r.third_order) in
  {
    options;
    rows;
    mean_err2 = Mapqn_util.Stats.mean e2;
    max_err2 = Mapqn_util.Stats.maximum e2;
    mean_err3 = Mapqn_util.Stats.mean e3;
    max_err3 = Mapqn_util.Stats.maximum e3;
  }

let print t =
  Printf.printf
    "Moment-order extension: response-time prediction error when the MAP is \
     refitted from summary statistics (%d random ground-truth MAP(2)s, N = %d)\n"
    t.options.instances t.options.population;
  Mapqn_util.Table.print
    ~header:[ "fit"; "mean rel err"; "max rel err" ]
    [
      [
        "2nd order (mean, scv, gamma2)";
        Mapqn_util.Table.float_cell t.mean_err2;
        Mapqn_util.Table.float_cell t.max_err2;
      ];
      [
        "3rd order (+ skewness)";
        Mapqn_util.Table.float_cell t.mean_err3;
        Mapqn_util.Table.float_cell t.max_err3;
      ];
    ];
  Printf.printf
    "third-order fitting reduces the mean prediction error by %.1fx\n%!"
    (t.mean_err2 /. Float.max t.mean_err3 1e-12)
