(** Figure 1 (right): autocorrelation of the six flows of the TPC-W
    system — client arrivals/departures, front-server arrivals/departures,
    DB arrivals/departures.

    The paper measures these on a hardware testbed; here the testbed is
    the discrete-event simulator running the same closed model (Figure 2)
    with a bursty MAP front server. The headline qualitative result to
    reproduce: burstiness originates at the front server and, because the
    loop is closed, {e every} flow in the system shows positive ACF over
    hundreds of lags, even though client think times are exponential. *)

type options = {
  browsers : int;  (** paper: 384 *)
  params : Mapqn_workloads.Tpcw.params;
  horizon : float;  (** simulated seconds measured *)
  max_lag : int;  (** paper plots lags up to 500 *)
  seed : int;
}

val default_options : options
(** 384 browsers, default TPC-W parameters, horizon 200_000 s, 500 lags. *)

type t = {
  options : options;
  flow_names : string array;  (** 6 flows in the paper's numbering *)
  acf : float array array;  (** [acf.(flow).(lag - 1)] *)
  sample_sizes : int array;
}

val run : ?options:options -> unit -> t

val print : ?lags:int list -> t -> unit
(** Print the ACF of each flow at selected lags (default
    [1; 2; 5; 10; 20; 50; 100; 200; 350; 500]). *)
