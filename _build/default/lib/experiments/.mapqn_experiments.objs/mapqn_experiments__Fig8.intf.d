lib/experiments/fig8.mli: Mapqn_core Mapqn_workloads
