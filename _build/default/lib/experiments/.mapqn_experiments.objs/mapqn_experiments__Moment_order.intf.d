lib/experiments/moment_order.mli:
