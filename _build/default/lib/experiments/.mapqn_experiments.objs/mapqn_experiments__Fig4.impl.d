lib/experiments/fig4.ml: Array Float List Mapqn_baselines Mapqn_ctmc Mapqn_util Mapqn_workloads
