lib/experiments/fig3.ml: Array Float List Mapqn_baselines Mapqn_ctmc Mapqn_sim Mapqn_sparse Mapqn_util Mapqn_workloads
