lib/experiments/fig3.mli: Mapqn_workloads
