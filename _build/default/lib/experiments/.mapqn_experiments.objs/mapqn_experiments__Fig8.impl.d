lib/experiments/fig8.ml: Float List Mapqn_core Mapqn_ctmc Mapqn_util Mapqn_workloads
