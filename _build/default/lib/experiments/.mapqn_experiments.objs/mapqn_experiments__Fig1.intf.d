lib/experiments/fig1.mli: Mapqn_workloads
