lib/experiments/trace_pipeline.ml: Float List Mapqn_baselines Mapqn_ctmc Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Mapqn_workloads Printf
