lib/experiments/moment_order.ml: Array Float List Mapqn_ctmc Mapqn_linalg Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Printf
