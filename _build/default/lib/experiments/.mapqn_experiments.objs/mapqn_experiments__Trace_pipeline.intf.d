lib/experiments/trace_pipeline.mli: Mapqn_map Mapqn_workloads
