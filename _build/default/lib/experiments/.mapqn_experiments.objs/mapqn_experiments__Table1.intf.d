lib/experiments/table1.mli: Mapqn_core Mapqn_workloads
