lib/experiments/fig1.ml: Array Float List Mapqn_sim Mapqn_util Mapqn_workloads Printf
