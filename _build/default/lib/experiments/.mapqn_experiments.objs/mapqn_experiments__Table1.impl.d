lib/experiments/table1.ml: Array Float List Mapqn_core Mapqn_ctmc Mapqn_model Mapqn_util Mapqn_workloads Printf String
