lib/experiments/fig4.mli: Mapqn_workloads
