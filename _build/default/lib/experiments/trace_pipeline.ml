module Tpcw = Mapqn_workloads.Tpcw
module Trace = Mapqn_map.Trace
module Solution = Mapqn_ctmc.Solution

type options = {
  params : Tpcw.params;
  trace_length : int;
  browsers : int list;
  seed : int;
}

let default_options =
  {
    params = Tpcw.default_params;
    trace_length = 200_000;
    browsers = [ 64; 128; 192 ];
    seed = 31;
  }

type row = { browsers : int; truth : float; fitted : float; mean_only : float }

type t = {
  options : options;
  estimated : Trace.statistics;
  rows : row list;
  max_err_fitted : float;
  max_err_mean_only : float;
}

let response_of_network options net =
  let sol = Solution.solve ~max_states:3_000_000 net in
  Tpcw.user_response_time
    ~network_response:(Solution.system_response_time sol)
    ~params:options.params

let run ?(options = default_options) () =
  let params = options.params in
  (* Ground-truth service process (treated as unknown by the pipeline). *)
  let truth_map =
    Mapqn_map.Fit.map2_exn ~mean:params.Tpcw.front_mean ~scv:params.Tpcw.front_scv
      ~gamma2:params.Tpcw.front_gamma2 ()
  in
  (* "Measure" a service-time trace and fit. *)
  let rng = Mapqn_prng.Rng.create ~seed:options.seed in
  let trace = Trace.sample rng truth_map ~count:options.trace_length in
  let fitted_map, estimated =
    match Trace.fit_map2 trace with
    | Ok r -> r
    | Error msg -> failwith ("Trace_pipeline: " ^ msg)
  in
  (* Rebuild the TPC-W network around a given front-service process. *)
  let network_with front ~browsers =
    Mapqn_model.Network.make_exn
      ~stations:
        [|
          Mapqn_model.Station.delay ~name:"clients"
            ~rate:(1. /. params.Tpcw.think_time) ();
          Mapqn_model.Station.map ~name:"front" front;
          Mapqn_model.Station.exp ~name:"db" ~rate:(1. /. params.Tpcw.db_mean) ();
        |]
      ~routing:
        [|
          [| 0.; 1.; 0. |];
          [| params.Tpcw.p_reply; 0.; 1. -. params.Tpcw.p_reply |];
          [| 0.; 1.; 0. |];
        |]
      ~population:browsers
  in
  let rows =
    List.map
      (fun browsers ->
        let truth = response_of_network options (network_with truth_map ~browsers) in
        let fitted = response_of_network options (network_with fitted_map ~browsers) in
        let mean_only =
          let mva =
            Mapqn_baselines.Mva.solve
              (Mapqn_model.Network.exponentialize (network_with truth_map ~browsers))
          in
          Tpcw.user_response_time
            ~network_response:mva.Mapqn_baselines.Mva.system_response_time
            ~params
        in
        { browsers; truth; fitted; mean_only })
      options.browsers
  in
  let max_err f =
    List.fold_left
      (fun acc r -> Float.max acc (Mapqn_util.Tol.relative_error ~exact:r.truth (f r)))
      0. rows
  in
  {
    options;
    estimated;
    rows;
    max_err_fitted = max_err (fun r -> r.fitted);
    max_err_mean_only = max_err (fun r -> r.mean_only);
  }

let print t =
  Printf.printf
    "Trace pipeline: fit the front server from a %d-sample service trace\n"
    t.options.trace_length;
  Printf.printf
    "estimated from trace: mean=%.5f scv=%.2f skewness=%.2f gamma2=%.3f (from \
     %d ACF lags)\n"
    t.estimated.Trace.mean t.estimated.Trace.scv t.estimated.Trace.skewness
    t.estimated.Trace.gamma2 t.estimated.Trace.gamma2_lags_used;
  Mapqn_util.Table.print
    ~header:[ "browsers"; "R truth"; "R trace-fit"; "R mean-only" ]
    (List.map
       (fun r ->
         [
           string_of_int r.browsers;
           Mapqn_util.Table.float_cell ~decimals:3 r.truth;
           Mapqn_util.Table.float_cell ~decimals:3 r.fitted;
           Mapqn_util.Table.float_cell ~decimals:3 r.mean_only;
         ])
       t.rows);
  Printf.printf
    "max relative error: trace-fitted %.3f, mean-only %.3f\n%!"
    t.max_err_fitted t.max_err_mean_only
