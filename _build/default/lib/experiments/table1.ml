module Random_models = Mapqn_workloads.Random_models
module Bounds = Mapqn_core.Bounds
module Solution = Mapqn_ctmc.Solution

type options = {
  spec : Random_models.spec;
  models : int;
  populations : int list;
  config : Mapqn_core.Constraints.config;
  seed : int;
}

let default_options =
  {
    spec = Random_models.default_spec;
    models = 50;
    populations = [ 1; 2; 4; 8; 16; 32 ];
    config = Mapqn_core.Constraints.full;
    seed = 2008;
  }

let bench_options =
  { default_options with models = 12; populations = [ 1; 2; 4; 8 ] }

type model_result = {
  index : int;
  max_err_lower : float;
  max_err_upper : float;
  bracket_violations : int;
}

type t = {
  options : options;
  per_model : model_result list;
  rmax_stats : float * float * float * float;
  rmin_stats : float * float * float * float;
}

let evaluate_model options index (model : Random_models.model) =
  let max_lower = ref 0. and max_upper = ref 0. and violations = ref 0 in
  List.iter
    (fun population ->
      let net = Mapqn_model.Network.with_population model.Random_models.network population in
      let sol = Solution.solve net in
      let exact = Solution.system_response_time sol in
      let b = Bounds.create_exn ~config:options.config net in
      let r = b |> Bounds.response_time in
      max_lower :=
        Float.max !max_lower (Mapqn_util.Tol.relative_error ~exact r.Bounds.lower);
      max_upper :=
        Float.max !max_upper (Mapqn_util.Tol.relative_error ~exact r.Bounds.upper);
      if not (Bounds.contains r exact) then incr violations)
    options.populations;
  {
    index;
    max_err_lower = !max_lower;
    max_err_upper = !max_upper;
    bracket_violations = !violations;
  }

let run ?(options = default_options) () =
  let models =
    Random_models.generate_many ~spec:options.spec ~seed:options.seed options.models
  in
  let per_model = List.mapi (evaluate_model options) models in
  let upper = Array.of_list (List.map (fun r -> r.max_err_upper) per_model) in
  let lower = Array.of_list (List.map (fun r -> r.max_err_lower) per_model) in
  {
    options;
    per_model;
    rmax_stats = Mapqn_util.Stats.summary upper;
    rmin_stats = Mapqn_util.Stats.summary lower;
  }

let print t =
  Printf.printf
    "Table 1: maximal relative error of response-time bounds on %d random \
     models (populations %s)\n"
    t.options.models
    (String.concat "," (List.map string_of_int t.options.populations));
  let row label (mean, std, median, maximum) =
    [
      label;
      Mapqn_util.Table.float_cell ~decimals:3 mean;
      Mapqn_util.Table.float_cell ~decimals:3 std;
      Mapqn_util.Table.float_cell ~decimals:3 median;
      Mapqn_util.Table.float_cell ~decimals:3 maximum;
    ]
  in
  Mapqn_util.Table.print
    ~header:[ ""; "mean"; "std dev"; "median"; "max" ]
    [ row "Rmax" t.rmax_stats; row "Rmin" t.rmin_stats ];
  let violations =
    List.fold_left (fun acc r -> acc + r.bracket_violations) 0 t.per_model
  in
  Printf.printf "bracket violations (must be 0): %d\n%!" violations
