(** Extension experiment: second- versus third-order MAP parameterization.

    The paper closes by arguing (citing its reference [2], Casale–Zhang–
    Smirni 2007) that queueing models with MAPs parameterized up to
    third-order statistics can be far more accurate than standard
    second-order parameterizations. This experiment quantifies that on
    this repository's stack:

    draw a random "ground truth" MAP(2) (a general one, outside the
    fitting family), build the Figure-5 network around it, and compare the
    exact response time against networks whose MAP was refitted from the
    truth's summary statistics — once second-order (mean, SCV, γ₂) and
    once third-order (+ skewness). *)

type options = {
  instances : int;
  population : int;
  seed : int;
}

val default_options : options
(** 40 instances, population 16. *)

val bench_options : options
(** 12 instances, population 12. *)

type row = {
  index : int;
  exact : float;  (** response time of the ground-truth network *)
  second_order : float;
  third_order : float;
}

type t = {
  options : options;
  rows : row list;
  mean_err2 : float;
  max_err2 : float;
  mean_err3 : float;
  max_err3 : float;
}

val run : ?options:options -> unit -> t
val print : t -> unit
