(** Discrete-event simulation of closed MAP queueing networks.

    The simulator is the repo's stand-in for the paper's TPC-W testbed: it
    generates the flows whose autocorrelation the paper measures (Figure 1)
    and the "measurement" bars of Figure 3, and validates the analytic
    solvers on models too large for exact solution.

    Semantics match the CTMC exactly: single-server FCFS stations run
    their MAP while busy and freeze the phase while idle; the service
    process of a busy station fires hidden transitions and completions at
    the [D0]/[D1] rates; delay stations give every resident job its own
    exponential timer. Routing is probabilistic per the network matrix. *)

type probe =
  | Arrivals of int  (** timestamps of job arrivals at a station *)
  | Departures of int  (** timestamps of service completions at a station *)

type options = {
  seed : int;
  warmup : float;  (** simulated time discarded before measuring *)
  horizon : float;  (** measured simulated time (after warmup) *)
  probes : probe list;  (** event streams to record *)
  batches : int;  (** windows for batch-means output (>= 1) *)
  sojourn_sample_cap : int;  (** reservoir size for sojourn quantiles *)
}

val default_options : options
(** seed 1, warmup 1_000, horizon 100_000, no probes, 20 batches, 50k
    sojourn samples. *)

type station_stats = {
  utilization : float;  (** fraction of measured time busy (delay: P\{n>=1\}) *)
  throughput : float;  (** completions per unit time *)
  mean_queue_length : float;  (** time-average of n_k *)
  mean_sojourn : float;  (** average arrival-to-departure time per visit *)
  completions : int;
}

type result = {
  stations : station_stats array;
  system_response_time : float;  (** N / X_0 (Little's law at station 0) *)
  probe_series : (probe * float array) list;
      (** recorded event timestamps, measurement window only *)
  total_events : int;
  batch_throughput : float array array;
      (** [batch_throughput.(k)]: station [k]'s completion rate in each of
          [options.batches] equal windows of the measurement period — feed
          to {!Summary.of_samples} for a batch-means confidence interval *)
  sojourn_samples : float array array;
      (** [sojourn_samples.(k)]: uniform reservoir sample of station [k]'s
          measured per-visit sojourn times, for quantile estimates
          ({!Mapqn_util.Stats.quantile}) *)
}

val run : ?options:options -> Mapqn_model.Network.t -> result
(** Simulate one replication. *)

val run_replicas :
  ?options:options ->
  replicas:int ->
  Mapqn_model.Network.t ->
  result array
(** Independent replications (seeds derived from [options.seed] by
    splitting); use with {!Summary} to get confidence intervals. *)

val inter_event_times : float array -> float array
(** Differences of a timestamp series — the inter-arrival/inter-departure
    series whose ACF the paper's Figure 1 plots. *)

module Summary : sig
  type t = { mean : float; half_width : float }
  (** Normal-approximation 95% confidence interval. *)

  val of_samples : float array -> t
  val contains : t -> float -> bool
end
