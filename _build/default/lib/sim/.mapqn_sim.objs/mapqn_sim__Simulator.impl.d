lib/sim/simulator.ml: Array Event_heap Float Int64 List Mapqn_linalg Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Queue
