lib/sim/simulator.mli: Mapqn_model
