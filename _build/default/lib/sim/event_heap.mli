(** Binary min-heap of timestamped events — the discrete-event engine's
    future event list. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event. Times must be finite; raises [Invalid_argument]
    otherwise. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. Ties are broken by insertion
    order (FIFO among equal timestamps), keeping runs deterministic. *)

val peek_time : 'a t -> float option
