module Csr = Mapqn_sparse.Csr

let uniformization_rate q =
  let worst = ref 0. in
  for i = 0 to Csr.nrows q - 1 do
    worst := Float.max !worst (Float.abs (Csr.get q i i))
  done;
  (!worst *. 1.05) +. 1e-12

let check q ~initial =
  if Csr.nrows q <> Csr.ncols q then invalid_arg "Transient: not square";
  if Array.length initial <> Csr.nrows q then invalid_arg "Transient: dim mismatch";
  if not (Mapqn_util.Tol.close ~rel:1e-8 ~abs:1e-8 (Mapqn_util.Ksum.sum initial) 1.)
  then invalid_arg "Transient: initial distribution does not sum to 1"

let distribution_at ?(precision = 1e-12) q ~initial ~t =
  check q ~initial;
  if t < 0. then invalid_arg "Transient: negative time";
  if t = 0. then Array.copy initial
  else begin
    let lambda = uniformization_rate q in
    let lt = lambda *. t in
    (* Poisson weights by the stable recurrence, accumulated until the tail
       is below [precision]. *)
    let acc = Array.make (Array.length initial) 0. in
    let v = ref (Array.copy initial) in
    (* p_k = e^{-lt} (lt)^k / k!, computed in log space for large lt. *)
    let log_p0 = -.lt in
    let log_pk = ref log_p0 in
    let covered = ref 0. in
    let k = ref 0 in
    let p = Csr.scale (1. /. lambda) q in
    while 1. -. !covered > precision && !k < 100_000_000 do
      let pk = exp !log_pk in
      if pk > 0. then begin
        Mapqn_linalg.Vec.axpy ~alpha:pk ~x:!v ~y:acc;
        covered := !covered +. pk
      end;
      (* Advance v <- v (I + Q/lambda). *)
      let qv = Csr.vec_mat !v p in
      let next = Array.mapi (fun i x -> x +. qv.(i)) !v in
      v := next;
      incr k;
      log_pk := !log_pk +. log lt -. log (float_of_int !k)
    done;
    (* Distribute the residual tail proportionally to the last iterate (it
       is within [precision] anyway), then renormalize. *)
    Mapqn_linalg.Vec.axpy ~alpha:(1. -. !covered) ~x:!v ~y:acc;
    Mapqn_linalg.Vec.normalize1 acc
  end

let expected_metric_at ?precision q ~initial ~metric ~t =
  let pi = distribution_at ?precision q ~initial ~t in
  Mapqn_util.Ksum.dot pi metric

let relaxation_time ?precision ?(tol = 1e-3) q ~initial ~stationary =
  check q ~initial;
  if Array.length stationary <> Array.length initial then
    invalid_arg "Transient.relaxation_time: dim mismatch";
  let distance t =
    let pi = distribution_at ?precision q ~initial ~t in
    Mapqn_linalg.Vec.norm1 (Mapqn_linalg.Vec.sub pi stationary)
  in
  (* Doubling search for an upper end, then bisection. *)
  let hi = ref (1. /. uniformization_rate q) in
  let guard = ref 0 in
  while distance !hi > tol && !guard < 60 do
    hi := !hi *. 2.;
    incr guard
  done;
  if !guard >= 60 then infinity
  else begin
    let lo = ref (!hi /. 2.) and hi = ref !hi in
    if distance !lo <= tol then !lo
    else begin
      for _ = 1 to 20 do
        let mid = 0.5 *. (!lo +. !hi) in
        if distance mid <= tol then hi := mid else lo := mid
      done;
      !hi
    end
  end
