(** Infinitesimal generator of the MAP network CTMC.

    Transition structure from state [(n, h)], for every busy station [k]
    in phase [a = h.(k)]:

    - hidden phase change [a → b] at rate [D0_k\[a,b\]] ([b ≠ a]):
      new state [(n, h\[k := b\])];
    - service completion with phase move [a → b] at rate [D1_k\[a,b\]],
      routed to station [j] with probability [p_kj]: new state
      [(n - e_k + e_j, h\[k := b\])].

    Idle stations freeze their phase (the phase "left active by the last
    served job", as in the paper's Figure 6). Transitions that return to
    the originating state (self-routing without phase change) are no-ops
    and omitted; the diagonal closes each row to zero. *)

val build : State_space.t -> Mapqn_sparse.Csr.t
(** Assemble the sparse generator [Q]. *)
