(** Transient analysis of the network CTMC by uniformization.

    [π(t) = Σ_k e^{-Λt} (Λt)^k / k! · π(0) P^k] with [P = I + Q/Λ]: the
    standard numerically stable way to compute transient state
    probabilities, here exposed for studying how long burstiness effects
    persist (e.g. relaxation of the queue-length distribution after a
    bursty period — the time-scale that makes temporal dependence matter). *)

val distribution_at :
  ?precision:float ->
  Mapqn_sparse.Csr.t ->
  initial:float array ->
  t:float ->
  float array
(** [distribution_at q ~initial ~t]: the state distribution after [t] time
    units starting from [initial]. [precision] (default [1e-12]) bounds
    the truncated Poisson tail mass. Raises [Invalid_argument] on negative
    [t], dimension mismatch, or an [initial] that does not sum to 1. *)

val expected_metric_at :
  ?precision:float ->
  Mapqn_sparse.Csr.t ->
  initial:float array ->
  metric:float array ->
  t:float ->
  float
(** Expectation of a per-state metric at time [t]. *)

val relaxation_time :
  ?precision:float ->
  ?tol:float ->
  Mapqn_sparse.Csr.t ->
  initial:float array ->
  stationary:float array ->
  float
(** Smallest [t] from a doubling search at which
    [‖π(t) − π(∞)‖₁ <= tol] (default [tol = 1e-3]): a practical measure of
    how long the chain remembers its initial (e.g. bursty) state. *)
