(** Exact stationary solution of a MAP closed network and the performance
    indexes derived from it. *)

type t

val solve :
  ?max_states:int ->
  ?options:Mapqn_sparse.Stationary.options ->
  Mapqn_model.Network.t ->
  t
(** Enumerate the state space, assemble the generator, solve for the
    stationary distribution. The solver method is chosen by
    {!Mapqn_sparse.Stationary} ([Auto] by default: GTH for small spaces,
    Gauss–Seidel above). *)

val network : t -> Mapqn_model.Network.t
val space : t -> State_space.t
val probability : t -> int -> float
(** Stationary probability of a state index. *)

val distribution : t -> float array
(** The full stationary vector (not copied; callers must not mutate). *)

val queue_length_marginal : t -> int -> float array
(** [queue_length_marginal t k] is the distribution of the queue length at
    station [k]: entry [n] is [P{n_k = n}], for [n = 0..N]. *)

val utilization : t -> int -> float
(** [P{n_k >= 1}] — single-server busy probability. *)

val throughput : t -> int -> float
(** Completion rate at station [k]:
    [Σ_{n_k >= 1} π(n, h) · λ_k(h_k)] with [λ_k(a)] the total event rate
    of phase [a] (row sum of [D1_k]). *)

val mean_queue_length : t -> int -> float
val queue_length_variance : t -> int -> float
val queue_length_moment : t -> int -> int -> float
(** [queue_length_moment t k r] is [E[n_k^r]]. *)

val system_response_time : ?reference:int -> t -> float
(** Little's law on the whole network: [N / X_ref] with [X_ref] the
    throughput of the reference station (default 0) — the paper's response
    time metric. Population 0 yields 0. *)

val phase_marginal : t -> int -> float array
(** [phase_marginal t k]: distribution of station [k]'s MAP phase. *)

val joint_queue_length : t -> int -> int -> Mapqn_linalg.Mat.t
(** [joint_queue_length t j k] (for [j <> k]): the matrix
    [P{n_j = a, n_k = b}] with [a, b = 0..N]. Marginalizing either
    coordinate recovers {!queue_length_marginal}; used to study how
    burstiness correlates queue lengths across stations (a quantity the
    marginal-balance LP can only bound). *)

val queue_length_correlation : t -> int -> int -> float
(** Pearson correlation of [n_j] and [n_k] ([j <> k]); in a closed network
    the population constraint makes it typically negative, but shared
    bursty upstreams can push pairs positive. *)

val metrics_table : t -> (string * float array) list
(** Summary rows ([utilization], [throughput], [mean queue length]) for
    display. *)
