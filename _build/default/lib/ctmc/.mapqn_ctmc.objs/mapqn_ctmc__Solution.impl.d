lib/ctmc/solution.ml: Array Generator Mapqn_linalg Mapqn_map Mapqn_model Mapqn_sparse Mapqn_util State_space
