lib/ctmc/transient.mli: Mapqn_sparse
