lib/ctmc/generator.ml: Array List Mapqn_linalg Mapqn_map Mapqn_model Mapqn_sparse State_space
