lib/ctmc/generator.mli: Mapqn_sparse State_space
