lib/ctmc/state_space.mli: Mapqn_model
