lib/ctmc/state_space.ml: Array Hashtbl Mapqn_model Mapqn_util Printf
