lib/ctmc/solution.mli: Mapqn_linalg Mapqn_model Mapqn_sparse State_space
