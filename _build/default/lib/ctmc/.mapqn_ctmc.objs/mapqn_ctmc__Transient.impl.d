lib/ctmc/transient.ml: Array Float Mapqn_linalg Mapqn_sparse Mapqn_util
