(** Explicit state space of the CTMC underlying a MAP closed network.

    A state is a pair [(n, h)]: the queue-length vector [n] (a weak
    composition of the population over the stations) and the phase vector
    [h] (one MAP phase per station; exponential stations have the single
    phase 0). The count is [C(N+M-1, M-1) · Π order_k] — the combinatorial
    explosion the paper's bounds avoid; here we enumerate it for the exact
    solver and for validation. *)

type t

val create : ?max_states:int -> Mapqn_model.Network.t -> t
(** Enumerate the state space. Raises [Invalid_argument] when the state
    count exceeds [max_states] (default [2_000_000]) — a guard against
    accidentally materializing an infeasible space. *)

val network : t -> Mapqn_model.Network.t
val num_states : t -> int
val num_compositions : t -> int
val num_phase_vectors : t -> int

val index : t -> queue_lengths:int array -> phases:int array -> int
(** State index of [(n, h)]; raises if the composition or phase vector is
    invalid. *)

val decode : t -> int -> int array * int array
(** Inverse of {!index}: fresh [(queue_lengths, phases)] arrays. *)

val iter : t -> (int -> int array -> int array -> unit) -> unit
(** [iter t f] calls [f index queue_lengths phases] for every state. The
    arrays are shared and must not be mutated or retained. *)

val comp_rank : t -> int array -> int
(** Rank of a queue-length composition (used to move jobs between
    stations without re-deriving the full index). *)

val index_of_ranks : t -> comp:int -> phase:int -> int
val phase_rank : t -> int array -> int
