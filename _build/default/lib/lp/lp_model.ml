type var = int
type sense = Le | Ge | Eq

type row = { terms : (var * float) list; sense : sense; rhs : float; rname : string }

type t = {
  mutable nvars : int;
  mutable names : string list; (* reversed *)
  mutable lbs : float list; (* reversed *)
  mutable ubs : float list; (* reversed *)
  mutable row_list : row list; (* reversed *)
  mutable nrows : int;
  mutable frozen_names : string array option;
  mutable frozen_lbs : float array option;
  mutable frozen_ubs : float array option;
}

let create () =
  {
    nvars = 0;
    names = [];
    lbs = [];
    ubs = [];
    row_list = [];
    nrows = 0;
    frozen_names = None;
    frozen_lbs = None;
    frozen_ubs = None;
  }

let invalidate t =
  t.frozen_names <- None;
  t.frozen_lbs <- None;
  t.frozen_ubs <- None

let add_var ?name ?(lb = 0.) ?(ub = infinity) t =
  if lb > ub then invalid_arg "Lp_model.add_var: lb > ub";
  let id = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  t.nvars <- id + 1;
  t.names <- name :: t.names;
  t.lbs <- lb :: t.lbs;
  t.ubs <- ub :: t.ubs;
  invalidate t;
  id

let add_row ?name t terms sense rhs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= t.nvars then invalid_arg "Lp_model.add_row: unknown var")
    terms;
  let rname = match name with Some n -> n | None -> Printf.sprintf "r%d" t.nrows in
  t.row_list <- { terms; sense; rhs; rname } :: t.row_list;
  t.nrows <- t.nrows + 1

let num_vars t = t.nvars
let num_rows t = t.nrows

let frozen get set of_list t =
  match get t with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev (of_list t)) in
    set t a;
    a

let names_array t =
  frozen (fun t -> t.frozen_names) (fun t a -> t.frozen_names <- Some a) (fun t -> t.names) t

let lbs_array t =
  frozen (fun t -> t.frozen_lbs) (fun t a -> t.frozen_lbs <- Some a) (fun t -> t.lbs) t

let ubs_array t =
  frozen (fun t -> t.frozen_ubs) (fun t a -> t.frozen_ubs <- Some a) (fun t -> t.ubs) t

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Lp_model.var_name";
  (names_array t).(v)

let var_bounds t v =
  if v < 0 || v >= t.nvars then invalid_arg "Lp_model.var_bounds";
  ((lbs_array t).(v), (ubs_array t).(v))

let var_of_int t i =
  if i < 0 || i >= t.nvars then invalid_arg "Lp_model.var_of_int";
  i

let rows t =
  List.rev_map (fun r -> (r.terms, r.sense, r.rhs, r.rname)) t.row_list

let eval_row terms x =
  let acc = Mapqn_util.Ksum.create () in
  List.iter (fun (v, c) -> Mapqn_util.Ksum.add acc (c *. x.(v))) terms;
  Mapqn_util.Ksum.total acc

let pp fmt t =
  Format.fprintf fmt "@[<v>lp model: %d variables, %d rows@," t.nvars t.nrows;
  let lbs = lbs_array t and ubs = ubs_array t in
  for v = 0 to t.nvars - 1 do
    if lbs.(v) <> 0. || ubs.(v) <> infinity then
      Format.fprintf fmt "  %g <= %s <= %g@," lbs.(v) (var_name t v) ubs.(v)
  done;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %s: " r.rname;
      List.iteri
        (fun i (v, c) ->
          if i > 0 then Format.fprintf fmt " + ";
          Format.fprintf fmt "%g %s" c (var_name t v))
        r.terms;
      let op = match r.sense with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf fmt " %s %g@," op r.rhs)
    (List.rev t.row_list);
  Format.fprintf fmt "@]"

let check_feasible ?(tol = 1e-7) t x =
  if Array.length x <> t.nvars then Error "point dimension mismatch"
  else begin
    let lbs = lbs_array t and ubs = ubs_array t in
    let violation = ref None in
    Array.iteri
      (fun i xi ->
        if !violation = None && (xi < lbs.(i) -. tol || xi > ubs.(i) +. tol) then
          violation :=
            Some
              (Printf.sprintf "variable %s = %g outside [%g, %g]" (var_name t i) xi
                 lbs.(i) ubs.(i)))
      x;
    List.iter
      (fun r ->
        if !violation = None then begin
          let lhs = eval_row r.terms x in
          (* Scale the tolerance with the row magnitude so that rows with
             large coefficients (e.g. population constraints at big N) are
             not spuriously flagged. *)
          let scale =
            List.fold_left (fun acc (_, c) -> Float.max acc (Float.abs c)) 1. r.terms
          in
          let tol = tol *. scale in
          let bad =
            match r.sense with
            | Le -> lhs > r.rhs +. tol
            | Ge -> lhs < r.rhs -. tol
            | Eq -> Float.abs (lhs -. r.rhs) > tol
          in
          if bad then
            violation :=
              Some (Printf.sprintf "row %s: lhs = %.12g, rhs = %.12g" r.rname lhs r.rhs)
        end)
      (List.rev t.row_list);
    match !violation with None -> Ok () | Some msg -> Error msg
  end
