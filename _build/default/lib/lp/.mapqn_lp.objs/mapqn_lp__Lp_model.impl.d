lib/lp/lp_model.ml: Array Float Format List Mapqn_util Printf
