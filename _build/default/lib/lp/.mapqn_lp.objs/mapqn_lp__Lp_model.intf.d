lib/lp/lp_model.mli: Format
