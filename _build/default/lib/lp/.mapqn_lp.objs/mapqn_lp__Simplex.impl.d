lib/lp/simplex.ml: Array Float Hashtbl List Logs Lp_model Mapqn_util Seq String
