(** A service station of a closed network. *)

type service =
  | Exp of float  (** single-server FCFS, exponential service at the given rate *)
  | Map of Mapqn_map.Process.t  (** single-server FCFS, general MAP service *)
  | Delay of float
      (** infinite-server (pure delay) station with exponential service at
          the given per-job rate — models client think times in the TPC-W
          topology (paper Figure 2). *)

type t = { name : string; service : service }

val exp : ?name:string -> rate:float -> unit -> t
val map : ?name:string -> Mapqn_map.Process.t -> t
val delay : ?name:string -> rate:float -> unit -> t

val service_process : t -> Mapqn_map.Process.t
(** Uniform MAP view of the per-job service process (exponential and delay
    become the order-1 MAP). Note that for delay stations the {e station}
    completion rate additionally scales with the number of resident jobs. *)

val phases : t -> int
(** Order of the service MAP; 1 for exponential and delay stations. *)

val mean_service_time : t -> float
val mean_service_rate : t -> float

val is_exponential : t -> bool
(** True when the station is a single-server station with exponential
    service (order-1 MAP counts); false for delay stations. *)

val is_delay : t -> bool

val exponentialize : t -> t
(** Same mean service time, exponential distribution — the "no ACF / no
    variability" projection used by the paper's unsuccessful model. Delay
    stations are kept as delay stations (they are already exponential and
    product-form). *)

val pp : Format.formatter -> t -> unit
