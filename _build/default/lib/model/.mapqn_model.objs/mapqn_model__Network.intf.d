lib/model/network.mli: Format Mapqn_linalg Station
