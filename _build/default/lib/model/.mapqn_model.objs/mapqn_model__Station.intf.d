lib/model/station.mli: Format Mapqn_map
