lib/model/network.ml: Array Format Mapqn_linalg Mapqn_util Printf Station
