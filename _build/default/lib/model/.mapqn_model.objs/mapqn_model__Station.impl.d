lib/model/station.ml: Format Mapqn_map
