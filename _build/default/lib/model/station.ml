type service = Exp of float | Map of Mapqn_map.Process.t | Delay of float

type t = { name : string; service : service }

let exp ?(name = "exp") ~rate () =
  if rate <= 0. then invalid_arg "Station.exp: rate <= 0";
  { name; service = Exp rate }

let map ?(name = "map") process = { name; service = Map process }

let delay ?(name = "delay") ~rate () =
  if rate <= 0. then invalid_arg "Station.delay: rate <= 0";
  { name; service = Delay rate }

let service_process t =
  match t.service with
  | Exp rate | Delay rate -> Mapqn_map.Builders.exponential ~rate
  | Map p -> p

let phases t =
  match t.service with Exp _ | Delay _ -> 1 | Map p -> Mapqn_map.Process.order p

let mean_service_time t =
  match t.service with
  | Exp rate | Delay rate -> 1. /. rate
  | Map p -> Mapqn_map.Process.mean p

let mean_service_rate t = 1. /. mean_service_time t

let is_exponential t =
  match t.service with
  | Exp _ -> true
  | Delay _ -> false
  | Map p -> Mapqn_map.Process.order p = 1

let is_delay t = match t.service with Delay _ -> true | Exp _ | Map _ -> false

let exponentialize t =
  match t.service with
  | Delay _ -> t
  | Exp _ | Map _ -> { t with service = Exp (mean_service_rate t) }

let pp fmt t =
  match t.service with
  | Exp rate -> Format.fprintf fmt "%s: Exp(rate=%g)" t.name rate
  | Delay rate -> Format.fprintf fmt "%s: Delay(rate=%g)" t.name rate
  | Map p ->
    Format.fprintf fmt "%s: MAP(%d) mean=%g scv=%g" t.name
      (Mapqn_map.Process.order p) (Mapqn_map.Process.mean p)
      (Mapqn_map.Process.scv p)
