(** Exact Mean Value Analysis for product-form closed networks.

    The classic recursion (Reiser–Lavenberg; [Lazowska et al. 1984], the
    paper's reference [4]): for single-server FCFS stations with demands
    [D_k], [R_k(n) = D_k (1 + Q_k(n-1))], [X(n) = n / Σ R_k(n)],
    [Q_k(n) = X(n) R_k(n)].

    MVA is exact only under product form (exponential service here). On a
    MAP network it is the "ignore burstiness" baseline of the paper's
    Figure 3 second row: call it on
    [Mapqn_model.Network.exponentialize net]. *)

type t = {
  population : int;
  system_throughput : float;  (** [X(N)] relative to the reference station 0 *)
  throughput : float array;  (** per-station completion rate [X v_k] *)
  utilization : float array;
  mean_queue_length : float array;
  residence_time : float array;  (** per-visit response time at each station times [v_k] *)
  system_response_time : float;  (** [N / X(N)] *)
}

val solve : Mapqn_model.Network.t -> t
(** Run the exact recursion from population 1 to [N]. Population 0 gives
    zero throughput and queue lengths. *)

val solve_sweep : Mapqn_model.Network.t -> int -> t array
(** [solve_sweep net n_max]: results for every population [0..n_max] in one
    pass of the recursion (entry [n] is population [n]). *)

val is_exact_for : Mapqn_model.Network.t -> bool
(** True when the network is product-form (all stations exponential), i.e.
    when MVA is exact rather than a means-only approximation. *)
