type t = {
  population : int;
  system_throughput : float;
  throughput : float array;
  utilization : float array;
  mean_queue_length : float array;
  residence_time : float array;
  system_response_time : float;
}

let result_of ~population ~visits ~demands ~x ~qlen ~rtime =
  let m = Array.length demands in
  {
    population;
    system_throughput = x;
    throughput = Array.init m (fun k -> x *. visits.(k));
    utilization = Array.init m (fun k -> x *. demands.(k));
    mean_queue_length = Array.copy qlen;
    residence_time = Array.copy rtime;
    system_response_time = (if x > 0. then float_of_int population /. x else 0.);
  }

let solve_sweep network n_max =
  if n_max < 0 then invalid_arg "Mva.solve_sweep: negative population";
  let visits = Mapqn_model.Network.visit_ratios network in
  let demands = Mapqn_model.Network.demands network in
  let m = Array.length demands in
  let delay =
    Array.init m (fun k ->
        Mapqn_model.Station.is_delay (Mapqn_model.Network.station network k))
  in
  let qlen = Array.make m 0. in
  let rtime = Array.make m 0. in
  let out = Array.make (n_max + 1) (result_of ~population:0 ~visits ~demands ~x:0. ~qlen ~rtime) in
  for n = 1 to n_max do
    for k = 0 to m - 1 do
      (* Delay (infinite-server) stations have no queueing term. *)
      rtime.(k) <- (if delay.(k) then demands.(k) else demands.(k) *. (1. +. qlen.(k)))
    done;
    let total = Mapqn_util.Ksum.sum rtime in
    let x = float_of_int n /. total in
    for k = 0 to m - 1 do
      qlen.(k) <- x *. rtime.(k)
    done;
    out.(n) <- result_of ~population:n ~visits ~demands ~x ~qlen ~rtime
  done;
  out

let solve network =
  let n = Mapqn_model.Network.population network in
  (solve_sweep network n).(n)

let is_exact_for = Mapqn_model.Network.is_product_form
