lib/baselines/decomposition.ml: Array Float Mapqn_linalg Mapqn_map Mapqn_model Mapqn_util
