lib/baselines/mva.ml: Array Mapqn_model Mapqn_util
