lib/baselines/schweitzer.mli: Mapqn_model
