lib/baselines/schweitzer.ml: Array Float Mapqn_model Mapqn_util
