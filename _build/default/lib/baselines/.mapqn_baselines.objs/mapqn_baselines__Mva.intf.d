lib/baselines/mva.mli: Mapqn_model
