lib/baselines/aba.mli: Mapqn_model
