lib/baselines/aba.ml: Array Float List Mapqn_model Mapqn_util
