lib/baselines/decomposition.mli: Mapqn_map Mapqn_model
