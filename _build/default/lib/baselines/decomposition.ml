module Mat = Mapqn_linalg.Mat

type t = {
  system_throughput : float;
  throughput : float array;
  utilization : float array;
  mean_queue_length : float array;
  system_response_time : float;
  iterations : int;
}

(* Stationary analysis of an M/MAP/1/cap queue: states (n, phase) with
   n = 0..cap. Poisson arrivals at [arrival_rate] (lost at capacity), MAP
   service, phase frozen while idle. Small state space: dense GTH. *)
(* M/M/∞ truncated at [capacity]: birth rate a, death rate n·mu;
   pi_n ∝ (a/mu)^n / n!. *)
let isolated_delay_metrics ~arrival_rate ~capacity rate =
  let rho = arrival_rate /. rate in
  let weights = Array.make (capacity + 1) 1. in
  for n = 1 to capacity do
    weights.(n) <- weights.(n - 1) *. rho /. float_of_int n
  done;
  let z = Mapqn_util.Ksum.sum weights in
  let qlen = ref 0. and tput = ref 0. and util = ref 0. in
  for n = 0 to capacity do
    let p = weights.(n) /. z in
    qlen := !qlen +. (float_of_int n *. p);
    if n > 0 then begin
      util := !util +. p;
      tput := !tput +. (p *. float_of_int n *. rate)
    end
  done;
  (!qlen, !tput, !util)

let isolated_queue_metrics ~arrival_rate ~capacity service =
  if arrival_rate <= 0. then invalid_arg "isolated_queue_metrics: rate <= 0";
  if capacity < 1 then invalid_arg "isolated_queue_metrics: capacity < 1";
  let order = Mapqn_map.Process.order service in
  let d0 = Mapqn_map.Process.d0 service and d1 = Mapqn_map.Process.d1 service in
  let states = (capacity + 1) * order in
  let idx n ph = (n * order) + ph in
  let q = Mat.create ~rows:states ~cols:states in
  let add i j v = if i <> j then Mat.update q i j (fun x -> x +. v) in
  for n = 0 to capacity do
    for ph = 0 to order - 1 do
      let i = idx n ph in
      if n < capacity then add i (idx (n + 1) ph) arrival_rate;
      if n > 0 then begin
        for b = 0 to order - 1 do
          if b <> ph then add i (idx n b) (Mat.get d0 ph b);
          add i (idx (n - 1) b) (Mat.get d1 ph b)
        done
      end
    done
  done;
  for i = 0 to states - 1 do
    Mat.set q i i (-.Mapqn_util.Ksum.sum (Mat.row q i))
  done;
  let pi = Mapqn_linalg.Gth.ctmc q in
  let qlen = ref 0. and tput = ref 0. and util = ref 0. in
  let rates = Mapqn_map.Process.completion_rates service in
  for n = 0 to capacity do
    for ph = 0 to order - 1 do
      let p = pi.(idx n ph) in
      qlen := !qlen +. (float_of_int n *. p);
      if n > 0 then begin
        util := !util +. p;
        tput := !tput +. (p *. rates.(ph))
      end
    done
  done;
  (!qlen, !tput, !util)

let solve ?(tol = 1e-10) network =
  let m = Mapqn_model.Network.num_stations network in
  let n = Mapqn_model.Network.population network in
  if n = 0 then
    {
      system_throughput = 0.;
      throughput = Array.make m 0.;
      utilization = Array.make m 0.;
      mean_queue_length = Array.make m 0.;
      system_response_time = 0.;
      iterations = 0;
    }
  else begin
    let visits = Mapqn_model.Network.visit_ratios network in
    let services =
      Array.init m (fun k ->
          Mapqn_model.Station.service_process (Mapqn_model.Network.station network k))
    in
    let is_delay =
      Array.init m (fun k ->
          Mapqn_model.Station.is_delay (Mapqn_model.Network.station network k))
    in
    let isolated k arrival_rate =
      if is_delay.(k) then
        isolated_delay_metrics ~arrival_rate ~capacity:n
          (Mapqn_map.Process.rate services.(k))
      else isolated_queue_metrics ~arrival_rate ~capacity:n services.(k)
    in
    let total_qlen x =
      let acc = ref 0. in
      for k = 0 to m - 1 do
        let qlen, _, _ = isolated k (x *. visits.(k)) in
        acc := !acc +. qlen
      done;
      !acc
    in
    (* The population constraint Σ Q_k(x) = N is monotone in x. At the
       bottleneck saturation rate the isolated finite-capacity queues hold
       only about half their capacity on average, so the nominal arrival
       rate of the fixed point may exceed saturation: expand the bracket
       until the population fits (Σ Q_k → M·N as x → ∞, so it always
       does). *)
    let x_sat =
      Array.fold_left Float.min infinity
        (Array.init m (fun k ->
             if is_delay.(k) then infinity
             else Mapqn_map.Process.rate services.(k) /. visits.(k)))
    in
    (* Pure-delay networks never saturate; fall back to the total service
       rate as the bracket scale. *)
    let x_sat =
      if x_sat < infinity then x_sat
      else Mapqn_util.Ksum.sum (Array.map Mapqn_map.Process.rate services)
    in
    let lo = ref (x_sat *. 1e-9) and hi = ref x_sat in
    while total_qlen !hi < float_of_int n && !hi < 64. *. x_sat do
      hi := !hi *. 2.
    done;
    let iterations = ref 0 in
    while !hi -. !lo > tol *. x_sat && !iterations < 200 do
      incr iterations;
      let mid = 0.5 *. (!lo +. !hi) in
      if total_qlen mid < float_of_int n then lo := mid else hi := mid
    done;
    let x = 0.5 *. (!lo +. !hi) in
    let throughput = Array.make m 0. in
    let utilization = Array.make m 0. in
    let mean_queue_length = Array.make m 0. in
    for k = 0 to m - 1 do
      let qlen, tput, util = isolated k (x *. visits.(k)) in
      mean_queue_length.(k) <- qlen;
      throughput.(k) <- tput;
      utilization.(k) <- util
    done;
    {
      system_throughput = throughput.(0) /. visits.(0);
      throughput;
      utilization;
      mean_queue_length;
      system_response_time =
        (if throughput.(0) > 0. then float_of_int n /. throughput.(0) else infinity);
      iterations = !iterations;
    }
  end
