(** Decomposition–aggregation approximation (the failing baseline of the
    paper's Figure 4).

    Classic Markov-chain decomposition in the style of Courtois (the
    paper's reference [3]) as instantiated by the fixed-population-mean
    method: each station is analyzed {e in isolation} as a finite-capacity
    queue with MAP service and {e Poisson} arrivals — the decomposition
    step discards all correlation in the arrival flows — and the isolated
    models are coupled only through a scalar fixed point on the system
    throughput [x]: arrivals to station [k] come at rate [x·v_k], and [x]
    is chosen so the isolated mean queue lengths sum to the population [N].

    On renewal (exponential) networks this is a good approximation; on
    autocorrelated networks it degrades badly as [N] grows, which is
    exactly the phenomenon Figure 4 demonstrates. *)

type t = {
  system_throughput : float;
  throughput : float array;
  utilization : float array;
  mean_queue_length : float array;
  system_response_time : float;
  iterations : int;  (** bisection steps used by the fixed point *)
}

val solve : ?tol:float -> Mapqn_model.Network.t -> t
(** Run the fixed point. [tol] (default [1e-10]) controls the bisection on
    the population constraint. *)

val isolated_queue_metrics :
  arrival_rate:float ->
  capacity:int ->
  Mapqn_map.Process.t ->
  float * float * float
(** Analysis of one isolated M/MAP/1/[capacity] queue (Poisson arrivals,
    MAP service, arrivals blocked at capacity):
    [(mean_queue_length, throughput, utilization)]. Exposed for tests. *)
