(** Schweitzer's approximate MVA (the Bard–Schweitzer fixed point).

    The classic O(M) -per-iteration approximation of exact MVA for
    product-form closed networks: it replaces the exact recursion's
    [Q_k(N-1)] with the proportional estimate [(N-1)/N · Q_k(N)] and
    iterates to a fixed point. Used in practice when the population is
    large enough to make the exact recursion annoying, and included here
    as the "industrial strength" representative of the product-form
    toolbox that the paper argues is insufficient under burstiness. *)

type t = {
  system_throughput : float;
  throughput : float array;
  utilization : float array;
  mean_queue_length : float array;
  system_response_time : float;
  iterations : int;
}

val solve : ?tol:float -> ?max_iter:int -> Mapqn_model.Network.t -> t
(** Fixed point to absolute queue-length tolerance [tol] (default 1e-10).
    Handles delay stations like MVA (no queueing term). *)
