type t = {
  system_throughput : float;
  throughput : float array;
  utilization : float array;
  mean_queue_length : float array;
  system_response_time : float;
  iterations : int;
}

let solve ?(tol = 1e-10) ?(max_iter = 100_000) network =
  let visits = Mapqn_model.Network.visit_ratios network in
  let demands = Mapqn_model.Network.demands network in
  let m = Array.length demands in
  let delay =
    Array.init m (fun k ->
        Mapqn_model.Station.is_delay (Mapqn_model.Network.station network k))
  in
  let n = Mapqn_model.Network.population network in
  if n = 0 then
    {
      system_throughput = 0.;
      throughput = Array.make m 0.;
      utilization = Array.make m 0.;
      mean_queue_length = Array.make m 0.;
      system_response_time = 0.;
      iterations = 0;
    }
  else begin
    let nf = float_of_int n in
    (* Start from an even split and iterate Q -> X(Q) -> Q. *)
    let qlen = Array.make m (nf /. float_of_int m) in
    let rtime = Array.make m 0. in
    let x = ref 0. in
    let iterations = ref 0 in
    let delta = ref infinity in
    while !delta > tol && !iterations < max_iter do
      incr iterations;
      for k = 0 to m - 1 do
        rtime.(k) <-
          (if delay.(k) then demands.(k)
           else demands.(k) *. (1. +. ((nf -. 1.) /. nf *. qlen.(k))))
      done;
      x := nf /. Mapqn_util.Ksum.sum rtime;
      delta := 0.;
      for k = 0 to m - 1 do
        let next = !x *. rtime.(k) in
        delta := Float.max !delta (Float.abs (next -. qlen.(k)));
        qlen.(k) <- next
      done
    done;
    {
      system_throughput = !x;
      throughput = Array.init m (fun k -> !x *. visits.(k));
      utilization = Array.init m (fun k -> !x *. demands.(k));
      mean_queue_length = Array.copy qlen;
      system_response_time = nf /. !x;
      iterations = !iterations;
    }
  end
