type bounds = { x_lower : float; x_upper : float; r_lower : float; r_upper : float }

(* Demands split into queueing stations (D, D_max, D_avg) and delay
   stations (think time Z). *)
let demand_stats network =
  let demands = Mapqn_model.Network.demands network in
  let queueing = ref [] and z = ref 0. in
  Array.iteri
    (fun k d ->
      if Mapqn_model.Station.is_delay (Mapqn_model.Network.station network k) then
        z := !z +. d
      else queueing := d :: !queueing)
    demands;
  let qs = !queueing in
  let total = Mapqn_util.Ksum.sum (Array.of_list qs) in
  let dmax = List.fold_left Float.max 0. qs in
  let count = max 1 (List.length qs) in
  (total, dmax, total /. float_of_int count, !z)

let with_response ~n ~x_lower ~x_upper =
  {
    x_lower;
    x_upper;
    r_lower = (if x_upper > 0. then n /. x_upper else 0.);
    r_upper = (if x_lower > 0. then n /. x_lower else infinity);
  }

let aba network =
  let n = float_of_int (Mapqn_model.Network.population network) in
  let d, dmax, _, z = demand_stats network in
  if n = 0. then { x_lower = 0.; x_upper = 0.; r_lower = 0.; r_upper = 0. }
  else
    let x_upper = Float.min (n /. (d +. z)) (1. /. dmax) in
    (* Pessimistic: all other jobs queued ahead at every queueing station,
       so R <= N * D + Z. *)
    let x_lower = n /. ((n *. d) +. z) in
    with_response ~n ~x_lower ~x_upper

let balanced network =
  let n = float_of_int (Mapqn_model.Network.population network) in
  let d, dmax, davg, z = demand_stats network in
  if n = 0. then { x_lower = 0.; x_upper = 0.; r_lower = 0.; r_upper = 0. }
  else
    let x_upper = Float.min (1. /. dmax) (n /. (d +. z +. ((n -. 1.) *. davg))) in
    let x_lower = n /. (d +. z +. ((n -. 1.) *. dmax)) in
    with_response ~n ~x_lower ~x_upper

let utilization_bounds network k =
  let demands = Mapqn_model.Network.demands network in
  let b = aba network in
  let clamp = Mapqn_util.Tol.clamp ~lo:0. ~hi:1. in
  (clamp (b.x_lower *. demands.(k)), clamp (b.x_upper *. demands.(k)))
