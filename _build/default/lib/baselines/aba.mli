(** Asymptotic Bound Analysis and Balanced Job Bounds.

    The general throughput/response bounds of [Lazowska et al. 1984]
    (the paper's reference [4]), shown failing on autocorrelated networks
    in the paper's Figure 4. For a closed network with total demand
    [D = Σ D_k], bottleneck demand [D_max], no think time:

    - optimistic (upper) throughput:  [X(N) <= min(N/D, 1/D_max)]
    - pessimistic (lower) throughput: [X(N) >= N/(N·D) = 1/D]
    - balanced job bounds tighten both using the average demand. *)

type bounds = {
  x_lower : float;
  x_upper : float;
  r_lower : float;  (** response-time lower bound [N / x_upper] *)
  r_upper : float;  (** response-time upper bound [N / x_lower] *)
}

val aba : Mapqn_model.Network.t -> bounds
(** Classic asymptotic bounds at the network's population. *)

val balanced : Mapqn_model.Network.t -> bounds
(** Balanced-job bounds (tighter than {!aba}):
    [N/(D + (N-1) D_max) <= X(N) <= min(1/D_max, N/(D + (N-1) D_avg))]. *)

val utilization_bounds : Mapqn_model.Network.t -> int -> float * float
(** [(lower, upper)] bounds on station [k]'s utilization, [U_k = X D_k]
    with X from {!aba}, both clamped to [0, 1]. *)
