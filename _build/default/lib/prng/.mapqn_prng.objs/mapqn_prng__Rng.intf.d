lib/prng/rng.mli:
