lib/prng/reservoir.ml: Array Mapqn_util Rng
