lib/prng/reservoir.mli: Rng
