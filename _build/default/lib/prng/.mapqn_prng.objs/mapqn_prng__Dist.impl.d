lib/prng/dist.ml: Array Mapqn_util Queue Rng
