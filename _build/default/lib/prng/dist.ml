let uniform rng ~lo ~hi =
  if lo >= hi then invalid_arg "Dist.uniform: lo >= hi";
  lo +. ((hi -. lo) *. Rng.float rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate <= 0";
  -.log (Rng.float_pos rng) /. rate

let erlang rng ~k ~rate =
  if k < 1 then invalid_arg "Dist.erlang: k < 1";
  (* Product of uniforms needs a single log: X = -ln(prod u_i)/rate. *)
  let prod = ref 1. in
  for _ = 1 to k do
    prod := !prod *. Rng.float_pos rng
  done;
  -.log !prod /. rate

let categorical rng weights =
  let total = Mapqn_util.Ksum.sum weights in
  if total <= 0. then invalid_arg "Dist.categorical: zero total weight";
  let u = Rng.float rng *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.

let hyperexponential rng ~probs ~rates =
  if Array.length probs <> Array.length rates then
    invalid_arg "Dist.hyperexponential: length mismatch";
  let i = categorical rng probs in
  exponential rng ~rate:rates.(i)

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Dist.Alias.create: empty";
    Array.iter
      (fun w -> if w < 0. then invalid_arg "Dist.Alias.create: negative weight")
      weights;
    let total = Mapqn_util.Ksum.sum weights in
    if total <= 0. then invalid_arg "Dist.Alias.create: zero total weight";
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 1. and alias = Array.init n (fun i -> i) in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri
      (fun i p -> Queue.push i (if p < 1. then small else large))
      scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      Queue.push l (if scaled.(l) < 1. then small else large)
    done;
    (* Leftovers are 1 up to rounding. *)
    Queue.iter (fun i -> prob.(i) <- 1.) small;
    Queue.iter (fun i -> prob.(i) <- 1.) large;
    { prob; alias }

  let sample t rng =
    let n = Array.length t.prob in
    let i = Rng.int rng n in
    if Rng.float rng < t.prob.(i) then i else t.alias.(i)

  let support t = Array.length t.prob
end
