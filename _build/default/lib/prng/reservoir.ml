type t = {
  data : float array;
  mutable seen : int;
  rng : Rng.t;
}

let create ~capacity rng =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity <= 0";
  { data = Array.make capacity 0.; seen = 0; rng }

let add t x =
  let cap = Array.length t.data in
  if t.seen < cap then t.data.(t.seen) <- x
  else begin
    (* Replace a random slot with probability cap / (seen + 1). *)
    let j = Rng.int t.rng (t.seen + 1) in
    if j < cap then t.data.(j) <- x
  end;
  t.seen <- t.seen + 1

let count t = t.seen

let sample t = Array.sub t.data 0 (min t.seen (Array.length t.data))

let quantile t q =
  let s = sample t in
  if Array.length s = 0 then invalid_arg "Reservoir.quantile: empty";
  Mapqn_util.Stats.quantile s q
