(** Reservoir sampling (Vitter's algorithm R): a fixed-size uniform random
    sample of an unbounded stream. Used by the simulator to keep sojourn-
    time samples for quantile estimation without unbounded memory. *)

type t

val create : capacity:int -> Rng.t -> t
(** Reservoir holding at most [capacity] items ([capacity > 0]). The
    generator is used (and advanced) by {!add}. *)

val add : t -> float -> unit
val count : t -> int
(** Number of items offered so far (not the sample size). *)

val sample : t -> float array
(** Copy of the current sample (size [min count capacity]); a uniform
    random subset of everything offered. *)

val quantile : t -> float -> float
(** Quantile of the current sample ({!Mapqn_util.Stats.quantile}); raises
    [Invalid_argument] when empty. *)
