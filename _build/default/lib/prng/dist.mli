(** Random variate generation on top of {!Rng}. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. Requires [lo < hi]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with the given rate (mean [1/rate]). Requires [rate > 0]. *)

val erlang : Rng.t -> k:int -> rate:float -> float
(** Sum of [k] iid exponentials of the given rate. Requires [k >= 1]. *)

val hyperexponential : Rng.t -> probs:float array -> rates:float array -> float
(** Mixture of exponentials: branch [i] chosen with probability [probs.(i)],
    then exponential with [rates.(i)]. Probabilities must sum to 1. *)

val categorical : Rng.t -> float array -> int
(** Index drawn according to the (nonnegative, not necessarily normalized)
    weight vector, by cumulative inversion. Raises [Invalid_argument] if all
    weights are zero. *)

module Alias : sig
  (** Walker's alias method: O(n) preprocessing, O(1) sampling. Preferred
      for repeated draws from the same discrete distribution (e.g. routing
      decisions in long simulations). *)

  type t

  val create : float array -> t
  (** Build a sampler from nonnegative weights (need not be normalized). *)

  val sample : t -> Rng.t -> int

  val support : t -> int
  (** Number of categories. *)
end
