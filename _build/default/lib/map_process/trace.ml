module Stats = Mapqn_util.Stats

let sample rng p ~count =
  if count <= 0 then invalid_arg "Trace.sample: count <= 0";
  let d0 = Process.d0 p and d1 = Process.d1 p in
  let order = Process.order p in
  let m = Mapqn_linalg.Mat.get in
  let phase = ref 0 in
  let out = Array.make count 0. in
  let filled = ref 0 in
  let elapsed = ref 0. in
  let weights = Array.make (2 * order) 0. in
  while !filled < count do
    let a = !phase in
    let rate = -.m d0 a a in
    elapsed := !elapsed +. Mapqn_prng.Dist.exponential rng ~rate;
    for b = 0 to order - 1 do
      weights.(b) <- (if b <> a then m d0 a b else 0.);
      weights.(order + b) <- m d1 a b
    done;
    let choice = Mapqn_prng.Dist.categorical rng weights in
    if choice < order then phase := choice
    else begin
      phase := choice - order;
      out.(!filled) <- !elapsed;
      incr filled;
      elapsed := 0.
    end
  done;
  out

type statistics = {
  samples : int;
  mean : float;
  scv : float;
  skewness : float;
  acf1 : float;
  gamma2 : float;
  gamma2_lags_used : int;
}

(* Log-linear least squares on the significantly-positive ACF prefix:
   log rho_k = log c + k log gamma2. Returns (gamma2, lags_used). *)
let estimate_gamma2 acf ~significance =
  (* Use the maximal prefix of lags with rho_k above the significance
     cutoff; require at least 3 points for a slope. *)
  let usable = ref 0 in
  (try
     Array.iter
       (fun r -> if r > significance then incr usable else raise Exit)
       acf
   with Exit -> ());
  let k = !usable in
  if k < 3 then (0., 0)
  else begin
    let xs = Array.init k (fun i -> float_of_int (i + 1)) in
    let ys = Array.init k (fun i -> log acf.(i)) in
    let xbar = Stats.mean xs and ybar = Stats.mean ys in
    let num = ref 0. and den = ref 0. in
    for i = 0 to k - 1 do
      num := !num +. ((xs.(i) -. xbar) *. (ys.(i) -. ybar));
      den := !den +. ((xs.(i) -. xbar) *. (xs.(i) -. xbar))
    done;
    let slope = !num /. !den in
    (Mapqn_util.Tol.clamp ~lo:0. ~hi:0.9999 (exp slope), k)
  end

let estimate ?(max_lag = 50) trace =
  let n = Array.length trace in
  if n < 100 then Error "Trace.estimate: need at least 100 samples"
  else if Array.exists (fun x -> x <= 0. || not (Float.is_finite x)) trace then
    Error "Trace.estimate: trace must contain positive finite times"
  else begin
    let mean = Stats.mean trace in
    let var = Stats.variance trace in
    if var <= 0. then Error "Trace.estimate: degenerate (constant) trace"
    else begin
      let scv = var /. (mean *. mean) in
      let m3 = Stats.mean (Array.map (fun x -> (x -. mean) ** 3.) trace) in
      let skewness = m3 /. (var ** 1.5) in
      let max_lag = min max_lag (n / 4) in
      let acf = Stats.autocorrelation_function trace ~max_lag in
      let significance = 2. /. sqrt (float_of_int n) in
      let gamma2, lags = estimate_gamma2 acf ~significance in
      Ok
        {
          samples = n;
          mean;
          scv;
          skewness;
          acf1 = acf.(0);
          gamma2;
          gamma2_lags_used = lags;
        }
    end
  end

let fit_map2 ?max_lag ?(match_skewness = true) trace =
  match estimate ?max_lag trace with
  | Error msg -> Error msg
  | Ok stats ->
    let fitted =
      if stats.scv <= 1. +. 1e-9 then
        (* Below the family's variability floor: exponential fallback. *)
        Ok (Builders.exponential ~rate:(1. /. stats.mean))
      else begin
        let third =
          if match_skewness then
            Fit.map2 ~mean:stats.mean ~scv:stats.scv ~gamma2:stats.gamma2
              ~skewness:stats.skewness ()
          else Error "skewness matching disabled"
        in
        match third with
        | Ok p -> Ok p
        | Error _ ->
          Fit.map2 ~mean:stats.mean ~scv:stats.scv ~gamma2:stats.gamma2 ()
      end
    in
    Result.map (fun p -> (p, stats)) fitted
