(** MAP parameterization from measured traces — the paper's third
    future-work item ("a fundamental research to be carried out is the
    parameterization of MAP service processes from measurements").

    Takes a trace of service (or inter-event) times, estimates the summary
    statistics the fitting layer needs — mean, SCV, skewness, and the
    geometric ACF decay rate γ₂ — and produces a fitted MAP(2). γ₂ is
    estimated by log-linear regression of the empirical ACF over the lags
    where it is significantly positive (for a MAP(2), ρ_k = c·γ₂^k, so the
    log-ACF is linear in the lag). *)

val sample : Mapqn_prng.Rng.t -> Process.t -> count:int -> float array
(** Draw [count] consecutive stationary-ish inter-event times from the
    MAP (starting from phase 0; the first events wash out any phase
    transient for the trace lengths used in fitting). The synthetic
    "measured trace" of this module's test/validation pipelines. *)

type statistics = {
  samples : int;
  mean : float;
  scv : float;
  skewness : float;
  acf1 : float;  (** empirical lag-1 autocorrelation *)
  gamma2 : float;  (** estimated geometric decay rate, in [0, 1) *)
  gamma2_lags_used : int;  (** lags that entered the regression *)
}

val estimate : ?max_lag:int -> float array -> (statistics, string) result
(** Estimate from a trace. [max_lag] (default 50) caps the ACF horizon.
    Requires at least 100 samples and positive values; γ₂ is reported as 0
    when the trace shows no significant positive autocorrelation (the
    significance cutoff is [2/√n]). *)

val fit_map2 :
  ?max_lag:int ->
  ?match_skewness:bool ->
  float array ->
  (Process.t * statistics, string) result
(** [estimate] followed by {!Fit.map2}. When [match_skewness] (default
    true) the third moment is matched if it is H2-feasible, otherwise the
    fit silently falls back to the balanced-means second-order fit.
    An estimated SCV below 1 falls back to an exponential (with a γ₂ of 0):
    the MSH2 family cannot express it. *)
