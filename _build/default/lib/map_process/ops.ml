module Kron = Mapqn_linalg.Kron
module Mat = Mapqn_linalg.Mat

let superpose a b =
  Process.make_exn
    ~d0:(Kron.sum (Process.d0 a) (Process.d0 b))
    ~d1:(Kron.sum (Process.d1 a) (Process.d1 b))

let thin ~prob p =
  if prob <= 0. || prob > 1. then invalid_arg "Ops.thin: prob not in (0, 1]";
  let d1 = Process.d1 p in
  Process.make_exn
    ~d0:(Mat.add (Process.d0 p) (Mat.scale (1. -. prob) d1))
    ~d1:(Mat.scale prob d1)
