module Mat = Mapqn_linalg.Mat

let exponential ~rate =
  if rate <= 0. then invalid_arg "Builders.exponential: rate <= 0";
  Process.make_exn
    ~d0:(Mat.of_arrays [| [| -.rate |] |])
    ~d1:(Mat.of_arrays [| [| rate |] |])

let erlang ~k ~rate =
  if k < 1 then invalid_arg "Builders.erlang: k < 1";
  if rate <= 0. then invalid_arg "Builders.erlang: rate <= 0";
  let d0 =
    Mat.init ~rows:k ~cols:k (fun i j ->
        if i = j then -.rate else if j = i + 1 then rate else 0.)
  in
  let d1 =
    Mat.init ~rows:k ~cols:k (fun i j ->
        if i = k - 1 && j = 0 then rate else 0.)
  in
  Process.make_exn ~d0 ~d1

let hyperexponential ~probs ~rates =
  let n = Array.length probs in
  if n = 0 || Array.length rates <> n then
    invalid_arg "Builders.hyperexponential: bad arity";
  Array.iter
    (fun p -> if p < 0. || p > 1. then invalid_arg "Builders.hyperexponential: prob")
    probs;
  Array.iter
    (fun r -> if r <= 0. then invalid_arg "Builders.hyperexponential: rate <= 0")
    rates;
  if not (Mapqn_util.Tol.close ~rel:1e-9 ~abs:1e-9 (Mapqn_util.Ksum.sum probs) 1.) then
    invalid_arg "Builders.hyperexponential: probs must sum to 1";
  let d0 = Mat.of_diag (Array.map (fun r -> -.r) rates) in
  (* After an event the next branch is drawn independently: D1[i,j] =
     rate_i * p_j. *)
  let d1 = Mat.init ~rows:n ~cols:n (fun i j -> rates.(i) *. probs.(j)) in
  Process.make_exn ~d0 ~d1

let mmpp2 ~r01 ~r10 ~rate0 ~rate1 =
  if r01 <= 0. || r10 <= 0. then invalid_arg "Builders.mmpp2: switching rate <= 0";
  if rate0 < 0. || rate1 < 0. || rate0 +. rate1 <= 0. then
    invalid_arg "Builders.mmpp2: bad arrival rates";
  let d0 =
    Mat.of_arrays
      [| [| -.(r01 +. rate0); r01 |]; [| r10; -.(r10 +. rate1) |] |]
  in
  let d1 = Mat.of_arrays [| [| rate0; 0. |]; [| 0.; rate1 |] |] in
  Process.make_exn ~d0 ~d1

let switched_exponential ~pi1 ~rate1 ~rate2 ~gamma2 =
  if pi1 <= 0. || pi1 >= 1. then invalid_arg "Builders.switched_exponential: pi1";
  if rate1 <= 0. || rate2 <= 0. then
    invalid_arg "Builders.switched_exponential: rate <= 0";
  if gamma2 < 0. || gamma2 >= 1. then
    invalid_arg "Builders.switched_exponential: gamma2 not in [0,1)";
  (* Phase DTMC R = [[1-a, a]; [b, 1-b]] with stationary (pi1, 1-pi1) and
     eigenvalues {1, 1-a-b}: choosing a = (1-γ₂)(1-π₁), b = (1-γ₂)π₁ gives
     second eigenvalue exactly γ₂. *)
  let a = (1. -. gamma2) *. (1. -. pi1) in
  let b = (1. -. gamma2) *. pi1 in
  let d0 = Mat.of_diag [| -.rate1; -.rate2 |] in
  let d1 =
    Mat.of_arrays
      [|
        [| rate1 *. (1. -. a); rate1 *. a |];
        [| rate2 *. b; rate2 *. (1. -. b) |];
      |]
  in
  Process.make_exn ~d0 ~d1

let map2 ~d0 ~d1 =
  if Array.length d0 <> 2 || Array.length d1 <> 2 then
    invalid_arg "Builders.map2: need 2x2 arrays";
  Process.make_exn ~d0:(Mat.of_arrays d0) ~d1:(Mat.of_arrays d1)
