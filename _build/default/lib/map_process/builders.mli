(** Standard MAP constructors.

    Every constructor returns a validated {!Process.t}; parameters are
    checked and [Invalid_argument] is raised on nonsense (non-positive
    rates, probabilities outside [0,1], ...). *)

val exponential : rate:float -> Process.t
(** Order-1 MAP: Poisson process / exponential service at [rate]. *)

val erlang : k:int -> rate:float -> Process.t
(** Erlang-[k] renewal process with total mean [k/rate] per event — each
    event is the completion of [k] exponential stages of rate [rate].
    SCV is [1/k]. *)

val hyperexponential : probs:float array -> rates:float array -> Process.t
(** Renewal process with hyperexponential marginals: each inter-event time
    samples branch [i] with probability [probs.(i)], exponential at
    [rates.(i)]. SCV >= 1. *)

val mmpp2 :
  r01:float -> r10:float -> rate0:float -> rate1:float -> Process.t
(** 2-state Markov-Modulated Poisson Process: hidden switching at rates
    [r01] (state 0 → 1) and [r10], events at Poisson rate [rate0]/[rate1]
    in each state. The classic bursty process: exercises MAPs with hidden
    ([D0]) phase transitions. *)

val switched_exponential :
  pi1:float -> rate1:float -> rate2:float -> gamma2:float -> Process.t
(** Markov-switched exponential ("MSH2"): every inter-event time is
    exponential at the rate of the current phase; after each event the
    phase follows a 2-state DTMC with stationary distribution
    [(pi1, 1 - pi1)] and second eigenvalue [gamma2]. The inter-event ACF is
    exactly geometric with decay rate [gamma2]; the marginal distribution
    is the 2-phase hyperexponential [(pi1 @ rate1, 1 - pi1 @ rate2)].
    Requires [pi1 ∈ (0,1)], positive rates, [gamma2 ∈ \[0, 1)]. *)

val map2 :
  d0:float array array -> d1:float array array -> Process.t
(** General MAP(2) from raw 2×2 arrays (validated). *)
