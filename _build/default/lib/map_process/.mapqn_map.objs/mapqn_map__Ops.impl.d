lib/map_process/ops.ml: Mapqn_linalg Process
