lib/map_process/trace.ml: Array Builders Fit Float Mapqn_linalg Mapqn_prng Mapqn_util Process Result
