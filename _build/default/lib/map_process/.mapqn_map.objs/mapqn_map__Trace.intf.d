lib/map_process/trace.mli: Mapqn_prng Process
