lib/map_process/fit.mli: Process
