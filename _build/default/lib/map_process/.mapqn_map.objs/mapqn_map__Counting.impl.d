lib/map_process/counting.ml: Array Float Mapqn_linalg Mapqn_util Process
