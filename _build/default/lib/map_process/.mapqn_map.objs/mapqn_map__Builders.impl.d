lib/map_process/builders.ml: Array Mapqn_linalg Mapqn_util Process
