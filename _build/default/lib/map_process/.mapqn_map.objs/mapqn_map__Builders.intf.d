lib/map_process/builders.mli: Process
