lib/map_process/counting.mli: Process
