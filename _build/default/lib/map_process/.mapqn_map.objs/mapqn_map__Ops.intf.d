lib/map_process/ops.mli: Process
