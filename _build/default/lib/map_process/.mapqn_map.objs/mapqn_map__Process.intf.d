lib/map_process/process.mli: Format Mapqn_linalg
