lib/map_process/process.ml: Array Format Mapqn_linalg Mapqn_util Printf
