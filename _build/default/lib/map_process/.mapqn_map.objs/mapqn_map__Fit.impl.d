lib/map_process/fit.ml: Builders Float
