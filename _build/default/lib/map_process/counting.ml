module Mat = Mapqn_linalg.Mat

let mean_count p ~t =
  if t < 0. then invalid_arg "Counting.mean_count: negative t";
  Process.rate p *. t

(* Var N(t) by uniformization on the joint chain (phase, N(t)) with the
   count dimension grown on demand: we track the vector of probabilities
   f(c, a) = P{N(t) = c, phase = a} starting from the stationary phase
   distribution, and step the uniformized kernel. *)
let variance_count ?(precision = 1e-10) p ~t =
  if t < 0. then invalid_arg "Counting.variance_count: negative t";
  if t = 0. then 0.
  else begin
    let order = Process.order p in
    let d0 = Process.d0 p and d1 = Process.d1 p in
    let lambda =
      let worst = ref 0. in
      for a = 0 to order - 1 do
        worst := Float.max !worst (-.Mat.get d0 a a)
      done;
      (!worst *. 1.05) +. 1e-12
    in
    let lt = lambda *. t in
    (* Expected number of uniformized steps is lt; cap the count dimension
       generously (mean events <= rate t <= lt). *)
    let steps_budget =
      int_of_float (lt +. (12. *. sqrt (lt +. 10.)) +. 50.)
    in
    let cap = steps_budget + 2 in
    (* f.(c).(a); uniformized kernel: with prob rate/lambda the embedded
       jump matrices apply. P_step = I + D0/lambda (count same) and
       D1/lambda (count + 1). *)
    let f = Array.make_matrix cap order 0. in
    let theta = Process.phase_stationary p in
    Array.iteri (fun a x -> f.(0).(a) <- x) theta;
    let g = Array.make_matrix cap order 0. in
    let log_pk = ref (-.lt) in
    let covered = ref 0. in
    let mean_acc = ref 0. and m2_acc = ref 0. in
    let max_c = ref 0 in
    let k = ref 0 in
    while 1. -. !covered > precision && !k <= steps_budget do
      let pk = exp !log_pk in
      if pk > 0. then begin
        covered := !covered +. pk;
        for c = 0 to !max_c do
          let mass = Mapqn_util.Ksum.sum f.(c) in
          let cf = float_of_int c in
          mean_acc := !mean_acc +. (pk *. cf *. mass);
          m2_acc := !m2_acc +. (pk *. cf *. cf *. mass)
        done
      end;
      (* One uniformized step: g = f (I + D0/lambda) shifted by D1/lambda. *)
      let hi = min (cap - 1) (!max_c + 1) in
      for c = 0 to hi do
        for a = 0 to order - 1 do
          g.(c).(a) <- 0.
        done
      done;
      for c = 0 to !max_c do
        for a = 0 to order - 1 do
          let fa = f.(c).(a) in
          if fa <> 0. then begin
            g.(c).(a) <- g.(c).(a) +. fa;
            for b = 0 to order - 1 do
              g.(c).(b) <- g.(c).(b) +. (fa *. Mat.get d0 a b /. lambda);
              if c + 1 < cap then
                g.(c + 1).(b) <- g.(c + 1).(b) +. (fa *. Mat.get d1 a b /. lambda)
            done
          end
        done
      done;
      max_c := hi;
      for c = 0 to !max_c do
        Array.blit g.(c) 0 f.(c) 0 order
      done;
      incr k;
      log_pk := !log_pk +. log lt -. log (float_of_int !k)
    done;
    let mean = !mean_acc and m2 = !m2_acc in
    Float.max 0. (m2 -. (mean *. mean))
  end

let idc ?precision p ~t =
  let m = mean_count p ~t in
  if m <= 0. then 1. else variance_count ?precision p ~t /. m

let idc_limit p =
  (* IDC(inf) = scv * (1 + 2 Σ_{k>=1} rho_k) for stationary point
     processes with summable correlations (Cox & Lewis); our MAPs have
     geometrically decaying ACF so the series converges fast. *)
  let scv = Process.scv p in
  let acc = ref 0. in
  let k = ref 1 in
  let continue = ref true in
  while !continue && !k < 100_000 do
    let r = Process.acf p !k in
    acc := !acc +. r;
    if Float.abs r < 1e-12 then continue := false;
    incr k
  done;
  scv *. (1. +. (2. *. !acc))
