(** Counting-process view of a MAP: statistics of [N(t)], the number of
    events in [(0, t]].

    The index of dispersion for counts, [IDC(t) = Var N(t) / E N(t)], is
    the standard burstiness fingerprint used in workload characterization
    (IDC ≡ 1 for Poisson; a growing IDC that saturates at a level ≫ 1 is
    the signature of the short-range-dependent MAPs this repository
    models). Computed by uniformization of the bivariate process
    [(phase, count)] with the count truncated adaptively. *)

val mean_count : Process.t -> t:float -> float
(** [E N(t)] for the stationary MAP ([= rate · t], computed directly). *)

val variance_count : ?precision:float -> Process.t -> t:float -> float
(** [Var N(t)] for the stationary (time-stationary) version of the MAP.
    Uniformization with truncated Poisson tail [precision]
    (default 1e-10). Cost grows with [rate · t]; intended for
    [rate · t ≲ 1e4]. *)

val idc : ?precision:float -> Process.t -> t:float -> float
(** [Var N(t) / E N(t)]. *)

val idc_limit : Process.t -> float
(** The [t → ∞] limit of IDC, from the closed form
    [IDC(∞) = scv + 2 Σ_{k≥1} ρ_k] (scv and ACF of inter-event times);
    for the geometric-ACF MAP(2)s built by {!Fit.map2} the series sums in
    closed form. Evaluated by summing the ACF until it is negligible. *)
