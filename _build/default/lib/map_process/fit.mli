(** Fitting MAPs to target statistics.

    The paper parameterizes MAP(2) service processes by mean, coefficient
    of variation, skewness, and geometric ACF decay rate γ₂ (§3.1/§3.2).
    These fitters go the other way: from the statistics to a concrete
    MAP(2). *)

type h2 = { p1 : float; rate1 : float; rate2 : float }
(** A two-branch hyperexponential: branch 1 with probability [p1]. *)

val h2_balanced : mean:float -> scv:float -> (h2, string) result
(** Balanced-means H2 ([p1/rate1 = p2/rate2]) matching mean and SCV.
    Requires [scv >= 1] (returns the degenerate single-branch fit when
    [scv = 1]). *)

val h2_three_moments : m1:float -> m2:float -> m3:float -> (h2, string) result
(** Exact H2 fit to the first three power moments when one exists: the
    branch means are the roots of the quadratic induced by the moment
    recurrence; fails when the moment set is infeasible for an H2
    (e.g. [scv < 1] or [m3] outside the admissible interval). *)

val m3_feasible_range : m1:float -> m2:float -> (float * float) option
(** Open interval of third moments reachable by an H2 with the given first
    two moments ([None] when [scv <= 1]). The lower endpoint is the
    balanced limit; the upper endpoint is infinite, encoded as
    [infinity]. *)

val skewness_to_m3 : m1:float -> m2:float -> skewness:float -> float
(** Convert a skewness target into the corresponding third moment. *)

val map2 :
  mean:float ->
  scv:float ->
  gamma2:float ->
  ?skewness:float ->
  unit ->
  (Process.t, string) result
(** MAP(2) with the given mean, SCV and geometric ACF decay rate, built as
    a Markov-switched hyperexponential ({!Builders.switched_exponential}).
    With [?skewness] the marginal H2 is fitted to three moments (when
    feasible); otherwise balanced means are used. [scv = 1, gamma2 = 0]
    degenerates to the exponential. The lag-1 ACF magnitude implied by the
    construction can be read back with {!Process.acf}. *)

val map2_exn :
  mean:float -> scv:float -> gamma2:float -> ?skewness:float -> unit -> Process.t
