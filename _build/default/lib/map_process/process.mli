(** Markovian Arrival Processes (MAPs).

    A MAP of order [m] is a point process driven by an [m]-state CTMC whose
    generator splits as [D0 + D1]: [D0] holds the phase transitions without
    an event ("hidden" transitions, negative diagonal), [D1] the transitions
    that fire an event. Used here to model service processes: an event is a
    service completion, and the phase encodes the service-time correlation
    state. MAPs subsume the exponential distribution (order 1),
    hyperexponential, Erlang, and MMPPs.

    All statistics refer to the stationary sequence of inter-event times
    [X_0, X_1, ...]. *)

type t
(** Immutable, validated MAP. *)

val make : d0:Mapqn_linalg.Mat.t -> d1:Mapqn_linalg.Mat.t -> (t, string) result
(** Validate and build. Requirements: square same-order matrices, [D1 >= 0],
    [D0] nonnegative off-diagonal and negative diagonal, rows of [D0 + D1]
    sum to 0, the generator [D0 + D1] is irreducible, and [D0] is
    nonsingular (every phase eventually produces an event). *)

val make_exn : d0:Mapqn_linalg.Mat.t -> d1:Mapqn_linalg.Mat.t -> t
(** Like {!make}; raises [Invalid_argument] with the validation message. *)

val order : t -> int
val d0 : t -> Mapqn_linalg.Mat.t
val d1 : t -> Mapqn_linalg.Mat.t
val generator : t -> Mapqn_linalg.Mat.t
(** [D0 + D1]. *)

val phase_stationary : t -> Mapqn_linalg.Vec.t
(** Stationary distribution [θ] of the phase CTMC [D0 + D1]. *)

val rate : t -> float
(** Fundamental rate [λ = θ D1 1]: mean events per unit time. *)

val completion_rates : t -> Mapqn_linalg.Vec.t
(** Row sums of [D1]: event rate from each phase. *)

val embedded : t -> Mapqn_linalg.Mat.t
(** [P = (-D0)^{-1} D1]: phase-transition probabilities observed at event
    instants. Stochastic. *)

val embedded_stationary : t -> Mapqn_linalg.Vec.t
(** Stationary distribution [π_e] of {!embedded}; equals [θ D1 / λ]. *)

val moment : t -> int -> float
(** [moment t k] is [E[X^k] = k! π_e (-D0)^{-k} 1] for [k >= 1]. *)

val mean : t -> float
val variance : t -> float
val scv : t -> float
(** Squared coefficient of variation [variance / mean²]. *)

val cv : t -> float
val skewness : t -> float
(** [E[(X - m)³] / σ³]. *)

val acf : t -> int -> float
(** [acf t k]: lag-[k] autocorrelation of the stationary inter-event
    sequence, [ (E[X_0 X_k] - m²) / σ² ] with
    [E[X_0 X_k] = π_e (-D0)^{-1} P^k (-D0)^{-1} 1]. Lag 0 returns 1. *)

val acf_decay : t -> float option
(** Geometric decay rate [γ₂] of the ACF: the subdominant eigenvalue of the
    embedded chain [P]. [None] when the eigenvalue is complex or power
    iteration fails; [Some 0.] for renewal processes (order 1 or rank-1
    [P]). *)

val is_renewal : t -> bool
(** True when inter-event times are independent: all rows of {!embedded}
    equal (in particular every order-1 MAP). *)

val rescale : t -> mean:float -> t
(** Rescale time so the mean inter-event time equals [mean]; preserves SCV,
    skewness and the whole ACF. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
