(** Algebraic operations on MAPs.

    MAPs are closed under superposition and Bernoulli thinning; both are
    classic tools for composing workload models (e.g. merging two request
    flows into one station, or splitting a flow probabilistically). *)

val superpose : Process.t -> Process.t -> Process.t
(** Superposition (merge) of two independent MAPs: the event stream of
    both processes together. Kronecker construction
    [D0 = D0_a ⊕ D0_b, D1 = D1_a ⊕ D1_b] (⊕ = Kronecker sum); the order is
    the product of the orders, and the fundamental rates add. *)

val thin : prob:float -> Process.t -> Process.t
(** Bernoulli thinning: each event is kept independently with probability
    [prob]; dropped events become hidden transitions
    ([D1' = p·D1], [D0' = D0 + (1-p)·D1]). Requires [0 < prob <= 1]. *)
