module Mat = Mapqn_linalg.Mat
module Vec = Mapqn_linalg.Vec
module Lu = Mapqn_linalg.Lu
module Gth = Mapqn_linalg.Gth
module Tol = Mapqn_util.Tol

type t = {
  d0 : Mat.t;
  d1 : Mat.t;
  theta : Vec.t; (* stationary phase distribution of D0 + D1 *)
  lambda : float; (* fundamental rate *)
  minus_d0_inv : Mat.t; (* (-D0)^{-1}, the workhorse of all moment formulas *)
  embedded : Mat.t; (* P = (-D0)^{-1} D1 *)
  pi_e : Vec.t; (* embedded stationary distribution *)
}

let order t = Mat.rows t.d0
let d0 t = t.d0
let d1 t = t.d1
let generator t = Mat.add t.d0 t.d1
let phase_stationary t = Vec.copy t.theta
let rate t = t.lambda
let completion_rates t = Mat.row_sums t.d1
let embedded t = Mat.copy t.embedded
let embedded_stationary t = Vec.copy t.pi_e

(* Reachability check on the union graph of D0/D1 off-diagonal positives. *)
let irreducible q =
  let n = Mat.rows q in
  let reaches_all start =
    let seen = Array.make n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        for j = 0 to n - 1 do
          if j <> i && Mat.get q i j > 0. then visit j
        done
      end
    in
    visit start;
    Array.for_all (fun b -> b) seen
  in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (reaches_all i) then ok := false
  done;
  !ok

let validate ~d0:m0 ~d1:m1 =
  let n = Mat.rows m0 in
  if Mat.cols m0 <> n then Error "D0 is not square"
  else if Mat.rows m1 <> n || Mat.cols m1 <> n then Error "D1 shape differs from D0"
  else begin
    let bad = ref None in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if Mat.get m1 i j < 0. then
          bad := Some (Printf.sprintf "D1[%d,%d] < 0" i j);
        if i <> j && Mat.get m0 i j < 0. then
          bad := Some (Printf.sprintf "D0[%d,%d] < 0 off-diagonal" i j)
      done;
      if Mat.get m0 i i >= 0. then
        bad := Some (Printf.sprintf "D0[%d,%d] must be negative" i i)
    done;
    match !bad with
    | Some msg -> Error msg
    | None ->
      let q = Mat.add m0 m1 in
      let sums = Mat.row_sums q in
      if not (Array.for_all (fun s -> Tol.close ~rel:1e-8 ~abs:1e-8 s 0.) sums) then
        Error "rows of D0 + D1 do not sum to 0"
      else if not (irreducible q) then Error "D0 + D1 is reducible"
      else Ok q
  end

let make ~d0:m0 ~d1:m1 =
  match validate ~d0:m0 ~d1:m1 with
  | Error _ as e -> e
  | Ok q -> (
    let theta = Gth.ctmc q in
    let lambda = Vec.dot theta (Mat.row_sums m1) in
    if lambda <= 0. then Error "fundamental rate is zero (D1 = 0)"
    else
      try
        let minus_d0_inv = Lu.inverse (Mat.scale (-1.) m0) in
        let embedded = Mat.mul minus_d0_inv m1 in
        let pi_e = Vec.scale (1. /. lambda) (Mat.vec_mat theta m1) in
        Ok { d0 = Mat.copy m0; d1 = Mat.copy m1; theta; lambda; minus_d0_inv; embedded; pi_e }
      with Lu.Singular _ -> Error "D0 is singular")

let make_exn ~d0 ~d1 =
  match make ~d0 ~d1 with
  | Ok t -> t
  | Error msg -> invalid_arg ("Process.make: " ^ msg)

let ones n = Vec.make n 1.

let moment t k =
  if k < 1 then invalid_arg "Process.moment: k < 1";
  let n = order t in
  (* E[X^k] = k! π_e (-D0)^{-k} 1 *)
  let v = ref (ones n) in
  let fact = ref 1. in
  for i = 1 to k do
    v := Mat.mat_vec t.minus_d0_inv !v;
    fact := !fact *. float_of_int i
  done;
  !fact *. Vec.dot t.pi_e !v

let mean t = moment t 1
let variance t =
  let m1 = mean t in
  moment t 2 -. (m1 *. m1)

let scv t =
  let m1 = mean t in
  variance t /. (m1 *. m1)

let cv t = sqrt (scv t)

let skewness t =
  let m1 = mean t and m2 = moment t 2 and m3 = moment t 3 in
  let var = m2 -. (m1 *. m1) in
  let sigma = sqrt var in
  (m3 -. (3. *. m1 *. var) -. (m1 *. m1 *. m1)) /. (sigma *. sigma *. sigma)

let acf t k =
  if k < 0 then invalid_arg "Process.acf: negative lag";
  if k = 0 then 1.
  else begin
    let n = order t in
    let m1 = mean t in
    let var = variance t in
    if var <= 0. then 0.
    else begin
      (* E[X_0 X_k] = π_e M P^k M 1 with M = (-D0)^{-1}. *)
      let v = ref (Mat.mat_vec t.minus_d0_inv (ones n)) in
      for _ = 1 to k do
        v := Mat.mat_vec t.embedded !v
      done;
      let joint = Vec.dot t.pi_e (Mat.mat_vec t.minus_d0_inv !v) in
      (joint -. (m1 *. m1)) /. var
    end
  end

let is_renewal t =
  let n = order t in
  n = 1
  ||
  let first = Mat.row t.embedded 0 in
  let same = ref true in
  for i = 1 to n - 1 do
    if not (Tol.close_arrays ~rel:1e-9 ~abs:1e-10 first (Mat.row t.embedded i)) then
      same := false
  done;
  !same

let acf_decay t =
  if is_renewal t then Some 0.
  else Mapqn_linalg.Eig.subdominant_stochastic t.embedded

let rescale t ~mean:target =
  if target <= 0. then invalid_arg "Process.rescale: non-positive mean";
  let factor = mean t /. target in
  (* Speeding time up by [factor] multiplies both matrices by it. *)
  make_exn ~d0:(Mat.scale factor t.d0) ~d1:(Mat.scale factor t.d1)

let equal ?(tol = 1e-9) a b =
  Mat.equal ~rel:tol ~abs:tol a.d0 b.d0 && Mat.equal ~rel:tol ~abs:tol a.d1 b.d1

let pp fmt t =
  Format.fprintf fmt "@[<v>MAP(%d) rate=%g scv=%g@,D0:@,%a@,D1:@,%a@]" (order t)
    t.lambda (scv t) Mat.pp t.d0 Mat.pp t.d1
