let product a b =
  let ra = Mat.rows a and ca = Mat.cols a in
  let rb = Mat.rows b and cb = Mat.cols b in
  Mat.init ~rows:(ra * rb) ~cols:(ca * cb) (fun i j ->
      Mat.get a (i / rb) (j / cb) *. Mat.get b (i mod rb) (j mod cb))

let sum a b =
  if Mat.rows a <> Mat.cols a || Mat.rows b <> Mat.cols b then
    invalid_arg "Kron.sum: arguments must be square";
  let ia = Mat.identity (Mat.rows a) and ib = Mat.identity (Mat.rows b) in
  Mat.add (product a ib) (product ia b)
