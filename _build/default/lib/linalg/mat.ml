type t = { nrows : int; ncols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: non-positive dims";
  { nrows = rows; ncols = cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows m = m.nrows
let cols m = m.ncols

let to_arrays m =
  Array.init m.nrows (fun i -> Array.sub m.data (i * m.ncols) m.ncols)

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)
let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.ncols) + j)
let set m i j x = m.data.((i * m.ncols) + j) <- x
let update m i j f = set m i j (f (get m i j))

let row m i = Array.sub m.data (i * m.ncols) m.ncols
let col m j = Array.init m.nrows (fun i -> get m i j)

let transpose m = init ~rows:m.ncols ~cols:m.nrows (fun i j -> get m j i)

let check_same name a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg (name ^ ": shape mismatch")

let add a b =
  check_same "Mat.add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "Mat.sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale alpha a = { a with data = Array.map (fun x -> alpha *. x) a.data }

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Mat.mul: inner dim mismatch";
  let c = create ~rows:a.nrows ~cols:b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.ncols - 1 do
          c.data.((i * c.ncols) + j) <-
            c.data.((i * c.ncols) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let mat_vec m x =
  if m.ncols <> Array.length x then invalid_arg "Mat.mat_vec: dim mismatch";
  Array.init m.nrows (fun i ->
      let acc = Mapqn_util.Ksum.create () in
      for j = 0 to m.ncols - 1 do
        Mapqn_util.Ksum.add acc (get m i j *. x.(j))
      done;
      Mapqn_util.Ksum.total acc)

let vec_mat x m =
  if m.nrows <> Array.length x then invalid_arg "Mat.vec_mat: dim mismatch";
  Array.init m.ncols (fun j ->
      let acc = Mapqn_util.Ksum.create () in
      for i = 0 to m.nrows - 1 do
        Mapqn_util.Ksum.add acc (x.(i) *. get m i j)
      done;
      Mapqn_util.Ksum.total acc)

let row_sums m = Array.init m.nrows (fun i -> Mapqn_util.Ksum.sum (row m i))

let diag m =
  let n = min m.nrows m.ncols in
  Array.init n (fun i -> get m i i)

let of_diag v =
  let n = Array.length v in
  init ~rows:n ~cols:n (fun i j -> if i = j then v.(i) else 0.)

let map f m = { m with data = Array.map f m.data }

let equal ?rel ?abs a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Mapqn_util.Tol.close_arrays ?rel ?abs a.data b.data

let pow m k =
  if m.nrows <> m.ncols then invalid_arg "Mat.pow: not square";
  if k < 0 then invalid_arg "Mat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
  in
  go (identity m.nrows) m k

let norm_inf m =
  let worst = ref 0. in
  for i = 0 to m.nrows - 1 do
    let acc = ref 0. in
    for j = 0 to m.ncols - 1 do
      acc := !acc +. Float.abs (get m i j)
    done;
    worst := Float.max !worst !acc
  done;
  !worst

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.nrows - 1 do
    Format.fprintf fmt "@[<h>[";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%10.6g" (get m i j)
    done;
    Format.fprintf fmt "]@]";
    if i < m.nrows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
