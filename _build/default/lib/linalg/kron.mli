(** Kronecker product and sum.

    MAP network generators and MAP superpositions have natural Kronecker
    structure; these helpers are used by tests and by the MAP operations. *)

val product : Mat.t -> Mat.t -> Mat.t
(** [product a b] is [a ⊗ b]. *)

val sum : Mat.t -> Mat.t -> Mat.t
(** [sum a b = a ⊗ I + I ⊗ b]; both arguments must be square. *)
