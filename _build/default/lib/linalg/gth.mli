(** Grassmann–Taksar–Heyman (GTH) elimination for stationary distributions.

    GTH computes the stationary vector of an irreducible Markov chain using
    only additions of nonnegative quantities — no subtractive cancellation —
    so it is the numerically preferred direct method for small and
    medium chains (up to a few thousand states, O(n³) time). *)

val dtmc : Mat.t -> Vec.t
(** Stationary row vector [π] of an irreducible stochastic matrix [P]
    ([π P = π], [π 1 = 1]). Raises [Invalid_argument] on non-square input
    or rows that do not sum to 1 within tolerance; raises [Failure] when
    the chain is reducible (zero total outflow during elimination). *)

val ctmc : Mat.t -> Vec.t
(** Stationary row vector of an irreducible CTMC generator [Q]
    ([π Q = 0], [π 1 = 1]). Rows must sum to 0 within tolerance. *)
