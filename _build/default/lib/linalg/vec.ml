type t = float array

let make n x = Array.make n x
let zeros n = Array.make n 0.
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_same_dim name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": dim mismatch")

let add a b =
  check_same_dim "Vec.add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same_dim "Vec.sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha a = Array.map (fun x -> alpha *. x) a

let axpy ~alpha ~x ~y =
  check_same_dim "Vec.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let dot = Mapqn_util.Ksum.dot
let sum = Mapqn_util.Ksum.sum
let norm1 a = Mapqn_util.Ksum.sum (Array.map Float.abs a)
let norm2 a = sqrt (dot a a)
let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let normalize1 a =
  let s = sum a in
  if s <= 0. then invalid_arg "Vec.normalize1: non-positive sum";
  scale (1. /. s) a

let max_abs_diff a b =
  check_same_dim "Vec.max_abs_diff" a b;
  let m = ref 0. in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let pp fmt a =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    a;
  Format.fprintf fmt "|]"
