lib/linalg/eig.ml: Array Float Gth Mapqn_util Mat Vec
