lib/linalg/eig.mli: Mat Vec
