lib/linalg/gth.mli: Mat Vec
