lib/linalg/kron.ml: Mat
