lib/linalg/vec.ml: Array Float Format Mapqn_util
