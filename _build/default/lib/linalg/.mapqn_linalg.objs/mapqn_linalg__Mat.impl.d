lib/linalg/mat.ml: Array Float Format Mapqn_util
