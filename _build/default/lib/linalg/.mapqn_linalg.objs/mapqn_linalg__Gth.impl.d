lib/linalg/gth.ml: Array Mapqn_util Mat Printf Vec
