lib/linalg/kron.mli: Mat
