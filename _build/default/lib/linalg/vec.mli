(** Dense vectors as plain [float array] with total-allocation helpers. *)

type t = float array

val make : int -> float -> t
val zeros : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y := alpha * x + y]. *)

val dot : t -> t -> float
(** Compensated dot product. *)

val sum : t -> float
(** Compensated sum. *)

val norm1 : t -> float
val norm2 : t -> float
val norm_inf : t -> float

val normalize1 : t -> t
(** Scale so entries sum to 1. Raises [Invalid_argument] when the sum is not
    positive. Intended for probability vectors. *)

val max_abs_diff : t -> t -> float
(** [norm_inf (a - b)] without allocating the difference. *)

val pp : Format.formatter -> t -> unit
