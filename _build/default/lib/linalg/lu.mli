(** LU factorization with partial pivoting, and the linear solves built on
    it (general solve, inverse, determinant).

    Used for the small dense systems of the MAP layer (embedded chains,
    moment formulas, [(-D0)^{-1}]) and by tests as an oracle for the
    iterative sparse solvers. *)

type t
(** Factorization [P A = L U] of a square matrix. *)

exception Singular of int
(** Raised (with the offending pivot column) when no usable pivot exists. *)

val factorize : Mat.t -> t
(** Factor a square matrix. Raises {!Singular} on (numerically) singular
    input and [Invalid_argument] on non-square input. *)

val solve_vec : t -> Vec.t -> Vec.t
(** Solve [A x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve [A X = B] column by column. *)

val determinant : t -> float

val solve : Mat.t -> Vec.t -> Vec.t
(** One-shot [factorize] + [solve_vec]. *)

val inverse : Mat.t -> Mat.t
(** One-shot inverse; prefer keeping the factorization when solving with
    many right-hand sides. *)
