type t = { lu : Mat.t; perm : int array; sign : float }

exception Singular of int

let factorize a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.factorize: not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude entry in column k at/below row k. *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.get lu i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      sign := -. !sign;
      let r = !pivot_row in
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu r j);
        Mat.set lu r j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(r);
      perm.(r) <- tmp
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_vec { lu; perm; _ } b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_vec: dim mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get lu i i
  done;
  x

let solve_mat f b =
  let n = Mat.rows f.lu in
  if Mat.rows b <> n then invalid_arg "Lu.solve_mat: dim mismatch";
  let cols = Mat.cols b in
  let out = Mat.create ~rows:n ~cols in
  for j = 0 to cols - 1 do
    let x = solve_vec f (Mat.col b j) in
    for i = 0 to n - 1 do
      Mat.set out i j x.(i)
    done
  done;
  out

let determinant f =
  let n = Mat.rows f.lu in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let solve a b = solve_vec (factorize a) b
let inverse a = solve_mat (factorize a) (Mat.identity (Mat.rows a))
