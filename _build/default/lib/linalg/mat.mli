(** Dense row-major matrices. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
(** Copies; rows must be rectangular and nonempty. *)

val to_arrays : t -> float array array
val identity : int -> t
val copy : t -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> (float -> float) -> unit

val row : t -> int -> Vec.t
(** Copy of a row. *)

val col : t -> int -> Vec.t
(** Copy of a column. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product; dimension-checked. *)

val mat_vec : t -> Vec.t -> Vec.t
(** [A x]. *)

val vec_mat : Vec.t -> t -> Vec.t
(** [xᵀ A] as a vector — the natural operation on stationary row vectors. *)

val row_sums : t -> Vec.t
val diag : t -> Vec.t
val of_diag : Vec.t -> t
val map : (float -> float) -> t -> t
val equal : ?rel:float -> ?abs:float -> t -> t -> bool
val pow : t -> int -> t
(** Matrix power by repeated squaring; exponent must be nonnegative. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val pp : Format.formatter -> t -> unit
