(** Eigenvalue helpers for the small matrices of the MAP layer. *)

val eigenvalues_2x2 : Mat.t -> (float * float, float) result
(** Both eigenvalues of a 2×2 matrix, larger magnitude first, when they are
    real; [Error discriminant] when they are complex (negative
    discriminant). *)

val power_iteration :
  ?max_iter:int ->
  ?tol:float ->
  Mat.t ->
  (float * Vec.t) option
(** Dominant eigenvalue (by magnitude, assumed real and simple) and
    eigenvector of a square matrix, or [None] if the iteration does not
    converge within [max_iter] (default 10_000). *)

val subdominant_stochastic : Mat.t -> float option
(** Second-largest-modulus eigenvalue of an irreducible stochastic matrix,
    assumed real (true for reversible chains and all 2×2 chains): deflates
    the known Perron eigenpair [(1, e)] against the stationary vector and
    runs power iteration on the remainder. [None] when the iteration fails
    to converge (e.g. genuinely complex subdominant pair). *)
