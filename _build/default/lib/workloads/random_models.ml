module Rng = Mapqn_prng.Rng
module Dist = Mapqn_prng.Dist

type spec = {
  stations : int;
  map_stations : int;
  mean_range : float * float;
  scv_range : float * float;
  gamma2_range : float * float;
  skewness : bool;
}

let default_spec =
  {
    stations = 3;
    map_stations = 1;
    mean_range = (0.25, 4.);
    scv_range = (1.5, 20.);
    gamma2_range = (0., 0.9);
    skewness = true;
  }

type model = {
  network : Mapqn_model.Network.t;
  map_indices : int list;
  drawn_scv : float;
  drawn_gamma2 : float;
}

let log_uniform rng ~lo ~hi = exp (Dist.uniform rng ~lo:(log lo) ~hi:(log hi))

let random_routing rng m =
  Array.init m (fun _ ->
      (* Entries bounded away from zero keep the chain irreducible. *)
      let row = Array.init m (fun _ -> Rng.float rng +. 0.05) in
      let total = Mapqn_util.Ksum.sum row in
      Array.map (fun x -> x /. total) row)

let random_map rng spec =
  let lo_m, hi_m = spec.mean_range in
  let lo_s, hi_s = spec.scv_range in
  let lo_g, hi_g = spec.gamma2_range in
  let mean = log_uniform rng ~lo:lo_m ~hi:hi_m in
  let scv = Dist.uniform rng ~lo:lo_s ~hi:hi_s in
  let gamma2 = Dist.uniform rng ~lo:lo_g ~hi:hi_g in
  let skewness =
    if not spec.skewness then None
    else begin
      (* Draw the third moment log-uniformly within the H2-feasible range
         above the balanced-means lower endpoint. *)
      let m2 = (scv +. 1.) *. mean *. mean in
      match Mapqn_map.Fit.m3_feasible_range ~m1:mean ~m2 with
      | None -> None
      | Some (lo3, _) ->
        let m3 = lo3 *. log_uniform rng ~lo:1.05 ~hi:8. in
        let var = m2 -. (mean *. mean) in
        let sigma = sqrt var in
        Some ((m3 -. (3. *. mean *. var) -. (mean ** 3.)) /. (sigma ** 3.))
    end
  in
  let fit = Mapqn_map.Fit.map2 ~mean ~scv ~gamma2 ?skewness () in
  let process =
    match fit with
    | Ok p -> p
    | Error _ ->
      (* Skewed fit infeasible: fall back to balanced means. *)
      Mapqn_map.Fit.map2_exn ~mean ~scv ~gamma2 ()
  in
  (process, scv, gamma2)

let generate ?(spec = default_spec) rng =
  if spec.stations < 2 then invalid_arg "Random_models: need >= 2 stations";
  if spec.map_stations < 1 || spec.map_stations > spec.stations then
    invalid_arg "Random_models: bad map_stations";
  let m = spec.stations in
  let routing = random_routing rng m in
  (* MAP stations occupy the last [map_stations] slots: deterministic
     placement keeps experiments reproducible and the reference station
     exponential. *)
  let first_map = m - spec.map_stations in
  let drawn = ref [] in
  let lo_m, hi_m = spec.mean_range in
  let stations =
    Array.init m (fun k ->
        if k < first_map then
          Mapqn_model.Station.exp
            ~name:(Printf.sprintf "exp%d" k)
            ~rate:(1. /. log_uniform rng ~lo:lo_m ~hi:hi_m)
            ()
        else begin
          let process, scv, gamma2 = random_map rng spec in
          drawn := (scv, gamma2) :: !drawn;
          Mapqn_model.Station.map ~name:(Printf.sprintf "map%d" k) process
        end)
  in
  let scv, gamma2 = match !drawn with [] -> (1., 0.) | d :: _ -> d in
  {
    network = Mapqn_model.Network.make_exn ~stations ~routing ~population:0;
    map_indices = List.init spec.map_stations (fun i -> first_map + i);
    drawn_scv = scv;
    drawn_gamma2 = gamma2;
  }

let generate_many ?spec ~seed count =
  let rng = Rng.create ~seed in
  List.init count (fun _ -> generate ?spec rng)
