(** The two-queue tandem of the paper's Figure 4: the model on which
    Markov-chain decomposition and ABA bounds fail under autocorrelated
    service. Queue 1 is exponential; queue 2 has bursty MAP(2) service
    with a slightly smaller capacity, so queue 1's utilization creeps
    toward its asymptote very slowly as burstiness holds jobs at
    queue 2. *)

type params = {
  rate1 : float;  (** exponential rate of queue 1 *)
  mean2 : float;  (** mean service time of the MAP queue 2 *)
  scv2 : float;
  gamma2 : float;
}

val default_params : params
(** [rate1 = 1.], [mean2 = 0.95], [scv2 = 16.], [gamma2 = 0.9]: queue 1 is
    the nominal bottleneck (demand 1.0 vs 0.95) but the bursty queue 2
    dominates transient queueing, which is what defeats decomposition. *)

val network : ?params:params -> population:int -> unit -> Mapqn_model.Network.t

val observed_queue : int
(** Queue 1 (index 0), whose utilization Figure 4 plots. *)
