type params = { rate1 : float; mean2 : float; scv2 : float; gamma2 : float }

let default_params = { rate1 = 1.; mean2 = 0.95; scv2 = 16.; gamma2 = 0.9 }

let observed_queue = 0

let network ?(params = default_params) ~population () =
  let map_service =
    Mapqn_map.Fit.map2_exn ~mean:params.mean2 ~scv:params.scv2 ~gamma2:params.gamma2
      ()
  in
  Mapqn_model.Network.tandem
    [|
      Mapqn_model.Station.exp ~name:"queue1" ~rate:params.rate1 ();
      Mapqn_model.Station.map ~name:"queue2-map" map_service;
    |]
    ~population
