lib/workloads/tandem.mli: Mapqn_model
