lib/workloads/case_study.mli: Mapqn_model
