lib/workloads/tpcw.ml: Float Mapqn_map Mapqn_model
