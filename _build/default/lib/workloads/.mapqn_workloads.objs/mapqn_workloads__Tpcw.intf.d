lib/workloads/tpcw.mli: Mapqn_model
