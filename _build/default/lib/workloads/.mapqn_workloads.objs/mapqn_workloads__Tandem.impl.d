lib/workloads/tandem.ml: Mapqn_map Mapqn_model
