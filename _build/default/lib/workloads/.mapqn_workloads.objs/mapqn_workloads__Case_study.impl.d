lib/workloads/case_study.ml: Mapqn_map Mapqn_model
