lib/workloads/random_models.ml: Array List Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Printf
