lib/workloads/random_models.mli: Mapqn_model Mapqn_prng
