type params = {
  think_time : float;
  front_mean : float;
  front_scv : float;
  front_gamma2 : float;
  db_mean : float;
  p_reply : float;
}

let default_params =
  {
    think_time = 7.;
    front_mean = 0.010;
    front_scv = 16.;
    front_gamma2 = 0.95;
    db_mean = 0.006;
    p_reply = 0.3;
  }

let client = 0
let front = 1
let db = 2

let routing p =
  [|
    [| 0.; 1.; 0. |];
    [| p.p_reply; 0.; 1. -. p.p_reply |];
    [| 0.; 1.; 0. |];
  |]

let validate p =
  if p.p_reply <= 0. || p.p_reply > 1. then invalid_arg "Tpcw: p_reply";
  if p.think_time <= 0. || p.front_mean <= 0. || p.db_mean <= 0. then
    invalid_arg "Tpcw: non-positive time"

let network ?(params = default_params) ~browsers () =
  validate params;
  let front_service =
    Mapqn_map.Fit.map2_exn ~mean:params.front_mean ~scv:params.front_scv
      ~gamma2:params.front_gamma2 ()
  in
  Mapqn_model.Network.make_exn
    ~stations:
      [|
        Mapqn_model.Station.delay ~name:"clients" ~rate:(1. /. params.think_time) ();
        Mapqn_model.Station.map ~name:"front" front_service;
        Mapqn_model.Station.exp ~name:"db" ~rate:(1. /. params.db_mean) ();
      |]
    ~routing:(routing params) ~population:browsers

let network_no_acf ?(params = default_params) ~browsers () =
  Mapqn_model.Network.exponentialize (network ~params ~browsers ())

let user_response_time ~network_response ~params =
  Float.max 0. (network_response -. params.think_time)
