type params = {
  p11 : float;
  p12 : float;
  demand : float;
  bottleneck_demand : float;
  scv : float;
  gamma2 : float;
}

let default_params =
  { p11 = 0.2; p12 = 0.7; demand = 1.0; bottleneck_demand = 1.25; scv = 16.; gamma2 = 0.5 }

let bottleneck = 2

let network ?(params = default_params) ~population () =
  let p13 = 1. -. params.p11 -. params.p12 in
  if p13 <= 0. then invalid_arg "Case_study: p11 + p12 >= 1";
  (* Visit ratios with queue 1 as reference: v1 = 1, v2 = p12, v3 = p13.
     Service times follow from the target demands. *)
  let s1 = params.demand in
  let s2 = params.demand /. params.p12 in
  let s3 = params.bottleneck_demand /. p13 in
  let map_service =
    Mapqn_map.Fit.map2_exn ~mean:s3 ~scv:params.scv ~gamma2:params.gamma2 ()
  in
  Mapqn_model.Network.make_exn
    ~stations:
      [|
        Mapqn_model.Station.exp ~name:"queue1" ~rate:(1. /. s1) ();
        Mapqn_model.Station.exp ~name:"queue2" ~rate:(1. /. s2) ();
        Mapqn_model.Station.map ~name:"queue3-map" map_service;
      |]
    ~routing:
      [| [| params.p11; params.p12; p13 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population

let fig6_network ~population =
  let mmpp = Mapqn_map.Builders.mmpp2 ~r01:0.2 ~r10:0.1 ~rate0:3. ~rate1:0.3 in
  Mapqn_model.Network.make_exn
    ~stations:
      [|
        Mapqn_model.Station.exp ~name:"queue1" ~rate:2. ();
        Mapqn_model.Station.exp ~name:"queue2" ~rate:1. ();
        Mapqn_model.Station.map ~name:"queue3-mmpp" mmpp;
      |]
    ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population
