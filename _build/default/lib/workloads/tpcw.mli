(** The TPC-W closed model of the paper's Figure 2.

    Three stations: clients (infinite-server think station), front/web
    server, database server. A client request always hits the front
    server; the front server replies directly with probability [p_reply]
    (cache hit / static content) or issues a database call with
    probability [1 - p_reply]; database replies return to the front
    server. The population is the number of emulated browsers.

    The paper observes that burstiness originates in the front server's
    service process (caching/memory pressure) and propagates around the
    closed loop; [network] therefore gives the front server a MAP(2)
    fitted to a configurable SCV and ACF decay, and [network_no_acf] is
    the same model with the burstiness projected away (the paper's
    "unsuccessful" parameterization). *)

type params = {
  think_time : float;  (** mean client think time (TPC-W default 7 s) *)
  front_mean : float;  (** mean front-server service time per visit *)
  front_scv : float;  (** SCV of the front-server service process *)
  front_gamma2 : float;  (** geometric ACF decay of front-server service *)
  db_mean : float;  (** mean database service time per visit *)
  p_reply : float;  (** P(front server replies without a DB call) *)
}

val default_params : params
(** [think_time = 7.], [front_mean = 0.010], [front_scv = 16.],
    [front_gamma2 = 0.95], [db_mean = 0.006], [p_reply = 0.3] — calibrated
    so that 128–512 browsers span the paper's Figure 3 operating range
    (light load through front-server saturation). *)

val client : int
val front : int
val db : int
(** Station indices (0, 1, 2). *)

val network : ?params:params -> browsers:int -> unit -> Mapqn_model.Network.t
(** The bursty ("ACF") model. *)

val network_no_acf : ?params:params -> browsers:int -> unit -> Mapqn_model.Network.t
(** Identical means, exponential front server — what a classic
    capacity-planning model would use. *)

val user_response_time : network_response:float -> params:params -> float
(** Convert the closed-loop round-trip [N / X_client] into the
    user-perceived response time by removing the think time. *)
