(** Random model generation for the paper's Table 1 experiment (§3.1):
    three-queue closed networks with random routing and MAP(2) service
    whose mean, coefficient of variation, skewness and geometric ACF decay
    rate are drawn randomly. *)

type spec = {
  stations : int;  (** number of queues (paper: 3) *)
  map_stations : int;  (** how many queues get MAP(2) service (>= 1) *)
  mean_range : float * float;  (** service-time mean, log-uniform *)
  scv_range : float * float;  (** SCV of MAP stations, uniform, >= 1 *)
  gamma2_range : float * float;  (** ACF decay, uniform in [0, 1) *)
  skewness : bool;
      (** also randomize the third moment within the H2-feasible range *)
}

val default_spec : spec
(** 3 stations, 1 MAP station, means in [0.25, 4], SCV in [1.5, 20],
    γ₂ in [0, 0.9], skewness randomized. *)

type model = {
  network : Mapqn_model.Network.t;  (** population 0; set it per experiment *)
  map_indices : int list;
  drawn_scv : float;
  drawn_gamma2 : float;
}

val generate : ?spec:spec -> Mapqn_prng.Rng.t -> model
(** Draw one random model: a random irreducible stochastic routing matrix
    (entries bounded away from 0), exponential stations with random rates,
    and MAP(2) stations fitted to the drawn statistics (falling back to a
    balanced-means fit when the drawn third moment is H2-infeasible). *)

val generate_many : ?spec:spec -> seed:int -> int -> model list
