(** The paper's running example and case study (Figures 5–8).

    Three single-server queues: queue 1 (exponential) feeds queues 2
    (exponential) and 3 (MAP) with routing probabilities
    [p11 = 0.2, p12 = 0.7, p13 = 0.1]; both return to queue 1. The MAP
    queue has CV = 4 (SCV 16) and geometric ACF decay rate γ₂ = 0.5
    (§3.2). Figure 8 is titled "Balanced Routing" and labels queue 3 the
    bottleneck, so the default service rates balance the service demands
    with a slight tilt toward queue 3. *)

type params = {
  p11 : float;
  p12 : float;
  demand : float;  (** common service demand of queues 1 and 2 *)
  bottleneck_demand : float;  (** service demand of the MAP queue 3 *)
  scv : float;
  gamma2 : float;
}

val default_params : params
(** [p11 = 0.2], [p12 = 0.7], [demand = 1.0], [bottleneck_demand = 1.25],
    [scv = 16.], [gamma2 = 0.5]. *)

val network : ?params:params -> population:int -> unit -> Mapqn_model.Network.t

val bottleneck : int
(** Index of queue 3 (= 2), whose utilization Figure 8(a) plots. *)

val fig6_network : population:int -> Mapqn_model.Network.t
(** The small MMPP(2) instance drawn in the paper's Figure 6 (the Markov
    process picture); with [population = 2] its CTMC has exactly the 12
    states of the figure. *)
