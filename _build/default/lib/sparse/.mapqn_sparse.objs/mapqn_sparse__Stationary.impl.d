lib/sparse/stationary.ml: Array Csr Float Mapqn_linalg Mapqn_util Printf
