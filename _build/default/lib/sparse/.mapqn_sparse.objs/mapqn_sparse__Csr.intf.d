lib/sparse/csr.mli: Mapqn_linalg
