lib/sparse/csr.ml: Array Mapqn_linalg Printf
