lib/sparse/stationary.mli: Csr
