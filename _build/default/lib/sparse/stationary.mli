(** Stationary distributions of large sparse CTMCs.

    The exact solver for MAP queueing networks needs [π Q = 0, π 1 = 1] on
    generators with 10³–10⁵ states. GTH is O(n³) and dense, so beyond a
    threshold we switch to iterative methods that only touch nonzeros. *)

type method_ = Gth | Power | Gauss_seidel | Auto
(** [Auto] picks GTH below {!val:gth_threshold} states, Gauss–Seidel above. *)

val gth_threshold : int
(** State-count threshold (500) below which [Auto] uses dense GTH. *)

type options = {
  method_ : method_;
  tol : float;  (** convergence tolerance on successive iterates (L∞) *)
  max_iter : int;
  check_residual : bool;
      (** verify [‖π Q‖∞ <= 100·tol] after convergence and fail otherwise *)
}

val default_options : options
(** [Auto], tol [1e-12], max_iter [1_000_000], residual check on. *)

exception No_convergence of { method_name : string; iterations : int; residual : float }

val solve : ?options:options -> Csr.t -> float array
(** Stationary row vector of an irreducible CTMC generator given as a
    sparse matrix (rows must sum to ~0). Raises [Invalid_argument] on a
    non-square matrix or bad row sums, {!No_convergence} if the chosen
    iterative method stalls. *)

val residual : Csr.t -> float array -> float
(** [‖π Q‖∞] — how far [π] is from stationarity. *)
