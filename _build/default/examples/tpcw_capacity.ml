(* Capacity planning for a TPC-W-style multi-tier site (the paper's
   motivating scenario, Figures 1-3).

   Question: how many emulated browsers can the site sustain with a mean
   user response time below 2 seconds?

   Answer it three ways and compare:
   - the classic product-form model (MVA, no burstiness)    -> too optimistic
   - the MAP model solved exactly                            -> truthful
   - the MAP model simulated (sanity check of the exact run)

   Run with: dune exec examples/tpcw_capacity.exe *)

module Tpcw = Mapqn_workloads.Tpcw
module Sim = Mapqn_sim.Simulator

let sla = 2.0

let () =
  let params = Tpcw.default_params in
  Printf.printf
    "TPC-W capacity planning: think %.1fs, front %.0fms (SCV %.0f, gamma2 %.2f), \
     db %.0fms, SLA %.1fs\n\n"
    params.Tpcw.think_time
    (1000. *. params.Tpcw.front_mean)
    params.Tpcw.front_scv params.Tpcw.front_gamma2
    (1000. *. params.Tpcw.db_mean)
    sla;
  let header =
    [ "browsers"; "R mva"; "R exact"; "R sim"; "U front exact"; "mva ok?"; "truth ok?" ]
  in
  let rows =
    List.map
      (fun browsers ->
        let net = Tpcw.network ~params ~browsers () in
        let mva = Mapqn_baselines.Mva.solve (Tpcw.network_no_acf ~params ~browsers ()) in
        let r_mva =
          Tpcw.user_response_time
            ~network_response:mva.Mapqn_baselines.Mva.system_response_time ~params
        in
        let sol = Mapqn_ctmc.Solution.solve ~max_states:3_000_000 net in
        let r_exact =
          Tpcw.user_response_time
            ~network_response:(Mapqn_ctmc.Solution.system_response_time sol)
            ~params
        in
        let sim =
          Sim.run
            ~options:{ Sim.default_options with warmup = 5_000.; horizon = 60_000. }
            net
        in
        let r_sim =
          Tpcw.user_response_time ~network_response:sim.Sim.system_response_time ~params
        in
        [
          string_of_int browsers;
          Mapqn_util.Table.float_cell ~decimals:2 r_mva;
          Mapqn_util.Table.float_cell ~decimals:2 r_exact;
          Mapqn_util.Table.float_cell ~decimals:2 r_sim;
          Mapqn_util.Table.float_cell ~decimals:3
            (Mapqn_ctmc.Solution.utilization sol Tpcw.front);
          (if r_mva <= sla then "yes" else "no");
          (if r_exact <= sla then "yes" else "no");
        ])
      [ 64; 128; 192; 256; 320 ]
  in
  Mapqn_util.Table.print ~header rows;
  print_newline ();
  print_endline
    "Reading: the no-burstiness (MVA) column says the site meets the SLA at \
     populations where the bursty truth is far above it — the exact mistake \
     the paper warns capacity planners about.";
  print_endline
    "Note the moderate front-server utilization at populations that already \
     violate the SLA: burstiness, not saturation, destroys response times."
