(* MAP(2) parameterization from summary statistics, and why the third
   moment matters (the paper's closing point, citing its reference [2]:
   third-order parameterizations can be orders of magnitude more accurate
   than second-order ones).

   Fits MAP(2)s to (mean, SCV, gamma2) with different skewness targets,
   verifies the fits reproduce the statistics, and shows the fits are NOT
   interchangeable: they induce different queueing behaviour in the same
   network even though means, SCVs and autocorrelation decay all agree.

   Run with: dune exec examples/fitting.exe *)

module Process = Mapqn_map.Process
module Fit = Mapqn_map.Fit

let mean = 1.0
let scv = 12.0
let gamma2 = 0.6

let () =
  Printf.printf "Fitting MAP(2) to mean=%.1f scv=%.1f gamma2=%.1f\n\n" mean scv gamma2;
  (* The admissible third-moment range for these first two moments. *)
  let m2 = (scv +. 1.) *. mean *. mean in
  (match Fit.m3_feasible_range ~m1:mean ~m2 with
  | Some (lo, _) -> Printf.printf "H2-feasible third moment: m3 > %.2f\n\n" lo
  | None -> ());
  let candidates =
    List.filter_map
      (fun sk ->
        match Fit.map2 ~mean ~scv ~gamma2 ?skewness:sk () with
        | Ok p -> Some (sk, p)
        | Error msg ->
          Printf.printf "skewness %s: infeasible (%s)\n"
            (match sk with Some s -> string_of_float s | None -> "balanced")
            msg;
          None)
      [ None; Some 5.; Some 8.; Some 15. ]
  in
  Mapqn_util.Table.print
    ~header:[ "target skew"; "mean"; "scv"; "skewness"; "gamma2"; "acf(1)" ]
    (List.map
       (fun (sk, p) ->
         [
           (match sk with Some s -> Printf.sprintf "%.1f" s | None -> "balanced");
           Mapqn_util.Table.float_cell (Process.mean p);
           Mapqn_util.Table.float_cell (Process.scv p);
           Mapqn_util.Table.float_cell (Process.skewness p);
           (match Process.acf_decay p with
           | Some g -> Mapqn_util.Table.float_cell g
           | None -> "-");
           Mapqn_util.Table.float_cell (Process.acf p 1);
         ])
       candidates);
  print_newline ();
  (* Same first two moments and ACF decay, different third moment: put each
     fit into the same closed network and watch the response time move. *)
  print_endline
    "Same (mean, SCV, gamma2), different skewness, same network (N = 12):";
  let rows =
    List.map
      (fun (sk, p) ->
        let net =
          Mapqn_model.Network.make_exn
            ~stations:
              [|
                Mapqn_model.Station.exp ~rate:1.3 ();
                Mapqn_model.Station.map p;
              |]
            ~routing:[| [| 0.; 1. |]; [| 1.; 0. |] |]
            ~population:12
        in
        let sol = Mapqn_ctmc.Solution.solve net in
        [
          (match sk with Some s -> Printf.sprintf "%.1f" s | None -> "balanced");
          Mapqn_util.Table.float_cell (Mapqn_ctmc.Solution.system_response_time sol);
          Mapqn_util.Table.float_cell (Mapqn_ctmc.Solution.utilization sol 0);
        ])
      candidates
  in
  Mapqn_util.Table.print ~header:[ "target skew"; "response time"; "U queue1" ] rows;
  print_newline ();
  print_endline
    "A second-order fit pins the first table's rows to identical (mean, scv, \
     gamma2) — yet the induced response times differ: matching third-order \
     statistics is part of the model, as the paper's future-work section \
     argues."
