(* The paper's future-work section proposes "exploring in real time (e.g.,
   with the proposed bounds) alternative network configurations that lead
   to improved performance". This example implements that loop.

   Scenario: the Figure-5 system again — a dispatcher (queue 1) splits work
   between a fast-but-bursty server (the MAP queue) and a slower, steady
   one. The knob is the routing split p: with probability p the dispatcher
   sends a request to the steady server, with probability (1-p)·... to the
   bursty one. For each candidate split we compute the LP response-time
   bounds — no exact solving, no simulation — and pick the split with the
   best *guaranteed* (upper-bound) response time.

   The punchline: the means-only (MVA) recommendation prefers shifting a
   big share to the fast bursty server; the bound-driven choice hedges
   against its burstiness, and the exact solution confirms the bounds'
   ranking.

   Run with: dune exec examples/resource_allocation.exe *)

module Station = Mapqn_model.Station
module Network = Mapqn_model.Network
module Bounds = Mapqn_core.Bounds

let population = 12

(* Steady server: Erlang-2 (low variability). Bursty server: ~1.7x faster
   on average but SCV 20 with long bursts (gamma2 0.95) — fast enough that
   a means-only analysis wants to shift load onto it, bursty enough that
   doing so actually hurts. *)
let steady_rate = 1.0
let bursty = Mapqn_map.Fit.map2_exn ~mean:0.6 ~scv:20. ~gamma2:0.95 ()

let network split =
  Network.make_exn
    ~stations:
      [|
        Station.exp ~name:"dispatcher" ~rate:4.0 ();
        Station.map ~name:"steady" (Mapqn_map.Builders.erlang ~k:2 ~rate:(2. *. steady_rate));
        Station.map ~name:"bursty" bursty;
      |]
    ~routing:
      [|
        [| 0.; split; 1. -. split |];
        [| 1.; 0.; 0. |];
        [| 1.; 0.; 0. |];
      |]
    ~population

let () =
  Printf.printf
    "Routing split exploration, N = %d: steady server (Erlang-2, mean %.1f) vs \
     bursty server (MAP, mean %.1f, SCV 16, gamma2 0.9)\n\n"
    population (1. /. steady_rate) (Mapqn_map.Process.mean bursty);
  let candidates = [ 0.2; 0.35; 0.5; 0.65; 0.8 ] in
  let evaluated =
    List.map
      (fun split ->
        let net = network split in
        let b = Bounds.create_exn ~config:Mapqn_core.Constraints.standard net in
        let r = Bounds.response_time b in
        let exact = Mapqn_ctmc.Solution.system_response_time (Mapqn_ctmc.Solution.solve net) in
        let mva =
          (Mapqn_baselines.Mva.solve (Network.exponentialize net))
            .Mapqn_baselines.Mva.system_response_time
        in
        (split, r, exact, mva))
      candidates
  in
  Mapqn_util.Table.print
    ~header:[ "split->steady"; "R lower"; "R upper"; "R exact"; "R mva" ]
    (List.map
       (fun (split, r, exact, mva) ->
         [
           Printf.sprintf "%.2f" split;
           Mapqn_util.Table.float_cell ~decimals:3 r.Bounds.lower;
           Mapqn_util.Table.float_cell ~decimals:3 r.Bounds.upper;
           Mapqn_util.Table.float_cell ~decimals:3 exact;
           Mapqn_util.Table.float_cell ~decimals:3 mva;
         ])
       evaluated);
  let best_by f =
    List.fold_left
      (fun (bs, bv) (s, r, e, m) ->
        let v = f (r, e, m) in
        if v < bv then (s, v) else (bs, bv))
      (Float.nan, infinity) evaluated
  in
  let bound_split, bound_v = best_by (fun (r, _, _) -> r.Bounds.upper) in
  let exact_split, _ = best_by (fun (_, e, _) -> e) in
  let mva_split, _ = best_by (fun (_, _, m) -> m) in
  Printf.printf
    "\nbound-driven choice: split %.2f (guaranteed R <= %.3f)\n\
     exact optimum:       split %.2f\n\
     MVA (means only):    split %.2f\n"
    bound_split bound_v exact_split mva_split;
  if bound_split = exact_split then
    print_endline
      "The LP bounds recovered the exact optimum without ever enumerating a \
       state space — the paper's proposed use in online reconfiguration."
  else
    print_endline
      "The LP bounds picked a near-optimal configuration; MVA's means-only \
       ranking ignores the burstiness penalty entirely."
