(* Quickstart: build the paper's Figure-5 network — two exponential queues
   and one bursty MAP queue — then compare the exact CTMC solution with the
   marginal-balance LP bounds (the paper's method) and classic baselines.

   Run with: dune exec examples/quickstart.exe *)

module Station = Mapqn_model.Station
module Network = Mapqn_model.Network

let () =
  (* 1. A MAP(2) service process: mean 1.0, CV = 4 (SCV 16), geometric ACF
     decay rate 0.5 — the paper's case-study service. *)
  let bursty = Mapqn_map.Fit.map2_exn ~mean:1.0 ~scv:16.0 ~gamma2:0.5 () in
  Format.printf "Service process:@.%a@.@." Mapqn_map.Process.pp bursty;

  (* 2. The closed network of the paper's Figure 5: queue 1 routes to
     itself (0.2), to queue 2 (0.7) and to the MAP queue 3 (0.1); everyone
     returns to queue 1. Population: 10 jobs. *)
  let network =
    Network.make_exn
      ~stations:
        [|
          Station.exp ~name:"link" ~rate:2.0 ();
          Station.exp ~name:"app-server" ~rate:1.0 ();
          Station.map ~name:"bursty-server" bursty;
        |]
      ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
      ~population:10
  in
  Format.printf "%a@.@." Network.pp network;

  (* 3. Exact solution (feasible here because the model is small — the
     underlying CTMC has C(12,2)·2 = 132 states). *)
  let exact = Mapqn_ctmc.Solution.solve network in
  print_endline "Exact CTMC solution:";
  Mapqn_util.Table.print
    ~header:[ "station"; "utilization"; "throughput"; "mean queue" ]
    (List.init 3 (fun k ->
         [
           string_of_int k;
           Mapqn_util.Table.float_cell (Mapqn_ctmc.Solution.utilization exact k);
           Mapqn_util.Table.float_cell (Mapqn_ctmc.Solution.throughput exact k);
           Mapqn_util.Table.float_cell (Mapqn_ctmc.Solution.mean_queue_length exact k);
         ]));
  let exact_r = Mapqn_ctmc.Solution.system_response_time exact in
  Printf.printf "exact response time: %.4f\n\n" exact_r;

  (* 4. The paper's LP bounds: no state-space enumeration, just
     O(M^2 (N+1) H) aggregate variables. *)
  let bounds =
    Mapqn_core.Bounds.create_exn ~config:Mapqn_core.Constraints.full network
  in
  let vars, rows = Mapqn_core.Bounds.lp_size bounds in
  Printf.printf "LP bounds (%d vars, %d rows):\n" vars rows;
  let r = Mapqn_core.Bounds.response_time bounds in
  Printf.printf "response time in [%.4f, %.4f] (exact %.4f inside: %b)\n"
    r.Mapqn_core.Bounds.lower r.Mapqn_core.Bounds.upper exact_r
    (Mapqn_core.Bounds.contains r exact_r);
  let u = Mapqn_core.Bounds.utilization bounds 2 in
  Printf.printf "MAP-queue utilization in [%.4f, %.4f]\n\n"
    u.Mapqn_core.Bounds.lower u.Mapqn_core.Bounds.upper;

  (* 5. What classic tools would report. *)
  let mva = Mapqn_baselines.Mva.solve (Network.exponentialize network) in
  Printf.printf "MVA on the exponentialized model: response %.4f (err %.1f%%)\n"
    mva.Mapqn_baselines.Mva.system_response_time
    (100. *. Mapqn_util.Tol.relative_error ~exact:exact_r
       mva.Mapqn_baselines.Mva.system_response_time);
  let aba = Mapqn_baselines.Aba.aba network in
  Printf.printf "ABA bounds: response in [%.4f, %.4f]\n"
    aba.Mapqn_baselines.Aba.r_lower aba.Mapqn_baselines.Aba.r_upper
