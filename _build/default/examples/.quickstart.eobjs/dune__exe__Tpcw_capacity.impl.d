examples/tpcw_capacity.ml: List Mapqn_baselines Mapqn_ctmc Mapqn_sim Mapqn_util Mapqn_workloads Printf
