examples/resource_allocation.ml: Float List Mapqn_baselines Mapqn_core Mapqn_ctmc Mapqn_map Mapqn_model Mapqn_util Printf
