examples/fitting.ml: List Mapqn_ctmc Mapqn_map Mapqn_model Mapqn_util Printf
