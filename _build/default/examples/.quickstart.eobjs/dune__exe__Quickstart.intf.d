examples/quickstart.mli:
