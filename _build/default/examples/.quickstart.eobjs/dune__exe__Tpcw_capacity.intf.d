examples/tpcw_capacity.mli:
