examples/burstiness_impact.ml: List Mapqn_core Mapqn_ctmc Mapqn_map Mapqn_model Mapqn_util Printf
