examples/quickstart.ml: Format List Mapqn_baselines Mapqn_core Mapqn_ctmc Mapqn_map Mapqn_model Mapqn_util Printf
