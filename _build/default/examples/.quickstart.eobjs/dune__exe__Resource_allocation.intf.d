examples/resource_allocation.mli:
