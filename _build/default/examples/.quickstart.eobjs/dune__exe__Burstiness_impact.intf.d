examples/burstiness_impact.mli:
