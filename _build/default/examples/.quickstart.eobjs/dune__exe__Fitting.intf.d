examples/fitting.mli:
