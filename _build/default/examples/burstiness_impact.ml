(* How much do service-time variability (SCV) and temporal dependence
   (ACF decay rate gamma2) each cost, at identical mean utilizations?

   Sweeps the MAP queue of the paper's Figure-5 network through increasing
   SCV and gamma2, solving exactly each time. The means never change, so a
   product-form model predicts the same numbers for every row: the whole
   spread of this table is invisible to classic capacity planning.

   Run with: dune exec examples/burstiness_impact.exe *)

module Station = Mapqn_model.Station
module Network = Mapqn_model.Network

(* Visit ratios are (1, 0.7, 0.1): a MAP mean of 10 gives the bursty queue
   the dominant demand (1.0 vs 0.8 at the exponential queues), so its
   service process actually matters. *)
let network ~scv ~gamma2 =
  let service =
    if scv = 1. && gamma2 = 0. then Mapqn_map.Builders.exponential ~rate:0.1
    else Mapqn_map.Fit.map2_exn ~mean:10. ~scv ~gamma2 ()
  in
  Network.make_exn
    ~stations:
      [|
        Station.exp ~rate:1.25 ();
        Station.exp ~rate:0.875 ();
        Station.map service;
      |]
    ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population:15

let () =
  print_endline
    "Response time and MAP-queue mean queue length of the Figure-5 network \
     (N = 15) as burstiness grows; all rows have identical service MEANS.";
  print_newline ();
  let base = Mapqn_ctmc.Solution.solve (network ~scv:1. ~gamma2:0.) in
  let base_r = Mapqn_ctmc.Solution.system_response_time base in
  let rows =
    List.map
      (fun (scv, gamma2) ->
        let sol = Mapqn_ctmc.Solution.solve (network ~scv ~gamma2) in
        let r = Mapqn_ctmc.Solution.system_response_time sol in
        [
          Printf.sprintf "%.0f" scv;
          Printf.sprintf "%.2f" gamma2;
          Mapqn_util.Table.float_cell ~decimals:3 r;
          Printf.sprintf "%.2fx" (r /. base_r);
          Mapqn_util.Table.float_cell ~decimals:3
            (Mapqn_ctmc.Solution.mean_queue_length sol 2);
          Mapqn_util.Table.float_cell ~decimals:3
            (Mapqn_ctmc.Solution.utilization sol 2);
        ])
      [
        (1., 0.);
        (4., 0.);
        (16., 0.);
        (16., 0.25);
        (16., 0.5);
        (16., 0.75);
        (16., 0.9);
        (16., 0.95);
      ]
  in
  Mapqn_util.Table.print
    ~header:[ "SCV"; "gamma2"; "R"; "vs exp"; "Q map"; "U map" ]
    rows;
  print_newline ();
  print_endline
    "Two separate effects: raising SCV at gamma2 = 0 (renewal, hyperexponential) \
     already hurts; adding temporal dependence (gamma2 > 0) multiplies the \
     damage again while utilization barely moves — the paper's Figure 3 story.";
  (* Show the bounds track this degradation without exact solving. *)
  print_newline ();
  let bursty = network ~scv:16. ~gamma2:0.9 in
  let b = Mapqn_core.Bounds.create_exn ~config:Mapqn_core.Constraints.full bursty in
  let r = Mapqn_core.Bounds.response_time b in
  let exact = Mapqn_ctmc.Solution.system_response_time (Mapqn_ctmc.Solution.solve bursty) in
  Printf.printf
    "LP bounds at SCV=16, gamma2=0.90: R in [%.3f, %.3f] (exact %.3f) — the \
     degradation is certified without enumerating the state space.\n"
    r.Mapqn_core.Bounds.lower r.Mapqn_core.Bounds.upper exact
