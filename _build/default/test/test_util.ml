open Mapqn_util

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Tol ---------------- *)

let test_close () =
  Alcotest.(check bool) "equal" true (Tol.close 1.0 1.0);
  Alcotest.(check bool) "near" true (Tol.close 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Tol.close 1.0 1.1);
  Alcotest.(check bool) "rel scales" true (Tol.close 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "abs near zero" true (Tol.close 0. 1e-13)

let test_clamp () =
  check_float "inside" 0.5 (Tol.clamp ~lo:0. ~hi:1. 0.5);
  check_float "below" 0. (Tol.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (Tol.clamp ~lo:0. ~hi:1. 2.);
  Alcotest.check_raises "bad interval" (Invalid_argument "Tol.clamp: lo > hi")
    (fun () -> ignore (Tol.clamp ~lo:1. ~hi:0. 0.5))

let test_clamp_probability () =
  check_float "tiny negative" 0. (Tol.clamp_probability (-1e-9));
  check_float "tiny above one" 1. (Tol.clamp_probability (1. +. 1e-9));
  (try
     ignore (Tol.clamp_probability 1.5);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_relative_error () =
  check_float "basic" 0.1 (Tol.relative_error ~exact:10. 11.)

(* ---------------- Ksum ---------------- *)

let test_ksum_cancellation () =
  let xs = [| 1.; 1e16; -1e16 |] in
  check_float "compensated" 1. (Ksum.sum xs)

let test_ksum_many_small () =
  let n = 1_000_000 in
  let xs = Array.make n 0.1 in
  let err = Float.abs (Ksum.sum xs -. (0.1 *. float_of_int n)) in
  Alcotest.(check bool) "error below 1e-7" true (err < 1e-7)

let test_ksum_dot () =
  check_float "dot" 32. (Ksum.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Ksum.dot: length mismatch")
    (fun () -> ignore (Ksum.dot [| 1. |] [| 1.; 2. |]))

let test_ksum_seq () =
  check_float "seq" 6. (Ksum.sum_seq (List.to_seq [ 1.; 2.; 3. ]))

(* ---------------- Comb ---------------- *)

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Comb.binomial 5 2);
  Alcotest.(check int) "C(0,0)" 1 (Comb.binomial 0 0);
  Alcotest.(check int) "C(10,0)" 1 (Comb.binomial 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Comb.binomial 10 10);
  Alcotest.(check int) "out of range" 0 (Comb.binomial 5 7);
  Alcotest.(check int) "negative k" 0 (Comb.binomial 5 (-1));
  Alcotest.(check int) "C(52,5)" 2598960 (Comb.binomial 52 5)

let test_compositions_count () =
  Alcotest.(check int) "3 into 2" 4 (Comb.compositions_count ~total:3 ~parts:2);
  Alcotest.(check int) "0 into 3" 1 (Comb.compositions_count ~total:0 ~parts:3);
  Alcotest.(check int) "5 into 3" 21 (Comb.compositions_count ~total:5 ~parts:3)

let test_compositions_enumeration () =
  let cs = Comb.compositions ~total:2 ~parts:3 in
  Alcotest.(check int) "count matches"
    (Comb.compositions_count ~total:2 ~parts:3)
    (List.length cs);
  List.iter
    (fun c -> Alcotest.(check int) "sums" 2 (Array.fold_left ( + ) 0 c))
    cs;
  let first = List.hd cs and last = List.nth cs (List.length cs - 1) in
  Alcotest.(check (array int)) "first" [| 0; 0; 2 |] first;
  Alcotest.(check (array int)) "last" [| 2; 0; 0 |] last

let test_rank_composition_roundtrip () =
  let total = 5 and parts = 4 in
  let idx = ref 0 in
  Comb.iter_compositions ~total ~parts (fun c ->
      Alcotest.(check int) "rank matches enumeration order" !idx
        (Comb.rank_composition ~total c);
      incr idx);
  Alcotest.(check int) "enumerated all" (Comb.compositions_count ~total ~parts) !idx

let test_ranges () =
  let dims = [| 2; 3; 2 |] in
  Alcotest.(check int) "count" 12 (Comb.ranges_count dims);
  let idx = ref 0 in
  Comb.iter_ranges dims (fun t ->
      Alcotest.(check int) "rank" !idx (Comb.rank_range dims t);
      Alcotest.(check (array int)) "unrank" t (Comb.unrank_range dims !idx);
      incr idx);
  Alcotest.(check int) "total" 12 !idx

let test_ranges_empty_dims () =
  let count = ref 0 in
  Comb.iter_ranges [||] (fun _ -> incr count);
  Alcotest.(check int) "one empty tuple" 1 !count;
  Alcotest.(check int) "ranges_count" 1 (Comb.ranges_count [||])

(* ---------------- Stats ---------------- *)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" (5. /. 3.) (Stats.variance xs);
  check_float "median" 2.5 (Stats.median xs);
  check_float "min" 1. (Stats.minimum xs);
  check_float "max" 4. (Stats.maximum xs)

let test_quantile () =
  let xs = [| 3.; 1.; 2. |] in
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 3. (Stats.quantile xs 1.);
  check_float "median unsorted input" 2. (Stats.median xs);
  Alcotest.(check (array (float 0.))) "input intact" [| 3.; 1.; 2. |] xs

let test_acf_periodic_series () =
  let xs = Array.init 1000 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  Alcotest.(check bool) "lag 1 strongly negative" true (Stats.autocorrelation xs 1 < -0.99);
  Alcotest.(check bool) "lag 2 strongly positive" true (Stats.autocorrelation xs 2 > 0.99)

let test_acf_zero_lag () =
  check_float "lag 0 is 1" 1. (Stats.autocorrelation [| 1.; 5.; 2.; 8. |] 0)

let test_summary () =
  let m, s, med, mx = Stats.summary [| 1.; 2.; 3. |] in
  check_float "mean" 2. m;
  check_float "std" 1. s;
  check_float "median" 2. med;
  check_float "max" 3. mx

(* ---------------- Table ---------------- *)

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "30"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check string) "header right aligned" " a  bb" (List.nth lines 0)

let test_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_float_cell () =
  Alcotest.(check string) "default" "1.5000" (Table.float_cell 1.5);
  Alcotest.(check string) "decimals" "1.50" (Table.float_cell ~decimals:2 1.5);
  Alcotest.(check string) "nan" "-" (Table.float_cell Float.nan)

(* ---------------- Properties ---------------- *)

let prop_ksum_matches_naive_small =
  QCheck.Test.make ~name:"ksum matches naive sum on benign arrays" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 50) (float_range (-100.) 100.))
    (fun xs ->
      let naive = Array.fold_left ( +. ) 0. xs in
      Tol.close ~rel:1e-9 ~abs:1e-9 naive (Ksum.sum xs))

let prop_compositions_sum =
  QCheck.Test.make ~name:"compositions all sum to total" ~count:50
    QCheck.(pair (int_range 0 6) (int_range 1 4))
    (fun (total, parts) ->
      List.for_all
        (fun c -> Array.fold_left ( + ) 0 c = total)
        (Comb.compositions ~total ~parts))

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile stays within min/max" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 30) (float_range (-50.) 50.))
        (float_range 0. 1.))
    (fun (xs, q) ->
      let v = Stats.quantile xs q in
      v >= Stats.minimum xs -. 1e-12 && v <= Stats.maximum xs +. 1e-12)

let () =
  Alcotest.run "util"
    [
      ( "tol",
        [
          Alcotest.test_case "close" `Quick test_close;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "clamp_probability" `Quick test_clamp_probability;
          Alcotest.test_case "relative_error" `Quick test_relative_error;
        ] );
      ( "ksum",
        [
          Alcotest.test_case "cancellation" `Quick test_ksum_cancellation;
          Alcotest.test_case "many small terms" `Quick test_ksum_many_small;
          Alcotest.test_case "dot" `Quick test_ksum_dot;
          Alcotest.test_case "seq" `Quick test_ksum_seq;
          QCheck_alcotest.to_alcotest prop_ksum_matches_naive_small;
        ] );
      ( "comb",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "compositions count" `Quick test_compositions_count;
          Alcotest.test_case "compositions enumeration" `Quick
            test_compositions_enumeration;
          Alcotest.test_case "rank roundtrip" `Quick test_rank_composition_roundtrip;
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "empty dims" `Quick test_ranges_empty_dims;
          QCheck_alcotest.to_alcotest prop_compositions_sum;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "acf periodic" `Quick test_acf_periodic_series;
          Alcotest.test_case "acf lag zero" `Quick test_acf_zero_lag;
          Alcotest.test_case "summary" `Quick test_summary;
          QCheck_alcotest.to_alcotest prop_quantile_bounds;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_ragged;
          Alcotest.test_case "float_cell" `Quick test_float_cell;
        ] );
    ]
