open Mapqn_workloads
module Network = Mapqn_model.Network
module Station = Mapqn_model.Station

let check_float ?(tol = 1e-9) = Alcotest.(check (float tol))

(* ---------------- Tpcw ---------------- *)

let test_tpcw_shape () =
  let net = Tpcw.network ~browsers:100 () in
  Alcotest.(check int) "three stations" 3 (Network.num_stations net);
  Alcotest.(check int) "population" 100 (Network.population net);
  Alcotest.(check bool) "client is delay" true
    (Station.is_delay (Network.station net Tpcw.client));
  Alcotest.(check int) "front has 2 phases" 2
    (Station.phases (Network.station net Tpcw.front));
  Alcotest.(check bool) "db exponential" true
    (Station.is_exponential (Network.station net Tpcw.db))

let test_tpcw_visit_ratios () =
  (* v_client = 1; every front completion returns to the client with
     p_reply, so v_front = 1 / p_reply and v_db = (1 - p) / p. *)
  let p = Tpcw.default_params in
  let v = Network.visit_ratios (Tpcw.network ~browsers:10 ()) in
  check_float ~tol:1e-9 "client" 1. v.(Tpcw.client);
  check_float ~tol:1e-9 "front" (1. /. p.Tpcw.p_reply) v.(Tpcw.front);
  check_float ~tol:1e-9 "db" ((1. -. p.Tpcw.p_reply) /. p.Tpcw.p_reply) v.(Tpcw.db)

let test_tpcw_front_statistics () =
  let p = Tpcw.default_params in
  let net = Tpcw.network ~browsers:10 () in
  let front = Station.service_process (Network.station net Tpcw.front) in
  check_float ~tol:1e-8 "front mean" p.Tpcw.front_mean (Mapqn_map.Process.mean front);
  check_float ~tol:1e-6 "front scv" p.Tpcw.front_scv (Mapqn_map.Process.scv front);
  match Mapqn_map.Process.acf_decay front with
  | Some g -> check_float ~tol:1e-6 "front gamma2" p.Tpcw.front_gamma2 g
  | None -> Alcotest.fail "expected decay"

let test_tpcw_no_acf () =
  let net = Tpcw.network_no_acf ~browsers:10 () in
  Alcotest.(check bool) "product form" true (Network.is_product_form net);
  (* Demands preserved. *)
  let d1 = Network.demands (Tpcw.network ~browsers:10 ()) in
  let d2 = Network.demands net in
  Alcotest.(check bool) "demands equal" true
    (Mapqn_util.Tol.close_arrays ~rel:1e-8 ~abs:1e-10 d1 d2)

let test_tpcw_user_response () =
  let params = Tpcw.default_params in
  check_float "subtracts think" 3.
    (Tpcw.user_response_time ~network_response:10. ~params);
  check_float "clamps at zero" 0.
    (Tpcw.user_response_time ~network_response:5. ~params)

let test_tpcw_rejects_bad_params () =
  (try
     ignore
       (Tpcw.network
          ~params:{ Tpcw.default_params with Tpcw.p_reply = 0. }
          ~browsers:10 ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---------------- Case_study ---------------- *)

let test_case_study_demands_balanced () =
  let net = Case_study.network ~population:5 () in
  let d = Network.demands net in
  check_float ~tol:1e-8 "queue1 demand" 1.0 d.(0);
  check_float ~tol:1e-8 "queue2 demand" 1.0 d.(1);
  check_float ~tol:1e-8 "queue3 demand" 1.25 d.(2);
  Alcotest.(check int) "bottleneck index" 2 Case_study.bottleneck

let test_case_study_map_statistics () =
  let p = Case_study.default_params in
  let net = Case_study.network ~population:5 () in
  let map = Station.service_process (Network.station net Case_study.bottleneck) in
  check_float ~tol:1e-6 "scv" p.Case_study.scv (Mapqn_map.Process.scv map);
  match Mapqn_map.Process.acf_decay map with
  | Some g -> check_float ~tol:1e-6 "gamma2" p.Case_study.gamma2 g
  | None -> Alcotest.fail "expected decay"

let test_case_study_routing () =
  let net = Case_study.network ~population:2 () in
  check_float "p11" 0.2 (Network.routing_prob net 0 0);
  check_float "p12" 0.7 (Network.routing_prob net 0 1);
  check_float ~tol:1e-12 "p13" 0.1 (Network.routing_prob net 0 2)

let test_fig6_state_count () =
  let net = Case_study.fig6_network ~population:2 in
  let space = Mapqn_ctmc.State_space.create net in
  Alcotest.(check int) "12 states as drawn in the paper" 12
    (Mapqn_ctmc.State_space.num_states space)

(* ---------------- Tandem ---------------- *)

let test_tandem_shape () =
  let net = Tandem.network ~population:10 () in
  Alcotest.(check int) "two queues" 2 (Network.num_stations net);
  let d = Network.demands net in
  check_float ~tol:1e-8 "queue1 demand" 1.0 d.(0);
  check_float ~tol:1e-8 "queue2 demand" 0.95 d.(1);
  Alcotest.(check int) "observed queue" 0 Tandem.observed_queue

(* ---------------- Random_models ---------------- *)

let test_random_models_reproducible () =
  let a = Random_models.generate_many ~seed:5 3 in
  let b = Random_models.generate_many ~seed:5 3 in
  List.iter2
    (fun (x : Random_models.model) (y : Random_models.model) ->
      Alcotest.(check (float 0.)) "same scv" x.Random_models.drawn_scv
        y.Random_models.drawn_scv;
      Alcotest.(check bool) "same routing" true
        (Mapqn_linalg.Mat.equal ~rel:0. ~abs:0.
           (Network.routing x.Random_models.network)
           (Network.routing y.Random_models.network)))
    a b

let test_random_models_structure () =
  let models = Random_models.generate_many ~seed:42 20 in
  List.iter
    (fun (m : Random_models.model) ->
      let net = m.Random_models.network in
      Alcotest.(check int) "3 stations" 3 (Network.num_stations net);
      Alcotest.(check (list int)) "map at the end" [ 2 ] m.Random_models.map_indices;
      let lo, hi = Random_models.default_spec.Random_models.scv_range in
      if m.Random_models.drawn_scv < lo || m.Random_models.drawn_scv > hi then
        Alcotest.fail "scv out of range";
      let glo, ghi = Random_models.default_spec.Random_models.gamma2_range in
      if m.Random_models.drawn_gamma2 < glo || m.Random_models.drawn_gamma2 > ghi
      then Alcotest.fail "gamma2 out of range";
      (* The fitted MAP matches the drawn statistics. *)
      let map = Station.service_process (Network.station net 2) in
      check_float ~tol:1e-5 "fitted scv" m.Random_models.drawn_scv
        (Mapqn_map.Process.scv map))
    models

let test_random_models_distinct () =
  let models = Random_models.generate_many ~seed:42 5 in
  let scvs = List.map (fun m -> m.Random_models.drawn_scv) models in
  Alcotest.(check bool) "distinct draws" true
    (List.length (List.sort_uniq compare scvs) > 1)

let test_random_models_multi_map () =
  let spec = { Random_models.default_spec with Random_models.map_stations = 2 } in
  let m = List.hd (Random_models.generate_many ~spec ~seed:1 1) in
  Alcotest.(check (list int)) "two map stations" [ 1; 2 ] m.Random_models.map_indices;
  Alcotest.(check int) "joint phase space" 4
    (Network.total_phases m.Random_models.network)

let test_random_models_rejects_bad_spec () =
  let rng = Mapqn_prng.Rng.create ~seed:0 in
  (try
     ignore
       (Random_models.generate
          ~spec:{ Random_models.default_spec with Random_models.map_stations = 0 }
          rng);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let () =
  Alcotest.run "workloads"
    [
      ( "tpcw",
        [
          Alcotest.test_case "shape" `Quick test_tpcw_shape;
          Alcotest.test_case "visit ratios" `Quick test_tpcw_visit_ratios;
          Alcotest.test_case "front statistics" `Quick test_tpcw_front_statistics;
          Alcotest.test_case "no-acf projection" `Quick test_tpcw_no_acf;
          Alcotest.test_case "user response" `Quick test_tpcw_user_response;
          Alcotest.test_case "bad params" `Quick test_tpcw_rejects_bad_params;
        ] );
      ( "case_study",
        [
          Alcotest.test_case "balanced demands" `Quick test_case_study_demands_balanced;
          Alcotest.test_case "map statistics" `Quick test_case_study_map_statistics;
          Alcotest.test_case "routing" `Quick test_case_study_routing;
          Alcotest.test_case "fig6 states" `Quick test_fig6_state_count;
        ] );
      ( "tandem", [ Alcotest.test_case "shape" `Quick test_tandem_shape ] );
      ( "random_models",
        [
          Alcotest.test_case "reproducible" `Quick test_random_models_reproducible;
          Alcotest.test_case "structure" `Quick test_random_models_structure;
          Alcotest.test_case "distinct" `Quick test_random_models_distinct;
          Alcotest.test_case "multi map" `Quick test_random_models_multi_map;
          Alcotest.test_case "bad spec" `Quick test_random_models_rejects_bad_spec;
        ] );
    ]
