open Mapqn_experiments

(* Integration smoke tests: tiny instances of every paper artifact. Runtime
   matters here, so grids are minimal; the full-scale runs live in bench/
   and bin/. *)

let test_fig4_small () =
  let options =
    { Fig4.params = Mapqn_workloads.Tandem.default_params; populations = [ 1; 8; 24 ] }
  in
  let t = Fig4.run ~options () in
  Alcotest.(check int) "three rows" 3 (List.length t.Fig4.rows);
  List.iter
    (fun (r : Fig4.row) ->
      if r.Fig4.exact < 0. || r.Fig4.exact > 1. then Alcotest.fail "exact out of range";
      if r.Fig4.aba_lower > r.Fig4.exact +. 1e-9 then Alcotest.fail "ABA lower invalid";
      if r.Fig4.aba_upper < r.Fig4.exact -. 1e-9 then Alcotest.fail "ABA upper invalid")
    t.Fig4.rows;
  (* The headline: decomposition overshoots under autocorrelation. *)
  let last = List.nth t.Fig4.rows 2 in
  Alcotest.(check bool) "decomposition overshoots" true
    (last.Fig4.decomposition > last.Fig4.exact +. 0.1);
  Alcotest.(check bool) "max error reported" true (Fig4.decomposition_max_error t > 0.1)

let test_fig8_small () =
  let options =
    {
      Fig8.params = Mapqn_workloads.Case_study.default_params;
      populations = [ 2; 6 ];
      config = Mapqn_core.Constraints.full;
    }
  in
  let t = Fig8.run ~options () in
  List.iter
    (fun (r : Fig8.row) ->
      Alcotest.(check bool) "utilization bracketed" true
        (Mapqn_core.Bounds.contains r.Fig8.utilization r.Fig8.exact_utilization);
      Alcotest.(check bool) "response bracketed" true
        (Mapqn_core.Bounds.contains r.Fig8.response r.Fig8.exact_response))
    t.Fig8.rows;
  let lo, hi = Fig8.max_response_error t in
  (* The case study is the paper's hardest instance (Fig. 8 shows visible
     mid-range deviation); errors just need to be in that ballpark. *)
  Alcotest.(check bool)
    (Printf.sprintf "errors in range (lo=%.3f hi=%.3f)" lo hi)
    true
    (lo < 0.15 && hi < 0.2)

let test_table1_small () =
  let options =
    { Table1.bench_options with Table1.models = 3; populations = [ 1; 3 ] }
  in
  let t = Table1.run ~options () in
  Alcotest.(check int) "three models" 3 (List.length t.Table1.per_model);
  List.iter
    (fun (r : Table1.model_result) ->
      Alcotest.(check int) "no violations" 0 r.Table1.bracket_violations;
      if r.Table1.max_err_lower > 0.5 || r.Table1.max_err_upper > 0.5 then
        Alcotest.failf "errors unexpectedly large: %f %f" r.Table1.max_err_lower
          r.Table1.max_err_upper)
    t.Table1.per_model;
  let mean_up, _, _, _ = t.Table1.rmax_stats in
  Alcotest.(check bool) "mean error sane" true (mean_up >= 0. && mean_up < 0.5)

let test_fig3_small () =
  let options =
    {
      Fig3.default_options with
      Fig3.browsers = [ 8; 24 ];
      sim_horizon = 30_000.;
      exact_model = true;
    }
  in
  let t = Fig3.run ~options () in
  List.iter
    (fun (r : Fig3.row) ->
      (* The exact MAP model and the DES of the same network must agree. *)
      let m = r.Fig3.measured and a = r.Fig3.acf_model in
      if Float.abs (m.Fig3.front_utilization -. a.Fig3.front_utilization) > 0.03 then
        Alcotest.failf "front util: sim %.3f vs exact %.3f" m.Fig3.front_utilization
          a.Fig3.front_utilization;
      (* The no-ACF model must not predict more queueing than the ACF one. *)
      if r.Fig3.no_acf_model.Fig3.response_time > a.Fig3.response_time +. 0.05 then
        Alcotest.fail "no-ACF model overestimates response")
    t.Fig3.rows

let test_fig1_small () =
  let options =
    { Fig1.default_options with Fig1.browsers = 64; horizon = 20_000.; max_lag = 50 }
  in
  let t = Fig1.run ~options () in
  Alcotest.(check int) "six flows" 6 (Array.length t.Fig1.flow_names);
  Array.iteri
    (fun i acf ->
      Alcotest.(check int) "lag count" 50 (Array.length acf);
      Array.iter
        (fun v ->
          if Float.is_nan v then
            Alcotest.failf "flow %d produced too few samples" i)
        acf)
    t.Fig1.acf;
  (* Burstiness shows up in the front-server departures (flow 4). *)
  Alcotest.(check bool) "front departures autocorrelated" true (t.Fig1.acf.(3).(0) > 0.02)

let test_trace_pipeline_small () =
  let t =
    Trace_pipeline.run
      ~options:
        {
          Trace_pipeline.default_options with
          browsers = [ 32; 64 ];
          trace_length = 60_000;
        }
      ()
  in
  (* Fitted statistics close to the ground truth. *)
  let p = Mapqn_workloads.Tpcw.default_params in
  Alcotest.(check (float 0.001)) "mean recovered"
    p.Mapqn_workloads.Tpcw.front_mean
    t.Trace_pipeline.estimated.Mapqn_map.Trace.mean;
  Alcotest.(check (float 0.05)) "gamma2 recovered"
    p.Mapqn_workloads.Tpcw.front_gamma2
    t.Trace_pipeline.estimated.Mapqn_map.Trace.gamma2;
  (* The pipeline's whole point. *)
  Alcotest.(check bool)
    (Printf.sprintf "fitted err %.3f << mean-only err %.3f"
       t.Trace_pipeline.max_err_fitted t.Trace_pipeline.max_err_mean_only)
    true
    (t.Trace_pipeline.max_err_fitted < 0.2
    && t.Trace_pipeline.max_err_mean_only > 2. *. t.Trace_pipeline.max_err_fitted)

let test_prints_run () =
  (* The print functions are part of the deliverable (they render the
     paper's tables); exercise them on tiny runs. *)
  let fig4 =
    Fig4.run
      ~options:
        { Fig4.params = Mapqn_workloads.Tandem.default_params; populations = [ 1; 4 ] }
      ()
  in
  Fig4.print fig4;
  let fig8 =
    Fig8.run
      ~options:
        {
          Fig8.params = Mapqn_workloads.Case_study.default_params;
          populations = [ 2 ];
          config = Mapqn_core.Constraints.standard;
        }
      ()
  in
  Fig8.print fig8

let () =
  Alcotest.run "experiments"
    [
      ( "artifacts",
        [
          Alcotest.test_case "fig4" `Slow test_fig4_small;
          Alcotest.test_case "fig8" `Slow test_fig8_small;
          Alcotest.test_case "table1" `Slow test_table1_small;
          Alcotest.test_case "fig3" `Slow test_fig3_small;
          Alcotest.test_case "fig1" `Slow test_fig1_small;
          Alcotest.test_case "trace pipeline" `Slow test_trace_pipeline_small;
          Alcotest.test_case "prints" `Slow test_prints_run;
        ] );
    ]
