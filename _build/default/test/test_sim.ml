open Mapqn_sim
module Network = Mapqn_model.Network
module Station = Mapqn_model.Station

let check_float ?(tol = 1e-9) = Alcotest.(check (float tol))

(* ---------------- Event_heap ---------------- *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  List.iter (fun t -> Event_heap.push h ~time:t (int_of_float t)) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "size" 5 (Event_heap.size h);
  let order = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order);
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> Event_heap.push h ~time:1. v) [ 10; 20; 30 ];
  let v1 = match Event_heap.pop h with Some (_, v) -> v | None -> -1 in
  let v2 = match Event_heap.pop h with Some (_, v) -> v | None -> -1 in
  let v3 = match Event_heap.pop h with Some (_, v) -> v | None -> -1 in
  Alcotest.(check (list int)) "insertion order on ties" [ 10; 20; 30 ] [ v1; v2; v3 ]

let test_heap_rejects_nan () =
  let h = Event_heap.create () in
  (try
     Event_heap.push h ~time:Float.nan 0;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_heap_peek () =
  let h = Event_heap.create () in
  Alcotest.(check (option (float 0.))) "empty peek" None (Event_heap.peek_time h);
  Event_heap.push h ~time:2. 0;
  Event_heap.push h ~time:1. 1;
  Alcotest.(check (option (float 0.))) "min" (Some 1.) (Event_heap.peek_time h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in nondecreasing time order" ~count:100
    QCheck.(array_of_size Gen.(int_range 0 100) (float_range 0. 1000.))
    (fun times ->
      let h = Event_heap.create () in
      Array.iteri (fun i t -> Event_heap.push h ~time:t i) times;
      let rec drain last =
        match Event_heap.pop h with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

(* ---------------- Simulator vs exact ---------------- *)

let exp_station rate = Station.exp ~rate ()

let fig5_network population =
  Network.make_exn
    ~stations:
      [|
        exp_station 2.;
        exp_station 1.;
        Station.map (Mapqn_map.Fit.map2_exn ~mean:1. ~scv:16. ~gamma2:0.5 ());
      |]
    ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population

let sim_options = { Simulator.default_options with horizon = 80_000.; warmup = 2_000. }

let test_sim_matches_exact_map_network () =
  let net = fig5_network 4 in
  let sol = Mapqn_ctmc.Solution.solve net in
  let r = Simulator.run ~options:sim_options net in
  for k = 0 to 2 do
    let exact = Mapqn_ctmc.Solution.utilization sol k in
    let got = r.Simulator.stations.(k).Simulator.utilization in
    if Float.abs (got -. exact) > 0.02 then
      Alcotest.failf "utilization %d: sim %.4f exact %.4f" k got exact;
    let exact_x = Mapqn_ctmc.Solution.throughput sol k in
    let got_x = r.Simulator.stations.(k).Simulator.throughput in
    if Float.abs (got_x -. exact_x) > 0.03 *. Float.max 1. exact_x then
      Alcotest.failf "throughput %d: sim %.4f exact %.4f" k got_x exact_x
  done;
  let exact_r = Mapqn_ctmc.Solution.system_response_time sol in
  if
    Float.abs (r.Simulator.system_response_time -. exact_r) > 0.05 *. exact_r
  then
    Alcotest.failf "response: sim %.4f exact %.4f" r.Simulator.system_response_time
      exact_r

let test_sim_delay_station () =
  let net =
    Network.make_exn
      ~stations:[| Station.delay ~rate:0.5 (); exp_station 2. |]
      ~routing:[| [| 0.; 1. |]; [| 1.; 0. |] |]
      ~population:5
  in
  let sol = Mapqn_ctmc.Solution.solve net in
  let r = Simulator.run ~options:sim_options net in
  check_float ~tol:0.05 "think queue length"
    (Mapqn_ctmc.Solution.mean_queue_length sol 0)
    r.Simulator.stations.(0).Simulator.mean_queue_length;
  check_float ~tol:0.03 "server throughput"
    (Mapqn_ctmc.Solution.throughput sol 1)
    r.Simulator.stations.(1).Simulator.throughput

let test_sim_deterministic () =
  let net = fig5_network 3 in
  let o = { sim_options with horizon = 5_000. } in
  let a = Simulator.run ~options:o net and b = Simulator.run ~options:o net in
  Alcotest.(check int) "same events" a.Simulator.total_events b.Simulator.total_events;
  check_float "same response" a.Simulator.system_response_time
    b.Simulator.system_response_time

let test_sim_seed_sensitivity () =
  let net = fig5_network 3 in
  let o = { sim_options with horizon = 5_000. } in
  let a = Simulator.run ~options:o net in
  let b = Simulator.run ~options:{ o with seed = o.seed + 1 } net in
  Alcotest.(check bool) "different streams" true
    (a.Simulator.total_events <> b.Simulator.total_events)

let test_sim_probes () =
  let net = fig5_network 3 in
  let o =
    {
      sim_options with
      horizon = 5_000.;
      probes = [ Simulator.Arrivals 1; Simulator.Departures 1 ];
    }
  in
  let r = Simulator.run ~options:o net in
  Alcotest.(check int) "two probe series" 2 (List.length r.Simulator.probe_series);
  let departures =
    List.assoc (Simulator.Departures 1) r.Simulator.probe_series
  in
  (* Departure count at station 1 matches its completion counter. *)
  Alcotest.(check int) "departures = completions"
    r.Simulator.stations.(1).Simulator.completions
    (Array.length departures);
  (* Timestamps are increasing. *)
  for i = 1 to Array.length departures - 1 do
    if departures.(i) < departures.(i - 1) then Alcotest.fail "non-monotone probe"
  done

let test_sim_zero_population () =
  let r = Simulator.run (fig5_network 0) in
  check_float "no response" 0. r.Simulator.system_response_time;
  Alcotest.(check int) "no events" 0 r.Simulator.total_events

let test_sim_map_stream_acf () =
  (* A single always-busy MAP station: the departure stream is the MAP
     itself, so its sampled inter-event statistics must match theory. *)
  let map = Mapqn_map.Fit.map2_exn ~mean:1. ~scv:8. ~gamma2:0.6 () in
  let net = Network.tandem [| Station.map map |] ~population:1 in
  let o =
    { sim_options with horizon = 200_000.; probes = [ Simulator.Departures 0 ] }
  in
  let r = Simulator.run ~options:o net in
  let times = List.assoc (Simulator.Departures 0) r.Simulator.probe_series in
  let xs = Simulator.inter_event_times times in
  Alcotest.(check bool) "many samples" true (Array.length xs > 100_000);
  check_float ~tol:0.02 "mean" (Mapqn_map.Process.mean map) (Mapqn_util.Stats.mean xs);
  let sample_scv =
    Mapqn_util.Stats.variance xs /. (Mapqn_util.Stats.mean xs ** 2.)
  in
  check_float ~tol:0.5 "scv" (Mapqn_map.Process.scv map) sample_scv;
  check_float ~tol:0.05 "lag-1 acf" (Mapqn_map.Process.acf map 1)
    (Mapqn_util.Stats.autocorrelation xs 1);
  check_float ~tol:0.05 "lag-3 acf" (Mapqn_map.Process.acf map 3)
    (Mapqn_util.Stats.autocorrelation xs 3)

let test_replicas () =
  let net = fig5_network 3 in
  let o = { sim_options with horizon = 3_000. } in
  let rs = Simulator.run_replicas ~options:o ~replicas:4 net in
  Alcotest.(check int) "four results" 4 (Array.length rs);
  let responses = Array.map (fun r -> r.Simulator.system_response_time) rs in
  (* Replicas must not be identical (independent seeds). *)
  Alcotest.(check bool) "independent" true
    (Array.exists (fun x -> x <> responses.(0)) responses)

let test_inter_event_times () =
  Alcotest.(check (array (float 1e-12)))
    "differences" [| 1.; 2.; 0.5 |]
    (Simulator.inter_event_times [| 0.; 1.; 3.; 3.5 |]);
  Alcotest.(check (array (float 1e-12))) "short" [||] (Simulator.inter_event_times [| 1. |])

let test_summary () =
  let s = Simulator.Summary.of_samples [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "mean" 3. s.Simulator.Summary.mean;
  Alcotest.(check bool) "contains mean" true (Simulator.Summary.contains s 3.);
  Alcotest.(check bool) "excludes far value" false (Simulator.Summary.contains s 100.)

let test_batch_throughput_consistent () =
  let net = fig5_network 4 in
  let o = { sim_options with horizon = 20_000.; batches = 10 } in
  let r = Simulator.run ~options:o net in
  Alcotest.(check int) "ten batches" 10 (Array.length r.Simulator.batch_throughput.(0));
  (* Batch means average back to the overall throughput. *)
  for k = 0 to 2 do
    check_float ~tol:1e-6 "batch mean equals overall"
      r.Simulator.stations.(k).Simulator.throughput
      (Mapqn_util.Stats.mean r.Simulator.batch_throughput.(k))
  done;
  (* Batch-means CI contains the long-run value most of the time. *)
  let summary = Simulator.Summary.of_samples r.Simulator.batch_throughput.(0) in
  Alcotest.(check bool) "CI sane" true (summary.Simulator.Summary.half_width > 0.)

let test_sojourn_samples_quantiles () =
  let net = fig5_network 4 in
  let o = { sim_options with horizon = 20_000. } in
  let r = Simulator.run ~options:o net in
  let samples = r.Simulator.sojourn_samples.(1) in
  Alcotest.(check bool) "collected samples" true (Array.length samples > 1000);
  let p50 = Mapqn_util.Stats.quantile samples 0.5 in
  let p95 = Mapqn_util.Stats.quantile samples 0.95 in
  Alcotest.(check bool) "quantiles ordered" true (0. < p50 && p50 < p95);
  (* The sample mean must agree with the exact streaming mean sojourn. *)
  check_float ~tol:0.1 "sample mean vs streaming mean"
    r.Simulator.stations.(1).Simulator.mean_sojourn
    (Mapqn_util.Stats.mean samples)

let test_sojourn_little_law () =
  (* L = lambda W per station: time-average queue length equals throughput
     times mean sojourn. *)
  let net = fig5_network 5 in
  let r = Simulator.run ~options:{ sim_options with horizon = 60_000. } net in
  for k = 0 to 2 do
    let s = r.Simulator.stations.(k) in
    let lw = s.Simulator.throughput *. s.Simulator.mean_sojourn in
    if
      Float.abs (lw -. s.Simulator.mean_queue_length)
      > 0.05 *. Float.max 1. s.Simulator.mean_queue_length
    then
      Alcotest.failf "Little violated at %d: L=%.4f lambda W=%.4f" k
        s.Simulator.mean_queue_length lw
  done

let test_sim_product_form_matches_mva () =
  let net =
    Network.make_exn
      ~stations:[| exp_station 2.; exp_station 1.5; exp_station 1. |]
      ~routing:[| [| 0.; 0.5; 0.5 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
      ~population:5
  in
  let mva = Mapqn_baselines.Mva.solve net in
  let r = Simulator.run ~options:sim_options net in
  for k = 0 to 2 do
    check_float ~tol:0.02 "utilization"
      mva.Mapqn_baselines.Mva.utilization.(k)
      r.Simulator.stations.(k).Simulator.utilization
  done

let () =
  Alcotest.run "sim"
    [
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "rejects nan" `Quick test_heap_rejects_nan;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "matches exact MAP network" `Slow
            test_sim_matches_exact_map_network;
          Alcotest.test_case "delay station" `Slow test_sim_delay_station;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_sim_seed_sensitivity;
          Alcotest.test_case "probes" `Quick test_sim_probes;
          Alcotest.test_case "zero population" `Quick test_sim_zero_population;
          Alcotest.test_case "MAP stream statistics" `Slow test_sim_map_stream_acf;
          Alcotest.test_case "replicas" `Quick test_replicas;
          Alcotest.test_case "inter-event times" `Quick test_inter_event_times;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "product form matches MVA" `Slow
            test_sim_product_form_matches_mva;
          Alcotest.test_case "batch throughput" `Quick test_batch_throughput_consistent;
          Alcotest.test_case "sojourn quantiles" `Quick test_sojourn_samples_quantiles;
          Alcotest.test_case "little's law per station" `Slow test_sojourn_little_law;
        ] );
    ]
