test/test_prng.ml: Alcotest Array Dist Float Gen Int64 List Mapqn_prng Mapqn_util Printf QCheck QCheck_alcotest Reservoir Rng
