test/test_util.ml: Alcotest Array Comb Float Gen Ksum List Mapqn_util QCheck QCheck_alcotest Stats String Table Tol
