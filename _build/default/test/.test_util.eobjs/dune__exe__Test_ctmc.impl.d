test/test_ctmc.ml: Alcotest Array Float Generator Mapqn_baselines Mapqn_ctmc Mapqn_linalg Mapqn_map Mapqn_model Mapqn_prng Mapqn_sparse Mapqn_util Printf QCheck QCheck_alcotest Solution State_space
