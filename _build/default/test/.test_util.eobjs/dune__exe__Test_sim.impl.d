test/test_sim.ml: Alcotest Array Event_heap Float Gen List Mapqn_baselines Mapqn_ctmc Mapqn_map Mapqn_model Mapqn_sim Mapqn_util QCheck QCheck_alcotest Simulator
