test/test_experiments.ml: Alcotest Array Fig1 Fig3 Fig4 Fig8 Float List Mapqn_core Mapqn_experiments Mapqn_map Mapqn_workloads Printf Table1 Trace_pipeline
