test/test_linalg.ml: Alcotest Array Eig Format Gth Kron Lu Mapqn_linalg Mapqn_prng Mapqn_util Mat QCheck QCheck_alcotest Vec
