test/test_core.ml: Alcotest Array Bounds Constraints Hashtbl List Mapqn_core Mapqn_ctmc Mapqn_lp Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Marginal_space Printf QCheck QCheck_alcotest
