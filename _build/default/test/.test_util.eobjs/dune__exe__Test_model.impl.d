test/test_model.ml: Alcotest Array Mapqn_linalg Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Network QCheck QCheck_alcotest Station
