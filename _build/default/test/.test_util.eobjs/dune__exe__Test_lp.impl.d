test/test_lp.ml: Alcotest Array Float Format List Lp_model Mapqn_lp Mapqn_prng Mapqn_util QCheck QCheck_alcotest Simplex String
