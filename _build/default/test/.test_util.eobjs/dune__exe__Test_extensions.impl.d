test/test_extensions.ml: Alcotest Array List Mapqn_baselines Mapqn_ctmc Mapqn_experiments Mapqn_linalg Mapqn_map Mapqn_model Mapqn_prng Mapqn_sparse Mapqn_util Printf
