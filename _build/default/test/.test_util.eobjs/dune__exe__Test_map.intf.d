test/test_map.mli:
