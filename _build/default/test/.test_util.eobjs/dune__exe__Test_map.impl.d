test/test_map.ml: Alcotest Array Builders Fit Float List Mapqn_linalg Mapqn_map Printf Process QCheck QCheck_alcotest
