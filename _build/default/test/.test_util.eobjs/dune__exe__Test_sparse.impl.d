test/test_sparse.ml: Alcotest Array Csr Format List Mapqn_linalg Mapqn_prng Mapqn_sparse Mapqn_util QCheck QCheck_alcotest Stationary
