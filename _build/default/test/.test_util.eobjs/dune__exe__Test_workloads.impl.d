test/test_workloads.ml: Alcotest Array Case_study List Mapqn_ctmc Mapqn_linalg Mapqn_map Mapqn_model Mapqn_prng Mapqn_util Mapqn_workloads Random_models Tandem Tpcw
