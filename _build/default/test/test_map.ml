open Mapqn_map
module Mat = Mapqn_linalg.Mat

let check_float ?(tol = 1e-9) = Alcotest.(check (float tol))

(* ---------------- exponential ---------------- *)

let test_exponential_stats () =
  let p = Builders.exponential ~rate:2. in
  Alcotest.(check int) "order" 1 (Process.order p);
  check_float "mean" 0.5 (Process.mean p);
  check_float "rate" 2. (Process.rate p);
  check_float "scv" 1. (Process.scv p);
  check_float "skewness" 2. (Process.skewness p);
  check_float "second moment" 0.5 (Process.moment p 2);
  check_float "third moment" (6. /. 8.) (Process.moment p 3);
  check_float "acf lag 1" 0. (Process.acf p 1);
  check_float "acf lag 0" 1. (Process.acf p 0);
  Alcotest.(check bool) "renewal" true (Process.is_renewal p);
  (match Process.acf_decay p with
  | Some g -> check_float "decay 0" 0. g
  | None -> Alcotest.fail "expected decay")

(* ---------------- erlang ---------------- *)

let test_erlang_stats () =
  let k = 4 in
  let p = Builders.erlang ~k ~rate:2. in
  Alcotest.(check int) "order" k (Process.order p);
  check_float "mean" 2. (Process.mean p);
  check_float "scv" 0.25 (Process.scv p);
  Alcotest.(check bool) "renewal" true (Process.is_renewal p);
  check_float "acf" 0. (Process.acf p 3)

(* ---------------- hyperexponential ---------------- *)

let test_hyperexponential_stats () =
  let probs = [| 0.4; 0.6 |] and rates = [| 1.; 5. |] in
  let p = Builders.hyperexponential ~probs ~rates in
  let mean = (0.4 /. 1.) +. (0.6 /. 5.) in
  let m2 = 2. *. ((0.4 /. 1.) +. (0.6 /. 25.)) in
  check_float "mean" mean (Process.mean p);
  check_float "m2" m2 (Process.moment p 2);
  Alcotest.(check bool) "scv > 1" true (Process.scv p > 1.);
  Alcotest.(check bool) "renewal" true (Process.is_renewal p);
  check_float "acf" 0. (Process.acf p 1)

let test_hyperexponential_validation () =
  (try
     ignore (Builders.hyperexponential ~probs:[| 0.5; 0.6 |] ~rates:[| 1.; 2. |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---------------- mmpp2 ---------------- *)

let test_mmpp2_basic () =
  let p = Builders.mmpp2 ~r01:0.1 ~r10:0.05 ~rate0:5. ~rate1:0.5 in
  Alcotest.(check int) "order" 2 (Process.order p);
  (* Phase stationary: (r10, r01)/(r10+r01) = (1/3, 2/3). *)
  let theta = Process.phase_stationary p in
  check_float "theta0" (1. /. 3.) theta.(0);
  check_float "rate" ((1. /. 3.) *. 5. +. (2. /. 3.) *. 0.5) (Process.rate p);
  Alcotest.(check bool) "positively correlated" true (Process.acf p 1 > 0.05);
  Alcotest.(check bool) "scv > 1" true (Process.scv p > 1.);
  Alcotest.(check bool) "not renewal" true (not (Process.is_renewal p))

let test_mmpp2_acf_decays () =
  let p = Builders.mmpp2 ~r01:0.2 ~r10:0.1 ~rate0:4. ~rate1:0.4 in
  let a1 = Process.acf p 1 and a5 = Process.acf p 5 and a20 = Process.acf p 20 in
  Alcotest.(check bool) "monotone decay" true (a1 > a5 && a5 > a20 && a20 > 0.)

(* ---------------- switched exponential ---------------- *)

let test_switched_exponential_geometry () =
  let gamma2 = 0.5 in
  let p =
    Builders.switched_exponential ~pi1:0.7 ~rate1:4. ~rate2:0.4 ~gamma2
  in
  (* ACF decays geometrically with rate exactly gamma2. *)
  let a1 = Process.acf p 1 in
  Alcotest.(check bool) "positive lag-1" true (a1 > 0.);
  for k = 2 to 6 do
    let expected = a1 *. (gamma2 ** float_of_int (k - 1)) in
    check_float ~tol:1e-9
      (Printf.sprintf "acf lag %d geometric" k)
      expected (Process.acf p k)
  done;
  match Process.acf_decay p with
  | Some g -> check_float "decay = gamma2" gamma2 g
  | None -> Alcotest.fail "expected decay"

let test_switched_exponential_marginal () =
  (* Marginal inter-event distribution is the H2 (pi1@rate1, pi2@rate2). *)
  let pi1 = 0.7 and rate1 = 4. and rate2 = 0.4 in
  let p = Builders.switched_exponential ~pi1 ~rate1 ~rate2 ~gamma2:0.6 in
  let h2 = Builders.hyperexponential ~probs:[| pi1; 1. -. pi1 |] ~rates:[| rate1; rate2 |] in
  check_float "mean matches H2" (Process.mean h2) (Process.mean p);
  check_float "m2 matches H2" (Process.moment h2 2) (Process.moment p 2);
  check_float "m3 matches H2" (Process.moment h2 3) (Process.moment p 3)

let test_switched_exponential_embedded_stationary () =
  let p = Builders.switched_exponential ~pi1:0.3 ~rate1:1. ~rate2:10. ~gamma2:0.2 in
  let pi_e = Process.embedded_stationary p in
  check_float "embedded pi1" 0.3 pi_e.(0);
  check_float "embedded pi2" 0.7 pi_e.(1)

(* ---------------- validation ---------------- *)

let test_validation_rejects () =
  let reject d0 d1 =
    match Process.make ~d0:(Mat.of_arrays d0) ~d1:(Mat.of_arrays d1) with
    | Ok _ -> Alcotest.fail "expected validation error"
    | Error _ -> ()
  in
  (* Rows don't sum to zero. *)
  reject [| [| -1.; 0. |]; [| 0.; -1. |] |] [| [| 0.5; 0. |]; [| 0.; 0.5 |] |];
  (* Negative D1 entry. *)
  reject [| [| -1.; 0.5 |]; [| 0.5; -1. |] |] [| [| 1.; -0.5 |]; [| 0.; 0.5 |] |];
  (* Reducible: no flow to phase 1. *)
  reject [| [| -1.; 0. |]; [| 1.; -2. |] |] [| [| 1.; 0. |]; [| 1.; 0. |] |];
  (* D1 = 0: no events. *)
  reject [| [| -1.; 1. |]; [| 1.; -1. |] |] [| [| 0.; 0. |]; [| 0.; 0. |] |]

let test_generator_rows_zero () =
  let p = Builders.mmpp2 ~r01:0.3 ~r10:0.2 ~rate0:2. ~rate1:0.1 in
  let sums = Mat.row_sums (Process.generator p) in
  Array.iter (fun s -> check_float "row sum" 0. s) sums

let test_embedded_stochastic () =
  let p = Builders.mmpp2 ~r01:0.3 ~r10:0.2 ~rate0:2. ~rate1:0.1 in
  let e = Process.embedded p in
  Array.iter (fun s -> check_float "embedded row sum" 1. s) (Mat.row_sums e)

(* ---------------- rescale ---------------- *)

let test_rescale_preserves_shape () =
  let p = Builders.switched_exponential ~pi1:0.6 ~rate1:3. ~rate2:0.3 ~gamma2:0.4 in
  let q = Process.rescale p ~mean:5. in
  check_float "new mean" 5. (Process.mean q);
  check_float "scv preserved" (Process.scv p) (Process.scv q);
  check_float "skewness preserved" (Process.skewness p) (Process.skewness q);
  check_float "acf preserved" (Process.acf p 3) (Process.acf q 3)

(* ---------------- fitting ---------------- *)

let test_h2_balanced_roundtrip () =
  match Fit.h2_balanced ~mean:2. ~scv:16. with
  | Error e -> Alcotest.fail e
  | Ok { p1; rate1; rate2 } ->
    let p = Builders.hyperexponential ~probs:[| p1; 1. -. p1 |] ~rates:[| rate1; rate2 |] in
    check_float "mean" 2. (Process.mean p);
    check_float ~tol:1e-8 "scv" 16. (Process.scv p);
    (* Balanced means: p1/rate1 = p2/rate2. *)
    check_float "balanced" (p1 /. rate1) ((1. -. p1) /. rate2)

let test_h2_balanced_rejects_low_scv () =
  match Fit.h2_balanced ~mean:1. ~scv:0.5 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected scv >= 1 failure"

let test_h2_three_moments_roundtrip () =
  (* Take a known H2, compute its moments, fit back. *)
  let probs = [| 0.8; 0.2 |] and rates = [| 4.; 0.25 |] in
  let src = Builders.hyperexponential ~probs ~rates in
  let m1 = Process.moment src 1 and m2 = Process.moment src 2 and m3 = Process.moment src 3 in
  match Fit.h2_three_moments ~m1 ~m2 ~m3 with
  | Error e -> Alcotest.fail e
  | Ok { p1; rate1; rate2 } ->
    let fitted =
      Builders.hyperexponential ~probs:[| p1; 1. -. p1 |] ~rates:[| rate1; rate2 |]
    in
    check_float ~tol:1e-7 "m1" m1 (Process.moment fitted 1);
    check_float ~tol:1e-7 "m2" m2 (Process.moment fitted 2);
    check_float ~tol:1e-6 "m3" m3 (Process.moment fitted 3)

let test_h2_three_moments_infeasible () =
  (* scv < 1 has no H2. *)
  match Fit.h2_three_moments ~m1:1. ~m2:1.5 ~m3:3. with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_m3_feasible_range () =
  let m1 = 1. and m2 = 6. in
  (match Fit.m3_feasible_range ~m1 ~m2 with
  | None -> Alcotest.fail "expected a range"
  | Some (lo, hi) ->
    Alcotest.(check bool) "hi infinite" true (hi = infinity);
    (* A moment just above the low endpoint must be feasible. *)
    (match Fit.h2_three_moments ~m1 ~m2 ~m3:(lo *. 1.05) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "feasible point rejected: %s" e);
    (* A moment below the low endpoint must be rejected. *)
    match Fit.h2_three_moments ~m1 ~m2 ~m3:(lo *. 0.8) with
    | Ok _ -> Alcotest.fail "expected rejection below range"
    | Error _ -> ());
  (* No range when scv <= 1 (m2 = 2 m1² is scv = 1). *)
  match Fit.m3_feasible_range ~m1:1. ~m2:1.5 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None for scv < 1"

let test_fit_map2_targets () =
  (* The paper's case-study service: CV = 4 (scv = 16), gamma2 = 0.5. *)
  let p = Fit.map2_exn ~mean:1. ~scv:16. ~gamma2:0.5 () in
  check_float ~tol:1e-8 "mean" 1. (Process.mean p);
  check_float ~tol:1e-7 "scv" 16. (Process.scv p);
  (match Process.acf_decay p with
  | Some g -> check_float ~tol:1e-8 "gamma2" 0.5 g
  | None -> Alcotest.fail "expected decay");
  Alcotest.(check bool) "acf positive" true (Process.acf p 1 > 0.)

let test_fit_map2_with_skewness () =
  let skewness = 6. in
  let p = Fit.map2_exn ~mean:2. ~scv:9. ~gamma2:0.3 ~skewness () in
  check_float ~tol:1e-7 "mean" 2. (Process.mean p);
  check_float ~tol:1e-6 "scv" 9. (Process.scv p);
  check_float ~tol:1e-5 "skewness" skewness (Process.skewness p)

let test_fit_map2_degenerate_exponential () =
  let p = Fit.map2_exn ~mean:3. ~scv:1. ~gamma2:0. () in
  Alcotest.(check int) "order 1" 1 (Process.order p);
  check_float "mean" 3. (Process.mean p)

let test_fit_map2_rejects_correlated_exponential () =
  match Fit.map2 ~mean:1. ~scv:1. ~gamma2:0.5 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scv=1 with gamma2>0 must be rejected"

(* ---------------- properties ---------------- *)

let arb_fit_params =
  QCheck.make
    QCheck.Gen.(
      let* scv = float_range 1.5 30. in
      let* gamma2 = float_range 0. 0.9 in
      let* mean = float_range 0.1 10. in
      return (mean, scv, gamma2))

let prop_fit_map2_roundtrip =
  QCheck.Test.make ~name:"map2 fit reproduces mean/scv/gamma2" ~count:100
    arb_fit_params (fun (mean, scv, gamma2) ->
      match Fit.map2 ~mean ~scv ~gamma2 () with
      | Error _ -> false
      | Ok p ->
        let ok v target tol = Float.abs (v -. target) <= tol *. Float.max 1. (Float.abs target) in
        ok (Process.mean p) mean 1e-7
        && ok (Process.scv p) scv 1e-6
        &&
        (match Process.acf_decay p with
        | Some g -> ok g gamma2 1e-6
        | None -> false))

let prop_moments_increasing_order =
  (* For positive random variables with mean >= 1, higher power moments
     dominate: E[X^2] >= E[X]^2 (always), and consistency of our moment
     formula with variance. *)
  QCheck.Test.make ~name:"moment formulas consistent" ~count:100 arb_fit_params
    (fun (mean, scv, gamma2) ->
      match Fit.map2 ~mean ~scv ~gamma2 () with
      | Error _ -> false
      | Ok p ->
        let m1 = Process.moment p 1 and m2 = Process.moment p 2 in
        let var = Process.variance p in
        Float.abs (var -. (m2 -. (m1 *. m1))) < 1e-9 *. m2 && var >= 0.)

let prop_acf_bounded =
  QCheck.Test.make ~name:"acf magnitude bounded by 1" ~count:100 arb_fit_params
    (fun (mean, scv, gamma2) ->
      match Fit.map2 ~mean ~scv ~gamma2 () with
      | Error _ -> false
      | Ok p ->
        List.for_all (fun k -> Float.abs (Process.acf p k) <= 1. +. 1e-9) [ 1; 2; 5; 10 ])

let () =
  Alcotest.run "map_process"
    [
      ( "builders",
        [
          Alcotest.test_case "exponential" `Quick test_exponential_stats;
          Alcotest.test_case "erlang" `Quick test_erlang_stats;
          Alcotest.test_case "hyperexponential" `Quick test_hyperexponential_stats;
          Alcotest.test_case "hyperexponential validation" `Quick
            test_hyperexponential_validation;
          Alcotest.test_case "mmpp2" `Quick test_mmpp2_basic;
          Alcotest.test_case "mmpp2 acf decay" `Quick test_mmpp2_acf_decays;
          Alcotest.test_case "switched exp geometry" `Quick
            test_switched_exponential_geometry;
          Alcotest.test_case "switched exp marginal" `Quick
            test_switched_exponential_marginal;
          Alcotest.test_case "switched exp embedded" `Quick
            test_switched_exponential_embedded_stationary;
        ] );
      ( "process",
        [
          Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
          Alcotest.test_case "generator rows zero" `Quick test_generator_rows_zero;
          Alcotest.test_case "embedded stochastic" `Quick test_embedded_stochastic;
          Alcotest.test_case "rescale" `Quick test_rescale_preserves_shape;
          QCheck_alcotest.to_alcotest prop_moments_increasing_order;
          QCheck_alcotest.to_alcotest prop_acf_bounded;
        ] );
      ( "fit",
        [
          Alcotest.test_case "h2 balanced roundtrip" `Quick test_h2_balanced_roundtrip;
          Alcotest.test_case "h2 balanced rejects low scv" `Quick
            test_h2_balanced_rejects_low_scv;
          Alcotest.test_case "h2 three moments roundtrip" `Quick
            test_h2_three_moments_roundtrip;
          Alcotest.test_case "h2 three moments infeasible" `Quick
            test_h2_three_moments_infeasible;
          Alcotest.test_case "m3 feasible range" `Quick test_m3_feasible_range;
          Alcotest.test_case "map2 case-study targets" `Quick test_fit_map2_targets;
          Alcotest.test_case "map2 with skewness" `Quick test_fit_map2_with_skewness;
          Alcotest.test_case "map2 degenerate exponential" `Quick
            test_fit_map2_degenerate_exponential;
          Alcotest.test_case "map2 rejects scv=1 correlation" `Quick
            test_fit_map2_rejects_correlated_exponential;
          QCheck_alcotest.to_alcotest prop_fit_map2_roundtrip;
        ] );
    ]
