open Mapqn_model

let check_float ?(tol = 1e-9) = Alcotest.(check (float tol))

let exp_station rate = Station.exp ~rate ()

let bursty_map () =
  Mapqn_map.Fit.map2_exn ~mean:1. ~scv:16. ~gamma2:0.5 ()

(* ---------------- Station ---------------- *)

let test_station_exp () =
  let s = Station.exp ~name:"cpu" ~rate:4. () in
  check_float "mean service" 0.25 (Station.mean_service_time s);
  check_float "rate" 4. (Station.mean_service_rate s);
  Alcotest.(check int) "phases" 1 (Station.phases s);
  Alcotest.(check bool) "exponential" true (Station.is_exponential s)

let test_station_map () =
  let s = Station.map ~name:"disk" (bursty_map ()) in
  Alcotest.(check int) "phases" 2 (Station.phases s);
  Alcotest.(check bool) "not exponential" true (not (Station.is_exponential s));
  check_float ~tol:1e-8 "mean" 1. (Station.mean_service_time s)

let test_station_exponentialize () =
  let s = Station.map (bursty_map ()) in
  let e = Station.exponentialize s in
  Alcotest.(check bool) "now exponential" true (Station.is_exponential e);
  check_float ~tol:1e-8 "mean preserved" (Station.mean_service_time s)
    (Station.mean_service_time e)

let test_station_service_process_exp () =
  let s = Station.exp ~rate:3. () in
  let p = Station.service_process s in
  Alcotest.(check int) "order 1" 1 (Mapqn_map.Process.order p);
  check_float "rate" 3. (Mapqn_map.Process.rate p)

let test_station_rejects_bad_rate () =
  (try
     ignore (Station.exp ~rate:0. ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---------------- Network ---------------- *)

(* Figure 5 of the paper: queue 1 routes to itself (p11), to queue 2 (p12),
   to queue 3 (p13); queues 2 and 3 route back to queue 1. *)
let fig5_routing = [| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]

let fig5_network ?(population = 5) () =
  Network.make_exn
    ~stations:[| exp_station 2.; exp_station 1.; Station.map (bursty_map ()) |]
    ~routing:fig5_routing ~population

let test_network_accessors () =
  let net = fig5_network () in
  Alcotest.(check int) "stations" 3 (Network.num_stations net);
  Alcotest.(check int) "population" 5 (Network.population net);
  check_float "routing prob" 0.7 (Network.routing_prob net 0 1);
  Alcotest.(check (array int)) "phase dims" [| 1; 1; 2 |] (Network.phase_dims net);
  Alcotest.(check int) "total phases" 2 (Network.total_phases net)

let test_network_validation () =
  let reject ~stations ~routing ~population =
    match Network.make ~stations ~routing ~population with
    | Ok _ -> Alcotest.fail "expected validation error"
    | Error _ -> ()
  in
  let s = [| exp_station 1.; exp_station 1. |] in
  reject ~stations:s ~routing:[| [| 0.5; 0.4 |]; [| 1.; 0. |] |] ~population:2;
  reject ~stations:s ~routing:[| [| 1.; 0. |]; [| 0.; 1. |] |] ~population:2;
  (* reducible *)
  reject ~stations:s ~routing:[| [| 0.; 1. |] |] ~population:2;
  (* not square *)
  reject ~stations:[||] ~routing:[||] ~population:1;
  reject ~stations:s ~routing:[| [| 0.; 1. |]; [| 1.; 0. |] |] ~population:(-1)

let test_visit_ratios_fig5 () =
  (* v1 = 1 (reference); v2 = p12 = 0.7; v3 = p13 = 0.1. *)
  let v = Network.visit_ratios (fig5_network ()) in
  check_float "v1" 1. v.(0);
  check_float "v2" 0.7 v.(1);
  check_float "v3" 0.1 v.(2)

let test_visit_ratios_tandem () =
  let net = Network.tandem [| exp_station 1.; exp_station 2.; exp_station 3. |] ~population:4 in
  let v = Network.visit_ratios net in
  Array.iter (fun vk -> check_float "all 1" 1. vk) v

let test_demands () =
  let net = fig5_network () in
  let d = Network.demands net in
  check_float "d1 = v1 / rate1" 0.5 d.(0);
  check_float "d2" 0.7 d.(1);
  check_float ~tol:1e-8 "d3 = 0.1 * 1.0" 0.1 d.(2)

let test_with_population () =
  let net = fig5_network ~population:3 () in
  let net10 = Network.with_population net 10 in
  Alcotest.(check int) "new population" 10 (Network.population net10);
  Alcotest.(check int) "original untouched" 3 (Network.population net)

let test_exponentialize_network () =
  let net = fig5_network () in
  Alcotest.(check bool) "not product form" true (not (Network.is_product_form net));
  let e = Network.exponentialize net in
  Alcotest.(check bool) "product form" true (Network.is_product_form e);
  (* Demands are preserved by exponentialization. *)
  let d0 = Network.demands net and d1 = Network.demands e in
  Alcotest.(check bool) "demands equal" true
    (Mapqn_util.Tol.close_arrays ~rel:1e-8 ~abs:1e-9 d0 d1)

let test_single_station_self_loop () =
  let net = Network.tandem [| exp_station 1. |] ~population:3 in
  let v = Network.visit_ratios net in
  check_float "trivial visit" 1. v.(0)

let prop_visit_ratios_solve_traffic_equations =
  (* v P = v for random irreducible routing matrices. *)
  QCheck.Test.make ~name:"visit ratios satisfy v P = v" ~count:100
    QCheck.(pair (int_range 2 6) (int_range 0 1_000_000))
    (fun (m, seed) ->
      let rng = Mapqn_prng.Rng.create ~seed in
      let routing =
        Array.init m (fun _ ->
            let row = Array.init m (fun _ -> Mapqn_prng.Rng.float rng +. 0.05) in
            let s = Mapqn_util.Ksum.sum row in
            Array.map (fun x -> x /. s) row)
      in
      let stations = Array.init m (fun _ -> exp_station 1.) in
      let net = Network.make_exn ~stations ~routing ~population:1 in
      let v = Network.visit_ratios net in
      let vp = Mapqn_linalg.Mat.vec_mat v (Network.routing net) in
      Mapqn_util.Tol.close_arrays ~rel:1e-8 ~abs:1e-9 v vp && v.(0) = 1.)

let () =
  Alcotest.run "model"
    [
      ( "station",
        [
          Alcotest.test_case "exp" `Quick test_station_exp;
          Alcotest.test_case "map" `Quick test_station_map;
          Alcotest.test_case "exponentialize" `Quick test_station_exponentialize;
          Alcotest.test_case "service process" `Quick test_station_service_process_exp;
          Alcotest.test_case "rejects bad rate" `Quick test_station_rejects_bad_rate;
        ] );
      ( "network",
        [
          Alcotest.test_case "accessors" `Quick test_network_accessors;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "fig5 visit ratios" `Quick test_visit_ratios_fig5;
          Alcotest.test_case "tandem visit ratios" `Quick test_visit_ratios_tandem;
          Alcotest.test_case "demands" `Quick test_demands;
          Alcotest.test_case "with_population" `Quick test_with_population;
          Alcotest.test_case "exponentialize" `Quick test_exponentialize_network;
          Alcotest.test_case "single station" `Quick test_single_station_self_loop;
          QCheck_alcotest.to_alcotest prop_visit_ratios_solve_traffic_equations;
        ] );
    ]
