open Mapqn_sparse
module Mat = Mapqn_linalg.Mat
module Vec = Mapqn_linalg.Vec

let check_float = Alcotest.(check (float 1e-9))

let check_vec ?(tol = 1e-9) msg expected got =
  if not (Mapqn_util.Tol.close_arrays ~rel:tol ~abs:tol expected got) then
    Alcotest.failf "%s: expected %s got %s" msg
      (Format.asprintf "%a" Vec.pp expected)
      (Format.asprintf "%a" Vec.pp got)

(* ---------------- Csr ---------------- *)

let sample () =
  Csr.of_coo ~rows:3 ~cols:3 [ (0, 0, 1.); (0, 2, 2.); (1, 1, 3.); (2, 0, 4.) ]

let test_build_and_get () =
  let m = sample () in
  Alcotest.(check int) "nnz" 4 (Csr.nnz m);
  check_float "(0,0)" 1. (Csr.get m 0 0);
  check_float "(0,2)" 2. (Csr.get m 0 2);
  check_float "(1,1)" 3. (Csr.get m 1 1);
  check_float "(2,0)" 4. (Csr.get m 2 0);
  check_float "absent" 0. (Csr.get m 2 2)

let test_duplicates_summed () =
  let m = Csr.of_coo ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 0, 2.5) ] in
  Alcotest.(check int) "merged" 1 (Csr.nnz m);
  check_float "summed" 3.5 (Csr.get m 0 0)

let test_explicit_zero_dropped () =
  let m = Csr.of_coo ~rows:2 ~cols:2 [ (0, 0, 0.); (1, 1, 1.) ] in
  Alcotest.(check int) "nnz" 1 (Csr.nnz m)

let test_cancelling_duplicates_dropped () =
  let m = Csr.of_coo ~rows:2 ~cols:2 [ (0, 0, 2.); (0, 0, -2.); (1, 0, 1.) ] in
  Alcotest.(check int) "nnz" 1 (Csr.nnz m)

let test_out_of_range () =
  (try
     ignore (Csr.of_coo ~rows:2 ~cols:2 [ (2, 0, 1.) ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_mat_vec () =
  let m = sample () in
  check_vec "A x" [| 7.; 6.; 4. |] (Csr.mat_vec m [| 1.; 2.; 3. |])

let test_vec_mat () =
  let m = sample () in
  check_vec "x A" [| 13.; 6.; 2. |] (Csr.vec_mat [| 1.; 2.; 3. |] m)

let test_roundtrip_dense () =
  let d = Mat.of_arrays [| [| 0.; 1.5 |]; [| -2.; 0. |] |] in
  let m = Csr.of_dense d in
  Alcotest.(check bool) "roundtrip" true (Mat.equal (Csr.to_dense m) d)

let test_transpose () =
  let m = sample () in
  let t = Csr.transpose m in
  check_float "(0,2)" 4. (Csr.get t 0 2);
  check_float "(2,0)" 2. (Csr.get t 2 0);
  Alcotest.(check int) "nnz preserved" (Csr.nnz m) (Csr.nnz t)

let test_row_sums_scale () =
  let m = sample () in
  check_vec "row sums" [| 3.; 3.; 4. |] (Csr.row_sums m);
  check_vec "scaled" [| 6.; 6.; 8. |] (Csr.row_sums (Csr.scale 2. m))

let test_iter_order () =
  let m = sample () in
  let seen = ref [] in
  Csr.iter m (fun i j v -> seen := (i, j, v) :: !seen);
  Alcotest.(check int) "count" 4 (List.length !seen);
  (* Row-major: first recorded (reversed) is the last nonzero. *)
  match !seen with
  | (2, 0, 4.) :: _ -> ()
  | _ -> Alcotest.fail "unexpected order"

(* ---------------- Stationary ---------------- *)

let birth_death_generator n ~birth ~death =
  let triplets = ref [] in
  for i = 0 to n - 1 do
    let out = ref 0. in
    if i < n - 1 then begin
      triplets := (i, i + 1, birth) :: !triplets;
      out := !out +. birth
    end;
    if i > 0 then begin
      triplets := (i, i - 1, death) :: !triplets;
      out := !out +. death
    end;
    triplets := (i, i, -. !out) :: !triplets
  done;
  Csr.of_coo ~rows:n ~cols:n !triplets

let analytic_birth_death n ~birth ~death =
  let rho = birth /. death in
  let weights = Array.init n (fun i -> rho ** float_of_int i) in
  Vec.normalize1 weights

let test_solver expected_method () =
  let n = 40 in
  let q = birth_death_generator n ~birth:1. ~death:2. in
  let options = { Stationary.default_options with method_ = expected_method } in
  let pi = Stationary.solve ~options q in
  let expected = analytic_birth_death n ~birth:1. ~death:2. in
  check_vec ~tol:1e-8 "birth-death stationary" expected pi

let test_methods_agree () =
  let n = 60 in
  let q = birth_death_generator n ~birth:3. ~death:2.5 in
  let solve m =
    Stationary.solve ~options:{ Stationary.default_options with method_ = m } q
  in
  let gth = solve Stationary.Gth in
  let gs = solve Stationary.Gauss_seidel in
  let pw = solve Stationary.Power in
  check_vec ~tol:1e-7 "gs vs gth" gth gs;
  check_vec ~tol:1e-6 "power vs gth" gth pw

let test_auto_threshold_large () =
  (* Above the GTH threshold the Auto path must still solve correctly. *)
  let n = Stationary.gth_threshold + 100 in
  let q = birth_death_generator n ~birth:1. ~death:1.01 in
  let pi = Stationary.solve q in
  check_float "normalized" 1. (Mapqn_util.Ksum.sum pi);
  Alcotest.(check bool) "residual small" true (Stationary.residual q pi < 1e-8)

let test_rejects_bad_generator () =
  let q = Csr.of_coo ~rows:2 ~cols:2 [ (0, 0, -1.); (0, 1, 2.); (1, 0, 1.); (1, 1, -1.) ] in
  (try
     ignore (Stationary.solve q);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_random_generator_stationary =
  QCheck.Test.make ~name:"iterative solvers find pi Q = 0 on random chains" ~count:40
    QCheck.(pair (int_range 3 25) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Mapqn_prng.Rng.create ~seed in
      let triplets = ref [] in
      for i = 0 to n - 1 do
        let out = ref 0. in
        for j = 0 to n - 1 do
          if i <> j then begin
            let r = Mapqn_prng.Dist.uniform rng ~lo:0.05 ~hi:2. in
            triplets := (i, j, r) :: !triplets;
            out := !out +. r
          end
        done;
        triplets := (i, i, -. !out) :: !triplets
      done;
      let q = Csr.of_coo ~rows:n ~cols:n !triplets in
      let pi =
        Stationary.solve
          ~options:{ Stationary.default_options with method_ = Stationary.Gauss_seidel }
          q
      in
      Stationary.residual q pi < 1e-8
      && Mapqn_util.Tol.close (Mapqn_util.Ksum.sum pi) 1.)

let () =
  Alcotest.run "sparse"
    [
      ( "csr",
        [
          Alcotest.test_case "build and get" `Quick test_build_and_get;
          Alcotest.test_case "duplicates summed" `Quick test_duplicates_summed;
          Alcotest.test_case "explicit zero dropped" `Quick test_explicit_zero_dropped;
          Alcotest.test_case "cancelling duplicates" `Quick test_cancelling_duplicates_dropped;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "mat_vec" `Quick test_mat_vec;
          Alcotest.test_case "vec_mat" `Quick test_vec_mat;
          Alcotest.test_case "dense roundtrip" `Quick test_roundtrip_dense;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "row sums and scale" `Quick test_row_sums_scale;
          Alcotest.test_case "iteration order" `Quick test_iter_order;
        ] );
      ( "stationary",
        [
          Alcotest.test_case "gth birth-death" `Quick (test_solver Stationary.Gth);
          Alcotest.test_case "gauss-seidel birth-death" `Quick
            (test_solver Stationary.Gauss_seidel);
          Alcotest.test_case "power birth-death" `Quick (test_solver Stationary.Power);
          Alcotest.test_case "methods agree" `Quick test_methods_agree;
          Alcotest.test_case "auto path large" `Slow test_auto_threshold_large;
          Alcotest.test_case "rejects bad generator" `Quick test_rejects_bad_generator;
          QCheck_alcotest.to_alcotest prop_random_generator_stationary;
        ] );
    ]
