open Mapqn_prng

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.uint64 a) (Rng.uint64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.uint64 a) (Rng.uint64 b) then incr same
  done;
  Alcotest.(check int) "nearby seeds decorrelated" 0 !same

let test_copy_snapshots () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.uint64 a);
  let b = Rng.copy a in
  let xa = Rng.uint64 a in
  let xb = Rng.uint64 b in
  Alcotest.(check int64) "copy continues identically" xa xb

let test_split_independence () =
  let a = Rng.create ~seed:7 in
  let child = Rng.split a in
  (* Parent and child streams should not coincide. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.uint64 a) (Rng.uint64 child) then incr same
  done;
  Alcotest.(check int) "no collisions" 0 !same

let test_float_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %g" x
  done

let test_float_pos () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    if Rng.float_pos rng <= 0. then Alcotest.fail "float_pos returned <= 0"
  done

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of [0,7): %d" x
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create ~seed:11 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int n /. 5. in
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.05 then Alcotest.failf "bucket %d deviates %.3f" i dev)
    counts

let test_uniform_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Dist.uniform rng ~lo:2. ~hi:4.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check (float 0.02)) "mean ~3" 3. mean

let test_exponential_moments () =
  let rng = Rng.create ~seed:17 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Dist.exponential rng ~rate:2.) in
  let mean = Mapqn_util.Stats.mean xs in
  let var = Mapqn_util.Stats.variance xs in
  Alcotest.(check (float 0.01)) "mean 1/2" 0.5 mean;
  Alcotest.(check (float 0.01)) "variance 1/4" 0.25 var

let test_erlang_moments () =
  let rng = Rng.create ~seed:19 in
  let n = 200_000 in
  let k = 4 and rate = 2. in
  let xs = Array.init n (fun _ -> Dist.erlang rng ~k ~rate) in
  Alcotest.(check (float 0.02)) "mean k/rate" 2. (Mapqn_util.Stats.mean xs);
  Alcotest.(check (float 0.03)) "variance k/rate^2" 1. (Mapqn_util.Stats.variance xs)

let test_hyperexponential_mean () =
  let rng = Rng.create ~seed:23 in
  let probs = [| 0.3; 0.7 |] and rates = [| 1.; 4. |] in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Dist.hyperexponential rng ~probs ~rates) in
  let expected = (0.3 /. 1.) +. (0.7 /. 4.) in
  Alcotest.(check (float 0.01)) "mean" expected (Mapqn_util.Stats.mean xs)

let test_categorical () =
  let rng = Rng.create ~seed:29 in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Dist.categorical rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  let frac0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check (float 0.02)) "weight-1 fraction" 0.25 frac0

let test_categorical_all_zero () =
  let rng = Rng.create ~seed:29 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.categorical: zero total weight") (fun () ->
      ignore (Dist.categorical rng [| 0.; 0. |]))

let test_alias_matches_weights () =
  let rng = Rng.create ~seed:31 in
  let weights = [| 2.; 5.; 1.; 2. |] in
  let sampler = Dist.Alias.create weights in
  Alcotest.(check int) "support" 4 (Dist.Alias.support sampler);
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Dist.Alias.sample sampler rng in
    counts.(i) <- counts.(i) + 1
  done;
  let total = Mapqn_util.Ksum.sum weights in
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. total in
      let got = float_of_int c /. float_of_int n in
      if Float.abs (got -. expected) > 0.01 then
        Alcotest.failf "category %d: got %.4f expected %.4f" i got expected)
    counts

let test_alias_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.Alias.create: negative weight") (fun () ->
      ignore (Dist.Alias.create [| 1.; -1. |]))

(* ---------------- Reservoir ---------------- *)

let test_reservoir_small_stream () =
  let rng = Rng.create ~seed:3 in
  let r = Reservoir.create ~capacity:10 rng in
  List.iter (Reservoir.add r) [ 3.; 1.; 2. ];
  Alcotest.(check int) "count" 3 (Reservoir.count r);
  let s = Array.copy (Reservoir.sample r) in
  Array.sort compare s;
  Alcotest.(check (array (float 0.))) "keeps everything below capacity"
    [| 1.; 2.; 3. |] s;
  Alcotest.(check (float 1e-9)) "median" 2. (Reservoir.quantile r 0.5)

let test_reservoir_uniformity () =
  (* Stream 0..999 into capacity 100: the kept sample's mean should be
     close to the stream mean (uniform sampling). Averaged over several
     reservoirs to reduce variance. *)
  let rng = Rng.create ~seed:9 in
  let total = ref 0. in
  let reps = 40 in
  for _ = 1 to reps do
    let r = Reservoir.create ~capacity:100 rng in
    for i = 0 to 999 do
      Reservoir.add r (float_of_int i)
    done;
    total := !total +. Mapqn_util.Stats.mean (Reservoir.sample r)
  done;
  let mean = !total /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 25 of 499.5" mean)
    true
    (Float.abs (mean -. 499.5) < 25.)

let test_reservoir_capacity_bound () =
  let rng = Rng.create ~seed:4 in
  let r = Reservoir.create ~capacity:5 rng in
  for i = 1 to 1000 do
    Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "sample size capped" 5 (Array.length (Reservoir.sample r));
  Alcotest.(check int) "count tracks stream" 1000 (Reservoir.count r)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential variates are positive" ~count:500
    QCheck.(pair (int_range 0 10_000) (float_range 0.01 50.))
    (fun (seed, rate) ->
      let rng = Rng.create ~seed in
      Dist.exponential rng ~rate > 0.)

let prop_categorical_in_support =
  QCheck.Test.make ~name:"categorical index within support" ~count:500
    QCheck.(pair (int_range 0 10_000) (array_of_size Gen.(int_range 1 8) (float_range 0.1 5.)))
    (fun (seed, weights) ->
      let rng = Rng.create ~seed in
      let i = Dist.categorical rng weights in
      i >= 0 && i < Array.length weights)

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_snapshots;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float_pos" `Quick test_float_pos;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
        ] );
      ( "dist",
        [
          Alcotest.test_case "uniform mean" `Slow test_uniform_mean;
          Alcotest.test_case "exponential moments" `Slow test_exponential_moments;
          Alcotest.test_case "erlang moments" `Slow test_erlang_moments;
          Alcotest.test_case "hyperexponential mean" `Slow test_hyperexponential_mean;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "categorical all zero" `Quick test_categorical_all_zero;
          Alcotest.test_case "alias matches weights" `Slow test_alias_matches_weights;
          Alcotest.test_case "alias rejects negative" `Quick test_alias_rejects_negative;
          QCheck_alcotest.to_alcotest prop_exponential_positive;
          Alcotest.test_case "reservoir small" `Quick test_reservoir_small_stream;
          Alcotest.test_case "reservoir uniform" `Quick test_reservoir_uniformity;
          Alcotest.test_case "reservoir capped" `Quick test_reservoir_capacity_bound;
          QCheck_alcotest.to_alcotest prop_categorical_in_support;
        ] );
    ]
