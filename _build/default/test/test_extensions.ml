(* Tests for the extension modules: Schweitzer AMVA, MAP algebra (Ops),
   transient analysis, and the moment-order experiment. *)

module Network = Mapqn_model.Network
module Station = Mapqn_model.Station
module Process = Mapqn_map.Process

let check_float ?(tol = 1e-9) = Alcotest.(check (float tol))

let exp_station rate = Station.exp ~rate ()

(* ---------------- Schweitzer ---------------- *)

let product_form_network population =
  Network.make_exn
    ~stations:[| exp_station 2.; exp_station 1.5; exp_station 0.9 |]
    ~routing:[| [| 0.1; 0.5; 0.4 |]; [| 0.8; 0.; 0.2 |]; [| 1.; 0.; 0. |] |]
    ~population

let test_schweitzer_close_to_mva () =
  let net = product_form_network 12 in
  let mva = Mapqn_baselines.Mva.solve net in
  let sch = Mapqn_baselines.Schweitzer.solve net in
  (* Schweitzer is an approximation: a few percent of exact MVA. *)
  let err =
    Mapqn_util.Tol.relative_error ~exact:mva.Mapqn_baselines.Mva.system_throughput
      sch.Mapqn_baselines.Schweitzer.system_throughput
  in
  Alcotest.(check bool) (Printf.sprintf "within 5%% (err %.4f)" err) true (err < 0.05)

let test_schweitzer_converges_large_population () =
  let net = product_form_network 500 in
  let sch = Mapqn_baselines.Schweitzer.solve net in
  let mva = Mapqn_baselines.Mva.solve net in
  Alcotest.(check bool) "iterations bounded" true
    (sch.Mapqn_baselines.Schweitzer.iterations < 100_000);
  check_float ~tol:0.02 "asymptotic throughput"
    mva.Mapqn_baselines.Mva.system_throughput
    sch.Mapqn_baselines.Schweitzer.system_throughput

let test_schweitzer_population_conserved () =
  let net = product_form_network 9 in
  let sch = Mapqn_baselines.Schweitzer.solve net in
  check_float ~tol:1e-6 "queue lengths sum to N" 9.
    (Mapqn_util.Ksum.sum sch.Mapqn_baselines.Schweitzer.mean_queue_length)

let test_schweitzer_zero_population () =
  let sch = Mapqn_baselines.Schweitzer.solve (product_form_network 0) in
  check_float "zero throughput" 0. sch.Mapqn_baselines.Schweitzer.system_throughput

let test_schweitzer_with_delay () =
  let net =
    Network.make_exn
      ~stations:[| Station.delay ~rate:0.25 (); exp_station 2. |]
      ~routing:[| [| 0.; 1. |]; [| 1.; 0. |] |]
      ~population:6
  in
  let mva = Mapqn_baselines.Mva.solve net in
  let sch = Mapqn_baselines.Schweitzer.solve net in
  check_float ~tol:0.05 "delay handled"
    mva.Mapqn_baselines.Mva.system_throughput
    sch.Mapqn_baselines.Schweitzer.system_throughput

(* ---------------- Ops ---------------- *)

let test_superpose_poisson () =
  (* Superposing two Poisson streams is a Poisson stream with summed rate. *)
  let a = Mapqn_map.Builders.exponential ~rate:2. in
  let b = Mapqn_map.Builders.exponential ~rate:3. in
  let s = Mapqn_map.Ops.superpose a b in
  check_float ~tol:1e-9 "rate adds" 5. (Process.rate s);
  check_float ~tol:1e-9 "scv 1" 1. (Process.scv s);
  check_float ~tol:1e-9 "uncorrelated" 0. (Process.acf s 1)

let test_superpose_rates_add () =
  let a = Mapqn_map.Builders.mmpp2 ~r01:0.2 ~r10:0.1 ~rate0:3. ~rate1:0.3 in
  let b = Mapqn_map.Builders.exponential ~rate:1.5 in
  let s = Mapqn_map.Ops.superpose a b in
  Alcotest.(check int) "order multiplies" 2 (Process.order s);
  check_float ~tol:1e-9 "rate adds" (Process.rate a +. 1.5) (Process.rate s);
  (* Mixing in independent Poisson noise reduces autocorrelation. *)
  Alcotest.(check bool) "acf diluted" true
    (Process.acf s 1 < Process.acf a 1 && Process.acf s 1 > 0.)

let test_thin_exponential () =
  let p = Mapqn_map.Builders.exponential ~rate:4. in
  let t = Mapqn_map.Ops.thin ~prob:0.25 p in
  check_float ~tol:1e-9 "thinned rate" 1. (Process.rate t);
  check_float ~tol:1e-9 "still exponential" 1. (Process.scv t)

let test_thin_preserves_rate_scaling () =
  let p = Mapqn_map.Builders.mmpp2 ~r01:0.2 ~r10:0.1 ~rate0:3. ~rate1:0.3 in
  let t = Mapqn_map.Ops.thin ~prob:0.5 p in
  check_float ~tol:1e-9 "half rate" (Process.rate p /. 2.) (Process.rate t);
  (try
     ignore (Mapqn_map.Ops.thin ~prob:0. p);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_thin_full_identity () =
  let p = Mapqn_map.Builders.mmpp2 ~r01:0.2 ~r10:0.1 ~rate0:3. ~rate1:0.3 in
  let t = Mapqn_map.Ops.thin ~prob:1. p in
  Alcotest.(check bool) "prob 1 is identity" true (Process.equal p t)

(* ---------------- Transient ---------------- *)

let two_state_generator a b =
  Mapqn_sparse.Csr.of_coo ~rows:2 ~cols:2
    [ (0, 0, -.a); (0, 1, a); (1, 0, b); (1, 1, -.b) ]

let test_transient_two_state_closed_form () =
  (* For Q = [[-a a];[b -b]], p_00(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}. *)
  let a = 1.5 and b = 0.7 in
  let q = two_state_generator a b in
  List.iter
    (fun t ->
      let pi = Mapqn_ctmc.Transient.distribution_at q ~initial:[| 1.; 0. |] ~t in
      let expected = (b /. (a +. b)) +. (a /. (a +. b)) *. exp (-.(a +. b) *. t) in
      check_float ~tol:1e-9 (Printf.sprintf "p00(%.2f)" t) expected pi.(0))
    [ 0.; 0.1; 0.5; 1.; 3.; 10. ]

let test_transient_converges_to_stationary () =
  let q = two_state_generator 2. 1. in
  let pi = Mapqn_ctmc.Transient.distribution_at q ~initial:[| 0.; 1. |] ~t:80. in
  check_float ~tol:1e-8 "stationary p0" (1. /. 3.) pi.(0)

let test_transient_zero_time () =
  let q = two_state_generator 1. 1. in
  let pi = Mapqn_ctmc.Transient.distribution_at q ~initial:[| 0.3; 0.7 |] ~t:0. in
  check_float "identity at t=0" 0.3 pi.(0)

let test_transient_network () =
  (* The transient distribution of a real network CTMC stays normalized
     and converges to the stationary solution. *)
  let net =
    Network.tandem [| exp_station 2.; exp_station 1. |] ~population:3
  in
  let space = Mapqn_ctmc.State_space.create net in
  let q = Mapqn_ctmc.Generator.build space in
  let n = Mapqn_ctmc.State_space.num_states space in
  let initial = Array.make n 0. in
  initial.(0) <- 1.;
  let pi_t = Mapqn_ctmc.Transient.distribution_at q ~initial ~t:2. in
  check_float ~tol:1e-9 "normalized" 1. (Mapqn_util.Ksum.sum pi_t);
  let sol = Mapqn_ctmc.Solution.solve net in
  let pi_inf = Mapqn_ctmc.Transient.distribution_at q ~initial ~t:200. in
  Alcotest.(check bool) "converged to stationary" true
    (Mapqn_linalg.Vec.max_abs_diff pi_inf (Mapqn_ctmc.Solution.distribution sol)
     < 1e-6)

let test_transient_expected_metric () =
  let q = two_state_generator 1. 1. in
  let v =
    Mapqn_ctmc.Transient.expected_metric_at q ~initial:[| 1.; 0. |]
      ~metric:[| 0.; 10. |] ~t:50.
  in
  check_float ~tol:1e-8 "expected metric at equilibrium" 5. v

let test_relaxation_time_monotone_in_rates () =
  (* Faster chains relax faster. *)
  let slow =
    Mapqn_ctmc.Transient.relaxation_time (two_state_generator 0.1 0.1)
      ~initial:[| 1.; 0. |]
      ~stationary:[| 0.5; 0.5 |]
  in
  let fast =
    Mapqn_ctmc.Transient.relaxation_time (two_state_generator 10. 10.)
      ~initial:[| 1.; 0. |]
      ~stationary:[| 0.5; 0.5 |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "slow %.2f > fast %.2f" slow fast)
    true (slow > 10. *. fast)

let test_transient_rejects_bad_input () =
  let q = two_state_generator 1. 1. in
  (try
     ignore (Mapqn_ctmc.Transient.distribution_at q ~initial:[| 0.4; 0.4 |] ~t:1.);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Mapqn_ctmc.Transient.distribution_at q ~initial:[| 1.; 0. |] ~t:(-1.));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- Trace ---------------- *)

let sample_map_trace map ~count ~seed =
  Mapqn_map.Trace.sample (Mapqn_prng.Rng.create ~seed) map ~count

let test_trace_estimate_recovers_statistics () =
  let map = Mapqn_map.Fit.map2_exn ~mean:2. ~scv:9. ~gamma2:0.6 () in
  let trace = sample_map_trace map ~count:200_000 ~seed:3 in
  match Mapqn_map.Trace.estimate trace with
  | Error e -> Alcotest.fail e
  | Ok stats ->
    check_float ~tol:0.05 "mean" 2. stats.Mapqn_map.Trace.mean;
    check_float ~tol:0.6 "scv" 9. stats.Mapqn_map.Trace.scv;
    check_float ~tol:0.08 "gamma2" 0.6 stats.Mapqn_map.Trace.gamma2;
    Alcotest.(check bool) "used several lags" true
      (stats.Mapqn_map.Trace.gamma2_lags_used >= 3)

let test_trace_fit_roundtrip () =
  let truth = Mapqn_map.Fit.map2_exn ~mean:1. ~scv:12. ~gamma2:0.5 () in
  let trace = sample_map_trace truth ~count:300_000 ~seed:11 in
  match Mapqn_map.Trace.fit_map2 trace with
  | Error e -> Alcotest.fail e
  | Ok (fitted, _) ->
    check_float ~tol:0.03 "mean" (Process.mean truth) (Process.mean fitted);
    check_float ~tol:1.2 "scv" (Process.scv truth) (Process.scv fitted);
    check_float ~tol:0.06 "lag-1 acf" (Process.acf truth 1) (Process.acf fitted 1)

let test_trace_poisson_gives_exponential () =
  (* A Poisson trace has no significant autocorrelation: the fit must come
     back (nearly) exponential with gamma2 = 0. *)
  let rng = Mapqn_prng.Rng.create ~seed:21 in
  let trace = Array.init 50_000 (fun _ -> Mapqn_prng.Dist.exponential rng ~rate:3.) in
  match Mapqn_map.Trace.fit_map2 trace with
  | Error e -> Alcotest.fail e
  | Ok (fitted, stats) ->
    check_float ~tol:0.02 "mean" (1. /. 3.) (Process.mean fitted);
    check_float ~tol:0.05 "gamma2 ~ 0" 0. stats.Mapqn_map.Trace.gamma2

let test_trace_rejects_bad_input () =
  (match Mapqn_map.Trace.estimate [| 1.; 2. |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too-short trace accepted");
  match Mapqn_map.Trace.estimate (Array.make 200 (-1.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative values accepted"

(* ---------------- Counting ---------------- *)

let test_counting_poisson () =
  let p = Mapqn_map.Builders.exponential ~rate:2. in
  check_float ~tol:1e-9 "mean count" 10. (Mapqn_map.Counting.mean_count p ~t:5.);
  (* Poisson: Var N(t) = E N(t), IDC = 1 at every t. *)
  check_float ~tol:1e-6 "variance = mean" 10.
    (Mapqn_map.Counting.variance_count p ~t:5.);
  check_float ~tol:1e-6 "idc 1" 1. (Mapqn_map.Counting.idc p ~t:5.);
  check_float ~tol:1e-9 "idc limit 1" 1. (Mapqn_map.Counting.idc_limit p)

let test_counting_erlang_limit () =
  (* Erlang-2 renewal process: IDC(inf) = scv = 1/2. *)
  let p = Mapqn_map.Builders.erlang ~k:2 ~rate:2. in
  check_float ~tol:1e-9 "idc limit = scv" 0.5 (Mapqn_map.Counting.idc_limit p)

let test_counting_bursty_idc_grows () =
  let p = Mapqn_map.Fit.map2_exn ~mean:1. ~scv:8. ~gamma2:0.6 () in
  let idc1 = Mapqn_map.Counting.idc p ~t:1. in
  let idc20 = Mapqn_map.Counting.idc p ~t:20. in
  let limit = Mapqn_map.Counting.idc_limit p in
  Alcotest.(check bool)
    (Printf.sprintf "idc grows: %.2f < %.2f <= limit %.2f" idc1 idc20 limit)
    true
    (idc1 < idc20 && idc20 < limit +. 0.5);
  Alcotest.(check bool) "bursty limit >> 1" true (limit > 5.)

let test_counting_idc_approaches_limit () =
  let p = Mapqn_map.Fit.map2_exn ~mean:1. ~scv:4. ~gamma2:0.3 () in
  let limit = Mapqn_map.Counting.idc_limit p in
  let idc200 = Mapqn_map.Counting.idc p ~t:200. in
  check_float ~tol:(0.05 *. limit) "t=200 near limit" limit idc200

(* ---------------- Moment_order experiment ---------------- *)

let test_moment_order_third_beats_second () =
  let t =
    Mapqn_experiments.Moment_order.run
      ~options:{ Mapqn_experiments.Moment_order.instances = 6; population = 10; seed = 5 }
      ()
  in
  Alcotest.(check int) "six instances" 6
    (List.length t.Mapqn_experiments.Moment_order.rows);
  (* Third-order fitting of a MAP(2) is exact (a MAP(2) is characterized by
     three moments plus the ACF decay), so its error must be ~0 and below
     the second-order error. *)
  Alcotest.(check bool) "third order ~exact" true
    (t.Mapqn_experiments.Moment_order.max_err3 < 1e-5);
  Alcotest.(check bool) "second order worse" true
    (t.Mapqn_experiments.Moment_order.mean_err2
    >= t.Mapqn_experiments.Moment_order.mean_err3)

let () =
  Alcotest.run "extensions"
    [
      ( "schweitzer",
        [
          Alcotest.test_case "close to MVA" `Quick test_schweitzer_close_to_mva;
          Alcotest.test_case "large population" `Quick
            test_schweitzer_converges_large_population;
          Alcotest.test_case "population conserved" `Quick
            test_schweitzer_population_conserved;
          Alcotest.test_case "zero population" `Quick test_schweitzer_zero_population;
          Alcotest.test_case "delay station" `Quick test_schweitzer_with_delay;
        ] );
      ( "ops",
        [
          Alcotest.test_case "superpose poisson" `Quick test_superpose_poisson;
          Alcotest.test_case "superpose rates add" `Quick test_superpose_rates_add;
          Alcotest.test_case "thin exponential" `Quick test_thin_exponential;
          Alcotest.test_case "thin rate scaling" `Quick test_thin_preserves_rate_scaling;
          Alcotest.test_case "thin identity" `Quick test_thin_full_identity;
        ] );
      ( "transient",
        [
          Alcotest.test_case "two-state closed form" `Quick
            test_transient_two_state_closed_form;
          Alcotest.test_case "converges" `Quick test_transient_converges_to_stationary;
          Alcotest.test_case "zero time" `Quick test_transient_zero_time;
          Alcotest.test_case "network CTMC" `Quick test_transient_network;
          Alcotest.test_case "expected metric" `Quick test_transient_expected_metric;
          Alcotest.test_case "relaxation monotone" `Quick
            test_relaxation_time_monotone_in_rates;
          Alcotest.test_case "rejects bad input" `Quick test_transient_rejects_bad_input;
        ] );
      ( "trace",
        [
          Alcotest.test_case "estimate recovers statistics" `Slow
            test_trace_estimate_recovers_statistics;
          Alcotest.test_case "fit roundtrip" `Slow test_trace_fit_roundtrip;
          Alcotest.test_case "poisson trace" `Quick test_trace_poisson_gives_exponential;
          Alcotest.test_case "rejects bad input" `Quick test_trace_rejects_bad_input;
        ] );
      ( "counting",
        [
          Alcotest.test_case "poisson" `Quick test_counting_poisson;
          Alcotest.test_case "erlang limit" `Quick test_counting_erlang_limit;
          Alcotest.test_case "bursty idc grows" `Quick test_counting_bursty_idc_grows;
          Alcotest.test_case "idc approaches limit" `Slow
            test_counting_idc_approaches_limit;
        ] );
      ( "moment_order",
        [
          Alcotest.test_case "third beats second" `Slow
            test_moment_order_third_beats_second;
        ] );
    ]
