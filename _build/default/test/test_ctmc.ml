open Mapqn_ctmc
module Network = Mapqn_model.Network
module Station = Mapqn_model.Station

let check_float ?(tol = 1e-9) = Alcotest.(check (float tol))

let exp_station rate = Station.exp ~rate ()

let mmpp_station () =
  Station.map (Mapqn_map.Builders.mmpp2 ~r01:0.2 ~r10:0.1 ~rate0:3. ~rate1:0.3)

(* The paper's Figure 6 example: 3 queues (two exponential, one MMPP(2)),
   N = 2 -> 12 states. *)
let fig6_network population =
  Network.make_exn
    ~stations:[| exp_station 2.; exp_station 1.; mmpp_station () |]
    ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population

(* ---------------- State_space ---------------- *)

let test_state_count_matches_paper_fig6 () =
  let space = State_space.create (fig6_network 2) in
  (* C(2+3-1, 3-1) = 6 compositions x 2 phases = 12 states, the exact state
     count of the paper's Figure 6 diagram. *)
  Alcotest.(check int) "compositions" 6 (State_space.num_compositions space);
  Alcotest.(check int) "phases" 2 (State_space.num_phase_vectors space);
  Alcotest.(check int) "states" 12 (State_space.num_states space)

let test_index_decode_roundtrip () =
  let space = State_space.create (fig6_network 3) in
  for idx = 0 to State_space.num_states space - 1 do
    let qlen, phases = State_space.decode space idx in
    Alcotest.(check int) "roundtrip" idx
      (State_space.index space ~queue_lengths:qlen ~phases)
  done

let test_iter_covers_all_states () =
  let space = State_space.create (fig6_network 4) in
  let seen = Array.make (State_space.num_states space) false in
  State_space.iter space (fun idx qlen _ ->
      Alcotest.(check int) "population conserved"
        (Network.population (fig6_network 4))
        (Array.fold_left ( + ) 0 qlen);
      seen.(idx) <- true);
  Alcotest.(check bool) "all states visited" true (Array.for_all (fun b -> b) seen)

let test_max_states_guard () =
  (try
     ignore (State_space.create ~max_states:5 (fig6_network 2));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---------------- Generator ---------------- *)

let test_generator_rows_sum_zero () =
  let space = State_space.create (fig6_network 3) in
  let q = Generator.build space in
  Array.iteri
    (fun i s ->
      if not (Mapqn_util.Tol.close ~rel:1e-9 ~abs:1e-9 s 0.) then
        Alcotest.failf "row %d sums to %g" i s)
    (Mapqn_sparse.Csr.row_sums q)

let test_generator_off_diagonal_nonneg () =
  let space = State_space.create (fig6_network 3) in
  let q = Generator.build space in
  Mapqn_sparse.Csr.iter q (fun i j v ->
      if i <> j && v < 0. then Alcotest.failf "negative rate at (%d,%d)" i j;
      if i = j && v > 0. then Alcotest.failf "positive diagonal at %d" i)

let test_generator_empty_queue_frozen () =
  (* From a state where station 2 (the MAP) is empty, no transition may
     change its phase. *)
  let net = fig6_network 2 in
  let space = State_space.create net in
  let q = Generator.build space in
  let src = State_space.index space ~queue_lengths:[| 1; 1; 0 |] ~phases:[| 0; 0; 1 |] in
  Mapqn_sparse.Csr.iter_row q src (fun j v ->
      if j <> src && v > 0. then begin
        let qlen, phases = State_space.decode space j in
        (* If the MAP queue is still empty in the target, its phase must be
           unchanged (frozen-on-idle semantics). *)
        if qlen.(2) = 0 && phases.(2) <> 1 then
          Alcotest.fail "idle MAP phase changed"
      end)

(* ---------------- Solution vs closed forms ---------------- *)

(* Two-station cyclic exponential network: a birth-death chain with
   pi(n1) ∝ rho^n1, rho = mu2/mu1. *)
let test_two_station_closed_form () =
  let mu1 = 2. and mu2 = 3. in
  let n = 6 in
  let net = Network.tandem [| exp_station mu1; exp_station mu2 |] ~population:n in
  let sol = Solution.solve net in
  let rho = mu2 /. mu1 in
  let weights = Array.init (n + 1) (fun i -> rho ** float_of_int i) in
  let z = Mapqn_util.Ksum.sum weights in
  let marginal = Solution.queue_length_marginal sol 0 in
  for i = 0 to n do
    check_float ~tol:1e-10 (Printf.sprintf "pi(n1=%d)" i) (weights.(i) /. z) marginal.(i)
  done

let test_distribution_normalized () =
  let sol = Solution.solve (fig6_network 4) in
  check_float ~tol:1e-9 "sums to 1" 1. (Mapqn_util.Ksum.sum (Solution.distribution sol))

let test_flow_balance () =
  (* Throughputs are proportional to visit ratios: X_k = X_0 v_k. *)
  let net = fig6_network 5 in
  let sol = Solution.solve net in
  let v = Network.visit_ratios net in
  let x0 = Solution.throughput sol 0 in
  for k = 1 to 2 do
    check_float ~tol:1e-8
      (Printf.sprintf "X_%d = X_0 v_%d" k k)
      (x0 *. v.(k)) (Solution.throughput sol k)
  done

let test_mva_cross_check_product_form () =
  (* On a purely exponential network the exact CTMC solution must agree
     with exact MVA on every metric. *)
  let net =
    Network.make_exn
      ~stations:[| exp_station 2.; exp_station 1.5; exp_station 0.8 |]
      ~routing:[| [| 0.1; 0.6; 0.3 |]; [| 0.7; 0.; 0.3 |]; [| 1.; 0.; 0. |] |]
      ~population:6
  in
  let sol = Solution.solve net in
  let mva = Mapqn_baselines.Mva.solve net in
  Alcotest.(check bool) "MVA exact here" true (Mapqn_baselines.Mva.is_exact_for net);
  for k = 0 to 2 do
    check_float ~tol:1e-8
      (Printf.sprintf "utilization %d" k)
      mva.Mapqn_baselines.Mva.utilization.(k)
      (Solution.utilization sol k);
    check_float ~tol:1e-8
      (Printf.sprintf "throughput %d" k)
      mva.Mapqn_baselines.Mva.throughput.(k)
      (Solution.throughput sol k);
    check_float ~tol:1e-7
      (Printf.sprintf "queue length %d" k)
      mva.Mapqn_baselines.Mva.mean_queue_length.(k)
      (Solution.mean_queue_length sol k)
  done;
  check_float ~tol:1e-7 "response time" mva.Mapqn_baselines.Mva.system_response_time
    (Solution.system_response_time sol)

let test_map1_station_equals_exp_station () =
  (* An order-1 MAP station must behave exactly like an Exp station. *)
  let routing = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let net_exp =
    Network.make_exn ~stations:[| exp_station 2.; exp_station 1. |] ~routing ~population:4
  in
  let net_map =
    Network.make_exn
      ~stations:
        [| Station.map (Mapqn_map.Builders.exponential ~rate:2.); exp_station 1. |]
      ~routing ~population:4
  in
  let a = Solution.solve net_exp and b = Solution.solve net_map in
  check_float "same utilization" (Solution.utilization a 0) (Solution.utilization b 0);
  check_float "same throughput" (Solution.throughput a 0) (Solution.throughput b 0)

let test_queue_length_moments () =
  let sol = Solution.solve (fig6_network 3) in
  let m1 = Solution.mean_queue_length sol 2 in
  let var = Solution.queue_length_variance sol 2 in
  let m2 = Solution.queue_length_moment sol 2 2 in
  check_float ~tol:1e-9 "variance identity" var (m2 -. (m1 *. m1));
  Alcotest.(check bool) "variance nonnegative" true (var >= 0.)

let test_mean_queue_lengths_sum_to_population () =
  let n = 5 in
  let sol = Solution.solve (fig6_network n) in
  let total =
    Solution.mean_queue_length sol 0 +. Solution.mean_queue_length sol 1
    +. Solution.mean_queue_length sol 2
  in
  check_float ~tol:1e-8 "sum = N" (float_of_int n) total

let test_phase_marginal () =
  let sol = Solution.solve (fig6_network 3) in
  let pm = Solution.phase_marginal sol 2 in
  Alcotest.(check int) "two phases" 2 (Array.length pm);
  check_float ~tol:1e-9 "normalized" 1. (Mapqn_util.Ksum.sum pm)

let test_joint_queue_length () =
  let net = fig6_network 4 in
  let sol = Solution.solve net in
  let joint = Solution.joint_queue_length sol 0 1 in
  (* Joint distribution sums to 1 and its marginals match. *)
  let total = ref 0. in
  for a = 0 to 4 do
    for b = 0 to 4 do
      total := !total +. Mapqn_linalg.Mat.get joint a b
    done
  done;
  check_float ~tol:1e-9 "normalized" 1. !total;
  let marginal0 = Solution.queue_length_marginal sol 0 in
  for a = 0 to 4 do
    let row = ref 0. in
    for b = 0 to 4 do
      row := !row +. Mapqn_linalg.Mat.get joint a b
    done;
    check_float ~tol:1e-9 (Printf.sprintf "marginal at %d" a) marginal0.(a) !row
  done;
  (* Population constraint: P{n_0 = a, n_1 = b} = 0 when a + b > N. *)
  check_float "impossible cell" 0. (Mapqn_linalg.Mat.get joint 4 4)

let test_queue_length_correlation () =
  let net = fig6_network 5 in
  let sol = Solution.solve net in
  let c01 = Solution.queue_length_correlation sol 0 1 in
  let c10 = Solution.queue_length_correlation sol 1 0 in
  check_float ~tol:1e-9 "symmetric" c01 c10;
  Alcotest.(check bool) "in [-1,1]" true (c01 >= -1. && c01 <= 1.);
  (* Fixed population: queues compete for jobs, so the two busiest
     stations' lengths are negatively correlated. *)
  Alcotest.(check bool) (Printf.sprintf "negative (%.3f)" c01) true (c01 < 0.)

let test_population_zero () =
  let sol = Solution.solve (fig6_network 0) in
  check_float "zero response" 0. (Solution.system_response_time sol);
  check_float "zero utilization" 0. (Solution.utilization sol 0)

(* ---------------- Baselines ---------------- *)

let test_mva_balanced_closed_form () =
  (* Balanced M-station cyclic network, demand D each:
     X(n) = n / (D (M + n - 1)). *)
  let d = 0.5 and m = 3 and n = 7 in
  let net =
    Network.tandem (Array.init m (fun _ -> exp_station (1. /. d))) ~population:n
  in
  let mva = Mapqn_baselines.Mva.solve net in
  let expected = float_of_int n /. (d *. float_of_int (m + n - 1)) in
  check_float ~tol:1e-10 "balanced closed form" expected
    mva.Mapqn_baselines.Mva.system_throughput

let test_mva_sweep_monotone () =
  let net = fig6_network 1 in
  let sweep = Mapqn_baselines.Mva.solve_sweep (Network.exponentialize net) 20 in
  for n = 1 to 20 do
    if
      sweep.(n).Mapqn_baselines.Mva.system_throughput
      < sweep.(n - 1).Mapqn_baselines.Mva.system_throughput -. 1e-12
    then Alcotest.failf "throughput decreased at n=%d" n
  done

let test_aba_brackets_mva () =
  let net = Network.exponentialize (fig6_network 8) in
  let mva = Mapqn_baselines.Mva.solve net in
  let aba = Mapqn_baselines.Aba.aba net in
  let bal = Mapqn_baselines.Aba.balanced net in
  let x = mva.Mapqn_baselines.Mva.system_throughput in
  Alcotest.(check bool) "aba lower" true (aba.Mapqn_baselines.Aba.x_lower <= x +. 1e-9);
  Alcotest.(check bool) "aba upper" true (x <= aba.Mapqn_baselines.Aba.x_upper +. 1e-9);
  Alcotest.(check bool) "bjb lower" true (bal.Mapqn_baselines.Aba.x_lower <= x +. 1e-9);
  Alcotest.(check bool) "bjb upper" true (x <= bal.Mapqn_baselines.Aba.x_upper +. 1e-9);
  (* Balanced bounds are at least as tight. *)
  Alcotest.(check bool) "bjb tighter lower" true
    (bal.Mapqn_baselines.Aba.x_lower >= aba.Mapqn_baselines.Aba.x_lower -. 1e-9);
  Alcotest.(check bool) "bjb tighter upper" true
    (bal.Mapqn_baselines.Aba.x_upper <= aba.Mapqn_baselines.Aba.x_upper +. 1e-9)

let test_aba_brackets_exact_map_network () =
  (* ABA bounds remain valid for MAP networks (they only use means). *)
  let net = fig6_network 6 in
  let sol = Solution.solve net in
  let aba = Mapqn_baselines.Aba.aba net in
  let x = Solution.throughput sol 0 in
  Alcotest.(check bool) "lower" true (aba.Mapqn_baselines.Aba.x_lower <= x +. 1e-9);
  Alcotest.(check bool) "upper" true (x <= aba.Mapqn_baselines.Aba.x_upper +. 1e-9)

let test_decomposition_close_on_product_form () =
  let net = Network.exponentialize (fig6_network 6) in
  let exact = Solution.solve net in
  let dec = Mapqn_baselines.Decomposition.solve net in
  let x_exact = Solution.throughput exact 0 in
  let x_dec = dec.Mapqn_baselines.Decomposition.system_throughput in
  (* Poisson-arrival decomposition is approximate: accept 15%. *)
  Alcotest.(check bool) "within 15%" true
    (Mapqn_util.Tol.relative_error ~exact:x_exact x_dec < 0.15)

let test_decomposition_isolated_queue () =
  (* M/M/1/cap closed form check: rho < 1, cap = 3. *)
  let lambda = 1. and mu = 2. in
  let qlen, tput, util =
    Mapqn_baselines.Decomposition.isolated_queue_metrics ~arrival_rate:lambda
      ~capacity:3
      (Mapqn_map.Builders.exponential ~rate:mu)
  in
  let rho = lambda /. mu in
  let z = 1. +. rho +. (rho ** 2.) +. (rho ** 3.) in
  let p n = (rho ** float_of_int n) /. z in
  check_float ~tol:1e-10 "queue length" (p 1 +. (2. *. p 2) +. (3. *. p 3)) qlen;
  check_float ~tol:1e-10 "utilization" (1. -. p 0) util;
  check_float ~tol:1e-10 "throughput" (mu *. (1. -. p 0)) tput

let test_decomposition_fills_population () =
  let net = fig6_network 5 in
  let dec = Mapqn_baselines.Decomposition.solve net in
  let total = Mapqn_util.Ksum.sum dec.Mapqn_baselines.Decomposition.mean_queue_length in
  check_float ~tol:1e-3 "population recovered" 5. total

(* ---------------- property: CTMC = MVA on random product-form ---------- *)

let prop_product_form_matches_mva =
  QCheck.Test.make ~name:"exact CTMC equals MVA on random exponential networks"
    ~count:25
    QCheck.(triple (int_range 2 4) (int_range 1 6) (int_range 0 1_000_000))
    (fun (m, n, seed) ->
      let rng = Mapqn_prng.Rng.create ~seed in
      let routing =
        Array.init m (fun _ ->
            let row = Array.init m (fun _ -> Mapqn_prng.Rng.float rng +. 0.05) in
            let s = Mapqn_util.Ksum.sum row in
            Array.map (fun x -> x /. s) row)
      in
      let stations =
        Array.init m (fun _ ->
            exp_station (Mapqn_prng.Dist.uniform rng ~lo:0.5 ~hi:4.))
      in
      let net = Network.make_exn ~stations ~routing ~population:n in
      let sol = Solution.solve net in
      let mva = Mapqn_baselines.Mva.solve net in
      let ok = ref true in
      for k = 0 to m - 1 do
        if
          Float.abs (Solution.utilization sol k -. mva.Mapqn_baselines.Mva.utilization.(k))
          > 1e-7
          || Float.abs
               (Solution.mean_queue_length sol k
               -. mva.Mapqn_baselines.Mva.mean_queue_length.(k))
             > 1e-6
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "ctmc"
    [
      ( "state_space",
        [
          Alcotest.test_case "fig6 count" `Quick test_state_count_matches_paper_fig6;
          Alcotest.test_case "index/decode roundtrip" `Quick test_index_decode_roundtrip;
          Alcotest.test_case "iter covers all" `Quick test_iter_covers_all_states;
          Alcotest.test_case "max_states guard" `Quick test_max_states_guard;
        ] );
      ( "generator",
        [
          Alcotest.test_case "rows sum zero" `Quick test_generator_rows_sum_zero;
          Alcotest.test_case "off-diagonal sign" `Quick test_generator_off_diagonal_nonneg;
          Alcotest.test_case "idle phase frozen" `Quick test_generator_empty_queue_frozen;
        ] );
      ( "solution",
        [
          Alcotest.test_case "two-station closed form" `Quick test_two_station_closed_form;
          Alcotest.test_case "normalized" `Quick test_distribution_normalized;
          Alcotest.test_case "flow balance" `Quick test_flow_balance;
          Alcotest.test_case "MVA cross-check" `Quick test_mva_cross_check_product_form;
          Alcotest.test_case "MAP(1) = Exp" `Quick test_map1_station_equals_exp_station;
          Alcotest.test_case "queue length moments" `Quick test_queue_length_moments;
          Alcotest.test_case "queue lengths sum to N" `Quick
            test_mean_queue_lengths_sum_to_population;
          Alcotest.test_case "phase marginal" `Quick test_phase_marginal;
          Alcotest.test_case "joint queue length" `Quick test_joint_queue_length;
          Alcotest.test_case "queue correlation" `Quick test_queue_length_correlation;
          Alcotest.test_case "population zero" `Quick test_population_zero;
          QCheck_alcotest.to_alcotest prop_product_form_matches_mva;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "mva balanced closed form" `Quick test_mva_balanced_closed_form;
          Alcotest.test_case "mva sweep monotone" `Quick test_mva_sweep_monotone;
          Alcotest.test_case "aba brackets mva" `Quick test_aba_brackets_mva;
          Alcotest.test_case "aba brackets exact MAP" `Quick
            test_aba_brackets_exact_map_network;
          Alcotest.test_case "decomposition near product form" `Quick
            test_decomposition_close_on_product_form;
          Alcotest.test_case "isolated M/M/1/cap" `Quick test_decomposition_isolated_queue;
          Alcotest.test_case "decomposition population" `Quick
            test_decomposition_fills_population;
        ] );
    ]
