open Mapqn_linalg

let check_float = Alcotest.(check (float 1e-9))

let check_vec ?(tol = 1e-9) msg expected got =
  if not (Mapqn_util.Tol.close_arrays ~rel:tol ~abs:tol expected got) then
    Alcotest.failf "%s: expected %s got %s" msg
      (Format.asprintf "%a" Vec.pp expected)
      (Format.asprintf "%a" Vec.pp got)

(* ---------------- Vec ---------------- *)

let test_vec_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  check_vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  check_float "dot" 32. (Vec.dot a b);
  check_float "norm1" 6. (Vec.norm1 a);
  check_float "norm2" (sqrt 14.) (Vec.norm2 a);
  check_float "norm_inf" 3. (Vec.norm_inf a)

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy ~alpha:2. ~x:[| 3.; 4. |] ~y;
  check_vec "axpy" [| 7.; 9. |] y

let test_vec_normalize1 () =
  check_vec "normalize" [| 0.25; 0.75 |] (Vec.normalize1 [| 1.; 3. |]);
  Alcotest.check_raises "zero sum" (Invalid_argument "Vec.normalize1: non-positive sum")
    (fun () -> ignore (Vec.normalize1 [| 0.; 0. |]))

let test_vec_max_abs_diff () =
  check_float "diff" 2. (Vec.max_abs_diff [| 1.; 5. |] [| 1.; 3. |])

(* ---------------- Mat ---------------- *)

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  Alcotest.(check bool) "product" true
    (Mat.equal c (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |]))

let test_mat_identity_neutral () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check bool) "I*A = A" true (Mat.equal (Mat.mul (Mat.identity 2) a) a);
  Alcotest.(check bool) "A*I = A" true (Mat.equal (Mat.mul a (Mat.identity 2)) a)

let test_mat_transpose () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check int) "cols" 2 (Mat.cols t);
  check_float "entry" 6. (Mat.get t 2 1)

let test_mat_vec_products () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_vec "A x" [| 5.; 11. |] (Mat.mat_vec a [| 1.; 2. |]);
  check_vec "x A" [| 7.; 10. |] (Mat.vec_mat [| 1.; 2. |] a)

let test_mat_pow () =
  let a = Mat.of_arrays [| [| 1.; 1. |]; [| 0.; 1. |] |] in
  let a5 = Mat.pow a 5 in
  check_float "upper entry is 5" 5. (Mat.get a5 0 1);
  Alcotest.(check bool) "pow 0 = I" true (Mat.equal (Mat.pow a 0) (Mat.identity 2))

let test_mat_row_sums_diag () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_vec "row sums" [| 3.; 7. |] (Mat.row_sums a);
  check_vec "diag" [| 1.; 4. |] (Mat.diag a)

let test_mat_shape_mismatch () =
  let a = Mat.of_arrays [| [| 1.; 2. |] |] in
  Alcotest.check_raises "mul mismatch" (Invalid_argument "Mat.mul: inner dim mismatch")
    (fun () -> ignore (Mat.mul a a))

(* ---------------- Lu ---------------- *)

let test_lu_solve () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve a [| 5.; 10. |] in
  check_vec "solution" [| 1.; 3. |] x

let test_lu_needs_pivoting () =
  (* Zero pivot in the (0,0) position: fails without row exchanges. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Lu.solve a [| 2.; 3. |] in
  check_vec "pivoted solution" [| 3.; 2. |] x

let test_lu_inverse () =
  let a = Mat.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Lu.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.equal ~rel:1e-9 ~abs:1e-9 (Mat.mul a inv) (Mat.identity 2))

let test_lu_determinant () =
  let a = Mat.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  check_float "det" 10. (Lu.determinant (Lu.factorize a));
  let swapped = Mat.of_arrays [| [| 2.; 6. |]; [| 4.; 7. |] |] in
  check_float "det sign flips" (-10.) (Lu.determinant (Lu.factorize swapped))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  (try
     ignore (Lu.factorize a);
     Alcotest.fail "expected Singular"
   with Lu.Singular _ -> ())

let test_lu_solve_mat () =
  let a = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  let b = Mat.of_arrays [| [| 2.; 4. |]; [| 8.; 12. |] |] in
  let x = Lu.solve_mat (Lu.factorize a) b in
  Alcotest.(check bool) "columns solved" true
    (Mat.equal x (Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 3. |] |]))

(* ---------------- Gth ---------------- *)

let test_gth_dtmc_two_state () =
  (* P = [[0.9 0.1];[0.2 0.8]] has stationary (2/3, 1/3). *)
  let p = Mat.of_arrays [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |] in
  check_vec "stationary" [| 2. /. 3.; 1. /. 3. |] (Gth.dtmc p)

let test_gth_ctmc_birth_death () =
  (* Birth-death with birth 1, death 2: pi_i ∝ (1/2)^i on 4 states. *)
  let q =
    Mat.of_arrays
      [|
        [| -1.; 1.; 0.; 0. |];
        [| 2.; -3.; 1.; 0. |];
        [| 0.; 2.; -3.; 1. |];
        [| 0.; 0.; 2.; -2. |];
      |]
  in
  let pi = Gth.ctmc q in
  let z = 1. +. 0.5 +. 0.25 +. 0.125 in
  check_vec "geometric stationary"
    [| 1. /. z; 0.5 /. z; 0.25 /. z; 0.125 /. z |]
    pi

let test_gth_stationarity_property () =
  (* pi Q = 0 for a random-ish generator. *)
  let q =
    Mat.of_arrays
      [|
        [| -3.; 1.; 2. |];
        [| 4.; -5.; 1. |];
        [| 0.5; 0.5; -1. |];
      |]
  in
  let pi = Gth.ctmc q in
  check_float "sums to one" 1. (Vec.sum pi);
  let r = Mat.vec_mat pi q in
  Alcotest.(check bool) "residual small" true (Vec.norm_inf r < 1e-12)

let test_gth_rejects_bad_rows () =
  let p = Mat.of_arrays [| [| 0.5; 0.4 |]; [| 0.2; 0.8 |] |] in
  (try
     ignore (Gth.dtmc p);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_gth_single_state () =
  check_vec "singleton" [| 1. |] (Gth.ctmc (Mat.of_arrays [| [| 0. |] |]))

(* ---------------- Kron ---------------- *)

let test_kron_product () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 0.; 5. |]; [| 6.; 7. |] |] in
  let k = Kron.product a b in
  Alcotest.(check int) "rows" 4 (Mat.rows k);
  check_float "(0,1)" 5. (Mat.get k 0 1);
  check_float "(0,3)" 10. (Mat.get k 0 3);
  check_float "(3,2)" 24. (Mat.get k 3 2)

let test_kron_sum_dim () =
  let a = Mat.of_arrays [| [| -1.; 1. |]; [| 1.; -1. |] |] in
  let s = Kron.sum a a in
  Alcotest.(check int) "dim 4" 4 (Mat.rows s);
  (* Kronecker sum of generators is a generator: rows sum to 0. *)
  check_vec "rows sum 0" [| 0.; 0.; 0.; 0. |] (Mat.row_sums s)

let test_kron_mixed_product_identity () =
  (* (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD) *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 0.; 1. |] |] in
  let b = Mat.of_arrays [| [| 2.; 0. |]; [| 1.; 1. |] |] in
  let c = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 0. |] |] in
  let d = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let lhs = Mat.mul (Kron.product a b) (Kron.product c d) in
  let rhs = Kron.product (Mat.mul a c) (Mat.mul b d) in
  Alcotest.(check bool) "identity holds" true (Mat.equal lhs rhs)

(* ---------------- Eig ---------------- *)

let test_eig_2x2 () =
  let m = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; -3. |] |] in
  (match Eig.eigenvalues_2x2 m with
  | Ok (l1, l2) ->
    check_float "dominant" (-3.) l1;
    check_float "other" 2. l2
  | Error _ -> Alcotest.fail "expected real eigenvalues");
  let rot = Mat.of_arrays [| [| 0.; -1. |]; [| 1.; 0. |] |] in
  (match Eig.eigenvalues_2x2 rot with
  | Ok _ -> Alcotest.fail "rotation has complex eigenvalues"
  | Error _ -> ())

let test_power_iteration () =
  let m = Mat.of_arrays [| [| 3.; 1. |]; [| 1.; 3. |] |] in
  match Eig.power_iteration m with
  | Ok (l, v) ->
    Alcotest.(check (float 1e-6)) "dominant eigenvalue" 4. l;
    (* Eigenvector proportional to (1,1). *)
    Alcotest.(check (float 1e-5)) "eigenvector ratio" 1. (v.(0) /. v.(1))
  | Error { Eig.iterations; residual } ->
    Alcotest.failf "no convergence after %d iterations (residual %g)" iterations
      residual

let test_subdominant_stochastic_2x2 () =
  let p = Mat.of_arrays [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |] in
  match Eig.subdominant_stochastic p with
  | Some g -> Alcotest.(check (float 1e-9)) "gamma2 = 1 - 0.1 - 0.2" 0.7 g
  | None -> Alcotest.fail "expected eigenvalue"

let test_subdominant_stochastic_3x3 () =
  (* Reversible 3-state chain: subdominant eigenvalue is real. *)
  let p =
    Mat.of_arrays
      [|
        [| 0.5; 0.5; 0. |];
        [| 0.25; 0.5; 0.25 |];
        [| 0.; 0.5; 0.5 |];
      |]
  in
  match Eig.subdominant_stochastic p with
  | Some g -> Alcotest.(check (float 1e-6)) "second eigenvalue" 0.5 g
  | None -> Alcotest.fail "expected convergence"

(* ---------------- Properties ---------------- *)

let gen_generator =
  (* Random small irreducible CTMC generator with strictly positive
     off-diagonal rates. *)
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* rates = array_size (return (n * n)) (float_range 0.05 5.) in
    return
      (Mat.init ~rows:n ~cols:n (fun i j ->
           if i = j then 0. else rates.((i * n) + j))
      |> fun off ->
      Mat.init ~rows:n ~cols:n (fun i j ->
          if i = j then -.Mapqn_util.Ksum.sum (Mat.row off i) else Mat.get off i j)))

let arb_generator = QCheck.make gen_generator

let prop_gth_stationary =
  QCheck.Test.make ~name:"gth ctmc: pi Q = 0 and pi sums to 1" ~count:100
    arb_generator (fun q ->
      let pi = Gth.ctmc q in
      let ok_sum = Mapqn_util.Tol.close (Vec.sum pi) 1. in
      let ok_res = Vec.norm_inf (Mat.vec_mat pi q) < 1e-9 in
      let ok_pos = Array.for_all (fun x -> x > 0.) pi in
      ok_sum && ok_res && ok_pos)

let prop_lu_solve_residual =
  QCheck.Test.make ~name:"lu solve: A x = b residual small" ~count:100
    QCheck.(
      pair (int_range 1 8) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Mapqn_prng.Rng.create ~seed in
      let a =
        Mat.init ~rows:n ~cols:n (fun i j ->
            Mapqn_prng.Dist.uniform rng ~lo:(-1.) ~hi:1.
            +. if i = j then 4. else 0.)
      in
      let b = Array.init n (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:(-5.) ~hi:5.) in
      let x = Lu.solve a b in
      Vec.max_abs_diff (Mat.mat_vec a x) b < 1e-8)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "normalize1" `Quick test_vec_normalize1;
          Alcotest.test_case "max_abs_diff" `Quick test_vec_max_abs_diff;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "identity" `Quick test_mat_identity_neutral;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "mat/vec products" `Quick test_mat_vec_products;
          Alcotest.test_case "pow" `Quick test_mat_pow;
          Alcotest.test_case "row sums & diag" `Quick test_mat_row_sums_diag;
          Alcotest.test_case "shape mismatch" `Quick test_mat_shape_mismatch;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "determinant" `Quick test_lu_determinant;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "solve_mat" `Quick test_lu_solve_mat;
          QCheck_alcotest.to_alcotest prop_lu_solve_residual;
        ] );
      ( "gth",
        [
          Alcotest.test_case "dtmc two-state" `Quick test_gth_dtmc_two_state;
          Alcotest.test_case "ctmc birth-death" `Quick test_gth_ctmc_birth_death;
          Alcotest.test_case "stationarity" `Quick test_gth_stationarity_property;
          Alcotest.test_case "rejects bad rows" `Quick test_gth_rejects_bad_rows;
          Alcotest.test_case "single state" `Quick test_gth_single_state;
          QCheck_alcotest.to_alcotest prop_gth_stationary;
        ] );
      ( "kron",
        [
          Alcotest.test_case "product" `Quick test_kron_product;
          Alcotest.test_case "sum dims" `Quick test_kron_sum_dim;
          Alcotest.test_case "mixed product" `Quick test_kron_mixed_product_identity;
        ] );
      ( "eig",
        [
          Alcotest.test_case "2x2" `Quick test_eig_2x2;
          Alcotest.test_case "power iteration" `Quick test_power_iteration;
          Alcotest.test_case "subdominant 2x2" `Quick test_subdominant_stochastic_2x2;
          Alcotest.test_case "subdominant 3x3" `Quick test_subdominant_stochastic_3x3;
        ] );
    ]
