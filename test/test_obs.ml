open Mapqn_obs

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Metrics registry ---------------- *)

let value_of ?registry ?(labels = []) name =
  let labels = List.sort compare labels in
  match
    List.find_opt
      (fun s -> s.Metrics.labels = labels)
      (Metrics.find ?registry name)
  with
  | Some { Metrics.value = Metrics.Counter v; _ }
  | Some { Metrics.value = Metrics.Gauge v; _ } ->
    v
  | Some { Metrics.value = Metrics.Histogram _; _ } ->
    Alcotest.fail (name ^ ": histogram, expected scalar")
  | None -> Alcotest.fail (name ^ ": not found")

let test_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "events_total" in
  Metrics.inc c;
  Metrics.inc ~by:2.5 c;
  check_float "accumulated" 3.5 (value_of ~registry:r "events_total");
  (* Same identity: the registration is shared, not duplicated. *)
  let c' = Metrics.counter ~registry:r "events_total" in
  Metrics.inc c';
  check_float "shared identity" 4.5 (value_of ~registry:r "events_total");
  Alcotest.(check int) "one sample" 1 (List.length (Metrics.find ~registry:r "events_total"));
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.inc: negative increment") (fun () ->
      Metrics.inc ~by:(-1.) c)

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "depth" in
  Metrics.set g 7.;
  Metrics.add g (-2.);
  check_float "set+add" 5. (value_of ~registry:r "depth");
  Metrics.set_max g 3.;
  check_float "set_max keeps larger" 5. (value_of ~registry:r "depth");
  Metrics.set_max g 9.;
  check_float "set_max raises" 9. (value_of ~registry:r "depth")

let test_labels () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r ~labels:[ ("station", "0") ] "visits_total" in
  let b = Metrics.counter ~registry:r ~labels:[ ("station", "1") ] "visits_total" in
  Metrics.inc a;
  Metrics.inc b;
  Metrics.inc b;
  check_float "station 0" 1.
    (value_of ~registry:r ~labels:[ ("station", "0") ] "visits_total");
  check_float "station 1" 2.
    (value_of ~registry:r ~labels:[ ("station", "1") ] "visits_total");
  Alcotest.(check int) "two samples" 2
    (List.length (Metrics.find ~registry:r "visits_total"))

let test_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "x_total");
  (try
     ignore (Metrics.gauge ~registry:r "x_total");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_histogram_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 10. |] "h" in
  (* le semantics: a value equal to a bound lands in that bound's bucket. *)
  Metrics.observe h 1.;
  Metrics.observe h 0.5;
  Metrics.observe h 10.;
  Metrics.observe h 10.0001;
  match Metrics.find ~registry:r "h" with
  | [ { Metrics.value = Metrics.Histogram d; _ } ] ->
    Alcotest.(check int) "count" 4 d.Metrics.count;
    check_float "sum" 21.5001 d.Metrics.sum;
    Alcotest.(check int) "buckets incl overflow" 3 (Array.length d.Metrics.buckets);
    let bound i = fst d.Metrics.buckets.(i) and n i = snd d.Metrics.buckets.(i) in
    check_float "bound 0" 1. (bound 0);
    (* Bucket counts are cumulative (Prometheus le semantics). *)
    Alcotest.(check int) "le 1" 2 (n 0);
    Alcotest.(check int) "le 10" 3 (n 1);
    Alcotest.(check bool) "overflow bound" true (fst d.Metrics.buckets.(2) = infinity);
    Alcotest.(check int) "overflow count = total" 4 (n 2)
  | _ -> Alcotest.fail "expected exactly one histogram sample"

let test_reset_in_place () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "n_total" in
  Metrics.inc ~by:5. c;
  Metrics.reset ~registry:r ();
  check_float "zeroed" 0. (value_of ~registry:r "n_total");
  (* The old handle still points at the registered cell. *)
  Metrics.inc c;
  check_float "handle survives reset" 1. (value_of ~registry:r "n_total")

(* ---------------- Spans ---------------- *)

(* A deterministic clock: every call advances time by 1 second, so a
   span's duration equals the number of clock reads (its own two plus
   two per nested span). *)
let ticking_clock () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 1.;
    v

let test_span_nesting () =
  let c = Span.create ~clock:(ticking_clock ()) () in
  let result =
    Span.with_ ~collector:c "outer" (fun () ->
        Span.with_ ~collector:c "inner" (fun () -> ());
        Span.with_ ~collector:c "inner" (fun () -> ());
        42)
  in
  Alcotest.(check int) "return value" 42 result;
  let entries = Span.snapshot ~collector:c () in
  Alcotest.(check int) "two paths" 2 (List.length entries);
  let find path = List.find (fun e -> e.Span.path = path) entries in
  let outer = find [ "outer" ] and inner = find [ "outer"; "inner" ] in
  Alcotest.(check int) "outer count" 1 outer.Span.count;
  Alcotest.(check int) "inner aggregated" 2 inner.Span.count;
  (* Clock reads: outer start(0) | inner 1-2 | inner 3-4 | outer end(5). *)
  check_float "outer total" 5. outer.Span.total;
  check_float "inner total" 2. inner.Span.total;
  check_float "inner max" 1. inner.Span.max_;
  check_float "total lookup" 2.
    (Option.get (Span.total ~collector:c [ "outer"; "inner" ]))

let test_span_exception_safe () =
  let c = Span.create ~clock:(ticking_clock ()) () in
  (try Span.with_ ~collector:c "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  (* The failed span is closed: a new span is a root, not a child. *)
  Span.with_ ~collector:c "after" (fun () -> ());
  let paths = List.map (fun e -> e.Span.path) (Span.snapshot ~collector:c ()) in
  Alcotest.(check bool) "boom recorded" true (List.mem [ "boom" ] paths);
  Alcotest.(check bool) "after is a root" true (List.mem [ "after" ] paths)

let test_span_bad_name () =
  let c = Span.create () in
  try
    Span.with_ ~collector:c "a/b" (fun () -> ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- Exporters ---------------- *)

(* A small fixed snapshot so renders are golden-testable. *)
let golden_metrics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"Pivots." "pivots_total" in
  Metrics.inc ~by:12. c;
  let g = Metrics.gauge ~registry:r ~labels:[ ("method", "gth") ] "residual" in
  Metrics.set g 0.5;
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "steps" in
  Metrics.observe h 0.5;
  Metrics.observe h 5.;
  Metrics.snapshot ~registry:r ()

let golden_spans () =
  let c = Span.create ~clock:(ticking_clock ()) () in
  Span.with_ ~collector:c "solve" (fun () ->
      Span.with_ ~collector:c "lp" (fun () -> ()));
  Span.snapshot ~collector:c ()

let test_export_json () =
  let s =
    Export.json ~metrics:(golden_metrics ()) ~spans:(golden_spans ())
  in
  Alcotest.(check string) "json document"
    ("{\"metrics\":[{\"name\":\"pivots_total\",\"labels\":{},\"type\":\"counter\",\"value\":12},"
   ^ "{\"name\":\"residual\",\"labels\":{\"method\":\"gth\"},\"type\":\"gauge\",\"value\":0.5},"
   ^ "{\"name\":\"steps\",\"labels\":{},\"type\":\"histogram\",\"count\":2,\"sum\":5.5,"
   ^ "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":1},{\"le\":\"+Inf\",\"count\":2}]}],"
   ^ "\"spans\":[{\"path\":\"solve\",\"count\":1,\"total_seconds\":3,\"max_seconds\":3},"
   ^ "{\"path\":\"solve/lp\",\"count\":1,\"total_seconds\":1,\"max_seconds\":1}]}\n")
    s;
  (* jsonl: one object per line, kind-tagged. *)
  let lines =
    String.split_on_char '\n'
      (String.trim
         (Export.json_lines ~metrics:(golden_metrics ()) ~spans:(golden_spans ())))
  in
  Alcotest.(check int) "jsonl line count" 5 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "tagged" true
        (String.length l > 9
        && (String.sub l 0 9 = "{\"kind\":\"")))
    lines

let test_export_prometheus () =
  let s =
    Export.prometheus ~metrics:(golden_metrics ()) ~spans:(golden_spans ())
  in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    Alcotest.(check bool) ("contains " ^ sub) true (go 0)
  in
  has "# TYPE mapqn_pivots_total counter";
  has "mapqn_pivots_total 12";
  has "mapqn_residual{method=\"gth\"} 0.5";
  (* Cumulative le buckets, +Inf equal to _count. *)
  has "mapqn_steps_bucket{le=\"1\"} 1";
  has "mapqn_steps_bucket{le=\"+Inf\"} 2";
  has "mapqn_steps_count 2";
  has "mapqn_span_duration_seconds_total{path=\"solve/lp\"} 1"

let test_export_table () =
  let s = Export.table ~metrics:(golden_metrics ()) ~spans:(golden_spans ()) in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "mentions pivots" true
    (List.exists
       (fun l -> String.length l >= 12 && String.sub l 0 12 = "pivots_total")
       lines)

let test_format_of_string () =
  Alcotest.(check bool) "json" true (Export.format_of_string "json" = Ok Export.Json);
  Alcotest.(check bool) "jsonl" true
    (Export.format_of_string "jsonl" = Ok Export.Json_lines);
  (match Export.format_of_string "xml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "xml should be rejected");
  Alcotest.(check int) "four formats" 4 (List.length Export.format_names)

(* ---------------- Exporter round-trips ---------------- *)

(* The machine formats must parse back to the same values: JSON and
   JSONL via the Json module, Prometheus via a minimal line scanner. *)

let json_get path doc =
  let rec go doc = function
    | [] -> doc
    | key :: rest -> (
      match Json.member key doc with
      | Some v -> go v rest
      | None -> Alcotest.fail ("missing JSON member " ^ key))
  in
  go doc path

let metric_named name ms =
  match
    List.find_opt
      (fun m -> Json.member "name" m = Some (Json.String name))
      ms
  with
  | Some m -> m
  | None -> Alcotest.fail ("metric not in export: " ^ name)

let check_golden_metric_objects ms =
  let counter = metric_named "pivots_total" ms in
  check_float "counter value" 12.
    (Option.get (Json.get_float (json_get [ "value" ] counter)));
  let gauge = metric_named "residual" ms in
  check_float "gauge value" 0.5
    (Option.get (Json.get_float (json_get [ "value" ] gauge)));
  Alcotest.(check (option string)) "gauge label" (Some "gth")
    (Json.get_string (json_get [ "labels"; "method" ] gauge));
  let histo = metric_named "steps" ms in
  Alcotest.(check (option int)) "histogram count" (Some 2)
    (Json.get_int (json_get [ "count" ] histo));
  check_float "histogram sum" 5.5
    (Option.get (Json.get_float (json_get [ "sum" ] histo)));
  match Json.get_list (json_get [ "buckets" ] histo) with
  | Some [ b1; b2; binf ] ->
    Alcotest.(check (option int)) "le 1 cumulative" (Some 1)
      (Json.get_int (json_get [ "count" ] b1));
    Alcotest.(check (option int)) "le 2 cumulative" (Some 1)
      (Json.get_int (json_get [ "count" ] b2));
    Alcotest.(check (option string)) "+Inf bound is a string" (Some "+Inf")
      (Json.get_string (json_get [ "le" ] binf));
    Alcotest.(check (option int)) "+Inf equals total" (Some 2)
      (Json.get_int (json_get [ "count" ] binf))
  | _ -> Alcotest.fail "expected three histogram buckets"

let test_roundtrip_json () =
  let doc =
    Json.parse_exn
      (Export.json ~metrics:(golden_metrics ()) ~spans:(golden_spans ()))
  in
  check_golden_metric_objects
    (Option.get (Json.get_list (json_get [ "metrics" ] doc)));
  match Json.get_list (json_get [ "spans" ] doc) with
  | Some (root :: _) ->
    check_float "span total" 3.
      (Option.get (Json.get_float (json_get [ "total_seconds" ] root)))
  | _ -> Alcotest.fail "expected spans in export"

let test_roundtrip_jsonl () =
  let lines =
    String.split_on_char '\n'
      (String.trim
         (Export.json_lines ~metrics:(golden_metrics ())
            ~spans:(golden_spans ())))
  in
  let docs = List.map Json.parse_exn lines in
  let ms =
    List.filter_map
      (fun d ->
        if Json.member "kind" d = Some (Json.String "metric") then
          Some (json_get [ "metric" ] d)
        else None)
      docs
  in
  check_golden_metric_objects ms;
  Alcotest.(check int) "two span lines" 2
    (List.length
       (List.filter
          (fun d -> Json.member "kind" d = Some (Json.String "span"))
          docs))

let test_roundtrip_prometheus () =
  let text =
    Export.prometheus ~metrics:(golden_metrics ()) ~spans:(golden_spans ())
  in
  let value_of_line prefix =
    let matching =
      List.filter
        (fun l ->
          String.length l > String.length prefix
          && String.sub l 0 (String.length prefix) = prefix)
        (String.split_on_char '\n' text)
    in
    match matching with
    | [ line ] ->
      let i = String.rindex line ' ' in
      float_of_string (String.sub line (i + 1) (String.length line - i - 1))
    | _ -> Alcotest.fail ("expected exactly one line starting with " ^ prefix)
  in
  check_float "counter" 12. (value_of_line "mapqn_pivots_total ");
  check_float "labeled gauge" 0.5 (value_of_line "mapqn_residual{method=\"gth\"}");
  check_float "sum" 5.5 (value_of_line "mapqn_steps_sum");
  let count = value_of_line "mapqn_steps_count" in
  check_float "count" 2. count;
  let b1 = value_of_line "mapqn_steps_bucket{le=\"1\"}" in
  let b2 = value_of_line "mapqn_steps_bucket{le=\"2\"}" in
  let binf = value_of_line "mapqn_steps_bucket{le=\"+Inf\"}" in
  Alcotest.(check bool) "buckets monotone" true (b1 <= b2 && b2 <= binf);
  check_float "+Inf bucket equals count" count binf

(* ---------------- Trace ring buffer and sinks ---------------- *)

let mark i = Trace.Mark { name = "m"; detail = string_of_int i }

let test_trace_ring () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit t (mark i)
  done;
  Alcotest.(check int) "emitted" 10 (Trace.emitted t);
  Alcotest.(check int) "retained" 4 (Trace.retained t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let details =
    List.map
      (fun (_, e) ->
        match e with Trace.Mark m -> m.detail | _ -> Alcotest.fail "kind")
      (Trace.events t)
  in
  (* Lossy by overwriting the oldest: the last [capacity] events survive,
     oldest first. *)
  Alcotest.(check (list string)) "newest survive, oldest first"
    [ "7"; "8"; "9"; "10" ] details;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.emitted t);
  Alcotest.(check int) "cleared retained" 0 (Trace.retained t)

let test_trace_monotonic_timestamps () =
  (* A clock that steps backwards: emission must clamp. *)
  let ticks = ref [ 5.; 3.; 9.; 1.; 2. ] in
  let clock () =
    match !ticks with
    | t :: rest ->
      ticks := rest;
      t
    | [] -> 100.
  in
  let t = Trace.create ~clock () in
  for i = 1 to 5 do
    Trace.emit t (mark i)
  done;
  let ts = List.map fst (Trace.events t) in
  Alcotest.(check (list (float 0.))) "clamped non-decreasing"
    [ 5.; 5.; 9.; 9.; 9. ] ts

let test_trace_global () =
  Alcotest.(check bool) "disabled by default" false (Trace.is_enabled ());
  Trace.record (mark 0) (* no-op, must not raise *);
  Trace.enable ~capacity:16 ();
  Alcotest.(check bool) "enabled" true (Trace.is_enabled ());
  Trace.record (mark 1);
  (match Trace.current () with
  | Some t -> Alcotest.(check int) "recorded" 1 (Trace.emitted t)
  | None -> Alcotest.fail "no global trace while enabled");
  Trace.disable ();
  Alcotest.(check bool) "disabled again" false (Trace.is_enabled ());
  Alcotest.(check bool) "trace dropped" true (Trace.current () = None)

let sample_trace () =
  let clock =
    let t = ref 0. in
    fun () ->
      t := !t +. 0.001;
      !t
  in
  let t = Trace.create ~clock () in
  Trace.emit t
    (Trace.Pivot
       {
         solver = "revised";
         iteration = 1;
         entering = 7;
         leaving = 3;
         step = 0.25;
         objective = 41.5;
         degenerate = false;
       });
  Trace.emit t (Trace.Refactor { solver = "revised"; eta_nnz = 120 });
  Trace.emit t
    (Trace.Sweep { solver = "stationary.power"; iteration = 2; delta = 1e-9 });
  Trace.emit t (Trace.Batch { events = 8192; sim_time = 12.5; heap_size = 3 });
  Trace.emit t
    (Trace.Certificate
       {
         label = "min";
         primal_residual = 1e-12;
         dual_violation = 0.;
         comp_slack = 1e-10;
         accepted = true;
       });
  t

let test_trace_jsonl_sink () =
  let lines =
    String.split_on_char '\n'
      (String.trim (Trace.render Trace.Jsonl (sample_trace ())))
  in
  Alcotest.(check int) "one line per event" 5 (List.length lines);
  let docs = List.map Json.parse_exn lines in
  let pivot = List.hd docs in
  Alcotest.(check (option string)) "event tag" (Some "pivot")
    (Json.get_string (json_get [ "event" ] pivot));
  Alcotest.(check (option int)) "entering" (Some 7)
    (Json.get_int (json_get [ "entering" ] pivot));
  check_float "objective" 41.5
    (Option.get (Json.get_float (json_get [ "objective" ] pivot)));
  (* Timestamps survive the round-trip in order. *)
  let ts =
    List.map (fun d -> Option.get (Json.get_float (json_get [ "ts" ] d))) docs
  in
  Alcotest.(check bool) "timestamps sorted" true (List.sort compare ts = ts)

let test_trace_chrome_sink () =
  let doc = Json.parse_exn (Trace.render Trace.Chrome (sample_trace ())) in
  Alcotest.(check (option string)) "time unit" (Some "ms")
    (Json.get_string (json_get [ "displayTimeUnit" ] doc));
  let evs = Option.get (Json.get_list (json_get [ "traceEvents" ] doc)) in
  (* 5 instants plus counter tracks for pivot, sweep and batch. *)
  Alcotest.(check int) "trace events" 8 (List.length evs);
  List.iter
    (fun e ->
      (* The fields Perfetto requires on every event. *)
      List.iter
        (fun k ->
          if Json.member k e = None then
            Alcotest.fail ("chrome event missing field " ^ k))
        [ "name"; "ph"; "ts"; "pid"; "tid" ];
      let ts = Option.get (Json.get_float (json_get [ "ts" ] e)) in
      Alcotest.(check bool) "relative microseconds" true (ts >= 0.))
    evs;
  let phases =
    List.map (fun e -> Option.get (Json.get_string (json_get [ "ph" ] e))) evs
  in
  Alcotest.(check bool) "has instants and counters" true
    (List.mem "i" phases && List.mem "C" phases)

let prop_trace_drop_accounting =
  QCheck.Test.make ~name:"trace ring: dropped = emitted - retained" ~count:200
    QCheck.(pair (int_range 1 50) (int_range 0 200))
    (fun (capacity, n) ->
      let t = Trace.create ~capacity () in
      for i = 1 to n do
        Trace.emit t (mark i)
      done;
      Trace.emitted t = n
      && Trace.retained t = min n capacity
      && Trace.dropped t = Trace.emitted t - Trace.retained t
      && List.length (Trace.events t) = Trace.retained t)

(* ---------------- End-to-end: solver telemetry ---------------- *)

let test_solver_telemetry () =
  Metrics.reset ();
  Span.reset ();
  let net = Mapqn_workloads.Tandem.network ~population:4 () in
  let b = Mapqn_core.Bounds.create_exn net in
  ignore (Mapqn_core.Bounds.response_time b);
  let sol = Mapqn_ctmc.Solution.solve net in
  ignore (Mapqn_ctmc.Solution.system_response_time sol);
  let positive name =
    Alcotest.(check bool) (name ^ " > 0") true (value_of name > 0.)
  in
  (* The default backend is the revised simplex... *)
  positive "revised_pivots_total";
  positive "revised_solves_total";
  (* ...and the dense tableau records its own counter family. *)
  let bd = Mapqn_core.Bounds.create_exn ~solver:Mapqn_core.Bounds.Dense net in
  ignore (Mapqn_core.Bounds.response_time bd);
  positive "simplex_pivots_total";
  positive "simplex_solves_total";
  (* Every solved objective carries an optimality certificate... *)
  positive "bounds_certificates_total";
  check_float "no certificate failures" 0.
    (value_of "bounds_certificate_failures_total");
  (* ...and the worst primal residual of the run stays far inside the
     1e-6 acceptance tolerance. *)
  Alcotest.(check bool) "primal residual tiny" true
    (value_of "bounds_certificate_primal_residual" <= 1e-8);
  positive "lp_rows";
  positive "lp_vars";
  positive "ctmc_states";
  positive "ctmc_generator_nnz";
  positive "gth_eliminations_total";
  let paths = List.map (fun e -> e.Span.path) (Span.snapshot ()) in
  Alcotest.(check bool) "bounds.create span" true
    (List.mem [ "bounds.create" ] paths);
  Alcotest.(check bool) "nested revised phase1 span" true
    (List.mem [ "bounds.create"; "bounds.prepare"; "revised.phase1" ] paths);
  Alcotest.(check bool) "nested dense phase1 span" true
    (List.mem [ "bounds.create"; "bounds.prepare"; "simplex.phase1" ] paths);
  Alcotest.(check bool) "stationary span under ctmc.solve" true
    (List.exists
       (fun p -> match p with "ctmc.solve" :: _ :: _ -> true | _ -> false)
       paths)

(* ---------------- Profiling attribution ---------------- *)

let test_prof_self_time () =
  (* Clock reads: outer start(0) | inner 1-2 | inner 3-4 | outer end(5),
     so outer total = 5, the two inners contribute 2, and outer's
     self-time is the remaining 3. *)
  let c = Span.create ~clock:(ticking_clock ()) () in
  Span.with_ ~collector:c "outer" (fun () ->
      Span.with_ ~collector:c "inner" (fun () -> ());
      Span.with_ ~collector:c "inner" (fun () -> ()));
  let rows = Prof.attribution ~entries:(Span.snapshot ~collector:c ()) () in
  let find path = List.find (fun r -> r.Prof.path = path) rows in
  let outer = find [ "outer" ] and inner = find [ "outer"; "inner" ] in
  check_float "outer total includes children" 5. outer.Prof.total;
  check_float "outer self = total - children" 3. outer.Prof.self;
  check_float "leaf self = own total" 2. inner.Prof.self;
  (* The self column telescopes: summed self over all rows equals the
     summed root totals, i.e. the wall time of the instrumented region
     (the basis of `mapqn profile --check`). *)
  check_float "self telescopes to wall" 5. (Prof.self_total rows);
  match rows with
  | a :: b :: _ ->
    Alcotest.(check bool) "sorted by self descending" true
      (a.Prof.self >= b.Prof.self)
  | _ -> Alcotest.fail "expected two attribution rows"

let test_prof_gc_deltas () =
  Prof.enable ();
  Fun.protect ~finally:Prof.disable @@ fun () ->
  let c = Span.create () in
  (* Small allocations only: blocks above the minor-heap threshold go
     straight to the major heap and would not show up in minor words. *)
  let churn () =
    for i = 1 to 100 do
      ignore (Sys.opaque_identity (Array.make 10 i))
    done
  in
  (try
     Span.with_ ~collector:c "alloc" (fun () ->
         Span.with_ ~collector:c "child" (fun () -> churn ());
         churn ();
         failwith "boom")
   with Failure _ -> ());
  let entries = Span.snapshot ~collector:c () in
  let find path = List.find (fun e -> e.Span.path = path) entries in
  let parent = find [ "alloc" ] and child = find [ "alloc"; "child" ] in
  Alcotest.(check bool) "child saw its allocation" true
    (child.Span.minor_words >= 1000.);
  (* The parent span was closed by the exception and still carries the
     full GC delta, including the child's. *)
  Alcotest.(check bool) "parent >= child despite raise" true
    (parent.Span.minor_words >= child.Span.minor_words +. 1000.);
  let rows = Prof.attribution ~entries () in
  let prow = List.find (fun r -> r.Prof.path = [ "alloc" ]) rows in
  Alcotest.(check bool) "self words exclude the child" true
    (prow.Prof.self_minor_words >= 1000.
    && prow.Prof.self_minor_words
       <= parent.Span.minor_words -. child.Span.minor_words);
  (* With profiling off again, spans record no GC deltas at all. *)
  Prof.disable ();
  Span.with_ ~collector:c "quiet" (fun () -> churn ());
  let quiet = List.find (fun e -> e.Span.path = [ "quiet" ]) (Span.snapshot ~collector:c ()) in
  check_float "no delta when disabled" 0. quiet.Span.minor_words

let test_prof_folded_roundtrip () =
  (* a total 3 (self 2), a/b total 1: folded self-times in integer µs. *)
  let c = Span.create ~clock:(ticking_clock ()) () in
  Span.with_ ~collector:c "a" (fun () ->
      Span.with_ ~collector:c "b" (fun () -> ()));
  let entries = Span.snapshot ~collector:c () in
  let folded = Prof.folded ~entries () in
  Alcotest.(check (list (pair (list string) int))) "parses back"
    [ ([ "a" ], 2_000_000); ([ "a"; "b" ], 1_000_000) ]
    (Prof.parse_folded folded);
  Alcotest.(check int) "garbage lines skipped" 2
    (List.length (Prof.parse_folded (folded ^ "not a folded line\n")))

let test_span_backwards_clock () =
  (* A clock stepping backwards must clamp, not record negative time. *)
  let ticks = ref [ 5.; 3. ] in
  let clock () =
    match !ticks with
    | t :: rest ->
      ticks := rest;
      t
    | [] -> 0.
  in
  let c = Span.create ~clock () in
  Span.with_ ~collector:c "back" (fun () -> ());
  match Span.snapshot ~collector:c () with
  | [ e ] -> check_float "clamped at zero" 0. e.Span.total
  | _ -> Alcotest.fail "expected one span"

let test_span_add () =
  let c = Span.create ~clock:(ticking_clock ()) () in
  Span.with_ ~collector:c "outer" (fun () ->
      Span.add ~collector:c ~count:3 ~max_:0.5 ~minor_words:42. "accum" 0.9);
  let entries = Span.snapshot ~collector:c () in
  let find path = List.find (fun e -> e.Span.path = path) entries in
  let acc = find [ "outer"; "accum" ] in
  Alcotest.(check int) "aggregated count" 3 acc.Span.count;
  check_float "accumulated seconds" 0.9 acc.Span.total;
  check_float "explicit max" 0.5 acc.Span.max_;
  check_float "carried minor words" 42. acc.Span.minor_words;
  (* Externally-accumulated children reduce the parent's self-time just
     like [with_] children: outer ran 1s, 0.9s of it attributed away. *)
  let rows = Prof.attribution ~entries () in
  let outer = List.find (fun r -> r.Prof.path = [ "outer" ]) rows in
  check_float "add reduces parent self" 0.1 outer.Prof.self

let test_span_domain_safety () =
  (* Two domains nest spans concurrently on one collector: the
     domain-local open-span stacks must keep the two call trees apart —
     no cross-domain paths like d1/i2 — while both merge into the shared
     aggregate table. *)
  let c = Span.create () in
  let worker name inner =
    Domain.spawn (fun () ->
        for _ = 1 to 200 do
          Span.with_ ~collector:c name (fun () ->
              Span.with_ ~collector:c inner (fun () -> ()))
        done)
  in
  let d1 = worker "d1" "i1" and d2 = worker "d2" "i2" in
  Domain.join d1;
  Domain.join d2;
  let entries = Span.snapshot ~collector:c () in
  let paths = List.map (fun e -> e.Span.path) entries in
  let allowed =
    [ [ "d1" ]; [ "d1"; "i1" ]; [ "d2" ]; [ "d2"; "i2" ] ]
  in
  Alcotest.(check bool) "no cross-domain interleaving" true
    (List.for_all (fun p -> List.mem p allowed) paths);
  Alcotest.(check int) "exactly the four expected paths" 4
    (List.length paths);
  let count path =
    (List.find (fun e -> e.Span.path = path) entries).Span.count
  in
  Alcotest.(check int) "d1 iterations all recorded" 200 (count [ "d1" ]);
  Alcotest.(check int) "nested i2 iterations all recorded" 200
    (count [ "d2"; "i2" ])

let test_prof_phase_spans_end_to_end () =
  (* With profiling enabled, a bounds build records the split constraint
     assembly phases and the pivot-loop phase accumulators. *)
  Span.reset ();
  Prof.enable ();
  Fun.protect ~finally:Prof.disable @@ fun () ->
  let net = Mapqn_workloads.Tandem.network ~population:4 () in
  ignore (Mapqn_core.Bounds.response_time (Mapqn_core.Bounds.create_exn net));
  let paths = List.map (fun e -> e.Span.path) (Span.snapshot ()) in
  let leaf name p =
    match List.rev p with last :: _ -> last = name | [] -> false
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " phase recorded") true
        (List.exists (leaf name) paths))
    [ "kron-emit"; "row-assembly"; "price"; "ratio"; "update" ]

(* ---------------- Progress reporting ---------------- *)

let test_progress_eta () =
  let now = ref 0. in
  let clock () = !now in
  let tmp = Filename.temp_file "mapqn_hb" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
  let oc = open_out tmp in
  let p =
    Progress.create ~clock ~quiet:true ~heartbeat:oc ~total:4 "sweep"
  in
  Alcotest.(check (option (float 0.))) "no eta before first completion" None
    (Progress.eta_seconds p);
  Progress.start p ~seed:7 "model-0000";
  Progress.phase p "N=8";
  now := 10.;
  Progress.finish p;
  check_float "elapsed from injected clock" 10. (Progress.elapsed p);
  (match Progress.eta_seconds p with
  | Some eta -> check_float "eta = elapsed/completed * remaining" 30. eta
  | None -> Alcotest.fail "expected an eta after one completion");
  (* A skipped model counts as completed work, so the ETA projects only
     onto genuinely remaining models: 2 done in 10s -> 2 more in 10s. *)
  Progress.skip p "model-0001";
  (match Progress.eta_seconds p with
  | Some eta -> check_float "skip counts toward eta" 10. eta
  | None -> Alcotest.fail "expected an eta after skip");
  now := 20.;
  Progress.start p "model-0002";
  Progress.finish p;
  Progress.start p "model-0003";
  Progress.finish p;
  Alcotest.(check (option (float 0.))) "no eta once done" None
    (Progress.eta_seconds p);
  Alcotest.(check int) "completed" 4 (Progress.completed p);
  Progress.close p;
  close_out oc;
  (* The heartbeat file doubles as a checkpoint: done and skip events
     resolve to the model ids a rerun may skip. *)
  Alcotest.(check (list string)) "resume substrate"
    [ "model-0000"; "model-0001"; "model-0002"; "model-0003" ]
    (Progress.load_completed tmp);
  (* Every record is one parsable JSON line carrying the sweep label. *)
  let ic = open_in tmp in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Alcotest.(check bool) "heartbeats written" true (List.length !lines > 4);
  List.iter
    (fun l ->
      let j = Json.parse_exn l in
      Alcotest.(check (option string)) "label" (Some "sweep")
        (Json.get_string (json_get [ "label" ] j));
      if Json.member "event" j = None then Alcotest.fail "heartbeat lacks event")
    !lines

(* ---------------- Run ledger ---------------- *)

let with_temp_ledger f =
  let tmp = Filename.temp_file "mapqn_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Ledger.disable ();
      Sys.remove tmp)
    (fun () -> f tmp)

let test_ledger_disabled_noop () =
  Ledger.disable ();
  Alcotest.(check bool) "disabled" false (Ledger.is_enabled ());
  Ledger.record ~event:"eval" [] (* must be a silent no-op *);
  Alcotest.(check bool) "no path" true (Ledger.path () = None);
  Ledger.set_context "experiment" (Json.String "x") (* also a no-op *)

let test_ledger_record_shape () =
  with_temp_ledger @@ fun tmp ->
  Ledger.enable_exn ~context:[ ("experiment", Json.String "test") ] ~path:tmp ();
  Alcotest.(check (option string)) "path" (Some tmp) (Ledger.path ());
  Ledger.set_context "seed" (Json.Number 42.);
  Ledger.record ~event:"eval"
    [ ("population", Json.Number 8.); ("duration_s", Json.Number 0.25) ];
  (* A field-level seed (e.g. the simulator's own) wins over the
     sink-wide context seed. *)
  Ledger.record ~event:"sim" [ ("seed", Json.Number 7.) ];
  Ledger.disable ();
  match Ledger.load tmp with
  | [ r1; r2 ] ->
    Alcotest.(check string) "event" "eval" (Ledger.event r1);
    Alcotest.(check int) "population" 8 (Ledger.population r1);
    Alcotest.(check int) "absent population" (-1) (Ledger.population r2);
    check_float "context seed surfaced" 42.
      (Option.get (Option.bind (Json.member "seed" r1) Json.get_float));
    Alcotest.(check (option string)) "context pair merged" (Some "test")
      (Option.bind (Json.member "experiment" r1) Json.get_string);
    Alcotest.(check bool) "wall clock present" true (Json.member "ts" r1 <> None);
    Alcotest.(check bool) "git_sha key present" true
      (match r1 with
      | Json.Object kvs -> List.mem_assoc "git_sha" kvs
      | _ -> false);
    check_float "field seed wins" 7.
      (Option.get (Option.bind (Json.member "seed" r2) Json.get_float));
    (match r2 with
    | Json.Object kvs ->
      Alcotest.(check int) "exactly one seed key" 1
        (List.length (List.filter (fun (k, _) -> k = "seed") kvs))
    | _ -> Alcotest.fail "record is not an object")
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_ledger_double_enable () =
  with_temp_ledger @@ fun tmp ->
  (match Ledger.enable ~path:tmp () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first enable must succeed");
  (* Same path while live: rejected with the typed error (it would drop
     the sink context and double-open the file). *)
  (match Ledger.enable ~path:tmp () with
  | Error (`Already_enabled p) -> Alcotest.(check string) "path in error" tmp p
  | Ok () -> Alcotest.fail "double enable on the live path must be rejected");
  Alcotest.check_raises "enable_exn raises"
    (Invalid_argument
       ("Ledger.enable: " ^ Ledger.enable_error_to_string (`Already_enabled tmp)))
    (fun () -> Ledger.enable_exn ~path:tmp ());
  (* Still enabled on the original path, and a different path replaces
     the sink deliberately. *)
  Alcotest.(check (option string)) "sink unchanged" (Some tmp) (Ledger.path ());
  let tmp2 = tmp ^ ".second" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp2 then Sys.remove tmp2)
    (fun () ->
      (match Ledger.enable ~path:tmp2 () with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "different path must replace the sink");
      Alcotest.(check (option string)) "replaced" (Some tmp2) (Ledger.path ());
      (* After disable, re-enabling the first path is legitimate. *)
      Ledger.disable ();
      match Ledger.enable ~path:tmp () with
      | Ok () -> Ledger.disable ()
      | Error _ -> Alcotest.fail "enable after disable must succeed")

let test_ledger_crash_resume () =
  with_temp_ledger @@ fun tmp ->
  Ledger.enable_exn ~path:tmp ();
  Ledger.record ~event:"eval" [ ("population", Json.Number 2.) ];
  Ledger.record ~event:"eval" [ ("population", Json.Number 4.) ];
  Ledger.disable ();
  (* A killed run tears the final line mid-record: the completed prefix
     must load, the torn tail must not. *)
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 tmp in
  output_string oc "{\"event\":\"eval\",\"population\":8";
  close_out oc;
  Alcotest.(check (list int)) "torn final line skipped" [ 2; 4 ]
    (List.map Ledger.population (Ledger.load tmp));
  (* Re-enabling resumes the stream on a fresh line, so the first record
     after the crash is not garbled into the torn one. *)
  Ledger.enable_exn ~path:tmp ();
  Ledger.record ~event:"eval" [ ("population", Json.Number 16.) ];
  Ledger.disable ();
  Alcotest.(check (list int)) "resume appends cleanly" [ 2; 4; 16 ]
    (List.map Ledger.population (Ledger.load tmp));
  Alcotest.(check (list Alcotest.string)) "missing file is empty ledger" []
    (List.map Ledger.event (Ledger.load (tmp ^ ".does-not-exist")))

let prop_ledger_jsonl_roundtrip =
  QCheck.Test.make ~name:"ledger: record fields survive the JSONL round-trip"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 0 6) (float_range (-1e9) 1e9))
    (fun values ->
      let fields =
        List.mapi (fun i v -> (Printf.sprintf "f%d" i, Json.Number v)) values
      in
      let tmp = Filename.temp_file "mapqn_ledger" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Ledger.disable ();
          Sys.remove tmp)
        (fun () ->
          Ledger.enable_exn ~path:tmp ();
          Ledger.record ~event:"eval" fields;
          Ledger.disable ();
          match Ledger.load tmp with
          | [ r ] ->
            Ledger.event r = "eval"
            && List.for_all (fun (k, v) -> Json.member k r = Some v) fields
          | _ -> false))

(* Synthetic solver records for diff/doctor: only the fields the
   analyses read. *)
let eval_record ?(fingerprint = "d143") ?certificate ?refactor_causes ?health
    ~population ~lower ~upper ~pivots ~duration () =
  let opt name = function
    | None -> []
    | Some kvs -> [ (name, Json.Object kvs) ]
  in
  Json.Object
    ([
       ("event", Json.String "eval");
       ("population", Json.Number (float_of_int population));
       ("fingerprint", Json.String fingerprint);
       ("duration_s", Json.Number duration);
       ("pivots", Json.Number pivots);
       ( "metrics",
         Json.List
           [
             Json.Object
               [
                 ("name", Json.String "response-time");
                 ("lower", Json.Number lower);
                 ("upper", Json.Number upper);
               ];
           ] );
     ]
    @ opt "certificate" certificate
    @ opt "refactor_causes" refactor_causes
    @ opt "health" health)

let test_ledger_diff () =
  let a =
    [
      eval_record ~population:4 ~lower:1. ~upper:2. ~pivots:100. ~duration:1. ();
      eval_record ~population:8 ~lower:1.5 ~upper:2.5 ~pivots:200. ~duration:2.
        ();
    ]
  in
  let b =
    [
      (* Same (event, population, occurrence) key as a's first record,
         upper bound moved by exactly 0.125. *)
      eval_record ~fingerprint:"beef" ~population:4 ~lower:1. ~upper:2.125
        ~pivots:150. ~duration:1.5 ();
      eval_record ~population:16 ~lower:9. ~upper:9. ~pivots:1. ~duration:1. ();
    ]
  in
  let report = Ledger.diff a b in
  Alcotest.(check int) "one matched pair" 1 (List.length report.Ledger.matched);
  Alcotest.(check int) "N=8 only in A" 1 report.Ledger.only_a;
  Alcotest.(check int) "N=16 only in B" 1 report.Ledger.only_b;
  (match report.Ledger.matched with
  | [ d ] ->
    check_float "known bound delta" 0.125 d.Ledger.bound_drift;
    Alcotest.(check string) "drift metric" "response-time" d.Ledger.worst_metric;
    check_float "pivots a" 100. d.Ledger.pivots_a;
    check_float "pivots b" 150. d.Ledger.pivots_b;
    Alcotest.(check bool) "model change detected" true
      d.Ledger.fingerprint_changed
  | _ -> Alcotest.fail "expected one drift entry");
  (* Identical ledgers: zero drift, same model. *)
  (match (Ledger.diff a a).Ledger.matched with
  | [ d1; d2 ] ->
    check_float "self-diff drifts nothing" 0.
      (Float.max d1.Ledger.bound_drift d2.Ledger.bound_drift);
    Alcotest.(check bool) "fingerprint stable" false d1.Ledger.fingerprint_changed
  | _ -> Alcotest.fail "expected two matched entries");
  let rendered = Ledger.render_diff report in
  Alcotest.(check bool) "render mentions the change" true
    (let sub = "CHANGED" in
     let n = String.length rendered and m = String.length sub in
     let rec go i = i + m <= n && (String.sub rendered i m = sub || go (i + 1)) in
     go 0)

let certificate_fields ?(failures = 0.) primal =
  [
    ("primal_residual", Json.Number primal);
    ("dual_violation", Json.Number 0.);
    ("comp_slack", Json.Number 0.);
    ("failures", Json.Number failures);
    ("tol_primal", Json.Number 1e-5);
    ("tol_dual", Json.Number 1e-6);
    ("tol_comp", Json.Number 1e-6);
  ]

let test_ledger_doctor_fig8_story () =
  (* The historical pre-drift-trigger Fig-8 run in miniature: the primal
     residual compounds with population until the largest one fails at
     3e-05 against the 1e-5 tolerance. Doctor must tell that story. *)
  let run =
    [
      eval_record ~population:20
        ~certificate:(certificate_fields 1e-9)
        ~lower:1. ~upper:2. ~pivots:10. ~duration:0.1 ();
      eval_record ~population:40
        ~certificate:(certificate_fields 2.8e-6)
        ~lower:1. ~upper:2. ~pivots:20. ~duration:0.2 ();
      eval_record ~population:100
        ~certificate:(certificate_fields ~failures:1. 3e-5)
        ~lower:1. ~upper:2. ~pivots:30. ~duration:0.3 ();
    ]
  in
  let findings = Ledger.doctor run in
  let with_code c = List.filter (fun f -> f.Ledger.code = c) findings in
  (match with_code "cert-failure" with
  | [ f ] ->
    Alcotest.(check bool) "failure is Fail" true (f.Ledger.severity = Ledger.Fail);
    Alcotest.(check bool) "failure names N=100" true
      (f.Ledger.where = "eval N=100 (record 2)")
  | fs -> Alcotest.failf "expected one cert-failure, got %d" (List.length fs));
  (match with_code "cert-near-miss" with
  | [ f ] ->
    Alcotest.(check bool) "near-miss is Warn" true (f.Ledger.severity = Ledger.Warn)
  | fs -> Alcotest.failf "expected one cert-near-miss, got %d" (List.length fs));
  (match with_code "residual-peak-at-max-population" with
  | [ f ] ->
    Alcotest.(check bool) "the fig8 signature fails the run" true
      (f.Ledger.severity = Ledger.Fail)
  | fs -> Alcotest.failf "expected the fig8 signature, got %d" (List.length fs));
  (* Same residuals with the peak mid-sweep: no max-population signature. *)
  let healthy =
    [
      eval_record ~population:20
        ~certificate:(certificate_fields 1e-9)
        ~lower:1. ~upper:2. ~pivots:10. ~duration:0.1 ();
      eval_record ~population:40
        ~certificate:(certificate_fields 2e-9)
        ~lower:1. ~upper:2. ~pivots:20. ~duration:0.2 ();
      eval_record ~population:100
        ~certificate:(certificate_fields 1e-12)
        ~lower:1. ~upper:2. ~pivots:30. ~duration:0.3 ();
    ]
  in
  Alcotest.(check (list Alcotest.string)) "healthy run has no findings" []
    (List.map (fun f -> f.Ledger.code) (Ledger.doctor healthy))

let test_ledger_doctor_solver_hazards () =
  let r =
    eval_record ~population:8
      ~refactor_causes:[ ("drift", Json.Number 2.) ]
      ~health:
        [
          ("eta_drift", Json.Number 3e-7);
          ("degeneracy_streak", Json.Number 1500.);
          ("bland_switches", Json.Number 1.);
          ("perturbation_salt", Json.Number 2.);
        ]
      ~lower:1. ~upper:2. ~pivots:10. ~duration:0.1 ()
  in
  let codes = List.map (fun f -> f.Ledger.code) (Ledger.doctor [ r ]) in
  List.iter
    (fun c ->
      Alcotest.(check bool) ("doctor flags " ^ c) true (List.mem c codes))
    [ "drift-reinversion"; "degeneracy-stall"; "perturbation-retry" ];
  (* A long degenerate streak without a Bland switch is informational. *)
  let quiet =
    eval_record ~population:8
      ~health:[ ("degeneracy_streak", Json.Number 1500.) ]
      ~lower:1. ~upper:2. ~pivots:10. ~duration:0.1 ()
  in
  Alcotest.(check (list Alcotest.string)) "streak alone is info"
    [ "degeneracy-streak" ]
    (List.map (fun f -> f.Ledger.code) (Ledger.doctor [ quiet ]));
  (* Non-solver events carry no certificate and are never scanned. *)
  Alcotest.(check (list Alcotest.string)) "sim records ignored" []
    (List.map
       (fun f -> f.Ledger.code)
       (Ledger.doctor [ Json.Object [ ("event", Json.String "sim") ] ]))

let test_ledger_summarize () =
  let s =
    Ledger.summarize
      [
        eval_record ~population:4 ~lower:1. ~upper:2. ~pivots:123. ~duration:0.5
          ~certificate:(certificate_fields 1e-9) ();
      ]
  in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    Alcotest.(check bool) ("summary contains " ^ sub) true (go 0)
  in
  has "eval";
  has "123";
  has "0.500s";
  has "1.00e-09"

(* ---------------- Histogram percentiles ---------------- *)

let test_export_percentile () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 2.; 4. |] "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.; 10. ];
  (match Metrics.find ~registry:r "lat" with
  | [ { Metrics.value = Metrics.Histogram d; _ } ] ->
    (* Cumulative counts: le1 -> 1, le2 -> 2, le4 -> 3, +Inf -> 4.
       p50 rank 2 lands exactly at the le=2 bucket's upper edge. *)
    check_float "p50 interpolates within its bucket" 2.
      (Export.percentile d 0.50);
    (* p99 rank 3.96 falls in the overflow bucket, which saturates at
       the last finite bound. *)
    check_float "p99 saturates at the last finite bound" 4.
      (Export.percentile d 0.99);
    (* p25 rank 1 is the first bucket's edge; the bucket starts at 0. *)
    check_float "p25 at first bucket edge" 1. (Export.percentile d 0.25)
  | _ -> Alcotest.fail "expected one histogram sample");
  let empty = Metrics.histogram ~registry:r ~buckets:[| 1. |] "empty" in
  ignore empty;
  (match Metrics.find ~registry:r "empty" with
  | [ { Metrics.value = Metrics.Histogram d; _ } ] ->
    Alcotest.(check bool) "empty histogram has no percentile" true
      (Float.is_nan (Export.percentile d 0.5))
  | _ -> Alcotest.fail "expected one histogram sample");
  (* The table exporter surfaces the quantiles next to count/sum. *)
  let s = Export.table ~metrics:(Metrics.snapshot ~registry:r ()) ~spans:[] in
  Alcotest.(check bool) "table shows p50" true
    (let sub = "p50=" in
     let n = String.length s and m = String.length sub in
     let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
     go 0)

let test_load_completed_robust () =
  let tmp = Filename.temp_file "mapqn_hb" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
  let oc = open_out tmp in
  output_string oc
    ("{\"event\":\"done\",\"model\":\"a\"}\n" ^ "this line is not JSON\n"
   ^ "{\"event\":\"phase\",\"model\":\"b\"}\n"
   ^ "{\"event\":\"skip\",\"model\":\"c\"}\n"
   ^ "{\"event\":\"done\",\"model\":\"a\"}\n");
  close_out oc;
  Alcotest.(check (list string)) "dedup, skip garbage, keep order"
    [ "a"; "c" ]
    (Progress.load_completed tmp);
  Alcotest.(check (list string)) "missing file yields no ids" []
    (Progress.load_completed (tmp ^ ".does-not-exist"))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
          Alcotest.test_case "reset in place" `Quick test_reset_in_place;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "slash rejected" `Quick test_span_bad_name;
        ] );
      ( "export",
        [
          Alcotest.test_case "json + jsonl" `Quick test_export_json;
          Alcotest.test_case "prometheus" `Quick test_export_prometheus;
          Alcotest.test_case "table" `Quick test_export_table;
          Alcotest.test_case "format_of_string" `Quick test_format_of_string;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "json parses back" `Quick test_roundtrip_json;
          Alcotest.test_case "jsonl parses back" `Quick test_roundtrip_jsonl;
          Alcotest.test_case "prometheus parses back" `Quick
            test_roundtrip_prometheus;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring overwrite + counters" `Quick test_trace_ring;
          Alcotest.test_case "monotonic timestamps" `Quick
            test_trace_monotonic_timestamps;
          Alcotest.test_case "global enable/disable" `Quick test_trace_global;
          Alcotest.test_case "jsonl sink" `Quick test_trace_jsonl_sink;
          Alcotest.test_case "chrome sink" `Quick test_trace_chrome_sink;
          QCheck_alcotest.to_alcotest prop_trace_drop_accounting;
        ] );
      ( "prof",
        [
          Alcotest.test_case "self-time = total - children" `Quick
            test_prof_self_time;
          Alcotest.test_case "gc deltas under nesting + raise" `Quick
            test_prof_gc_deltas;
          Alcotest.test_case "folded round-trip" `Quick
            test_prof_folded_roundtrip;
          Alcotest.test_case "backwards clock clamps" `Quick
            test_span_backwards_clock;
          Alcotest.test_case "accumulated add under path" `Quick test_span_add;
          Alcotest.test_case "domain-local stacks" `Quick
            test_span_domain_safety;
        ] );
      ( "progress",
        [
          Alcotest.test_case "deterministic eta + heartbeats" `Quick
            test_progress_eta;
          Alcotest.test_case "resume file robustness" `Quick
            test_load_completed_robust;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_ledger_disabled_noop;
          Alcotest.test_case "record shape + seed precedence" `Quick
            test_ledger_record_shape;
          Alcotest.test_case "double enable rejected" `Quick
            test_ledger_double_enable;
          Alcotest.test_case "crash resume skips torn line" `Quick
            test_ledger_crash_resume;
          Alcotest.test_case "diff reports known bound delta" `Quick
            test_ledger_diff;
          Alcotest.test_case "doctor tells the fig8 story" `Quick
            test_ledger_doctor_fig8_story;
          Alcotest.test_case "doctor flags solver hazards" `Quick
            test_ledger_doctor_solver_hazards;
          Alcotest.test_case "summarize" `Quick test_ledger_summarize;
          Alcotest.test_case "histogram percentiles" `Quick
            test_export_percentile;
          QCheck_alcotest.to_alcotest prop_ledger_jsonl_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "solver telemetry" `Quick test_solver_telemetry;
          Alcotest.test_case "profiling phase spans" `Quick
            test_prof_phase_spans_end_to_end;
        ] );
    ]
