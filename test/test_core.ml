open Mapqn_core
module Network = Mapqn_model.Network
module Station = Mapqn_model.Station
module Solution = Mapqn_ctmc.Solution

let exp_station rate = Station.exp ~rate ()

let bursty_station ?(mean = 1.) ?(scv = 16.) ?(gamma2 = 0.5) () =
  Station.map (Mapqn_map.Fit.map2_exn ~mean ~scv ~gamma2 ())

let mmpp_station () =
  Station.map (Mapqn_map.Builders.mmpp2 ~r01:0.15 ~r10:0.1 ~rate0:3. ~rate1:0.4)

(* The paper's Figure 5 network. *)
let fig5 ?(population = 4) ?(map_station = bursty_station ()) () =
  Network.make_exn
    ~stations:[| exp_station 2.; exp_station 1.; map_station |]
    ~routing:[| [| 0.2; 0.7; 0.1 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
    ~population

let tandem_map population =
  Network.tandem [| exp_station 1.5; mmpp_station () |] ~population

let all_configs =
  [ ("minimal", Constraints.minimal); ("standard", Constraints.standard);
    ("full", Constraints.full) ]

(* ---------------- Marginal_space ---------------- *)

let test_space_dimensions () =
  let net = fig5 () in
  let ms = Marginal_space.create net in
  (* M=3, N=4, H=2: v = 3*5*2 = 30, w = 6*5*2 = 60. *)
  Alcotest.(check int) "vars without level2" 90 (Marginal_space.num_vars ms);
  let ms2 = Marginal_space.create ~level2:true net in
  Alcotest.(check int) "vars with level2" 150 (Marginal_space.num_vars ms2)

let test_space_scales_polynomially () =
  (* The paper's tractability claim: marginal variables grow like
     M²(N+1)H even when the exact state space explodes. *)
  let net = fig5 ~population:100 () in
  let ms = Marginal_space.create net in
  Alcotest.(check int) "M^2 (N+1) H" (9 * 101 * 2) (Marginal_space.num_vars ms)

let test_phase_subst () =
  let net = fig5 () in
  let ms = Marginal_space.create net in
  (* Station 2 is the only one with 2 phases; H = 2. *)
  Alcotest.(check int) "subst to phase 1" 1 (Marginal_space.phase_subst ms 0 2 1);
  Alcotest.(check int) "subst to phase 0" 0 (Marginal_space.phase_subst ms 1 2 0);
  Alcotest.(check int) "component" 1 (Marginal_space.phase_component ms 1 2);
  Alcotest.(check int) "exp station component" 0 (Marginal_space.phase_component ms 1 0)

let test_var_indices_distinct () =
  let net = fig5 () in
  let ms = Marginal_space.create ~level2:true net in
  let seen = Hashtbl.create 256 in
  let record i =
    if Hashtbl.mem seen i then Alcotest.failf "duplicate index %d" i;
    Hashtbl.add seen i ()
  in
  for k = 0 to 2 do
    for n = 0 to 4 do
      for h = 0 to 1 do
        record (Marginal_space.v ms ~station:k ~level:n ~phase:h);
        for j = 0 to 2 do
          if j <> k then begin
            record (Marginal_space.w ms ~busy:j ~station:k ~level:n ~phase:h);
            record (Marginal_space.z ms ~counted:j ~station:k ~level:n ~phase:h)
          end
        done
      done
    done
  done;
  Alcotest.(check int) "covers all vars" (Marginal_space.num_vars ms)
    (Hashtbl.length seen)

let test_describe () =
  let net = fig5 () in
  let ms = Marginal_space.create net in
  let idx = Marginal_space.v ms ~station:1 ~level:3 ~phase:1 in
  Alcotest.(check string) "v name" "v[1](n=3,h=1)" (Marginal_space.describe ms idx);
  let idx = Marginal_space.w ms ~busy:2 ~station:0 ~level:1 ~phase:0 in
  Alcotest.(check string) "w name" "w[2,0](n=1,h=0)" (Marginal_space.describe ms idx)

(* ---------------- exact feasibility (the key correctness theorem) ------- *)

(* Every constraint family must be satisfied by the aggregated exact
   solution: the constraints are exact consequences of global balance. *)
let exact_point_feasible net () =
  let sol = Solution.solve net in
  List.iter
    (fun (name, config) ->
      let ms, model = Constraints.build config net in
      let point = Marginal_space.aggregate_exact ms sol in
      match Mapqn_lp.Lp_model.check_feasible ~tol:1e-7 model point with
      | Ok () -> ()
      | Error e -> Alcotest.failf "[%s] exact point infeasible: %s" name e)
    all_configs

let test_cut_balance_residual_zero () =
  let net = fig5 ~population:3 () in
  let sol = Solution.solve net in
  let ms = Marginal_space.create net in
  let point = Marginal_space.aggregate_exact ms sol in
  let r = Constraints.cut_balance_residual ms point in
  Alcotest.(check bool) "paper eq (1) residual ~ 0" true (r < 1e-10)

let test_aggregate_normalized () =
  let net = fig5 ~population:3 () in
  let sol = Solution.solve net in
  let ms = Marginal_space.create net in
  let point = Marginal_space.aggregate_exact ms sol in
  for k = 0 to 2 do
    let acc = ref 0. in
    for n = 0 to 3 do
      for h = 0 to 1 do
        acc := !acc +. point.(Marginal_space.v ms ~station:k ~level:n ~phase:h)
      done
    done;
    Alcotest.(check (float 1e-9)) (Printf.sprintf "station %d sums to 1" k) 1. !acc
  done

(* ---------------- bracketing ---------------- *)

let check_brackets ?(config = Constraints.standard) net =
  let sol = Solution.solve net in
  let b = Bounds.create_exn ~config net in
  let m = Network.num_stations net in
  for k = 0 to m - 1 do
    let check name interval exact =
      if not (Bounds.contains interval exact) then
        Alcotest.failf "%s[%d]: exact %.8f outside [%.8f, %.8f]" name k exact
          interval.Bounds.lower interval.Bounds.upper
    in
    check "utilization" (Bounds.utilization b k) (Solution.utilization sol k);
    check "throughput" (Bounds.throughput b k) (Solution.throughput sol k);
    check "queue length" (Bounds.mean_queue_length b k) (Solution.mean_queue_length sol k);
    check "2nd moment" (Bounds.queue_length_moment b k 2) (Solution.queue_length_moment sol k 2)
  done;
  let r = Bounds.response_time b in
  let exact_r = Solution.system_response_time sol in
  if not (Bounds.contains r exact_r) then
    Alcotest.failf "response time: exact %.8f outside [%.8f, %.8f]" exact_r
      r.Bounds.lower r.Bounds.upper

let test_brackets_fig5 () = check_brackets (fig5 ~population:5 ())
let test_brackets_tandem_mmpp () = check_brackets (tandem_map 6)
let test_brackets_full_config () =
  check_brackets ~config:Constraints.full (fig5 ~population:4 ())
let test_brackets_minimal_config () =
  check_brackets ~config:Constraints.minimal (fig5 ~population:4 ())

let test_brackets_two_map_stations () =
  (* Two MAP stations: exercises joint phase vectors with H = 4. *)
  let net =
    Network.make_exn
      ~stations:[| exp_station 2.; mmpp_station (); bursty_station ~scv:4. () |]
      ~routing:[| [| 0.; 0.5; 0.5 |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
      ~population:3
  in
  check_brackets net

let test_brackets_product_form () =
  (* On an exponential network the LP bounds must bracket (and be close to)
     the product-form solution. *)
  let net = Network.exponentialize (fig5 ~population:5 ()) in
  check_brackets net

let test_exponential_network_bounds_tight () =
  (* For a 2-station exponential tandem the marginal space essentially
     captures the full birth-death chain, so the bounds collapse. *)
  let net = Network.tandem [| exp_station 2.; exp_station 1. |] ~population:5 in
  let sol = Solution.solve net in
  let b = Bounds.create_exn net in
  let u = Bounds.utilization b 0 in
  (* Width is dominated by the solver's conservative validity margin. *)
  Alcotest.(check bool) "tight" true (Bounds.width u < 1e-4);
  Alcotest.(check (float 1e-4)) "equals exact" (Solution.utilization sol 0)
    (Bounds.midpoint u)

let test_tightness_improves_with_config () =
  let net = fig5 ~population:4 () in
  let width config =
    let b = Bounds.create_exn ~config net in
    Bounds.width (Bounds.response_time b)
  in
  let wmin = width Constraints.minimal in
  let wstd = width Constraints.standard in
  let wfull = width Constraints.full in
  Alcotest.(check bool)
    (Printf.sprintf "standard (%.4f) <= minimal (%.4f)" wstd wmin)
    true (wstd <= wmin +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "full (%.4f) <= standard (%.4f)" wfull wstd)
    true (wfull <= wstd +. 1e-9)

let test_interval_helpers () =
  let i = { Bounds.lower = 1.; upper = 3. } in
  Alcotest.(check (float 1e-12)) "width" 2. (Bounds.width i);
  Alcotest.(check (float 1e-12)) "midpoint" 2. (Bounds.midpoint i);
  Alcotest.(check bool) "contains inside" true (Bounds.contains i 2.);
  Alcotest.(check bool) "contains edge" true (Bounds.contains i 3.);
  Alcotest.(check bool) "excludes outside" false (Bounds.contains i 3.5)

let test_interval_infinite_endpoints () =
  (* Response-time bounds are infinite whenever the LP throughput lower
     bound is 0; the helpers must stay NaN-free on such intervals. *)
  let half = { Bounds.lower = 2.; upper = infinity } in
  Alcotest.(check bool) "half-infinite width" true (Bounds.width half = infinity);
  Alcotest.(check bool) "half-infinite midpoint" true
    (Bounds.midpoint half = infinity);
  Alcotest.(check bool) "contains large" true (Bounds.contains half 1e300);
  Alcotest.(check bool) "contains inf" true (Bounds.contains half infinity);
  Alcotest.(check bool) "excludes below" false (Bounds.contains half 1.);
  (* Both endpoints the same infinity: the degenerate point {+inf}. *)
  let point = { Bounds.lower = infinity; upper = infinity } in
  Alcotest.(check (float 1e-12)) "inf-point width" 0. (Bounds.width point);
  Alcotest.(check bool) "inf-point midpoint" true
    (Bounds.midpoint point = infinity);
  Alcotest.(check bool) "inf-point contains inf" true
    (Bounds.contains point infinity);
  Alcotest.(check bool) "inf-point excludes finite" false (Bounds.contains point 5.);
  (* Opposite infinities: the whole line. *)
  let line = { Bounds.lower = neg_infinity; upper = infinity } in
  Alcotest.(check (float 1e-12)) "line midpoint" 0. (Bounds.midpoint line);
  Alcotest.(check bool) "line width not NaN" false
    (Float.is_nan (Bounds.width line));
  Alcotest.(check bool) "line contains everything" true
    (Bounds.contains line (-1e12))

let test_typed_errors () =
  let b = Bounds.create_exn (fig5 ~population:3 ()) in
  (match Bounds.eval b [ Bounds.Throughput 17 ] with
  | exception Bounds.Solver_error (Bounds.Invalid_station 17) -> ()
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected Invalid_station 17");
  (match Bounds.queue_length_moment b 0 (-1) with
  | exception Bounds.Solver_error (Bounds.Invalid_objective _) -> ()
  | _ -> Alcotest.fail "expected Invalid_objective on negative moment order");
  (let delay_net =
     Network.make_exn
       ~stations:[| exp_station 1.; Station.delay ~rate:2. () |]
       ~routing:[| [| 0.; 1. |]; [| 1.; 0. |] |]
       ~population:2
   in
   match Bounds.create delay_net with
   | Error (Bounds.Unsupported_network _) -> ()
   | Error e ->
     Alcotest.fail ("expected Unsupported_network, got " ^ Bounds.error_to_string e)
   | Ok _ -> Alcotest.fail "expected Error on delay network");
  List.iter
    (fun e ->
      Alcotest.(check bool) "error_to_string nonempty" true
        (String.length (Bounds.error_to_string e) > 0))
    [
      Bounds.Unsupported_network "a delay station";
      Bounds.Infeasible_phase1;
      Bounds.Iteration_limit 42;
      Bounds.Invalid_station 3;
      Bounds.Invalid_objective "bad";
    ]

let test_eval_batch_matches_wrappers () =
  (* The wrappers ARE one-element eval calls over the same mutable warm-
     started state, so a batch eval and the wrapper sequence in the same
     order perform identical pivot sequences — results must be
     bit-identical, not merely close. The one exception is
     Response_time: a batch eval memoizes the Throughput solve it
     depends on, so when the batch already priced that throughput the
     reuse shifts the pivot trajectory relative to the wrapper (which
     re-solves it in place). Both endpoints are certified optima of the
     same LP, so they agree to certificate tolerance instead. *)
  let net = tandem_map 6 in
  let metrics =
    [
      Bounds.Utilization 0;
      Bounds.Throughput 0;
      Bounds.Mean_queue_length 0;
      Bounds.Utilization 1;
      Bounds.Throughput 1;
      Bounds.Mean_queue_length 1;
      Bounds.Queue_length_moment (1, 2);
      Bounds.Marginal_probability { station = 0; level = 2 };
      Bounds.Response_time { reference = 0 };
    ]
  in
  let batch = Bounds.eval (Bounds.create_exn net) metrics in
  let b2 = Bounds.create_exn net in
  let wrapper = function
    | Bounds.Utilization k -> Bounds.utilization b2 k
    | Bounds.Throughput k -> Bounds.throughput b2 k
    | Bounds.Mean_queue_length k -> Bounds.mean_queue_length b2 k
    | Bounds.Queue_length_moment (k, r) -> Bounds.queue_length_moment b2 k r
    | Bounds.Marginal_probability { station; level } ->
      Bounds.marginal_probability b2 ~station ~level
    | Bounds.Response_time { reference } -> Bounds.response_time ~reference b2
  in
  List.iter
    (fun (m, (i : Bounds.interval)) ->
      let w = wrapper m in
      let name = Bounds.metric_to_string m in
      match m with
      | Bounds.Response_time _ ->
        let close a b =
          Float.abs (a -. b)
          <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
        in
        Alcotest.(check bool)
          (name ^ " lower within certificate tolerance")
          true
          (close i.Bounds.lower w.Bounds.lower);
        Alcotest.(check bool)
          (name ^ " upper within certificate tolerance")
          true
          (close i.Bounds.upper w.Bounds.upper)
      | _ ->
        Alcotest.(check bool)
          (name ^ " lower bit-identical") true
          (i.Bounds.lower = w.Bounds.lower);
        Alcotest.(check bool)
          (name ^ " upper bit-identical") true
          (i.Bounds.upper = w.Bounds.upper))
    batch

let test_dense_revised_bounds_agree () =
  let metrics k_max =
    List.concat
      (List.init k_max (fun k ->
           [ Bounds.Utilization k; Bounds.Throughput k; Bounds.Mean_queue_length k ]))
    @ [ Bounds.Response_time { reference = 0 } ]
  in
  List.iter
    (fun net ->
      let bd = Bounds.create_exn ~solver:Bounds.Dense net in
      let br = Bounds.create_exn ~solver:Bounds.Revised net in
      let ms = metrics (Network.num_stations net) in
      let close x y =
        x = y || Float.abs (x -. y) <= 1e-7 *. Float.max 1. (Float.abs x)
      in
      List.iter2
        (fun (m, (a : Bounds.interval)) (_, (b : Bounds.interval)) ->
          Alcotest.(check bool)
            (Bounds.metric_to_string m ^ " backends agree")
            true
            (close a.Bounds.lower b.Bounds.lower
            && close a.Bounds.upper b.Bounds.upper))
        (Bounds.eval bd ms) (Bounds.eval br ms))
    [ fig5 ~population:3 (); tandem_map 5 ]

let test_population_zero_bounds () =
  let b = Bounds.create_exn (fig5 ~population:0 ()) in
  let u = Bounds.utilization b 0 in
  Alcotest.(check (float 1e-12)) "zero util lower" 0. u.Bounds.lower;
  Alcotest.(check (float 1e-12)) "zero util upper" 0. u.Bounds.upper;
  let r = Bounds.response_time b in
  Alcotest.(check (float 1e-12)) "zero response" 0. r.Bounds.upper

let test_custom_objective () =
  let net = fig5 ~population:3 () in
  let sol = Solution.solve net in
  let b = Bounds.create_exn net in
  let ms = Bounds.space b in
  (* P{n_2 = 0, phase = 1} as a custom objective. *)
  let obj = [ (Marginal_space.v ms ~station:2 ~level:0 ~phase:1, 1.) ] in
  let interval = Bounds.custom b obj in
  let point = Marginal_space.aggregate_exact ms sol in
  let exact = point.(Marginal_space.v ms ~station:2 ~level:0 ~phase:1) in
  Alcotest.(check bool) "custom brackets" true (Bounds.contains interval exact)

let test_marginal_probability_bounds () =
  let net = fig5 ~population:3 () in
  let sol = Solution.solve net in
  let b = Bounds.create_exn net in
  let exact = (Solution.queue_length_marginal sol 1).(2) in
  let interval = Bounds.marginal_probability b ~station:1 ~level:2 in
  Alcotest.(check bool) "marginal brackets" true (Bounds.contains interval exact)

let test_lp_size_reported () =
  let b = Bounds.create_exn (fig5 ~population:4 ()) in
  let vars, rows = Bounds.lp_size b in
  Alcotest.(check int) "vars" 90 vars;
  Alcotest.(check bool) "rows positive" true (rows > 0)

let test_flow_balance_implied () =
  (* DESIGN.md claims the traffic equations X_k = Σ_j p_jk X_j follow from
     the balance + busy-mass families: verify them at an arbitrary vertex
     of the feasible region (an LP optimum of an unrelated objective). *)
  let net = fig5 ~population:4 () in
  let ms, model = Constraints.build Constraints.minimal net in
  let prepared =
    match Mapqn_lp.Simplex.prepare model with
    | Ok p -> p
    | Error _ -> Alcotest.fail "prepare failed"
  in
  let objective =
    [ (Mapqn_lp.Lp_model.var_of_int model (Marginal_space.v ms ~station:1 ~level:2 ~phase:0), 1.) ]
  in
  let values =
    match Mapqn_lp.Simplex.optimize prepared Mapqn_lp.Simplex.Maximize objective with
    | Mapqn_lp.Simplex.Optimal s -> s.Mapqn_lp.Simplex.values
    | _ -> Alcotest.fail "optimize failed"
  in
  let throughput k =
    let rates =
      Mapqn_map.Process.completion_rates
        (Station.service_process (Network.station net k))
    in
    let acc = ref 0. in
    for n = 1 to 4 do
      for h = 0 to 1 do
        acc :=
          !acc
          +. rates.(Marginal_space.phase_component ms h k)
             *. values.(Marginal_space.v ms ~station:k ~level:n ~phase:h)
      done
    done;
    !acc
  in
  let xs = Array.init 3 throughput in
  for k = 0 to 2 do
    let arrivals = ref 0. in
    for j = 0 to 2 do
      arrivals := !arrivals +. (xs.(j) *. Network.routing_prob net j k)
    done;
    Alcotest.(check (float 1e-5))
      (Printf.sprintf "traffic equation at %d" k)
      xs.(k) !arrivals
  done

(* ---------------- properties ---------------- *)

let arb_random_network =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* population = int_range 1 4 in
      return (seed, population))

let random_network (seed, population) =
  let rng = Mapqn_prng.Rng.create ~seed in
  let m = 3 in
  let routing =
    Array.init m (fun _ ->
        let row = Array.init m (fun _ -> Mapqn_prng.Rng.float rng +. 0.05) in
        let s = Mapqn_util.Ksum.sum row in
        Array.map (fun x -> x /. s) row)
  in
  let scv = Mapqn_prng.Dist.uniform rng ~lo:1.5 ~hi:20. in
  let gamma2 = Mapqn_prng.Dist.uniform rng ~lo:0. ~hi:0.9 in
  let mean = Mapqn_prng.Dist.uniform rng ~lo:0.3 ~hi:3. in
  let stations =
    [|
      exp_station (Mapqn_prng.Dist.uniform rng ~lo:0.5 ~hi:3.);
      exp_station (Mapqn_prng.Dist.uniform rng ~lo:0.5 ~hi:3.);
      Station.map (Mapqn_map.Fit.map2_exn ~mean ~scv ~gamma2 ());
    |]
  in
  Network.make_exn ~stations ~routing ~population

let prop_exact_point_always_feasible =
  QCheck.Test.make ~name:"exact aggregation feasible on random networks" ~count:20
    arb_random_network (fun params ->
      let net = random_network params in
      let sol = Solution.solve net in
      let ms, model = Constraints.build Constraints.standard net in
      let point = Marginal_space.aggregate_exact ms sol in
      match Mapqn_lp.Lp_model.check_feasible ~tol:1e-7 model point with
      | Ok () -> true
      | Error _ -> false)

let prop_bounds_bracket_random =
  QCheck.Test.make ~name:"bounds bracket exact on random networks" ~count:15
    arb_random_network (fun params ->
      let net = random_network params in
      let sol = Solution.solve net in
      let b = Bounds.create_exn net in
      let ok = ref true in
      for k = 0 to 2 do
        if not (Bounds.contains (Bounds.throughput b k) (Solution.throughput sol k))
        then ok := false;
        if not (Bounds.contains (Bounds.utilization b k) (Solution.utilization sol k))
        then ok := false
      done;
      !ok)

(* ---------------- population sweeps ---------------- *)

(* The incremental constraint builder promises output byte-identical to a
   fresh [Constraints.build] — row order, names, senses, right-hand
   sides and term lists — both when creating and when extending from a
   smaller population. *)
let check_models_identical label fresh inc =
  let module Lp = Mapqn_lp.Lp_model in
  Alcotest.(check int)
    (label ^ ": row count") (Lp.num_rows fresh) (Lp.num_rows inc);
  for r = 0 to Lp.num_rows fresh - 1 do
    if
      not
        (Lp.row_name fresh r = Lp.row_name inc r
        && Lp.row_sense fresh r = Lp.row_sense inc r
        && Lp.row_rhs fresh r = Lp.row_rhs inc r
        && List.for_all2
             (fun (v1, c1) (v2, c2) ->
               (v1 : Mapqn_lp.Lp_model.var) = v2 && (c1 : float) = c2)
             (Lp.row_terms fresh r) (Lp.row_terms inc r))
    then
      Alcotest.failf "%s: row %d (%s) differs from fresh build" label r
        (Lp.row_name fresh r)
  done

let test_incremental_equals_build () =
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun n ->
          let net = fig5 ~population:n () in
          let _, fresh = Constraints.build config net in
          let inc, _, created = Constraints.Incremental.create config net in
          check_models_identical
            (Printf.sprintf "create %s N=%d" cname n)
            fresh created;
          let net' = Network.with_population net (n + 3) in
          let _, fresh' = Constraints.build config net' in
          let _, extended = Constraints.Incremental.extend inc net' in
          check_models_identical
            (Printf.sprintf "extend %s N=%d->%d" cname n (n + 3))
            fresh' extended)
        [ 1; 2; 4 ])
    all_configs

let test_incremental_rejects_other_network () =
  let inc, _, _ = Constraints.Incremental.create Constraints.standard (fig5 ()) in
  Alcotest.check_raises "different stations rejected"
    (Invalid_argument
       "Constraints.Incremental.extend: the network's stations or routing \
        differ from the one the builder was created for (only the population \
        may change)")
    (fun () -> ignore (Constraints.Incremental.extend inc (tandem_map 4)))

(* Warm-started sweeps must produce the same intervals as stepping every
   population cold — the warm start changes the pivot path, never the
   answer beyond solver tolerances. *)
let sweep_report =
  [
    Bounds.Utilization 0;
    Bounds.Throughput 0;
    Bounds.Mean_queue_length 1;
    Bounds.Response_time { reference = 0 };
  ]

let intervals_agree label (m1, (i1 : Bounds.interval)) (m2, (i2 : Bounds.interval)) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: same metric" label)
    true (m1 = m2);
  let close a b =
    Float.abs (a -. b) <= 1e-4 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  in
  if not (close i1.Bounds.lower i2.Bounds.lower && close i1.Bounds.upper i2.Bounds.upper)
  then
    Alcotest.failf "%s (%s): warm [%g, %g] vs cold [%g, %g]" label
      (Bounds.metric_to_string m1) i1.Bounds.lower i1.Bounds.upper
      i2.Bounds.lower i2.Bounds.upper

let check_sweep_agreement label ?config network_of populations =
  let warm = Bounds.Sweep.create ?config network_of in
  let cold = Bounds.Sweep.create ?config ~warm_start:false network_of in
  List.iter
    (fun population ->
      let bw = Bounds.Sweep.step_exn warm population in
      let bc = Bounds.Sweep.step_exn cold population in
      List.iter2
        (intervals_agree (Printf.sprintf "%s N=%d" label population))
        (Bounds.eval bw sweep_report) (Bounds.eval bc sweep_report))
    populations;
  let sw = Bounds.Sweep.stats warm and sc = Bounds.Sweep.stats cold in
  Alcotest.(check int)
    (label ^ ": all steps accounted") (List.length populations)
    (sw.Bounds.Sweep.warm + sw.Bounds.Sweep.cold);
  Alcotest.(check int)
    (label ^ ": cold sweep never warm-starts") 0 sc.Bounds.Sweep.warm

let prop_sweep_warm_matches_cold_fig4 =
  (* The Figure-4 configuration: autocorrelated tandem, standard
     constraint set. *)
  QCheck.Test.make ~name:"warm sweep = cold sweep (fig4 tandem)" ~count:8
    QCheck.(
      make
        Gen.(
          let* start = int_range 1 4 in
          let* len = int_range 2 4 in
          return (start, len)))
    (fun (start, len) ->
      let populations = List.init len (fun i -> start + (i * 2)) in
      check_sweep_agreement "tandem"
        (fun population ->
          Mapqn_workloads.Tandem.network ~population ())
        populations;
      true)

let prop_sweep_warm_matches_cold_fig8 =
  (* The Figure-8 configuration: case-study topology, full (level-2)
     constraint set. *)
  QCheck.Test.make ~name:"warm sweep = cold sweep (fig8 case study)" ~count:5
    QCheck.(
      make
        Gen.(
          let* start = int_range 1 3 in
          let* len = int_range 2 3 in
          return (start, len)))
    (fun (start, len) ->
      let populations = List.init len (fun i -> start + (i * 2)) in
      check_sweep_agreement "case-study" ~config:Constraints.full
        (fun population ->
          Mapqn_workloads.Case_study.network ~population ())
        populations;
      true)

let test_sweep_brackets_exact () =
  (* Stepped bounds still bracket the exact solution at every population
     (certificates run inside each step's optimizations). *)
  let sweep = Bounds.Sweep.create (fun population -> fig5 ~population ()) in
  List.iter
    (fun population ->
      let b = Bounds.Sweep.step_exn sweep population in
      let sol = Solution.solve (fig5 ~population ()) in
      for k = 0 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "U%d bracketed at N=%d" k population)
          true
          (Bounds.contains (Bounds.utilization b k) (Solution.utilization sol k))
      done)
    [ 1; 2; 3; 4; 5 ]

let test_sweep_run_progress_and_skip () =
  (* [Sweep.run] owns the progress wiring: one model per population,
     skipped ids reported and omitted from the results. *)
  let stepped = ref [] in
  let sweep = Bounds.Sweep.create (fun population -> fig5 ~population ()) in
  let results =
    Bounds.Sweep.run sweep ~populations:[ 1; 2; 3 ]
      ~skip:(fun id -> id = "N=2")
      ~f:(fun ~phase ~bounds population ->
        phase "exact";
        let b = bounds () in
        stepped := population :: !stepped;
        Bounds.utilization b 0)
  in
  Alcotest.(check (list int))
    "skipped population omitted" [ 1; 3 ]
    (List.map fst results);
  Alcotest.(check (list int)) "stepped populations" [ 1; 3 ] (List.rev !stepped)

let test_sweep_ledger_records () =
  (* With a ledger enabled, every sweep step and every eval appends
     exactly one record carrying the provenance the doctor needs:
     fingerprint, solver work deltas, certificate triple, health
     snapshot and the evaluated bounds. *)
  let module Ledger = Mapqn_obs.Ledger in
  let module Json = Mapqn_obs.Json in
  let tmp = Filename.temp_file "mapqn_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Ledger.disable ();
      Sys.remove tmp)
  @@ fun () ->
  Ledger.enable_exn ~context:[ ("seed", Json.Number 11.) ] ~path:tmp ();
  let sweep = Bounds.Sweep.create (fun population -> fig5 ~population ()) in
  List.iter
    (fun population ->
      let b = Bounds.Sweep.step_exn sweep population in
      ignore (Bounds.response_time b))
    [ 2; 3 ];
  Ledger.disable ();
  let records = Ledger.load tmp in
  Alcotest.(check (list string)) "one record per unit of work"
    [ "sweep_step"; "eval"; "sweep_step"; "eval" ]
    (List.map Ledger.event records);
  Alcotest.(check (list int)) "populations recorded" [ 2; 2; 3; 3 ]
    (List.map Ledger.population records);
  let fingerprints =
    List.map
      (fun r ->
        match Option.bind (Json.member "fingerprint" r) Json.get_string with
        | Some fp -> fp
        | None -> Alcotest.fail "record lacks a model fingerprint")
      records
  in
  Alcotest.(check bool) "populations fingerprint differently" true
    (List.nth fingerprints 0 <> List.nth fingerprints 2);
  List.iter
    (fun r ->
      Alcotest.(check (option (float 0.))) "seed from context" (Some 11.)
        (Option.bind (Json.member "seed" r) Json.get_float);
      List.iter
        (fun key ->
          if Json.member key r = None then
            Alcotest.failf "record lacks %S" key)
        [ "ts"; "git_sha"; "solver"; "duration_s"; "pivots"; "certificate";
          "health" ])
    records;
  (* The second step was warm-started off the first's basis, and the eval
     records carry the bound interval for the queried metric. *)
  (match List.nth records 2 with
  | r -> (
    match Option.bind (Json.member "warm" r) Json.get_bool with
    | Some warm -> Alcotest.(check bool) "second step warm" true warm
    | None -> Alcotest.fail "sweep_step lacks warm flag"));
  match Json.member "metrics" (List.nth records 1) with
  | Some (Json.List [ m ]) ->
    Alcotest.(check bool) "eval bound finite and ordered" true
      (match
         ( Option.bind (Json.member "lower" m) Json.get_float,
           Option.bind (Json.member "upper" m) Json.get_float )
       with
      | Some lo, Some hi -> Float.is_finite lo && lo <= hi
      | _ -> false)
  | _ -> Alcotest.fail "eval record lacks its metrics list"

let test_sweep_unsupported_network () =
  let sweep =
    Bounds.Sweep.create (fun population ->
        Network.make_exn
          ~stations:[| exp_station 1.; Station.delay ~rate:1. () |]
          ~routing:[| [| 0.; 1. |]; [| 1.; 0. |] |]
          ~population)
  in
  match Bounds.Sweep.step sweep 2 with
  | Error (Bounds.Unsupported_network _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Bounds.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Unsupported_network"

let () =
  Alcotest.run "core"
    [
      ( "marginal_space",
        [
          Alcotest.test_case "dimensions" `Quick test_space_dimensions;
          Alcotest.test_case "polynomial scaling" `Quick test_space_scales_polynomially;
          Alcotest.test_case "phase subst" `Quick test_phase_subst;
          Alcotest.test_case "distinct indices" `Quick test_var_indices_distinct;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "exactness",
        [
          Alcotest.test_case "fig5 exact point feasible" `Quick
            (exact_point_feasible (fig5 ()));
          Alcotest.test_case "mmpp tandem exact point feasible" `Quick
            (exact_point_feasible (tandem_map 4));
          Alcotest.test_case "cut balance residual" `Quick test_cut_balance_residual_zero;
          Alcotest.test_case "aggregate normalized" `Quick test_aggregate_normalized;
          QCheck_alcotest.to_alcotest prop_exact_point_always_feasible;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "brackets fig5" `Quick test_brackets_fig5;
          Alcotest.test_case "brackets mmpp tandem" `Quick test_brackets_tandem_mmpp;
          Alcotest.test_case "brackets full config" `Quick test_brackets_full_config;
          Alcotest.test_case "brackets minimal config" `Quick test_brackets_minimal_config;
          Alcotest.test_case "brackets two MAP stations" `Quick
            test_brackets_two_map_stations;
          Alcotest.test_case "brackets product form" `Quick test_brackets_product_form;
          Alcotest.test_case "exponential tandem tight" `Quick
            test_exponential_network_bounds_tight;
          Alcotest.test_case "tightness ordering" `Quick test_tightness_improves_with_config;
          Alcotest.test_case "interval helpers" `Quick test_interval_helpers;
          Alcotest.test_case "interval infinite endpoints" `Quick
            test_interval_infinite_endpoints;
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
          Alcotest.test_case "eval batch = wrapper sequence" `Quick
            test_eval_batch_matches_wrappers;
          Alcotest.test_case "dense vs revised agree" `Quick
            test_dense_revised_bounds_agree;
          Alcotest.test_case "population zero" `Quick test_population_zero_bounds;
          Alcotest.test_case "custom objective" `Quick test_custom_objective;
          Alcotest.test_case "marginal probability" `Quick test_marginal_probability_bounds;
          Alcotest.test_case "lp size" `Quick test_lp_size_reported;
          Alcotest.test_case "flow balance implied" `Quick test_flow_balance_implied;
          QCheck_alcotest.to_alcotest prop_bounds_bracket_random;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "incremental = fresh build" `Quick
            test_incremental_equals_build;
          Alcotest.test_case "incremental rejects other network" `Quick
            test_incremental_rejects_other_network;
          Alcotest.test_case "stepped bounds bracket exact" `Quick
            test_sweep_brackets_exact;
          Alcotest.test_case "run progress and skip" `Quick
            test_sweep_run_progress_and_skip;
          Alcotest.test_case "unsupported network" `Quick
            test_sweep_unsupported_network;
          Alcotest.test_case "ledger records per step and eval" `Quick
            test_sweep_ledger_records;
          QCheck_alcotest.to_alcotest prop_sweep_warm_matches_cold_fig4;
          QCheck_alcotest.to_alcotest prop_sweep_warm_matches_cold_fig8;
        ] );
    ]
