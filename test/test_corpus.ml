(* Hard-model regression corpus (test/corpus/hard_models.jsonl).

   The corpus pins the 108 random Table-1 models (of the first 10,000,
   master seed 2008) that failed their LP optimality certificate before
   the certificate rescue ladder existed: primal residuals up to ~1e-2
   against a 1e-5 tolerance, all at populations <= 8. Each record names
   the model's generation index, derived task seed, network fingerprint
   and the first population of the 1,2,4,8 grid whose certificate
   failed. The fixture was produced by tools/harvest_corpus.ml from a
   pre-rescue fleet run; the fingerprints pin the generator so the suite
   detects drift in model generation as loudly as a solver regression.

   Every corpus model must now certify — and the near-degenerate
   generator below must keep producing fresh models of the same species
   that the revised and dense solvers agree on. *)

module Network = Mapqn_model.Network
module Station = Mapqn_model.Station
module Random_models = Mapqn_workloads.Random_models
module Bounds = Mapqn_core.Bounds
module Constraints = Mapqn_core.Constraints
module Solution = Mapqn_ctmc.Solution
module Health = Mapqn_obs.Health
module Json = Mapqn_obs.Json
module Ledger = Mapqn_obs.Ledger

(* ---------------- corpus fixture ---------------- *)

type entry = {
  index : int;
  id : string;
  master_seed : int;
  seed : int;
  fingerprint : string;
  fail_population : int;
}

(* `dune runtest` runs the suite from test/ inside _build (where the
   dune deps put the fixture); `dune exec test/test_corpus.exe` runs
   from the project root. *)
let corpus_path =
  List.find_opt Sys.file_exists
    [ "corpus/hard_models.jsonl"; "test/corpus/hard_models.jsonl" ]

let grid = [ 1; 2; 4; 8 ]

let load_corpus () =
  let corpus_path =
    match corpus_path with
    | Some p -> p
    | None -> Alcotest.fail "corpus fixture missing: corpus/hard_models.jsonl"
  in
  let ic = open_in corpus_path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.parse line with
         | Error msg -> Alcotest.failf "corpus: unparsable line: %s" msg
         | Ok j ->
           let num name =
             match Json.member name j with
             | Some (Json.Number v) -> int_of_float v
             | _ -> Alcotest.failf "corpus: missing field %s" name
           in
           let str name =
             match Json.member name j with
             | Some (Json.String s) -> s
             | _ -> Alcotest.failf "corpus: missing field %s" name
           in
           entries :=
             {
               index = num "index";
               id = str "model";
               master_seed = num "master_seed";
               seed = num "seed";
               fingerprint = str "fingerprint";
               fail_population = num "fail_population";
             }
             :: !entries
     done
   with End_of_file -> ());
  close_in ic;
  let entries = List.rev !entries in
  if entries = [] then Alcotest.fail "corpus fixture is empty";
  entries

(* Regenerate the corpus models exactly as `mapqn fleet` does:
   sequentially from the master seed, default spec. Shared across tests
   (generation is microseconds per model, but there is no reason to do
   it three times). *)
let corpus_models =
  lazy
    (let entries = load_corpus () in
     let master_seed =
       match entries with
       | e :: rest ->
         List.iter
           (fun e' ->
             if e'.master_seed <> e.master_seed then
               Alcotest.fail "corpus: mixed master seeds")
           rest;
         e.master_seed
       | [] -> assert false
     in
     let count = 1 + List.fold_left (fun a e -> max a e.index) 0 entries in
     let models =
       Array.of_list (Random_models.generate_many ~seed:master_seed count)
     in
     List.map
       (fun e ->
         if e.index < 0 || e.index >= Array.length models then
           Alcotest.failf "corpus: index %d out of range" e.index;
         let model = models.(e.index) in
         let fp = Network.fingerprint model.Random_models.network in
         if fp <> e.fingerprint then
           Alcotest.failf
             "corpus: %s fingerprint drift (fixture %s, generated %s) — the \
              random-model generator no longer reproduces the corpus"
             e.id e.fingerprint fp;
         if Mapqn_fleet.Fleet.task_seed ~seed:e.master_seed e.index <> e.seed
         then Alcotest.failf "corpus: %s derived-seed drift" e.id;
         (e, model))
       entries)

(* ---------------- every corpus model certifies ---------------- *)

let test_corpus_certifies () =
  (* An optional ledger sink lets CI run `mapqn doctor` over exactly
     this suite's solver records (the corpus CI job sets the variable;
     local runs skip it). *)
  (match Sys.getenv_opt "MAPQN_CORPUS_LEDGER" with
  | Some path when not (Ledger.is_enabled ()) ->
    Ledger.enable_exn
      ~context:[ ("experiment", Json.String "corpus") ]
      ~path ()
  | _ -> ());
  let causes = Hashtbl.create 8 in
  List.iter
    (fun (e, model) ->
      (* [standard] constraints: the config the harvest ran under (the
         CLI's --config default), hence the config these models failed
         under — [full] solves a different, larger LP. *)
      let sweep =
        Bounds.Sweep.create ~config:Constraints.standard (fun population ->
            Network.with_population model.Random_models.network population)
      in
      List.iter
        (fun population ->
          if population <= e.fail_population then begin
            (* [step_exn] raises [Bounds.Solver_error] on a certificate
               failure the rescue ladder cannot repair — exactly the
               pre-rescue failure mode this corpus pins. *)
            let b =
              try Bounds.Sweep.step_exn sweep population
              with ex ->
                Alcotest.failf "%s N=%d no longer certifies: %s" e.id
                  population (Printexc.to_string ex)
            in
            (* [Sweep.step] and each [Bounds.eval] begin a fresh health
               snapshot: a prepare-time rescue must be read before the
               evals wipe it, the eval-time certificate rescue after. *)
            let step_rescue = (Health.current ()).Health.rescue in
            ignore (Bounds.response_time b : Bounds.interval);
            if population = e.fail_population then begin
              (* Classify what fixed the historical failure: a rescue
                 rung, the post-solve refinement correcting a
                 certificate-scale residual, or — for models the
                 row-scaled anti-degeneracy perturbation now steers
                 around the bad basis entirely — a clean solve whose
                 pre-refinement residual is already far below
                 tolerance. *)
              let h = Health.current () in
              let rescue =
                match (step_rescue, h.Health.rescue) with
                | None, r | r, None -> r
                | (Some a as ra), (Some b as rb) ->
                  if Health.rescue_depth_of a >= Health.rescue_depth_of b then
                    ra
                  else rb
              in
              let cause =
                match rescue with
                | Some rung -> Health.rescue_to_string rung
                | None when h.Health.refine_residual > 1e-9 -> "refinement"
                | None -> "adaptive-perturbation"
              in
              Hashtbl.replace causes cause
                (1 + Option.value ~default:0 (Hashtbl.find_opt causes cause));
              if rescue = Some Health.Uncertified then
                Alcotest.failf "%s N=%d accepted uncertified" e.id population
            end
          end)
        grid)
    (Lazy.force corpus_models);
  Hashtbl.iter
    (fun cause n -> Printf.printf "corpus rescue cause: %s x%d\n%!" cause n)
    causes

(* ---------------- exact-CTMC containment ---------------- *)

(* For corpus models small enough to solve exactly (fail population
   <= 6), the rescued bounds must still bracket the exact CTMC
   response time at every grid population up to the failure — a rescue
   that certified a wrong optimum would show up here. *)
let test_corpus_ctmc_containment () =
  let small =
    List.filter (fun (e, _) -> e.fail_population <= 6) (Lazy.force corpus_models)
  in
  if small = [] then Alcotest.fail "corpus: no models with fail population <= 6";
  List.iter
    (fun (e, model) ->
      let sweep =
        Bounds.Sweep.create ~config:Constraints.standard (fun population ->
            Network.with_population model.Random_models.network population)
      in
      List.iter
        (fun population ->
          if population <= e.fail_population then begin
            let b = Bounds.Sweep.step_exn sweep population in
            let r = Bounds.response_time b in
            let net =
              Network.with_population model.Random_models.network population
            in
            let exact = Solution.system_response_time (Solution.solve net) in
            if not (Bounds.contains r exact) then
              Alcotest.failf
                "%s N=%d: exact R=%.9g outside rescued bounds [%.9g, %.9g]"
                e.id population exact r.Bounds.lower r.Bounds.upper
          end)
        grid)
    small;
  Printf.printf "corpus CTMC containment: %d model(s) checked\n%!"
    (List.length small)

(* ---------------- near-degenerate generator ---------------- *)

(* Fresh models of the corpus species: tied service rates, uniform
   routing (so visit ratios — and with tied means, demands — repeat),
   tiny populations. [tie_exp] controls how exactly the rates tie:
   0 is an exact tie, k > 0 splits them by 10^-k. The built-in
   [int_range] shrinkers walk a failure toward (seed 0, population 1,
   exact tie) — the smallest, most degenerate reproduction. *)
let arb_degenerate =
  QCheck.(triple (int_range 0 99_999) (int_range 1 3) (int_range 0 12))

let degenerate_network (seed, population, tie_exp) =
  let rng = Mapqn_prng.Rng.create ~seed in
  let eps = if tie_exp = 0 then 0. else 10. ** float_of_int (-tie_exp) in
  let rate = Mapqn_prng.Dist.uniform rng ~lo:0.5 ~hi:2. in
  let scv = Mapqn_prng.Dist.uniform rng ~lo:1.5 ~hi:4. in
  let gamma2 = Mapqn_prng.Dist.uniform rng ~lo:0. ~hi:0.9 in
  let stations =
    [|
      Station.exp ~rate ();
      Station.exp ~rate:(rate *. (1. +. eps)) ();
      (* The MAP station's mean ties to the exponential rate, so all
         three demands coincide (uniform routing gives equal visits). *)
      Station.map (Mapqn_map.Fit.map2_exn ~mean:(1. /. rate) ~scv ~gamma2 ());
    |]
  in
  let third = 1. /. 3. in
  let routing = Array.make 3 [| third; third; third |] in
  Network.make_exn ~stations ~routing ~population

let close ~tol a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs a)

let prop_degenerate_revised_matches_dense =
  QCheck.Test.make
    ~name:"revised = dense on near-degenerate models (both certify)"
    ~count:25 arb_degenerate (fun params ->
      let net = degenerate_network params in
      (* [create_exn] + metric queries raise [Bounds.Solver_error] if
         the certificate (post-rescue) fails — either solver failing to
         certify fails the property. *)
      let bd = Bounds.create_exn ~solver:Bounds.Dense net in
      let br = Bounds.create_exn ~solver:Bounds.Revised net in
      let check name { Bounds.lower = l1; upper = u1 }
          { Bounds.lower = l2; upper = u2 } =
        if not (close ~tol:1e-8 l1 l2 && close ~tol:1e-8 u1 u2) then
          QCheck.Test.fail_reportf
            "%s disagrees: dense [%.12g, %.12g] vs revised [%.12g, %.12g]"
            name l1 u1 l2 u2
      in
      check "R" (Bounds.response_time bd) (Bounds.response_time br);
      for k = 0 to 2 do
        check
          (Printf.sprintf "X[%d]" k)
          (Bounds.throughput bd k) (Bounds.throughput br k)
      done;
      true)

let () =
  Alcotest.run "corpus"
    [
      ( "hard-models",
        [
          Alcotest.test_case "every corpus model certifies" `Slow
            test_corpus_certifies;
          Alcotest.test_case "exact CTMC within rescued bounds" `Slow
            test_corpus_ctmc_containment;
        ] );
      ( "near-degenerate",
        [ QCheck_alcotest.to_alcotest prop_degenerate_revised_matches_dense ]
      );
    ]
