open Mapqn_lp

let check_obj = Alcotest.(check (float 1e-6))

let solution = function
  | Simplex.Optimal s -> s
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded"
  | Simplex.Iteration_limit -> Alcotest.fail "unexpected Iteration_limit"

(* ---------------- basic textbook LPs ---------------- *)

let test_max_2d () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6). *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var ~name:"x" m in
  let y = Lp_model.add_var ~name:"y" m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 4.;
  Lp_model.add_row m [ (y, 2.) ] Lp_model.Le 12.;
  Lp_model.add_row m [ (x, 3.); (y, 2.) ] Lp_model.Le 18.;
  let s = solution (Simplex.solve m Simplex.Maximize [ (x, 3.); (y, 5.) ]) in
  check_obj "objective" 36. s.objective;
  check_obj "x" 2. s.values.((x :> int));
  check_obj "y" 6. s.values.((y :> int))

let test_min_with_equalities () =
  (* min x + y st x + 2y = 4, 3x + y = 7 -> x=2, y=1, obj 3. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 2.) ] Lp_model.Eq 4.;
  Lp_model.add_row m [ (x, 3.); (y, 1.) ] Lp_model.Eq 7.;
  let s = solution (Simplex.solve m Simplex.Minimize [ (x, 1.); (y, 1.) ]) in
  check_obj "objective" 3. s.objective;
  check_obj "x" 2. s.values.((x :> int));
  check_obj "y" 1. s.values.((y :> int))

let test_ge_constraints () =
  (* min 2x + 3y st x + y >= 10, x >= 2 -> obj 20 at (10, 0). *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Ge 10.;
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 2.;
  let s = solution (Simplex.solve m Simplex.Minimize [ (x, 2.); (y, 3.) ]) in
  check_obj "objective" 20. s.objective

let test_infeasible () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 1.;
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 2.;
  match Simplex.solve m Simplex.Minimize [ (x, 1.) ] with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_unbounded () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 1.;
  match Simplex.solve m Simplex.Maximize [ (x, 1.) ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let test_negative_rhs () =
  (* Constraint with negative rhs exercises the sign normalization. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, -1.) ] Lp_model.Le (-2.);
  (* i.e. x >= 2 *)
  let s = solution (Simplex.solve m Simplex.Minimize [ (x, 1.) ]) in
  check_obj "x = 2" 2. s.objective

let test_var_upper_bound () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var ~ub:3.5 m in
  let s = solution (Simplex.solve m Simplex.Maximize [ (x, 2.) ]) in
  check_obj "respects ub" 7. s.objective

let test_var_lower_bound_shift () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var ~lb:5. m in
  let y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Le 8.;
  let s = solution (Simplex.solve m Simplex.Maximize [ (y, 1.) ]) in
  check_obj "y limited by shifted x" 3. s.objective;
  check_obj "x at its lower bound" 5. s.values.((x :> int))

let test_free_variable () =
  (* min x st x >= -7 with x free -> -7. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var ~lb:neg_infinity m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge (-7.);
  let s = solution (Simplex.solve m Simplex.Minimize [ (x, 1.) ]) in
  check_obj "negative optimum" (-7.) s.objective

let test_degenerate () =
  (* Klee-Minty-ish degenerate corner; checks anti-cycling. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m and z = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 1.;
  Lp_model.add_row m [ (x, 4.); (y, 1.) ] Lp_model.Le 8.;
  Lp_model.add_row m [ (x, 8.); (y, 4.); (z, 1.) ] Lp_model.Le 32.;
  let s =
    solution (Simplex.solve m Simplex.Maximize [ (x, 4.); (y, 2.); (z, 1.) ])
  in
  check_obj "klee-minty optimum" 32. s.objective

let test_redundant_equalities () =
  (* The same equality twice plus an implied one: phase 1 must drop the
     dependent rows rather than fail. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 2.;
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 2.;
  Lp_model.add_row m [ (x, 2.); (y, 2.) ] Lp_model.Eq 4.;
  let s = solution (Simplex.solve m Simplex.Maximize [ (x, 1.) ]) in
  check_obj "x can reach 2" 2. s.objective

let test_equality_normalization_lp () =
  (* A probability-style LP: sum p_i = 1, p >= 0; max p_2 = 1. *)
  let m = Lp_model.create () in
  let ps = Array.init 4 (fun _ -> Lp_model.add_var m) in
  Lp_model.add_row m (Array.to_list (Array.map (fun p -> (p, 1.)) ps)) Lp_model.Eq 1.;
  let s = solution (Simplex.solve m Simplex.Maximize [ (ps.(2), 1.) ]) in
  check_obj "max prob" 1. s.objective;
  let s = solution (Simplex.solve m Simplex.Minimize [ (ps.(2), 1.) ]) in
  check_obj "min prob" 0. s.objective

let test_prepare_reuse () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 10.;
  match Simplex.prepare m with
  | Error _ -> Alcotest.fail "prepare failed"
  | Ok prepared ->
    let smax = solution (Simplex.optimize prepared Simplex.Maximize [ (x, 1.) ]) in
    let smin = solution (Simplex.optimize prepared Simplex.Minimize [ (x, 1.) ]) in
    check_obj "max x" 10. smax.objective;
    check_obj "min x" 0. smin.objective;
    (* Re-optimizing after previous optimizations must not corrupt state. *)
    let again = solution (Simplex.optimize prepared Simplex.Maximize [ (y, 1.) ]) in
    check_obj "max y" 10. again.objective

let test_check_feasible () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 1.;
  (match Lp_model.check_feasible m [| 0.4; 0.6 |] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected feasible: %s" e);
  (match Lp_model.check_feasible m [| 0.4; 0.7 |] with
  | Ok () -> Alcotest.fail "expected violation"
  | Error _ -> ());
  match Lp_model.check_feasible m [| -0.5; 1.5 |] with
  | Ok () -> Alcotest.fail "expected bound violation"
  | Error _ -> ()

let test_duplicate_terms_summed () =
  (* add_row with two terms on the same variable behaves like their sum. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (x, 1.) ] Lp_model.Le 4.;
  let s = solution (Simplex.solve m Simplex.Maximize [ (x, 1.) ]) in
  check_obj "2x <= 4" 2. s.objective

let test_model_pp () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var ~name:"x" ~ub:5. m in
  let y = Lp_model.add_var ~name:"y" m in
  Lp_model.add_row ~name:"cap" m [ (x, 1.); (y, 2.) ] Lp_model.Le 10.;
  let rendered = Format.asprintf "%a" Lp_model.pp m in
  List.iter
    (fun needle ->
      if not (String.length rendered > 0 && String.length needle > 0) then ()
      else
        let found =
          let nl = String.length needle and rl = String.length rendered in
          let rec go i = i + nl <= rl && (String.sub rendered i nl = needle || go (i + 1)) in
          go 0
        in
        if not found then Alcotest.failf "missing %S in rendering" needle)
    [ "2 variables"; "x <= 5"; "cap:"; "2 y <= 10" ]

let test_duals_textbook () =
  (* Wyndor Glass (Hillier & Lieberman): max 3x + 5y with x <= 4, 2y <= 12,
     3x + 2y <= 18 has shadow prices (0, 3/2, 1). *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 4.;
  Lp_model.add_row m [ (y, 2.) ] Lp_model.Le 12.;
  Lp_model.add_row m [ (x, 3.); (y, 2.) ] Lp_model.Le 18.;
  let s = solution (Simplex.solve m Simplex.Maximize [ (x, 3.); (y, 5.) ]) in
  Alcotest.(check int) "three duals" 3 (Array.length s.Simplex.duals);
  check_obj "slack constraint dual" 0. s.Simplex.duals.(0);
  check_obj "second dual" 1.5 s.Simplex.duals.(1);
  check_obj "third dual" 1. s.Simplex.duals.(2)

let test_strong_duality_equalities () =
  (* For equality-constrained LPs over x >= 0, strong duality gives
     objective = Σ duals·rhs at the optimum. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m and z = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.); (z, 1.) ] Lp_model.Eq 6.;
  Lp_model.add_row m [ (x, 1.); (y, -1.) ] Lp_model.Eq 1.;
  let s =
    solution (Simplex.solve m Simplex.Minimize [ (x, 2.); (y, 3.); (z, 1.) ])
  in
  let dual_obj = (s.Simplex.duals.(0) *. 6.) +. (s.Simplex.duals.(1) *. 1.) in
  Alcotest.(check (float 1e-4)) "strong duality" s.Simplex.objective dual_obj

let prop_strong_duality_random_eq =
  (* Random feasible equality LPs (b = A x0 with x0 > 0 interior-ish):
     primal and dual objectives agree at the reported optimum. *)
  QCheck.Test.make ~name:"strong duality on random equality LPs" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 0 1_000_000))
    (fun (nvars, seed) ->
      let rng = Mapqn_prng.Rng.create ~seed in
      let nrows = max 1 (nvars - 1) in
      let m = Lp_model.create () in
      let vars = Array.init nvars (fun _ -> Lp_model.add_var m) in
      let x0 = Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:0.5 ~hi:2.) in
      let rhs = Array.make nrows 0. in
      for i = 0 to nrows - 1 do
        let coeffs =
          Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:(-1.) ~hi:2.)
        in
        rhs.(i) <- Mapqn_util.Ksum.dot coeffs x0;
        Lp_model.add_row m
          (Array.to_list (Array.mapi (fun j c -> (vars.(j), c)) coeffs))
          Lp_model.Eq rhs.(i)
      done;
      let c = Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:0.1 ~hi:2.) in
      let obj = Array.to_list (Array.mapi (fun j v -> (v, c.(j))) vars) in
      match Simplex.solve m Simplex.Minimize obj with
      | Simplex.Optimal s ->
        let dual_obj = Mapqn_util.Ksum.dot s.Simplex.duals rhs in
        (* Reduced costs of nonbasic variables are >= 0 at a minimum, so
           the dual objective can undershoot only by numerical margin. *)
        Float.abs (dual_obj -. s.Simplex.objective)
        <= 1e-4 *. Float.max 1. (Float.abs s.Simplex.objective)
      | Simplex.Unbounded | Simplex.Iteration_limit -> true
      | Simplex.Infeasible -> false)

(* ---------------- properties ---------------- *)

(* Random LPs built to be feasible by construction: pick a random point x0
   >= 0, random A, set b = A x0 with <= rows. Then:
   - the solver must report Optimal (never Infeasible);
   - the optimum must be >= the objective at x0 for Maximize;
   - the returned point must be feasible. *)
let gen_feasible_lp =
  QCheck.Gen.(
    let* nvars = int_range 1 6 in
    let* nrows = int_range 1 6 in
    let* seed = int_range 0 1_000_000 in
    return (nvars, nrows, seed))

let build_random_lp (nvars, nrows, seed) =
  let rng = Mapqn_prng.Rng.create ~seed in
  let m = Lp_model.create () in
  let vars = Array.init nvars (fun _ -> Lp_model.add_var m) in
  let x0 = Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:0. ~hi:3.) in
  for _ = 1 to nrows do
    let coeffs =
      Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:(-2.) ~hi:2.)
    in
    let b = Mapqn_util.Ksum.dot coeffs x0 in
    let slackened = b +. Mapqn_prng.Dist.uniform rng ~lo:0. ~hi:1. in
    Lp_model.add_row m
      (Array.to_list (Array.mapi (fun i c -> (vars.(i), c)) coeffs))
      Lp_model.Le slackened
  done;
  let c = Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:(-1.) ~hi:1.) in
  (m, vars, x0, c)

let prop_feasible_lp_not_infeasible =
  QCheck.Test.make ~name:"constructed-feasible LPs are never Infeasible" ~count:150
    (QCheck.make gen_feasible_lp) (fun params ->
      let m, vars, x0, c = build_random_lp params in
      let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
      match Simplex.solve m Simplex.Maximize obj with
      | Simplex.Infeasible -> false
      | Simplex.Unbounded | Simplex.Iteration_limit -> true (* allowed *)
      | Simplex.Optimal s ->
        let at_x0 = Mapqn_util.Ksum.dot c x0 in
        (* Optimal >= value at the known feasible point. *)
        s.objective >= at_x0 -. 1e-6)

let prop_solution_is_feasible =
  QCheck.Test.make ~name:"returned optimum satisfies the model" ~count:150
    (QCheck.make gen_feasible_lp) (fun params ->
      let m, vars, _, c = build_random_lp params in
      let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
      match Simplex.solve m Simplex.Maximize obj with
      | Simplex.Optimal s -> (
        match Lp_model.check_feasible ~tol:1e-6 m s.values with
        | Ok () -> true
        | Error _ -> false)
      | Simplex.Infeasible -> false
      | Simplex.Unbounded | Simplex.Iteration_limit -> true)

let prop_min_max_bracket =
  QCheck.Test.make ~name:"min <= max over the same region" ~count:100
    (QCheck.make gen_feasible_lp) (fun params ->
      let m, vars, _, c = build_random_lp params in
      (* Bound the box so both directions are bounded. *)
      Array.iter (fun v -> Lp_model.add_row m [ (v, 1.) ] Lp_model.Le 100.) vars;
      let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
      match (Simplex.solve m Simplex.Minimize obj, Simplex.solve m Simplex.Maximize obj) with
      | Simplex.Optimal lo, Simplex.Optimal hi -> lo.objective <= hi.objective +. 1e-6
      | _, _ -> true)

(* ---------------- revised simplex ---------------- *)

let test_revised_textbook () =
  (* Same LP as test_max_2d, through the sparse backend. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var ~name:"x" m in
  let y = Lp_model.add_var ~name:"y" m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 4.;
  Lp_model.add_row m [ (y, 2.) ] Lp_model.Le 12.;
  Lp_model.add_row m [ (x, 3.); (y, 2.) ] Lp_model.Le 18.;
  let s = solution (Revised.solve m Simplex.Maximize [ (x, 3.); (y, 5.) ]) in
  check_obj "objective" 36. s.objective;
  check_obj "x" 2. s.values.((x :> int));
  check_obj "y" 6. s.values.((y :> int));
  let s = solution (Revised.solve m Simplex.Minimize [ (x, 1.); (y, 1.) ]) in
  check_obj "origin" 0. s.objective

let test_revised_infeasible_unbounded () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 1.;
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 2.;
  (match Revised.solve m Simplex.Minimize [ (x, 1.) ] with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible");
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 1.;
  match Revised.solve m Simplex.Maximize [ (x, 1.) ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let test_revised_warm_start () =
  (* One prepared state, many objectives: each reoptimization starts from
     the basis the previous one left, and reset restores phase 1. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 4.;
  Lp_model.add_row m [ (y, 2.) ] Lp_model.Le 12.;
  Lp_model.add_row m [ (x, 3.); (y, 2.) ] Lp_model.Le 18.;
  match Revised.prepare m with
  | Error _ -> Alcotest.fail "prepare failed"
  | Ok t ->
    let opt dir obj = (solution (Revised.optimize t dir obj)).Simplex.objective in
    check_obj "max 3x+5y" 36. (opt Simplex.Maximize [ (x, 3.); (y, 5.) ]);
    check_obj "min 3x+5y (warm)" 0. (opt Simplex.Minimize [ (x, 3.); (y, 5.) ]);
    check_obj "max x (warm)" 4. (opt Simplex.Maximize [ (x, 1.) ]);
    check_obj "max 3x+5y again" 36. (opt Simplex.Maximize [ (x, 3.); (y, 5.) ]);
    Revised.reset t;
    check_obj "after reset" 36. (opt Simplex.Maximize [ (x, 3.); (y, 5.) ])

(* Forrest–Tomlin-style eta updates vs fresh factorizations: forcing a
   rebuild of the eta file between (and during) optimizations must not
   change any objective — the eta file is a representation of the basis,
   never part of the answer. *)
let test_ft_updates_vs_fresh_refactorization () =
  let run ~fresh params =
    let m, vars, _, c = build_random_lp params in
    Array.iter (fun v -> Lp_model.add_row m [ (v, 1.) ] Lp_model.Le 50.) vars;
    let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
    match Revised.prepare m with
    | Error _ -> Alcotest.fail "prepare failed"
    | Ok t ->
      List.map
        (fun dir ->
          if fresh then Revised.force_refactor t;
          (solution (Revised.optimize t dir obj)).Simplex.objective)
        [ Simplex.Maximize; Simplex.Minimize; Simplex.Maximize ]
  in
  List.iter
    (fun seed ->
      let params = (6, 8, seed) in
      List.iter2
        (fun a b ->
          Alcotest.(check (float 1e-7))
            (Printf.sprintf "seed %d: eta-updated = freshly factorized" seed)
            a b)
        (run ~fresh:false params) (run ~fresh:true params))
    [ 11; 42; 1234; 987654 ]

(* The stability trigger: a zero drift tolerance checked at every pivot
   turns every incremental-vs-fresh divergence into a forced
   refactorization. The answers must not move, and the refactorization
   count must not decrease relative to the default policy. *)
let test_reinversion_stability_trigger () =
  let build () =
    let params = (6, 8, 2024) in
    let m, vars, _, c = build_random_lp params in
    Array.iter (fun v -> Lp_model.add_row m [ (v, 1.) ] Lp_model.Le 50.) vars;
    let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
    match Revised.prepare m with
    | Error _ -> Alcotest.fail "prepare failed"
    | Ok t -> (t, obj)
  in
  let t_default, obj = build () in
  let t_eager, _ = build () in
  Revised.set_reinversion ~drift_tol:0. ~check_interval:1 t_eager;
  List.iter
    (fun dir ->
      let a = (solution (Revised.optimize t_default dir obj)).Simplex.objective in
      let b = (solution (Revised.optimize t_eager dir obj)).Simplex.objective in
      Alcotest.(check (float 1e-7)) "objective unchanged by eager reinversion" a b)
    [ Simplex.Maximize; Simplex.Minimize ];
  let sd = Revised.stats t_default and se = Revised.stats t_eager in
  Alcotest.(check bool)
    (Printf.sprintf "eager policy refactorizes at least as often (%d vs %d)"
       se.Revised.refactorizations sd.Revised.refactorizations)
    true
    (se.Revised.refactorizations >= sd.Revised.refactorizations);
  Alcotest.(check int) "same number of solves" sd.Revised.solves se.Revised.solves

let test_prepare_error_typed () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 1.;
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 2.;
  let check_backend name = function
    | Error Simplex.Infeasible_phase1 -> ()
    | Error (Simplex.Iteration_limit_phase1 _) ->
      Alcotest.fail (name ^ ": expected Infeasible_phase1, got iteration limit")
    | Ok _ -> Alcotest.fail (name ^ ": expected Error on infeasible model")
  in
  check_backend "dense"
    (Result.map (fun _ -> ()) (Simplex.prepare m));
  check_backend "revised"
    (Result.map (fun _ -> ()) (Revised.prepare m));
  Alcotest.(check bool)
    "error strings are informative" true
    (String.length (Simplex.prepare_error_to_string Simplex.Infeasible_phase1) > 0
    && String.length (Simplex.prepare_error_to_string (Simplex.Iteration_limit_phase1 7)) > 0)

(* Random LPs with arbitrary senses — feasible, infeasible or unbounded —
   solved by both backends, which must agree on the outcome constructor
   and (when optimal) on the objective to 1e-7. *)
let gen_general_lp =
  QCheck.Gen.(
    let* nvars = int_range 1 6 in
    let* nrows = int_range 1 7 in
    let* seed = int_range 0 1_000_000 in
    return (nvars, nrows, seed))

let build_general_lp (nvars, nrows, seed) =
  let rng = Mapqn_prng.Rng.create ~seed in
  let m = Lp_model.create () in
  let vars = Array.init nvars (fun _ -> Lp_model.add_var m) in
  for _ = 1 to nrows do
    let coeffs =
      Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:(-2.) ~hi:2.)
    in
    let sense =
      let u = Mapqn_prng.Dist.uniform rng ~lo:0. ~hi:3. in
      if u < 1. then Lp_model.Le else if u < 2. then Lp_model.Ge else Lp_model.Eq
    in
    let b = Mapqn_prng.Dist.uniform rng ~lo:(-2.) ~hi:4. in
    Lp_model.add_row m
      (Array.to_list (Array.mapi (fun i c -> (vars.(i), c)) coeffs))
      sense b
  done;
  let c = Array.init nvars (fun _ -> Mapqn_prng.Dist.uniform rng ~lo:(-1.) ~hi:1.) in
  (m, Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars))

let prop_dense_revised_agree =
  QCheck.Test.make ~name:"dense and revised backends agree" ~count:300
    (QCheck.make gen_general_lp) (fun params ->
      let m, obj = build_general_lp params in
      let agree direction =
        match (Simplex.solve m direction obj, Revised.solve m direction obj) with
        | Simplex.Optimal a, Simplex.Optimal b ->
          Float.abs (a.Simplex.objective -. b.Simplex.objective)
          <= 1e-7 *. Float.max 1. (Float.abs a.Simplex.objective)
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | Simplex.Unbounded, Simplex.Unbounded -> true
        (* An iteration limit on either side says nothing about agreement. *)
        | Simplex.Iteration_limit, _ | _, Simplex.Iteration_limit -> true
        | _, _ -> false
      in
      agree Simplex.Minimize && agree Simplex.Maximize)

let prop_revised_solution_feasible =
  QCheck.Test.make ~name:"revised optimum satisfies the model" ~count:150
    (QCheck.make gen_feasible_lp) (fun params ->
      let m, vars, _, c = build_random_lp params in
      let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
      match Revised.solve m Simplex.Maximize obj with
      | Simplex.Optimal s -> (
        match Lp_model.check_feasible ~tol:1e-6 m s.values with
        | Ok () -> true
        | Error _ -> false)
      | Simplex.Infeasible -> false
      | Simplex.Unbounded | Simplex.Iteration_limit -> true)

(* ---------------- optimality certificates ---------------- *)

let test_certificate_textbook () =
  (* At the exact optimum of a well-conditioned LP, every certificate
     component should be at machine-precision scale. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Le 4.;
  Lp_model.add_row m [ (y, 2.) ] Lp_model.Le 12.;
  Lp_model.add_row m [ (x, 3.); (y, 2.) ] Lp_model.Le 18.;
  let obj = [ (x, 3.); (y, 5.) ] in
  let s = solution (Simplex.solve m Simplex.Maximize obj) in
  let cert = Certificate.compute m Simplex.Maximize ~objective:obj s in
  Alcotest.(check bool)
    "primal residual tiny" true
    (cert.Certificate.primal_residual <= 1e-9);
  Alcotest.(check bool)
    "dual violation tiny" true
    (cert.Certificate.dual_violation <= 1e-9);
  Alcotest.(check bool)
    "comp slack tiny" true
    (cert.Certificate.comp_slack <= 1e-9);
  match Certificate.check m Simplex.Maximize ~objective:obj s with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Certificate.failure_to_string f)

let test_certificate_rejects_corrupt () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 2.;
  let obj = [ (x, 1.) ] in
  let s = solution (Simplex.solve m Simplex.Maximize obj) in
  (* Shift the reported point (and its witness) off the constraint: the
     primal residual must catch it. *)
  let bad_point = Array.map (fun v -> v +. 0.5) s.Simplex.values in
  let bad =
    { s with Simplex.values = bad_point; Simplex.witness = bad_point }
  in
  (match Certificate.check m Simplex.Maximize ~objective:obj bad with
  | Ok _ -> Alcotest.fail "corrupt point passed the certificate"
  | Error f ->
    Alcotest.(check string) "quantity" "primal_residual" f.Certificate.quantity);
  (* Corrupt the duals: complementary slackness (or dual feasibility)
     must catch it even though the point itself is optimal. *)
  let bad_duals = Array.map (fun d -> d +. 1.) s.Simplex.duals in
  let bad = { s with Simplex.duals = bad_duals } in
  match Certificate.check m Simplex.Maximize ~objective:obj bad with
  | Ok _ -> Alcotest.fail "corrupt duals passed the certificate"
  | Error _ -> ()

let certify_both_backends name m direction obj =
  let s_dense = solution (Simplex.solve m direction obj) in
  (match Certificate.check m direction ~objective:obj s_dense with
  | Ok _ -> ()
  | Error f ->
    Alcotest.fail (name ^ " (dense): " ^ Certificate.failure_to_string f));
  let s_rev = solution (Revised.solve m direction obj) in
  match Certificate.check m direction ~objective:obj s_rev with
  | Ok _ -> ()
  | Error f ->
    Alcotest.fail (name ^ " (revised): " ^ Certificate.failure_to_string f)

let test_certificate_degenerate_redundant () =
  (* Redundant equalities leave zero-level artificials in the phase-1
     basis; after drive-out the certificate must still hold on both
     backends (this is the exact shape that used to silently relax
     rows). *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m and y = Lp_model.add_var m in
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 2.;
  Lp_model.add_row m [ (x, 1.); (y, 1.) ] Lp_model.Eq 2.;
  Lp_model.add_row m [ (x, 2.); (y, 2.) ] Lp_model.Eq 4.;
  Lp_model.add_row m [ (x, 1.) ] Lp_model.Ge 0.5;
  certify_both_backends "redundant" m Simplex.Maximize [ (x, 1.) ]

let prop_certificate_random =
  QCheck.Test.make ~name:"random optima carry passing certificates" ~count:100
    (QCheck.make gen_feasible_lp) (fun params ->
      let m, vars, _, c = build_random_lp params in
      let obj = Array.to_list (Array.mapi (fun i v -> (v, c.(i))) vars) in
      match Simplex.solve m Simplex.Maximize obj with
      | Simplex.Optimal s -> (
        match Certificate.check m Simplex.Maximize ~objective:obj s with
        | Ok _ -> true
        | Error _ -> false)
      | Simplex.Infeasible -> false
      | Simplex.Unbounded | Simplex.Iteration_limit -> true)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "max 2d" `Quick test_max_2d;
          Alcotest.test_case "equalities" `Quick test_min_with_equalities;
          Alcotest.test_case "ge constraints" `Quick test_ge_constraints;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "upper bound" `Quick test_var_upper_bound;
          Alcotest.test_case "lower bound shift" `Quick test_var_lower_bound_shift;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
          Alcotest.test_case "probability simplex" `Quick test_equality_normalization_lp;
          Alcotest.test_case "prepare/optimize reuse" `Quick test_prepare_reuse;
          Alcotest.test_case "check_feasible" `Quick test_check_feasible;
          Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms_summed;
          Alcotest.test_case "model pp" `Quick test_model_pp;
          Alcotest.test_case "textbook duals" `Quick test_duals_textbook;
          Alcotest.test_case "strong duality" `Quick test_strong_duality_equalities;
          QCheck_alcotest.to_alcotest prop_strong_duality_random_eq;
          QCheck_alcotest.to_alcotest prop_feasible_lp_not_infeasible;
          QCheck_alcotest.to_alcotest prop_solution_is_feasible;
          QCheck_alcotest.to_alcotest prop_min_max_bracket;
        ] );
      ( "revised",
        [
          Alcotest.test_case "textbook" `Quick test_revised_textbook;
          Alcotest.test_case "infeasible/unbounded" `Quick
            test_revised_infeasible_unbounded;
          Alcotest.test_case "warm start" `Quick test_revised_warm_start;
          Alcotest.test_case "eta updates vs fresh refactorization" `Quick
            test_ft_updates_vs_fresh_refactorization;
          Alcotest.test_case "stability trigger" `Quick
            test_reinversion_stability_trigger;
          Alcotest.test_case "typed prepare errors" `Quick test_prepare_error_typed;
          QCheck_alcotest.to_alcotest prop_dense_revised_agree;
          QCheck_alcotest.to_alcotest prop_revised_solution_feasible;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "textbook optimum" `Quick test_certificate_textbook;
          Alcotest.test_case "rejects corruption" `Quick
            test_certificate_rejects_corrupt;
          Alcotest.test_case "degenerate redundant rows" `Quick
            test_certificate_degenerate_redundant;
          QCheck_alcotest.to_alcotest prop_certificate_random;
        ] );
    ]
