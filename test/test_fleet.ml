(* Fleet runner: the determinism contract (parallel == sequential,
   bit for bit), the chunk queue, run-context isolation across domains,
   and torn-record-free concurrent telemetry. *)

module Fleet = Mapqn_fleet.Fleet
module Run_ctx = Mapqn_obs.Run_ctx
module Ledger = Mapqn_obs.Ledger
module Json = Mapqn_obs.Json
module Bounds = Mapqn_core.Bounds
module Table1 = Mapqn_experiments.Table1

(* ---------------- Chunk queue ---------------- *)

let test_chunk_queue_fifo () =
  let q = Fleet.Chunk_queue.create () in
  Fleet.Chunk_queue.push q (0, 1);
  Fleet.Chunk_queue.push q (2, 3);
  Fleet.Chunk_queue.close q;
  Alcotest.(check (option (pair int int))) "first" (Some (0, 1))
    (Fleet.Chunk_queue.pop q);
  Alcotest.(check (option (pair int int))) "second" (Some (2, 3))
    (Fleet.Chunk_queue.pop q);
  Alcotest.(check (option (pair int int))) "drained" None
    (Fleet.Chunk_queue.pop q);
  Alcotest.check_raises "push after close"
    (Invalid_argument "Fleet.Chunk_queue.push: closed") (fun () ->
      Fleet.Chunk_queue.push q (4, 5))

let test_chunk_queue_of_range () =
  let q = Fleet.Chunk_queue.of_range ~chunk:3 ~total:8 in
  let rec drain acc =
    match Fleet.Chunk_queue.pop q with
    | None -> List.rev acc
    | Some r -> drain (r :: acc)
  in
  let ranges = drain [] in
  Alcotest.(check (list (pair int int)))
    "covers [0,8) in chunks of 3"
    [ (0, 2); (3, 5); (6, 7) ]
    ranges;
  (* Degenerate sizes. *)
  let q = Fleet.Chunk_queue.of_range ~chunk:0 ~total:2 in
  Alcotest.(check (option (pair int int))) "chunk clamped to 1" (Some (0, 0))
    (Fleet.Chunk_queue.pop q);
  let q = Fleet.Chunk_queue.of_range ~chunk:4 ~total:0 in
  Alcotest.(check (option (pair int int))) "empty range" None
    (Fleet.Chunk_queue.pop q)

(* ---------------- Parallel map ---------------- *)

let test_map_matches_sequential () =
  let arr = Array.init 57 (fun i -> i) in
  let f i x = (i * 31) + (x * x) in
  let seq = Fleet.map ~jobs:1 f arr in
  List.iter
    (fun jobs ->
      let par = Fleet.map ~jobs ~chunk:2 f arr in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        true (par = seq))
    [ 2; 3; 8 ];
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "value" (f i arr.(i)) v
      | Error _ -> Alcotest.fail "unexpected error")
    seq

let test_map_captures_exceptions () =
  let arr = [| 0; 1; 2; 3 |] in
  let results =
    Fleet.map ~jobs:2
      (fun _ x -> if x = 2 then failwith "boom" else x * 10)
      arr
  in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 2, Error (Failure msg) -> Alcotest.(check string) "message" "boom" msg
      | 2, _ -> Alcotest.fail "element 2 must fail with Failure boom"
      | i, Ok v -> Alcotest.(check int) "ok element" (arr.(i) * 10) v
      | _, Error _ -> Alcotest.fail "only element 2 may fail")
    results

(* ---------------- Task seeds ---------------- *)

let test_task_seed_deterministic () =
  for index = 0 to 100 do
    Alcotest.(check int) "stable"
      (Fleet.task_seed ~seed:2008 index)
      (Fleet.task_seed ~seed:2008 index)
  done;
  (* Distinct across indices and across master seeds (a collision here
     would hand two models the same stream). *)
  let seen = Hashtbl.create 512 in
  List.iter
    (fun seed ->
      for index = 0 to 200 do
        let s = Fleet.task_seed ~seed index in
        Alcotest.(check bool) "non-negative" true (s >= 0);
        if Hashtbl.mem seen s then Alcotest.failf "seed collision at %d" s;
        Hashtbl.replace seen s ()
      done)
    [ 1; 2; 2008 ]

(* ---------------- Run_ctx ---------------- *)

let test_run_ctx_scoping () =
  let ctx = Run_ctx.create ~seed:17 ~context:[ ("model", Json.String "m") ] () in
  Alcotest.(check (option int)) "seed" (Some 17) (Run_ctx.seed ctx);
  Alcotest.(check bool) "rng derived from seed" true (Run_ctx.rng ctx <> None);
  let outer = Run_ctx.current () in
  Run_ctx.with_ ctx (fun () ->
      Alcotest.(check int) "current is ctx" (Run_ctx.id ctx)
        (Run_ctx.id (Run_ctx.current ())));
  Alcotest.(check int) "restored" (Run_ctx.id outer)
    (Run_ctx.id (Run_ctx.current ()))

let test_run_ctx_slot_isolated () =
  let slot = Run_ctx.slot ~name:"test-counter" (fun () -> ref 0) in
  let a = Run_ctx.create () and b = Run_ctx.create () in
  incr (Run_ctx.get a slot);
  incr (Run_ctx.get a slot);
  Alcotest.(check int) "a sees its own" 2 !(Run_ctx.get a slot);
  Alcotest.(check int) "b starts fresh" 0 !(Run_ctx.get b slot)

let test_run_ctx_domain_local_current () =
  (* Each domain gets its own anonymous root context: a with_ on one
     domain must not leak into another. *)
  let ctx = Run_ctx.create ~seed:5 () in
  Run_ctx.with_ ctx (fun () ->
      let other =
        Domain.join (Domain.spawn (fun () -> Run_ctx.id (Run_ctx.current ())))
      in
      Alcotest.(check bool) "other domain has its own root" true
        (other <> Run_ctx.id ctx))

(* ---------------- run_tasks ---------------- *)

let test_run_tasks_outcomes () =
  let skip id = id = "t-1" in
  let outcomes =
    Fleet.run_tasks ~jobs:2 ~skip ~seed:99
      ~ids:(Printf.sprintf "t-%d") ~total:4
      ~f:(fun i ->
        if i = 3 then failwith "task 3 fails"
        else (i, Run_ctx.seed (Run_ctx.current ())))
      ()
  in
  (match outcomes.(0) with
  | Fleet.Done (0, Some s) ->
    Alcotest.(check int) "derived seed" (Fleet.task_seed ~seed:99 0) s
  | _ -> Alcotest.fail "task 0 must be Done with its derived seed");
  (match outcomes.(1) with
  | Fleet.Skipped -> ()
  | _ -> Alcotest.fail "task 1 must be Skipped");
  (match outcomes.(2) with
  | Fleet.Done (2, Some _) -> ()
  | _ -> Alcotest.fail "task 2 must be Done");
  (match outcomes.(3) with
  | Fleet.Failed (Failure _) -> ()
  | _ -> Alcotest.fail "task 3 must be Failed");
  match Fleet.first_failure outcomes with
  | Some (Failure msg) -> Alcotest.(check string) "failure" "task 3 fails" msg
  | _ -> Alcotest.fail "first_failure must report task 3"

(* ---------------- Parallel == sequential, bit for bit ---------------- *)

let with_temp_ledger f =
  let tmp = Filename.temp_file "mapqn_fleet" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Ledger.disable ();
      Sys.remove tmp)
    (fun () -> f tmp)

(* Strip the fields that legitimately vary between two runs of the same
   code (wall clock and durations); everything else — bounds, seeds,
   fingerprints, work deltas, health — must be bit-identical. *)
let strip_volatile = function
  | Json.Object kvs ->
    Json.Object
      (List.filter (fun (k, _) -> k <> "ts" && k <> "duration_s") kvs)
  | other -> other

let ledger_fingerprints path =
  Ledger.load path
  |> List.map (fun r -> Json.to_string (strip_volatile r))
  |> List.sort compare

let table1_options =
  {
    Table1.bench_options with
    Table1.models = 4;
    populations = [ 1; 2 ];
    config = Mapqn_core.Constraints.standard;
  }

let run_table1 ~jobs () =
  with_temp_ledger @@ fun tmp ->
  Ledger.enable_exn ~path:tmp ();
  let t = Table1.run ~options:{ table1_options with Table1.jobs } () in
  Ledger.disable ();
  (t.Table1.per_model, ledger_fingerprints tmp)

let prop_parallel_bit_identical =
  let seq = lazy (run_table1 ~jobs:1 ()) in
  QCheck.Test.make
    ~name:
      "fleet: table1 under any --jobs is bit-identical to sequential \
       (bounds, seeds, ledger records)"
    ~count:4
    QCheck.(int_range 2 5)
    (fun jobs ->
      let seq_models, seq_ledger = Lazy.force seq in
      let par_models, par_ledger = run_table1 ~jobs () in
      if par_models <> seq_models then
        QCheck.Test.fail_report "per-model results differ";
      if par_ledger <> seq_ledger then
        QCheck.Test.fail_report "ledger record bodies differ";
      List.iteri
        (fun i (r : Table1.model_result) ->
          if r.Table1.index <> i then
            QCheck.Test.fail_report "results out of task order")
        par_models;
      true)

(* ---------------- Concurrent eval smoke ---------------- *)

let test_concurrent_eval_no_torn_records () =
  with_temp_ledger @@ fun tmp ->
  Ledger.enable_exn ~path:tmp ();
  let eval population =
    let net = Mapqn_workloads.Tandem.network ~population () in
    let ctx = Run_ctx.create ~seed:population () in
    Run_ctx.with_ ctx (fun () ->
        let b = Bounds.create_exn ~solver:Bounds.Revised net in
        Bounds.response_time b)
  in
  (* Reference values, computed sequentially before the race. *)
  let expect_a = eval 6 and expect_b = eval 9 in
  let d = Domain.spawn (fun () -> eval 6) in
  let got_b = eval 9 in
  let got_a = Domain.join d in
  Ledger.disable ();
  Alcotest.(check bool) "domain A result" true (got_a = expect_a);
  Alcotest.(check bool) "domain B result" true (got_b = expect_b);
  (* Every line of the shared ledger must parse — concurrent writers
     append whole records, never torn ones. *)
  let lines = ref 0 in
  let ic = open_in tmp in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  let records = Ledger.load tmp in
  Alcotest.(check int) "all lines parse" !lines (List.length records);
  (* 2 sequential + 2 concurrent evals, and each concurrent record's
     body matches its sequential twin bit for bit. *)
  Alcotest.(check int) "one record per eval" 4 (List.length records);
  let stripped = List.map (fun r -> Json.to_string (strip_volatile r)) records in
  List.iter
    (fun p ->
      match
        List.filter (fun r -> Ledger.population (Json.parse_exn r) = p) stripped
      with
      | [ a; b ] ->
        Alcotest.(check string)
          (Printf.sprintf "N=%d concurrent record matches sequential" p)
          a b
      | rs -> Alcotest.failf "expected 2 records for N=%d, got %d" p (List.length rs))
    [ 6; 9 ]

(* ---------------- Progress checkpoint round-trip ---------------- *)

let test_run_tasks_resume_checkpoint () =
  let hb = Filename.temp_file "mapqn_fleet_hb" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove hb) @@ fun () ->
  let ids = Printf.sprintf "job-%02d" in
  let run ~skip =
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 hb in
    Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
    let p = Mapqn_obs.Progress.create ~quiet:true ~heartbeat:oc ~total:6 "test" in
    Fleet.run_tasks ~jobs:2 ~progress:p ~skip ~seed:7 ~ids ~total:6
      ~f:(fun i ->
        if (not (skip (ids i))) && i >= 4 then failwith "crash" else i)
      ()
  in
  (* First run: tasks 0..3 complete, 4 and 5 fail (no "done" heartbeat). *)
  ignore (run ~skip:(fun _ -> false));
  let done1 = List.sort compare (Mapqn_obs.Progress.load_completed hb) in
  Alcotest.(check (list string)) "failed tasks not checkpointed"
    [ "job-00"; "job-01"; "job-02"; "job-03" ]
    done1;
  (* Resume: skip what the checkpoint marks done; the rest retries. *)
  let done_set = done1 in
  let outcomes = run ~skip:(fun id -> List.mem id done_set) in
  Array.iteri
    (fun i o ->
      match (i < 4, o) with
      | true, Fleet.Skipped -> ()
      | false, Fleet.Failed _ -> ()
      | _ -> Alcotest.failf "task %d has the wrong outcome on resume" i)
    outcomes;
  let done2 = List.sort compare (Mapqn_obs.Progress.load_completed hb) in
  Alcotest.(check (list string)) "resume neither duplicates nor loses"
    done1 done2

(* A model accepted without a certificate (rescue ladder exhausted under
   --accept-uncertified) checkpoints as done but stamped
   "certified": false; a resume that insists on certificates re-runs it,
   a plain resume does not. *)
let test_run_tasks_resume_uncertified () =
  let hb = Filename.temp_file "mapqn_fleet_hb" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove hb) @@ fun () ->
  let ids = Printf.sprintf "job-%02d" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 hb in
  (Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
   let p = Mapqn_obs.Progress.create ~quiet:true ~heartbeat:oc ~total:4 "test" in
   ignore
     (Fleet.run_tasks ~jobs:2 ~progress:p ~certified:(fun i -> i <> 2)
        ~skip:(fun _ -> false) ~seed:7 ~ids ~total:4 ~f:(fun i -> i) ()));
  Alcotest.(check (list string)) "plain resume keeps uncertified dones"
    [ "job-00"; "job-01"; "job-02"; "job-03" ]
    (List.sort compare (Mapqn_obs.Progress.load_completed hb));
  Alcotest.(check (list string)) "certified resume re-runs job-02"
    [ "job-00"; "job-01"; "job-03" ]
    (List.sort compare
       (Mapqn_obs.Progress.load_completed ~require_certified:true hb))

let () =
  Alcotest.run "fleet"
    [
      ( "chunk-queue",
        [
          Alcotest.test_case "fifo + close" `Quick test_chunk_queue_fifo;
          Alcotest.test_case "of_range coverage" `Quick
            test_chunk_queue_of_range;
        ] );
      ( "map",
        [
          Alcotest.test_case "parallel equals sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "exceptions become Error" `Quick
            test_map_captures_exceptions;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "derived seeds deterministic + distinct" `Quick
            test_task_seed_deterministic;
        ] );
      ( "run-ctx",
        [
          Alcotest.test_case "scoping" `Quick test_run_ctx_scoping;
          Alcotest.test_case "slots isolated per context" `Quick
            test_run_ctx_slot_isolated;
          Alcotest.test_case "domain-local current" `Quick
            test_run_ctx_domain_local_current;
        ] );
      ( "run-tasks",
        [
          Alcotest.test_case "outcomes + derived seeds" `Quick
            test_run_tasks_outcomes;
          Alcotest.test_case "resume checkpoint round-trip" `Quick
            test_run_tasks_resume_checkpoint;
          Alcotest.test_case "uncertified dones re-run on certified resume"
            `Quick test_run_tasks_resume_uncertified;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_parallel_bit_identical ] );
      ( "concurrency",
        [
          Alcotest.test_case "two-domain eval, no torn records" `Slow
            test_concurrent_eval_no_torn_records;
        ] );
    ]
